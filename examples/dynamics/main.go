// dynamics regenerates the paper's Figure 6: the fraction of cells perturbed
// and of nets (globally) unrouted at each annealing temperature, showing the
// three overlapping phases — vigorous placement, global-routing convergence,
// then graceful convergence to 100% detailed routing.
//
//	go run ./examples/dynamics                     # table to stdout
//	go run ./examples/dynamics -design s1 -csv fig6.csv
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro"
	"repro/internal/report"
)

func main() {
	design := flag.String("design", "tiny", "benchmark name")
	effort := flag.Int("effort", 8, "annealing moves per cell per temperature")
	csvPath := flag.String("csv", "", "write CSV here instead of a table to stdout")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	nl, err := repro.GenerateBenchmark(*design)
	if err != nil {
		log.Fatal(err)
	}
	a, err := repro.ArchFor(nl, 28)
	if err != nil {
		log.Fatal(err)
	}
	lay, err := repro.Simultaneous(a, nl, repro.SimConfig{Seed: *seed, MovesPerCell: *effort, MaxTemps: 140})
	if err != nil {
		log.Fatal(err)
	}
	dyn := lay.Sim.Dynamics

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := report.Figure6CSV(f, dyn); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %d samples to %s\n", len(dyn), *csvPath)
		return
	}

	fmt.Printf("Figure 6 dynamics for %s (%d cells):\n\n", *design, nl.NumCells())
	header := "step  temperature  %cells perturbed  %globally unrouted  %unrouted  WCD(ns)"
	fmt.Println(header)
	for _, s := range dyn {
		fmt.Printf("%4d  %11.3g  %16.1f  %18.1f  %9.1f  %7.1f\n",
			s.Step, s.Temp, 100*s.CellsPerturbed, 100*s.GlobalUnrouted, 100*s.Unrouted, s.WCD/1000)
	}
	fmt.Printf("\nfully routed: %v\n", lay.FullyRouted)
}
