// multichip demonstrates the multi-FPGA front-end the paper's §2.2 situates
// this work in: a design too large for one row-based FPGA is min-cut
// partitioned (Fiduccia-Mattheyses with recursive bisection), cut signals
// become inter-chip I/O pads, and every chip is then placed and routed with
// the simultaneous optimizer.
//
//	go run ./examples/multichip                       # big529 across 2 chips
//	go run ./examples/multichip -design s1 -chips 4
package main

import (
	"flag"
	"fmt"
	"log"

	"repro"
)

func main() {
	design := flag.String("design", "big529", "benchmark name")
	chips := flag.Int("chips", 2, "number of FPGAs (power of two)")
	tracks := flag.Int("tracks", 28, "tracks per channel on each chip")
	effort := flag.Int("effort", 6, "annealing moves per cell per temperature")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	nl, err := repro.GenerateBenchmark(*design)
	if err != nil {
		log.Fatal(err)
	}
	pr, err := repro.PartitionNetlist(nl, *chips, *seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("design %s: %d cells, %d nets\n", *design, nl.NumCells(), nl.NumNets())
	fmt.Printf("partitioned into %d chips, sizes %v, %d inter-chip nets\n\n",
		*chips, pr.PartSizes, pr.CutNets)

	for i, chip := range pr.Chips {
		a, err := repro.ArchFor(chip, *tracks)
		if err != nil {
			log.Fatal(err)
		}
		lay, err := repro.Simultaneous(a, chip, repro.SimConfig{
			Seed:         *seed + int64(i),
			MovesPerCell: *effort,
			MaxTemps:     100,
		})
		if err != nil {
			log.Fatal(err)
		}
		status := "100% routed"
		if !lay.FullyRouted {
			status = fmt.Sprintf("%d nets unrouted", lay.Unrouted)
		}
		fmt.Printf("chip %d: %3d cells on %dx%d array -> %s, WCD %.2f ns\n",
			i, chip.NumCells(), a.Rows, a.Cols, status, lay.WCD/1000)
	}
}
