// mintracks reproduces the paper's Table-2 experiment on one design: it
// reduces the tracks-per-channel budget step by step and reports, for each
// flow, whether 100% wirability is still achievable — locating the minimum
// channel capacity each approach needs.
//
//	go run ./examples/mintracks                 # the "tiny" benchmark
//	go run ./examples/mintracks -design bw -from 26 -to 12
package main

import (
	"flag"
	"fmt"
	"log"

	"repro"
)

func main() {
	design := flag.String("design", "tiny", "benchmark name")
	from := flag.Int("from", 14, "starting (largest) track count")
	to := flag.Int("to", 4, "final (smallest) track count")
	effort := flag.Int("effort", 8, "annealing moves per cell per temperature")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	nl, err := repro.GenerateBenchmark(*design)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("design %s (%d cells): sweeping tracks/channel %d -> %d\n\n",
		*design, nl.NumCells(), *from, *to)
	fmt.Println("tracks  sequential     simultaneous")
	fmt.Println("------  -------------  -------------")

	seqMin, simMin := 0, 0
	for tracks := *from; tracks >= *to; tracks-- {
		a, err := repro.ArchFor(nl, tracks)
		if err != nil {
			log.Fatal(err)
		}

		seqCfg := repro.SeqConfig{Seed: *seed}
		seqCfg.Place.MovesPerCell = *effort
		seqLay, err := repro.Sequential(a, nl, seqCfg)
		if err != nil {
			log.Fatal(err)
		}
		// Wirability-only mode: the Table-2 sweep optimizes routability alone.
		simLay, err := repro.Simultaneous(a, nl, repro.SimConfig{
			Seed: *seed, MovesPerCell: *effort, MaxTemps: 120, DisableTiming: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6d  %-13s  %-13s\n", tracks, status(seqLay), status(simLay))
		if seqLay.FullyRouted && (seqMin == 0 || tracks < seqMin) {
			seqMin = tracks
		}
		if simLay.FullyRouted && (simMin == 0 || tracks < simMin) {
			simMin = tracks
		}
	}

	fmt.Printf("\nminimum observed: sequential %d, simultaneous %d", seqMin, simMin)
	if seqMin > 0 && simMin > 0 && simMin < seqMin {
		fmt.Printf(" (%.0f%% fewer tracks; paper's Table 2 reports 20-33%%)", 100*float64(seqMin-simMin)/float64(seqMin))
	}
	fmt.Println()
}

func status(lay *repro.Layout) string {
	if lay.FullyRouted {
		return "routed"
	}
	return fmt.Sprintf("%d unrouted", lay.Unrouted)
}
