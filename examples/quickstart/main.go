// Quickstart: generate a small benchmark, run the paper's simultaneous
// place-and-route on it, and print the layout summary plus the independent
// timing verification.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"repro"
)

func main() {
	// A 30-cell synthetic design (use "s1" ... "big529" for the paper's
	// benchmarks).
	nl, err := repro.GenerateBenchmark("tiny")
	if err != nil {
		log.Fatal(err)
	}

	// Size a row-based FPGA for it: default mixed segmentation, 24 tracks
	// per channel.
	a, err := repro.ArchFor(nl, 24)
	if err != nil {
		log.Fatal(err)
	}

	// Simultaneous placement + global routing + detailed routing under the
	// Cost = Wg·G + Wd·D + Wt·T annealing objective.
	lay, err := repro.Simultaneous(a, nl, repro.SimConfig{
		Seed:         1,
		MovesPerCell: 8,
		MaxTemps:     80,
	})
	if err != nil {
		log.Fatal(err)
	}

	if err := lay.WriteSummary(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Check the in-loop Elmore timing against the independently coded
	// post-layout analyzer (the paper's RICE stand-in).
	if lay.FullyRouted {
		wcd, agreement, err := lay.VerifyTiming()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("independent analyzer: %.2f ns (agreement %.3f)\n", wcd/1000, agreement)
	}

	// The run report carries the Figure-6 dynamics trace.
	dyn := lay.Sim.Dynamics
	fmt.Printf("anneal: %d temperatures, final unrouted fraction %.0f%%\n",
		len(dyn), 100*dyn[len(dyn)-1].Unrouted)
}
