// segmentation reconstructs the paper's Figure 2: with rigid channel
// segmentation, the placement with the smaller total net length can be
// unroutable while a longer alternative routes completely — which is why
// wirability cannot be predicted from net length at the placement level, and
// why placement leverage matters.
//
//	go run ./examples/segmentation
package main

import (
	"fmt"
	"log"

	"repro/internal/arch"
	"repro/internal/droute"
	"repro/internal/fabric"
)

func main() {
	// One channel, one track, segmented [0,2) [2,6) [6,8) — the paper's "3
	// routing segments".
	p := arch.Default(1, 8, 1)
	p.SegPattern = []int{2, 4, 2}
	p.PhaseStep = 0
	a, err := arch.New(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("track segmentation: ")
	for _, s := range a.Seg[0] {
		fmt.Printf("[%d,%d) ", s.Start, s.End)
	}
	fmt.Print("\n\n")

	type net struct {
		name   string
		lo, hi int
	}
	try := func(title string, nets []net) {
		f := fabric.New(a)
		total := 0
		fmt.Println(title)
		for i, n := range nets {
			total += n.hi - n.lo
			r := fabric.NetRoute{Global: true, Chans: []fabric.ChanAssign{
				{Ch: 0, Lo: n.lo, Hi: n.hi, Track: -1},
			}}
			if droute.RouteChan(f, int32(i), &r, 0, droute.DefaultCost()) {
				ca := r.Chans[0]
				fmt.Printf("  %s [%d,%d]: routed on segments %d..%d\n", n.name, n.lo, n.hi, ca.SegLo, ca.SegHi)
			} else {
				fmt.Printf("  %s [%d,%d]: UNROUTABLE (no free segment run covers it)\n", n.name, n.lo, n.hi)
			}
		}
		fmt.Printf("  total net length: %d\n\n", total)
	}

	// Left placement of Figure 2: shortest wirelength, but N2 and N3 both
	// need the middle segment.
	try("placement A (shorter nets):", []net{
		{"N1", 0, 1}, {"N2", 2, 3}, {"N3", 4, 5},
	})

	// Right placement: cell B moved; N3 grew, yet everything routes.
	try("placement B (cell B moved, longer nets):", []net{
		{"N1", 0, 1}, {"N2", 6, 7}, {"N3", 2, 5},
	})

	fmt.Println("The lower-wirelength placement is unroutable; the longer one routes —")
	fmt.Println("net-length/congestion estimates cannot see segment boundaries (paper §2.1).")
}
