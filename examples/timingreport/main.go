// timingreport lays out a design, prints its top critical paths cell by
// cell, and then applies the slack-driven rerouting refinement ([13]-style):
// critical nets are re-embedded onto fewer segments (fewer antifuses) at the
// cost of wastage, exactly where the slack budget says it pays.
//
//	go run ./examples/timingreport
//	go run ./examples/timingreport -design s1 -flow seq
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"repro"
	"repro/internal/droute"
)

func main() {
	design := flag.String("design", "tiny", "benchmark name")
	flow := flag.String("flow", "seq", "layout flow whose timing to inspect (sim or seq)")
	k := flag.Int("paths", 3, "number of critical paths to print")
	effort := flag.Int("effort", 8, "annealing moves per cell per temperature")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	nl, err := repro.GenerateBenchmark(*design)
	if err != nil {
		log.Fatal(err)
	}
	a, err := repro.ArchFor(nl, 28)
	if err != nil {
		log.Fatal(err)
	}
	var lay *repro.Layout
	if *flow == "sim" {
		lay, err = repro.Simultaneous(a, nl, repro.SimConfig{Seed: *seed, MovesPerCell: *effort, MaxTemps: 100})
	} else {
		cfg := repro.SeqConfig{Seed: *seed}
		cfg.Place.MovesPerCell = *effort
		// Route capacity-first (minimize wastage, ignore antifuse count) the
		// way a purely wirability-minded flow would — leaving delay on the
		// table for the refinement pass below to recover.
		cfg.DrouteCost = droute.Cost{WWaste: 4, WSegs: 0.5}
		lay, err = repro.Sequential(a, nl, cfg)
	}
	if err != nil {
		log.Fatal(err)
	}
	if !lay.FullyRouted {
		log.Fatalf("layout incomplete: %d nets unrouted", lay.Unrouted)
	}

	fmt.Printf("design %s (%s flow): worst-case delay %.2f ns\n\n", *design, *flow, lay.WCD/1000)
	paths, err := lay.CriticalPaths(*k)
	if err != nil {
		log.Fatal(err)
	}
	for i, p := range paths {
		fmt.Printf("path %d (%.2f ns): %s\n", i+1, p.Arrival/1000, strings.Join(p.CellNames, " -> "))
	}

	before := lay.WCD
	improved, err := lay.RefineTiming(0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nslack-driven rerouting refinement: %d nets re-embedded, WCD %.2f -> %.2f ns (%.1f%%)\n",
		improved, before/1000, lay.WCD/1000, 100*(before-lay.WCD)/before)
}
