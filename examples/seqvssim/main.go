// seqvssim reproduces one row of the paper's Table 1 on a chosen design: it
// runs the traditional sequential flow (TimberWolf-style placement → global
// routing → segmented channel routing) and the simultaneous flow on the same
// netlist and architecture, then compares worst-case delay.
//
//	go run ./examples/seqvssim            # the "cse" benchmark
//	go run ./examples/seqvssim -design s1 -effort 12
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	design := flag.String("design", "cse", "benchmark name")
	tracks := flag.Int("tracks", 38, "tracks per channel")
	effort := flag.Int("effort", 8, "annealing moves per cell per temperature")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	nl, err := repro.GenerateBenchmark(*design)
	if err != nil {
		log.Fatal(err)
	}
	a, err := repro.ArchFor(nl, *tracks)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("design %s: %d cells on a %dx%d array, %d tracks/channel\n\n",
		*design, nl.NumCells(), a.Rows, a.Cols, a.Tracks)

	seqCfg := repro.SeqConfig{Seed: *seed}
	seqCfg.Place.MovesPerCell = *effort
	t0 := time.Now()
	seqLay, err := repro.Sequential(a, nl, seqCfg)
	if err != nil {
		log.Fatal(err)
	}
	seqDur := time.Since(t0)
	describe("sequential  ", seqLay, seqDur)

	t0 = time.Now()
	simLay, err := repro.Simultaneous(a, nl, repro.SimConfig{Seed: *seed, MovesPerCell: *effort, MaxTemps: 140})
	if err != nil {
		log.Fatal(err)
	}
	simDur := time.Since(t0)
	describe("simultaneous", simLay, simDur)

	if seqLay.FullyRouted && simLay.FullyRouted {
		improve := 100 * (seqLay.WCD - simLay.WCD) / seqLay.WCD
		fmt.Printf("\ntiming improvement: %.1f%% (paper's Table 1 reports 16-28%% on these designs)\n", improve)
		fmt.Printf("runtime ratio: %.1fx (paper reports 3-4x)\n", float64(simDur)/float64(seqDur))
	}
}

func describe(name string, lay *repro.Layout, dur time.Duration) {
	status := "100% routed"
	if !lay.FullyRouted {
		status = fmt.Sprintf("%d nets UNROUTED", lay.Unrouted)
	}
	fmt.Printf("%s  %-16s  WCD %7.2f ns  in %v\n", name, status, lay.WCD/1000, dur.Round(10*time.Millisecond))
}
