// Parallel portfolio annealing: run four independent annealing chains that
// synchronize every few temperatures (losers restart from a clone of the
// champion) and keep the champion's layout. The result for a fixed
// (seed, chains) is deterministic regardless of core count; chains=1 is
// bit-identical to the serial engine.
//
//	go run ./examples/parallel
package main

import (
	"fmt"
	"log"
	"os"

	"repro"
)

func main() {
	nl, err := repro.GenerateBenchmark("tiny")
	if err != nil {
		log.Fatal(err)
	}
	a, err := repro.ArchFor(nl, 24)
	if err != nil {
		log.Fatal(err)
	}

	// Four chains, synchronized every 6 temperatures. Workers defaults to
	// GOMAXPROCS and only affects scheduling, never the result.
	lay, err := repro.Simultaneous(a, nl, repro.SimConfig{
		Seed:         1,
		MovesPerCell: 8,
		MaxTemps:     80,
		Chains:       4,
		SyncTemps:    6,
	})
	if err != nil {
		log.Fatal(err)
	}

	if err := lay.WriteSummary(os.Stdout); err != nil {
		log.Fatal(err)
	}
	res := lay.Sim
	fmt.Printf("portfolio: %d chains, champion %d, %d elite-migration restarts\n",
		res.Chains, res.Champion, res.Restarts)
	for i, c := range res.ChainCosts {
		marker := " "
		if i == res.Champion {
			marker = "*"
		}
		fmt.Printf("  chain %d%s final annealing cost %.4f\n", i, marker, c)
	}
}
