// Benchmarks regenerating each of the paper's evaluation artifacts (one per
// table/figure, §4) plus micro-benchmarks of the incremental mechanisms the
// formulation depends on (§3.3–§3.5). The per-table benches run a reduced
// workload so `go test -bench=.` stays affordable; `go run ./cmd/paper -all`
// regenerates the full tables at paper effort.
package repro

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/droute"
	"repro/internal/exper"
	"repro/internal/fabric"
	"repro/internal/groute"
	"repro/internal/layout"
	"repro/internal/netgen"
	"repro/internal/place"
	"repro/internal/seq"
	"repro/internal/timing"
)

func benchEffort() exper.Effort {
	return exper.Effort{Name: "bench", PlaceMovesPerCell: 6, PlaceMaxTemps: 60,
		CoreMovesPerCell: 6, CoreMaxTemps: 60, RouteAttempts: 4}
}

// BenchmarkTable1Timing regenerates a Table-1 row (timing improvement of
// simultaneous over sequential P&R) on the cse benchmark and reports the
// measured improvement as a metric.
func BenchmarkTable1Timing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exper.Table1([]string{"cse"}, benchEffort(), 1)
		if err != nil {
			b.Fatal(err)
		}
		if rows[0].Err != "" {
			b.Fatalf("flow failed: %s", rows[0].Err)
		}
		b.ReportMetric(rows[0].ImprovePct, "%improvement")
	}
}

// BenchmarkTable2Wirability regenerates a Table-2 row (minimum tracks per
// channel) on the tiny design and reports both minima.
func BenchmarkTable2Wirability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exper.Table2([]string{"tiny"}, benchEffort(), 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rows[0].SeqTracks), "seq-tracks")
		b.ReportMetric(float64(rows[0].SimTracks), "sim-tracks")
	}
}

// BenchmarkFigure6Dynamics regenerates the annealing-dynamics trace.
func BenchmarkFigure6Dynamics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		dyn, err := exper.Figure6("tiny", benchEffort(), 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(dyn)), "temps")
		b.ReportMetric(100*dyn[len(dyn)-1].Unrouted, "final-%unrouted")
	}
}

// BenchmarkFigure7Large routes the 529-cell design to completion (the paper
// spent ~8 hours of 1994 hardware here; one iteration is expected to take on
// the order of a minute).
func BenchmarkFigure7Large(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exper.Figure7(benchEffort(), 1)
		if err != nil {
			b.Fatal(err)
		}
		if !res.FullyRouted {
			b.Fatal("big529 not fully routed")
		}
		b.ReportMetric(res.WCD/1000, "wcd-ns")
	}
}

// BenchmarkFlowRuntimeSeq and BenchmarkFlowRuntimeSim together reproduce the
// paper's runtime observation (sequential ~1h vs simultaneous ~3-4h on 1994
// hardware: a 3-4x ratio).
func BenchmarkFlowRuntimeSeq(b *testing.B) {
	nl, a := benchDesign(b, "cse")
	e := benchEffort()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := seq.Run(a, nl, seq.Config{
			Seed:          1,
			Place:         place.Config{Seed: 1, MovesPerCell: e.PlaceMovesPerCell, MaxTemps: e.PlaceMaxTemps},
			RouteAttempts: e.RouteAttempts,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFlowRuntimeSim(b *testing.B) {
	nl, a := benchDesign(b, "cse")
	e := benchEffort()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o, err := core.New(a, nl, core.Config{Seed: 1, MovesPerCell: e.CoreMovesPerCell, MaxTemps: e.CoreMaxTemps})
		if err != nil {
			b.Fatal(err)
		}
		o.Run()
	}
}

// BenchmarkAnnealChains compares the serial engine against K-chain portfolio
// annealing at identical per-chain effort, on a routing-constrained instance
// (18 tracks, short schedule) where single-chain outcomes vary with the seed.
// The portfolio's champion routes the design completely where the serial run
// leaves nets unrouted — the quality gap shows in the final-cost and unrouted
// metrics. Wall-clock is the benchmark's own ns/op: chains step concurrently,
// so with K idle cores the K-chain run costs roughly serial wall-clock; on
// fewer cores it degrades gracefully toward K× (scheduling never changes the
// result either way).
func BenchmarkAnnealChains(b *testing.B) {
	for _, chains := range []int{1, 4} {
		b.Run(fmt.Sprintf("chains=%d", chains), func(b *testing.B) {
			nl, err := exper.Design("cse")
			if err != nil {
				b.Fatal(err)
			}
			a, err := exper.ArchFor(nl, 18)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				o, err := core.New(a, nl, core.Config{
					Seed: 1, MovesPerCell: 3, MaxTemps: 40,
					Chains: chains,
				})
				if err != nil {
					b.Fatal(err)
				}
				_, res := o.RunParallel()
				b.ReportMetric(res.WCD/1000, "wcd-ns")
				b.ReportMetric(res.FinalCost, "final-cost")
				b.ReportMetric(float64(res.D), "unrouted")
				b.ReportMetric(float64(res.Restarts), "restarts")
			}
		})
	}
}

func benchDesign(b *testing.B, name string) (*Netlist, *Arch) {
	b.Helper()
	nl, err := exper.Design(name)
	if err != nil {
		b.Fatal(err)
	}
	a, err := exper.ArchFor(nl, exper.DefaultTracks)
	if err != nil {
		b.Fatal(err)
	}
	return nl, a
}

// --- Micro-benchmarks of the in-the-loop mechanisms ---

// BenchmarkIncrementalMove measures one annealing move of the simultaneous
// optimizer: rip-up, incremental global + detailed reroute, incremental
// timing, and undo.
func BenchmarkIncrementalMove(b *testing.B) {
	nl, a := benchDesign(b, "s1")
	o, err := core.New(a, nl, core.Config{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	// Settle into a mostly-routed state first.
	for i := 0; i < 2000; i++ {
		o.Propose(rng)
		o.Accept()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.Propose(rng)
		if i%2 == 0 {
			o.Accept()
		} else {
			o.Reject()
		}
	}
}

// BenchmarkElmoreNetDelay measures the detailed RC-tree evaluation of one
// routed net.
func BenchmarkElmoreNetDelay(b *testing.B) {
	nl, a := benchDesign(b, "s1")
	rng := rand.New(rand.NewSource(3))
	p, err := layout.NewRandom(a, nl, rng)
	if err != nil {
		b.Fatal(err)
	}
	f := fabric.New(a)
	routes := make([]fabric.NetRoute, nl.NumNets())
	groute.RouteAll(f, p, routes)
	droute.RouteAllDetailed(f, routes, droute.DefaultCost(), 2, rng)
	// Find a multi-channel routed net.
	var target int32 = -1
	for id := range routes {
		if routes[id].DetailDone() && routes[id].HasTrunk {
			target = int32(id)
			break
		}
	}
	if target < 0 {
		b.Fatal("no routed trunk net")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := timing.NetDelays(p, target, &routes[target], 1.0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIncrementalTiming measures one frontier propagation after a
// single-net delay change on a levelized design.
func BenchmarkIncrementalTiming(b *testing.B) {
	nl, err := exper.Design("s1")
	if err != nil {
		b.Fatal(err)
	}
	an, err := timing.NewAnalyzer(nl)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := int32(rng.Intn(nl.NumNets()))
		d := make([]float64, len(nl.Nets[id].Sinks))
		for j := range d {
			d[j] = rng.Float64() * 1500
		}
		an.Begin()
		an.SetNetDelays(id, d)
		an.Propagate()
		an.Commit()
	}
}

// BenchmarkDetailedRouteChannel measures one segmented-channel track
// selection + allocation + release.
func BenchmarkDetailedRouteChannel(b *testing.B) {
	nl, a := benchDesign(b, "s1")
	rng := rand.New(rand.NewSource(5))
	p, err := layout.NewRandom(a, nl, rng)
	if err != nil {
		b.Fatal(err)
	}
	_ = p
	f := fabric.New(a)
	r := fabric.NetRoute{Global: true, Chans: []fabric.ChanAssign{{Ch: 3, Lo: 5, Hi: 25, Track: -1}}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !droute.RouteChan(f, 1, &r, 0, droute.DefaultCost()) {
			b.Fatal("route failed")
		}
		droute.UnrouteChan(f, 1, &r, 0)
	}
}

// BenchmarkGlobalRoute measures one vertical-assignment attempt.
func BenchmarkGlobalRoute(b *testing.B) {
	nl, a := benchDesign(b, "s1")
	rng := rand.New(rand.NewSource(6))
	p, err := layout.NewRandom(a, nl, rng)
	if err != nil {
		b.Fatal(err)
	}
	f := fabric.New(a)
	// A multi-channel net.
	var target int32 = -1
	for id := range nl.Nets {
		var r fabric.NetRoute
		if groute.Route(f, p, int32(id), &r) && r.HasTrunk {
			groute.RipUp(f, int32(id), &r)
			target = int32(id)
			break
		}
		if r.Global {
			groute.RipUp(f, int32(id), &r)
		}
	}
	if target < 0 {
		b.Fatal("no trunk net found")
	}
	var r fabric.NetRoute
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !groute.Route(f, p, target, &r) {
			b.Fatal("route failed")
		}
		groute.RipUp(f, target, &r)
	}
}

// BenchmarkBaselinePlacement measures the sequential baseline's placer on a
// full design.
func BenchmarkBaselinePlacement(b *testing.B) {
	nl, a := benchDesign(b, "cse")
	for i := 0; i < b.N; i++ {
		if _, _, err := place.Place(a, nl, place.Config{Seed: 1, MovesPerCell: 6, MaxTemps: 60}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNetlistGeneration measures synthetic benchmark construction.
func BenchmarkNetlistGeneration(b *testing.B) {
	p, _ := netgen.Profile("s1")
	for i := 0; i < b.N; i++ {
		if _, err := netgen.Generate(p); err != nil {
			b.Fatal(err)
		}
	}
}
