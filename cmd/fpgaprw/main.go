// Command fpgaprw is the place-and-route fleet worker: it registers with an
// fpgaprd coordinator, leases jobs over the /v1/fleet/ work-dispatch
// protocol, runs the same deterministic optimizer flow the coordinator's
// in-process pool runs, streams per-temperature progress back on its
// heartbeats, and completes each lease with the layout bytes. Because runs
// are bit-exact per cache key, any number of workers can serve the same
// queue — and a worker that crashes mid-job simply lets its lease expire, at
// which point the coordinator retries the job elsewhere with an identical
// outcome.
//
// Usage:
//
//	fpgaprw -coordinator http://coord:8080                # one run at a time
//	fpgaprw -coordinator http://coord:8080 -parallel 4    # four concurrent leases
//
// SIGINT/SIGTERM drains: in-flight runs finish and complete, then the
// process exits. A second signal exits immediately (the coordinator recovers
// the abandoned leases by expiry).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"repro/internal/fleet"
	"repro/internal/server"
)

func main() {
	var (
		coordinator = flag.String("coordinator", "http://localhost:8080", "coordinator base URL")
		name        = flag.String("name", "", "worker display name (default: hostname)")
		parallel    = flag.Int("parallel", 1, "concurrent leased runs (each registers as its own worker)")
		pollWait    = flag.Duration("poll-wait", 2*time.Second, "lease long-poll window")
		heartbeat   = flag.Duration("heartbeat", 0, "lease renewal cadence (0 = follow the coordinator)")
	)
	flag.Parse()
	if *parallel < 1 {
		*parallel = 1
	}
	if *name == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "fpgaprw"
		}
		*name = host
	}
	if err := run(*coordinator, *name, *parallel, *pollWait, *heartbeat); err != nil {
		fmt.Fprintln(os.Stderr, "fpgaprw:", err)
		os.Exit(1)
	}
}

func run(coordinator, name string, parallel int, pollWait, heartbeat time.Duration) error {
	workers := make([]*fleet.Worker, parallel)
	for i := range workers {
		wname := name
		if parallel > 1 {
			wname = fmt.Sprintf("%s/%d", name, i)
		}
		w, err := fleet.NewWorker(fleet.WorkerConfig{
			Coordinator: coordinator,
			Name:        wname,
			Execute:     server.FleetExecutor(),
			PollWait:    pollWait,
			Heartbeat:   heartbeat,
		})
		if err != nil {
			return err
		}
		workers[i] = w
	}

	var wg sync.WaitGroup
	errc := make(chan error, parallel)
	for _, w := range workers {
		wg.Add(1)
		go func(w *fleet.Worker) {
			defer wg.Done()
			if err := w.Run(); err != nil {
				errc <- err
			}
		}(w)
	}
	log.Printf("fpgaprw: %d lease loop(s) against %s", parallel, coordinator)

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case <-done:
	case err := <-errc:
		for _, w := range workers {
			w.Kill()
		}
		wg.Wait()
		return err
	case sig := <-sigc:
		log.Printf("fpgaprw: %v, draining (signal again to abandon runs)", sig)
		for _, w := range workers {
			w.Drain()
		}
		select {
		case <-done:
		case <-sigc:
			for _, w := range workers {
				w.Kill()
			}
		}
		wg.Wait()
	}
	return nil
}
