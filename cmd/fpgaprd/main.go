// Command fpgaprd is the place-and-route job service daemon: the
// simultaneous place-and-route optimizer behind an HTTP/JSON API with a
// bounded job queue, a fixed worker pool, cancellation, a deterministic
// result cache, and per-temperature progress streaming over SSE.
//
// Usage:
//
//	fpgaprd                              # serve on :8080 with 2 workers
//	fpgaprd -addr :9000 -workers 4 -queue 32
//
// Submit and watch a job:
//
//	curl -d '{"design":"s1"}' localhost:8080/v1/jobs
//	curl localhost:8080/v1/jobs/j1/events        # SSE progress
//	curl localhost:8080/v1/jobs/j1/layout        # finished layout
//	curl -X DELETE localhost:8080/v1/jobs/j1     # cancel
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		workers = flag.Int("workers", 2, "concurrent optimizer runs")
		queue   = flag.Int("queue", 16, "bounded job queue depth (full queue answers 429)")
		cache   = flag.Int("cache", 128, "deterministic result cache entries")
		maxJobs = flag.Int("max-jobs", 512, "retained job records (oldest terminal evicted)")
	)
	flag.Parse()
	if err := run(*addr, *workers, *queue, *cache, *maxJobs); err != nil {
		fmt.Fprintln(os.Stderr, "fpgaprd:", err)
		os.Exit(1)
	}
}

func run(addr string, workers, queue, cache, maxJobs int) error {
	svc := server.New(server.Config{
		Workers:      workers,
		QueueDepth:   queue,
		CacheEntries: cache,
		MaxJobs:      maxJobs,
	})
	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() {
		log.Printf("fpgaprd: serving on %s (%d workers, queue %d)", addr, workers, queue)
		errc <- httpSrv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		log.Printf("fpgaprd: %v, shutting down", sig)
	}

	// Cancel in-flight runs first (they stop at the next temperature
	// boundary, which also ends their SSE streams), then drain connections.
	svc.Close()
	ctx, stop := context.WithTimeout(context.Background(), 30*time.Second)
	defer stop()
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	return nil
}
