// Command fpgaprd is the place-and-route job service daemon: the
// simultaneous place-and-route optimizer behind an HTTP/JSON API with a
// priority/fairness job scheduler, an in-process worker pool, cancellation, a
// deterministic result cache, and per-temperature progress streaming over
// SSE. It doubles as the coordinator of a worker fleet: external fpgaprw
// processes lease jobs from it over /v1/fleet/ and stream results back.
//
// Usage:
//
//	fpgaprd                              # serve on :8080 with 2 workers, in-memory only
//	fpgaprd -addr :9000 -workers 4 -queue 32
//	fpgaprd -data-dir /var/lib/fpgaprd   # durable: WAL journal + disk layout cache
//	fpgaprd -workers 0                   # pure coordinator: fpgaprw workers do all runs
//
// With -data-dir, submissions are journaled before they are enqueued and
// finished layouts are written to a content-addressed disk cache (bounded by
// -disk-cache-bytes). On startup the journal is replayed: jobs interrupted
// by a crash or restart are re-enqueued and finished results are served from
// disk without recomputation. Without -data-dir the daemon behaves exactly
// as before: everything lives in memory and dies with the process.
//
// Submit and watch a job:
//
//	curl -d '{"design":"s1"}' localhost:8080/v1/jobs
//	curl localhost:8080/v1/jobs/j1/events        # SSE progress
//	curl localhost:8080/v1/jobs/j1/layout        # finished layout
//	curl -X DELETE localhost:8080/v1/jobs/j1     # cancel
//
// Sweeps: POST /v1/batches runs many netlists as one group, and POST
// /v1/portfolios expands one netlist across a (seed × effort × backend)
// matrix, scores every member, and serves the champion layout:
//
//	curl -d '{"design":"s1","matrix":{"preset":"seeds4"}}' localhost:8080/v1/portfolios
//	curl localhost:8080/v1/portfolios/p1            # live scoreboard + champion
//	curl localhost:8080/v1/portfolios/p1/layout     # champion layout, once final
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
	"repro/internal/store"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		workers   = flag.Int("workers", 2, "in-process optimizer runs (0 = pure coordinator, fleet workers only)")
		queue     = flag.Int("queue", 16, "bounded job queue depth (full queue answers 429)")
		cache     = flag.Int("cache", 128, "deterministic result cache entries")
		maxJobs   = flag.Int("max-jobs", 512, "retained job records (oldest terminal evicted)")
		maxGroups = flag.Int("max-groups", 64, "retained batch/portfolio records (oldest terminal evicted)")

		dataDir = flag.String("data-dir", "",
			"durable state directory: job journal + disk layout cache (empty = in-memory only)")
		diskCacheBytes = flag.Int64("disk-cache-bytes", 256<<20,
			"disk layout cache bound in bytes, LRU-evicted (needs -data-dir)")

		ratePerSec  = flag.Float64("rate-per-client", 0, "per-client job submissions per second (0 = unlimited)")
		rateBurst   = flag.Int("rate-burst", 8, "per-client token-bucket burst")
		maxInflight = flag.Int("max-inflight", 0, "per-client cap on live (queued+running) jobs (0 = unlimited)")

		leaseTTL = flag.Duration("lease-ttl", 0,
			"fleet lease heartbeat budget before a worker's job is re-enqueued (0 = default 15s)")
		agingStep = flag.Duration("aging-step", 0,
			"queue wait per one-class priority promotion (0 = default 30s, negative disables)")
	)
	flag.Parse()
	nWorkers := *workers
	if nWorkers == 0 {
		nWorkers = -1 // CLI 0 means coordinator-only; Config 0 means default
	}
	cfg := server.Config{
		Workers:      nWorkers,
		QueueDepth:   *queue,
		CacheEntries: *cache,
		MaxJobs:      *maxJobs,
		MaxGroups:    *maxGroups,
		RatePerSec:   *ratePerSec,
		RateBurst:    *rateBurst,
		MaxInflight:  *maxInflight,
		LeaseTTL:     *leaseTTL,
		AgingStep:    *agingStep,
	}
	if err := run(*addr, cfg, *dataDir, *diskCacheBytes); err != nil {
		fmt.Fprintln(os.Stderr, "fpgaprd:", err)
		os.Exit(1)
	}
}

func run(addr string, cfg server.Config, dataDir string, diskCacheBytes int64) error {
	if dataDir != "" {
		st, err := store.Open(dataDir, diskCacheBytes)
		if err != nil {
			return err
		}
		defer st.Close()
		rec := st.Recovery()
		log.Printf("fpgaprd: opened store %s (recovered %d pending, %d finished; %d torn bytes dropped)",
			dataDir, len(rec.Pending), len(rec.Done), rec.WAL.TornBytes)
		cfg.Store = st
	}
	svc := server.New(cfg)
	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() {
		if cfg.Workers < 0 {
			log.Printf("fpgaprd: serving on %s (coordinator-only, queue %d)", addr, cfg.QueueDepth)
		} else {
			log.Printf("fpgaprd: serving on %s (%d workers, queue %d)", addr, cfg.Workers, cfg.QueueDepth)
		}
		errc <- httpSrv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		log.Printf("fpgaprd: %v, shutting down", sig)
	}

	// Cancel in-flight runs first (they stop at the next temperature
	// boundary, which also ends their SSE streams), then drain connections.
	svc.Close()
	ctx, stop := context.WithTimeout(context.Background(), 30*time.Second)
	defer stop()
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	return nil
}
