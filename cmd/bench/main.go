// Command bench runs the benchmark suite at a fixed seed and writes a
// schema-versioned JSON report (BENCH_<date>.json by default). Quality fields
// (final cost, unrouted counts, critical path) are bit-identical across runs
// for a fixed configuration; wall-clock fields vary by machine.
//
// Usage:
//
//	bench -effort fast -seed 1                    # write BENCH_<date>.json
//	bench -suite paper                            # full Table-1 + big529 run at paper effort
//	bench -out BENCH_baseline.json                # (re)generate the CI baseline
//	bench -compare BENCH_baseline.json            # CI gate: exit 1 on regression
//	bench -crit-weight 1 -compare BENCH_cur.json -timing-gate
//	                                              # timing-quality gate: geomean critical
//	                                              # path must improve at <=5% wall cost
//	bench -route-backend lagrange -compare BENCH_cur.json -route-gate
//	                                              # route-scaling gate: quality-neutral
//	                                              # routing at no higher route wall time
//	bench -trace run.jsonl                        # also dump the event stream
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/droute"
	"repro/internal/exper"
	"repro/internal/metrics"
)

func main() {
	var (
		suite      = flag.String("suite", "small", `benchmark suite: "small" (CI smoke) or "paper" (all Table-1 designs plus big529, defaulting to paper effort)`)
		effortFlag = flag.String("effort", "fast", "effort level: fast or paper")
		seed       = flag.Int64("seed", 1, "random seed (quality metrics are deterministic per seed)")
		designs    = flag.String("designs", strings.Join(exper.BenchDesigns(), ","), "comma-separated design names")
		tracks     = flag.Int("tracks", exper.DefaultTracks, "tracks per channel")
		chains     = flag.Int("chains", 1, "parallel annealing chains (1 = serial engine)")
		workers    = flag.Int("workers", 0, "max chains stepped concurrently (0 = GOMAXPROCS)")
		out        = flag.String("out", "", "output path (default BENCH_<yyyy-mm-dd>.json; - for stdout)")
		tracePath  = flag.String("trace", "", "also write the collector event stream to this JSONL file")
		compare    = flag.String("compare", "", "baseline BENCH_*.json to gate against; exit 1 on regression")
		wallTol    = flag.Float64("wall-tol", 0.25, "allowed relative wall-time regression for -compare")

		critWeight  = flag.Float64("crit-weight", 0, "criticality-weighted net-delay cost term (0 = off)")
		critBias    = flag.Float64("crit-bias", 0, "fraction of moves drawn from near-critical cells (0 = default when -crit-weight is set)")
		critDamping = flag.Float64("crit-damping", 0, "exponential damping of per-net criticalities (0 = default when -crit-weight is set)")
		timingGate  = flag.Bool("timing-gate", false, "-compare in timing-quality mode: require geomean critical-path improvement over the baseline at <=5% total wall cost (same-machine baseline)")

		routeBackend = flag.String("route-backend", "", `detailed-router backend: "ordered" (default), "negotiated" or "lagrange"`)
		routeWorkers = flag.Int("route-workers", 0, "max router concurrency (0 = GOMAXPROCS; scheduling only, never affects results)")
		routeIters   = flag.Int("route-iters", 0, "iteration cap for the negotiated/lagrange backends (0 = backend default)")
		routeGate    = flag.Bool("route-gate", false, "-compare in route-scaling mode: the selected backend must be quality-neutral on routing at no higher total route wall time than the baseline (same-machine baseline)")
	)
	flag.Parse()

	// The paper suite swaps in the full design list and paper effort, but an
	// explicit -designs or -effort on the command line still wins.
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	switch *suite {
	case "small":
		// defaults above
	case "paper":
		if !explicit["designs"] {
			*designs = strings.Join(exper.PaperBenchDesigns(), ",")
		}
		if !explicit["effort"] {
			*effortFlag = "paper"
		}
	default:
		fmt.Fprintf(os.Stderr, "bench: unknown -suite %q (want small or paper)\n", *suite)
		os.Exit(1)
	}

	o := runOpts{
		effortName: *effortFlag, seed: *seed, designCSV: *designs,
		tracks: *tracks, chains: *chains, workers: *workers,
		out: *out, tracePath: *tracePath, compare: *compare, wallTol: *wallTol,
		critWeight: *critWeight, critBias: *critBias, critDamping: *critDamping,
		timingGate:   *timingGate,
		routeBackend: *routeBackend, routeWorkers: *routeWorkers,
		routeIters: *routeIters, routeGate: *routeGate,
	}
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}

// runOpts carries the parsed CLI configuration.
type runOpts struct {
	effortName  string
	seed        int64
	designCSV   string
	tracks      int
	chains      int
	workers     int
	out         string
	tracePath   string
	compare     string
	wallTol     float64
	critWeight  float64
	critBias    float64
	critDamping float64
	timingGate  bool

	routeBackend string
	routeWorkers int
	routeIters   int
	routeGate    bool
}

func run(o runOpts) error {
	effortName, seed, designCSV := o.effortName, o.seed, o.designCSV
	tracks, chains, workers := o.tracks, o.chains, o.workers
	out, tracePath, compare, wallTol := o.out, o.tracePath, o.compare, o.wallTol
	var e exper.Effort
	switch effortName {
	case "fast":
		e = exper.FastEffort()
	case "paper":
		e = exper.PaperEffort()
	default:
		return fmt.Errorf("unknown -effort %q (want fast or paper)", effortName)
	}
	e.Chains = chains
	e.Workers = workers
	e.CritWeight = o.critWeight
	e.CritBias = o.critBias
	e.CritDamping = o.critDamping
	backend, err := droute.ParseBackend(o.routeBackend)
	if err != nil {
		return err
	}
	if backend != droute.BackendOrdered {
		e.RouteBackend = string(backend)
	}
	e.RouteWorkers = o.routeWorkers
	e.RouteIters = o.routeIters

	var trace *metrics.Trace
	if tracePath != "" {
		tf, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		defer tf.Close()
		trace = metrics.NewTrace(tf)
		e.Metrics = trace
	}

	rep := &exper.BenchReport{
		Schema:      exper.BenchSchema,
		Generated:   time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		Effort:      e.Name,
		Seed:        seed,
		Tracks:      tracks,
		Chains:      chains,
		CritWeight:  e.CritWeight,
		CritBias:    e.CritBias,
		CritDamping: e.CritDamping,

		// The report records the backend only when non-default, mirroring
		// the JSON omitempty contract so old baselines stay comparable.
		RouteBackend: e.RouteBackend,
		RouteIters:   e.RouteIters,
	}
	for _, name := range strings.Split(designCSV, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		fmt.Fprintf(os.Stderr, "bench: %s (effort %s, seed %d)...\n", name, e.Name, seed)
		row, err := exper.RunBenchmark(name, e, seed, tracks)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Fprintf(os.Stderr, "bench: %s done in %.0f ms (cost %.1f, unrouted %d, critical path %.0f ps, %.1f allocs/move, %.0f B/move)\n",
			row.Design, row.WallMS, row.FinalCost, row.Unrouted, row.WCDPs, row.AllocsPerMove, row.BytesPerMove)
		rep.Rows = append(rep.Rows, row)
	}
	if trace != nil {
		if err := trace.Err(); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
	}

	if out == "" {
		out = "BENCH_" + time.Now().UTC().Format("2006-01-02") + ".json"
	}
	if out == "-" {
		if err := exper.WriteBenchReport(os.Stdout, rep); err != nil {
			return err
		}
	} else {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		if err := exper.WriteBenchReport(f, rep); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "bench: wrote %s\n", out)
	}

	if compare != "" {
		bf, err := os.Open(compare)
		if err != nil {
			return err
		}
		defer bf.Close()
		base, err := exper.ReadBenchReport(bf)
		if err != nil {
			return err
		}
		opt := exper.DefaultCompareOptions()
		opt.WallTol = wallTol
		if o.timingGate {
			opt = exper.TimingQualityCompareOptions()
		}
		if o.routeGate {
			opt = exper.RouteGateCompareOptions()
		}
		regs, err := exper.CompareBenchReports(base, rep, opt)
		if err != nil {
			return err
		}
		if len(regs) > 0 {
			for _, r := range regs {
				fmt.Fprintln(os.Stderr, "bench: REGRESSION:", r)
			}
			return fmt.Errorf("%d regression(s) vs %s", len(regs), compare)
		}
		fmt.Fprintf(os.Stderr, "bench: no regressions vs %s\n", compare)
	}
	return nil
}
