package main

import (
	"path/filepath"
	"testing"

	"repro/internal/exper"
)

func tinyEffort() exper.Effort {
	return exper.Effort{Name: "test", PlaceMovesPerCell: 4, PlaceMaxTemps: 30,
		CoreMovesPerCell: 4, CoreMaxTemps: 30, RouteAttempts: 2}
}

func TestRunFigure6AndRuntime(t *testing.T) {
	csv := filepath.Join(t.TempDir(), "fig6.csv")
	if err := run(false, false, true, false, true, tinyEffort(), 1, "tiny", csv); err != nil {
		t.Fatal(err)
	}
}

// TestChainsFlagReachesParallelEngine replays main's flag plumbing — start
// from a constructed effort, override Chains the way -chains does — and
// asserts the parallel portfolio engine actually ran. This pins the fix for
// the bug where PaperEffort()/FastEffort() left Chains zero and a -chains
// override silently fell back to the serial engine.
func TestChainsFlagReachesParallelEngine(t *testing.T) {
	e := exper.FastEffort()
	if e.Chains != 1 {
		t.Fatalf("FastEffort().Chains = %d, want 1 (explicit serial default)", e.Chains)
	}
	e.CoreMovesPerCell, e.CoreMaxTemps = 4, 30
	e.Chains, e.Workers = 4, 2

	nl, err := exper.Design("tiny")
	if err != nil {
		t.Fatal(err)
	}
	a, err := exper.ArchFor(nl, 20)
	if err != nil {
		t.Fatal(err)
	}
	_, res, _, err := exper.RunSim(a, nl, e, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Chains != 4 {
		t.Errorf("Result.Chains = %d, want 4: -chains did not reach RunParallel", res.Chains)
	}
	if len(res.ChainCosts) != 4 || len(res.ChainWall) != 4 {
		t.Errorf("per-chain reports: %d costs, %d wall entries, want 4 each",
			len(res.ChainCosts), len(res.ChainWall))
	}
}

func TestRunTable1Tiny(t *testing.T) {
	// Table 1 on the paper designs is too heavy for a unit test; exercise the
	// code path through the runtime-ratio branch plus figure6 above. Here we
	// only confirm run() propagates errors for an unknown design.
	if err := run(false, false, true, false, false, tinyEffort(), 1, "nonesuch", ""); err == nil {
		t.Error("unknown design accepted")
	}
}
