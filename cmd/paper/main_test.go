package main

import (
	"path/filepath"
	"testing"

	"repro/internal/exper"
)

func tinyEffort() exper.Effort {
	return exper.Effort{Name: "test", PlaceMovesPerCell: 4, PlaceMaxTemps: 30,
		CoreMovesPerCell: 4, CoreMaxTemps: 30, RouteAttempts: 2}
}

func TestRunFigure6AndRuntime(t *testing.T) {
	csv := filepath.Join(t.TempDir(), "fig6.csv")
	if err := run(false, false, true, false, true, tinyEffort(), 1, "tiny", csv); err != nil {
		t.Fatal(err)
	}
}

func TestRunTable1Tiny(t *testing.T) {
	// Table 1 on the paper designs is too heavy for a unit test; exercise the
	// code path through the runtime-ratio branch plus figure6 above. Here we
	// only confirm run() propagates errors for an unknown design.
	if err := run(false, false, true, false, false, tinyEffort(), 1, "nonesuch", ""); err == nil {
		t.Error("unknown design accepted")
	}
}
