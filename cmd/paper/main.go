// Command paper regenerates every table and figure of the paper's evaluation
// section (Nag & Rutenbar, DAC 1994, §4).
//
// Usage:
//
//	paper -all                  # everything at paper effort
//	paper -table1 -fast         # one artifact at reduced effort
//	paper -figure6 -csv fig6.csv
//
// Absolute numbers differ from 1994 (synthetic benchmark stand-ins, modeled
// RC constants, modern hardware); the shapes reproduced are the ones the
// paper claims: 16-28% timing improvement, 20-33% fewer tracks, 3-4x
// runtime cost, and the Figure-6 phase structure.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/droute"
	"repro/internal/exper"
	"repro/internal/metrics"
	"repro/internal/report"
)

func main() {
	var (
		all         = flag.Bool("all", false, "regenerate every table and figure")
		table1      = flag.Bool("table1", false, "Table 1: timing improvement")
		table2      = flag.Bool("table2", false, "Table 2: wirability improvement")
		figure6     = flag.Bool("figure6", false, "Figure 6: annealing dynamics")
		figure7     = flag.Bool("figure7", false, "Figure 7: 529-cell design")
		runtimeFlag = flag.Bool("runtime", false, "runtime-ratio observation")
		segsweep    = flag.Bool("segsweep", false, "segmentation-tradeoff study (extension)")
		fast        = flag.Bool("fast", false, "reduced effort (quick smoke run)")
		csvPath     = flag.String("csv", "", "write Figure 6 series to this CSV file (default stdout)")
		seed        = flag.Int64("seed", 1, "random seed")
		design      = flag.String("design", "s1", "design for -figure6 and -runtime")
		chains      = flag.Int("chains", 1, "parallel annealing chains for the simultaneous flow (1 = serial)")
		workers     = flag.Int("workers", 0, "max chains stepped concurrently (0 = GOMAXPROCS; scheduling only)")
		critWeight  = flag.Float64("crit-weight", 0, "criticality-weighted net-delay cost term for the simultaneous flow (0 = off)")
		critBias    = flag.Float64("crit-bias", 0, "fraction of moves drawn from near-critical cells (0 = default when -crit-weight is set)")
		critDamping = flag.Float64("crit-damping", 0, "exponential damping of per-net criticalities (0 = default when -crit-weight is set)")

		routeBackend = flag.String("route-backend", "", `detailed-router backend for both flows: "ordered" (default), "negotiated" or "lagrange"`)
		routeWorkers = flag.Int("route-workers", 0, "max router concurrency (0 = GOMAXPROCS; scheduling only, never results)")
		routeIters   = flag.Int("route-iters", 0, "iteration cap for the negotiated/lagrange route backends (0 = backend default)")
		stats        = flag.Bool("stats", false, "print optimizer metrics (phase timers, move/router/STA counters) after the run")
		pprofP       = flag.String("pprof", "", "write <prefix>.cpu.pprof and <prefix>.heap.pprof profiles of the run")
	)
	flag.Parse()

	if *all {
		*table1, *table2, *figure6, *figure7, *runtimeFlag, *segsweep = true, true, true, true, true, true
	}
	if !*table1 && !*table2 && !*figure6 && !*figure7 && !*runtimeFlag && !*segsweep {
		flag.Usage()
		os.Exit(2)
	}

	e := exper.PaperEffort()
	if *fast {
		e = exper.FastEffort()
	}
	e.Chains = *chains
	e.Workers = *workers
	e.CritWeight = *critWeight
	e.CritBias = *critBias
	e.CritDamping = *critDamping
	if _, err := droute.ParseBackend(*routeBackend); err != nil {
		fmt.Fprintln(os.Stderr, "paper:", err)
		os.Exit(2)
	}
	e.RouteBackend = *routeBackend
	e.RouteWorkers = *routeWorkers
	e.RouteIters = *routeIters
	if e.Chains > 1 {
		fmt.Printf("effort: %s (%d parallel chains)\n\n", e.Name, e.Chains)
	} else {
		fmt.Printf("effort: %s\n\n", e.Name)
	}

	var sum *metrics.Summary
	if *stats {
		sum = metrics.NewSummary()
		e.Metrics = sum
	}
	if *pprofP != "" {
		cf, err := os.Create(*pprofP + ".cpu.pprof")
		if err != nil {
			fmt.Fprintln(os.Stderr, "paper:", err)
			os.Exit(1)
		}
		defer cf.Close()
		if err := pprof.StartCPUProfile(cf); err != nil {
			fmt.Fprintln(os.Stderr, "paper:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
		defer func() {
			hf, err := os.Create(*pprofP + ".heap.pprof")
			if err != nil {
				fmt.Fprintln(os.Stderr, "paper:", err)
				return
			}
			defer hf.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(hf); err != nil {
				fmt.Fprintln(os.Stderr, "paper:", err)
			}
		}()
	}

	if err := run(*table1, *table2, *figure6, *figure7, *runtimeFlag, e, *seed, *design, *csvPath); err != nil {
		fmt.Fprintln(os.Stderr, "paper:", err)
		os.Exit(1)
	}
	if sum != nil {
		fmt.Println()
		if err := sum.WriteText(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "paper:", err)
			os.Exit(1)
		}
	}
	if *segsweep {
		rows, err := exper.SegmentationSweep(*design, 24, e, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "paper:", err)
			os.Exit(1)
		}
		if err := report.SegSweep(os.Stdout, rows); err != nil {
			fmt.Fprintln(os.Stderr, "paper:", err)
			os.Exit(1)
		}
	}
}

func run(t1, t2, f6, f7, rt bool, e exper.Effort, seed int64, design, csvPath string) error {
	if t1 {
		rows, err := exper.Table1(exper.TableDesigns(), e, seed)
		if err != nil {
			return err
		}
		if err := report.Table1(os.Stdout, rows); err != nil {
			return err
		}
		fmt.Println()
	}
	if t2 {
		rows, err := exper.Table2(exper.TableDesigns(), e, seed)
		if err != nil {
			return err
		}
		if err := report.Table2(os.Stdout, rows); err != nil {
			return err
		}
		fmt.Println()
	}
	if f6 {
		samples, err := exper.Figure6(design, e, seed)
		if err != nil {
			return err
		}
		out := os.Stdout
		if csvPath != "" {
			f, err := os.Create(csvPath)
			if err != nil {
				return err
			}
			defer f.Close()
			out = f
		}
		fmt.Printf("Figure 6. Annealing dynamics on %s:\n", design)
		if err := report.Figure6CSV(out, samples); err != nil {
			return err
		}
		fmt.Println()
	}
	if f7 {
		res, err := exper.Figure7(e, seed)
		if err != nil {
			return err
		}
		if err := report.Figure7(os.Stdout, res); err != nil {
			return err
		}
		fmt.Println()
	}
	if rt {
		seqDur, simDur, err := exper.RuntimeRatio(design, e, seed)
		if err != nil {
			return err
		}
		ratio := float64(simDur) / float64(seqDur)
		fmt.Printf("Runtime on %s: sequential %v, simultaneous %v (%.1fx; paper reports 3-4x)\n",
			design, seqDur.Round(1e7), simDur.Round(1e7), ratio)
	}
	return nil
}
