package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSimOnTiny(t *testing.T) {
	if err := run("", "tiny", "sim", 20, 1, 5, 40, false, false, 0, 1, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunSimParallelChains(t *testing.T) {
	if err := run("", "tiny", "sim", 20, 1, 5, 40, false, false, 0, 2, 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunSeqOnTiny(t *testing.T) {
	if err := run("", "tiny", "seq", 20, 1, 5, 40, false, false, 0, 1, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunWirabilityOnlyAndRender(t *testing.T) {
	if err := run("", "tiny", "sim", 20, 1, 5, 40, true, true, 0, 1, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunFromNetlistFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "d.blif")
	blif := ".model d\n.inputs a b\n.outputs f g\n.names a b x\n11 1\n.names x f\n1 1\n.latch x g re clk 0\n.end\n"
	if err := os.WriteFile(path, []byte(blif), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(path, "", "sim", 12, 1, 5, 30, false, false, 0, 1, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := []struct {
		name string
		f    func() error
		want string
	}{
		{"both sources", func() error { return run("x.net", "tiny", "sim", 20, 1, 5, 40, false, false, 0, 1, 0) }, "not both"},
		{"no source", func() error { return run("", "", "sim", 20, 1, 5, 40, false, false, 0, 1, 0) }, "need -netlist"},
		{"bad flow", func() error { return run("", "tiny", "diagonal", 20, 1, 5, 40, false, false, 0, 1, 0) }, "unknown -flow"},
		{"bad design", func() error { return run("", "nonesuch", "sim", 20, 1, 5, 40, false, false, 0, 1, 0) }, "unknown design"},
	}
	for _, tc := range cases {
		err := tc.f()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want contains %q", tc.name, err, tc.want)
		}
	}
}

func TestRunWithTechMapping(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wide.blif")
	// A 7-input gate: illegal for 4-input modules until mapped.
	blif := ".model wide\n.inputs a b c d e f g\n.outputs y\n.names a b c d e f g y\n1111111 1\n.end\n"
	if err := os.WriteFile(path, []byte(blif), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(path, "", "sim", 12, 1, 5, 30, false, false, 4, 1, 0); err != nil {
		t.Fatal(err)
	}
}
