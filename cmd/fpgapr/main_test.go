package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// tinyOpts is the shared baseline: the tiny design, low effort, serial engine.
func tinyOpts() options {
	return options{design: "tiny", flow: "sim", tracks: 20, seed: 1,
		effort: 5, maxTemps: 40, chains: 1}
}

func TestRunSimOnTiny(t *testing.T) {
	if err := run(tinyOpts()); err != nil {
		t.Fatal(err)
	}
}

func TestRunSimParallelChains(t *testing.T) {
	o := tinyOpts()
	o.chains, o.workers = 2, 1
	if err := run(o); err != nil {
		t.Fatal(err)
	}
}

func TestRunSeqOnTiny(t *testing.T) {
	o := tinyOpts()
	o.flow = "seq"
	if err := run(o); err != nil {
		t.Fatal(err)
	}
}

func TestRunWirabilityOnlyAndRender(t *testing.T) {
	o := tinyOpts()
	o.wirability, o.render = true, true
	if err := run(o); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithStatsAndProfiles(t *testing.T) {
	o := tinyOpts()
	o.stats = true
	o.pprofP = filepath.Join(t.TempDir(), "prof")
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	// The CPU profile is finalized by run's deferred StopCPUProfile; the heap
	// profile by its deferred writer. Both files must exist and be non-empty.
	for _, suffix := range []string{".cpu.pprof", ".heap.pprof"} {
		st, err := os.Stat(o.pprofP + suffix)
		if err != nil {
			t.Fatalf("profile %s: %v", suffix, err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", suffix)
		}
	}
}

func TestRunFromNetlistFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "d.blif")
	blif := ".model d\n.inputs a b\n.outputs f g\n.names a b x\n11 1\n.names x f\n1 1\n.latch x g re clk 0\n.end\n"
	if err := os.WriteFile(path, []byte(blif), 0o644); err != nil {
		t.Fatal(err)
	}
	o := tinyOpts()
	o.design, o.netlistPath = "", path
	o.tracks, o.maxTemps = 12, 30
	if err := run(o); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	mod := func(f func(*options)) options {
		o := tinyOpts()
		f(&o)
		return o
	}
	cases := []struct {
		name string
		o    options
		want string
	}{
		{"both sources", mod(func(o *options) { o.netlistPath = "x.net" }), "not both"},
		{"no source", mod(func(o *options) { o.design = "" }), "need -netlist"},
		{"bad flow", mod(func(o *options) { o.flow = "diagonal" }), "unknown -flow"},
		{"bad design", mod(func(o *options) { o.design = "nonesuch" }), "unknown design"},
	}
	for _, tc := range cases {
		err := run(tc.o)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want contains %q", tc.name, err, tc.want)
		}
	}
}

func TestRunWithTechMapping(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wide.blif")
	// A 7-input gate: illegal for 4-input modules until mapped.
	blif := ".model wide\n.inputs a b c d e f g\n.outputs y\n.names a b c d e f g y\n1111111 1\n.end\n"
	if err := os.WriteFile(path, []byte(blif), 0o644); err != nil {
		t.Fatal(err)
	}
	o := tinyOpts()
	o.design, o.netlistPath = "", path
	o.tracks, o.maxTemps, o.maxFanin = 12, 30, 4
	if err := run(o); err != nil {
		t.Fatal(err)
	}
}
