// Command fpgapr places and routes a netlist onto a row-based FPGA with
// either the simultaneous (paper) or sequential (baseline) flow.
//
// Usage:
//
//	fpgapr -design s1 -flow sim
//	fpgapr -netlist mydesign.net -flow seq -tracks 24 -seed 7
//	fpgapr -design cse -stats -pprof prof    # metrics report + prof.cpu/heap.pprof
//	fpgapr -design s1 -portfolio seeds4      # best-of-N sweep, champion reported
//
// The netlist comes from -netlist (a .net or .blif file) or -design (a named
// synthetic benchmark). The tool prints a layout summary and, when the
// layout routes completely, the independent timing verification.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro"
	"repro/internal/droute"
	"repro/internal/exper"
	"repro/internal/metrics"
	"repro/internal/portfolio"
)

// options carries every CLI knob; tests drive run directly with a literal.
type options struct {
	netlistPath string
	design      string
	flow        string // sim or seq
	tracks      int
	seed        int64
	effort      int // annealing moves per cell per temperature
	maxTemps    int
	wirability  bool
	render      bool
	maxFanin    int
	chains      int
	workers     int

	critWeight   float64
	critBias     float64
	critDamping  float64
	timingDriven bool // sequential flow: criticality-weighted second placement pass

	routeBackend string // detailed-router backend (ordered, negotiated, lagrange)
	routeWorkers int
	routeIters   int

	portfolio string // best-of-N sweep: preset name or inline JSON matrix

	stats  bool   // print the metrics summary after the run
	pprofP string // profile path prefix; writes <p>.cpu.pprof and <p>.heap.pprof
}

func main() {
	var o options
	flag.StringVar(&o.netlistPath, "netlist", "", "netlist file (.net or .blif)")
	flag.StringVar(&o.design, "design", "", "named synthetic benchmark (s1, cse, ex1, bw, s1a, big529, tiny)")
	flag.StringVar(&o.flow, "flow", "sim", "layout flow: sim (simultaneous) or seq (sequential)")
	flag.IntVar(&o.tracks, "tracks", 28, "tracks per channel")
	flag.Int64Var(&o.seed, "seed", 1, "random seed")
	flag.IntVar(&o.effort, "effort", 8, "annealing moves per cell per temperature")
	flag.IntVar(&o.maxTemps, "maxtemps", 120, "annealing temperature cap")
	flag.BoolVar(&o.wirability, "wirability-only", false, "simultaneous flow: optimize routability only (no timing term)")
	flag.BoolVar(&o.render, "render", false, "print an ASCII rendering of the finished layout")
	flag.IntVar(&o.maxFanin, "maxfanin", 0, "technology-map the netlist to this module fanin first (0 = netlist must already be legal)")
	flag.IntVar(&o.chains, "chains", 1, "simultaneous flow: parallel annealing chains (1 = serial engine)")
	flag.IntVar(&o.workers, "workers", 0, "max chains stepped concurrently (0 = GOMAXPROCS; scheduling only, never results)")
	flag.Float64Var(&o.critWeight, "crit-weight", 0, "simultaneous flow: weight of the criticality-weighted net-delay cost term (0 = off)")
	flag.Float64Var(&o.critBias, "crit-bias", 0, "simultaneous flow: fraction of moves drawn from near-critical cells (0 = default when -crit-weight is set)")
	flag.Float64Var(&o.critDamping, "crit-damping", 0, "simultaneous flow: exponential damping of per-net criticalities (0 = default when -crit-weight is set)")
	flag.BoolVar(&o.timingDriven, "timing-driven", false, "sequential flow: run a criticality-weighted second placement pass")
	flag.StringVar(&o.routeBackend, "route-backend", "", `detailed-router backend: "ordered" (default), "negotiated" or "lagrange"`)
	flag.IntVar(&o.routeWorkers, "route-workers", 0, "max router concurrency (0 = GOMAXPROCS; scheduling only, never results)")
	flag.IntVar(&o.routeIters, "route-iters", 0, "iteration cap for the negotiated/lagrange route backends (0 = backend default)")
	flag.StringVar(&o.portfolio, "portfolio", "", `simultaneous flow: best-of-N sweep over a matrix preset (paper8, seeds4, seeds8) or an inline JSON matrix like {"seeds":[1,2,3]}`)
	flag.BoolVar(&o.stats, "stats", false, "print optimizer metrics (phase timers, move/router/STA counters) after the run")
	flag.StringVar(&o.pprofP, "pprof", "", "write <prefix>.cpu.pprof and <prefix>.heap.pprof profiles of the run")
	flag.Parse()

	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "fpgapr:", err)
		os.Exit(1)
	}
}

func run(o options) error {
	var (
		nl  *repro.Netlist
		err error
	)
	switch {
	case o.netlistPath != "" && o.design != "":
		return fmt.Errorf("give either -netlist or -design, not both")
	case o.netlistPath != "":
		nl, err = repro.LoadNetlist(o.netlistPath)
	case o.design != "":
		nl, err = repro.GenerateBenchmark(o.design)
	default:
		return fmt.Errorf("need -netlist FILE or -design NAME (available: %v)", repro.Benchmarks())
	}
	if err != nil {
		return err
	}
	if err := nl.Validate(); err != nil {
		return err
	}
	if o.maxFanin > 0 {
		mapped, st, err := repro.TechMap(nl, o.maxFanin)
		if err != nil {
			return err
		}
		fmt.Printf("technology mapping to %d-input modules: %d -> %d cells (depth %d -> %d)\n",
			o.maxFanin, st.CellsIn, st.CellsOut, st.DepthIn, st.DepthOut)
		nl = mapped
	}

	a, err := repro.ArchFor(nl, o.tracks)
	if err != nil {
		return err
	}

	var sum *metrics.Summary
	if o.stats {
		sum = metrics.NewSummary()
	}
	if o.pprofP != "" {
		cf, err := os.Create(o.pprofP + ".cpu.pprof")
		if err != nil {
			return err
		}
		defer cf.Close()
		if err := pprof.StartCPUProfile(cf); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
		defer func() {
			hf, err := os.Create(o.pprofP + ".heap.pprof")
			if err != nil {
				fmt.Fprintln(os.Stderr, "fpgapr:", err)
				return
			}
			defer hf.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(hf); err != nil {
				fmt.Fprintln(os.Stderr, "fpgapr:", err)
			}
		}()
	}

	if o.portfolio != "" {
		if o.flow != "sim" {
			return fmt.Errorf("-portfolio requires -flow sim")
		}
		return runPortfolio(o, a, nl, sum)
	}

	var lay *repro.Layout
	switch o.flow {
	case "sim":
		lay, err = repro.Simultaneous(a, nl, repro.SimConfig{
			Seed:          o.seed,
			MovesPerCell:  o.effort,
			MaxTemps:      o.maxTemps,
			DisableTiming: o.wirability,
			Chains:        o.chains,
			Workers:       o.workers,
			CritWeight:    o.critWeight,
			CritBias:      o.critBias,
			CritDamping:   o.critDamping,
			RouteBackend:  droute.Backend(o.routeBackend),
			RouteIters:    o.routeIters,
			RouteWorkers:  o.routeWorkers,
			Metrics:       collectorOrNil(sum),
		})
	case "seq":
		cfg := repro.SeqConfig{Seed: o.seed, Metrics: collectorOrNil(sum)}
		cfg.Place.MovesPerCell = o.effort
		cfg.Place.MaxTemps = o.maxTemps
		cfg.RouteBackend = droute.Backend(o.routeBackend)
		cfg.RouteIters = o.routeIters
		cfg.RouteWorkers = o.routeWorkers
		if o.timingDriven {
			cfg.TimingDriven = true
			cfg.CritWeight = o.critWeight
		}
		lay, err = repro.Sequential(a, nl, cfg)
	default:
		return fmt.Errorf("unknown -flow %q (want sim or seq)", o.flow)
	}
	if err != nil {
		return err
	}
	return report(lay, o, sum)
}

// report prints the layout summary, timing verification, optional rendering
// and metrics — shared by the single-run and portfolio paths.
func report(lay *repro.Layout, o options, sum *metrics.Summary) error {
	if err := lay.WriteSummary(os.Stdout); err != nil {
		return err
	}
	if lay.Sim != nil && lay.Sim.Chains > 1 {
		fmt.Printf("parallel anneal: %d chains, champion %d, %d elite-migration restarts, %d champion switches\n",
			lay.Sim.Chains, lay.Sim.Champion, lay.Sim.Restarts, lay.Sim.ChampionSwitches)
	}
	if lay.FullyRouted {
		wcd, agreement, err := lay.VerifyTiming()
		if err != nil {
			return err
		}
		fmt.Printf("independent timing check: %.2f ns (in-loop/independent agreement %.3f)\n",
			wcd/1000, agreement)
	}
	if o.render {
		fmt.Print(repro.RenderASCII(lay))
	}
	if sum != nil {
		fmt.Println()
		if err := sum.WriteText(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}

// parsePortfolioMatrix resolves the -portfolio argument: a preset name, or an
// inline JSON matrix (which may itself name a preset).
func parsePortfolioMatrix(arg string) (portfolio.Matrix, error) {
	var m portfolio.Matrix
	if strings.HasPrefix(strings.TrimSpace(arg), "{") {
		dec := json.NewDecoder(strings.NewReader(arg))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&m); err != nil {
			return m, fmt.Errorf("-portfolio matrix: %w", err)
		}
	} else {
		m.Preset = arg
	}
	if m.Preset != "" {
		if m.Axes() {
			return m, fmt.Errorf("-portfolio matrix gives both a preset %q and explicit axes", m.Preset)
		}
		resolved, ok := exper.PortfolioMatrix(m.Preset)
		if !ok {
			return m, fmt.Errorf("-portfolio: unknown preset %q (have %v, or give an inline JSON matrix)",
				m.Preset, exper.PortfolioPresets())
		}
		m = resolved
	}
	return m, nil
}

// runPortfolio expands the matrix against the base options, runs every
// member, prints the scoreboard, and reports the champion layout under the
// deterministic (score, member index) tie-break — the same selection the
// fpgaprd portfolio endpoint makes server-side.
func runPortfolio(o options, a *repro.Arch, nl *repro.Netlist, sum *metrics.Summary) error {
	matrix, err := parsePortfolioMatrix(o.portfolio)
	if err != nil {
		return err
	}
	members, err := matrix.Expand()
	if err != nil {
		return err
	}
	fmt.Printf("portfolio: %d members\n", len(members))
	scored := make([]*portfolio.Score, len(members))
	layouts := make([]*repro.Layout, len(members))
	for i := range members {
		m := &members[i]
		cfg := repro.SimConfig{
			Seed:          o.seed,
			MovesPerCell:  o.effort,
			MaxTemps:      o.maxTemps,
			DisableTiming: o.wirability,
			Chains:        o.chains,
			Workers:       o.workers,
			CritWeight:    o.critWeight,
			CritBias:      o.critBias,
			CritDamping:   o.critDamping,
			RouteBackend:  droute.Backend(o.routeBackend),
			RouteIters:    o.routeIters,
			RouteWorkers:  o.routeWorkers,
			Metrics:       collectorOrNil(sum),
		}
		if m.Seed != 0 {
			cfg.Seed = m.Seed
		}
		if m.Effort.MovesPerCell != 0 {
			cfg.MovesPerCell = m.Effort.MovesPerCell
		}
		if m.Effort.MaxTemps != 0 {
			cfg.MaxTemps = m.Effort.MaxTemps
		}
		if m.Effort.Chains != 0 {
			cfg.Chains = m.Effort.Chains
		}
		if m.Backend != "" {
			cfg.RouteBackend = droute.Backend(m.Backend)
		}
		start := time.Now()
		lay, err := repro.Simultaneous(a, nl, cfg)
		wall := time.Since(start)
		if err != nil {
			fmt.Printf("  member %2d  %-34s  error: %v\n", i, m.Desc(), err)
			continue
		}
		sc := portfolio.Score{
			RouteFailed: !lay.FullyRouted,
			Unrouted:    lay.Unrouted,
			WCDPs:       lay.WCD,
			Cost:        lay.Sim.FinalCost,
		}
		scored[i], layouts[i] = &sc, lay
		fmt.Printf("  member %2d  %-34s  unrouted %3d  wcd %8.1f ps  cost %10.1f  wall %s\n",
			i, m.Desc(), sc.Unrouted, sc.WCDPs, sc.Cost, wall.Round(time.Millisecond))
	}
	champ := portfolio.Champion(scored)
	if champ < 0 {
		return fmt.Errorf("portfolio: no member produced a layout")
	}
	fmt.Printf("champion: member %d (%s)\n\n", champ, members[champ].Desc())
	return report(layouts[champ], o, sum)
}

// collectorOrNil keeps the optimizer's collector nil (fully disabled) when
// stats are off; a typed-nil *Summary inside the interface would not.
func collectorOrNil(sum *metrics.Summary) metrics.Collector {
	if sum == nil {
		return nil
	}
	return sum
}
