// Command fpgapr places and routes a netlist onto a row-based FPGA with
// either the simultaneous (paper) or sequential (baseline) flow.
//
// Usage:
//
//	fpgapr -design s1 -flow sim
//	fpgapr -netlist mydesign.net -flow seq -tracks 24 -seed 7
//
// The netlist comes from -netlist (a .net or .blif file) or -design (a named
// synthetic benchmark). The tool prints a layout summary and, when the
// layout routes completely, the independent timing verification.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
)

func main() {
	var (
		netlistPath = flag.String("netlist", "", "netlist file (.net or .blif)")
		design      = flag.String("design", "", "named synthetic benchmark (s1, cse, ex1, bw, s1a, big529, tiny)")
		flow        = flag.String("flow", "sim", "layout flow: sim (simultaneous) or seq (sequential)")
		tracks      = flag.Int("tracks", 28, "tracks per channel")
		seed        = flag.Int64("seed", 1, "random seed")
		effortFlag  = flag.Int("effort", 8, "annealing moves per cell per temperature")
		maxTemps    = flag.Int("maxtemps", 120, "annealing temperature cap")
		wirability  = flag.Bool("wirability-only", false, "simultaneous flow: optimize routability only (no timing term)")
		renderOut   = flag.Bool("render", false, "print an ASCII rendering of the finished layout")
		maxFanin    = flag.Int("maxfanin", 0, "technology-map the netlist to this module fanin first (0 = netlist must already be legal)")
		chains      = flag.Int("chains", 1, "simultaneous flow: parallel annealing chains (1 = serial engine)")
		workers     = flag.Int("workers", 0, "max chains stepped concurrently (0 = GOMAXPROCS; scheduling only, never results)")
	)
	flag.Parse()

	if err := run(*netlistPath, *design, *flow, *tracks, *seed, *effortFlag, *maxTemps, *wirability, *renderOut, *maxFanin, *chains, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "fpgapr:", err)
		os.Exit(1)
	}
}

func run(netlistPath, design, flow string, tracks int, seed int64, effort, maxTemps int, wirability, renderOut bool, maxFanin, chains, workers int) error {
	var (
		nl  *repro.Netlist
		err error
	)
	switch {
	case netlistPath != "" && design != "":
		return fmt.Errorf("give either -netlist or -design, not both")
	case netlistPath != "":
		nl, err = repro.LoadNetlist(netlistPath)
	case design != "":
		nl, err = repro.GenerateBenchmark(design)
	default:
		return fmt.Errorf("need -netlist FILE or -design NAME (available: %v)", repro.Benchmarks())
	}
	if err != nil {
		return err
	}
	if err := nl.Validate(); err != nil {
		return err
	}
	if maxFanin > 0 {
		mapped, st, err := repro.TechMap(nl, maxFanin)
		if err != nil {
			return err
		}
		fmt.Printf("technology mapping to %d-input modules: %d -> %d cells (depth %d -> %d)\n",
			maxFanin, st.CellsIn, st.CellsOut, st.DepthIn, st.DepthOut)
		nl = mapped
	}

	a, err := repro.ArchFor(nl, tracks)
	if err != nil {
		return err
	}

	var lay *repro.Layout
	switch flow {
	case "sim":
		lay, err = repro.Simultaneous(a, nl, repro.SimConfig{
			Seed:          seed,
			MovesPerCell:  effort,
			MaxTemps:      maxTemps,
			DisableTiming: wirability,
			Chains:        chains,
			Workers:       workers,
		})
	case "seq":
		cfg := repro.SeqConfig{Seed: seed}
		cfg.Place.MovesPerCell = effort
		cfg.Place.MaxTemps = maxTemps
		lay, err = repro.Sequential(a, nl, cfg)
	default:
		return fmt.Errorf("unknown -flow %q (want sim or seq)", flow)
	}
	if err != nil {
		return err
	}

	if err := lay.WriteSummary(os.Stdout); err != nil {
		return err
	}
	if lay.Sim != nil && lay.Sim.Chains > 1 {
		fmt.Printf("parallel anneal: %d chains, champion %d, %d elite-migration restarts\n",
			lay.Sim.Chains, lay.Sim.Champion, lay.Sim.Restarts)
	}
	if lay.FullyRouted {
		wcd, agreement, err := lay.VerifyTiming()
		if err != nil {
			return err
		}
		fmt.Printf("independent timing check: %.2f ns (in-loop/independent agreement %.3f)\n",
			wcd/1000, agreement)
	}
	if renderOut {
		fmt.Print(repro.RenderASCII(lay))
	}
	return nil
}
