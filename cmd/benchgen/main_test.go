package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro"
)

func TestEmitAllAndReparse(t *testing.T) {
	dir := t.TempDir()
	if err := emit(dir, []string{"tiny", "cse"}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"tiny", "cse"} {
		path := filepath.Join(dir, name+".net")
		nl, err := repro.LoadNetlist(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want, err := repro.GenerateBenchmark(name)
		if err != nil {
			t.Fatal(err)
		}
		if nl.NumCells() != want.NumCells() || nl.NumNets() != want.NumNets() {
			t.Errorf("%s: emitted file does not match generator", name)
		}
	}
}

func TestEmitUnknownDesign(t *testing.T) {
	if err := emit(t.TempDir(), []string{"nonesuch"}); err == nil {
		t.Error("unknown design accepted")
	}
}

func TestEmitBadDir(t *testing.T) {
	// A file where the directory should be.
	dir := t.TempDir()
	blocker := filepath.Join(dir, "file")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := emit(filepath.Join(blocker, "sub"), []string{"tiny"}); err == nil {
		t.Error("unwritable directory accepted")
	}
}
