// Command benchgen writes the synthetic MCNC-stand-in benchmark netlists to
// disk in the native .net format.
//
// Usage:
//
//	benchgen -out bench/            # all profiles
//	benchgen -out bench/ -design s1 # one profile
//	benchgen -list
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro"
	"repro/internal/netgen"
)

func main() {
	var (
		out    = flag.String("out", ".", "output directory")
		design = flag.String("design", "", "single design to emit (default: all)")
		list   = flag.Bool("list", false, "list available designs and exit")
	)
	flag.Parse()

	if *list {
		for _, name := range repro.Benchmarks() {
			p, _ := netgen.Profile(name)
			fmt.Printf("%-8s %4d cells (%d in, %d out, %d ff, %d comb)\n",
				name, p.TotalCells(), p.Inputs, p.Outputs, p.Seq, p.Comb)
		}
		return
	}

	names := repro.Benchmarks()
	if *design != "" {
		names = []string{*design}
	}
	if err := emit(*out, names); err != nil {
		fmt.Fprintln(os.Stderr, "benchgen:", err)
		os.Exit(1)
	}
}

func emit(dir string, names []string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, name := range names {
		nl, err := repro.GenerateBenchmark(name)
		if err != nil {
			return err
		}
		path := filepath.Join(dir, name+".net")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := repro.SaveNetlist(f, nl); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d cells, %d nets)\n", path, nl.NumCells(), nl.NumNets())
	}
	return nil
}
