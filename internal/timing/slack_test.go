package timing

import (
	"math"
	"testing"
)

func TestSlacksOnFigure5(t *testing.T) {
	nl := figure5Netlist(t)
	an, err := NewAnalyzer(nl)
	if err != nil {
		t.Fatal(err)
	}
	// Slow the B branch so A -> C is off-critical.
	an.Begin()
	an.SetNetDelays(nl.NetID("n2"), []float64{500})
	an.Propagate()
	an.Commit()
	wcd := an.WCD()
	rep := an.Slacks(wcd)

	// Critical path: pi2 -> B -> C -> D -> po1 must have zero slack.
	for _, name := range []string{"pi2", "B", "C", "D"} {
		id := nl.CellID(name)
		if math.Abs(rep.Slack[id]) > 1e-9 {
			t.Errorf("%s slack = %v, want 0", name, rep.Slack[id])
		}
	}
	// A is off-critical by the 500ps the B branch gained.
	a := nl.CellID("A")
	if math.Abs(rep.Slack[a]-500) > 1e-9 {
		t.Errorf("A slack = %v, want 500", rep.Slack[a])
	}
	// I terminates at po2, far from critical: slack = WCD - arr(po2 pin).
	i := nl.CellID("I")
	if rep.Slack[i] <= rep.Slack[nl.CellID("B")] {
		t.Errorf("I should have positive slack, got %v", rep.Slack[i])
	}
}

func TestNetCriticality(t *testing.T) {
	nl := figure5Netlist(t)
	an, err := NewAnalyzer(nl)
	if err != nil {
		t.Fatal(err)
	}
	an.Begin()
	an.SetNetDelays(nl.NetID("n2"), []float64{500})
	an.Propagate()
	an.Commit()
	crit := an.NetCriticality(an.WCD())
	// Nets on the critical path are fully critical.
	for _, name := range []string{"n2", "nb", "nc", "nd"} {
		id := nl.NetID(name)
		if crit[id] < 0.999 {
			t.Errorf("net %s criticality = %v, want 1", name, crit[id])
		}
	}
	// ni terminates a short path: clearly less critical.
	if ni := crit[nl.NetID("ni")]; ni > 0.9 {
		t.Errorf("net ni criticality = %v, want well below critical", ni)
	}
	for id, c := range crit {
		if c < 0 || c > 1 {
			t.Errorf("net %d criticality %v out of [0,1]", id, c)
		}
	}
}

func TestTopPaths(t *testing.T) {
	nl := figure5Netlist(t)
	an, err := NewAnalyzer(nl)
	if err != nil {
		t.Fatal(err)
	}
	an.Begin()
	an.SetNetDelays(nl.NetID("n2"), []float64{500})
	an.Propagate()
	an.Commit()
	paths := an.TopPaths(10)
	if len(paths) != 2 {
		t.Fatalf("%d endpoints, want 2 (po1, po2)", len(paths))
	}
	if paths[0].Arrival < paths[1].Arrival {
		t.Error("paths not sorted worst-first")
	}
	if paths[0].Arrival != an.WCD() {
		t.Errorf("worst path arrival %v != WCD %v", paths[0].Arrival, an.WCD())
	}
	// Worst path is pi2 -> B -> C -> D -> po1.
	want := []string{"pi2", "B", "C", "D", "po1"}
	if len(paths[0].Cells) != len(want) {
		t.Fatalf("path length %d, want %d", len(paths[0].Cells), len(want))
	}
	for i, id := range paths[0].Cells {
		if nl.Cells[id].Name != want[i] {
			t.Errorf("path[%d] = %s, want %s", i, nl.Cells[id].Name, want[i])
		}
	}
	// k smaller than endpoints.
	if got := an.TopPaths(1); len(got) != 1 {
		t.Errorf("TopPaths(1) returned %d", len(got))
	}
}

func TestSlackConsistencyWithWCD(t *testing.T) {
	// Property-flavored check on a generated design: min slack over cells on
	// some path is ~0 when target = WCD, and no slack is negative.
	nl := figure5Netlist(t)
	an, err := NewAnalyzer(nl)
	if err != nil {
		t.Fatal(err)
	}
	an.Begin()
	an.SetNetDelays(nl.NetID("n1"), []float64{123})
	an.SetNetDelays(nl.NetID("nb"), []float64{77, 310})
	an.Propagate()
	an.Commit()
	rep := an.Slacks(an.WCD())
	minSlack := math.Inf(1)
	for _, s := range rep.Slack {
		if s < minSlack {
			minSlack = s
		}
		if s < -1e-9 {
			t.Errorf("negative slack %v with target = WCD", s)
		}
	}
	if math.Abs(minSlack) > 1e-9 {
		t.Errorf("min slack = %v, want 0 (the critical path)", minSlack)
	}
}
