package timing

import (
	"repro/internal/layout"
)

// EstimateDelays produces per-sink delay estimates for a net that is not
// (fully) physically embedded, from its current spatial extent alone (paper
// §3.5: "crude estimators that relate the known spatial extent of the net
// ... to the probable number of antifuses it will encounter"). The estimate
// is deliberately antifuse-aware rather than purely length-proportional: the
// probable horizontal antifuse count grows with the column span divided by
// the architecture's mean segment length, and every channel crossing implies
// vertical segments and taps.
func EstimateDelays(p *layout.Placement, id int32) []float64 {
	return AppendEstimateDelays(nil, p, id)
}

// AppendEstimateDelays is EstimateDelays writing into dst's storage (reused
// when capacity allows).
func AppendEstimateDelays(dst []float64, p *layout.Placement, id int32) []float64 {
	net := &p.NL.Nets[id]
	if len(net.Sinks) == 0 {
		return nil
	}
	a := p.A
	rc := a.RC
	box := p.NetBox(id)
	dx := float64(box.ColHi - box.ColLo)
	dch := float64(box.ChHi - box.ChLo)

	estHSeg := 1 + dx/a.AvgSegLen()        // probable horizontal segments
	estVSeg := dch / float64(a.VSpan)      // probable vertical segments
	estAF := (estHSeg - 1) + estVSeg + dch // horizontal + vertical antifuses + channel taps
	if dch > 0 {
		estAF += 1 // trunk tap in the driver channel
	}

	// Total load the driver sees.
	ctotal := rc.CUnit*dx + rc.CVUnit*dch + rc.CAntifuse*estAF +
		rc.CCross*float64(1+len(net.Sinks)) + rc.CPin*float64(len(net.Sinks))
	// Distributed path resistance to a typical far sink.
	rpath := rc.RUnit*dx + rc.RVUnit*dch + rc.RAntifuse*estAF
	base := (rc.RDriver+rc.RCross)*ctotal + 0.5*rpath*ctotal + rc.RCross*(rc.CCross+rc.CPin)

	// All sinks of an unembedded net get the same bounding-box estimate;
	// per-sink refinement only becomes meaningful once segments are known.
	if cap(dst) < len(net.Sinks) {
		dst = make([]float64, len(net.Sinks))
	}
	dst = dst[:len(net.Sinks)]
	for i := range dst {
		dst[i] = base
	}
	return dst
}
