package timing

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/netgen"
	"repro/internal/netlist"
)

// figure5Netlist mirrors the paper's Figure 5 structure: sources feed a small
// cone; moving cell B perturbs the nets at B's boundary and the change
// propagates level by level to the boundaries.
//
//	pi1 -> A -> C -> D -> po1
//	pi2 -> B -/   B -> I -> po2
func figure5Netlist(t *testing.T) *netlist.Netlist {
	t.Helper()
	b := netlist.NewBuilder("fig5")
	b.Input("pi1", "n1")
	b.Input("pi2", "n2")
	b.Comb("A", 1000, "na", "n1")
	b.Comb("B", 1000, "nb", "n2")
	b.Comb("C", 1000, "nc", "na", "nb")
	b.Comb("D", 1000, "nd", "nc")
	b.Comb("I", 1000, "ni", "nb")
	b.Output("po1", "nd")
	b.Output("po2", "ni")
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return nl
}

func TestAnalyzerLogicDepthOnly(t *testing.T) {
	nl := figure5Netlist(t)
	an, err := NewAnalyzer(nl)
	if err != nil {
		t.Fatal(err)
	}
	// Zero net delays: WCD = deepest chain of cell delays = A/B+C+D = 3000.
	if an.WCD() != 3000 {
		t.Errorf("WCD = %v, want 3000", an.WCD())
	}
	if an.Arrival(nl.CellID("B")) != 1000 {
		t.Errorf("B arrival = %v, want 1000", an.Arrival(nl.CellID("B")))
	}
}

// TestFigure5IncrementalPropagation reproduces the paper's Figure 5: after
// perturbing the nets around cell B, only B's downstream cone changes, the
// frontier respects levels, and the result matches a full recomputation.
func TestFigure5IncrementalPropagation(t *testing.T) {
	nl := figure5Netlist(t)
	an, err := NewAnalyzer(nl)
	if err != nil {
		t.Fatal(err)
	}
	arrA := an.Arrival(nl.CellID("A"))

	an.Begin()
	// Nets touching B get rerouted: n2 (input), nb (output).
	an.SetNetDelays(nl.NetID("n2"), []float64{500})
	an.SetNetDelays(nl.NetID("nb"), []float64{200, 300}) // sinks C, I (order per builder)
	wcd := an.Propagate()
	an.Commit()

	if got := an.Arrival(nl.CellID("A")); got != arrA {
		t.Errorf("A (outside the affected cone) changed: %v -> %v", arrA, got)
	}
	// B = 500 + 1000 = 1500. C = max(A+0, B+delay(nb->C)) + 1000.
	wantB := 1500.0
	if got := an.Arrival(nl.CellID("B")); got != wantB {
		t.Errorf("B arrival = %v, want %v", got, wantB)
	}
	nbToC := 200.0
	wantC := wantB + nbToC + 1000
	if got := an.Arrival(nl.CellID("C")); got != wantC {
		t.Errorf("C arrival = %v, want %v", got, wantC)
	}
	wantWCD := wantC + 1000 // D then po1
	if wcd != wantWCD {
		t.Errorf("WCD = %v, want %v", wcd, wantWCD)
	}
	// Cross-check against full recomputation.
	before := append([]float64(nil), analyzerArrivals(an, nl)...)
	an.Full()
	after := analyzerArrivals(an, nl)
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("incremental diverged from full at cell %d: %v vs %v", i, before[i], after[i])
		}
	}
}

func analyzerArrivals(an *Analyzer, nl *netlist.Netlist) []float64 {
	out := make([]float64, nl.NumCells())
	for i := range out {
		out[i] = an.Arrival(int32(i))
	}
	return out
}

func TestRevertRestoresExactly(t *testing.T) {
	nl := figure5Netlist(t)
	an, err := NewAnalyzer(nl)
	if err != nil {
		t.Fatal(err)
	}
	an.Begin()
	an.SetNetDelays(nl.NetID("n1"), []float64{250})
	an.Propagate()
	an.Commit()

	before := analyzerArrivals(an, nl)
	wcdBefore := an.WCD()
	delayBefore := append([]float64(nil), an.NetDelay(nl.NetID("n1"))...)

	an.Begin()
	an.SetNetDelays(nl.NetID("n1"), []float64{900})
	an.SetNetDelays(nl.NetID("nb"), []float64{100, 700})
	an.Propagate()
	an.Revert()

	after := analyzerArrivals(an, nl)
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("cell %d arrival not restored: %v vs %v", i, before[i], after[i])
		}
	}
	if an.WCD() != wcdBefore {
		t.Errorf("WCD not restored: %v vs %v", an.WCD(), wcdBefore)
	}
	for i, v := range an.NetDelay(nl.NetID("n1")) {
		if v != delayBefore[i] {
			t.Errorf("net delay not restored")
		}
	}
}

// Property: on a realistic design, random bursts of net-delay changes with
// mixed commit/revert always leave the incremental analyzer bit-identical to
// a from-scratch recomputation.
func TestIncrementalMatchesFullProperty(t *testing.T) {
	nl, err := netgen.Generate(netgen.Params{Name: "p", Inputs: 6, Outputs: 5, Seq: 4, Comb: 60, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		an, err := NewAnalyzer(nl)
		if err != nil {
			return false
		}
		ref, err := NewAnalyzer(nl)
		if err != nil {
			return false
		}
		for move := 0; move < 25; move++ {
			an.Begin()
			touched := map[int32][]float64{}
			for k := 0; k < 1+rng.Intn(4); k++ {
				id := int32(rng.Intn(nl.NumNets()))
				d := make([]float64, len(nl.Nets[id].Sinks))
				for i := range d {
					d[i] = rng.Float64() * 2000
				}
				an.SetNetDelays(id, d)
				touched[id] = d
			}
			an.Propagate()
			if rng.Intn(3) == 0 {
				an.Revert()
			} else {
				an.Commit()
				for id, d := range touched {
					ref.Begin()
					ref.SetNetDelays(id, d)
					ref.Propagate()
					ref.Commit()
				}
			}
			// Reference: full recompute from the same delay caches.
			ref.Full()
			if an.WCD() != ref.WCD() {
				t.Logf("seed %d move %d: WCD %v vs %v", seed, move, an.WCD(), ref.WCD())
				return false
			}
			for c := int32(0); c < int32(nl.NumCells()); c++ {
				if an.Arrival(c) != ref.Arrival(c) {
					t.Logf("seed %d move %d: cell %d arr %v vs %v", seed, move, c, an.Arrival(c), ref.Arrival(c))
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func TestCriticalPathEndsAtBoundaries(t *testing.T) {
	nl := figure5Netlist(t)
	an, err := NewAnalyzer(nl)
	if err != nil {
		t.Fatal(err)
	}
	an.Begin()
	an.SetNetDelays(nl.NetID("n2"), []float64{800})
	an.Propagate()
	an.Commit()
	path := an.CriticalPath()
	if len(path) < 2 {
		t.Fatalf("path too short: %v", path)
	}
	if !nl.IsSource(path[0]) {
		t.Errorf("path starts at non-source %s", nl.Cells[path[0]].Name)
	}
	last := nl.Cells[path[len(path)-1]]
	if last.Type != netlist.Output && last.Type != netlist.Seq {
		t.Errorf("path ends at %s (%v), want boundary", last.Name, last.Type)
	}
	// With n2 slowed, the critical path must pass through B.
	foundB := false
	for _, c := range path {
		if nl.Cells[c].Name == "B" {
			foundB = true
		}
	}
	if !foundB {
		t.Errorf("critical path %v misses B", path)
	}
}

func TestJournalMisusePanics(t *testing.T) {
	nl := figure5Netlist(t)
	an, _ := NewAnalyzer(nl)
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("SetNetDelays outside move", func() { an.SetNetDelays(0, []float64{1}) })
	mustPanic("Propagate outside move", func() { an.Propagate() })
	mustPanic("Commit outside move", func() { an.Commit() })
	mustPanic("Revert outside move", func() { an.Revert() })
	an.Begin()
	mustPanic("nested Begin", func() { an.Begin() })
	mustPanic("wrong arity", func() { an.SetNetDelays(nl.NetID("nb"), []float64{1}) })
	an.Commit()
}

func TestSeqBreaksTiming(t *testing.T) {
	// pi -> g1 -> ff -> g2 -> po: WCD is max over the two register-bounded
	// segments, not their sum.
	b := netlist.NewBuilder("seqsplit")
	b.Input("pi", "a")
	b.Comb("g1", 2000, "x", "a")
	b.Seq("ff", 500, "q", "x")
	b.Comb("g2", 1000, "y", "q")
	b.Output("po", "y")
	nl := b.MustBuild()
	an, err := NewAnalyzer(nl)
	if err != nil {
		t.Fatal(err)
	}
	// Segment 1: pi->g1->ff input = 2000. Segment 2: ff(500)->g2(1000)->po = 1500.
	if an.WCD() != 2000 {
		t.Errorf("WCD = %v, want 2000 (paths split at the flop)", an.WCD())
	}
}
