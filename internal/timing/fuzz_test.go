package timing

import (
	"encoding/binary"
	"math"
	"testing"

	"repro/internal/netgen"
)

// FuzzCriticalityUpdate drives the damped criticality extractor with
// fuzz-chosen delay perturbations and damping, and asserts the invariants the
// optimizer relies on: every value stays in [0,1], the extraction is
// deterministic (a second extractor fed the same history agrees exactly), and
// nothing panics on degenerate delay patterns (all-zero, huge, mixed).
func FuzzCriticalityUpdate(f *testing.F) {
	f.Add(uint8(6), []byte{0, 1, 2, 3, 255, 128, 7, 9})
	f.Add(uint8(0), []byte{})
	f.Add(uint8(9), []byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, dampSel uint8, data []byte) {
		nl, err := netgen.Generate(netgen.Params{Name: "f", Inputs: 4, Outputs: 3, Seq: 2, Comb: 24, Seed: 51})
		if err != nil {
			t.Skip()
		}
		an, err := NewAnalyzer(nl)
		if err != nil {
			t.Skip()
		}
		an2 := an.Clone()
		damping := float64(dampSel%10) / 10
		c := NewCriticality(an, damping)
		c2 := NewCriticality(an2, damping)

		// Consume the fuzz bytes as a stream of (net, delay-scale) updates,
		// folding an Update every few writes.
		d := make([]float64, 0, 8)
		for len(data) >= 3 {
			id := int32(binary.LittleEndian.Uint16(data)) % int32(nl.NumNets())
			scale := float64(data[2]) * 37.5 // 0 .. ~9.5k ps
			data = data[3:]
			sinks := len(nl.Nets[id].Sinks)
			if sinks == 0 {
				continue
			}
			d = d[:0]
			for i := 0; i < sinks; i++ {
				d = append(d, scale*float64(i+1))
			}
			an.Begin()
			an.SetNetDelays(id, d)
			an.Propagate()
			an.Commit()
			an2.Begin()
			an2.SetNetDelays(id, d)
			an2.Propagate()
			an2.Commit()

			c.Update()
			c2.Update()
			for i, v := range c.Values() {
				if v < 0 || v > 1 || math.IsNaN(v) {
					t.Fatalf("net %d criticality %v out of [0,1]", i, v)
				}
				if v != c2.Value(int32(i)) {
					t.Fatalf("net %d: extractors diverged %v vs %v", i, v, c2.Value(int32(i)))
				}
			}
		}
	})
}
