package timing

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/layout"
)

// VerifyWireLoad is the wire-capacitance factor used by the independent
// post-layout analyzer: it resolves the loading of unprogrammed antifuse
// sites along used segments explicitly, which the in-loop model folds into
// CUnit. The paper reports its in-loop estimates were "within 90%" of the
// independent RICE-based evaluation; this plays the same role.
const VerifyWireLoad = 1.10

// VerifyResult is the report of the independent post-layout timing analysis.
type VerifyResult struct {
	WCD       float64 // worst-case delay per the independent model
	Agreement float64 // in-loop WCD divided by independent WCD
}

// Verify re-analyzes a finished layout with an independently parameterized
// RC model (the RICE [12] stand-in) and compares against the in-loop
// worst-case delay inLoopWCD. All nets must be completely routed.
func Verify(p *layout.Placement, routes []fabric.NetRoute, inLoopWCD float64) (VerifyResult, error) {
	t, err := NewAnalyzer(p.NL)
	if err != nil {
		return VerifyResult{}, err
	}
	t.Begin()
	for id := range routes {
		if len(p.NL.Nets[id].Sinks) == 0 {
			continue
		}
		d, err := NetDelays(p, int32(id), &routes[id], VerifyWireLoad)
		if err != nil {
			return VerifyResult{}, fmt.Errorf("timing: verify: %w", err)
		}
		t.SetNetDelays(int32(id), d)
	}
	wcd := t.Propagate()
	t.Commit()
	res := VerifyResult{WCD: wcd}
	if wcd > 0 {
		res.Agreement = inLoopWCD / wcd
	}
	return res, nil
}
