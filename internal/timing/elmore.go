// Package timing implements the delay machinery of the paper (§3.5): a
// detailed Elmore RC-tree model for physically embedded nets that accounts
// for every programmed antifuse and segment the route uses, a crude
// spatial-extent estimator for nets that are not yet embedded, one-time
// levelization, full and incremental (level-ordered frontier) worst-case
// arrival propagation with journaled undo, and an independently coded
// post-layout analyzer standing in for the RICE AWE evaluator used in the
// paper's experiments.
package timing

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/layout"
)

// rcEdge is one resistive connection of the undirected RC graph.
type rcEdge struct {
	to int
	r  float64
}

// rcGraph is the per-net RC network. Topologically it is always a tree; it
// is built undirected and oriented away from the source when evaluated.
type rcGraph struct {
	cap    []float64
	adj    [][]rcEdge
	sinkAt []int // node -> sink index or -1
}

func newRCGraph() *rcGraph { return &rcGraph{} }

// reset clears the graph for reuse, keeping the allocated storage.
func (g *rcGraph) reset() {
	g.cap = g.cap[:0]
	for i := range g.adj {
		g.adj[i] = g.adj[i][:0]
	}
	g.adj = g.adj[:0]
	g.sinkAt = g.sinkAt[:0]
}

func (g *rcGraph) addNode(c float64) int {
	g.cap = append(g.cap, c)
	if len(g.adj) < cap(g.adj) {
		g.adj = g.adj[:len(g.adj)+1]
	} else {
		g.adj = append(g.adj, nil)
	}
	g.sinkAt = append(g.sinkAt, -1)
	return len(g.cap) - 1
}

func (g *rcGraph) addCap(n int, c float64) { g.cap[n] += c }

// addEdge connects a and b with resistance r and wire capacitance c split
// evenly between the endpoints.
func (g *rcGraph) addEdge(a, b int, r, c float64) {
	g.adj[a] = append(g.adj[a], rcEdge{to: b, r: r})
	g.adj[b] = append(g.adj[b], rcEdge{to: a, r: r})
	g.cap[a] += c / 2
	g.cap[b] += c / 2
}

// elmore roots the tree at node root and returns the Elmore delay to each of
// the nsinks sink nodes. Scratch storage comes from dc when non-nil.
func (g *rcGraph) elmore(root, nsinks int, dc *DelayCalc) ([]float64, error) {
	n := len(g.cap)
	var parent []int
	var parentR, down, delay []float64
	var order, stack []int
	if dc != nil {
		parent = resizeInts(&dc.parent, n)
		parentR = resizeFloats(&dc.parentR, n)
		down = resizeFloats(&dc.down, n)
		delay = resizeFloats(&dc.delay, n)
		order = dc.order[:0]
		stack = dc.stack[:0]
		defer func() { dc.order, dc.stack = order, stack }()
	} else {
		parent = make([]int, n)
		parentR = make([]float64, n)
		down = make([]float64, n)
		delay = make([]float64, n)
		order = make([]int, 0, n)
	}
	for i := range parent {
		parent[i] = -2 // unvisited
	}
	parent[root] = -1
	stack = append(stack, root)
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		order = append(order, u)
		for _, e := range g.adj[u] {
			if parent[e.to] == -2 {
				parent[e.to] = u
				parentR[e.to] = e.r
				stack = append(stack, e.to)
			} else if e.to != parent[u] {
				return nil, fmt.Errorf("timing: RC network is not a tree")
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("timing: RC network is disconnected (%d of %d nodes reached)", len(order), n)
	}
	// Reverse preorder gives children before parents: accumulate downstream
	// capacitance, then delays in preorder.
	copy(down, g.cap)
	for i := n - 1; i >= 1; i-- {
		u := order[i]
		down[parent[u]] += down[u]
	}
	for i := range delay {
		delay[i] = 0
	}
	for _, u := range order[1:] {
		delay[u] = delay[parent[u]] + parentR[u]*down[u]
	}
	var out []float64
	if dc != nil {
		out = resizeFloats(&dc.out, nsinks)
		for i := range out {
			out[i] = 0
		}
	} else {
		out = make([]float64, nsinks)
	}
	for u := 0; u < n; u++ {
		if s := g.sinkAt[u]; s >= 0 {
			out[s] = delay[u]
		}
	}
	return out, nil
}

type tapKind uint8

const (
	driverTap tapKind = iota
	sinkTap
	trunkTap
)

// tap is a connection point on a horizontal run.
type tap struct {
	col  int
	kind tapKind
	sink int // sink index for sinkTap, else -1
}

// sortTapsByCol orders a channel's taps by column with a stable insertion
// sort. A channel holds a handful of taps, and unlike sort.SliceStable this
// allocates nothing; stability makes it produce the identical ordering for
// equal columns.
func sortTapsByCol(ts []tap) {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && ts[j].col < ts[j-1].col; j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
}

// NetDelays computes the Elmore delay from the net's driver to each sink of
// a completely detail-routed net, using the exact segments and antifuses the
// route occupies. The returned slice is indexed like Nets[id].Sinks.
//
// The model: the driver resistance feeds a cross antifuse onto the horizontal
// run in the driver's channel. Each horizontal run is an RC line over the
// full allocated segment span, with a programmed antifuse (RAntifuse,
// CAntifuse) at every internal segment boundary. A multi-channel net's runs
// are joined by the vertical trunk — an RC line with antifuses at vertical
// segment boundaries — tapped into each run through an antifuse. Sinks hang
// off their run through a cross antifuse plus pin load.
//
// wireLoad scales wire capacitance; the in-loop model uses 1.0 while the
// independent verify analyzer uses a slightly higher factor to model the
// unprogrammed-antifuse site loading it resolves explicitly.
func NetDelays(p *layout.Placement, id int32, r *fabric.NetRoute, wireLoad float64) ([]float64, error) {
	return (&DelayCalc{}).NetDelays(p, id, r, wireLoad)
}

// DelayCalc computes per-net Elmore delays while reusing all intermediate
// storage across calls — the allocation-free fast path for the annealer's
// inner loop. The slice returned by NetDelays is valid until the next call.
type DelayCalc struct {
	g rcGraph

	// Dense per-channel tap scratch. tapsByCh/trunkAt are indexed by channel
	// and only the channels in touched carry state; resetting walks touched
	// instead of the whole fabric. (These were maps before, but clearing a map
	// and re-appending from nil allocates on every call — this is the
	// annealer's per-move path.)
	tapsByCh [][]tap
	trunkAt  []int
	touched  []int

	chs     []int
	vbounds []int
	bounds  []int
	chain   []int
	vnodes  []int
	out     []float64

	parent       []int
	order, stack []int
	parentR      []float64
	down, delay  []float64
}

// addTap records a tap in the dense per-channel scratch, tracking first
// touches so the next call can reset only what this one used.
func (dc *DelayCalc) addTap(ch int, tp tap) {
	if len(dc.tapsByCh[ch]) == 0 {
		dc.touched = append(dc.touched, ch)
	}
	dc.tapsByCh[ch] = append(dc.tapsByCh[ch], tp)
}

func resizeInts(s *[]int, n int) []int {
	if cap(*s) < n {
		*s = make([]int, n)
	}
	*s = (*s)[:n]
	return *s
}

func resizeFloats(s *[]float64, n int) []float64 {
	if cap(*s) < n {
		*s = make([]float64, n)
	}
	*s = (*s)[:n]
	return *s
}

// NetDelays is the reusing variant of the package-level NetDelays.
func (dc *DelayCalc) NetDelays(p *layout.Placement, id int32, r *fabric.NetRoute, wireLoad float64) ([]float64, error) {
	if !r.DetailDone() {
		return nil, fmt.Errorf("timing: net %d is not completely routed", id)
	}
	nl := p.NL
	net := &nl.Nets[id]
	if len(net.Sinks) == 0 {
		return nil, nil
	}
	a := p.A
	rc := a.RC
	g := &dc.g
	g.reset()
	source := g.addNode(0)

	// Gather taps per channel, resetting only the channels touched last call.
	for len(dc.tapsByCh) < a.Channels() {
		dc.tapsByCh = append(dc.tapsByCh, nil)
		dc.trunkAt = append(dc.trunkAt, -1)
	}
	for _, ch := range dc.touched {
		dc.tapsByCh[ch] = dc.tapsByCh[ch][:0]
		dc.trunkAt[ch] = -1
	}
	dc.touched = dc.touched[:0]
	drvCh, drvCol := p.PinPos(net.Driver)
	dc.addTap(drvCh, tap{col: drvCol, kind: driverTap, sink: -1})
	for si, s := range net.Sinks {
		ch, col := p.PinPos(s)
		dc.addTap(ch, tap{col: col, kind: sinkTap, sink: si})
	}
	if r.HasTrunk {
		for i := range r.Chans {
			dc.addTap(r.Chans[i].Ch, tap{col: r.TrunkCol, kind: trunkTap, sink: -1})
		}
	}

	trunkNode := dc.trunkAt // channel -> run node at trunk column, -1 unset
	seenDriver := false
	for i := range r.Chans {
		ca := &r.Chans[i]
		ts := dc.tapsByCh[ca.Ch]
		if len(ts) == 0 {
			return nil, fmt.Errorf("timing: net %d routed channel %d has no taps", id, ca.Ch)
		}
		sortTapsByCol(ts)
		segs := a.Seg[ca.Track]
		runStart := segs[ca.SegLo].Start
		runEnd := segs[ca.SegHi].End // exclusive
		boundaries := dc.bounds[:0]
		for s := ca.SegLo; s < ca.SegHi; s++ {
			boundaries = append(boundaries, segs[s].End)
		}
		dc.bounds = boundaries
		span := func(x0, x1 int) (wire float64, nb int) {
			for _, b := range boundaries {
				if b > x0 && b <= x1 {
					nb++
				}
			}
			return float64(x1 - x0), nb
		}

		// Chain the tap nodes along the run.
		chain := resizeInts(&dc.chain, len(ts))
		for ti := range ts {
			chain[ti] = g.addNode(0)
			if ti > 0 {
				wire, nb := span(ts[ti-1].col, ts[ti].col)
				g.addEdge(chain[ti-1], chain[ti],
					rc.RUnit*wire+rc.RAntifuse*float64(nb),
					wireLoad*rc.CUnit*wire+rc.CAntifuse*float64(nb))
			}
		}
		// Overhang: allocated-but-unused segment length still loads the net.
		lw, lnb := span(runStart, ts[0].col)
		g.addCap(chain[0], wireLoad*rc.CUnit*lw+rc.CAntifuse*float64(lnb))
		rw, rnb := span(ts[len(ts)-1].col, runEnd)
		g.addCap(chain[len(ts)-1], wireLoad*rc.CUnit*rw+rc.CAntifuse*float64(rnb))

		for ti, tp := range ts {
			node := chain[ti]
			switch tp.kind {
			case driverTap:
				g.addEdge(source, node, rc.RDriver+rc.RCross, 0)
				g.addCap(node, rc.CCross)
				seenDriver = true
			case sinkTap:
				pin := g.addNode(rc.CCross + rc.CPin)
				g.addEdge(node, pin, rc.RCross, 0)
				g.sinkAt[pin] = tp.sink
			case trunkTap:
				trunkNode[ca.Ch] = node
			}
		}
	}
	if !seenDriver {
		return nil, fmt.Errorf("timing: net %d driver channel %d not covered by route", id, drvCh)
	}

	if r.HasTrunk {
		// Channels carrying a trunk tap, ascending. r.Chans holds one entry
		// per channel, so insertion-sorting its (unique) channel ids yields
		// exactly what sorting the old map's keys did.
		chs := dc.chs[:0]
		for i := range r.Chans {
			chs = append(chs, r.Chans[i].Ch)
		}
		for i := 1; i < len(chs); i++ {
			for j := i; j > 0 && chs[j] < chs[j-1]; j-- {
				chs[j], chs[j-1] = chs[j-1], chs[j]
			}
		}
		dc.chs = chs
		vBoundaries := dc.vbounds[:0]
		for s := r.VLo; s < r.VHi; s++ {
			vBoundaries = append(vBoundaries, (s+1)*a.VSpan)
		}
		dc.vbounds = vBoundaries
		vspan := func(c0, c1 int) (wire float64, nb int) {
			for _, b := range vBoundaries {
				if b > c0 && b <= c1 {
					nb++
				}
			}
			return float64(c1 - c0), nb
		}
		// One vertical node per tapped channel, chained in channel order,
		// each joined to its run through a programmed antifuse.
		vnodes := resizeInts(&dc.vnodes, len(chs))
		for i, ch := range chs {
			vnodes[i] = g.addNode(0)
			g.addEdge(vnodes[i], trunkNode[ch], rc.RAntifuse, rc.CAntifuse)
			if i > 0 {
				wire, nb := vspan(chs[i-1], chs[i])
				g.addEdge(vnodes[i-1], vnodes[i],
					rc.RVUnit*wire+rc.RAntifuse*float64(nb),
					wireLoad*rc.CVUnit*wire+rc.CAntifuse*float64(nb))
			}
		}
		// Vertical overhang beyond the extreme tapped channels.
		vLoCh := r.VLo * a.VSpan
		vHiCh := (r.VHi+1)*a.VSpan - 1
		if vHiCh > a.Channels()-1 {
			vHiCh = a.Channels() - 1
		}
		lw, lnb := vspan(vLoCh, chs[0])
		g.addCap(vnodes[0], wireLoad*rc.CVUnit*lw+rc.CAntifuse*float64(lnb))
		hw, hnb := vspan(chs[len(chs)-1], vHiCh)
		g.addCap(vnodes[len(chs)-1], wireLoad*rc.CVUnit*hw+rc.CAntifuse*float64(hnb))
	}

	return g.elmore(source, len(net.Sinks), dc)
}
