package timing

import (
	"math"
	"sort"

	"repro/internal/netlist"
)

// SlackReport carries the results of a required-time analysis against a
// delay target.
type SlackReport struct {
	Target float64   // the required time used (usually the WCD itself)
	Slack  []float64 // per cell: required output time minus arrival
}

// Slacks runs a backward required-time propagation against target (pass the
// current WCD to measure each cell's margin relative to the critical path;
// cells on it get slack 0). Cells whose output reaches no timing sink get
// +Inf slack.
func (t *Analyzer) Slacks(target float64) SlackReport {
	n := len(t.nl.Cells)
	reqOut := make([]float64, n)
	t.requiredInto(reqOut, target)
	rep := SlackReport{Target: target, Slack: make([]float64, n)}
	for i := range rep.Slack {
		rep.Slack[i] = reqOut[i] - t.arr[i]
	}
	return rep
}

// requiredInto fills reqOut (one entry per cell) with required output times
// against target via a backward pass in reverse level order. Cells whose
// output reaches no timing sink get +Inf. Allocation-free; shared by Slacks,
// NetCriticality and the damped Criticality extractor.
func (t *Analyzer) requiredInto(reqOut []float64, target float64) {
	for i := range reqOut {
		reqOut[i] = math.Inf(1)
	}
	// Walk cells in reverse level order; boundary sink pins require target.
	for i := len(reqOut) - 1; i >= 0; i-- {
		cell := t.order[i]
		c := &t.nl.Cells[cell]
		// Required at this cell's input pins.
		var reqIn float64
		switch c.Type {
		case netlist.Output, netlist.Seq:
			reqIn = target
		default:
			if math.IsInf(reqOut[cell], 1) {
				continue
			}
			reqIn = reqOut[cell] - c.Delay
		}
		for pi, nid := range c.In {
			if nid < 0 {
				continue
			}
			drv := t.nl.Nets[nid].Driver.Cell
			r := reqIn - t.netDelay[nid][t.sinkIdx[cell][pi]]
			if r < reqOut[drv] {
				reqOut[drv] = r
			}
		}
	}
}

// NetCriticality returns, per net, 1 - slack/target clamped to [0,1]: 1 for
// nets on the critical path, approaching 0 for timing-irrelevant nets. The
// slack of a net is the minimum over its sink pins of
// required(pin) - arrival(pin).
func (t *Analyzer) NetCriticality(target float64) []float64 {
	out := make([]float64, t.nl.NumNets())
	reqOut := make([]float64, len(t.nl.Cells))
	t.netCriticalityInto(out, reqOut, target)
	return out
}

// netCriticalityInto is the allocation-free core of NetCriticality: out gets
// one criticality per net, reqOut is per-cell scratch (both must be sized by
// the caller).
func (t *Analyzer) netCriticalityInto(out, reqOut []float64, target float64) {
	t.requiredInto(reqOut, target)
	for i := range t.nl.Nets {
		n := &t.nl.Nets[i]
		minSlack := math.Inf(1)
		for si, s := range n.Sinks {
			c := &t.nl.Cells[s.Cell]
			// required at pin = required at cell output - cell delay for
			// comb; = target for boundary sinks.
			var reqIn float64
			switch c.Type {
			case netlist.Output, netlist.Seq:
				reqIn = target
			default:
				reqIn = reqOut[s.Cell] - c.Delay
			}
			arrAtPin := t.arr[n.Driver.Cell] + t.netDelay[i][si]
			if sl := reqIn - arrAtPin; sl < minSlack {
				minSlack = sl
			}
		}
		if math.IsInf(minSlack, 1) || target <= 0 {
			out[i] = 0
			continue
		}
		crit := 1 - minSlack/target
		if crit < 0 {
			crit = 0
		}
		if crit > 1 {
			crit = 1
		}
		out[i] = crit
	}
}

// Path is one register-to-register (or pad-to-pad) timing path.
type Path struct {
	Cells   []int32 // source first
	Arrival float64 // arrival at the terminating sink pin
}

// TopPaths returns up to k paths, worst first, one per distinct terminating
// sink pin (the classic per-endpoint view of critical paths). Ties on the
// arrival time break on (cell, pin), so the returned path set is a strict
// total order — identical on every machine and GOMAXPROCS setting.
func (t *Analyzer) TopPaths(k int) []Path {
	type endpoint struct {
		pin netlist.PinRef
		arr float64
	}
	eps := make([]endpoint, 0, len(t.sinkPins))
	for _, p := range t.sinkPins {
		eps = append(eps, endpoint{pin: p, arr: t.pinArrival(p)})
	}
	sort.Slice(eps, func(i, j int) bool {
		if eps[i].arr != eps[j].arr {
			return eps[i].arr > eps[j].arr
		}
		if eps[i].pin.Cell != eps[j].pin.Cell {
			return eps[i].pin.Cell < eps[j].pin.Cell
		}
		return eps[i].pin.Pin < eps[j].pin.Pin
	})
	if k > len(eps) {
		k = len(eps)
	}
	out := make([]Path, 0, k)
	for _, ep := range eps[:k] {
		out = append(out, Path{Cells: t.traceBack(ep.pin), Arrival: ep.arr})
	}
	return out
}

// traceBack walks upstream from a sink pin along worst-arrival inputs.
func (t *Analyzer) traceBack(pin netlist.PinRef) []int32 {
	var rev []int32
	rev = append(rev, pin.Cell)
	nid := t.nl.Cells[pin.Cell].In[pin.Pin-1]
	cell := t.nl.Nets[nid].Driver.Cell
	for {
		rev = append(rev, cell)
		if t.nl.IsSource(cell) {
			break
		}
		c := &t.nl.Cells[cell]
		best := int32(-1)
		bv := math.Inf(-1)
		for pi, in := range c.In {
			if in < 0 {
				continue
			}
			v := t.arr[t.nl.Nets[in].Driver.Cell] + t.netDelay[in][t.sinkIdx[cell][pi]]
			if v > bv {
				bv = v
				best = t.nl.Nets[in].Driver.Cell
			}
		}
		if best < 0 {
			break
		}
		cell = best
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}
