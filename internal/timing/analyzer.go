package timing

import (
	"fmt"

	"repro/internal/netlist"
)

// Analyzer maintains worst-case arrival times over an evolving layout. Cells
// are levelized once (levels depend only on connectivity); after that, net
// delay changes are propagated incrementally through a level-ordered frontier
// (paper §3.5) with journaled undo so the annealer can reject moves cheaply.
//
// Usage per move: Begin, then SetNetDelays for every affected net, then
// Propagate to get the new worst-case delay; finally Commit or Revert.
type Analyzer struct {
	nl    *netlist.Netlist
	level []int32
	order []int32 // cell ids sorted by level, for full recomputation

	arr      []float64   // per cell: output arrival time
	netDelay [][]float64 // per net: per-sink interconnect delay
	sinkIdx  [][]int32   // per cell, per input pin: index into net.Sinks
	sinkPins []netlist.PinRef
	wcd      float64
	stats    Stats

	// Move journal.
	inMove     bool
	jCells     []int32
	jOldArr    []float64
	jNets      []int32
	jOldDelay  [][]float64
	jOldWCD    float64
	stamp      []uint32 // per cell: epoch when journaled
	netStamp   []uint32 // per net: epoch when journaled
	epoch      uint32
	frontier   levelHeap
	inFrontier []uint32 // per cell: epoch when enqueued
}

// Stats counts incremental-analysis activity: how many net-delay updates were
// pushed in, how many propagation passes ran, and how many cell arrivals were
// actually recomputed by the frontier. The counters are always on (plain
// integer adds); the observability layer snapshots them at temperature
// boundaries.
type Stats struct {
	NetUpdates   int64 // SetNetDelays calls
	Propagates   int64 // Propagate calls
	CellsRelaxed int64 // cell arrivals changed by frontier propagation
}

// Sub returns the delta s - prev, for per-interval reporting.
func (s Stats) Sub(prev Stats) Stats {
	return Stats{
		NetUpdates:   s.NetUpdates - prev.NetUpdates,
		Propagates:   s.Propagates - prev.Propagates,
		CellsRelaxed: s.CellsRelaxed - prev.CellsRelaxed,
	}
}

// Stats returns the analyzer's cumulative activity counters.
func (t *Analyzer) Stats() Stats { return t.stats }

// NewAnalyzer levelizes the netlist and initializes all net delays to zero
// (arrivals then reflect pure logic depth until delays are supplied).
func NewAnalyzer(nl *netlist.Netlist) (*Analyzer, error) {
	level, err := nl.Levels()
	if err != nil {
		return nil, err
	}
	t := &Analyzer{nl: nl, level: level}
	n := nl.NumCells()
	t.order = make([]int32, n)
	for i := range t.order {
		t.order[i] = int32(i)
	}
	// Counting-sort cells by level.
	maxL := int32(0)
	for _, l := range level {
		if l > maxL {
			maxL = l
		}
	}
	buckets := make([][]int32, maxL+1)
	for i := int32(0); i < int32(n); i++ {
		buckets[level[i]] = append(buckets[level[i]], i)
	}
	t.order = t.order[:0]
	for _, b := range buckets {
		t.order = append(t.order, b...)
	}

	t.arr = make([]float64, n)
	t.netDelay = make([][]float64, nl.NumNets())
	for i := range t.netDelay {
		t.netDelay[i] = make([]float64, len(nl.Nets[i].Sinks))
	}
	t.sinkIdx = make([][]int32, n)
	for i := range nl.Cells {
		t.sinkIdx[i] = make([]int32, len(nl.Cells[i].In))
		for pi := range t.sinkIdx[i] {
			t.sinkIdx[i][pi] = -1
		}
	}
	for ni := range nl.Nets {
		for si, s := range nl.Nets[ni].Sinks {
			t.sinkIdx[s.Cell][s.Pin-1] = int32(si)
		}
	}
	for i := range nl.Cells {
		c := &nl.Cells[i]
		if c.Type == netlist.Output || c.Type == netlist.Seq {
			for pi := range c.In {
				if c.In[pi] >= 0 {
					t.sinkPins = append(t.sinkPins, netlist.PinRef{Cell: int32(i), Pin: int32(pi + 1)})
				}
			}
		}
	}
	t.stamp = make([]uint32, n)
	t.netStamp = make([]uint32, nl.NumNets())
	t.inFrontier = make([]uint32, n)
	t.Full()
	return t, nil
}

// Clone returns a deep copy of the analyzer's committed state, sharing only
// the immutable netlist and levelization tables. The clone starts with fresh
// journal scratch; cloning inside an open move is a programming error.
func (t *Analyzer) Clone() *Analyzer {
	if t.inMove {
		panic("timing: Clone inside an open move")
	}
	c := &Analyzer{
		nl:       t.nl,
		level:    t.level,
		order:    t.order,
		arr:      append([]float64(nil), t.arr...),
		netDelay: make([][]float64, len(t.netDelay)),
		sinkIdx:  t.sinkIdx,
		sinkPins: t.sinkPins,
		wcd:      t.wcd,
		stats:    t.stats,

		stamp:      make([]uint32, len(t.stamp)),
		netStamp:   make([]uint32, len(t.netStamp)),
		inFrontier: make([]uint32, len(t.inFrontier)),
	}
	for i := range t.netDelay {
		c.netDelay[i] = append([]float64(nil), t.netDelay[i]...)
	}
	return c
}

// computeArr evaluates a cell's output arrival from current state.
func (t *Analyzer) computeArr(cell int32) float64 {
	c := &t.nl.Cells[cell]
	switch c.Type {
	case netlist.Input, netlist.Seq:
		return c.Delay
	}
	m := 0.0
	for pi, nid := range c.In {
		if nid < 0 {
			continue
		}
		v := t.arr[t.nl.Nets[nid].Driver.Cell] + t.netDelay[nid][t.sinkIdx[cell][pi]]
		if v > m {
			m = v
		}
	}
	return m + c.Delay
}

// pinArrival returns the arrival time at a sink pin.
func (t *Analyzer) pinArrival(p netlist.PinRef) float64 {
	nid := t.nl.Cells[p.Cell].In[p.Pin-1]
	return t.arr[t.nl.Nets[nid].Driver.Cell] + t.netDelay[nid][t.sinkIdx[p.Cell][p.Pin-1]]
}

// scanWCD computes the worst arrival over all timing sink pins.
func (t *Analyzer) scanWCD() float64 {
	w := 0.0
	for _, p := range t.sinkPins {
		if v := t.pinArrival(p); v > w {
			w = v
		}
	}
	return w
}

// Full recomputes every arrival from scratch in level order and refreshes the
// worst-case delay. Used at initialization and as the reference in tests.
func (t *Analyzer) Full() {
	for _, id := range t.order {
		t.arr[id] = t.computeArr(id)
	}
	t.wcd = t.scanWCD()
}

// WCD returns the current worst-case (critical path) delay.
func (t *Analyzer) WCD() float64 { return t.wcd }

// Arrival returns the cell's current output arrival time.
func (t *Analyzer) Arrival(cell int32) float64 { return t.arr[cell] }

// NetDelay returns the current per-sink delay cache for a net. The slice is
// owned by the analyzer; callers must not mutate it.
func (t *Analyzer) NetDelay(id int32) []float64 { return t.netDelay[id] }

// Begin opens a move journal. Nested moves are a programming error.
func (t *Analyzer) Begin() {
	if t.inMove {
		panic("timing: Begin inside an open move")
	}
	t.inMove = true
	t.epoch++
	t.jCells = t.jCells[:0]
	t.jOldArr = t.jOldArr[:0]
	t.jNets = t.jNets[:0]
	t.jOldDelay = t.jOldDelay[:0]
	t.jOldWCD = t.wcd
}

// SetNetDelays replaces a net's per-sink delays inside an open move,
// journaling the old values. d must have one entry per sink; it is copied.
func (t *Analyzer) SetNetDelays(id int32, d []float64) {
	if !t.inMove {
		panic("timing: SetNetDelays outside a move")
	}
	if len(d) != len(t.netDelay[id]) {
		panic(fmt.Sprintf("timing: net %d delay arity %d, want %d", id, len(d), len(t.netDelay[id])))
	}
	t.stats.NetUpdates++
	if t.netStamp[id] != t.epoch {
		t.netStamp[id] = t.epoch
		t.jNets = append(t.jNets, id)
		// Reuse the journal slot's backing storage across moves.
		if len(t.jOldDelay) < cap(t.jOldDelay) {
			t.jOldDelay = t.jOldDelay[:len(t.jOldDelay)+1]
		} else {
			t.jOldDelay = append(t.jOldDelay, nil)
		}
		last := len(t.jOldDelay) - 1
		t.jOldDelay[last] = append(t.jOldDelay[last][:0], t.netDelay[id]...)
	}
	copy(t.netDelay[id], d)
}

// Propagate pushes the consequences of all SetNetDelays calls in this move
// through the levelized frontier and returns the new worst-case delay. It may
// be called once per move, after all delay updates.
func (t *Analyzer) Propagate() float64 {
	if !t.inMove {
		panic("timing: Propagate outside a move")
	}
	t.stats.Propagates++
	t.frontier = t.frontier[:0]
	for _, nid := range t.jNets {
		for _, s := range t.nl.Nets[nid].Sinks {
			t.push(s.Cell)
		}
	}
	for len(t.frontier) > 0 {
		cell := t.pop()
		nv := t.computeArr(cell)
		if nv == t.arr[cell] {
			continue
		}
		if t.stamp[cell] != t.epoch {
			t.stamp[cell] = t.epoch
			t.jCells = append(t.jCells, cell)
			t.jOldArr = append(t.jOldArr, t.arr[cell])
		}
		t.arr[cell] = nv
		t.stats.CellsRelaxed++
		if out := t.nl.Cells[cell].Out; out >= 0 {
			for _, s := range t.nl.Nets[out].Sinks {
				t.push(s.Cell)
			}
		}
	}
	t.wcd = t.scanWCD()
	return t.wcd
}

// push enqueues a cell unless it is a timing source (whose arrival never
// depends on inputs) or already queued this move.
func (t *Analyzer) push(cell int32) {
	if t.nl.IsSource(cell) || t.inFrontier[cell] == t.epoch {
		return
	}
	t.inFrontier[cell] = t.epoch
	t.frontier.push(cell, t.level[cell])
}

func (t *Analyzer) pop() int32 {
	cell := t.frontier.pop()
	t.inFrontier[cell] = 0
	return cell
}

// Commit closes the move keeping the new state.
func (t *Analyzer) Commit() {
	if !t.inMove {
		panic("timing: Commit outside a move")
	}
	t.inMove = false
}

// Revert closes the move restoring every journaled arrival and net delay.
func (t *Analyzer) Revert() {
	if !t.inMove {
		panic("timing: Revert outside a move")
	}
	for i, id := range t.jNets {
		copy(t.netDelay[id], t.jOldDelay[i])
	}
	for i, c := range t.jCells {
		t.arr[c] = t.jOldArr[i]
	}
	t.wcd = t.jOldWCD
	t.inMove = false
}

// CriticalPath traces back from the worst sink pin and returns the cells on
// the critical path, source first.
func (t *Analyzer) CriticalPath() []int32 {
	if len(t.sinkPins) == 0 {
		return nil
	}
	worst := t.sinkPins[0]
	wv := t.pinArrival(worst)
	for _, p := range t.sinkPins[1:] {
		if v := t.pinArrival(p); v > wv {
			worst, wv = p, v
		}
	}
	var rev []int32
	cell := worst.Cell
	rev = append(rev, cell)
	// Walk upstream from the worst pin's driver.
	nid := t.nl.Cells[worst.Cell].In[worst.Pin-1]
	cell = t.nl.Nets[nid].Driver.Cell
	for {
		rev = append(rev, cell)
		if t.nl.IsSource(cell) {
			break
		}
		c := &t.nl.Cells[cell]
		best := int32(-1)
		bv := -1.0
		for pi, in := range c.In {
			if in < 0 {
				continue
			}
			v := t.arr[t.nl.Nets[in].Driver.Cell] + t.netDelay[in][t.sinkIdx[cell][pi]]
			if v > bv {
				bv = v
				best = t.nl.Nets[in].Driver.Cell
			}
		}
		if best < 0 {
			break
		}
		cell = best
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// levelHeap is a binary min-heap of cells keyed by level.
type levelHeap []levelItem

type levelItem struct {
	cell  int32
	level int32
}

func (h *levelHeap) push(cell, level int32) {
	*h = append(*h, levelItem{cell, level})
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if (*h)[p].level <= (*h)[i].level {
			break
		}
		(*h)[p], (*h)[i] = (*h)[i], (*h)[p]
		i = p
	}
}

func (h *levelHeap) pop() int32 {
	top := (*h)[0].cell
	last := len(*h) - 1
	(*h)[0] = (*h)[last]
	*h = (*h)[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < last && (*h)[l].level < (*h)[m].level {
			m = l
		}
		if r < last && (*h)[r].level < (*h)[m].level {
			m = r
		}
		if m == i {
			break
		}
		(*h)[i], (*h)[m] = (*h)[m], (*h)[i]
		i = m
	}
	return top
}
