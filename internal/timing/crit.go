package timing

// Criticality maintains exponentially damped per-net timing criticalities
// over an evolving Analyzer. The instantaneous criticality of a net is
// 1 - slack/target clamped to [0,1] (1 on the critical path, toward 0 for
// timing-irrelevant nets), extracted from the analyzer's levelized arrival
// data by a single backward required-time pass. Because the annealer's view
// of which paths matter is noisy move to move, consumers fold each fresh
// extraction into a damped running value:
//
//	crit[i] ← damping·crit[i] + (1-damping)·inst[i]
//
// Update is intended to run at temperature boundaries only — one O(cells +
// pins) pass per temperature, nothing on the per-move hot path — and is
// allocation-free after construction (the backward-pass scratch is reused).
type Criticality struct {
	an      *Analyzer
	damping float64
	primed  bool
	crit    []float64 // damped per-net criticality, each in [0,1]
	inst    []float64 // scratch: last instantaneous extraction
	reqOut  []float64 // scratch: per-cell required output time
}

// NewCriticality builds an extractor over the analyzer. damping is the weight
// of history in each update, clamped to [0,1): 0 tracks the instantaneous
// criticality exactly, values toward 1 smooth it over many temperatures. The
// first Update primes the running values undamped (there is no history yet).
func NewCriticality(an *Analyzer, damping float64) *Criticality {
	if damping < 0 || damping >= 1 {
		damping = 0
	}
	return &Criticality{
		an:      an,
		damping: damping,
		crit:    make([]float64, an.nl.NumNets()),
		inst:    make([]float64, an.nl.NumNets()),
		reqOut:  make([]float64, len(an.nl.Cells)),
	}
}

// Update extracts instantaneous criticalities against the analyzer's current
// worst-case delay and folds them into the damped running values. It must be
// called outside an open move (the analyzer's committed state is what is
// extracted).
func (c *Criticality) Update() {
	c.an.netCriticalityInto(c.inst, c.reqOut, c.an.WCD())
	if !c.primed {
		c.primed = true
		copy(c.crit, c.inst)
		return
	}
	a := c.damping
	for i, v := range c.inst {
		c.crit[i] = a*c.crit[i] + (1-a)*v
	}
}

// Value returns the current damped criticality of a net.
func (c *Criticality) Value(net int32) float64 { return c.crit[net] }

// Values returns the damped per-net criticalities. The slice is owned by the
// extractor; callers must not mutate it and must not hold it across Update.
func (c *Criticality) Values() []float64 { return c.crit }

// Damping returns the configured history weight.
func (c *Criticality) Damping() float64 { return c.damping }

// Clone returns a deep copy of the extractor bound to the given analyzer
// (which must be a clone of the original's — the parallel annealing engine
// clones both together).
func (c *Criticality) Clone(an *Analyzer) *Criticality {
	return &Criticality{
		an:      an,
		damping: c.damping,
		primed:  c.primed,
		crit:    append([]float64(nil), c.crit...),
		inst:    make([]float64, len(c.inst)),
		reqOut:  make([]float64, len(c.reqOut)),
	}
}
