package timing

import (
	"math/rand"
	"runtime"
	"testing"
	"testing/quick"

	"repro/internal/netgen"
)

func critTestAnalyzer(t testing.TB, seed int64) *Analyzer {
	t.Helper()
	nl, err := netgen.Generate(netgen.Params{Name: "c", Inputs: 6, Outputs: 5, Seq: 4, Comb: 60, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	an, err := NewAnalyzer(nl)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	an.Begin()
	for id := int32(0); id < int32(nl.NumNets()); id++ {
		d := make([]float64, len(nl.Nets[id].Sinks))
		for i := range d {
			d[i] = rng.Float64() * 2000
		}
		an.SetNetDelays(id, d)
	}
	an.Propagate()
	an.Commit()
	return an
}

// perturb pushes random delay changes into a random subset of nets.
func perturb(an *Analyzer, rng *rand.Rand) {
	an.Begin()
	for k := 0; k < 1+rng.Intn(5); k++ {
		id := int32(rng.Intn(an.nl.NumNets()))
		d := make([]float64, len(an.nl.Nets[id].Sinks))
		for i := range d {
			d[i] = rng.Float64() * 2000
		}
		an.SetNetDelays(id, d)
	}
	an.Propagate()
	an.Commit()
}

// TestCriticalityBounds: after any sequence of delay perturbations and damped
// updates, every criticality lies in [0,1].
func TestCriticalityBounds(t *testing.T) {
	check := func(seed int64, dampSel uint8) bool {
		an := critTestAnalyzer(t, seed)
		damping := float64(dampSel%10) / 10 // 0.0 .. 0.9
		c := NewCriticality(an, damping)
		rng := rand.New(rand.NewSource(seed + 7))
		for round := 0; round < 8; round++ {
			c.Update()
			for i, v := range c.Values() {
				if v < 0 || v > 1 {
					t.Logf("seed %d round %d: net %d criticality %v out of [0,1]", seed, round, i, v)
					return false
				}
			}
			perturb(an, rng)
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// TestCriticalityUndampedMatchesNetCriticality: damping 0 tracks the
// instantaneous extraction exactly.
func TestCriticalityUndampedMatchesNetCriticality(t *testing.T) {
	an := critTestAnalyzer(t, 3)
	c := NewCriticality(an, 0)
	rng := rand.New(rand.NewSource(11))
	for round := 0; round < 5; round++ {
		c.Update()
		want := an.NetCriticality(an.WCD())
		for i, v := range c.Values() {
			if v != want[i] {
				t.Fatalf("round %d net %d: damped-0 value %v, instantaneous %v", round, i, v, want[i])
			}
		}
		perturb(an, rng)
	}
}

// TestCriticalityDampedUpdateMath: each update folds the instantaneous value
// with exactly crit ← a·crit + (1-a)·inst, primed undamped on the first call.
func TestCriticalityDampedUpdateMath(t *testing.T) {
	an := critTestAnalyzer(t, 5)
	const a = 0.6
	c := NewCriticality(an, a)
	rng := rand.New(rand.NewSource(13))

	want := an.NetCriticality(an.WCD()) // first update primes undamped
	c.Update()
	for i, v := range c.Values() {
		if v != want[i] {
			t.Fatalf("prime: net %d got %v, want %v", i, v, want[i])
		}
	}
	for round := 0; round < 4; round++ {
		perturb(an, rng)
		inst := an.NetCriticality(an.WCD())
		for i := range want {
			want[i] = a*want[i] + (1-a)*inst[i]
		}
		c.Update()
		for i, v := range c.Values() {
			if v != want[i] {
				t.Fatalf("round %d net %d: got %v, want %v", round, i, v, want[i])
			}
		}
	}
}

// TestCriticalityCloneIndependent: a clone carries the history but evolves
// independently of the original afterwards.
func TestCriticalityCloneIndependent(t *testing.T) {
	an := critTestAnalyzer(t, 9)
	c := NewCriticality(an, 0.5)
	c.Update()

	an2 := an.Clone()
	c2 := c.Clone(an2)
	before := append([]float64(nil), c.Values()...)
	for i, v := range c2.Values() {
		if v != before[i] {
			t.Fatalf("clone diverged at net %d: %v vs %v", i, v, before[i])
		}
	}

	// Perturb only the clone's analyzer and update only the clone.
	perturb(an2, rand.New(rand.NewSource(2)))
	c2.Update()
	for i, v := range c.Values() {
		if v != before[i] {
			t.Fatalf("original mutated by clone update at net %d: %v vs %v", i, v, before[i])
		}
	}
}

// TestTopPathsDeterministicAcrossGOMAXPROCS: the top-K path set (including
// tie-breaks) is a strict total order — identical under any scheduler
// setting. Run with -race in CI.
func TestTopPathsDeterministicAcrossGOMAXPROCS(t *testing.T) {
	extract := func(maxprocs int) []Path {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(maxprocs))
		an := critTestAnalyzer(t, 17)
		return an.TopPaths(8)
	}
	p1 := extract(1)
	p2 := extract(4)
	if len(p1) != len(p2) {
		t.Fatalf("path count diverged: %d vs %d", len(p1), len(p2))
	}
	for i := range p1 {
		if p1[i].Arrival != p2[i].Arrival {
			t.Errorf("path %d arrival diverged: %v vs %v", i, p1[i].Arrival, p2[i].Arrival)
		}
		if len(p1[i].Cells) != len(p2[i].Cells) {
			t.Fatalf("path %d length diverged: %d vs %d", i, len(p1[i].Cells), len(p2[i].Cells))
		}
		for j := range p1[i].Cells {
			if p1[i].Cells[j] != p2[i].Cells[j] {
				t.Errorf("path %d cell %d diverged: %d vs %d", i, j, p1[i].Cells[j], p2[i].Cells[j])
			}
		}
	}
}

// TestTopPathsWorstFirstAndPerEndpoint: paths come worst first and each
// terminates at a distinct endpoint; the worst one matches CriticalPath.
func TestTopPathsWorstFirstAndPerEndpoint(t *testing.T) {
	an := critTestAnalyzer(t, 23)
	paths := an.TopPaths(6)
	if len(paths) == 0 {
		t.Fatal("no paths returned")
	}
	if paths[0].Arrival != an.WCD() {
		t.Errorf("worst path arrival %v, WCD %v", paths[0].Arrival, an.WCD())
	}
	for i := 1; i < len(paths); i++ {
		if paths[i].Arrival > paths[i-1].Arrival {
			t.Errorf("paths out of order at %d: %v > %v", i, paths[i].Arrival, paths[i-1].Arrival)
		}
	}
	ends := map[int32]bool{}
	for _, p := range paths {
		end := p.Cells[len(p.Cells)-1]
		if ends[end] {
			t.Errorf("duplicate endpoint cell %d", end)
		}
		ends[end] = true
	}
}
