package timing

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/arch"
	"repro/internal/droute"
	"repro/internal/fabric"
	"repro/internal/groute"
	"repro/internal/layout"
	"repro/internal/netgen"
	"repro/internal/netlist"
)

// pairNetlist: one source pad driving one comb sink through net "n".
func pairNetlist() *netlist.Netlist {
	b := netlist.NewBuilder("pair")
	b.Input("d", "n")
	b.Comb("s", 3000, "y", "n")
	b.Output("po", "y")
	return b.MustBuild()
}

func flatArch(segPattern []int, tracks int) *arch.Arch {
	cols := 0
	for _, l := range segPattern {
		cols += l
	}
	p := arch.Default(1, cols, tracks)
	p.SegPattern = segPattern
	p.PhaseStep = 0
	return arch.MustNew(p)
}

func placePair(t *testing.T, a *arch.Arch, nl *netlist.Netlist, dCol, sCol int) *layout.Placement {
	t.Helper()
	p, err := layout.NewRandom(a, nl, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	d, s := nl.CellID("d"), nl.CellID("s")
	p.Swap(p.Loc[d], layout.Loc{Row: 0, Col: dCol})
	p.Swap(p.Loc[s], layout.Loc{Row: 0, Col: sCol})
	p.SetPinmap(d, 3) // output bottom -> channel 0
	p.SetPinmap(s, 2) // inputs bottom -> channel 0
	return p
}

// TestElmoreHandComputed checks NetDelays against an independently derived
// closed form for a two-pin net on a single full-width segment.
func TestElmoreHandComputed(t *testing.T) {
	a := flatArch([]int{8}, 1)
	nl := pairNetlist()
	p := placePair(t, a, nl, 2, 5)
	id := nl.NetID("n")
	r := fabric.NetRoute{Global: true, Chans: []fabric.ChanAssign{
		{Ch: 0, Lo: 2, Hi: 5, Track: 0, SegLo: 0, SegHi: 0},
	}}
	got, err := NetDelays(p, id, &r, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("%d delays, want 1", len(got))
	}
	rc := a.RC
	// Hand derivation: source -RDriver+RCross-> d(2) -3 cols-> s(5) -RCross-> pin.
	// Wire cap: overhang [0,2)=2 at d, span 3 split 1.5/1.5, overhang [5,8)=3 at s.
	cd := rc.CCross + 2*rc.CUnit + 1.5*rc.CUnit
	cs := 1.5*rc.CUnit + 3*rc.CUnit
	cpin := rc.CCross + rc.CPin
	total := cd + cs + cpin
	want := (rc.RDriver+rc.RCross)*total + (rc.RUnit*3)*(cs+cpin) + rc.RCross*cpin
	if math.Abs(got[0]-want) > 1e-9*want {
		t.Errorf("delay = %v, want %v", got[0], want)
	}
}

// TestMoreAntifusesSlower: identical span, but a route crossing three extra
// horizontal antifuses must be slower — delay tracks antifuse count, not just
// length (the paper's core timing observation).
func TestMoreAntifusesSlower(t *testing.T) {
	p := arch.Default(1, 8, 2)
	p.SegPattern = []int{2, 2, 2, 2, 8}
	p.PhaseStep = 8 // track 0: four short segments; track 1: one long segment
	a := arch.MustNew(p)
	nl := pairNetlist()
	pl := placePair(t, a, nl, 0, 7)
	id := nl.NetID("n")

	seg := func(track int) fabric.NetRoute {
		sl, sh := a.SegRange(track, 0, 7)
		return fabric.NetRoute{Global: true, Chans: []fabric.ChanAssign{
			{Ch: 0, Lo: 0, Hi: 7, Track: track, SegLo: sl, SegHi: sh},
		}}
	}
	short := seg(0)
	long := seg(1)
	dShort, err := NetDelays(pl, id, &short, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	dLong, err := NetDelays(pl, id, &long, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if dShort[0] <= dLong[0] {
		t.Errorf("4-segment route (%.1f ps) should be slower than 1-segment route (%.1f ps)", dShort[0], dLong[0])
	}
	// Sanity: the difference should be substantial (3 antifuses in the path).
	if dShort[0] < 1.2*dLong[0] {
		t.Errorf("antifuse penalty too weak: %.1f vs %.1f ps", dShort[0], dLong[0])
	}
}

// TestShorterNetCanBeSlower reproduces the delay non-monotonicity claim: a
// shorter interval forced across several antifuses can be slower than a
// longer interval on one segment.
func TestShorterNetCanBeSlower(t *testing.T) {
	p := arch.Default(1, 12, 2)
	// Track 0: six 1-column segments then [6,12); track 1: one [0,12) segment.
	p.SegPattern = []int{1, 1, 1, 1, 1, 1, 6, 12}
	p.PhaseStep = 12
	a := arch.MustNew(p)
	nl := pairNetlist()

	// Short net: span 5 over track 0 (crosses 5 antifuses).
	pShort := placePair(t, a, nl, 0, 5)
	sl, sh := a.SegRange(0, 0, 5)
	rShort := fabric.NetRoute{Global: true, Chans: []fabric.ChanAssign{{Ch: 0, Lo: 0, Hi: 5, Track: 0, SegLo: sl, SegHi: sh}}}
	dShort, err := NetDelays(pShort, nl.NetID("n"), &rShort, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	// Long net: span 9 over track 1 (single segment, no antifuses).
	pLong := placePair(t, a, nl, 0, 9)
	rLong := fabric.NetRoute{Global: true, Chans: []fabric.ChanAssign{{Ch: 0, Lo: 0, Hi: 9, Track: 1, SegLo: 0, SegHi: 0}}}
	dLong, err := NetDelays(pLong, nl.NetID("n"), &rLong, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if dShort[0] <= dLong[0] {
		t.Errorf("shorter-but-fragmented net (%.1f ps) should exceed longer single-segment net (%.1f ps)",
			dShort[0], dLong[0])
	}
}

// routeDesign places and fully routes a netgen design; skips nets that fail
// (callers assert on the failure count).
func routeDesign(t *testing.T, a *arch.Arch, nl *netlist.Netlist, seed int64) (*layout.Placement, *fabric.Fabric, []fabric.NetRoute, int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	p, err := layout.NewRandom(a, nl, rng)
	if err != nil {
		t.Fatal(err)
	}
	f := fabric.New(a)
	routes := make([]fabric.NetRoute, nl.NumNets())
	gFail := groute.RouteAll(f, p, routes)
	dFail := droute.RouteAllDetailed(f, routes, droute.DefaultCost(), 4, rng)
	return p, f, routes, len(gFail) + dFail
}

func TestNetDelaysOnRoutedDesign(t *testing.T) {
	nl, err := netgen.Generate(netgen.Params{Name: "t", Inputs: 4, Outputs: 3, Seq: 2, Comb: 30, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	a := arch.MustNew(arch.Default(5, 16, 30)) // generous tracks
	p, f, routes, failed := routeDesign(t, a, nl, 3)
	if failed > 0 {
		t.Fatalf("%d nets unrouted despite generous fabric", failed)
	}
	if err := f.CheckConsistent(routes); err != nil {
		t.Fatal(err)
	}
	for id := range routes {
		if len(nl.Nets[id].Sinks) == 0 {
			continue
		}
		d, err := NetDelays(p, int32(id), &routes[id], 1.0)
		if err != nil {
			t.Fatalf("net %d: %v", id, err)
		}
		for si, v := range d {
			if v <= 0 || math.IsNaN(v) || v > 1e6 {
				t.Errorf("net %d sink %d: implausible delay %v", id, si, v)
			}
		}
	}
}

func TestNetDelaysRejectsUnrouted(t *testing.T) {
	nl := pairNetlist()
	a := flatArch([]int{8}, 1)
	p := placePair(t, a, nl, 1, 6)
	r := fabric.NetRoute{Global: true, Chans: []fabric.ChanAssign{{Ch: 0, Lo: 1, Hi: 6, Track: -1}}}
	if _, err := NetDelays(p, nl.NetID("n"), &r, 1.0); err == nil {
		t.Error("unrouted net accepted")
	}
}

func TestEstimateDelays(t *testing.T) {
	nl := pairNetlist()
	a := flatArch([]int{4, 4}, 2)
	id := nl.NetID("n")

	near := placePair(t, a, nl, 3, 4)
	far := placePair(t, a, nl, 0, 7)
	dNear := EstimateDelays(near, id)
	dFar := EstimateDelays(far, id)
	if len(dNear) != 1 || len(dFar) != 1 {
		t.Fatal("wrong arity")
	}
	if dNear[0] <= 0 || dFar[0] <= dNear[0] {
		t.Errorf("estimate not increasing with span: near %.1f far %.1f", dNear[0], dFar[0])
	}
}

// Estimates should be the right order of magnitude relative to the detailed
// model — the paper calls them crude but they steer the early anneal.
func TestEstimateWithinFactorOfElmore(t *testing.T) {
	nl, err := netgen.Generate(netgen.Params{Name: "t", Inputs: 4, Outputs: 3, Seq: 2, Comb: 30, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	a := arch.MustNew(arch.Default(5, 16, 30))
	p, _, routes, failed := routeDesign(t, a, nl, 5)
	if failed > 0 {
		t.Skip("routing incomplete; covered elsewhere")
	}
	checked := 0
	for id := range routes {
		if len(nl.Nets[id].Sinks) == 0 {
			continue
		}
		exact, err := NetDelays(p, int32(id), &routes[id], 1.0)
		if err != nil {
			t.Fatal(err)
		}
		est := EstimateDelays(p, int32(id))
		maxExact := 0.0
		for _, v := range exact {
			if v > maxExact {
				maxExact = v
			}
		}
		if est[0] < maxExact/6 || est[0] > maxExact*6 {
			t.Errorf("net %d: estimate %.1f vs exact %.1f beyond 6x", id, est[0], maxExact)
		}
		checked++
	}
	if checked < 10 {
		t.Fatalf("only %d nets checked", checked)
	}
}

func TestVerifyAgreement(t *testing.T) {
	nl, err := netgen.Generate(netgen.Params{Name: "t", Inputs: 4, Outputs: 3, Seq: 2, Comb: 40, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	a := arch.MustNew(arch.Default(6, 16, 30))
	p, _, routes, failed := routeDesign(t, a, nl, 7)
	if failed > 0 {
		t.Skip("routing incomplete")
	}
	// In-loop WCD: analyzer fed with the in-loop Elmore model.
	an, err := NewAnalyzer(nl)
	if err != nil {
		t.Fatal(err)
	}
	an.Begin()
	for id := range routes {
		if len(nl.Nets[id].Sinks) == 0 {
			continue
		}
		d, err := NetDelays(p, int32(id), &routes[id], 1.0)
		if err != nil {
			t.Fatal(err)
		}
		an.SetNetDelays(int32(id), d)
	}
	inLoop := an.Propagate()
	an.Commit()

	res, err := Verify(p, routes, inLoop)
	if err != nil {
		t.Fatal(err)
	}
	if res.WCD < inLoop {
		t.Errorf("independent model (%.1f) should not be faster than in-loop (%.1f)", res.WCD, inLoop)
	}
	if res.Agreement < 0.85 || res.Agreement > 1.001 {
		t.Errorf("agreement %.3f outside [0.85, 1.0] (paper: within 90%%)", res.Agreement)
	}
}
