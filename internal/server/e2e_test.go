// End-to-end tests of the job service over real HTTP: submit → stream → fetch
// layout → reload through the public API, plus the cancellation, backpressure
// and cache-hit contracts the daemon documents.
package server_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro"
	"repro/internal/server"
)

// newTestService starts a service plus an HTTP front end; both are torn down
// (jobs cancelled first, so no stream can dangle) when the test ends.
func newTestService(t *testing.T, cfg server.Config) (*server.Server, string) {
	t.Helper()
	s := server.New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(s.Close)
	return s, ts.URL
}

func submitJob(t *testing.T, base, body string) (server.JobStatus, *http.Response) {
	t.Helper()
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st server.JobStatus
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("decode submit response: %v", err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return st, resp
}

func getStatus(t *testing.T, base, id string) server.JobStatus {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st server.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode status: %v", err)
	}
	return st
}

// waitState polls until the job reaches the wanted state (or any terminal
// state, which fails the test if it is not the wanted one).
func waitState(t *testing.T, base, id string, want server.JobState, timeout time.Duration) server.JobStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st := getStatus(t, base, id)
		if st.State == want {
			return st
		}
		if st.State.Terminal() {
			t.Fatalf("job %s reached %s (error %q), want %s", id, st.State, st.Error, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after %v, want %s", id, st.State, timeout, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// readSSE consumes an event stream to EOF and returns per-type counts plus
// the last state payload seen.
func readSSE(t *testing.T, r io.Reader) (counts map[string]int, lastState string) {
	t.Helper()
	counts = make(map[string]int)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	evType := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			evType = strings.TrimPrefix(line, "event: ")
			counts[evType]++
		case strings.HasPrefix(line, "data: ") && evType == "state":
			var ev struct {
				State string `json:"state"`
			}
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
				t.Fatalf("bad state event payload %q: %v", line, err)
			}
			lastState = ev.State
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream read: %v", err)
	}
	return counts, lastState
}

const tinyJob = `{"design":"tiny","config":{"seed":1,"moves_per_cell":4,"max_temps":10}}`

// TestEndToEnd is the full life of one job: submit a tiny design, stream its
// per-temperature events, fetch the finished layout, and reload it through
// repro.LoadLayout against the same netlist and architecture.
func TestEndToEnd(t *testing.T) {
	_, base := newTestService(t, server.Config{Workers: 1, QueueDepth: 4})

	st, resp := submitJob(t, base, tinyJob)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", resp.StatusCode)
	}
	if st.State != server.StateQueued || st.Cached {
		t.Fatalf("fresh submit: state %s cached %v, want queued/false", st.State, st.Cached)
	}

	// Stream events until the job completes; the stream must carry at least
	// one temperature record and end on the terminal state event.
	eresp, err := http.Get(base + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer eresp.Body.Close()
	if ct := eresp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events Content-Type = %q", ct)
	}
	counts, lastState := readSSE(t, eresp.Body)
	if counts["temp"] < 1 {
		t.Errorf("streamed %d temperature events, want >= 1", counts["temp"])
	}
	if lastState != string(server.StateDone) {
		t.Errorf("stream ended on state %q, want done", lastState)
	}

	fin := getStatus(t, base, st.ID)
	if fin.State != server.StateDone || fin.Result == nil {
		t.Fatalf("final status: %+v", fin)
	}
	if !fin.Result.FullyRouted {
		t.Errorf("tiny job did not fully route: %+v", fin.Result)
	}

	// The layout must round-trip through the public loader.
	lresp, err := http.Get(base + "/v1/jobs/" + st.ID + "/layout")
	if err != nil {
		t.Fatal(err)
	}
	layoutBytes, err := io.ReadAll(lresp.Body)
	lresp.Body.Close()
	if err != nil || lresp.StatusCode != http.StatusOK {
		t.Fatalf("layout fetch: status %d err %v", lresp.StatusCode, err)
	}
	nl, err := repro.GenerateBenchmark("tiny")
	if err != nil {
		t.Fatal(err)
	}
	a, err := repro.ArchFor(nl, 38)
	if err != nil {
		t.Fatal(err)
	}
	lay, err := repro.LoadLayout(a, nl, bytes.NewReader(layoutBytes))
	if err != nil {
		t.Fatalf("LoadLayout rejected the served layout: %v", err)
	}
	if !lay.FullyRouted {
		t.Errorf("reloaded layout not fully routed (%d unrouted)", lay.Unrouted)
	}
	if lay.WCD != fin.Result.WCDPs {
		t.Errorf("reloaded WCD %.1f ps != reported %.1f ps", lay.WCD, fin.Result.WCDPs)
	}
}

// TestCacheHit submits the identical request twice: the second response must
// be served from the cache — no new optimizer run — with byte-identical
// layout bytes.
func TestCacheHit(t *testing.T) {
	srv, base := newTestService(t, server.Config{Workers: 1, QueueDepth: 4})

	first, resp := submitJob(t, base, tinyJob)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit status = %d, want 202", resp.StatusCode)
	}
	waitState(t, base, first.ID, server.StateDone, 60*time.Second)

	second, resp := submitJob(t, base, tinyJob)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cache-hit submit status = %d, want 200", resp.StatusCode)
	}
	if !second.Cached || second.State != server.StateDone {
		t.Fatalf("second submit not a cache hit: %+v", second)
	}
	if second.CacheKey != first.CacheKey {
		t.Errorf("cache keys differ: %s vs %s", first.CacheKey, second.CacheKey)
	}

	get := func(id string) []byte {
		resp, err := http.Get(base + "/v1/jobs/" + id + "/layout")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	if a, b := get(first.ID), get(second.ID); !bytes.Equal(a, b) {
		t.Error("cache hit served different layout bytes")
	}

	stats := srv.StatsSnapshot()
	if stats.Runs != 1 {
		t.Errorf("optimizer runs = %d, want 1 (second submission must not re-anneal)", stats.Runs)
	}
	if stats.CacheHits != 1 {
		t.Errorf("cache-hit responses = %d, want 1", stats.CacheHits)
	}
}

// longJob is an s1-sized run with a temperature budget far beyond what the
// cancellation and backpressure tests allow to complete.
func longJob(seed int) string {
	return fmt.Sprintf(`{"design":"s1","config":{"seed":%d,"moves_per_cell":4,"max_temps":1000}}`, seed)
}

// TestCancellation cancels a running s1 job and requires prompt (< 2s)
// termination into the canceled state, with no layout available.
func TestCancellation(t *testing.T) {
	_, base := newTestService(t, server.Config{Workers: 1, QueueDepth: 4})

	st, resp := submitJob(t, base, longJob(1))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", resp.StatusCode)
	}
	waitState(t, base, st.ID, server.StateRunning, 60*time.Second)

	req, _ := http.NewRequest(http.MethodDelete, base+"/v1/jobs/"+st.ID, nil)
	start := time.Now()
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, dresp.Body)
	dresp.Body.Close()

	fin := waitState(t, base, st.ID, server.StateCanceled, 2*time.Second)
	if got := time.Since(start); got > 2*time.Second {
		t.Errorf("cancellation took %v, want < 2s", got)
	}
	if fin.Result != nil {
		t.Error("canceled job carries a result")
	}
	lresp, err := http.Get(base + "/v1/jobs/" + st.ID + "/layout")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, lresp.Body)
	lresp.Body.Close()
	if lresp.StatusCode != http.StatusConflict {
		t.Errorf("layout of canceled job: status %d, want 409", lresp.StatusCode)
	}
}

// TestBackpressure fills the worker and the queue, then requires the next
// submission to be rejected with 429 and a Retry-After hint.
func TestBackpressure(t *testing.T) {
	srv, base := newTestService(t, server.Config{Workers: 1, QueueDepth: 1})

	running, resp := submitJob(t, base, longJob(2))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit status = %d, want 202", resp.StatusCode)
	}
	waitState(t, base, running.ID, server.StateRunning, 60*time.Second)

	queued, resp := submitJob(t, base, longJob(3))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit status = %d, want 202 (queue has room)", resp.StatusCode)
	}

	_, resp = submitJob(t, base, longJob(4))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After header")
	}
	if stats := srv.StatsSnapshot(); stats.Rejected != 1 {
		t.Errorf("rejected counter = %d, want 1", stats.Rejected)
	}

	// Cancel the backlog so teardown is immediate.
	for _, id := range []string{queued.ID, running.ID} {
		req, _ := http.NewRequest(http.MethodDelete, base+"/v1/jobs/"+id, nil)
		dresp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, dresp.Body)
		dresp.Body.Close()
	}
	waitState(t, base, queued.ID, server.StateCanceled, 2*time.Second)
	waitState(t, base, running.ID, server.StateCanceled, 5*time.Second)
}

// TestUnknownJobAndHealth covers the 404 path and the liveness/stats
// endpoints.
func TestUnknownJobAndHealth(t *testing.T) {
	_, base := newTestService(t, server.Config{})

	resp, err := http.Get(base + "/v1/jobs/nosuch")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job status = %d, want 404", resp.StatusCode)
	}

	hresp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(hresp.Body)
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK || strings.TrimSpace(string(body)) != "ok" {
		t.Errorf("healthz = %d %q", hresp.StatusCode, body)
	}

	sresp, err := http.Get(base + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	var stats server.Stats
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatalf("statsz decode: %v", err)
	}
	sresp.Body.Close()
	if stats.QueueCap == 0 || stats.Workers == 0 {
		t.Errorf("statsz missing configuration: %+v", stats)
	}
}

// TestBadRequests exercises the validation surface end to end.
func TestBadRequests(t *testing.T) {
	_, base := newTestService(t, server.Config{})
	for _, tc := range []struct {
		name, body string
	}{
		{"empty", `{}`},
		{"both sources", `{"design":"tiny","netlist":"x"}`},
		{"unknown design", `{"design":"nope"}`},
		{"bad JSON", `{"design":`},
		{"unknown field", `{"design":"tiny","bogus":1}`},
		{"bad tracks", `{"design":"tiny","tracks":1}`},
		{"bad config", `{"design":"tiny","config":{"max_temps":99999}}`},
		{"bad format", `{"design":"tiny","format":"edif"}`},
		{"garbage netlist", `{"netlist":"not a netlist"}`},
	} {
		_, resp := submitJob(t, base, tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
	}
}
