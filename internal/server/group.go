// Batch and portfolio serving: group endpoints that turn the daemon from
// "run one job" into a sweep engine.
//
//	POST   /v1/batches                 submit many netlists, one job each
//	POST   /v1/portfolios              submit one netlist × a config matrix
//	GET    /v1/{batches,portfolios}/{id}        aggregate status + member scoreboard
//	DELETE /v1/{batches,portfolios}/{id}        cancel every outstanding member
//	GET    /v1/{batches,portfolios}/{id}/events aggregated member SSE stream
//	GET    /v1/portfolios/{id}/layout           the champion layout, once final
//
// A group is bookkeeping over ordinary jobs: every member is a regular /v1/jobs
// job (individually addressable, scheduled through the same priority classes
// and fleet leases, journaled in the same WAL), attributed to the submitting
// client for fairness and quota purposes. One POST costs one rate-limit token
// regardless of member count; admission is all-or-nothing (members enqueue
// atomically or the whole group is rejected with 429). Members sharing a cache
// key dedup: within a group only the first occurrence gets a job, and a member
// whose key is already cached is born done without a run. The group's own WAL
// record maps group → member jobs, so a restart rebuilds the scoreboard from
// the recovered member records.
package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/exper"
	"repro/internal/fleet"
	"repro/internal/portfolio"
	"repro/internal/store"
)

// Group kinds. The kind fixes the ID namespace ("b%d"/"p%d") and the URL
// collection name.
const (
	groupBatch     = "batch"
	groupPortfolio = "portfolio"
)

// maxBatchJobs caps one batch submission, matching the portfolio member cap.
const maxBatchJobs = portfolio.MaxMembers

// BatchRequest is the wire shape of POST /v1/batches: independent job
// requests admitted as one group.
type BatchRequest struct {
	Jobs []JobRequest `json:"jobs"`
}

// PortfolioRequest is the wire shape of POST /v1/portfolios: one base job
// request plus the matrix of member overrides. Matrix axes replace the base
// config's seed / effort knobs / route backend per member; empty axes
// inherit the base.
type PortfolioRequest struct {
	Design   string           `json:"design,omitempty"`
	Netlist  string           `json:"netlist,omitempty"`
	Format   string           `json:"format,omitempty"`
	Tracks   int              `json:"tracks,omitempty"`
	Priority string           `json:"priority,omitempty"`
	Config   JobConfig        `json:"config,omitempty"`
	Matrix   portfolio.Matrix `json:"matrix"`
}

// memberSpec is one validated group member: its canonical job spec and its
// scoreboard label.
type memberSpec struct {
	spec *jobSpec
	desc string
}

// parseBatchRequest decodes and validates one batch body into member specs.
func parseBatchRequest(body []byte) ([]memberSpec, error) {
	var req BatchRequest
	if err := decodeStrict(body, &req); err != nil {
		return nil, err
	}
	if len(req.Jobs) == 0 {
		return nil, fmt.Errorf("batch has no jobs")
	}
	if len(req.Jobs) > maxBatchJobs {
		return nil, fmt.Errorf("batch has %d jobs (max %d)", len(req.Jobs), maxBatchJobs)
	}
	specs := make([]memberSpec, 0, len(req.Jobs))
	for i, jr := range req.Jobs {
		spec, err := buildSpec(jr)
		if err != nil {
			return nil, fmt.Errorf("jobs[%d]: %w", i, err)
		}
		specs = append(specs, memberSpec{spec: spec, desc: spec.designName()})
	}
	return specs, nil
}

// parsePortfolioRequest decodes one portfolio body, resolves its matrix
// preset, expands the matrix, and validates every member as a full job spec.
func parsePortfolioRequest(body []byte) ([]memberSpec, error) {
	var req PortfolioRequest
	if err := decodeStrict(body, &req); err != nil {
		return nil, err
	}
	matrix := req.Matrix
	if matrix.Preset != "" {
		if matrix.Axes() {
			return nil, fmt.Errorf("matrix gives both a preset %q and explicit axes", matrix.Preset)
		}
		resolved, ok := exper.PortfolioMatrix(matrix.Preset)
		if !ok {
			return nil, fmt.Errorf("unknown matrix preset %q (have %v)", matrix.Preset, exper.PortfolioPresets())
		}
		matrix = resolved
	}
	members, err := matrix.Expand()
	if err != nil {
		return nil, err
	}
	base := JobRequest{
		Design: req.Design, Netlist: req.Netlist, Format: req.Format,
		Tracks: req.Tracks, Priority: req.Priority, Config: req.Config,
	}
	specs := make([]memberSpec, 0, len(members))
	for i := range members {
		m := &members[i]
		jr := base
		if m.Seed != 0 {
			jr.Config.Seed = m.Seed
		}
		if m.Effort.MovesPerCell != 0 {
			jr.Config.MovesPerCell = m.Effort.MovesPerCell
		}
		if m.Effort.MaxTemps != 0 {
			jr.Config.MaxTemps = m.Effort.MaxTemps
		}
		if m.Effort.Chains != 0 {
			jr.Config.Chains = m.Effort.Chains
		}
		if m.Backend != "" {
			jr.Config.RouteBackend = m.Backend
		}
		spec, err := buildSpec(jr)
		if err != nil {
			return nil, fmt.Errorf("member %d (%s): %w", m.Index, m.Desc(), err)
		}
		specs = append(specs, memberSpec{spec: spec, desc: m.Desc()})
	}
	return specs, nil
}

// decodeStrict is the service's request decoding discipline: unknown fields
// and trailing data are errors.
func decodeStrict(body []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("invalid request JSON: %w", err)
	}
	if dec.More() {
		return fmt.Errorf("invalid request JSON: trailing data after object")
	}
	return nil
}

// group is one batch or portfolio: ordered members over ordinary jobs, plus
// an aggregated event hub. The member list is immutable after construction;
// only the cancellation flag needs the mutex.
type group struct {
	ID      string
	kind    string
	client  string
	created time.Time
	hub     *eventHub
	members []*groupMember

	mu        sync.Mutex
	cancelReq bool
}

// groupMember binds one matrix/batch position to its job. Members with equal
// cache keys share one job: DupOf points at the first occurrence.
type groupMember struct {
	Index int
	Desc  string
	Key   string
	DupOf int  // index of the identical earlier member, or -1
	Dedup bool // served from the result cache, no run behind it
	job   *Job // nil only when a recovered member's job and blob are both gone
}

// MemberStatus is one scoreboard row.
type MemberStatus struct {
	Index  int              `json:"index"`
	Desc   string           `json:"desc"`
	Job    string           `json:"job,omitempty"`
	State  JobState         `json:"state"`
	Cached bool             `json:"cached"`
	DupOf  *int             `json:"dup_of,omitempty"`
	Score  *portfolio.Score `json:"score,omitempty"`
	WallMS float64          `json:"wall_ms,omitempty"`
	Error  string           `json:"error,omitempty"`
}

// GroupStatus is the wire shape of GET /v1/{batches,portfolios}/{id}: the
// live scoreboard plus, for portfolios, the champion-so-far (final once the
// group state is terminal).
type GroupStatus struct {
	ID          string         `json:"id"`
	Kind        string         `json:"kind"`
	State       JobState       `json:"state"`
	Created     time.Time      `json:"created"`
	Members     []MemberStatus `json:"members"`
	Champion    *int           `json:"champion,omitempty"`
	ChampionJob string         `json:"champion_job,omitempty"`
}

// scoreOf maps finished-run stats onto the portfolio quality order.
func scoreOf(st *JobStats) portfolio.Score {
	return portfolio.Score{
		RouteFailed: !st.FullyRouted,
		Unrouted:    st.Unrouted,
		WCDPs:       st.WCDPs,
		Cost:        st.FinalCost,
	}
}

// Status snapshots the group: every member's state and score, the derived
// group state, and the champion under the deterministic (score, index)
// tie-break.
func (g *group) Status() GroupStatus {
	st := GroupStatus{ID: g.ID, Kind: g.kind, Created: g.created,
		Members: make([]MemberStatus, 0, len(g.members))}
	scored := make([]*portfolio.Score, len(g.members))
	allTerminal, anyRunning, anyDone, anyFailed, anyCanceled := true, false, false, false, false
	for i, m := range g.members {
		ms := MemberStatus{Index: m.Index, Desc: m.Desc}
		if m.DupOf >= 0 {
			d := m.DupOf
			ms.DupOf = &d
		}
		if m.job == nil {
			ms.State = StateCanceled
			ms.Error = "member result not recoverable from the journal"
		} else {
			snap := m.job.Snapshot()
			ms.Job = snap.ID
			ms.State = snap.State
			ms.Cached = snap.Cached
			ms.Error = snap.Error
			if snap.Result != nil {
				sc := scoreOf(snap.Result)
				ms.Score = &sc
				ms.WallMS = snap.Result.WallMS
				scored[i] = &sc
			}
		}
		switch {
		case !ms.State.Terminal():
			allTerminal = false
			if ms.State == StateRunning {
				anyRunning = true
			}
		case ms.State == StateDone:
			anyDone = true
		case ms.State == StateFailed:
			anyFailed = true
		default:
			anyCanceled = true
		}
		st.Members = append(st.Members, ms)
	}
	g.mu.Lock()
	canceled := g.cancelReq
	g.mu.Unlock()
	switch {
	case !allTerminal && anyRunning:
		st.State = StateRunning
	case !allTerminal:
		st.State = StateQueued
	case canceled && anyCanceled:
		st.State = StateCanceled
	case anyDone:
		st.State = StateDone
	case anyFailed:
		st.State = StateFailed
	default:
		st.State = StateCanceled
	}
	if g.kind == groupPortfolio {
		if c := portfolio.Champion(scored); c >= 0 {
			st.Champion = &c
			st.ChampionJob = st.Members[c].Job
		}
	}
	return st
}

// terminal reports whether every member job has finished.
func (g *group) terminal() bool {
	for _, m := range g.members {
		if m.job != nil && !m.job.State().Terminal() {
			return false
		}
	}
	return true
}

// path is the group's resource URL.
func (g *group) path() string {
	if g.kind == groupBatch {
		return "/v1/batches/" + g.ID
	}
	return "/v1/portfolios/" + g.ID
}

// journalGroup is the WAL payload of a KindGroup record: enough to rebind the
// group to its member job records (and, for members whose job records are
// gone, to their result blobs by key) after a restart.
type journalGroup struct {
	Kind    string               `json:"kind"`
	Client  string               `json:"client,omitempty"`
	Members []journalGroupMember `json:"members"`
}

type journalGroupMember struct {
	Index int    `json:"index"`
	Job   string `json:"job"`
	Desc  string `json:"desc,omitempty"`
	Key   string `json:"key"`
	DupOf int    `json:"dup_of"`
}

// handleBatchSubmit implements POST /v1/batches.
func (s *Server) handleBatchSubmit(w http.ResponseWriter, r *http.Request) {
	s.handleGroupSubmit(w, r, groupBatch, parseBatchRequest)
}

// handlePortfolioSubmit implements POST /v1/portfolios.
func (s *Server) handlePortfolioSubmit(w http.ResponseWriter, r *http.Request) {
	s.handleGroupSubmit(w, r, groupPortfolio, parsePortfolioRequest)
}

// handleGroupSubmit is the shared group admission path: one rate-limit token
// per POST, per-member cache dedup, all-or-nothing enqueue, then the group
// WAL record.
func (s *Server) handleGroupSubmit(w http.ResponseWriter, r *http.Request,
	kind string, parse func([]byte) ([]memberSpec, error)) {
	client := clientKey(r)
	// One POST is one token: a group counts once against the client's bucket
	// no matter how many members it expands to. The members still count
	// individually against the inflight quota below — the bucket limits
	// request rate, the quota limits concurrent work.
	if wait, ok := s.limiter.allow(client, time.Now()); !ok {
		atomic.AddInt64(&s.rateLimited, 1)
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(wait)))
		httpError(w, http.StatusTooManyRequests,
			"rate limit exceeded for client %q; retry later", client)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		httpError(w, http.StatusRequestEntityTooLarge, "request body: %v", err)
		return
	}
	specs, err := parse(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	atomic.AddInt64(&s.submitted, int64(len(specs)))

	g := &group{ID: s.newGroupID(kind), kind: kind, client: client,
		created: time.Now(), hub: newEventHub()}
	keyFirst := make(map[string]int, len(specs))
	var fresh, cached []*Job
	var pris []fleet.Priority
	for i, ms := range specs {
		m := &groupMember{Index: i, Desc: ms.desc, Key: ms.spec.key, DupOf: -1}
		if fi, ok := keyFirst[ms.spec.key]; ok {
			// Intra-group duplicate: share the first occurrence's job.
			m.DupOf = fi
			m.Dedup = g.members[fi].Dedup
			m.job = g.members[fi].job
			atomic.AddInt64(&s.dedupHits, 1)
		} else {
			keyFirst[ms.spec.key] = i
			if res, ok := s.cache.get(ms.spec.key); ok {
				atomic.AddInt64(&s.dedupHits, 1)
				j := newCachedJob(s.newJobID(), ms.spec, res)
				j.client = client
				m.job, m.Dedup = j, true
				cached = append(cached, j)
			} else {
				j := newJob(s.newJobID(), ms.spec)
				j.client = client
				m.job = j
				fresh = append(fresh, j)
				pris = append(pris, ms.spec.pri)
			}
		}
		g.members = append(g.members, m)
	}

	// The inflight quota gates real work only, but it gates all of it at
	// once: a group that would push the client over is rejected whole.
	if s.cfg.MaxInflight > 0 && s.inflight(client)+len(fresh) > s.cfg.MaxInflight {
		atomic.AddInt64(&s.rateLimited, 1)
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests,
			"client %q: %d new jobs would exceed the %d-job inflight quota; retry later",
			client, len(fresh), s.cfg.MaxInflight)
		return
	}

	// Journal every member submission before anything is enqueued, exactly
	// like single-job admission: once the client holds a 202, the whole
	// group's work is durable.
	if s.store != nil {
		for n, j := range fresh {
			data, _ := json.Marshal(journalSubmission{Client: client, Req: j.spec.req})
			if err := s.store.Journal(store.Record{
				Kind: store.KindSubmitted, Job: j.ID, Key: j.Key, Data: data,
			}); err != nil {
				atomic.AddInt64(&s.walErrors, 1)
				// Neutralize what was already journaled so recovery cannot
				// resurrect half a group.
				for _, p := range fresh[:n] {
					s.journal(store.Record{Kind: store.KindCanceled, Job: p.ID,
						Key: p.Key, Data: []byte("group admission aborted")})
				}
				httpError(w, http.StatusInternalServerError, "journal submission: %v", err)
				return
			}
		}
	}
	for _, j := range cached {
		s.register(j)
	}
	for _, j := range fresh {
		s.register(j)
	}
	if len(fresh) > 0 && !s.sched.TryEnqueueAll(fresh, pris, client) {
		for _, j := range fresh {
			s.unregister(j.ID)
			s.journal(store.Record{Kind: store.KindCanceled, Job: j.ID, Key: j.Key,
				Data: []byte("queue full")})
		}
		for _, j := range cached {
			s.unregister(j.ID)
		}
		atomic.AddInt64(&s.rejected, 1)
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests,
			"queue cannot admit %d jobs atomically (capacity %d); retry later",
			len(fresh), s.cfg.QueueDepth)
		return
	}
	// The group record goes in after the member submissions: a crash between
	// the two leaves plain jobs that still run to completion — only the
	// grouping is lost, never the work.
	s.journalGroupRecord(g)
	s.registerGroup(g)
	atomic.AddInt64(&s.groupsMade, 1)
	s.startGroupForwarders(g)
	status := http.StatusAccepted
	if len(fresh) == 0 {
		status = http.StatusOK // every member served from cache
	}
	s.respondGroup(w, g, status)
}

// journalGroupRecord appends the group's WAL record.
func (s *Server) journalGroupRecord(g *group) {
	if s.store == nil {
		return
	}
	jg := journalGroup{Kind: g.kind, Client: g.client,
		Members: make([]journalGroupMember, 0, len(g.members))}
	for _, m := range g.members {
		jm := journalGroupMember{Index: m.Index, Desc: m.Desc, Key: m.Key, DupOf: m.DupOf}
		if m.job != nil {
			jm.Job = m.job.ID
		}
		jg.Members = append(jg.Members, jm)
	}
	data, _ := json.Marshal(jg)
	s.journal(store.Record{Kind: store.KindGroup, Job: g.ID, Data: data})
}

// rebuildGroup rebinds a recovered group record to the jobs the journal
// replay re-instated. A member whose job record is gone (cache-hit admission
// is never journaled; retention may have evicted it) is re-advertised from
// its result blob when one survives, and shown canceled-unrecoverable
// otherwise.
func (s *Server) rebuildGroup(id string, jg journalGroup) *group {
	if (jg.Kind != groupBatch && jg.Kind != groupPortfolio) || len(jg.Members) == 0 {
		return nil
	}
	g := &group{ID: id, kind: jg.Kind, client: jg.Client,
		created: time.Now(), hub: newEventHub()}
	for _, jm := range jg.Members {
		m := &groupMember{Index: jm.Index, Desc: jm.Desc, Key: jm.Key, DupOf: jm.DupOf}
		switch {
		case jm.DupOf >= 0 && jm.DupOf < len(g.members):
			m.job = g.members[jm.DupOf].job
			m.Dedup = g.members[jm.DupOf].Dedup
		default:
			if j, ok := s.lookup(jm.Job); ok {
				m.job = j
			} else if res, ok := s.cache.get(jm.Key); ok {
				j := newRecoveredJob(jm.Job, journalCompletion{Stats: res.Stats}, jm.Key)
				j.client = jg.Client
				s.register(j)
				s.bumpJobID(jm.Job)
				m.job, m.Dedup = j, true
			}
		}
		g.members = append(g.members, m)
	}
	return g
}

// startGroupForwarders launches the SSE aggregation: one forwarder per
// unique member job republishing its state transitions into the group hub,
// plus a finisher that seals the group stream — appending the champion event
// first — once every member is terminal. All goroutines exit on shutdown
// because Close interrupts every job, which seals every member hub.
func (s *Server) startGroupForwarders(g *group) {
	var fwg sync.WaitGroup
	seen := make(map[string]bool, len(g.members))
	for _, m := range g.members {
		if m.job == nil || seen[m.job.ID] {
			continue
		}
		seen[m.job.ID] = true
		fwg.Add(1)
		s.wg.Add(1)
		go s.forwardMember(g, m, &fwg)
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		fwg.Wait()
		s.finishGroup(g)
	}()
}

// forwardMember follows one member job's hub until it seals, republishing
// state events as group member events.
func (s *Server) forwardMember(g *group, m *groupMember, fwg *sync.WaitGroup) {
	defer s.wg.Done()
	defer fwg.Done()
	cursor := 0
	for {
		evs, sealed, wake := m.job.hub.next(cursor)
		for i := range evs {
			if evs[i].Type != "state" {
				continue
			}
			g.hub.append(Event{Type: "member", Member: &MemberEvent{
				Index: m.Index, Job: m.job.ID, State: evs[i].State}})
		}
		cursor += len(evs)
		if len(evs) > 0 {
			continue // drain before sleeping
		}
		if sealed {
			return
		}
		<-wake
	}
}

// finishGroup emits the terminal group events and seals the stream.
func (s *Server) finishGroup(g *group) {
	st := g.Status()
	if st.Champion != nil {
		g.hub.append(Event{Type: "champion", Member: &MemberEvent{
			Index: *st.Champion, Job: st.ChampionJob, State: StateDone}})
	}
	g.hub.append(Event{Type: "state", State: st.State})
	g.hub.finish()
}

// groupFromRequest resolves {id} for a kind-specific endpoint.
func (s *Server) groupFromRequest(w http.ResponseWriter, r *http.Request, kind string) (*group, bool) {
	id := r.PathValue("id")
	s.mu.Lock()
	g, ok := s.groups[id]
	s.mu.Unlock()
	if !ok || g.kind != kind {
		httpError(w, http.StatusNotFound, "unknown %s %q", kind, id)
		return nil, false
	}
	return g, true
}

// handleGroupStatus implements GET /v1/{batches,portfolios}/{id}.
func (s *Server) handleGroupStatus(kind string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		g, ok := s.groupFromRequest(w, r, kind)
		if !ok {
			return
		}
		w.Header().Set("Content-Type", "application/json")
		writeJSON(w, g.Status())
	}
}

// handleGroupCancel implements DELETE: every outstanding member job is
// canceled exactly as an individual DELETE /v1/jobs/{id} would.
func (s *Server) handleGroupCancel(kind string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		g, ok := s.groupFromRequest(w, r, kind)
		if !ok {
			return
		}
		g.mu.Lock()
		g.cancelReq = true
		g.mu.Unlock()
		seen := make(map[string]bool, len(g.members))
		for _, m := range g.members {
			if m.job == nil || seen[m.job.ID] {
				continue
			}
			seen[m.job.ID] = true
			if m.job.requestCancel() && m.job.State() == StateCanceled {
				s.journal(store.Record{Kind: store.KindCanceled, Job: m.job.ID, Key: m.job.Key})
			}
		}
		s.respondGroup(w, g, http.StatusOK)
	}
}

// handleGroupEvents implements GET .../events: the aggregated member stream.
func (s *Server) handleGroupEvents(kind string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		g, ok := s.groupFromRequest(w, r, kind)
		if !ok {
			return
		}
		s.streamHub(w, r, g.hub)
	}
}

// handlePortfolioLayout implements GET /v1/portfolios/{id}/layout: the
// champion member's layout, available once every member is terminal so the
// tie-break can never retroactively move.
func (s *Server) handlePortfolioLayout(w http.ResponseWriter, r *http.Request) {
	g, ok := s.groupFromRequest(w, r, groupPortfolio)
	if !ok {
		return
	}
	st := g.Status()
	if !st.State.Terminal() {
		httpError(w, http.StatusConflict,
			"portfolio %s is %s; the champion is not final", g.ID, st.State)
		return
	}
	if st.Champion == nil {
		httpError(w, http.StatusConflict,
			"portfolio %s has no finished member; no champion layout", g.ID)
		return
	}
	s.serveLayout(w, g.members[*st.Champion].job)
}

func (s *Server) respondGroup(w http.ResponseWriter, g *group, status int) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Location", g.path())
	w.WriteHeader(status)
	writeJSON(w, g.Status())
}

// registerGroup stores a group, evicting the oldest terminal groups beyond
// the retention cap.
func (s *Server) registerGroup(g *group) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.groups) >= s.cfg.MaxGroups {
		evicted := false
		for i, id := range s.groupOrder {
			if old, ok := s.groups[id]; ok && old.terminal() {
				delete(s.groups, id)
				s.groupOrder = append(s.groupOrder[:i], s.groupOrder[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			break
		}
	}
	s.groups[g.ID] = g
	s.groupOrder = append(s.groupOrder, g.ID)
}

// newGroupID allocates the next ID in the kind's namespace.
func (s *Server) newGroupID(kind string) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if kind == groupBatch {
		s.nextBatch++
		return fmt.Sprintf("b%d", s.nextBatch)
	}
	s.nextPort++
	return fmt.Sprintf("p%d", s.nextPort)
}

// bumpGroupID advances the matching counter past a recovered group's suffix.
func (s *Server) bumpGroupID(id string) {
	if len(id) < 2 {
		return
	}
	n, err := strconv.ParseInt(id[1:], 10, 64)
	if err != nil {
		return
	}
	s.mu.Lock()
	switch id[0] {
	case 'b':
		if n > s.nextBatch {
			s.nextBatch = n
		}
	case 'p':
		if n > s.nextPort {
			s.nextPort = n
		}
	}
	s.mu.Unlock()
}

// PortfolioStats is the portfolio section of /statsz.
type PortfolioStats struct {
	ActiveBatches    int              `json:"active_batches"`
	ActivePortfolios int              `json:"active_portfolios"`
	GroupsCreated    int64            `json:"groups_created"`
	MembersByState   map[JobState]int `json:"members_by_state"`
	DedupHits        int64            `json:"dedup_hits"`
}

// portfolioStats snapshots the group bookkeeping for /statsz.
func (s *Server) portfolioStats() PortfolioStats {
	ps := PortfolioStats{
		GroupsCreated:  atomic.LoadInt64(&s.groupsMade),
		DedupHits:      atomic.LoadInt64(&s.dedupHits),
		MembersByState: make(map[JobState]int),
	}
	s.mu.Lock()
	groups := make([]*group, 0, len(s.groups))
	for _, g := range s.groups {
		groups = append(groups, g)
	}
	s.mu.Unlock()
	for _, g := range groups {
		active := !g.terminal()
		switch {
		case active && g.kind == groupBatch:
			ps.ActiveBatches++
		case active:
			ps.ActivePortfolios++
		}
		for _, m := range g.members {
			if m.job == nil {
				ps.MembersByState[StateCanceled]++
			} else {
				ps.MembersByState[m.job.State()]++
			}
		}
	}
	return ps
}

// SchedulerStats is the scheduler section of /statsz: the aging quantum and
// the queue composition under the priority/fairness discipline.
type SchedulerStats struct {
	AgingStepMS int64          `json:"aging_step_ms"`
	Depth       int            `json:"depth"`
	ByClass     map[string]int `json:"by_class"`
	ByClient    map[string]int `json:"by_client"`
}

// schedulerStats snapshots the scheduler section of /statsz.
func (s *Server) schedulerStats() SchedulerStats {
	d := s.sched.Depths()
	return SchedulerStats{
		AgingStepMS: s.sched.AgingStep().Milliseconds(),
		Depth:       d.Total,
		ByClass:     d.ByClass,
		ByClient:    d.ByClient,
	}
}
