// End-to-end tests of batch and portfolio serving over real HTTP: matrix
// expansion into ordinary jobs, the member scoreboard, deterministic champion
// selection with the champion layout bit-identical to a standalone run,
// cache dedup across identical members, one-token group admission under the
// rate limiter, all-or-nothing enqueue, fault injection (worker kill mid-
// portfolio), and scoreboard recovery across a restart.
package server_test

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/server"
)

// postGroup submits one batch or portfolio body to path ("/v1/batches" or
// "/v1/portfolios") under the given client identity.
func postGroup(t *testing.T, base, path, body, client string) (server.GroupStatus, *http.Response) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, base+path, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if client != "" {
		req.Header.Set("X-Client-ID", client)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st server.GroupStatus
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("decode group submit response: %v", err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return st, resp
}

// getGroup fetches one group scoreboard by its resource path.
func getGroup(t *testing.T, base, path string) server.GroupStatus {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", path, resp.StatusCode)
	}
	var st server.GroupStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode group status: %v", err)
	}
	return st
}

// waitGroup polls a group until it reaches the wanted state; any other
// terminal state fails the test.
func waitGroup(t *testing.T, base, path string, want server.JobState, timeout time.Duration) server.GroupStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st := getGroup(t, base, path)
		if st.State == want {
			return st
		}
		if st.State.Terminal() {
			t.Fatalf("group %s reached %s, want %s (members %+v)", path, st.State, want, st.Members)
		}
		if time.Now().After(deadline) {
			t.Fatalf("group %s still %s after %v, want %s", path, st.State, timeout, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// groupLayoutHash hashes the champion layout of a finished portfolio.
func groupLayoutHash(t *testing.T, base, path string) [32]byte {
	t.Helper()
	code, body := getBody(t, base+path+"/layout")
	if code != http.StatusOK {
		t.Fatalf("champion layout = %d: %s", code, body)
	}
	return sha256.Sum256(body)
}

// TestPortfolioChampionAndDedup is the tentpole acceptance test. A portfolio
// over (2 seeds × 2 effort points whose knobs are identical) must expand to 4
// members of which 2 dedup intra-group, pick a deterministic champion whose
// layout is bit-identical to running that member standalone, and an identical
// resubmission must be served entirely from the cache with zero new optimizer
// runs.
func TestPortfolioChampionAndDedup(t *testing.T) {
	srv, base := newTestService(t, server.Config{Workers: 2, QueueDepth: 16})

	// The "dup" effort differs from the base effort only by name, which never
	// enters the cache key — members 2 and 3 are intra-group duplicates of 0
	// and 1.
	body := `{"design":"tiny","config":{"moves_per_cell":4,"max_temps":10},` +
		`"matrix":{"seeds":[1,2],"efforts":[{},{"name":"dup"}]}}`
	st, resp := postGroup(t, base, "/v1/portfolios", body, "")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("portfolio submit = %d, want 202", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/portfolios/"+st.ID {
		t.Errorf("Location = %q, want /v1/portfolios/%s", loc, st.ID)
	}
	if st.Kind != "portfolio" || len(st.Members) != 4 {
		t.Fatalf("submit scoreboard: kind=%q members=%d, want portfolio/4", st.Kind, len(st.Members))
	}
	// The scoreboard is reachable while the run is live: the 202 body already
	// carries every member row, and the duplicates are marked.
	for i, want := range []int{-1, -1, 0, 1} {
		switch {
		case want < 0 && st.Members[i].DupOf != nil:
			t.Errorf("member %d marked dup of %d, want original", i, *st.Members[i].DupOf)
		case want >= 0 && (st.Members[i].DupOf == nil || *st.Members[i].DupOf != want):
			t.Errorf("member %d dup_of = %v, want %d", i, st.Members[i].DupOf, want)
		}
	}

	// The champion layout must not be served before the group is terminal.
	if code, _ := getBody(t, base+"/v1/portfolios/"+st.ID+"/layout"); code == http.StatusOK && !getGroup(t, base, "/v1/portfolios/"+st.ID).State.Terminal() {
		t.Error("champion layout served while the portfolio was still live")
	}

	path := "/v1/portfolios/" + st.ID
	done := waitGroup(t, base, path, server.StateDone, 120*time.Second)
	if done.Champion == nil {
		t.Fatal("finished portfolio has no champion")
	}
	champ := *done.Champion
	if champ != 0 && champ != 1 {
		t.Fatalf("champion = %d; a duplicate member must never beat its original (tie → lower index)", champ)
	}
	// Re-derive the champion client-side from the published scores: strict
	// (route_failed, unrouted, critical_path_ps, bbox_cost, index) order.
	best := -1
	for i, m := range done.Members {
		if m.Score == nil {
			t.Fatalf("member %d finished without a score", i)
		}
		if best < 0 || m.Score.Less(*done.Members[best].Score) {
			best = i
		}
	}
	if best != champ {
		t.Errorf("champion = %d, but the published scores say %d", champ, best)
	}
	if done.ChampionJob != done.Members[champ].Job {
		t.Errorf("champion_job = %q, member %d job = %q", done.ChampionJob, champ, done.Members[champ].Job)
	}

	// Bit-identical to standalone: run the champion member's exact config as a
	// plain job on a fresh service (so nothing can be served from this cache).
	champSeed := champ + 1 // members 0,1 are seeds 1,2 at the base effort
	_, soloBase := newTestService(t, server.Config{Workers: 1, QueueDepth: 4})
	solo, resp := submitJob(t, soloBase, fmt.Sprintf(
		`{"design":"tiny","config":{"seed":%d,"moves_per_cell":4,"max_temps":10}}`, champSeed))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("standalone submit = %d", resp.StatusCode)
	}
	waitState(t, soloBase, solo.ID, server.StateDone, 60*time.Second)
	if groupLayoutHash(t, base, path) != layoutHash(t, soloBase, solo.ID) {
		t.Error("champion layout differs from the same member run standalone")
	}

	// The aggregated stream replays member transitions and ends with exactly
	// one champion event and the terminal group state.
	eresp, err := http.Get(base + path + "/events")
	if err != nil {
		t.Fatal(err)
	}
	counts, lastState := readSSE(t, eresp.Body)
	eresp.Body.Close()
	if counts["champion"] != 1 || counts["member"] < 2 || lastState != "done" {
		t.Errorf("portfolio stream: counts=%v last=%q, want 1 champion, ≥2 member, done", counts, lastState)
	}

	runsBefore := srv.StatsSnapshot().Runs
	if runsBefore != 2 {
		t.Errorf("optimizer runs = %d, want 2 (4 members, 2 unique)", runsBefore)
	}

	// Identical resubmission: every member is a cache hit, answered 200 with
	// no new work behind it.
	again, resp := postGroup(t, base, "/v1/portfolios", body, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("resubmit = %d, want 200 (all members cached)", resp.StatusCode)
	}
	for i, m := range again.Members {
		if m.DupOf == nil && !m.Cached {
			t.Errorf("resubmitted member %d not served from cache", i)
		}
	}
	if again.State != server.StateDone || again.Champion == nil || *again.Champion != champ {
		t.Errorf("resubmitted portfolio: state=%s champion=%v, want done/%d", again.State, again.Champion, champ)
	}
	stats := srv.StatsSnapshot()
	if stats.Runs != runsBefore {
		t.Errorf("resubmission re-annealed: runs %d → %d", runsBefore, stats.Runs)
	}
	if stats.Portfolio.DedupHits < int64(len(again.Members)) {
		t.Errorf("dedup_hits = %d, want ≥ %d", stats.Portfolio.DedupHits, len(again.Members))
	}
	if stats.Portfolio.GroupsCreated != 2 || stats.Portfolio.ActivePortfolios != 0 {
		t.Errorf("portfolio stats = %+v, want 2 groups, 0 active", stats.Portfolio)
	}
}

// TestBatchEndToEnd runs several netlists as one batch: every member is an
// ordinary, individually addressable job; the scoreboard aggregates them; the
// batch stream carries member transitions but never a champion.
func TestBatchEndToEnd(t *testing.T) {
	_, base := newTestService(t, server.Config{Workers: 2, QueueDepth: 16})

	body := fmt.Sprintf(`{"jobs":[%s,%s,%s]}`, tinySeed(31), tinySeed(32), tinySeed(31))
	st, resp := postGroup(t, base, "/v1/batches", body, "")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("batch submit = %d, want 202", resp.StatusCode)
	}
	if st.Kind != "batch" || len(st.Members) != 3 {
		t.Fatalf("batch scoreboard: kind=%q members=%d", st.Kind, len(st.Members))
	}
	if st.Members[2].DupOf == nil || *st.Members[2].DupOf != 0 {
		t.Errorf("jobs[2] repeats jobs[0] but dup_of = %v", st.Members[2].DupOf)
	}
	// Members are ordinary jobs, reachable under /v1/jobs by the IDs the
	// scoreboard publishes.
	for _, m := range st.Members {
		js := getStatus(t, base, m.Job)
		if js.ID != m.Job {
			t.Errorf("member job %s not addressable via /v1/jobs", m.Job)
		}
	}

	path := "/v1/batches/" + st.ID
	done := waitGroup(t, base, path, server.StateDone, 120*time.Second)
	if done.Champion != nil {
		t.Error("batches must not elect champions")
	}
	for i, m := range done.Members {
		if m.State != server.StateDone || m.Score == nil {
			t.Errorf("member %d: state=%s score=%v, want done with score", i, m.State, m.Score)
		}
	}

	eresp, err := http.Get(base + path + "/events")
	if err != nil {
		t.Fatal(err)
	}
	counts, lastState := readSSE(t, eresp.Body)
	eresp.Body.Close()
	if counts["champion"] != 0 || counts["member"] < 2 || counts["state"] != 1 || lastState != "done" {
		t.Errorf("batch stream: counts=%v last=%q", counts, lastState)
	}
}

// TestBatchCancelNoOrphans cancels a batch with one member running and two
// queued: every member must reach a terminal state promptly (no orphaned
// queued or running jobs anywhere), and the service must stay healthy.
func TestBatchCancelNoOrphans(t *testing.T) {
	_, base := newTestService(t, server.Config{Workers: 1, QueueDepth: 16})

	body := fmt.Sprintf(`{"jobs":[%s,%s,%s]}`, longJob(41), longJob(42), longJob(43))
	st, resp := postGroup(t, base, "/v1/batches", body, "")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("batch submit = %d", resp.StatusCode)
	}
	path := "/v1/batches/" + st.ID
	waitGroup(t, base, path, server.StateRunning, 60*time.Second)

	req, _ := http.NewRequest(http.MethodDelete, base+path, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, dresp.Body)
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("batch cancel = %d", dresp.StatusCode)
	}

	canceled := waitGroup(t, base, path, server.StateCanceled, 30*time.Second)
	for i, m := range canceled.Members {
		if m.State != server.StateCanceled {
			t.Errorf("member %d is %s after batch cancel, want canceled", i, m.State)
		}
		// No orphans: the member job itself is terminal too.
		if js := getStatus(t, base, m.Job); !js.State.Terminal() {
			t.Errorf("member job %s still %s after batch cancel", m.Job, js.State)
		}
	}
	stats := getStatsz(t, base)
	if stats.Jobs[server.StateQueued] != 0 || stats.Jobs[server.StateRunning] != 0 {
		t.Errorf("orphaned members after cancel: %v", stats.Jobs)
	}
	if stats.Portfolio.ActiveBatches != 0 {
		t.Errorf("active batches = %d after cancel, want 0", stats.Portfolio.ActiveBatches)
	}

	// The worker pool is intact: a fresh job still completes.
	after, resp := submitJob(t, base, tinyJob)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("post-cancel submit = %d", resp.StatusCode)
	}
	waitState(t, base, after.ID, server.StateDone, 60*time.Second)
}

// TestGroupAdmissionAtomic pins all-or-nothing enqueue: a batch larger than
// the queue is rejected whole — no member sneaks in, no group record is
// created.
func TestGroupAdmissionAtomic(t *testing.T) {
	_, base := newTestService(t, server.Config{Workers: -1, QueueDepth: 2})

	body := fmt.Sprintf(`{"jobs":[%s,%s,%s]}`, tinySeed(1), tinySeed(2), tinySeed(3))
	_, resp := postGroup(t, base, "/v1/batches", body, "")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("oversized batch = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	stats := getStatsz(t, base)
	if stats.Scheduler.Depth != 0 {
		t.Errorf("queue depth = %d after atomic rejection, want 0", stats.Scheduler.Depth)
	}
	if stats.Portfolio.GroupsCreated != 0 {
		t.Errorf("groups_created = %d after rejection, want 0", stats.Portfolio.GroupsCreated)
	}
	if stats.Jobs[server.StateQueued] != 0 {
		t.Errorf("members leaked into the job table: %v", stats.Jobs)
	}

	// A batch that fits is admitted afterwards — rejection left no debris.
	st, resp := postGroup(t, base, "/v1/batches",
		fmt.Sprintf(`{"jobs":[%s,%s]}`, tinySeed(1), tinySeed(2)), "")
	if resp.StatusCode != http.StatusAccepted || len(st.Members) != 2 {
		t.Fatalf("follow-up batch = %d (%d members), want 202/2", resp.StatusCode, len(st.Members))
	}
}

// TestGroupClientAttribution pins the fairness satellite: one POST costs one
// rate-limit token regardless of member count, and every member job is
// attributed to the submitting client in the scheduler's fair queue.
func TestGroupClientAttribution(t *testing.T) {
	_, base := newTestService(t, server.Config{
		Workers: -1, QueueDepth: 16, RatePerSec: 0.001, RateBurst: 1,
	})

	// Three members through one token.
	body := fmt.Sprintf(`{"jobs":[%s,%s,%s]}`, tinySeed(1), tinySeed(2), tinySeed(3))
	st, resp := postGroup(t, base, "/v1/batches", body, "alice")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("batch under rate limit = %d, want 202 (one POST, one token)", resp.StatusCode)
	}
	if len(st.Members) != 3 {
		t.Fatalf("members = %d", len(st.Members))
	}

	stats := getStatsz(t, base)
	if got := stats.Scheduler.ByClient["alice"]; got != 3 {
		t.Errorf("scheduler by_client[alice] = %d, want 3 (members inherit the submitter)", got)
	}
	if got := stats.Scheduler.ByClass["normal"]; got != 3 {
		t.Errorf("scheduler by_class[normal] = %d, want 3", got)
	}
	if stats.Scheduler.AgingStepMS <= 0 {
		t.Errorf("aging_step_ms = %d, want the positive default", stats.Scheduler.AgingStepMS)
	}

	// The bucket is empty now: alice's next group POST is refused outright.
	_, resp = postGroup(t, base, "/v1/portfolios",
		`{"design":"tiny","matrix":{"seeds":[7]}}`, "alice")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second POST = %d, want 429 (token spent by the batch)", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("rate-limited group POST without Retry-After")
	}

	// Another client has its own bucket and its own fair-queue lane.
	pst, resp := postGroup(t, base, "/v1/portfolios",
		`{"design":"tiny","config":{"moves_per_cell":4,"max_temps":10},"matrix":{"seeds":[1,2]}}`, "bob")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("bob's portfolio = %d, want 202", resp.StatusCode)
	}
	if len(pst.Members) != 2 {
		t.Fatalf("bob's members = %d", len(pst.Members))
	}
	stats = getStatsz(t, base)
	if got := stats.Scheduler.ByClient["bob"]; got != 2 {
		t.Errorf("scheduler by_client[bob] = %d, want 2", got)
	}
	if stats.Portfolio.ActiveBatches != 1 || stats.Portfolio.ActivePortfolios != 1 {
		t.Errorf("portfolio stats = %+v, want 1 active batch + 1 active portfolio", stats.Portfolio)
	}
}

// TestPortfolioWorkerKillChampionStable is group fault injection: a fleet
// worker dies mid-member, the lease expires and the member re-runs elsewhere,
// and the portfolio still converges to the exact champion a healthy run
// produces — bit-identical layout included.
func TestPortfolioWorkerKillChampionStable(t *testing.T) {
	_, base := newTestService(t, server.Config{
		Workers: -1, QueueDepth: 16, LeaseTTL: 300 * time.Millisecond,
	})

	victim := startFleetWorker(t, base, "victim", 50*time.Millisecond, blockUntilCanceled)

	body := `{"design":"tiny","config":{"moves_per_cell":4,"max_temps":10},` +
		`"matrix":{"seeds":[31,32,33]}}`
	st, resp := postGroup(t, base, "/v1/portfolios", body, "")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("portfolio submit = %d", resp.StatusCode)
	}
	path := "/v1/portfolios/" + st.ID

	// Wait until the victim has leased a member, then crash it.
	var wedged string
	deadline := time.Now().Add(30 * time.Second)
	for wedged == "" {
		if time.Now().After(deadline) {
			t.Fatal("no member ever started on the victim worker")
		}
		for _, m := range getGroup(t, base, path).Members {
			if m.State == server.StateRunning {
				wedged = m.Job
				break
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	victim.Kill()
	waitState(t, base, wedged, server.StateQueued, 30*time.Second) // lease expired, re-enqueued

	startFleetWorker(t, base, "healthy", 50*time.Millisecond, server.FleetExecutor())
	done := waitGroup(t, base, path, server.StateDone, 120*time.Second)
	if done.Champion == nil {
		t.Fatal("portfolio finished without a champion")
	}

	// Reference: the same portfolio on a pristine local service.
	_, refBase := newTestService(t, server.Config{Workers: 2, QueueDepth: 16})
	rst, resp := postGroup(t, refBase, "/v1/portfolios", body, "")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("reference submit = %d", resp.StatusCode)
	}
	refPath := "/v1/portfolios/" + rst.ID
	ref := waitGroup(t, refBase, refPath, server.StateDone, 120*time.Second)
	if ref.Champion == nil || *ref.Champion != *done.Champion {
		t.Fatalf("champion index diverged after worker kill: %v vs %v", done.Champion, ref.Champion)
	}
	if groupLayoutHash(t, base, path) != groupLayoutHash(t, refBase, refPath) {
		t.Error("champion layout after worker kill differs from a healthy run")
	}

	f := getStatsz(t, base).Fleet
	if f.LeaseExpiries < 1 || f.Reenqueues < 1 {
		t.Errorf("fleet stats = %+v, want ≥1 lease expiry and re-enqueue", f)
	}
}

// TestGroupRestartRecovery proves the scoreboard survives process death: a
// finished portfolio's members, scores, champion and layout all come back
// from the WAL, and a mid-flight portfolio's members are re-enqueued and
// finish in the next life.
func TestGroupRestartRecovery(t *testing.T) {
	dir := t.TempDir()
	finished := `{"design":"tiny","config":{"moves_per_cell":4,"max_temps":10},` +
		`"matrix":{"seeds":[51,52]}}`
	midflight := `{"design":"s1","config":{"moves_per_cell":4,"max_temps":60},` +
		`"matrix":{"seeds":[61,62]}}`

	// Life 1: finish one portfolio, die with a second in flight.
	st1 := openStore(t, dir)
	srv1, ts1 := startService(server.Config{Workers: 1, QueueDepth: 16, Store: st1})
	p1, resp := postGroup(t, ts1.URL, "/v1/portfolios", finished, "")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit finished portfolio: %d", resp.StatusCode)
	}
	p1Path := "/v1/portfolios/" + p1.ID
	before := waitGroup(t, ts1.URL, p1Path, server.StateDone, 120*time.Second)
	wantHash := groupLayoutHash(t, ts1.URL, p1Path)

	p2, resp := postGroup(t, ts1.URL, "/v1/portfolios", midflight, "")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit midflight portfolio: %d", resp.StatusCode)
	}
	p2Path := "/v1/portfolios/" + p2.ID
	waitGroup(t, ts1.URL, p2Path, server.StateRunning, 60*time.Second)
	ts1.Close()
	srv1.Close()
	st1.Close()

	// Life 2: the finished scoreboard is back verbatim; the interrupted one
	// finishes.
	st2 := openStore(t, dir)
	srv2, ts2 := startService(server.Config{Workers: 1, QueueDepth: 16, Store: st2})
	defer func() {
		ts2.Close()
		srv2.Close()
		st2.Close()
	}()

	after := getGroup(t, ts2.URL, p1Path)
	if after.State != server.StateDone || len(after.Members) != len(before.Members) {
		t.Fatalf("recovered portfolio: state=%s members=%d, want done/%d",
			after.State, len(after.Members), len(before.Members))
	}
	if after.Champion == nil || *after.Champion != *before.Champion {
		t.Fatalf("champion changed across restart: %v vs %v", after.Champion, before.Champion)
	}
	for i := range after.Members {
		a, b := after.Members[i], before.Members[i]
		if a.State != server.StateDone || a.Score == nil || b.Score == nil || *a.Score != *b.Score {
			t.Errorf("member %d score diverged across restart: %+v vs %+v", i, a.Score, b.Score)
		}
	}
	if groupLayoutHash(t, ts2.URL, p1Path) != wantHash {
		t.Error("champion layout bytes changed across restart")
	}

	redone := waitGroup(t, ts2.URL, p2Path, server.StateDone, 180*time.Second)
	if redone.Champion == nil {
		t.Fatal("re-run portfolio finished without a champion")
	}
	for i, m := range redone.Members {
		if m.State != server.StateDone || m.Score == nil {
			t.Errorf("re-run member %d: state=%s, want done with score", i, m.State)
		}
	}
}

// TestGroupBadRequests tables the admission rejections both group endpoints
// must produce.
func TestGroupBadRequests(t *testing.T) {
	_, base := newTestService(t, server.Config{Workers: -1, QueueDepth: 8})

	manySeeds := make([]string, 65)
	for i := range manySeeds {
		manySeeds[i] = fmt.Sprint(i + 1)
	}
	cases := []struct {
		name, path, body string
		want             int
	}{
		{"batch empty object", "/v1/batches", `{}`, http.StatusBadRequest},
		{"batch no jobs", "/v1/batches", `{"jobs":[]}`, http.StatusBadRequest},
		{"batch unknown field", "/v1/batches", `{"jobs":[{"design":"tiny"}],"extra":1}`, http.StatusBadRequest},
		{"batch trailing data", "/v1/batches", `{"jobs":[{"design":"tiny"}]} garbage`, http.StatusBadRequest},
		{"batch bad member", "/v1/batches", `{"jobs":[{"design":"no-such-design"}]}`, http.StatusBadRequest},
		{"portfolio empty matrix", "/v1/portfolios", `{"design":"tiny","matrix":{}}`, http.StatusBadRequest},
		{"portfolio unknown preset", "/v1/portfolios", `{"design":"tiny","matrix":{"preset":"nope"}}`, http.StatusBadRequest},
		{"portfolio preset plus axes", "/v1/portfolios", `{"design":"tiny","matrix":{"preset":"seeds4","seeds":[1]}}`, http.StatusBadRequest},
		{"portfolio bad backend", "/v1/portfolios", `{"design":"tiny","matrix":{"backends":["warp"]}}`, http.StatusBadRequest},
		{"portfolio negative seed", "/v1/portfolios", `{"design":"tiny","matrix":{"seeds":[-1]}}`, http.StatusBadRequest},
		{"portfolio too many members", "/v1/portfolios",
			`{"design":"tiny","matrix":{"seeds":[` + strings.Join(manySeeds, ",") + `]}}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		_, resp := postGroup(t, base, tc.path, tc.body, "")
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status = %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}

	// Unknown IDs and cross-kind lookups are 404s.
	if code, _ := getBody(t, base+"/v1/batches/b99"); code != http.StatusNotFound {
		t.Errorf("unknown batch = %d, want 404", code)
	}
	st, resp := postGroup(t, base, "/v1/batches", fmt.Sprintf(`{"jobs":[%s]}`, tinySeed(1)), "")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("batch submit = %d", resp.StatusCode)
	}
	if code, _ := getBody(t, base+"/v1/portfolios/"+st.ID); code != http.StatusNotFound {
		t.Errorf("batch fetched via the portfolio namespace = %d, want 404", code)
	}
}
