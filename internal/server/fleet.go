// The coordinator side of the fleet work-dispatch protocol: external fpgaprw
// worker processes register here, lease jobs out of the shared scheduler,
// heartbeat to keep their leases alive (shipping buffered optimizer progress
// with every beat, so SSE subscribers follow remote runs exactly as local
// ones), and complete them back into the result cache and the WAL. A lease
// that misses its heartbeats is harvested by the janitor and its job
// re-enqueued at the front of the queue — deterministic runs make the retry
// idempotent, so whichever worker finishes produces bit-identical bytes.
package server

import (
	"encoding/json"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/fleet"
	"repro/internal/store"
)

// Fleet request-body caps: control messages are small; only a completion may
// carry a layout blob.
const (
	maxFleetBodyBytes    = 1 << 20  // register / lease / drain
	maxCompleteBodyBytes = 64 << 20 // heartbeat progress batches and completions
)

// readFleetMessage reads and strictly decodes one fleet wire message,
// answering 400 itself on failure.
func readFleetMessage(w http.ResponseWriter, r *http.Request, limit int64, m fleet.Message) bool {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, limit))
	if err != nil {
		httpError(w, http.StatusRequestEntityTooLarge, "request body: %v", err)
		return false
	}
	if err := fleet.UnmarshalMessage(body, m); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return false
	}
	return true
}

// handleFleetRegister implements POST /v1/fleet/workers.
func (s *Server) handleFleetRegister(w http.ResponseWriter, r *http.Request) {
	var req fleet.RegisterRequest
	if !readFleetMessage(w, r, maxFleetBodyBytes, &req) {
		return
	}
	info := s.registry.Register(req.Name)
	ttl := s.leases.TTL()
	hb := ttl / 3
	if hb < time.Millisecond {
		hb = time.Millisecond
	}
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, fleet.RegisterResponse{
		WorkerID:    info.ID,
		LeaseTTLMS:  ttl.Milliseconds(),
		HeartbeatMS: hb.Milliseconds(),
	})
}

// handleFleetDrain implements POST /v1/fleet/workers/{id}/drain: the worker
// keeps its active leases but is refused new ones.
func (s *Server) handleFleetDrain(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.registry.Drain(id) {
		httpError(w, http.StatusNotFound, "unknown worker %q", id)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, map[string]string{"worker_id": id, "state": "draining"})
}

// handleFleetLease implements POST /v1/fleet/lease: check the next scheduled
// job out to the worker, long-polling up to WaitMS when the queue is empty.
// 204 = no work within the window; 409 = the worker is draining.
func (s *Server) handleFleetLease(w http.ResponseWriter, r *http.Request) {
	var req fleet.LeaseRequest
	if !readFleetMessage(w, r, maxFleetBodyBytes, &req) {
		return
	}
	deadline := time.Now().Add(time.Duration(req.WaitMS) * time.Millisecond)
	for {
		info, ok := s.registry.Get(req.WorkerID)
		if !ok {
			httpError(w, http.StatusNotFound, "unknown worker %q", req.WorkerID)
			return
		}
		if info.Draining {
			httpError(w, http.StatusConflict, "worker %q is draining", req.WorkerID)
			return
		}
		s.registry.Touch(req.WorkerID)
		// Snapshot the wake channel before polling so an enqueue racing the
		// failed TryDequeue still wakes the wait below.
		wake := s.sched.WakeChan()
		if j, ok := s.sched.TryDequeue(); ok {
			if !j.beginRunning() {
				continue // canceled while queued; try the next job
			}
			s.journal(store.Record{Kind: store.KindRunning, Job: j.ID, Key: j.Key})
			atomic.AddInt64(&s.runs, 1)
			lease := s.leases.Grant(j.ID, req.WorkerID)
			spec, err := json.Marshal(j.spec.req)
			if err != nil {
				// Unserializable spec (cannot happen for a validated request):
				// surface it as a failed job rather than wedging the lease.
				s.leases.Complete(lease.ID)
				s.finishJobFailed(j, "serialize spec for lease: "+err.Error())
				httpError(w, http.StatusInternalServerError, "serialize spec: %v", err)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			writeJSON(w, fleet.LeaseGrant{
				LeaseID: lease.ID,
				JobID:   j.ID,
				Key:     j.Key,
				Spec:    spec,
				TTLMS:   s.leases.TTL().Milliseconds(),
			})
			return
		}
		remaining := time.Until(deadline)
		if remaining <= 0 {
			w.WriteHeader(http.StatusNoContent)
			return
		}
		t := time.NewTimer(remaining)
		select {
		case <-wake:
			t.Stop()
		case <-t.C:
			w.WriteHeader(http.StatusNoContent)
			return
		case <-r.Context().Done():
			t.Stop()
			return
		case <-s.quit:
			t.Stop()
			w.WriteHeader(http.StatusNoContent)
			return
		}
	}
}

// handleFleetHeartbeat implements POST /v1/fleet/leases/{id}/heartbeat: renew
// the lease, bridge the shipped progress into the job's event stream, and
// tell the worker whether the job was canceled client-side. 410 = the lease
// already expired (or completed) — the worker should stop.
func (s *Server) handleFleetHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req fleet.HeartbeatRequest
	if !readFleetMessage(w, r, maxCompleteBodyBytes, &req) {
		return
	}
	id := r.PathValue("id")
	lease, ok := s.leases.Renew(id)
	if !ok {
		httpError(w, http.StatusGone, "lease %q is no longer held", id)
		return
	}
	s.registry.Touch(req.WorkerID)
	cancel := false
	if j, ok := s.lookup(lease.Job); ok {
		applyProgress(j, req.Progress)
		cancel = j.cancelRequested()
	}
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, fleet.HeartbeatResponse{Cancel: cancel, TTLMS: s.leases.TTL().Milliseconds()})
}

// handleFleetComplete implements POST /v1/fleet/leases/{id}/complete: retire
// the lease and move its job terminal. Completing the lease is the
// exactly-once gate — a late completion from a worker whose lease expired
// finds it gone and is answered 410, so only one worker ever publishes a
// job's result (and the blob lands in the content-addressed store once).
func (s *Server) handleFleetComplete(w http.ResponseWriter, r *http.Request) {
	var req fleet.CompleteRequest
	if !readFleetMessage(w, r, maxCompleteBodyBytes, &req) {
		return
	}
	id := r.PathValue("id")
	lease, ok := s.leases.Complete(id)
	if !ok {
		httpError(w, http.StatusGone, "lease %q is no longer held", id)
		return
	}
	s.registry.RecordCompletion(req.WorkerID)
	j, ok := s.lookup(lease.Job)
	if !ok {
		// The job record was evicted while the run was out on lease; nothing
		// left to publish into.
		w.Header().Set("Content-Type", "application/json")
		writeJSON(w, map[string]string{"job": lease.Job, "state": "forgotten"})
		return
	}
	applyProgress(j, req.Progress)
	switch {
	case req.Status == fleet.StatusDone && !j.cancelRequested():
		var stats JobStats
		if len(req.Stats) > 0 {
			json.Unmarshal(req.Stats, &stats)
		}
		s.finishJobDone(j, &JobResult{Layout: req.Layout, Stats: stats})
		atomic.AddInt64(&s.remoteDone, 1)
	case req.Status == fleet.StatusFailed:
		s.finishJobFailed(j, req.Error)
	default:
		// Canceled — or done bytes racing a cancel request, which the local
		// runner also reports as canceled rather than publishing the result.
		s.finishJobCanceled(j)
	}
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, j.Snapshot())
}

// applyProgress bridges a batch of worker-shipped progress records into the
// job's event hub, so /events subscribers and the status endpoint's live
// Progress view work identically for remote runs.
func applyProgress(j *Job, evs []fleet.ProgressEvent) {
	for i := range evs {
		ev := &evs[i]
		switch {
		case ev.Type == "temp" && ev.Temp != nil:
			j.hub.RecordTemp(*ev.Temp)
		case ev.Type == "chain" && ev.Chain != nil:
			j.hub.RecordChain(*ev.Chain)
		case ev.Type == "phase" && ev.Phase != nil:
			j.hub.append(Event{Type: "phase", Phase: &PhaseEvent{
				Name: ev.Phase.Name, ElapsedNS: ev.Phase.ElapsedNS,
			}})
		}
	}
}

// leaseJanitor periodically harvests expired leases and re-enqueues their
// jobs. Runs for the life of the server, even with no fleet attached — it is
// idle then.
func (s *Server) leaseJanitor() {
	defer s.wg.Done()
	tick := s.leases.TTL() / 4
	if tick < 5*time.Millisecond {
		tick = 5 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-s.quit:
			return
		case now := <-t.C:
			for _, l := range s.leases.Expire(now) {
				s.handleLeaseExpiry(l)
			}
		}
	}
}

// handleLeaseExpiry puts an expired lease's job back in front of the queue.
// The retry is idempotent — runs are deterministic per cache key — and the
// job keeps its original enqueue time, so it loses no aging credit and jumps
// ahead of everything submitted after it. A job canceled while the dead
// worker held it goes terminal instead.
func (s *Server) handleLeaseExpiry(l fleet.Lease) {
	j, ok := s.lookup(l.Job)
	if !ok {
		return
	}
	requeue, cancelTerminal := j.requeueForRetry()
	switch {
	case requeue:
		atomic.AddInt64(&s.reenqueues, 1)
		s.sched.EnqueueFront(j, j.pri, j.client, j.created)
	case cancelTerminal:
		if j.userCanceled() {
			s.journal(store.Record{Kind: store.KindCanceled, Job: j.ID, Key: j.Key})
		}
	}
}

// FleetStats is the fleet section of /statsz.
type FleetStats struct {
	WorkersRegistered int   `json:"workers_registered"`
	WorkersLive       int   `json:"workers_live"`
	WorkersDraining   int   `json:"workers_draining"`
	ActiveLeases      int   `json:"active_leases"`
	LeasesGranted     int64 `json:"leases_granted"`
	LeasesRenewed     int64 `json:"leases_renewed"`
	LeaseExpiries     int64 `json:"lease_expiries"`
	Reenqueues        int64 `json:"reenqueues"`
	RemoteCompletions int64 `json:"remote_completions"`
	// Queue composition under the scheduler's discipline.
	QueueByClass  map[string]int `json:"queue_by_class"`
	QueueByClient map[string]int `json:"queue_by_client"`
}

// fleetStats snapshots the fleet section of /statsz. Liveness uses a window
// of two lease TTLs: a worker that has not leased, heartbeat or completed in
// that long has almost certainly crashed or partitioned.
func (s *Server) fleetStats() FleetStats {
	registered, live, draining := s.registry.Counts(2 * s.leases.TTL())
	lc := s.leases.Counters()
	d := s.sched.Depths()
	return FleetStats{
		WorkersRegistered: registered,
		WorkersLive:       live,
		WorkersDraining:   draining,
		ActiveLeases:      s.leases.Active(),
		LeasesGranted:     lc.Granted,
		LeasesRenewed:     lc.Renewed,
		LeaseExpiries:     lc.Expired,
		Reenqueues:        atomic.LoadInt64(&s.reenqueues),
		RemoteCompletions: atomic.LoadInt64(&s.remoteDone),
		QueueByClass:      d.ByClass,
		QueueByClient:     d.ByClient,
	}
}
