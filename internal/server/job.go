package server

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/droute"
	"repro/internal/exper"
	"repro/internal/fleet"
	"repro/internal/netlist"
)

// Request-validation bounds. They protect the daemon, not the library: the
// batch CLIs impose no such limits.
const (
	maxNetlistBytes = 1 << 20 // inline netlist body cap
	maxCells        = 4096    // parsed design size cap
	maxTracks       = 200
	minTracks       = 4
	maxMovesPerCell = 64
	maxMaxTemps     = 1000
	maxChains       = 16
	maxSyncTemps    = 256
	maxWorkersCfg   = 64
	maxCritWeight   = 100
	maxRouteIters   = 512
)

// JobState is a job's position in the lifecycle state machine:
//
//	queued ──► running ──► done
//	   │          │  └────► failed
//	   └──────────┴───────► canceled
//
// done, failed and canceled are terminal.
type JobState string

const (
	StateQueued   JobState = "queued"
	StateRunning  JobState = "running"
	StateDone     JobState = "done"
	StateFailed   JobState = "failed"
	StateCanceled JobState = "canceled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// JobRequest is the wire shape of POST /v1/jobs. Exactly one of Design (a
// named synthetic benchmark) or Netlist (an inline netlist body) must be set.
type JobRequest struct {
	// Design names a built-in benchmark (tiny, s1, cse, ex1, bw, s1a, big529).
	Design string `json:"design,omitempty"`

	// Netlist is an inline netlist body; Format selects its syntax.
	Netlist string `json:"netlist,omitempty"`

	// Format is the inline netlist syntax: "net" (default), "blif" or "xnf".
	Format string `json:"format,omitempty"`

	// Tracks is the architecture's channel capacity (default 38). The array
	// geometry itself is derived from the design size exactly as the batch
	// flows do (ArchFor: 8 or 12 module rows at ~55% utilization).
	Tracks int `json:"tracks,omitempty"`

	// Priority is the scheduling class: "low", "normal" (the default) or
	// "high". It decides when the job runs, never what is computed, so it is
	// deliberately excluded from the result cache key.
	Priority string `json:"priority,omitempty"`

	// Config tunes the optimizer. Zero values select the library defaults.
	Config JobConfig `json:"config,omitempty"`
}

// JobConfig is the JSON-facing subset of core.Config accepted by the service.
// Workers is deliberately excluded from the cache key: it only affects
// scheduling, never results.
type JobConfig struct {
	Seed          int64 `json:"seed,omitempty"`
	MovesPerCell  int   `json:"moves_per_cell,omitempty"`
	MaxTemps      int   `json:"max_temps,omitempty"`
	Chains        int   `json:"chains,omitempty"`
	Workers       int   `json:"workers,omitempty"`
	SyncTemps     int   `json:"sync_temps,omitempty"`
	RangeLimit    bool  `json:"range_limit,omitempty"`
	DisableTiming bool  `json:"disable_timing,omitempty"`

	// Criticality-weighted timing term (see core.Config). Result-affecting:
	// all three participate in the cache key whenever the term is on.
	CritWeight  float64 `json:"crit_weight,omitempty"`
	CritBias    float64 `json:"crit_bias,omitempty"`
	CritDamping float64 `json:"crit_damping,omitempty"`

	// Detailed-router backend of the constructive pass (see droute.Backend;
	// "" = ordered). Result-affecting together with RouteIters: both enter
	// the cache key whenever a non-default backend is selected.
	// RouteWorkers, like Workers, is scheduling-only and excluded.
	RouteBackend string `json:"route_backend,omitempty"`
	RouteIters   int    `json:"route_iters,omitempty"`
	RouteWorkers int    `json:"route_workers,omitempty"`
}

// critOn reports whether the request enables the criticality extension.
func (c *JobConfig) critOn() bool { return c.CritWeight > 0 }

// routeOn reports whether the request selects a non-default route backend.
func (c *JobConfig) routeOn() bool {
	b, err := droute.ParseBackend(c.RouteBackend)
	return err == nil && b != droute.BackendOrdered
}

// jobSpec is a validated, canonicalized submission: the parsed netlist, its
// canonical .net serialization, and the deterministic cache key derived from
// everything that can influence the layout bytes.
type jobSpec struct {
	req   JobRequest
	nl    *netlist.Netlist
	canon []byte         // canonical netlist serialization (WriteNet of the parsed design)
	key   string         // hex sha256 cache key
	pri   fleet.Priority // validated scheduling class (never part of key)
}

// parseJobRequest decodes, validates and canonicalizes one submission body.
func parseJobRequest(body []byte) (*jobSpec, error) {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	var req JobRequest
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("invalid request JSON: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("invalid request JSON: trailing data after object")
	}
	return buildSpec(req)
}

// buildSpec validates the request and resolves it to a canonical spec.
func buildSpec(req JobRequest) (*jobSpec, error) {
	if (req.Design == "") == (req.Netlist == "") {
		return nil, fmt.Errorf("exactly one of %q or %q must be set", "design", "netlist")
	}
	var (
		nl  *netlist.Netlist
		err error
	)
	switch {
	case req.Design != "":
		if req.Format != "" {
			return nil, fmt.Errorf("%q only applies to inline netlists", "format")
		}
		nl, err = exper.Design(req.Design)
		if err != nil {
			return nil, fmt.Errorf("unknown design %q", req.Design)
		}
	default:
		if len(req.Netlist) > maxNetlistBytes {
			return nil, fmt.Errorf("inline netlist too large: %d bytes (max %d)", len(req.Netlist), maxNetlistBytes)
		}
		r := strings.NewReader(req.Netlist)
		switch req.Format {
		case "", "net":
			nl, err = netlist.ParseNet(r)
		case "blif":
			nl, err = netlist.ParseBlif(r, netlist.DefaultBlifOptions())
		case "xnf":
			nl, err = netlist.ParseXnf(r, netlist.DefaultXnfOptions())
		default:
			return nil, fmt.Errorf("unknown netlist format %q (want net, blif or xnf)", req.Format)
		}
		if err != nil {
			return nil, fmt.Errorf("netlist parse: %w", err)
		}
	}
	if nl.NumCells() == 0 {
		return nil, fmt.Errorf("netlist has no cells")
	}
	if nl.NumCells() > maxCells {
		return nil, fmt.Errorf("design too large: %d cells (max %d)", nl.NumCells(), maxCells)
	}
	if req.Tracks == 0 {
		req.Tracks = exper.DefaultTracks
	}
	if req.Tracks < minTracks || req.Tracks > maxTracks {
		return nil, fmt.Errorf("tracks %d out of range [%d, %d]", req.Tracks, minTracks, maxTracks)
	}
	pri, err := fleet.ParsePriority(req.Priority)
	if err != nil {
		return nil, err
	}
	if err := req.Config.validate(); err != nil {
		return nil, err
	}

	var canon bytes.Buffer
	if err := netlist.WriteNet(&canon, nl); err != nil {
		return nil, fmt.Errorf("canonicalize netlist: %w", err)
	}
	spec := &jobSpec{req: req, nl: nl, canon: canon.Bytes(), pri: pri}
	spec.key = spec.cacheKey()
	return spec, nil
}

func (c *JobConfig) validate() error {
	check := func(name string, v, max int) error {
		if v < 0 || v > max {
			return fmt.Errorf("config.%s %d out of range [0, %d]", name, v, max)
		}
		return nil
	}
	if c.Seed < 0 {
		return fmt.Errorf("config.seed must be non-negative")
	}
	if err := check("moves_per_cell", c.MovesPerCell, maxMovesPerCell); err != nil {
		return err
	}
	if err := check("max_temps", c.MaxTemps, maxMaxTemps); err != nil {
		return err
	}
	if err := check("chains", c.Chains, maxChains); err != nil {
		return err
	}
	if err := check("workers", c.Workers, maxWorkersCfg); err != nil {
		return err
	}
	if err := check("sync_temps", c.SyncTemps, maxSyncTemps); err != nil {
		return err
	}
	if c.CritWeight < 0 || c.CritWeight > maxCritWeight {
		return fmt.Errorf("config.crit_weight %g out of range [0, %d]", c.CritWeight, maxCritWeight)
	}
	if c.CritBias < 0 || c.CritBias > 1 {
		return fmt.Errorf("config.crit_bias %g out of range [0, 1]", c.CritBias)
	}
	if c.CritDamping < 0 || c.CritDamping >= 1 {
		return fmt.Errorf("config.crit_damping %g out of range [0, 1)", c.CritDamping)
	}
	if !c.critOn() && (c.CritBias != 0 || c.CritDamping != 0) {
		return fmt.Errorf("config.crit_bias/crit_damping require config.crit_weight > 0")
	}
	if _, err := droute.ParseBackend(c.RouteBackend); err != nil {
		return fmt.Errorf("config.route_backend: unknown backend %q (want ordered, negotiated or lagrange)", c.RouteBackend)
	}
	if err := check("route_iters", c.RouteIters, maxRouteIters); err != nil {
		return err
	}
	if err := check("route_workers", c.RouteWorkers, maxWorkersCfg); err != nil {
		return err
	}
	if !c.routeOn() && c.RouteIters != 0 {
		return fmt.Errorf("config.route_iters requires a negotiated or lagrange config.route_backend")
	}
	return nil
}

// cacheKey hashes everything that determines the result bytes: the canonical
// netlist, the architecture parameters, and every result-affecting config
// field. Two requests with the same key produce bit-identical layouts (the
// determinism contract pinned by the golden/GOMAXPROCS-invariance tests), so
// a cache hit can be served without re-annealing. Workers and Priority are
// excluded: both are scheduling-only — priority changes when a job runs,
// never what it computes, so the same design submitted at different
// priorities shares one cached result.
func (s *jobSpec) cacheKey() string {
	h := sha256.New()
	c := s.req.Config
	fmt.Fprintf(h, "fpgaprd/v1 tracks=%d seed=%d mpc=%d temps=%d chains=%d sync=%d rl=%t dt=%t\n",
		s.req.Tracks, c.Seed, c.MovesPerCell, c.MaxTemps, c.Chains, c.SyncTemps,
		c.RangeLimit, c.DisableTiming)
	// The criticality line is appended only when the term is on: crit-off
	// requests produce layouts bit-identical to the pre-extension engine, so
	// their keys — and any results already cached under them — stay valid.
	if c.critOn() {
		fmt.Fprintf(h, "crit=%g bias=%g damp=%g\n", c.CritWeight, c.CritBias, c.CritDamping)
	}
	// Same contract for the route backend: the line is appended only when a
	// non-default backend is selected, so ordered-backend requests keep their
	// pre-extension keys and cached results. RouteWorkers never participates.
	if c.routeOn() {
		fmt.Fprintf(h, "route=%s iters=%d\n", c.RouteBackend, c.RouteIters)
	}
	h.Write(s.canon)
	return hex.EncodeToString(h.Sum(nil))
}

// coreConfig maps the validated request onto the optimizer configuration.
// Cancel and Metrics are attached by the worker at run time.
func (s *jobSpec) coreConfig() core.Config {
	c := s.req.Config
	return core.Config{
		Seed:          c.Seed,
		MovesPerCell:  c.MovesPerCell,
		MaxTemps:      c.MaxTemps,
		Chains:        c.Chains,
		Workers:       c.Workers,
		SyncTemps:     c.SyncTemps,
		RangeLimit:    c.RangeLimit,
		DisableTiming: c.DisableTiming,
		CritWeight:    c.CritWeight,
		CritBias:      c.CritBias,
		CritDamping:   c.CritDamping,
		RouteBackend:  droute.Backend(c.RouteBackend),
		RouteIters:    c.RouteIters,
		RouteWorkers:  c.RouteWorkers,
	}
}

// designName is the display name of the submitted design.
func (s *jobSpec) designName() string {
	if s.req.Design != "" {
		return s.req.Design
	}
	if s.nl.Name != "" {
		return s.nl.Name
	}
	return "inline"
}

// JobStats is the quality report of a finished run.
type JobStats struct {
	FullyRouted bool    `json:"fully_routed"`
	Unrouted    int     `json:"unrouted"`
	GUnrouted   int     `json:"global_unrouted"`
	WCDPs       float64 `json:"critical_path_ps"`
	FinalCost   float64 `json:"final_cost"`
	Temps       int     `json:"temps"`
	Moves       int     `json:"moves"`
	Restarts    int     `json:"restarts"`
	WallMS      float64 `json:"wall_ms"`
}

// JobResult is an immutable finished-run artifact: once stored on a job or in
// the cache it is never mutated, so it may be shared freely across jobs and
// served concurrently.
type JobResult struct {
	Layout []byte // layio serialization of the final layout
	Stats  JobStats
}

// journalSubmission is the WAL payload of a submitted record: everything
// needed to rebuild and re-enqueue the job after a restart. Req round-trips
// through buildSpec, which re-derives the identical cache key.
type journalSubmission struct {
	Client string     `json:"client,omitempty"`
	Req    JobRequest `json:"req"`
}

// journalCompletion is the WAL payload of a done record: the display
// metadata and stats needed to re-advertise the finished job after a
// restart. The layout bytes themselves live in the content-addressed blob
// store under the record's key.
type journalCompletion struct {
	Design string   `json:"design"`
	Cells  int      `json:"cells"`
	Nets   int      `json:"nets"`
	Stats  JobStats `json:"stats"`
}

// Job is one submission moving through the service.
type Job struct {
	ID      string
	Key     string
	spec    *jobSpec
	hub     *eventHub
	cancel  chan struct{}
	created time.Time
	client  string         // rate-limit + fair-queueing identity (header or remote addr)
	pri     fleet.Priority // scheduling class (from the validated request)

	// Recovered done jobs have no spec; their display metadata comes from
	// the journal instead, and their layout is read through the disk cache.
	design string
	cells  int
	nets   int

	mu          sync.Mutex
	state       JobState
	cancelReq   bool
	userCancel  bool // cancelReq came from DELETE, not shutdown
	interrupted bool // cancelReq came from shutdown: keep the WAL pending
	started     time.Time
	finished    time.Time
	errMsg      string
	result      *JobResult
	cached      bool
}

func newJob(id string, spec *jobSpec) *Job {
	j := &Job{
		ID:      id,
		Key:     spec.key,
		spec:    spec,
		hub:     newEventHub(),
		cancel:  make(chan struct{}),
		created: time.Now(),
		pri:     spec.pri,
		state:   StateQueued,
	}
	j.hub.state(StateQueued)
	return j
}

// newCachedJob materializes a cache hit: a job that is born done, carrying the
// cached result, with no optimizer run behind it.
func newCachedJob(id string, spec *jobSpec, res *JobResult) *Job {
	j := &Job{
		ID:      id,
		Key:     spec.key,
		spec:    spec,
		hub:     newEventHub(),
		cancel:  make(chan struct{}),
		created: time.Now(),
		pri:     spec.pri,
		state:   StateDone,
		result:  res,
		cached:  true,
	}
	j.finished = j.created
	j.hub.state(StateDone)
	j.hub.finish()
	return j
}

// newRecoveredJob re-advertises a job that finished in a previous process
// life: born done, carrying the journaled stats, with its layout left on
// disk until someone asks for it (handleLayout reads through the cache).
func newRecoveredJob(id string, done journalCompletion, key string) *Job {
	j := &Job{
		ID:      id,
		Key:     key,
		hub:     newEventHub(),
		cancel:  make(chan struct{}),
		created: time.Now(),
		design:  done.Design,
		cells:   done.Cells,
		nets:    done.Nets,
		state:   StateDone,
		result:  &JobResult{Stats: done.Stats}, // Layout nil: lives on disk
		cached:  true,
	}
	j.finished = j.created
	j.hub.state(StateDone)
	j.hub.finish()
	return j
}

// beginRunning moves queued → running; it returns false when the job was
// canceled while waiting in the queue (the worker then skips it).
func (j *Job) beginRunning() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.started = time.Now()
	j.hub.state(StateRunning)
	return true
}

// finishTerminal moves the job into a terminal state and seals the event
// stream.
func (j *Job) finishTerminal(state JobState, res *JobResult, errMsg string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	j.state = state
	j.result = res
	j.errMsg = errMsg
	j.finished = time.Now()
	j.hub.state(state)
	j.hub.finish()
}

// requestCancel implements DELETE: a queued job is canceled outright, a
// running job has its cancel channel closed (the optimizer stops at the next
// temperature boundary or sync barrier), and a terminal job is untouched.
// It reports whether the request had any effect.
func (j *Job) requestCancel() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch {
	case j.state == StateQueued:
		j.cancelReq = true
		j.userCancel = true
		close(j.cancel)
		j.state = StateCanceled
		j.finished = time.Now()
		j.hub.state(StateCanceled)
		j.hub.finish()
		return true
	case j.state == StateRunning && !j.cancelReq:
		j.cancelReq = true
		j.userCancel = true
		close(j.cancel)
		return true
	case j.state == StateRunning:
		// A shutdown interrupt already closed the cancel channel; record the
		// client's intent so the cancellation is journaled, not replayed.
		j.userCancel = true
		return false
	default:
		return false
	}
}

// interrupt is the shutdown path: it stops the job like requestCancel but
// flags it interrupted, so no terminal record is journaled — the job's
// submitted record stays pending in the WAL and the next process life
// re-enqueues it. This is what makes a restart (graceful or SIGKILL)
// resume the promised work instead of silently dropping it.
func (j *Job) interrupt() {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch {
	case j.state == StateQueued:
		j.interrupted = true
		j.cancelReq = true
		close(j.cancel)
		j.state = StateCanceled
		j.finished = time.Now()
		j.hub.state(StateCanceled)
		j.hub.finish()
	case j.state == StateRunning:
		j.interrupted = true
		if !j.cancelReq {
			j.cancelReq = true
			close(j.cancel)
		}
	}
}

// requeueForRetry moves a running job whose lease expired back to queued so
// the scheduler can hand it to another worker. Retrying is safe because runs
// are deterministic per cache key: whichever worker finishes produces the
// same bytes. It reports (requeue, cancelTerminal): requeue means the caller
// must put the job back on the scheduler; cancelTerminal means a cancel
// arrived while the doomed worker held the lease, so the job goes terminal
// canceled instead of retrying.
func (j *Job) requeueForRetry() (requeue, cancelTerminal bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateRunning {
		return false, false
	}
	if j.cancelReq {
		j.state = StateCanceled
		j.finished = time.Now()
		j.hub.state(StateCanceled)
		j.hub.finish()
		return false, true
	}
	j.state = StateQueued
	j.started = time.Time{}
	j.hub.state(StateQueued)
	return true, false
}

// userCanceled reports whether a client (as opposed to shutdown) asked for
// cancellation; only those cancellations are journaled as terminal.
func (j *Job) userCanceled() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.userCancel
}

// cancelRequested reports whether a cancel has been requested.
func (j *Job) cancelRequested() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.cancelReq
}

// Snapshot returns the job's current wire-visible status.
func (j *Job) Snapshot() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:       j.ID,
		State:    j.state,
		Design:   j.design,
		Cells:    j.cells,
		Nets:     j.nets,
		Cached:   j.cached,
		CacheKey: j.Key,
		Priority: j.pri.String(),
		Created:  j.created,
		Error:    j.errMsg,
	}
	if j.spec != nil {
		st.Design = j.spec.designName()
		st.Cells = j.spec.nl.NumCells()
		st.Nets = j.spec.nl.NumNets()
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	if j.state == StateRunning {
		if temp, ok := j.hub.latestTemp(); ok {
			st.Progress = &JobProgress{
				Chain: temp.Chain,
				Step:  temp.Step,
				Cost:  temp.Cost,
				D:     temp.D,
				WCDPs: temp.WCD,
			}
		}
	}
	if j.state == StateDone && j.result != nil {
		stats := j.result.Stats
		st.Result = &stats
	}
	return st
}

// layoutBytes returns the serialized layout of a done job. A recovered done
// job reports ok with nil bytes: its layout lives in the disk cache and
// handleLayout reads it through under the job's key.
func (j *Job) layoutBytes() ([]byte, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateDone || j.result == nil {
		return nil, false
	}
	return j.result.Layout, true
}

// State returns the job's current state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// JobProgress is the live view of a running job, taken from its most recent
// temperature event.
type JobProgress struct {
	Chain int     `json:"chain"`
	Step  int     `json:"step"`
	Cost  float64 `json:"cost"`
	D     int     `json:"unrouted"`
	WCDPs float64 `json:"critical_path_ps"`
}

// JobStatus is the wire shape of GET /v1/jobs/{id}.
type JobStatus struct {
	ID       string       `json:"id"`
	State    JobState     `json:"state"`
	Design   string       `json:"design"`
	Cells    int          `json:"cells"`
	Nets     int          `json:"nets"`
	Cached   bool         `json:"cached"`
	CacheKey string       `json:"cache_key"`
	Priority string       `json:"priority"`
	Created  time.Time    `json:"created"`
	Started  *time.Time   `json:"started,omitempty"`
	Finished *time.Time   `json:"finished,omitempty"`
	Error    string       `json:"error,omitempty"`
	Progress *JobProgress `json:"progress,omitempty"`
	Result   *JobStats    `json:"result,omitempty"`
}

// writeJSON writes v as an indented JSON response body.
func writeJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// writeJSONCompact writes v as single-line JSON followed by a newline (the
// framing SSE data lines need).
func writeJSONCompact(w io.Writer, v any) error {
	return json.NewEncoder(w).Encode(v)
}
