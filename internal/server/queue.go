// The execution side of the service: the scheduler feeding a fixed pool of
// in-process workers (external fpgaprw workers drain the same scheduler via
// the lease handlers in fleet.go). Submission never blocks — a full queue is
// reported to the client as backpressure (429 + Retry-After). Each run
// threads the job's cancel channel and event hub into the optimizer, so
// DELETE stops a run at the next temperature boundary and subscribers watch
// per-temperature progress live.
package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/exper"
	"repro/internal/layio"
	"repro/internal/metrics"
	"repro/internal/store"
)

// worker is one in-process pool goroutine: it drains the scheduler until
// Close.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		j, ok := s.sched.Dequeue(s.quit)
		if !ok {
			return
		}
		s.runJob(j)
	}
}

// runJob executes one dequeued job through the optimizer and moves it to its
// terminal state, journaling each transition.
func (s *Server) runJob(j *Job) {
	if !j.beginRunning() {
		return // canceled while queued
	}
	s.journal(store.Record{Kind: store.KindRunning, Job: j.ID, Key: j.Key})
	atomic.AddInt64(&s.runs, 1)
	start := time.Now()
	res, layoutText, err := executeJob(j.spec, j.cancel, j.hub)
	switch {
	case err != nil:
		s.finishJobFailed(j, err.Error())
	case res.Cancelled || j.cancelRequested():
		s.finishJobCanceled(j)
	default:
		jr := &JobResult{
			Layout: layoutText,
			Stats: JobStats{
				FullyRouted: res.FullyRouted,
				Unrouted:    res.D,
				GUnrouted:   res.G,
				WCDPs:       res.WCD,
				FinalCost:   res.FinalCost,
				Temps:       res.Anneal.Temps,
				Moves:       res.Anneal.TotalMoves,
				Restarts:    res.Restarts,
				WallMS:      float64(time.Since(start)) / float64(time.Millisecond),
			},
		}
		s.finishJobDone(j, jr)
	}
}

// finishJobDone moves a running job to done, journaling the completion. The
// durability order matters: the layout blob is written through the cache
// *before* the done record is appended, so a journaled done always has (or at
// worst has since evicted) its blob. Shared by the in-process runner and the
// fleet complete handler, so a remotely-run job lands in the cache and the
// WAL exactly as a local run would.
func (s *Server) finishJobDone(j *Job, jr *JobResult) {
	s.cache.put(j.Key, jr)
	j.finishTerminal(StateDone, jr, "")
	if s.store != nil {
		data, _ := json.Marshal(journalCompletion{
			Design: j.spec.designName(),
			Cells:  j.spec.nl.NumCells(),
			Nets:   j.spec.nl.NumNets(),
			Stats:  jr.Stats,
		})
		s.journal(store.Record{Kind: store.KindDone, Job: j.ID, Key: j.Key, Data: data})
	}
}

// finishJobFailed moves a running job to failed and journals the error.
func (s *Server) finishJobFailed(j *Job, msg string) {
	j.finishTerminal(StateFailed, nil, msg)
	s.journal(store.Record{Kind: store.KindFailed, Job: j.ID, Key: j.Key, Data: []byte(msg)})
}

// finishJobCanceled moves a running job to canceled. Only client
// cancellations are journaled: a shutdown interrupt leaves the submitted
// record pending so the next process life re-runs the job.
func (s *Server) finishJobCanceled(j *Job) {
	j.finishTerminal(StateCanceled, nil, "")
	if j.userCanceled() {
		s.journal(store.Record{Kind: store.KindCanceled, Job: j.ID, Key: j.Key})
	}
}

// executeJob builds the architecture and optimizer for a validated spec and
// runs the simultaneous flow. The cancel channel stops the run at the next
// temperature boundary / sync barrier; mc observes every temperature (the
// job's event hub locally, a fleet ProgressBuffer on a remote worker).
// Cancelled runs skip layout serialization — the partial state is never
// served.
func executeJob(spec *jobSpec, cancel <-chan struct{}, mc metrics.Collector) (core.Result, []byte, error) {
	a, err := exper.ArchFor(spec.nl, spec.req.Tracks)
	if err != nil {
		return core.Result{}, nil, fmt.Errorf("architecture: %w", err)
	}
	cfg := spec.coreConfig()
	cfg.Cancel = cancel
	cfg.Metrics = mc
	o, err := core.New(a, spec.nl, cfg)
	if err != nil {
		return core.Result{}, nil, fmt.Errorf("optimizer: %w", err)
	}
	o, res := o.RunParallel()
	if res.Cancelled {
		return res, nil, nil
	}
	var buf bytes.Buffer
	if err := layio.Write(&buf, o.P, o.Rts); err != nil {
		return core.Result{}, nil, fmt.Errorf("serialize layout: %w", err)
	}
	return res, buf.Bytes(), nil
}
