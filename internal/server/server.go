// Package server is the fpgaprd place-and-route job service: an HTTP/JSON
// API over the simultaneous place-and-route optimizer with queueing,
// cancellation, deterministic result caching and streaming progress.
//
//	POST   /v1/jobs             submit a job (named benchmark or inline netlist)
//	GET    /v1/jobs/{id}        job status (state machine + live progress)
//	GET    /v1/jobs/{id}/layout finished layout (layio serialization)
//	GET    /v1/jobs/{id}/events per-temperature progress as Server-Sent Events
//	DELETE /v1/jobs/{id}        cancel a queued or running job
//	GET    /healthz             liveness
//	GET    /statsz              queue/cache/job counters
//
// plus the fleet work-dispatch endpoints under /v1/fleet/ (see fleet.go and
// the wire protocol in internal/fleet) through which external fpgaprw worker
// processes lease jobs.
//
// Jobs flow through a bounded scheduler — priority classes with aging, then
// weighted round-robin across clients, then FIFO — into the in-process worker
// pool and any leased-out external workers; a full queue answers 429 with
// Retry-After rather than blocking or buffering unboundedly. With a single
// client submitting at one priority the scheduler degenerates to exactly the
// FIFO it replaced. Results are cached under hash(canonical netlist, arch
// params, config, seed): the optimizer is bit-exact for that tuple, so a
// repeat submission returns the identical layout bytes without re-annealing —
// and a lease-expiry retry on another worker reproduces the same bytes.
package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fleet"
	"repro/internal/store"
)

// Config sizes the service.
type Config struct {
	// Workers is the number of in-process optimizer runners (default 2).
	// Negative means none: the process is a pure coordinator and every job is
	// executed by external fpgaprw workers over the fleet protocol.
	Workers int
	// QueueDepth is the bounded queue capacity; submissions beyond it are
	// rejected with 429 (default 16).
	QueueDepth int
	// CacheEntries caps the deterministic result cache (default 128).
	CacheEntries int
	// MaxJobs caps retained job records; the oldest terminal jobs are evicted
	// first (default 512).
	MaxJobs int
	// MaxGroups caps retained batch/portfolio records, evicted like jobs
	// (default 64).
	MaxGroups int
	// MaxBodyBytes caps the request body (default 4 MiB).
	MaxBodyBytes int64

	// Store enables durability: job lifecycle records are journaled to its
	// WAL (submissions before they are enqueued) and finished layouts are
	// written through to its content-addressed disk cache. At startup the
	// journal is replayed: interrupted jobs are re-enqueued, finished ones
	// re-advertised. nil keeps the service purely in-memory — bit-for-bit
	// today's pre-persistence behavior.
	Store *store.Store

	// RatePerSec arms a per-client token-bucket rate limit on POST /v1/jobs
	// (0 disables). RateBurst is the bucket capacity (default 1 when armed).
	RatePerSec float64
	RateBurst  int
	// MaxInflight caps one client's live (queued or running) jobs
	// (0 disables). Violations answer 429 with Retry-After, like the queue's
	// backpressure path.
	MaxInflight int

	// LeaseTTL is how long an external worker's lease survives without a
	// heartbeat before the job is re-enqueued (default fleet.DefaultLeaseTTL).
	LeaseTTL time.Duration
	// AgingStep is the queue-wait per one-class priority promotion
	// (0 = fleet.DefaultAgingStep; negative disables aging).
	AgingStep time.Duration
	// ClientWeights optionally gives some clients more than one dequeue per
	// fair-queueing turn; absent clients weigh 1.
	ClientWeights map[string]int
}

func (c *Config) setDefaults() {
	switch {
	case c.Workers == 0:
		c.Workers = 2
	case c.Workers < 0:
		c.Workers = 0 // coordinator-only: fleet workers do all execution
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 128
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 512
	}
	if c.MaxGroups <= 0 {
		c.MaxGroups = 64
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 4 << 20
	}
}

// Server is the job service. Create with New, serve via Handler, stop with
// Close.
type Server struct {
	cfg     Config
	start   time.Time
	mux     *http.ServeMux
	sched   *fleet.Scheduler[*Job]
	quit    chan struct{}
	wg      sync.WaitGroup
	cache   *resultCache
	store   *store.Store // nil = in-memory only
	limiter *rateLimiter // nil = no token-bucket limit

	// Fleet state: external-worker identities and the leases checking jobs
	// out to them. Both exist even in zero-config standalone mode — they are
	// simply empty until an fpgaprw registers.
	registry *fleet.Registry
	leases   *fleet.LeaseManager

	mu         sync.Mutex
	jobs       map[string]*Job
	jobOrder   []string // insertion order, for retention eviction
	nextID     int64
	groups     map[string]*group
	groupOrder []string
	nextBatch  int64
	nextPort   int64

	// Counters (atomic; reported by /statsz).
	submitted   int64
	rejected    int64
	cacheHits   int64
	runs        int64
	rateLimited int64
	walErrors   int64
	reenqueues  int64
	remoteDone  int64
	groupsMade  int64
	dedupHits   int64
}

// New builds a server and starts its worker pool. If cfg.Store is set, the
// replayed journal is re-instated first: finished jobs are re-advertised,
// interrupted ones re-enqueued, and the journal compacted — all before the
// workers start, so recovered work runs in its original submission order.
func New(cfg Config) *Server {
	cfg.setDefaults()
	s := &Server{
		cfg:   cfg,
		start: time.Now(),
		mux:   http.NewServeMux(),
		sched: fleet.NewScheduler[*Job](fleet.SchedulerConfig{
			Capacity:  cfg.QueueDepth,
			AgingStep: cfg.AgingStep,
			Weights:   cfg.ClientWeights,
		}),
		quit:     make(chan struct{}),
		cache:    newResultCache(cfg.CacheEntries, cfg.Store),
		store:    cfg.Store,
		registry: fleet.NewRegistry(nil),
		leases:   fleet.NewLeaseManager(cfg.LeaseTTL, nil),
		jobs:     make(map[string]*Job),
		groups:   make(map[string]*group),
	}
	if cfg.RatePerSec > 0 {
		s.limiter = newRateLimiter(cfg.RatePerSec, cfg.RateBurst)
	}
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/layout", s.handleLayout)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("POST /v1/batches", s.handleBatchSubmit)
	s.mux.HandleFunc("GET /v1/batches/{id}", s.handleGroupStatus(groupBatch))
	s.mux.HandleFunc("DELETE /v1/batches/{id}", s.handleGroupCancel(groupBatch))
	s.mux.HandleFunc("GET /v1/batches/{id}/events", s.handleGroupEvents(groupBatch))
	s.mux.HandleFunc("POST /v1/portfolios", s.handlePortfolioSubmit)
	s.mux.HandleFunc("GET /v1/portfolios/{id}", s.handleGroupStatus(groupPortfolio))
	s.mux.HandleFunc("DELETE /v1/portfolios/{id}", s.handleGroupCancel(groupPortfolio))
	s.mux.HandleFunc("GET /v1/portfolios/{id}/events", s.handleGroupEvents(groupPortfolio))
	s.mux.HandleFunc("GET /v1/portfolios/{id}/layout", s.handlePortfolioLayout)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /statsz", s.handleStatsz)
	s.mux.HandleFunc("POST /v1/fleet/workers", s.handleFleetRegister)
	s.mux.HandleFunc("POST /v1/fleet/workers/{id}/drain", s.handleFleetDrain)
	s.mux.HandleFunc("POST /v1/fleet/lease", s.handleFleetLease)
	s.mux.HandleFunc("POST /v1/fleet/leases/{id}/heartbeat", s.handleFleetHeartbeat)
	s.mux.HandleFunc("POST /v1/fleet/leases/{id}/complete", s.handleFleetComplete)
	if s.store != nil {
		s.recover()
	}
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	s.wg.Add(1)
	go s.leaseJanitor()
	return s
}

// recover re-instates the journal's surviving jobs. Runs before the worker
// pool starts, so enqueue order is exactly the original submission order.
func (s *Server) recover() {
	rec := s.store.Recovery()
	keep := make([]store.Record, 0, len(rec.Done)+len(rec.Pending))
	for _, d := range rec.Done {
		var done journalCompletion
		if err := json.Unmarshal(d.Data, &done); err != nil {
			continue // journaled by a future/past schema; the blob is still servable via resubmission
		}
		s.register(newRecoveredJob(d.Job, done, d.Key))
		s.bumpJobID(d.Job)
		keep = append(keep, d)
	}
	var enqueue []*Job
	for _, p := range rec.Pending {
		var sub journalSubmission
		if err := json.Unmarshal(p.Data, &sub); err != nil {
			continue
		}
		spec, err := buildSpec(sub.Req)
		if err != nil {
			continue // validation rules tightened since the journal was written
		}
		j := newJob(p.Job, spec)
		j.client = sub.Client
		s.register(j)
		s.bumpJobID(p.Job)
		enqueue = append(enqueue, j)
		keep = append(keep, p)
	}
	// Groups rebind after the member jobs exist: a member resolves to its
	// re-instated job, or to its surviving result blob, or is reported
	// unrecoverable — the scoreboard survives either way.
	for _, gr := range rec.Groups {
		var jg journalGroup
		if err := json.Unmarshal(gr.Data, &jg); err != nil {
			continue
		}
		g := s.rebuildGroup(gr.Job, jg)
		if g == nil {
			continue
		}
		s.registerGroup(g)
		s.bumpGroupID(gr.Job)
		s.startGroupForwarders(g)
		keep = append(keep, gr)
	}
	// Fold the replayed history to one record per surviving job; this is
	// what bounds journal growth across restarts.
	if err := s.store.Compact(keep); err != nil {
		atomic.AddInt64(&s.walErrors, 1)
	}
	for _, j := range enqueue {
		if !s.sched.TryEnqueue(j, j.pri, j.client) {
			// More interrupted work than queue slots: fail the overflow
			// loudly rather than block startup.
			j.finishTerminal(StateFailed, nil, "job queue full during crash recovery")
			s.journal(store.Record{Kind: store.KindFailed, Job: j.ID, Key: j.Key,
				Data: []byte("job queue full during crash recovery")})
		}
	}
}

// bumpJobID advances the ID counter past a recovered job's numeric suffix so
// fresh submissions never collide with re-instated ones.
func (s *Server) bumpJobID(id string) {
	numeric := strings.TrimPrefix(id, "j")
	n, err := strconv.ParseInt(numeric, 10, 64)
	if err != nil {
		return
	}
	s.mu.Lock()
	if n > s.nextID {
		s.nextID = n
	}
	s.mu.Unlock()
}

// journal appends one lifecycle record; a nil store makes it free. Append
// errors are counted (visible in /statsz) rather than failing the job — the
// in-memory state machine stays authoritative for this process life.
func (s *Server) journal(r store.Record) {
	if s.store == nil {
		return
	}
	if err := s.store.Journal(r); err != nil {
		atomic.AddInt64(&s.walErrors, 1)
	}
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Close stops the worker pool: running jobs are interrupted (they stop at
// the next temperature boundary) and queued jobs are abandoned in place. It
// blocks until every worker has exited. Interrupts are deliberately not
// journaled as cancellations — with a store attached, every interrupted
// job's submitted record stays pending in the WAL, so the next process life
// re-enqueues and finishes it.
func (s *Server) Close() {
	close(s.quit)
	s.sched.Close()
	s.mu.Lock()
	for _, j := range s.jobs {
		j.interrupt()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// register stores a new job, evicting the oldest terminal records beyond the
// retention cap.
func (s *Server) register(j *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.jobs) >= s.cfg.MaxJobs {
		evicted := false
		for i, id := range s.jobOrder {
			if old, ok := s.jobs[id]; ok && old.State().Terminal() {
				delete(s.jobs, id)
				s.jobOrder = append(s.jobOrder[:i], s.jobOrder[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			break // everything live; let the map grow rather than drop state
		}
	}
	s.jobs[j.ID] = j
	s.jobOrder = append(s.jobOrder, j.ID)
}

func (s *Server) unregister(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.jobs, id)
	for i, jid := range s.jobOrder {
		if jid == id {
			s.jobOrder = append(s.jobOrder[:i], s.jobOrder[i+1:]...)
			break
		}
	}
}

// lookup finds a job by id.
func (s *Server) lookup(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

func (s *Server) newJobID() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	return fmt.Sprintf("j%d", s.nextID)
}

// httpError writes a JSON error body with the given status.
func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	writeJSON(w, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// handleSubmit implements POST /v1/jobs: admission control (per-client rate
// limit and inflight quota), decode and validate, serve cache hits
// instantly, otherwise journal and enqueue with backpressure.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	client := clientKey(r)
	if wait, ok := s.limiter.allow(client, time.Now()); !ok {
		atomic.AddInt64(&s.rateLimited, 1)
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(wait)))
		httpError(w, http.StatusTooManyRequests,
			"rate limit exceeded for client %q; retry later", client)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		httpError(w, http.StatusRequestEntityTooLarge, "request body: %v", err)
		return
	}
	spec, err := parseJobRequest(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	atomic.AddInt64(&s.submitted, 1)

	if res, ok := s.cache.get(spec.key); ok {
		atomic.AddInt64(&s.cacheHits, 1)
		j := newCachedJob(s.newJobID(), spec, res)
		j.client = client
		s.register(j)
		s.respondJob(w, j, http.StatusOK)
		return
	}

	// The inflight quota gates real work only: cache hits above cost no
	// worker time and are always admitted.
	if s.cfg.MaxInflight > 0 && s.inflight(client) >= s.cfg.MaxInflight {
		atomic.AddInt64(&s.rateLimited, 1)
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests,
			"client %q has %d jobs in flight (max %d); retry later",
			client, s.cfg.MaxInflight, s.cfg.MaxInflight)
		return
	}

	j := newJob(s.newJobID(), spec)
	j.client = client
	s.register(j)
	// Journal before enqueue: once the client holds a 202, the submission is
	// durable — a crash between here and completion re-enqueues it.
	if s.store != nil {
		data, _ := json.Marshal(journalSubmission{Client: client, Req: spec.req})
		if err := s.store.Journal(store.Record{
			Kind: store.KindSubmitted, Job: j.ID, Key: j.Key, Data: data,
		}); err != nil {
			atomic.AddInt64(&s.walErrors, 1)
			s.unregister(j.ID)
			httpError(w, http.StatusInternalServerError, "journal submission: %v", err)
			return
		}
	}
	if s.sched.TryEnqueue(j, j.pri, client) {
		s.respondJob(w, j, http.StatusAccepted)
		return
	}
	s.unregister(j.ID)
	// Neutralize the submitted record: a rejected job must not be
	// resurrected by the next recovery.
	s.journal(store.Record{Kind: store.KindCanceled, Job: j.ID, Key: j.Key,
		Data: []byte("queue full")})
	atomic.AddInt64(&s.rejected, 1)
	w.Header().Set("Retry-After", "1")
	httpError(w, http.StatusTooManyRequests,
		"queue full (%d jobs); retry later", s.cfg.QueueDepth)
}

// inflight counts one client's live (non-terminal) jobs.
func (s *Server) inflight(client string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, j := range s.jobs {
		if j.client == client && !j.State().Terminal() {
			n++
		}
	}
	return n
}

func (s *Server) respondJob(w http.ResponseWriter, j *Job, status int) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Location", "/v1/jobs/"+j.ID)
	w.WriteHeader(status)
	writeJSON(w, j.Snapshot())
}

// handleStatus implements GET /v1/jobs/{id}.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, j.Snapshot())
}

// handleLayout implements GET /v1/jobs/{id}/layout: the layio serialization
// of a finished layout, loadable by repro.LoadLayout against the same
// netlist and ArchFor-derived architecture.
func (s *Server) handleLayout(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	s.serveLayout(w, j)
}

// serveLayout writes a done job's layout bytes (shared with the portfolio
// champion endpoint).
func (s *Server) serveLayout(w http.ResponseWriter, j *Job) {
	text, ok := j.layoutBytes()
	if !ok {
		httpError(w, http.StatusConflict, "job %s is %s, no layout available", j.ID, j.State())
		return
	}
	if text == nil {
		// Recovered done job: the layout was left on disk. Read it through
		// the cache; it may legitimately be gone if the disk cache evicted
		// the blob since the job finished.
		res, hit := s.cache.get(j.Key)
		if !hit {
			httpError(w, http.StatusConflict,
				"job %s finished in a previous run and its layout was evicted; resubmit to recompute", j.ID)
			return
		}
		text = res.Layout
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write(text)
}

// handleCancel implements DELETE /v1/jobs/{id}.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	if j.requestCancel() && j.State() == StateCanceled {
		// Queued jobs cancel synchronously here (a running job's terminal
		// record is journaled by its worker at the stop boundary).
		s.journal(store.Record{Kind: store.KindCanceled, Job: j.ID, Key: j.Key})
	}
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, j.Snapshot())
}

// handleEvents implements GET /v1/jobs/{id}/events: the job's full event
// history replayed, then live events until the job reaches a terminal state
// (Server-Sent Events; event types state, phase, temp, chain).
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	s.streamHub(w, r, j.hub)
}

// streamHub serves one event hub as an SSE stream: full history replayed,
// then live events until the hub seals (shared by job and group streams).
func (s *Server) streamHub(w http.ResponseWriter, r *http.Request, hub *eventHub) {
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported by connection")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)

	heartbeat := time.NewTicker(15 * time.Second)
	defer heartbeat.Stop()
	cursor := 0
	for {
		evs, sealed, wake := hub.next(cursor)
		for i := range evs {
			if err := writeSSE(w, &evs[i]); err != nil {
				return
			}
		}
		cursor += len(evs)
		fl.Flush()
		if sealed && len(evs) == 0 {
			return
		}
		if len(evs) > 0 {
			continue // drain before sleeping
		}
		select {
		case <-r.Context().Done():
			return
		case <-wake:
		case <-heartbeat.C:
			if _, err := io.WriteString(w, ": keepalive\n\n"); err != nil {
				return
			}
			fl.Flush()
		}
	}
}

// writeSSE writes one event in SSE framing: event type, id, and the JSON
// payload as data.
func writeSSE(w io.Writer, ev *Event) error {
	if _, err := fmt.Fprintf(w, "event: %s\nid: %d\ndata: ", ev.Type, ev.Seq); err != nil {
		return err
	}
	if err := writeJSONCompact(w, ev); err != nil {
		return err
	}
	_, err := io.WriteString(w, "\n")
	return err
}

// handleHealthz implements GET /healthz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

// Stats is the wire shape of GET /statsz.
type Stats struct {
	UptimeSec   float64          `json:"uptime_sec"`
	Workers     int              `json:"workers"`
	QueueDepth  int              `json:"queue_depth"`
	QueueCap    int              `json:"queue_cap"`
	Jobs        map[JobState]int `json:"jobs"`
	Submitted   int64            `json:"submitted"`
	Rejected    int64            `json:"rejected"`
	RateLimited int64            `json:"rate_limited"`
	RateClients int              `json:"rate_clients"`
	CacheHits   int64            `json:"cache_hit_responses"`
	Runs        int64            `json:"optimizer_runs"`
	Cache       CacheStats       `json:"cache"`
	Fleet       FleetStats       `json:"fleet"`
	Portfolio   PortfolioStats   `json:"portfolio"`
	Scheduler   SchedulerStats   `json:"scheduler"`
	Store       *store.Stats     `json:"store,omitempty"` // nil without -data-dir
	WALErrors   int64            `json:"wal_errors,omitempty"`
	Goroutines  int              `json:"goroutines"`
}

// StatsSnapshot returns the current service counters.
func (s *Server) StatsSnapshot() Stats {
	st := Stats{
		UptimeSec:   time.Since(s.start).Seconds(),
		Workers:     s.cfg.Workers,
		QueueDepth:  s.sched.Len(),
		QueueCap:    s.cfg.QueueDepth,
		Jobs:        make(map[JobState]int),
		Submitted:   atomic.LoadInt64(&s.submitted),
		Rejected:    atomic.LoadInt64(&s.rejected),
		RateLimited: atomic.LoadInt64(&s.rateLimited),
		RateClients: s.limiter.clientCount(),
		CacheHits:   atomic.LoadInt64(&s.cacheHits),
		Runs:        atomic.LoadInt64(&s.runs),
		Cache:       s.cache.stats(),
		Fleet:       s.fleetStats(),
		Portfolio:   s.portfolioStats(),
		Scheduler:   s.schedulerStats(),
		WALErrors:   atomic.LoadInt64(&s.walErrors),
		Goroutines:  runtime.NumGoroutine(),
	}
	if s.store != nil {
		ss := s.store.Stats()
		st.Store = &ss
	}
	s.mu.Lock()
	for _, j := range s.jobs {
		st.Jobs[j.State()]++
	}
	s.mu.Unlock()
	return st
}

// handleStatsz implements GET /statsz.
func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, s.StatsSnapshot())
}

// QueueCap reports the configured queue capacity (for operators and tests).
func (s *Server) QueueCap() int { return s.cfg.QueueDepth }
