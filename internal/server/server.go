// Package server is the fpgaprd place-and-route job service: an HTTP/JSON
// API over the simultaneous place-and-route optimizer with queueing,
// cancellation, deterministic result caching and streaming progress.
//
//	POST   /v1/jobs             submit a job (named benchmark or inline netlist)
//	GET    /v1/jobs/{id}        job status (state machine + live progress)
//	GET    /v1/jobs/{id}/layout finished layout (layio serialization)
//	GET    /v1/jobs/{id}/events per-temperature progress as Server-Sent Events
//	DELETE /v1/jobs/{id}        cancel a queued or running job
//	GET    /healthz             liveness
//	GET    /statsz              queue/cache/job counters
//
// Jobs flow through a bounded FIFO queue into a fixed worker pool; a full
// queue answers 429 with Retry-After rather than blocking or buffering
// unboundedly. Results are cached under hash(canonical netlist, arch params,
// config, seed): the optimizer is bit-exact for that tuple, so a repeat
// submission returns the identical layout bytes without re-annealing.
package server

import (
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Config sizes the service.
type Config struct {
	// Workers is the number of concurrent optimizer runs (default 2).
	Workers int
	// QueueDepth is the bounded FIFO capacity; submissions beyond it are
	// rejected with 429 (default 16).
	QueueDepth int
	// CacheEntries caps the deterministic result cache (default 128).
	CacheEntries int
	// MaxJobs caps retained job records; the oldest terminal jobs are evicted
	// first (default 512).
	MaxJobs int
	// MaxBodyBytes caps the request body (default 4 MiB).
	MaxBodyBytes int64
}

func (c *Config) setDefaults() {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 128
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 512
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 4 << 20
	}
}

// Server is the job service. Create with New, serve via Handler, stop with
// Close.
type Server struct {
	cfg   Config
	start time.Time
	mux   *http.ServeMux
	queue chan *Job
	quit  chan struct{}
	wg    sync.WaitGroup
	cache *resultCache

	mu       sync.Mutex
	jobs     map[string]*Job
	jobOrder []string // insertion order, for retention eviction
	nextID   int64

	// Counters (atomic; reported by /statsz).
	submitted int64
	rejected  int64
	cacheHits int64
	runs      int64
}

// New builds a server and starts its worker pool.
func New(cfg Config) *Server {
	cfg.setDefaults()
	s := &Server{
		cfg:   cfg,
		start: time.Now(),
		mux:   http.NewServeMux(),
		queue: make(chan *Job, cfg.QueueDepth),
		quit:  make(chan struct{}),
		cache: newResultCache(cfg.CacheEntries),
		jobs:  make(map[string]*Job),
	}
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/layout", s.handleLayout)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /statsz", s.handleStatsz)
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Close stops the worker pool: running jobs are cancelled (they stop at the
// next temperature boundary) and queued jobs are abandoned in place. It
// blocks until every worker has exited.
func (s *Server) Close() {
	close(s.quit)
	s.mu.Lock()
	for _, j := range s.jobs {
		j.requestCancel()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// register stores a new job, evicting the oldest terminal records beyond the
// retention cap.
func (s *Server) register(j *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.jobs) >= s.cfg.MaxJobs {
		evicted := false
		for i, id := range s.jobOrder {
			if old, ok := s.jobs[id]; ok && old.State().Terminal() {
				delete(s.jobs, id)
				s.jobOrder = append(s.jobOrder[:i], s.jobOrder[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			break // everything live; let the map grow rather than drop state
		}
	}
	s.jobs[j.ID] = j
	s.jobOrder = append(s.jobOrder, j.ID)
}

func (s *Server) unregister(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.jobs, id)
	for i, jid := range s.jobOrder {
		if jid == id {
			s.jobOrder = append(s.jobOrder[:i], s.jobOrder[i+1:]...)
			break
		}
	}
}

// lookup finds a job by id.
func (s *Server) lookup(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

func (s *Server) newJobID() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	return fmt.Sprintf("j%d", s.nextID)
}

// httpError writes a JSON error body with the given status.
func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	writeJSON(w, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// handleSubmit implements POST /v1/jobs: decode and validate, serve cache
// hits instantly, otherwise enqueue with backpressure.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		httpError(w, http.StatusRequestEntityTooLarge, "request body: %v", err)
		return
	}
	spec, err := parseJobRequest(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	atomic.AddInt64(&s.submitted, 1)

	if res, ok := s.cache.get(spec.key); ok {
		atomic.AddInt64(&s.cacheHits, 1)
		j := newCachedJob(s.newJobID(), spec, res)
		s.register(j)
		s.respondJob(w, j, http.StatusOK)
		return
	}

	j := newJob(s.newJobID(), spec)
	s.register(j)
	select {
	case s.queue <- j:
		s.respondJob(w, j, http.StatusAccepted)
	default:
		s.unregister(j.ID)
		atomic.AddInt64(&s.rejected, 1)
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests,
			"queue full (%d jobs); retry later", s.cfg.QueueDepth)
	}
}

func (s *Server) respondJob(w http.ResponseWriter, j *Job, status int) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Location", "/v1/jobs/"+j.ID)
	w.WriteHeader(status)
	writeJSON(w, j.Snapshot())
}

// handleStatus implements GET /v1/jobs/{id}.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, j.Snapshot())
}

// handleLayout implements GET /v1/jobs/{id}/layout: the layio serialization
// of a finished layout, loadable by repro.LoadLayout against the same
// netlist and ArchFor-derived architecture.
func (s *Server) handleLayout(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	text, ok := j.layoutBytes()
	if !ok {
		httpError(w, http.StatusConflict, "job %s is %s, no layout available", j.ID, j.State())
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write(text)
}

// handleCancel implements DELETE /v1/jobs/{id}.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	j.requestCancel()
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, j.Snapshot())
}

// handleEvents implements GET /v1/jobs/{id}/events: the job's full event
// history replayed, then live events until the job reaches a terminal state
// (Server-Sent Events; event types state, phase, temp, chain).
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported by connection")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)

	heartbeat := time.NewTicker(15 * time.Second)
	defer heartbeat.Stop()
	cursor := 0
	for {
		evs, sealed, wake := j.hub.next(cursor)
		for i := range evs {
			if err := writeSSE(w, &evs[i]); err != nil {
				return
			}
		}
		cursor += len(evs)
		fl.Flush()
		if sealed && len(evs) == 0 {
			return
		}
		if len(evs) > 0 {
			continue // drain before sleeping
		}
		select {
		case <-r.Context().Done():
			return
		case <-wake:
		case <-heartbeat.C:
			if _, err := io.WriteString(w, ": keepalive\n\n"); err != nil {
				return
			}
			fl.Flush()
		}
	}
}

// writeSSE writes one event in SSE framing: event type, id, and the JSON
// payload as data.
func writeSSE(w io.Writer, ev *Event) error {
	if _, err := fmt.Fprintf(w, "event: %s\nid: %d\ndata: ", ev.Type, ev.Seq); err != nil {
		return err
	}
	if err := writeJSONCompact(w, ev); err != nil {
		return err
	}
	_, err := io.WriteString(w, "\n")
	return err
}

// handleHealthz implements GET /healthz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

// Stats is the wire shape of GET /statsz.
type Stats struct {
	UptimeSec  float64          `json:"uptime_sec"`
	Workers    int              `json:"workers"`
	QueueDepth int              `json:"queue_depth"`
	QueueCap   int              `json:"queue_cap"`
	Jobs       map[JobState]int `json:"jobs"`
	Submitted  int64            `json:"submitted"`
	Rejected   int64            `json:"rejected"`
	CacheHits  int64            `json:"cache_hit_responses"`
	Runs       int64            `json:"optimizer_runs"`
	Cache      CacheStats       `json:"cache"`
	Goroutines int              `json:"goroutines"`
}

// StatsSnapshot returns the current service counters.
func (s *Server) StatsSnapshot() Stats {
	st := Stats{
		UptimeSec:  time.Since(s.start).Seconds(),
		Workers:    s.cfg.Workers,
		QueueDepth: len(s.queue),
		QueueCap:   s.cfg.QueueDepth,
		Jobs:       make(map[JobState]int),
		Submitted:  atomic.LoadInt64(&s.submitted),
		Rejected:   atomic.LoadInt64(&s.rejected),
		CacheHits:  atomic.LoadInt64(&s.cacheHits),
		Runs:       atomic.LoadInt64(&s.runs),
		Cache:      s.cache.stats(),
		Goroutines: runtime.NumGoroutine(),
	}
	s.mu.Lock()
	for _, j := range s.jobs {
		st.Jobs[j.State()]++
	}
	s.mu.Unlock()
	return st
}

// handleStatsz implements GET /statsz.
func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, s.StatsSnapshot())
}

// QueueCap reports the configured queue capacity (for operators and tests).
func (s *Server) QueueCap() int { return s.cfg.QueueDepth }
