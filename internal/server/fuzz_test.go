package server

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/exper"
	"repro/internal/netlist"
)

// FuzzJobRequest hammers the job-submission decoder: arbitrary bytes must
// never panic, and any accepted request must canonicalize deterministically —
// the same body always yields the same cache key, and the canonical netlist
// must itself reparse (the fixed point the cache dedup relies on).
func FuzzJobRequest(f *testing.F) {
	f.Add([]byte(`{"design":"tiny"}`))
	f.Add([]byte(`{"design":"s1","tracks":24,"config":{"seed":3,"chains":2,"range_limit":true}}`))
	f.Add([]byte(`{"design":"tiny","config":{"moves_per_cell":8,"max_temps":40,"disable_timing":true}}`))
	f.Add([]byte(`{"netlist":"","format":"blif"}`))
	f.Add([]byte(`{"netlist":"not a netlist","format":"xnf"}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`[1,2,3]`))
	if nl, err := exper.Design("tiny"); err == nil {
		var buf bytes.Buffer
		if err := netlist.WriteNet(&buf, nl); err == nil {
			if seed, err := json.Marshal(JobRequest{Netlist: buf.String()}); err == nil {
				f.Add(seed)
			}
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := parseJobRequest(data)
		if err != nil {
			return
		}
		again, err := parseJobRequest(data)
		if err != nil {
			t.Fatalf("accepted once, rejected on reparse: %v", err)
		}
		if again.key != spec.key {
			t.Fatalf("non-deterministic cache key: %s vs %s", spec.key, again.key)
		}
		if spec.key == "" || spec.nl == nil || len(spec.canon) == 0 {
			t.Fatalf("accepted spec incomplete: key=%q nl=%v canon=%d bytes", spec.key, spec.nl, len(spec.canon))
		}
		renl, err := netlist.ParseNet(bytes.NewReader(spec.canon))
		if err != nil {
			t.Fatalf("canonical netlist does not reparse: %v", err)
		}
		var recanon bytes.Buffer
		if err := netlist.WriteNet(&recanon, renl); err != nil {
			t.Fatalf("re-serialize canonical netlist: %v", err)
		}
		if !bytes.Equal(recanon.Bytes(), spec.canon) {
			t.Fatal("canonical netlist is not a serialization fixed point")
		}
	})
}
