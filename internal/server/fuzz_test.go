package server

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/exper"
	"repro/internal/netlist"
)

// FuzzJobRequest hammers the job-submission decoder: arbitrary bytes must
// never panic, and any accepted request must canonicalize deterministically —
// the same body always yields the same cache key, and the canonical netlist
// must itself reparse (the fixed point the cache dedup relies on).
func FuzzJobRequest(f *testing.F) {
	f.Add([]byte(`{"design":"tiny"}`))
	f.Add([]byte(`{"design":"s1","tracks":24,"config":{"seed":3,"chains":2,"range_limit":true}}`))
	f.Add([]byte(`{"design":"tiny","config":{"moves_per_cell":8,"max_temps":40,"disable_timing":true}}`))
	f.Add([]byte(`{"netlist":"","format":"blif"}`))
	f.Add([]byte(`{"netlist":"not a netlist","format":"xnf"}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`[1,2,3]`))
	if nl, err := exper.Design("tiny"); err == nil {
		var buf bytes.Buffer
		if err := netlist.WriteNet(&buf, nl); err == nil {
			if seed, err := json.Marshal(JobRequest{Netlist: buf.String()}); err == nil {
				f.Add(seed)
			}
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := parseJobRequest(data)
		if err != nil {
			return
		}
		again, err := parseJobRequest(data)
		if err != nil {
			t.Fatalf("accepted once, rejected on reparse: %v", err)
		}
		if again.key != spec.key {
			t.Fatalf("non-deterministic cache key: %s vs %s", spec.key, again.key)
		}
		if spec.key == "" || spec.nl == nil || len(spec.canon) == 0 {
			t.Fatalf("accepted spec incomplete: key=%q nl=%v canon=%d bytes", spec.key, spec.nl, len(spec.canon))
		}
		renl, err := netlist.ParseNet(bytes.NewReader(spec.canon))
		if err != nil {
			t.Fatalf("canonical netlist does not reparse: %v", err)
		}
		var recanon bytes.Buffer
		if err := netlist.WriteNet(&recanon, renl); err != nil {
			t.Fatalf("re-serialize canonical netlist: %v", err)
		}
		if !bytes.Equal(recanon.Bytes(), spec.canon) {
			t.Fatal("canonical netlist is not a serialization fixed point")
		}
	})
}

// checkMemberSpecs asserts the invariants every accepted group body must
// satisfy: deterministic reparse (identical member count, order, cache keys
// and descriptions), the member cap, and complete specs.
func checkMemberSpecs(t *testing.T, data []byte, parse func([]byte) ([]memberSpec, error)) {
	t.Helper()
	specs, err := parse(data)
	if err != nil {
		return
	}
	again, err := parse(data)
	if err != nil {
		t.Fatalf("accepted once, rejected on reparse: %v", err)
	}
	if len(specs) == 0 || len(specs) > maxBatchJobs {
		t.Fatalf("accepted %d members (want 1..%d)", len(specs), maxBatchJobs)
	}
	if len(again) != len(specs) {
		t.Fatalf("non-deterministic expansion: %d vs %d members", len(specs), len(again))
	}
	for i := range specs {
		if specs[i].spec == nil || specs[i].spec.key == "" || specs[i].spec.nl == nil {
			t.Fatalf("member %d spec incomplete", i)
		}
		if again[i].spec.key != specs[i].spec.key || again[i].desc != specs[i].desc {
			t.Fatalf("member %d not deterministic: (%s,%q) vs (%s,%q)",
				i, specs[i].spec.key, specs[i].desc, again[i].spec.key, again[i].desc)
		}
	}
}

// FuzzBatchRequest hammers the batch decoder: arbitrary bytes never panic,
// unknown fields and trailing data are rejected, and an accepted batch
// expands deterministically.
func FuzzBatchRequest(f *testing.F) {
	f.Add([]byte(`{"jobs":[{"design":"tiny"}]}`))
	f.Add([]byte(`{"jobs":[{"design":"tiny","config":{"seed":1}},{"design":"s1","priority":"high"}]}`))
	f.Add([]byte(`{"jobs":[{"design":"tiny"},{"design":"tiny"}]}`))
	f.Add([]byte(`{"jobs":[]}`))
	f.Add([]byte(`{"jobs":[{"design":"tiny"}],"extra":1}`))
	f.Add([]byte(`{"jobs":[{"design":"tiny"}]} trailing`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`[]`))

	f.Fuzz(func(t *testing.T, data []byte) {
		checkMemberSpecs(t, data, parseBatchRequest)
	})
}

// FuzzPortfolioSpec hammers the portfolio decoder and matrix expander:
// arbitrary bytes never panic, preset/axis conflicts and oversized or
// malformed matrices are rejected, and an accepted portfolio expands to the
// same ordered members with the same cache keys on every parse.
func FuzzPortfolioSpec(f *testing.F) {
	f.Add([]byte(`{"design":"tiny","matrix":{"seeds":[1,2,3]}}`))
	f.Add([]byte(`{"design":"tiny","matrix":{"preset":"seeds4"}}`))
	f.Add([]byte(`{"design":"tiny","matrix":{"preset":"paper8"}}`))
	f.Add([]byte(`{"design":"tiny","matrix":{"preset":"nope"}}`))
	f.Add([]byte(`{"design":"tiny","matrix":{"preset":"seeds4","seeds":[1]}}`))
	f.Add([]byte(`{"design":"s1","config":{"seed":7},"matrix":{"seeds":[1,2],"efforts":[{"name":"fast","moves_per_cell":6,"max_temps":80}],"backends":["ordered","lagrange"]}}`))
	f.Add([]byte(`{"design":"tiny","matrix":{"backends":["warp"]}}`))
	f.Add([]byte(`{"design":"tiny","matrix":{"seeds":[-1]}}`))
	f.Add([]byte(`{"design":"tiny","matrix":{}}`))
	f.Add([]byte(`{"matrix":{"seeds":[1]}}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		checkMemberSpecs(t, data, parsePortfolioRequest)
	})
}
