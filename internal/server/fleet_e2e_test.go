// End-to-end tests of the coordinator/worker fleet over real HTTP: external
// workers leasing jobs, progress streaming back into SSE, fault injection
// (worker kill and heartbeat stall, both recovering by lease expiry with
// bit-identical results), the priority/fairness scheduler under a mixed
// burst, and the /statsz fleet section.
package server_test

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/fleet"
	"repro/internal/metrics"
	"repro/internal/server"
)

// startFleetWorker runs one in-process fleet worker against the coordinator
// at base. It is killed (crash-style) at test end if still alive.
func startFleetWorker(t *testing.T, base, name string, hb time.Duration, exec fleet.Executor) *fleet.Worker {
	t.Helper()
	w, err := fleet.NewWorker(fleet.WorkerConfig{
		Coordinator: base,
		Name:        name,
		Execute:     exec,
		Heartbeat:   hb,
		PollWait:    100 * time.Millisecond,
		RetryEvery:  20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	go w.Run()
	t.Cleanup(func() {
		w.Kill()
		<-w.Done()
	})
	return w
}

// blockUntilCanceled is an executor that never finishes on its own — the
// shape of a wedged or doomed run for the kill tests.
func blockUntilCanceled(spec json.RawMessage, cancel <-chan struct{}, p metrics.Collector) (fleet.ExecResult, error) {
	<-cancel
	return fleet.ExecResult{Canceled: true}, nil
}

// delayedExec runs the real optimizer after d, ignoring cancellation — the
// shape of a partitioned worker that keeps computing after its lease died.
func delayedExec(d time.Duration) fleet.Executor {
	real := server.FleetExecutor()
	return func(spec json.RawMessage, cancel <-chan struct{}, p metrics.Collector) (fleet.ExecResult, error) {
		time.Sleep(d)
		return real(spec, make(chan struct{}), p)
	}
}

// tinySeed is a fast tiny-design job distinguished only by seed (each seed
// is its own cache key).
func tinySeed(seed int) string {
	return fmt.Sprintf(`{"design":"tiny","config":{"seed":%d,"moves_per_cell":4,"max_temps":10}}`, seed)
}

func getStatsz(t *testing.T, base string) server.Stats {
	t.Helper()
	resp, err := http.Get(base + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st server.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("statsz decode: %v", err)
	}
	return st
}

func layoutHash(t *testing.T, base, id string) [32]byte {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "/layout")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("layout status = %d", resp.StatusCode)
	}
	text, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return sha256.Sum256(text)
}

// TestPriorityField pins the satellite contract of the new priority field:
// unknown classes are 400s, the default is normal, and priority never enters
// the cache key — the same design at a different priority is a cache hit.
func TestPriorityField(t *testing.T) {
	_, base := newTestService(t, server.Config{Workers: 2, QueueDepth: 8})

	_, resp := submitJob(t, base, `{"design":"tiny","priority":"urgent"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown priority answered %d, want 400", resp.StatusCode)
	}

	st, resp := submitJob(t, base, tinyJob)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d", resp.StatusCode)
	}
	if st.Priority != "normal" {
		t.Fatalf("default priority = %q, want normal", st.Priority)
	}
	done := waitState(t, base, st.ID, server.StateDone, 60*time.Second)

	high := strings.Replace(tinyJob, `{"design"`, `{"priority":"high","design"`, 1)
	st2, resp := submitJob(t, base, high)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("resubmit at high priority = %d, want 200 (cache hit)", resp.StatusCode)
	}
	if !st2.Cached {
		t.Fatal("priority change broke the cache key: resubmission was not a hit")
	}
	if st2.CacheKey != done.CacheKey {
		t.Fatalf("cache key changed with priority: %s vs %s", st2.CacheKey, done.CacheKey)
	}
	if st2.Priority != "high" {
		t.Fatalf("priority = %q, want high", st2.Priority)
	}
}

// TestFleetEndToEnd runs a coordinator with no local workers and one external
// fleet worker: the job must complete remotely with its SSE stream intact,
// the layout must be identical to a local run, and /statsz must expose the
// fleet section. Then the worker is drained through the API and must exit.
func TestFleetEndToEnd(t *testing.T) {
	_, base := newTestService(t, server.Config{
		Workers: -1, QueueDepth: 8, LeaseTTL: 2 * time.Second,
	})
	w := startFleetWorker(t, base, "remote-1", 100*time.Millisecond, server.FleetExecutor())

	st, resp := submitJob(t, base, tinyJob)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", resp.StatusCode)
	}
	done := waitState(t, base, st.ID, server.StateDone, 60*time.Second)
	if done.Result == nil || !done.Result.FullyRouted {
		t.Fatalf("remote result = %+v, want fully routed", done.Result)
	}

	// The SSE stream of a remotely-run job must carry the temperature records
	// the worker shipped on its heartbeats, ending in state done.
	sresp, err := http.Get(base + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	counts, lastState := readSSE(t, sresp.Body)
	sresp.Body.Close()
	if counts["temp"] == 0 {
		t.Errorf("remote run streamed no temp events: %v", counts)
	}
	if lastState != "done" {
		t.Errorf("stream ended in state %q, want done", lastState)
	}

	// Bit-identical to a local run of the same spec.
	_, localBase := newTestService(t, server.Config{Workers: 2, QueueDepth: 8})
	lst, _ := submitJob(t, localBase, tinyJob)
	waitState(t, localBase, lst.ID, server.StateDone, 60*time.Second)
	if layoutHash(t, base, st.ID) != layoutHash(t, localBase, lst.ID) {
		t.Error("remote layout differs from local layout for the same spec")
	}

	stats := getStatsz(t, base)
	f := stats.Fleet
	if f.WorkersRegistered != 1 || f.RemoteCompletions != 1 || f.LeasesGranted < 1 {
		t.Errorf("fleet stats = %+v", f)
	}
	if stats.Workers != 0 {
		t.Errorf("coordinator-only Workers = %d, want 0", stats.Workers)
	}
	if f.QueueByClass == nil || f.QueueByClient == nil {
		t.Errorf("fleet queue maps missing: %+v", f)
	}

	// Drain via the API: the worker finishes nothing (idle) and exits.
	dresp, err := http.Post(base+"/v1/fleet/workers/"+w.ID()+"/drain", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, dresp.Body)
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("drain = %d, want 200", dresp.StatusCode)
	}
	select {
	case <-w.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("drained worker still running after 5s")
	}

	if dresp, err := http.Post(base+"/v1/fleet/workers/w999/drain", "application/json", nil); err != nil {
		t.Fatal(err)
	} else {
		io.Copy(io.Discard, dresp.Body)
		dresp.Body.Close()
		if dresp.StatusCode != http.StatusNotFound {
			t.Fatalf("drain of unknown worker = %d, want 404", dresp.StatusCode)
		}
	}
}

// TestFleetWorkerKillRequeue is fault injection #1: a worker killed mid-lease
// never completes, the lease expires, and the job is re-enqueued IN FRONT of
// later submissions — it finishes first, on another worker, with the same
// bytes a healthy run produces.
func TestFleetWorkerKillRequeue(t *testing.T) {
	_, base := newTestService(t, server.Config{
		Workers: -1, QueueDepth: 8, LeaseTTL: 300 * time.Millisecond,
	})

	// Victim worker: wedges on whatever it leases.
	victim := startFleetWorker(t, base, "victim", 50*time.Millisecond, blockUntilCanceled)

	a, resp := submitJob(t, base, tinySeed(21))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit A = %d", resp.StatusCode)
	}
	waitState(t, base, a.ID, server.StateRunning, 30*time.Second) // leased by the victim

	b, _ := submitJob(t, base, tinySeed(22))
	c, _ := submitJob(t, base, tinySeed(23))

	victim.Kill() // crash: no completion, heartbeats stop mid-lease

	// The lease expires and A returns to the queue — running → queued is the
	// observable signature of the re-enqueue.
	waitState(t, base, a.ID, server.StateQueued, 30*time.Second)

	// A healthy worker arrives and must serve A first (front of queue), then
	// B and C in submission order.
	startFleetWorker(t, base, "healthy", 50*time.Millisecond, server.FleetExecutor())
	fa := waitState(t, base, a.ID, server.StateDone, 120*time.Second)
	fb := waitState(t, base, b.ID, server.StateDone, 120*time.Second)
	fc := waitState(t, base, c.ID, server.StateDone, 120*time.Second)
	if fa.Finished.After(*fb.Finished) || fb.Finished.After(*fc.Finished) {
		t.Errorf("completion order broken: A %v, B %v, C %v — re-enqueued job must run first",
			fa.Finished, fb.Finished, fc.Finished)
	}

	// The retried run must be bit-identical to a local run of the same spec.
	_, localBase := newTestService(t, server.Config{Workers: 2, QueueDepth: 8})
	ref, _ := submitJob(t, localBase, tinySeed(21))
	waitState(t, localBase, ref.ID, server.StateDone, 120*time.Second)
	if layoutHash(t, base, a.ID) != layoutHash(t, localBase, ref.ID) {
		t.Error("retried job's layout differs from a healthy run of the same spec")
	}

	f := getStatsz(t, base).Fleet
	if f.LeaseExpiries < 1 || f.Reenqueues < 1 {
		t.Errorf("fleet stats after kill = %+v, want >=1 expiry and re-enqueue", f)
	}
	if f.RemoteCompletions != 3 {
		t.Errorf("remote completions = %d, want 3", f.RemoteCompletions)
	}
}

// TestFleetHeartbeatStallRequeue is fault injection #2: a worker that keeps
// computing but stops heartbeating loses its lease; the job completes on
// another worker, and the stalled worker's late result is refused (410) —
// the job's published state never flips.
func TestFleetHeartbeatStallRequeue(t *testing.T) {
	_, base := newTestService(t, server.Config{
		Workers: -1, QueueDepth: 8, LeaseTTL: 300 * time.Millisecond,
	})

	stalled := startFleetWorker(t, base, "stalled", 40*time.Millisecond, delayedExec(1200*time.Millisecond))

	st, resp := submitJob(t, base, tinyJob)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d", resp.StatusCode)
	}
	waitState(t, base, st.ID, server.StateRunning, 30*time.Second)
	stalled.StallHeartbeats(true)

	// Lease dies, job requeues, a healthy worker finishes it.
	waitState(t, base, st.ID, server.StateQueued, 30*time.Second)
	startFleetWorker(t, base, "healthy", 50*time.Millisecond, server.FleetExecutor())
	done := waitState(t, base, st.ID, server.StateDone, 60*time.Second)
	hash := layoutHash(t, base, st.ID)

	// Give the stalled worker time to finish its doomed run and have its
	// completion refused; nothing about the job may change.
	time.Sleep(1500 * time.Millisecond)
	after := getStatus(t, base, st.ID)
	if after.State != server.StateDone || !after.Finished.Equal(*done.Finished) {
		t.Errorf("late completion disturbed the job: %+v vs %+v", after, done)
	}
	if layoutHash(t, base, st.ID) != hash {
		t.Error("late completion replaced the layout")
	}

	f := getStatsz(t, base).Fleet
	if f.LeaseExpiries < 1 || f.Reenqueues < 1 {
		t.Errorf("fleet stats after stall = %+v, want >=1 expiry and re-enqueue", f)
	}
	if f.RemoteCompletions != 1 {
		t.Errorf("remote completions = %d, want exactly 1 (late result must be refused)", f.RemoteCompletions)
	}
}

// TestFleetMixedPriorityBurst is the acceptance harness: one coordinator,
// three workers, a 50-job burst across three clients and three priorities
// with one worker killed mid-burst. Every job must finish, high-priority
// turnaround must beat low-priority, and no client may be starved.
func TestFleetMixedPriorityBurst(t *testing.T) {
	if testing.Short() {
		t.Skip("burst harness is seconds-long; skipped in -short")
	}
	_, base := newTestService(t, server.Config{
		Workers: -1, QueueDepth: 64, LeaseTTL: 500 * time.Millisecond,
	})

	// Submit the whole burst before any worker exists, so scheduling order —
	// not arrival order — decides who runs when.
	priorities := []string{"low", "normal", "high"}
	clients := []string{"alice", "bob", "carol"}
	type sub struct {
		id, pri, client string
	}
	subs := make([]sub, 0, 50)
	for i := 0; i < 50; i++ {
		pri := priorities[i%3]
		client := clients[(i/3)%3]
		body := fmt.Sprintf(
			`{"design":"tiny","priority":%q,"config":{"seed":%d,"moves_per_cell":4,"max_temps":10}}`,
			pri, 100+i)
		req, err := http.NewRequest(http.MethodPost, base+"/v1/jobs", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Client-ID", client)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var st server.JobStatus
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("burst submit %d = %d", i, resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		subs = append(subs, sub{id: st.ID, pri: pri, client: client})
	}

	doomed := startFleetWorker(t, base, "doomed", 100*time.Millisecond, server.FleetExecutor())
	startFleetWorker(t, base, "steady-1", 100*time.Millisecond, server.FleetExecutor())
	startFleetWorker(t, base, "steady-2", 100*time.Millisecond, server.FleetExecutor())

	// Forced kill mid-burst: after a handful of completions, one worker dies.
	deadline := time.Now().Add(60 * time.Second)
	for getStatsz(t, base).Fleet.RemoteCompletions < 5 {
		if time.Now().After(deadline) {
			t.Fatal("burst made no progress: <5 completions in 60s")
		}
		time.Sleep(10 * time.Millisecond)
	}
	doomed.Kill()

	// No job lost: every one of the 50 reaches done on the survivors.
	finished := make(map[string]server.JobStatus, len(subs))
	for _, s := range subs {
		finished[s.id] = waitState(t, base, s.id, server.StateDone, 180*time.Second)
	}

	// High-priority median turnaround beats low-priority.
	turnarounds := func(pri string) []time.Duration {
		var ds []time.Duration
		for _, s := range subs {
			if s.pri == pri {
				st := finished[s.id]
				ds = append(ds, st.Finished.Sub(st.Created))
			}
		}
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		return ds
	}
	median := func(ds []time.Duration) time.Duration { return ds[len(ds)/2] }
	hi, lo := turnarounds("high"), turnarounds("low")
	if median(hi) >= median(lo) {
		t.Errorf("median turnaround high %v >= low %v; priority classes had no effect",
			median(hi), median(lo))
	}

	// No client starved: every client appears in the first 60%% of
	// completions.
	order := make([]sub, len(subs))
	copy(order, subs)
	sort.Slice(order, func(i, j int) bool {
		return finished[order[i].id].Finished.Before(*finished[order[j].id].Finished)
	})
	cutoff := len(order) * 60 / 100
	firstSeen := make(map[string]int)
	for i, s := range order {
		if _, ok := firstSeen[s.client]; !ok {
			firstSeen[s.client] = i
		}
	}
	for _, cl := range clients {
		at, ok := firstSeen[cl]
		if !ok || at >= cutoff {
			t.Errorf("client %q starved: first completion at index %d of %d", cl, at, len(order))
		}
	}

	f := getStatsz(t, base).Fleet
	if f.RemoteCompletions < 50 {
		t.Errorf("remote completions = %d, want >= 50", f.RemoteCompletions)
	}
	if f.WorkersRegistered != 3 {
		t.Errorf("workers registered = %d, want 3", f.WorkersRegistered)
	}
}
