// The worker-side executor: the same validate → architect → anneal → route →
// serialize flow the in-process pool runs, packaged behind the fleet.Executor
// signature so cmd/fpgaprw (and the e2e harnesses) can run leased jobs in
// another process. Determinism is what makes the whole lease protocol sound:
// given the same spec, this function produces bit-identical layout bytes on
// any worker.
package server

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/fleet"
	"repro/internal/metrics"
)

// FleetExecutor returns the executor an fpgaprw worker plugs into its lease
// loop: it parses the coordinator's spec with the exact validation the submit
// path used, runs the optimizer, and reports the layout plus a JobStats JSON
// document as the completion stats.
func FleetExecutor() fleet.Executor {
	return func(specJSON json.RawMessage, cancel <-chan struct{}, progress metrics.Collector) (fleet.ExecResult, error) {
		spec, err := parseJobRequest(specJSON)
		if err != nil {
			return fleet.ExecResult{}, fmt.Errorf("leased spec: %w", err)
		}
		start := time.Now()
		res, layoutText, err := executeJob(spec, cancel, progress)
		if err != nil {
			return fleet.ExecResult{}, err
		}
		if res.Cancelled {
			return fleet.ExecResult{Canceled: true}, nil
		}
		stats, err := json.Marshal(JobStats{
			FullyRouted: res.FullyRouted,
			Unrouted:    res.D,
			GUnrouted:   res.G,
			WCDPs:       res.WCD,
			FinalCost:   res.FinalCost,
			Temps:       res.Anneal.Temps,
			Moves:       res.Anneal.TotalMoves,
			Restarts:    res.Restarts,
			WallMS:      float64(time.Since(start)) / float64(time.Millisecond),
		})
		if err != nil {
			return fleet.ExecResult{}, fmt.Errorf("marshal stats: %w", err)
		}
		return fleet.ExecResult{Layout: layoutText, Stats: stats}, nil
	}
}
