// HTTP-level admission-control tests: the per-client token bucket and the
// max-inflight quota on POST /v1/jobs, both answering 429 with Retry-After
// like the queue's backpressure path.
package server_test

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/server"
)

// submitAs posts a job body under an explicit client identity.
func submitAs(t *testing.T, base, client, body string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, base+"/v1/jobs", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if client != "" {
		req.Header.Set("X-Client-ID", client)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	io.Copy(io.Discard, resp.Body)
	return resp
}

// TestRateLimitHTTP exhausts one client's burst and requires 429 +
// Retry-After, while a different client identity stays admitted. The refill
// rate is negligible so the test never races the clock.
func TestRateLimitHTTP(t *testing.T) {
	srv, base := newTestService(t, server.Config{
		Workers: 1, QueueDepth: 8,
		RatePerSec: 0.001, RateBurst: 2,
	})
	// Invalid bodies still spend tokens — admission control runs before
	// parsing — which keeps this test independent of queue and workers.
	for i := 0; i < 2; i++ {
		if resp := submitAs(t, base, "tenant-a", `{}`); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("burst request %d: %d, want 400", i, resp.StatusCode)
		}
	}
	resp := submitAs(t, base, "tenant-a", `{}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-burst request: %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("rate-limit 429 without Retry-After")
	}
	if resp := submitAs(t, base, "tenant-b", `{}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("independent client: %d, want 400 (admitted)", resp.StatusCode)
	}
	stats := srv.StatsSnapshot()
	if stats.RateLimited != 1 {
		t.Errorf("rate_limited = %d, want 1", stats.RateLimited)
	}
	if stats.RateClients < 2 {
		t.Errorf("rate_clients = %d, want >= 2", stats.RateClients)
	}
	if stats.Rejected != 0 {
		t.Errorf("rate-limit rejections leaked into the queue counter: %d", stats.Rejected)
	}
}

// TestInflightQuotaHTTP caps one client at a single live job: the second
// submission bounces with 429 until the first terminates, and other clients
// are unaffected.
func TestInflightQuotaHTTP(t *testing.T) {
	_, base := newTestService(t, server.Config{
		Workers: 1, QueueDepth: 8,
		MaxInflight: 1,
	})
	first := submitAs(t, base, "tenant-a", longJob(11))
	if first.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d", first.StatusCode)
	}
	id := first.Header.Get("Location")
	id = strings.TrimPrefix(id, "/v1/jobs/")

	second := submitAs(t, base, "tenant-a", longJob(12))
	if second.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second inflight submit: %d, want 429", second.StatusCode)
	}
	if second.Header.Get("Retry-After") == "" {
		t.Error("quota 429 without Retry-After")
	}
	if resp := submitAs(t, base, "tenant-b", longJob(13)); resp.StatusCode != http.StatusAccepted {
		t.Errorf("other client blocked by tenant-a's quota: %d", resp.StatusCode)
	}

	// Terminal jobs free the quota.
	cancelJob(t, base, id)
	waitState(t, base, id, server.StateCanceled, 5*time.Second)
	if resp := submitAs(t, base, "tenant-a", longJob(14)); resp.StatusCode != http.StatusAccepted {
		t.Errorf("submit after quota freed: %d, want 202", resp.StatusCode)
	}
}
