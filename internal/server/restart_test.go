// Durability end-to-end tests: a server with a data directory must survive
// process death — finished layouts are served from disk without
// recomputation, and interrupted jobs are re-enqueued and complete — while a
// server without one behaves exactly as before.
package server_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/store"
)

// openStore opens the persistent store under dir.
func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir, 1<<20)
	if err != nil {
		t.Fatalf("store.Open(%s): %v", dir, err)
	}
	return st
}

// startService brings up a service without registering cleanup — restart
// tests tear down and reincarnate servers mid-test.
func startService(cfg server.Config) (*server.Server, *httptest.Server) {
	s := server.New(cfg)
	return s, httptest.NewServer(s.Handler())
}

func getBody(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

func cancelJob(t *testing.T, base, id string) {
	t.Helper()
	req, _ := http.NewRequest(http.MethodDelete, base+"/v1/jobs/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

func statsOf(t *testing.T, base string) server.Stats {
	t.Helper()
	code, body := getBody(t, base+"/statsz")
	if code != http.StatusOK {
		t.Fatalf("statsz: %d", code)
	}
	var st server.Stats
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("statsz decode: %v", err)
	}
	return st
}

// TestRestartRecovery is the full durability story across three process
// lives: finish a job, die with one job mid-run and one queued, restart,
// and require the finished layout served from disk (no recompute, identical
// bytes) and the interrupted jobs re-enqueued; then restart once more to see
// the journal compacted down to the surviving jobs.
func TestRestartRecovery(t *testing.T) {
	dir := t.TempDir()
	quick := tinyJob
	runningJob := longJob(7)
	queuedJob := `{"design":"tiny","config":{"seed":9,"moves_per_cell":4,"max_temps":10}}`

	// Life 1: finish one job, then die with one running and one queued.
	st1 := openStore(t, dir)
	srv1, ts1 := startService(server.Config{Workers: 1, QueueDepth: 8, Store: st1})
	done1, resp := submitJob(t, ts1.URL, quick)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	waitState(t, ts1.URL, done1.ID, server.StateDone, 60*time.Second)
	code, wantLayout := getBody(t, ts1.URL+"/v1/jobs/"+done1.ID+"/layout")
	if code != http.StatusOK || len(wantLayout) == 0 {
		t.Fatalf("layout fetch in life 1: %d (%d bytes)", code, len(wantLayout))
	}
	interrupted, resp := submitJob(t, ts1.URL, runningJob)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit long: %d", resp.StatusCode)
	}
	waitState(t, ts1.URL, interrupted.ID, server.StateRunning, 60*time.Second)
	queued, resp := submitJob(t, ts1.URL, queuedJob)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit queued: %d", resp.StatusCode)
	}
	ts1.Close()
	srv1.Close() // interrupt: no terminal records for the two live jobs
	st1.Close()

	// Life 2: the journal must re-advertise the finished job and re-enqueue
	// the interrupted ones.
	st2 := openStore(t, dir)
	rec := st2.Recovery()
	if len(rec.Done) != 1 || rec.Done[0].Job != done1.ID {
		t.Fatalf("recovered Done = %+v, want %s", rec.Done, done1.ID)
	}
	if len(rec.Pending) != 2 || rec.Pending[0].Job != interrupted.ID || rec.Pending[1].Job != queued.ID {
		t.Fatalf("recovered Pending = %+v, want [%s %s]", rec.Pending, interrupted.ID, queued.ID)
	}
	srv2, ts2 := startService(server.Config{Workers: 1, QueueDepth: 8, Store: st2})

	// The finished job is re-advertised under its old ID with its stats...
	reborn := getStatus(t, ts2.URL, done1.ID)
	if reborn.State != server.StateDone || !reborn.Cached || reborn.Result == nil {
		t.Fatalf("recovered done job: %+v", reborn)
	}
	if reborn.Design != "tiny" || reborn.Result.WallMS <= 0 {
		t.Errorf("recovered metadata lost: design %q, stats %+v", reborn.Design, reborn.Result)
	}
	// ...and its layout is served byte-identical from disk.
	code, gotLayout := getBody(t, ts2.URL+"/v1/jobs/"+done1.ID+"/layout")
	if code != http.StatusOK || !bytes.Equal(gotLayout, wantLayout) {
		t.Fatalf("recovered layout: status %d, bytes equal %v", code, bytes.Equal(gotLayout, wantLayout))
	}

	// Resubmitting the finished work is a cache hit fed from disk: no new
	// optimizer run, identical bytes, disk-hit counter incremented.
	resub, resp := submitJob(t, ts2.URL, quick)
	if resp.StatusCode != http.StatusOK || !resub.Cached {
		t.Fatalf("resubmit after restart: status %d, cached %v", resp.StatusCode, resub.Cached)
	}
	code, resubLayout := getBody(t, ts2.URL+"/v1/jobs/"+resub.ID+"/layout")
	if code != http.StatusOK || !bytes.Equal(resubLayout, wantLayout) {
		t.Fatalf("resubmitted layout differs from life-1 bytes")
	}
	stats := statsOf(t, ts2.URL)
	if stats.Cache.DiskHits < 1 {
		t.Errorf("disk cache hits = %d, want >= 1", stats.Cache.DiskHits)
	}
	if stats.Store == nil {
		t.Fatal("statsz missing store section with -data-dir armed")
	}
	if stats.Store.RecoveredPending != 2 || stats.Store.RecoveredDone != 1 {
		t.Errorf("store stats recovery counts = %+v", stats.Store)
	}

	// The interrupted jobs were re-enqueued: the long one is running again
	// (cancel it — its budget outlives the test), the queued one completes.
	waitState(t, ts2.URL, interrupted.ID, server.StateRunning, 60*time.Second)
	cancelJob(t, ts2.URL, interrupted.ID)
	waitState(t, ts2.URL, interrupted.ID, server.StateCanceled, 5*time.Second)
	fin := waitState(t, ts2.URL, queued.ID, server.StateDone, 60*time.Second)
	if fin.Result == nil {
		t.Fatal("re-enqueued job finished without a result")
	}
	if stats := statsOf(t, ts2.URL); stats.Runs > 2 {
		t.Errorf("optimizer runs = %d in life 2, want <= 2 (only the re-enqueued jobs)", stats.Runs)
	}
	ts2.Close()
	srv2.Close()
	st2.Close()

	// Life 3: the journal has been compacted and resettled — the canceled
	// job is gone for good, both finished jobs are advertised.
	st3 := openStore(t, dir)
	defer st3.Close()
	rec = st3.Recovery()
	if len(rec.Pending) != 0 {
		t.Errorf("life-3 Pending = %+v, want none (canceled jobs must not resurrect)", rec.Pending)
	}
	if len(rec.Done) != 2 {
		t.Errorf("life-3 Done = %+v, want the two finished jobs", rec.Done)
	}
}

// TestRejectedSubmissionNotResurrected pins the journal-before-enqueue
// contract's counterpart: a submission bounced by queue backpressure has its
// record neutralized and must not reappear after a restart.
func TestRejectedSubmissionNotResurrected(t *testing.T) {
	dir := t.TempDir()
	st1 := openStore(t, dir)
	srv1, ts1 := startService(server.Config{Workers: 1, QueueDepth: 1, Store: st1})
	running, resp := submitJob(t, ts1.URL, longJob(2))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d", resp.StatusCode)
	}
	waitState(t, ts1.URL, running.ID, server.StateRunning, 60*time.Second)
	if _, resp = submitJob(t, ts1.URL, longJob(3)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit: %d", resp.StatusCode)
	}
	if _, resp = submitJob(t, ts1.URL, longJob(4)); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: %d, want 429", resp.StatusCode)
	}
	ts1.Close()
	srv1.Close()
	st1.Close()

	st2 := openStore(t, dir)
	defer st2.Close()
	if rec := st2.Recovery(); len(rec.Pending) != 2 {
		t.Errorf("Pending = %+v, want only the two accepted jobs", rec.Pending)
	}
}

// TestHTTPCancelNotResurrected: a client cancellation is a journaled
// terminal state — unlike a shutdown interrupt, it survives restart as
// "gone", not "retry".
func TestHTTPCancelNotResurrected(t *testing.T) {
	dir := t.TempDir()
	st1 := openStore(t, dir)
	srv1, ts1 := startService(server.Config{Workers: 1, QueueDepth: 4, Store: st1})
	running, resp := submitJob(t, ts1.URL, longJob(5))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	waitState(t, ts1.URL, running.ID, server.StateRunning, 60*time.Second)
	queued, resp := submitJob(t, ts1.URL, longJob(6))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit queued: %d", resp.StatusCode)
	}
	cancelJob(t, ts1.URL, queued.ID) // queued: journals canceled synchronously
	cancelJob(t, ts1.URL, running.ID)
	waitState(t, ts1.URL, running.ID, server.StateCanceled, 5*time.Second)
	ts1.Close()
	srv1.Close()
	st1.Close()

	st2 := openStore(t, dir)
	defer st2.Close()
	if rec := st2.Recovery(); len(rec.Pending) != 0 || len(rec.Done) != 0 {
		t.Errorf("recovery = %+v / %+v, want empty (both jobs were client-canceled)", rec.Pending, rec.Done)
	}
}

// TestInMemoryModeUnchanged pins the -data-dir-unset contract: no store
// section in statsz, and the whole lifecycle works exactly as the rest of
// the e2e suite (which all runs storeless) already proves.
func TestInMemoryModeUnchanged(t *testing.T) {
	_, base := newTestService(t, server.Config{Workers: 1, QueueDepth: 4})
	st, resp := submitJob(t, base, tinyJob)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	waitState(t, base, st.ID, server.StateDone, 60*time.Second)
	stats := statsOf(t, base)
	if stats.Store != nil {
		t.Errorf("in-memory server advertises a store section: %+v", stats.Store)
	}
	if stats.RateLimited != 0 || stats.RateClients != 0 {
		t.Errorf("in-memory server counts rate limiting: %+v", stats)
	}
}
