package server

import "sync"

// resultCache is the deterministic layout cache. The optimizer is bit-exact
// for a fixed (netlist, arch, config, seed) tuple — the property the golden
// and GOMAXPROCS-invariance tests pin — so a finished JobResult can be served
// verbatim for any later request with the same cache key, skipping the anneal
// entirely. Entries are immutable; eviction is FIFO by insertion order.
type resultCache struct {
	mu      sync.Mutex
	max     int
	entries map[string]*JobResult
	order   []string
	hits    int64
	misses  int64
}

func newResultCache(max int) *resultCache {
	return &resultCache{max: max, entries: make(map[string]*JobResult, max)}
}

func (c *resultCache) get(key string) (*JobResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.entries[key]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return r, ok
}

func (c *resultCache) put(key string, r *JobResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; ok {
		return // first writer wins; results for one key are identical anyway
	}
	for len(c.entries) >= c.max && len(c.order) > 0 {
		oldest := c.order[0]
		c.order = c.order[1:]
		delete(c.entries, oldest)
	}
	c.entries[key] = r
	c.order = append(c.order, key)
}

// CacheStats is the cache section of /statsz.
type CacheStats struct {
	Entries int   `json:"entries"`
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
}

func (c *resultCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Entries: len(c.entries), Hits: c.hits, Misses: c.misses}
}
