package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"

	"repro/internal/store"
)

// resultCache is the deterministic layout cache. The optimizer is bit-exact
// for a fixed (netlist, arch, config, seed) tuple — the property the golden
// and GOMAXPROCS-invariance tests pin — so a finished JobResult can be served
// verbatim for any later request with the same cache key, skipping the anneal
// entirely. Entries are immutable; eviction is FIFO by insertion order.
//
// With a store attached, the in-memory map is a write-through front for the
// content-addressed disk store: put persists the result blob before the job
// is journaled done, and a memory miss falls back to disk, re-populating the
// front. Results therefore survive both memory eviction and process death.
type resultCache struct {
	mu       sync.Mutex
	max      int
	entries  map[string]*JobResult
	order    []string
	hits     int64
	misses   int64
	diskHits int64

	disk *store.Store // nil = memory only
}

func newResultCache(max int, disk *store.Store) *resultCache {
	return &resultCache{max: max, entries: make(map[string]*JobResult, max), disk: disk}
}

func (c *resultCache) get(key string) (*JobResult, bool) {
	c.mu.Lock()
	if r, ok := c.entries[key]; ok {
		c.hits++
		c.mu.Unlock()
		return r, true
	}
	disk := c.disk
	c.mu.Unlock()

	if disk != nil {
		// Disk I/O happens outside the cache lock; concurrent readers of one
		// key may both hit disk, but first insert wins and both get the same
		// immutable result.
		if blob, ok := disk.GetBlob(key); ok {
			if r, err := decodeResult(blob); err == nil {
				c.mu.Lock()
				c.diskHits++
				c.insertLocked(key, r)
				r = c.entries[key]
				c.mu.Unlock()
				return r, true
			}
		}
	}
	c.mu.Lock()
	c.misses++
	c.mu.Unlock()
	return nil, false
}

func (c *resultCache) put(key string, r *JobResult) {
	c.mu.Lock()
	c.insertLocked(key, r)
	disk := c.disk
	c.mu.Unlock()
	if disk != nil {
		// Write-through: errors are absorbed into the store's put-error
		// counter (visible in /statsz) — a failed disk write only costs a
		// future recompute, never the in-flight response.
		disk.PutBlob(key, encodeResult(r))
	}
}

// insertLocked adds an entry under c.mu; first writer wins (results for one
// key are identical anyway).
func (c *resultCache) insertLocked(key string, r *JobResult) {
	if _, ok := c.entries[key]; ok {
		return
	}
	for len(c.entries) >= c.max && len(c.order) > 0 {
		oldest := c.order[0]
		c.order = c.order[1:]
		delete(c.entries, oldest)
	}
	c.entries[key] = r
	c.order = append(c.order, key)
}

// encodeResult serializes a JobResult as a disk blob: one line of stats JSON,
// then the raw layout bytes.
func encodeResult(r *JobResult) []byte {
	stats, err := json.Marshal(r.Stats)
	if err != nil {
		stats = []byte("{}") // JobStats is plain data; this cannot happen
	}
	buf := make([]byte, 0, len(stats)+1+len(r.Layout))
	buf = append(buf, stats...)
	buf = append(buf, '\n')
	return append(buf, r.Layout...)
}

// decodeResult parses an encodeResult blob.
func decodeResult(blob []byte) (*JobResult, error) {
	i := bytes.IndexByte(blob, '\n')
	if i < 0 {
		return nil, fmt.Errorf("result blob has no stats line")
	}
	var stats JobStats
	if err := json.Unmarshal(blob[:i], &stats); err != nil {
		return nil, fmt.Errorf("result blob stats: %w", err)
	}
	return &JobResult{
		Layout: append([]byte(nil), blob[i+1:]...),
		Stats:  stats,
	}, nil
}

// CacheStats is the cache section of /statsz.
type CacheStats struct {
	Entries  int   `json:"entries"`
	Hits     int64 `json:"hits"`
	Misses   int64 `json:"misses"`
	DiskHits int64 `json:"disk_hits"`
}

func (c *resultCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Entries: len(c.entries), Hits: c.hits, Misses: c.misses, DiskHits: c.diskHits}
}
