// Per-client admission control on POST /v1/jobs: a token-bucket rate limit
// plus a max-inflight-jobs quota, both keyed by the client identity (the
// X-Client-ID header when present, else the remote address host). Violations
// answer 429 with Retry-After, exactly like the queue's backpressure path —
// the service sheds load at the edge instead of letting one client starve
// the worker pool.
package server

import (
	"math"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"
)

const (
	// maxClientKeyLen bounds the accepted client identity so a hostile
	// header cannot bloat the limiter's table.
	maxClientKeyLen = 128
	// bucketIdleTTL is how long an idle client's bucket is retained; pruning
	// keeps the table proportional to the set of recently active clients.
	bucketIdleTTL = 10 * time.Minute
	// prunePeriod spaces table sweeps.
	prunePeriod = time.Minute
)

// clientKey identifies the submitter for rate limiting and quotas.
func clientKey(r *http.Request) string {
	if id := strings.TrimSpace(r.Header.Get("X-Client-ID")); id != "" {
		if len(id) > maxClientKeyLen {
			id = id[:maxClientKeyLen]
		}
		return id
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

// rateLimiter is a table of per-client token buckets. Buckets refill
// continuously at rate tokens/sec up to burst; each submission spends one
// token. A zero rate disables the bucket check (the inflight quota, enforced
// by the server against its live job table, may still be active).
type rateLimiter struct {
	rate  float64
	burst float64

	mu        sync.Mutex
	clients   map[string]*bucket
	lastPrune time.Time
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newRateLimiter(rate float64, burst int) *rateLimiter {
	if burst < 1 {
		burst = 1
	}
	return &rateLimiter{
		rate:    rate,
		burst:   float64(burst),
		clients: make(map[string]*bucket),
	}
}

// allow spends one token from client's bucket. When the bucket is empty it
// reports false plus the duration until a token accrues (the Retry-After
// hint).
func (l *rateLimiter) allow(client string, now time.Time) (time.Duration, bool) {
	if l == nil || l.rate <= 0 {
		return 0, true
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.pruneLocked(now)
	b, ok := l.clients[client]
	if !ok {
		b = &bucket{tokens: l.burst, last: now}
		l.clients[client] = b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens = math.Min(l.burst, b.tokens+dt*l.rate)
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return 0, true
	}
	wait := time.Duration((1 - b.tokens) / l.rate * float64(time.Second))
	return wait, false
}

// pruneLocked drops buckets idle past their TTL, at most once per
// prunePeriod. Callers hold l.mu.
func (l *rateLimiter) pruneLocked(now time.Time) {
	if now.Sub(l.lastPrune) < prunePeriod {
		return
	}
	l.lastPrune = now
	for key, b := range l.clients {
		if now.Sub(b.last) > bucketIdleTTL {
			delete(l.clients, key)
		}
	}
}

// clientCount reports the number of tracked client buckets (for /statsz).
func (l *rateLimiter) clientCount() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.clients)
}

// retryAfterSeconds rounds a wait up to the whole seconds Retry-After wants,
// never below 1.
func retryAfterSeconds(wait time.Duration) int {
	secs := int(math.Ceil(wait.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return secs
}
