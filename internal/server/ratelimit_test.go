package server

import (
	"net/http"
	"testing"
	"time"
)

// TestRateLimiterBucket drives the token bucket with a synthetic clock.
func TestRateLimiterBucket(t *testing.T) {
	l := newRateLimiter(2, 2) // 2 tokens/sec, burst 2
	now := time.Unix(1000, 0)
	for i := 0; i < 2; i++ {
		if _, ok := l.allow("c1", now); !ok {
			t.Fatalf("burst request %d denied", i)
		}
	}
	wait, ok := l.allow("c1", now)
	if ok {
		t.Fatal("third immediate request allowed past burst")
	}
	if wait <= 0 || wait > 500*time.Millisecond {
		t.Errorf("wait = %v, want (0, 500ms] at 2 tokens/sec", wait)
	}
	// A different client has its own bucket.
	if _, ok := l.allow("c2", now); !ok {
		t.Error("independent client denied")
	}
	// Refill: after 500ms one token has accrued.
	if _, ok := l.allow("c1", now.Add(500*time.Millisecond)); !ok {
		t.Error("request denied after refill interval")
	}
	// Tokens cap at burst, never beyond.
	later := now.Add(time.Hour)
	for i := 0; i < 2; i++ {
		if _, ok := l.allow("c1", later); !ok {
			t.Fatalf("post-idle burst request %d denied", i)
		}
	}
	if _, ok := l.allow("c1", later); ok {
		t.Error("idle time accrued more than burst tokens")
	}
}

// TestRateLimiterPrune requires idle buckets to be swept so the table stays
// proportional to active clients.
func TestRateLimiterPrune(t *testing.T) {
	l := newRateLimiter(1, 1)
	now := time.Unix(1000, 0)
	l.allow("idle", now)
	l.allow("busy", now)
	if got := l.clientCount(); got != 2 {
		t.Fatalf("clientCount = %d, want 2", got)
	}
	later := now.Add(bucketIdleTTL + prunePeriod + time.Second)
	l.allow("busy", later)
	if got := l.clientCount(); got != 1 {
		t.Errorf("clientCount after prune = %d, want 1 (idle swept)", got)
	}
}

// TestRateLimiterDisabled: a nil limiter and a zero rate both admit
// everything.
func TestRateLimiterDisabled(t *testing.T) {
	var nilLimiter *rateLimiter
	if _, ok := nilLimiter.allow("x", time.Now()); !ok {
		t.Error("nil limiter denied a request")
	}
	if nilLimiter.clientCount() != 0 {
		t.Error("nil limiter counts clients")
	}
}

// TestClientKey pins the identity derivation: header first (bounded), then
// remote host.
func TestClientKey(t *testing.T) {
	req, _ := http.NewRequest(http.MethodPost, "/v1/jobs", nil)
	req.RemoteAddr = "192.0.2.7:41234"
	if got := clientKey(req); got != "192.0.2.7" {
		t.Errorf("clientKey = %q, want remote host", got)
	}
	req.Header.Set("X-Client-ID", "  tenant-42  ")
	if got := clientKey(req); got != "tenant-42" {
		t.Errorf("clientKey = %q, want trimmed header", got)
	}
	long := make([]byte, 4*maxClientKeyLen)
	for i := range long {
		long[i] = 'a'
	}
	req.Header.Set("X-Client-ID", string(long))
	if got := clientKey(req); len(got) != maxClientKeyLen {
		t.Errorf("unbounded client key accepted: %d bytes", len(got))
	}
}

func TestRetryAfterSeconds(t *testing.T) {
	for _, tc := range []struct {
		wait time.Duration
		want int
	}{
		{0, 1},
		{10 * time.Millisecond, 1},
		{time.Second, 1},
		{1100 * time.Millisecond, 2},
		{10 * time.Second, 10},
	} {
		if got := retryAfterSeconds(tc.wait); got != tc.want {
			t.Errorf("retryAfterSeconds(%v) = %d, want %d", tc.wait, got, tc.want)
		}
	}
}
