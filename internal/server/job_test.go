package server

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/exper"
	"repro/internal/netlist"
)

// TestCacheKeyCanonicalization pins the dedup property of the cache key: a
// named design and the equivalent inline netlist hash identically, every
// result-affecting config field feeds the key, and the scheduling-only
// Workers field does not.
func TestCacheKeyCanonicalization(t *testing.T) {
	named, err := buildSpec(JobRequest{Design: "tiny"})
	if err != nil {
		t.Fatal(err)
	}

	nl, err := exper.Design("tiny")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := netlist.WriteNet(&buf, nl); err != nil {
		t.Fatal(err)
	}
	inline, err := buildSpec(JobRequest{Netlist: buf.String()})
	if err != nil {
		t.Fatal(err)
	}
	if named.key != inline.key {
		t.Errorf("named vs inline key mismatch:\n%s\n%s", named.key, inline.key)
	}

	seeded, err := buildSpec(JobRequest{Design: "tiny", Config: JobConfig{Seed: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if seeded.key == named.key {
		t.Error("seed change did not change the cache key")
	}

	tracks, err := buildSpec(JobRequest{Design: "tiny", Tracks: 24})
	if err != nil {
		t.Fatal(err)
	}
	if tracks.key == named.key {
		t.Error("tracks change did not change the cache key")
	}

	workers, err := buildSpec(JobRequest{Design: "tiny", Config: JobConfig{Workers: 7}})
	if err != nil {
		t.Fatal(err)
	}
	if workers.key != named.key {
		t.Error("scheduling-only Workers field changed the cache key")
	}

	// Criticality knobs are result-affecting: enabling the term changes the
	// key, and every sub-knob feeds it; leaving it off preserves the
	// pre-extension key so existing cached results stay addressable.
	crit, err := buildSpec(JobRequest{Design: "tiny", Config: JobConfig{CritWeight: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if crit.key == named.key {
		t.Error("crit_weight did not change the cache key")
	}
	critBias, err := buildSpec(JobRequest{Design: "tiny", Config: JobConfig{CritWeight: 1, CritBias: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	critDamp, err := buildSpec(JobRequest{Design: "tiny", Config: JobConfig{CritWeight: 1, CritDamping: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	if critBias.key == crit.key || critDamp.key == crit.key || critBias.key == critDamp.key {
		t.Error("crit_bias/crit_damping did not feed the cache key")
	}

	// Route-backend knobs: selecting a non-default backend changes the key,
	// its iteration cap feeds it, and the default (empty or explicit
	// "ordered") preserves the pre-extension key so existing cached results
	// stay addressable. The scheduling-only route_workers never feeds it.
	ordered, err := buildSpec(JobRequest{Design: "tiny", Config: JobConfig{RouteBackend: "ordered"}})
	if err != nil {
		t.Fatal(err)
	}
	if ordered.key != named.key {
		t.Error("explicit \"ordered\" backend changed the cache key")
	}
	lag, err := buildSpec(JobRequest{Design: "tiny", Config: JobConfig{RouteBackend: "lagrange"}})
	if err != nil {
		t.Fatal(err)
	}
	if lag.key == named.key {
		t.Error("route_backend did not change the cache key")
	}
	lagIters, err := buildSpec(JobRequest{Design: "tiny", Config: JobConfig{RouteBackend: "lagrange", RouteIters: 12}})
	if err != nil {
		t.Fatal(err)
	}
	if lagIters.key == lag.key {
		t.Error("route_iters did not feed the cache key")
	}
	lagWorkers, err := buildSpec(JobRequest{Design: "tiny", Config: JobConfig{RouteBackend: "lagrange", RouteWorkers: 7}})
	if err != nil {
		t.Fatal(err)
	}
	if lagWorkers.key != lag.key {
		t.Error("scheduling-only route_workers field changed the cache key")
	}
	neg, err := buildSpec(JobRequest{Design: "tiny", Config: JobConfig{RouteBackend: "negotiated"}})
	if err != nil {
		t.Fatal(err)
	}
	if neg.key == lag.key || neg.key == named.key {
		t.Error("negotiated backend key not distinct")
	}
}

// TestParseJobRequestValidation covers the decoder's reject paths.
func TestParseJobRequestValidation(t *testing.T) {
	for _, tc := range []struct {
		name, body string
	}{
		{"neither source", `{}`},
		{"both sources", `{"design":"tiny","netlist":"x"}`},
		{"unknown design", `{"design":"zzz"}`},
		{"format on design", `{"design":"tiny","format":"net"}`},
		{"unknown format", `{"netlist":"x","format":"edif"}`},
		{"unparsable netlist", `{"netlist":"garbage"}`},
		{"tracks low", `{"design":"tiny","tracks":2}`},
		{"tracks high", `{"design":"tiny","tracks":9999}`},
		{"negative seed", `{"design":"tiny","config":{"seed":-1}}`},
		{"chains high", `{"design":"tiny","config":{"chains":64}}`},
		{"temps high", `{"design":"tiny","config":{"max_temps":100000}}`},
		{"unknown field", `{"design":"tiny","nope":true}`},
		{"crit weight negative", `{"design":"tiny","config":{"crit_weight":-1}}`},
		{"crit weight high", `{"design":"tiny","config":{"crit_weight":1000}}`},
		{"crit bias high", `{"design":"tiny","config":{"crit_weight":1,"crit_bias":1.5}}`},
		{"crit damping 1", `{"design":"tiny","config":{"crit_weight":1,"crit_damping":1}}`},
		{"crit bias without weight", `{"design":"tiny","config":{"crit_bias":0.5}}`},
		{"unknown route backend", `{"design":"tiny","config":{"route_backend":"pathfinder"}}`},
		{"route iters without backend", `{"design":"tiny","config":{"route_iters":8}}`},
		{"route iters high", `{"design":"tiny","config":{"route_backend":"lagrange","route_iters":9999}}`},
		{"route workers high", `{"design":"tiny","config":{"route_backend":"lagrange","route_workers":9999}}`},
		{"trailing data", `{"design":"tiny"} {"x":1}`},
		{"not an object", `42`},
	} {
		if _, err := parseJobRequest([]byte(tc.body)); err == nil {
			t.Errorf("%s: accepted %s", tc.name, tc.body)
		}
	}
	for _, body := range []string{
		`{"design":"tiny","tracks":24,"config":{"seed":9,"chains":2}}`,
		`{"design":"tiny","config":{"route_backend":"lagrange","route_iters":12,"route_workers":4}}`,
		`{"design":"tiny","config":{"route_backend":"negotiated"}}`,
	} {
		if _, err := parseJobRequest([]byte(body)); err != nil {
			t.Errorf("valid request rejected: %v (%s)", err, body)
		}
	}
}

// TestEventHubReplayAndFollow checks the hub's contract: ordered sequence
// numbers, full replay from any cursor, wake on append, and sealing.
func TestEventHubReplayAndFollow(t *testing.T) {
	h := newEventHub()
	h.state(StateQueued)
	h.state(StateRunning)

	evs, sealed, wake := h.next(0)
	if len(evs) != 2 || sealed {
		t.Fatalf("replay: %d events, sealed %v", len(evs), sealed)
	}
	for i, ev := range evs {
		if ev.Seq != i {
			t.Errorf("event %d has seq %d", i, ev.Seq)
		}
	}

	done := make(chan struct{})
	go func() {
		<-wake
		close(done)
	}()
	h.state(StateDone)
	<-done

	evs, _, _ = h.next(2)
	if len(evs) != 1 || evs[0].State != StateDone {
		t.Fatalf("incremental read: %+v", evs)
	}

	h.finish()
	if _, sealed, _ := h.next(3); !sealed {
		t.Error("hub not sealed after finish")
	}
	h.state(StateFailed) // must be ignored
	if evs, _, _ := h.next(0); len(evs) != 3 {
		t.Errorf("append after seal: %d events, want 3", len(evs))
	}
}

// TestResultCacheEviction checks FIFO eviction and the hit/miss counters.
func TestResultCacheEviction(t *testing.T) {
	c := newResultCache(2, nil)
	r := &JobResult{}
	c.put("a", r)
	c.put("b", r)
	c.put("c", r) // evicts a
	if _, ok := c.get("a"); ok {
		t.Error("oldest entry survived eviction")
	}
	if _, ok := c.get("b"); !ok {
		t.Error("entry b evicted early")
	}
	if _, ok := c.get("c"); !ok {
		t.Error("entry c missing")
	}
	st := c.stats()
	if st.Entries != 2 || st.Hits != 2 || st.Misses != 1 {
		t.Errorf("stats = %+v, want 2 entries, 2 hits, 1 miss", st)
	}
}

// TestJobStateMachine drives the transitions directly.
func TestJobStateMachine(t *testing.T) {
	spec, err := buildSpec(JobRequest{Design: "tiny"})
	if err != nil {
		t.Fatal(err)
	}

	j := newJob("j1", spec)
	if j.State() != StateQueued {
		t.Fatalf("fresh job state %s", j.State())
	}
	if !j.beginRunning() {
		t.Fatal("beginRunning refused a queued job")
	}
	if j.beginRunning() {
		t.Fatal("beginRunning accepted a running job")
	}
	j.finishTerminal(StateDone, &JobResult{Layout: []byte("x")}, "")
	if j.State() != StateDone {
		t.Fatalf("state %s after finish", j.State())
	}
	if j.requestCancel() {
		t.Error("cancel of a done job reported an effect")
	}
	j.finishTerminal(StateFailed, nil, "late") // terminal is sticky
	if j.State() != StateDone {
		t.Error("terminal state was overwritten")
	}

	// Queued job cancels immediately; the worker then skips it.
	q := newJob("j2", spec)
	if !q.requestCancel() {
		t.Error("cancel of a queued job reported no effect")
	}
	if q.State() != StateCanceled {
		t.Fatalf("queued job state %s after cancel", q.State())
	}
	if q.beginRunning() {
		t.Error("worker could start a canceled job")
	}

	// Running job: cancel closes the channel, worker finishes it.
	r := newJob("j3", spec)
	r.beginRunning()
	if !r.requestCancel() {
		t.Error("cancel of a running job reported no effect")
	}
	select {
	case <-r.cancel:
	default:
		t.Error("cancel channel not closed for a running job")
	}
	if r.requestCancel() {
		t.Error("second cancel reported an effect")
	}
	r.finishTerminal(StateCanceled, nil, "")
	if r.State() != StateCanceled {
		t.Fatalf("state %s, want canceled", r.State())
	}
}

// TestStatusJSONShape pins the wire contract clients script against.
func TestStatusJSONShape(t *testing.T) {
	spec, err := buildSpec(JobRequest{Design: "tiny"})
	if err != nil {
		t.Fatal(err)
	}
	j := newJob("j9", spec)
	b, err := json.Marshal(j.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"id", "state", "design", "cells", "nets", "cache_key", "created"} {
		if _, ok := m[k]; !ok {
			t.Errorf("status JSON missing %q: %s", k, b)
		}
	}
	if m["state"] != "queued" || m["design"] != "tiny" {
		t.Errorf("status JSON fields: %s", b)
	}
}
