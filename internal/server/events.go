// Event streaming: each job owns an eventHub, a metrics.Collector whose
// records are appended to an ordered, append-only history and broadcast to
// any number of SSE subscribers. Subscribers replay the history from the
// beginning and then follow live events; the hub is sealed when the job
// reaches a terminal state, which ends every stream.
package server

import (
	"sync"

	"repro/internal/metrics"
)

// Event is one element of a job's progress stream. Type is one of "state",
// "phase", "temp" or "chain" — plus, on group streams, "member" (one member's
// state transition) and "champion" (the portfolio's final selection); exactly
// one payload field is set.
type Event struct {
	Seq    int                  `json:"seq"`
	Type   string               `json:"type"`
	State  JobState             `json:"state,omitempty"`
	Phase  *PhaseEvent          `json:"phase,omitempty"`
	Temp   *metrics.TempRecord  `json:"temp,omitempty"`
	Chain  *metrics.ChainRecord `json:"chain,omitempty"`
	Member *MemberEvent         `json:"member,omitempty"`
}

// MemberEvent reports one group member on an aggregated batch/portfolio
// stream.
type MemberEvent struct {
	Index int      `json:"index"`
	Job   string   `json:"job"`
	State JobState `json:"state"`
}

// PhaseEvent reports one finished flow phase.
type PhaseEvent struct {
	Name      string `json:"name"`
	ElapsedNS int64  `json:"elapsed_ns"`
}

// eventHub is the per-job progress log. It is safe for concurrent use:
// parallel annealing chains append through the Collector interface while SSE
// handlers read, all under one mutex. History is append-only, so slices
// handed to readers stay valid without copying.
type eventHub struct {
	mu       sync.Mutex
	events   []Event
	sealed   bool
	wake     chan struct{} // closed and replaced on every append/seal
	lastTemp metrics.TempRecord
	haveTemp bool
}

func newEventHub() *eventHub {
	return &eventHub{wake: make(chan struct{})}
}

func (h *eventHub) append(ev Event) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.sealed {
		return
	}
	ev.Seq = len(h.events)
	h.events = append(h.events, ev)
	close(h.wake)
	h.wake = make(chan struct{})
}

// RecordTemp implements metrics.Collector.
func (h *eventHub) RecordTemp(r metrics.TempRecord) {
	h.mu.Lock()
	h.lastTemp, h.haveTemp = r, true
	h.mu.Unlock()
	h.append(Event{Type: "temp", Temp: &r})
}

// RecordPhase implements metrics.Collector.
func (h *eventHub) RecordPhase(r metrics.PhaseRecord) {
	h.append(Event{Type: "phase", Phase: &PhaseEvent{Name: r.Phase.String(), ElapsedNS: int64(r.Elapsed)}})
}

// RecordChain implements metrics.Collector.
func (h *eventHub) RecordChain(r metrics.ChainRecord) {
	h.append(Event{Type: "chain", Chain: &r})
}

// state records a job state transition as a stream event.
func (h *eventHub) state(s JobState) {
	h.append(Event{Type: "state", State: s})
}

// finish seals the stream: no further events are accepted and every waiting
// subscriber is released.
func (h *eventHub) finish() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.sealed {
		return
	}
	h.sealed = true
	close(h.wake)
}

// next returns the events at and after cursor, whether the stream is sealed,
// and a channel that is closed at the next append (or already closed once
// sealed). The returned slice aliases the append-only history and must not be
// mutated.
func (h *eventHub) next(cursor int) (evs []Event, sealed bool, wake <-chan struct{}) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if cursor < len(h.events) {
		evs = h.events[cursor:len(h.events):len(h.events)]
	}
	return evs, h.sealed, h.wake
}

// latestTemp returns the most recent temperature record, if any.
func (h *eventHub) latestTemp() (metrics.TempRecord, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.lastTemp, h.haveTemp
}

var _ metrics.Collector = (*eventHub)(nil)
