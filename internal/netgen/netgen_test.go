package netgen

import (
	"bytes"
	"os"
	"testing"

	"repro/internal/netlist"
)

func TestProfileCellCounts(t *testing.T) {
	want := map[string]int{"s1": 181, "cse": 156, "ex1": 227, "bw": 158, "s1a": 163, "big529": 529}
	for name, cells := range want {
		p, ok := Profile(name)
		if !ok {
			t.Fatalf("profile %q missing", name)
		}
		if p.TotalCells() != cells {
			t.Errorf("%s: params total %d, want %d", name, p.TotalCells(), cells)
		}
		nl, err := Generate(p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if nl.NumCells() != cells {
			t.Errorf("%s: generated %d cells, want %d", name, nl.NumCells(), cells)
		}
		if err := nl.Validate(); err != nil {
			t.Errorf("%s: invalid: %v", name, err)
		}
	}
}

func TestProfilesList(t *testing.T) {
	for _, name := range Profiles() {
		if _, ok := Profile(name); !ok {
			t.Errorf("Profiles() lists unknown %q", name)
		}
	}
	if _, ok := Profile("nonesuch"); ok {
		t.Error("unknown profile reported present")
	}
}

func TestDeterminism(t *testing.T) {
	p, _ := Profile("s1")
	a, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	var ba, bb bytes.Buffer
	if err := netlist.WriteNet(&ba, a); err != nil {
		t.Fatal(err)
	}
	if err := netlist.WriteNet(&bb, b); err != nil {
		t.Fatal(err)
	}
	if ba.String() != bb.String() {
		t.Error("same params produced different netlists")
	}
}

func TestSeedChangesStructure(t *testing.T) {
	p, _ := Profile("s1")
	a, _ := Generate(p)
	p.Seed++
	b, _ := Generate(p)
	var ba, bb bytes.Buffer
	_ = netlist.WriteNet(&ba, a)
	_ = netlist.WriteNet(&bb, b)
	if ba.String() == bb.String() {
		t.Error("different seeds produced identical netlists")
	}
}

func TestStructurePlausible(t *testing.T) {
	p, _ := Profile("ex1")
	nl, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	s := nl.ComputeStats()
	if s.Inputs != p.Inputs || s.Outputs != p.Outputs || s.SeqCells != p.Seq || s.CombCells != p.Comb {
		t.Errorf("type counts drifted: %+v vs %+v", s, p)
	}
	if s.MaxFanin > 4 {
		t.Errorf("MaxFanin = %d, want <= 4", s.MaxFanin)
	}
	// Mapped-era FSM benchmarks run a handful to a dozen logic levels.
	if s.LogicDepth < 5 || s.LogicDepth > 16 {
		t.Errorf("LogicDepth = %d, outside plausible [5,16]", s.LogicDepth)
	}
	if s.AvgFanout < 0.8 || s.AvgFanout > 4 {
		t.Errorf("AvgFanout = %v, implausible", s.AvgFanout)
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Params{Name: "x", Inputs: 0, Outputs: 1, Comb: 1}); err == nil {
		t.Error("zero inputs accepted")
	}
	if _, err := Generate(Params{Name: "x", Inputs: 1, Outputs: 0, Comb: 1}); err == nil {
		t.Error("zero outputs accepted")
	}
	if _, err := Generate(Params{Name: "x", Inputs: 1, Outputs: 1, Comb: 0}); err == nil {
		t.Error("zero comb cells accepted")
	}
}

func TestSmallCustomDesign(t *testing.T) {
	nl, err := Generate(Params{Name: "mini", Inputs: 3, Outputs: 2, Seq: 1, Comb: 10, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if nl.NumCells() != 16 {
		t.Errorf("cells = %d, want 16", nl.NumCells())
	}
	if _, err := nl.Levels(); err != nil {
		t.Errorf("levelization failed: %v", err)
	}
}

// The golden file pins down the exact output of the generator for the tiny
// profile: any change to generation logic that silently alters every
// benchmark (and with it all calibrated results) must show up here as a
// deliberate golden update.
func TestTinyGolden(t *testing.T) {
	p, _ := Profile("tiny")
	nl, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := netlist.WriteNet(&buf, nl); err != nil {
		t.Fatal(err)
	}
	golden, err := os.ReadFile("testdata/tiny.net.golden")
	if err != nil {
		t.Fatal(err)
	}
	if buf.String() != string(golden) {
		t.Error("generator output changed; update testdata/tiny.net.golden only if the change is intentional")
	}
}
