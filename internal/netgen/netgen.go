// Package netgen generates deterministic synthetic netlists standing in for
// the MCNC benchmarks used in the paper's evaluation (s1, cse, ex1, bw, s1a,
// plus the 529-cell Figure-7 design). The real MCNC designs, technology
// mapped by TI's tools, are not available; these stand-ins match the paper's
// cell counts and era-plausible structure (fanin ≤ 4 logic modules, FSM-like
// input/output/flip-flop fractions, a locality bias that yields realistic
// logic depth). The layout algorithms consume only graph structure, and every
// experiment compares two flows on the same netlist, so relative results are
// preserved (see DESIGN.md §5).
package netgen

import (
	"fmt"
	"math/rand"

	"repro/internal/netlist"
)

// Params controls synthetic netlist generation.
type Params struct {
	Name    string
	Inputs  int
	Outputs int
	Seq     int
	Comb    int

	MaxFanin  int     // logic module fanin limit (default 4)
	Depth     int     // target logic depth in comb levels (default 9)
	Locality  float64 // probability a fanin comes from the immediately previous level (default 0.65)
	CombDelay float64 // intrinsic delay of comb cells in ps (default 3000)
	SeqDelay  float64 // clock-to-out of seq cells in ps (default 3500)
	Seed      int64
}

func (p *Params) setDefaults() {
	if p.MaxFanin <= 1 {
		p.MaxFanin = 4
	}
	if p.Depth <= 0 {
		p.Depth = 9
	}
	if p.Locality <= 0 {
		p.Locality = 0.65
	}
	if p.CombDelay <= 0 {
		p.CombDelay = 3000
	}
	if p.SeqDelay <= 0 {
		p.SeqDelay = 3500
	}
}

// TotalCells returns the cell count the parameters produce.
func (p Params) TotalCells() int { return p.Inputs + p.Outputs + p.Seq + p.Comb }

// Generate builds the synthetic netlist. The same Params always produce the
// same netlist.
func Generate(p Params) (*netlist.Netlist, error) {
	p.setDefaults()
	if p.Inputs < 1 || p.Outputs < 1 || p.Comb < 1 || p.Seq < 0 {
		return nil, fmt.Errorf("netgen: need at least one input, output and comb cell (%+v)", p)
	}
	rng := rand.New(rand.NewSource(p.Seed))
	b := netlist.NewBuilder(p.Name)

	// Nets organized by logic level; level 0 holds the sources (primary
	// inputs and flip-flop outputs). Use counts support fanout balancing.
	uses := map[string]int{}
	var levelNets [][]string
	addNet := func(level int, n string) {
		for len(levelNets) <= level {
			levelNets = append(levelNets, nil)
		}
		levelNets[level] = append(levelNets[level], n)
		uses[n] = 0
	}
	// Tournament pick from a candidate level set, preferring less-used nets
	// to keep fanouts realistic.
	pickFrom := func(nets []string, exclude map[string]bool) string {
		best := ""
		for try := 0; try < 6; try++ {
			c := nets[rng.Intn(len(nets))]
			if exclude[c] {
				continue
			}
			if best == "" || uses[c] < uses[best] {
				best = c
			}
		}
		if best == "" {
			best = nets[rng.Intn(len(nets))] // give up on exclusion
		}
		uses[best]++
		return best
	}

	for i := 0; i < p.Inputs; i++ {
		n := fmt.Sprintf("pi%d", i)
		b.Input(fmt.Sprintf("ipad%d", i), n)
		addNet(0, n)
	}
	// Flip-flop outputs are sources usable by any comb cell; the flop data
	// inputs are connected after the logic exists (feedback through flops is
	// legal and common in FSMs).
	for i := 0; i < p.Seq; i++ {
		addNet(0, fmt.Sprintf("q%d", i))
	}

	// Layered combinational logic: cells are spread over Depth levels; each
	// cell's first fanin comes from the previous level (guaranteeing the
	// level exists), the rest mostly from nearby lower levels.
	perLevel := (p.Comb + p.Depth - 1) / p.Depth
	var combNets []string
	for i := 0; i < p.Comb; i++ {
		level := 1 + i/perLevel
		if level >= len(levelNets)+1 {
			level = len(levelNets)
		}
		fanin := 2 + rng.Intn(p.MaxFanin-1)
		ex := make(map[string]bool, fanin)
		ins := make([]string, 0, fanin)
		first := pickFrom(levelNets[level-1], ex)
		ex[first] = true
		ins = append(ins, first)
		for k := 1; k < fanin; k++ {
			var src []string
			if rng.Float64() < p.Locality {
				src = levelNets[level-1]
			} else {
				src = levelNets[rng.Intn(level)]
			}
			n := pickFrom(src, ex)
			if ex[n] {
				continue // exclusion failed in a tiny level; drop this fanin
			}
			ex[n] = true
			ins = append(ins, n)
		}
		out := fmt.Sprintf("c%d", i)
		b.Comb(fmt.Sprintf("g%d", i), p.CombDelay, out, ins...)
		addNet(level, out)
		combNets = append(combNets, out)
	}
	for i := 0; i < p.Seq; i++ {
		d := combNets[rng.Intn(len(combNets))]
		uses[d]++
		b.Seq(fmt.Sprintf("ff%d", i), p.SeqDelay, fmt.Sprintf("q%d", i), d)
	}
	// Primary outputs tap distinct late logic nets where possible.
	taken := map[string]bool{}
	for i := 0; i < p.Outputs; i++ {
		var n string
		for try := 0; try < 20; try++ {
			n = combNets[len(combNets)-1-rng.Intn(minInt(len(combNets), 3*p.Outputs))]
			if !taken[n] {
				break
			}
		}
		taken[n] = true
		uses[n]++
		b.Output(fmt.Sprintf("opad%d", i), n)
	}
	return b.Build()
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Profile returns the generation parameters for one of the paper's named
// benchmarks. Cell counts match Table 1/2 exactly; I/O and flip-flop splits
// follow the published MCNC FSM benchmark shapes.
func Profile(name string) (Params, bool) {
	p, ok := profiles[name]
	return p, ok
}

// Profiles lists the available benchmark names, the paper's five table
// designs first, then the Figure-7 design and the test-sized extra.
func Profiles() []string {
	return []string{"s1", "cse", "ex1", "bw", "s1a", "big529", "tiny"}
}

var profiles = map[string]Params{
	// Table 1/2 designs: cell counts are the paper's (#cells column).
	"s1":  {Name: "s1", Inputs: 8, Outputs: 6, Seq: 5, Comb: 162, Depth: 9, Seed: 101},    // 181
	"cse": {Name: "cse", Inputs: 7, Outputs: 7, Seq: 4, Comb: 138, Depth: 8, Seed: 102},   // 156
	"ex1": {Name: "ex1", Inputs: 9, Outputs: 19, Seq: 5, Comb: 194, Depth: 10, Seed: 103}, // 227
	"bw":  {Name: "bw", Inputs: 5, Outputs: 28, Seq: 5, Comb: 120, Depth: 7, Seed: 104},   // 158
	"s1a": {Name: "s1a", Inputs: 8, Outputs: 6, Seq: 5, Comb: 144, Depth: 9, Seed: 105},   // 163
	// Figure 7's larger design.
	"big529": {Name: "big529", Inputs: 20, Outputs: 16, Seq: 24, Comb: 469, Depth: 12, Seed: 107}, // 529
	// Not from the paper: a 30-cell design for tests, examples and smoke runs.
	"tiny": {Name: "tiny", Inputs: 4, Outputs: 3, Seq: 2, Comb: 21, Depth: 5, Seed: 100},
}
