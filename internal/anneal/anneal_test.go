package anneal

import (
	"math"
	"math/rand"
	"testing"
)

// tour is a toy TSP on a ring of cities with known optimum: visiting them in
// angular order. A classic sanity problem for an annealer.
type tour struct {
	pts  [][2]float64
	perm []int
	cost float64
	mi   int // last move indices
	mj   int
}

func newTour(n int, seed int64) *tour {
	rng := rand.New(rand.NewSource(seed))
	t := &tour{pts: make([][2]float64, n), perm: rng.Perm(n)}
	for i := range t.pts {
		ang := 2 * math.Pi * float64(i) / float64(n)
		t.pts[i] = [2]float64{math.Cos(ang), math.Sin(ang)}
	}
	t.cost = t.fullCost()
	return t
}

func (t *tour) dist(a, b int) float64 {
	dx := t.pts[a][0] - t.pts[b][0]
	dy := t.pts[a][1] - t.pts[b][1]
	return math.Sqrt(dx*dx + dy*dy)
}

func (t *tour) fullCost() float64 {
	c := 0.0
	for i := range t.perm {
		c += t.dist(t.perm[i], t.perm[(i+1)%len(t.perm)])
	}
	return c
}

func (t *tour) Cost() float64 { return t.cost }

func (t *tour) Propose(rng *rand.Rand) float64 {
	n := len(t.perm)
	t.mi = rng.Intn(n)
	t.mj = rng.Intn(n)
	t.perm[t.mi], t.perm[t.mj] = t.perm[t.mj], t.perm[t.mi]
	nc := t.fullCost()
	d := nc - t.cost
	t.cost = nc
	return d
}

func (t *tour) Accept() {}

func (t *tour) Reject() {
	t.perm[t.mi], t.perm[t.mj] = t.perm[t.mj], t.perm[t.mi]
	t.cost = t.fullCost()
}

func TestAnnealImprovesTour(t *testing.T) {
	tr := newTour(24, 3)
	start := tr.Cost()
	res := Run(tr, Config{Seed: 1, MovesPerTemp: 400, MaxTemps: 200}, nil)
	optimum := 24 * 2 * math.Sin(math.Pi/24) // ring perimeter
	if res.FinalCost > start {
		t.Errorf("annealing made things worse: %v -> %v", start, res.FinalCost)
	}
	if res.FinalCost > 1.35*optimum {
		t.Errorf("final cost %.3f too far from optimum %.3f", res.FinalCost, optimum)
	}
	if res.BestCost > res.FinalCost+1e-9 {
		t.Errorf("best (%v) worse than final (%v)", res.BestCost, res.FinalCost)
	}
}

func TestDeterministicBySeed(t *testing.T) {
	run := func() float64 {
		tr := newTour(16, 7)
		return Run(tr, Config{Seed: 42, MovesPerTemp: 200, MaxTemps: 60}, nil).FinalCost
	}
	if run() != run() {
		t.Error("same seed produced different results")
	}
	tr := newTour(16, 7)
	other := Run(tr, Config{Seed: 43, MovesPerTemp: 200, MaxTemps: 60}, nil).FinalCost
	if other == run() {
		t.Log("different seeds coincided (unlikely but not fatal)")
	}
}

func TestTemperatureMonotoneDecreasing(t *testing.T) {
	tr := newTour(16, 9)
	var temps []float64
	Run(tr, Config{Seed: 5, MovesPerTemp: 150, MaxTemps: 80}, func(s TempStats) {
		temps = append(temps, s.Temp)
	})
	if len(temps) < 5 {
		t.Fatalf("only %d temperature callbacks", len(temps))
	}
	for i := 2; i < len(temps); i++ { // step 0 and 1 share T0
		if temps[i] >= temps[i-1] {
			t.Fatalf("temperature rose at step %d: %v -> %v", i, temps[i-1], temps[i])
		}
	}
}

func TestAcceptanceCoolsDown(t *testing.T) {
	tr := newTour(20, 11)
	var first, last float64
	n := 0
	Run(tr, Config{Seed: 5, MovesPerTemp: 300, MaxTemps: 150}, func(s TempStats) {
		if s.Step == 1 {
			first = s.AcceptRatio()
		}
		last = s.AcceptRatio()
		n++
	})
	if n < 10 {
		t.Fatalf("too few temperatures: %d", n)
	}
	if first < 0.5 {
		t.Errorf("initial acceptance %.2f, want hot start", first)
	}
	if last > 0.3 {
		t.Errorf("final acceptance %.2f, want cold finish", last)
	}
}

func TestStopsWhenFrozen(t *testing.T) {
	tr := newTour(10, 13)
	res := Run(tr, Config{Seed: 2, MovesPerTemp: 150, MaxTemps: 10000}, nil)
	if res.Temps >= 10000 {
		t.Error("never froze")
	}
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	c.setDefaults()
	if c.MovesPerTemp <= 0 || c.InitAccept <= 0 || c.InitAccept >= 1 || c.Lambda <= 0 ||
		c.MaxTemps <= 0 || c.FrozenTemps <= 0 || c.AcceptFloor <= 0 || c.MinDecrement <= 0 {
		t.Errorf("defaults not applied: %+v", c)
	}
}

func TestStatsStd(t *testing.T) {
	var s stats
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.add(v)
	}
	// Sample std of this classic set is ~2.138.
	if math.Abs(s.std()-2.13808993) > 1e-6 {
		t.Errorf("std = %v", s.std())
	}
	if s.min != 2 {
		t.Errorf("min = %v", s.min)
	}
}
