// Parallel portfolio annealing: K independent chains advance concurrently on
// a worker pool and exchange state only at synchronization barriers, where
// losing chains restart from a clone of the current champion (portfolio +
// elite-migration). Because chains interact exclusively at the barriers and
// the champion tiebreak is (cost, chain index), the outcome for a fixed
// (seed, K, SyncTemps) is deterministic regardless of worker count or
// goroutine scheduling.
package anneal

import (
	"runtime"
	"sync"
	"time"
)

// Forkable is a Problem whose full state can be deep-copied, enabling
// parallel-chain annealing. CloneProblem must return an independent copy:
// moves applied to the clone must never affect the original (and vice versa),
// and the returned Problem must itself be Forkable so champions can seed
// further restarts.
type Forkable interface {
	Problem
	CloneProblem() Problem
}

// ParallelConfig tunes the portfolio engine. The embedded Config applies to
// every chain; each chain's seed is derived deterministically from Seed and
// the chain index (chain 0 uses Seed itself, so a 1-chain run is bit-identical
// to Run).
type ParallelConfig struct {
	Config

	// Chains is the number of independent annealing chains K (default 1).
	Chains int

	// Workers caps how many chains are stepped concurrently (default
	// runtime.GOMAXPROCS(0), at most Chains). It affects scheduling only,
	// never results.
	Workers int

	// SyncTemps is the number of temperature steps each chain runs between
	// synchronization barriers (default 8).
	SyncTemps int
}

// ParallelResult reports a portfolio run.
type ParallelResult struct {
	Result // the champion chain's annealing result

	// Champion is the index of the winning chain (ties broken toward the
	// lowest index).
	Champion int

	// Restarts counts loser restarts performed at synchronization barriers.
	Restarts int

	// Best is the champion chain's final problem state. With Chains <= 1 it
	// is the problem passed to RunParallel; otherwise it may be a clone.
	Best Problem

	// PerChain holds every chain's individual result, indexed by chain.
	PerChain []Result

	// ChampionSwitches counts barriers at which the champion index changed
	// (chain 0 is the incumbent before the first barrier).
	ChampionSwitches int

	// Wall is the wall clock spent stepping each chain (reporting only:
	// scheduling never affects results), indexed by chain.
	Wall []time.Duration

	// Adoptions counts, per chain, how many times the chain restarted from a
	// clone of the champion at a synchronization barrier.
	Adoptions []int
}

// DeriveSeed returns the deterministic seed for the given chain index:
// chain 0 keeps the base seed, later chains stride by a 64-bit golden-ratio
// constant so streams are decorrelated but reproducible.
func DeriveSeed(base int64, chain int) int64 {
	const stride = int64(-7046029254386353131) // 0x9E3779B97F4A7C15 as int64
	return base + int64(chain)*stride
}

// RunParallel anneals K chains of the problem and returns the champion. The
// first chain anneals p itself; the others anneal clones. onTemp, if non-nil,
// is called after every temperature of every chain with the chain index and
// that chain's problem state; calls for one chain arrive in order, but calls
// for different chains may be concurrent, so the callback must only touch the
// chain's own state.
func RunParallel(p Forkable, cfg ParallelConfig, onTemp func(chain int, p Problem, s TempStats)) ParallelResult {
	k := cfg.Chains
	if k < 1 {
		k = 1
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > k {
		workers = k
	}
	syncTemps := cfg.SyncTemps
	if syncTemps <= 0 {
		syncTemps = 8
	}

	chains := make([]*Chain, k)
	for i := 0; i < k; i++ {
		prob := Problem(p)
		if i > 0 {
			prob = p.CloneProblem()
		}
		ccfg := cfg.Config
		ccfg.Seed = DeriveSeed(cfg.Seed, i)
		var hook func(TempStats)
		if onTemp != nil {
			i := i
			hook = func(s TempStats) { onTemp(i, chains[i].p, s) }
		}
		chains[i] = NewChain(prob, ccfg, hook)
	}

	restarts := 0
	switches := 0
	incumbent := 0
	for anyLive(chains) {
		// Cancellation is polled at the synchronization barrier (and by every
		// chain at its own temperature boundaries, so a cancel mid-round stops
		// the chains before the barrier is even reached).
		if cancelled(cfg.Cancel) {
			break
		}
		runRound(chains, workers, syncTemps)

		// Championship and elite migration happen serially between rounds, so
		// they are scheduling-independent.
		champ := champion(chains)
		if champ != incumbent {
			switches++
			incumbent = champ
		}
		champCost := chains[champ].p.Cost()
		cf, forkable := chains[champ].p.(Forkable)
		if !forkable {
			continue
		}
		for i, c := range chains {
			if i == champ || c.step >= c.cfg.MaxTemps {
				continue
			}
			if c.p.Cost() > champCost {
				c.adopt(cf.CloneProblem())
				restarts++
			}
		}
	}

	champ := champion(chains)
	if champ != incumbent {
		switches++
	}
	res := ParallelResult{
		Result:           chains[champ].Result(),
		Champion:         champ,
		Restarts:         restarts,
		Best:             chains[champ].p,
		PerChain:         make([]Result, k),
		ChampionSwitches: switches,
		Wall:             make([]time.Duration, k),
		Adoptions:        make([]int, k),
	}
	for i := range chains {
		res.PerChain[i] = chains[i].Result()
		res.Wall[i] = chains[i].wall
		res.Adoptions[i] = chains[i].adoptions
		if chains[i].stopped {
			res.Result.Cancelled = true
		}
	}
	if cancelled(cfg.Cancel) {
		res.Result.Cancelled = true
	}
	return res
}

// anyLive reports whether at least one chain still has work.
func anyLive(chains []*Chain) bool {
	for _, c := range chains {
		if !c.Done() {
			return true
		}
	}
	return false
}

// champion returns the index of the lowest-cost chain; ties go to the lowest
// index, making the selection deterministic.
func champion(chains []*Chain) int {
	best := 0
	bestCost := chains[0].p.Cost()
	for i := 1; i < len(chains); i++ {
		if c := chains[i].p.Cost(); c < bestCost {
			best, bestCost = i, c
		}
	}
	return best
}

// runRound advances every live chain by up to syncTemps temperature steps on
// a pool of workers. Chains are fully independent between barriers, so the
// assignment of chains to workers cannot influence any chain's trajectory.
func runRound(chains []*Chain, workers, syncTemps int) {
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				c := chains[i]
				for t := 0; t < syncTemps && c.Step(); t++ {
				}
			}
		}()
	}
	for i := range chains {
		if !chains[i].Done() {
			idx <- i
		}
	}
	close(idx)
	wg.Wait()
}
