package anneal

import (
	"math/rand"
	"runtime"
	"testing"
)

// forkableTour wraps tour with deep-copy support so it can drive the
// portfolio engine in tests.
type forkableTour struct {
	tour
}

func newForkableTour(n int, seed int64) *forkableTour {
	return &forkableTour{tour: *newTour(n, seed)}
}

func (t *forkableTour) CloneProblem() Problem {
	c := &forkableTour{tour: t.tour}
	c.pts = append([][2]float64(nil), t.pts...)
	c.perm = append([]int(nil), t.perm...)
	return c
}

// tracingTour records its cost after every engine decision, so two runs can
// be compared move by move rather than only at the end.
type tracingTour struct {
	forkableTour
	trace []float64
}

func (t *tracingTour) Accept() {
	t.forkableTour.Accept()
	t.trace = append(t.trace, t.cost)
}

func (t *tracingTour) Reject() {
	t.forkableTour.Reject()
	t.trace = append(t.trace, t.cost)
}

// Driving a Chain step by step must be bit-identical to Run: same move
// sequence, same rng stream, same result fields.
func TestChainMatchesRun(t *testing.T) {
	cfg := Config{Seed: 21, MovesPerTemp: 150, MaxTemps: 50}

	a := &tracingTour{forkableTour: *newForkableTour(18, 5)}
	ra := Run(a, cfg, nil)

	b := &tracingTour{forkableTour: *newForkableTour(18, 5)}
	c := NewChain(b, cfg, nil)
	steps := 0
	for c.Step() {
		steps++
	}
	rb := c.Result()

	if ra != rb {
		t.Errorf("results diverged: Run=%+v Chain=%+v", ra, rb)
	}
	if len(a.trace) != len(b.trace) {
		t.Fatalf("move counts diverged: %d vs %d", len(a.trace), len(b.trace))
	}
	for i := range a.trace {
		if a.trace[i] != b.trace[i] {
			t.Fatalf("cost trajectory diverged at move %d: %v vs %v", i, a.trace[i], b.trace[i])
		}
	}
	// Warmup plus rb.Temps temperature steps.
	if steps != rb.Temps+1 {
		t.Errorf("Step called %d times for %d temps", steps, rb.Temps)
	}
	if !c.Done() || c.Step() {
		t.Error("finished chain must stay done")
	}
}

// A 1-chain portfolio is exactly the serial engine on the same problem
// value: chain 0 keeps the base seed and the problem is annealed in place.
func TestRunParallelSingleChainMatchesRun(t *testing.T) {
	cfg := Config{Seed: 42, MovesPerTemp: 200, MaxTemps: 60}

	serial := newForkableTour(16, 7)
	rs := Run(serial, cfg, nil)

	par := newForkableTour(16, 7)
	rp := RunParallel(par, ParallelConfig{Config: cfg, Chains: 1}, nil)

	if rs != rp.Result {
		t.Errorf("1-chain portfolio diverged from serial: %+v vs %+v", rs, rp.Result)
	}
	if rp.Champion != 0 || rp.Restarts != 0 {
		t.Errorf("1-chain run reported champion %d, %d restarts", rp.Champion, rp.Restarts)
	}
	if rp.Best != Problem(par) {
		t.Error("1-chain run must anneal the given problem in place")
	}
	if len(rp.PerChain) != 1 || rp.PerChain[0] != rs {
		t.Errorf("PerChain = %+v", rp.PerChain)
	}
}

// The worker count (and GOMAXPROCS) is pure scheduling: a K-chain run must
// produce identical results for any worker count.
func TestRunParallelWorkerCountInvariant(t *testing.T) {
	cfg := ParallelConfig{
		Config:    Config{Seed: 11, MovesPerTemp: 120, MaxTemps: 40},
		Chains:    5,
		SyncTemps: 4,
	}
	run := func(workers, maxprocs int) ParallelResult {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(maxprocs))
		c := cfg
		c.Workers = workers
		return RunParallel(newForkableTour(20, 3), c, nil)
	}
	ref := run(1, 1)
	for _, w := range []int{2, 5, 16} {
		got := run(w, 4)
		if got.Result != ref.Result || got.Champion != ref.Champion || got.Restarts != ref.Restarts {
			t.Errorf("workers=%d diverged: %+v vs %+v (champion %d vs %d, restarts %d vs %d)",
				w, got.Result, ref.Result, got.Champion, ref.Champion, got.Restarts, ref.Restarts)
		}
		for i := range ref.PerChain {
			if got.PerChain[i] != ref.PerChain[i] {
				t.Errorf("workers=%d chain %d diverged: %+v vs %+v", w, i, got.PerChain[i], ref.PerChain[i])
			}
		}
	}
}

// Every onTemp callback must arrive with the right chain index and in
// per-chain step order, and the champion must hold the lowest final cost.
func TestRunParallelCallbacksAndChampion(t *testing.T) {
	cfg := ParallelConfig{
		Config:    Config{Seed: 9, MovesPerTemp: 100, MaxTemps: 30},
		Chains:    3,
		Workers:   2,
		SyncTemps: 5,
	}
	lastStep := make([]int, cfg.Chains)
	for i := range lastStep {
		lastStep[i] = -1
	}
	var mu = make(chan struct{}, 1)
	mu <- struct{}{}
	res := RunParallel(newForkableTour(14, 2), cfg, func(chain int, p Problem, s TempStats) {
		<-mu
		defer func() { mu <- struct{}{} }()
		if chain < 0 || chain >= cfg.Chains {
			t.Errorf("bad chain index %d", chain)
		}
		if p == nil {
			t.Error("nil problem in callback")
		}
		if s.Step <= lastStep[chain] {
			t.Errorf("chain %d steps out of order: %d after %d", chain, s.Step, lastStep[chain])
		}
		lastStep[chain] = s.Step
	})
	for i, r := range res.PerChain {
		if res.Result.FinalCost > r.FinalCost {
			t.Errorf("champion (%v) worse than chain %d (%v)", res.Result.FinalCost, i, r.FinalCost)
		}
	}
	if res.Champion < 0 || res.Champion >= cfg.Chains {
		t.Errorf("champion index %d out of range", res.Champion)
	}
}

// Elite migration: with aggressive syncing on a multimodal-enough toy, losers
// restart from the champion; the mechanism must fire and never worsen the
// champion's own trajectory cost.
func TestRunParallelMigrationRestarts(t *testing.T) {
	cfg := ParallelConfig{
		Config:    Config{Seed: 30, MovesPerTemp: 80, MaxTemps: 60},
		Chains:    4,
		SyncTemps: 2,
	}
	res := RunParallel(newForkableTour(22, 8), cfg, nil)
	if res.Restarts == 0 {
		t.Error("no elite-migration restarts with 4 chains and SyncTemps=2")
	}
	if res.BestCost > res.FinalCost+1e-9 {
		t.Errorf("best (%v) worse than final (%v)", res.BestCost, res.FinalCost)
	}
}

func TestDeriveSeed(t *testing.T) {
	if DeriveSeed(77, 0) != 77 {
		t.Error("chain 0 must keep the base seed")
	}
	seen := map[int64]int{}
	for c := 0; c < 64; c++ {
		s := DeriveSeed(1, c)
		if prev, dup := seen[s]; dup {
			t.Fatalf("chains %d and %d collide on seed %d", prev, c, s)
		}
		seen[s] = c
	}
	// Streams from adjacent chains must actually decorrelate.
	r0 := rand.New(rand.NewSource(DeriveSeed(1, 0)))
	r1 := rand.New(rand.NewSource(DeriveSeed(1, 1)))
	same := 0
	for i := 0; i < 100; i++ {
		if r0.Intn(1000) == r1.Intn(1000) {
			same++
		}
	}
	if same > 10 {
		t.Errorf("adjacent chain streams agree on %d/100 draws", same)
	}
}

// adopt must revive a frozen chain only while temperature budget remains.
func TestChainAdoptRevives(t *testing.T) {
	cfg := Config{Seed: 4, MovesPerTemp: 60, MaxTemps: 2000}
	c := NewChain(newForkableTour(8, 1), cfg, nil)
	for c.Step() {
	}
	if !c.Done() {
		t.Fatal("chain did not finish")
	}
	if c.Temps() >= 2000 {
		t.Fatal("chain never froze; cannot test revival")
	}
	fresh := newForkableTour(8, 99)
	c.adopt(fresh)
	if c.Done() {
		t.Error("adopt with remaining budget must revive the chain")
	}
	if c.Problem() != Problem(fresh) {
		t.Error("adopt did not install the new problem")
	}
}
