// Package anneal provides the simulated-annealing engine shared by the
// baseline placer and the simultaneous place-and-route optimizer. The cooling
// schedule is adaptive in the style of Huang, Romeo and
// Sangiovanni-Vincentelli (ICCAD 1986, the paper's reference [4]): the
// starting temperature is derived from the cost spread of an initial random
// walk, each temperature decrement is scaled by the cost standard deviation
// observed at that temperature, and termination is detected from acceptance
// ratio and best-cost stagnation rather than a fixed temperature count.
package anneal

import (
	"math"
	"math/rand"
	"time"
)

// Problem is a state that the engine can perturb. Propose applies a tentative
// move and returns its cost delta; the engine then calls exactly one of
// Accept or Reject.
type Problem interface {
	Cost() float64
	Propose(rng *rand.Rand) float64
	Accept()
	Reject()
}

// Config tunes the engine. Zero values select the documented defaults.
type Config struct {
	Seed         int64
	MovesPerTemp int     // moves attempted per temperature (size to the problem)
	InitAccept   float64 // target acceptance probability at T0 (default 0.93)
	Lambda       float64 // cooling aggressiveness λ in T' = T·exp(-λT/σ) (default 0.7)
	MinDecrement float64 // lower bound on the per-temperature cooling factor (default 0.5)
	MaxTemps     int     // hard cap on temperature steps (default 400)
	FrozenTemps  int     // stop after this many stagnant, cold temperatures (default 4)
	AcceptFloor  float64 // acceptance ratio below which a temperature counts as cold (default 0.02)

	// Cancel, when non-nil, requests early termination: the chain polls it at
	// temperature boundaries only (never inside the move loop) and stops
	// before the next temperature once the channel is closed. The state left
	// behind is the consistent state of the last completed temperature, and
	// Result.Cancelled reports the cut. A nil channel is the no-op default:
	// the boundary poll is a nil-channel select, the move path is untouched,
	// and no RNG draw is added, so results are bit-identical to a build
	// without the hook.
	Cancel <-chan struct{}
}

// cancelled reports whether the cancel channel (possibly nil) has fired.
func cancelled(ch <-chan struct{}) bool {
	if ch == nil {
		return false
	}
	select {
	case <-ch:
		return true
	default:
		return false
	}
}

func (c *Config) setDefaults() {
	if c.MovesPerTemp <= 0 {
		c.MovesPerTemp = 1000
	}
	if c.InitAccept <= 0 || c.InitAccept >= 1 {
		c.InitAccept = 0.93
	}
	if c.Lambda <= 0 {
		c.Lambda = 0.7
	}
	if c.MinDecrement <= 0 || c.MinDecrement >= 1 {
		c.MinDecrement = 0.5
	}
	if c.MaxTemps <= 0 {
		c.MaxTemps = 400
	}
	if c.FrozenTemps <= 0 {
		c.FrozenTemps = 4
	}
	if c.AcceptFloor <= 0 {
		c.AcceptFloor = 0.02
	}
}

// TempStats summarizes one temperature step; it drives the Figure-6 style
// dynamics instrumentation.
type TempStats struct {
	Step     int
	Temp     float64
	Moves    int
	Accepted int
	Cost     float64       // cost at end of the temperature
	BestCost float64       // best cost seen so far
	StdCost  float64       // cost standard deviation within the temperature
	Elapsed  time.Duration // wall clock spent in this temperature (reporting only)
}

// AcceptRatio returns the fraction of proposed moves accepted.
func (s TempStats) AcceptRatio() float64 {
	if s.Moves == 0 {
		return 0
	}
	return float64(s.Accepted) / float64(s.Moves)
}

// Result reports a finished run.
type Result struct {
	FinalCost  float64
	BestCost   float64
	Temps      int
	TotalMoves int
	Accepted   int
	Cancelled  bool // run was cut short by Config.Cancel
}

// Run anneals the problem to completion. onTemp, if non-nil, is called after
// every temperature (including the warmup walk, reported as step 0 with the
// starting temperature).
func Run(p Problem, cfg Config, onTemp func(TempStats)) Result {
	c := NewChain(p, cfg, onTemp)
	for c.Step() {
	}
	return c.Result()
}

// Chain is a resumable annealing run: the same loop Run executes, broken into
// explicit temperature steps so that several chains can be advanced in
// lockstep (the parallel portfolio engine synchronizes chains at temperature
// boundaries). Driving a Chain with Step until Done is bit-identical to Run.
type Chain struct {
	p      Problem
	cfg    Config
	rng    *rand.Rand
	onTemp func(TempStats)

	started   bool
	done      bool
	stopped   bool // terminated by Config.Cancel rather than freeze/budget
	temp      float64
	best      float64
	frozen    int
	step      int
	res       Result
	wall      time.Duration // wall clock spent in Step (reporting only)
	adoptions int           // times this chain restarted from a champion
}

// NewChain prepares a chain; no moves are made until the first Step.
func NewChain(p Problem, cfg Config, onTemp func(TempStats)) *Chain {
	cfg.setDefaults()
	return &Chain{p: p, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed)), onTemp: onTemp}
}

// Problem returns the chain's current problem state.
func (c *Chain) Problem() Problem { return c.p }

// Done reports whether the chain has terminated (frozen or out of
// temperature budget).
func (c *Chain) Done() bool { return c.done }

// Temps returns the number of completed temperature steps (excluding warmup).
func (c *Chain) Temps() int { return c.step }

// Wall returns the wall clock spent stepping this chain so far. It is
// reporting-only and never influences the chain's trajectory.
func (c *Chain) Wall() time.Duration { return c.wall }

// Adoptions returns how many times the chain restarted from a champion's
// state at a synchronization barrier.
func (c *Chain) Adoptions() int { return c.adoptions }

// Result reports the chain's run so far.
func (c *Chain) Result() Result {
	r := c.res
	r.FinalCost = c.p.Cost()
	r.BestCost = c.best
	r.Cancelled = c.stopped
	return r
}

// Cancelled reports whether the chain was terminated by Config.Cancel.
func (c *Chain) Cancelled() bool { return c.stopped }

// Step advances the chain by one unit — the warmup walk on the first call,
// one full temperature afterwards — and reports whether work was done. It
// returns false once the chain is finished.
func (c *Chain) Step() bool {
	if c.done {
		return false
	}
	if cancelled(c.cfg.Cancel) {
		c.done, c.stopped = true, true
		return false
	}
	start := time.Now()
	defer func() { c.wall += time.Since(start) }()
	if !c.started {
		c.warmup(start)
		return true
	}
	c.step++
	var st stats
	accepted := 0
	bestBefore := c.best
	for i := 0; i < c.cfg.MovesPerTemp; i++ {
		d := c.p.Propose(c.rng)
		if d <= 0 || c.rng.Float64() < math.Exp(-d/c.temp) {
			c.p.Accept()
			accepted++
		} else {
			c.p.Reject()
		}
		cost := c.p.Cost()
		st.add(cost)
		if cost < c.best {
			c.best = cost
		}
	}
	c.res.TotalMoves += c.cfg.MovesPerTemp
	c.res.Accepted += accepted
	c.res.Temps = c.step
	ratio := float64(accepted) / float64(c.cfg.MovesPerTemp)
	improved := c.best < bestBefore
	if c.onTemp != nil {
		c.onTemp(TempStats{Step: c.step, Temp: c.temp, Moves: c.cfg.MovesPerTemp, Accepted: accepted,
			Cost: c.p.Cost(), BestCost: c.best, StdCost: st.std(), Elapsed: time.Since(start)})
	}
	// A temperature is stagnant when it neither improved the best nor
	// shows real cost movement: acceptance collapsed, or all accepted
	// moves were zero-delta plateau wandering.
	if !improved && (ratio < c.cfg.AcceptFloor || st.std() == 0) {
		c.frozen++
		if c.frozen >= c.cfg.FrozenTemps {
			c.done = true
			return true
		}
	} else {
		c.frozen = 0
	}
	// Huang et al. adaptive decrement, bounded to avoid quenching.
	dec := math.Exp(-c.cfg.Lambda * c.temp / math.Max(st.std(), 1e-9))
	if dec < c.cfg.MinDecrement {
		dec = c.cfg.MinDecrement
	}
	if dec > 0.995 {
		dec = 0.995
	}
	c.temp *= dec
	if c.step >= c.cfg.MaxTemps {
		c.done = true
	}
	return true
}

// warmup is the initial random walk: accept everything, measure the cost
// spread, derive the starting temperature. start is when the enclosing Step
// began, for the reporting-only Elapsed field.
func (c *Chain) warmup(start time.Time) {
	var warm stats
	for i := 0; i < c.cfg.MovesPerTemp; i++ {
		c.p.Propose(c.rng)
		c.p.Accept()
		warm.add(c.p.Cost())
	}
	sigma := warm.std()
	if sigma <= 0 {
		sigma = math.Max(1, math.Abs(c.p.Cost())*0.05)
	}
	c.temp = sigma / -math.Log(c.cfg.InitAccept)
	c.best = c.p.Cost()
	c.res = Result{TotalMoves: c.cfg.MovesPerTemp, Accepted: c.cfg.MovesPerTemp}
	if c.onTemp != nil {
		c.onTemp(TempStats{Step: 0, Temp: c.temp, Moves: c.cfg.MovesPerTemp, Accepted: c.cfg.MovesPerTemp,
			Cost: c.p.Cost(), BestCost: c.best, StdCost: sigma, Elapsed: time.Since(start)})
	}
	c.started = true
}

// adopt replaces the chain's problem state (elite migration at a
// synchronization barrier): the chain keeps its own rng stream, temperature
// and step budget, resets its stagnation counter, and resumes if it had
// frozen with budget remaining.
func (c *Chain) adopt(p Problem) {
	c.p = p
	if cost := p.Cost(); cost < c.best {
		c.best = cost
	}
	c.adoptions++
	c.frozen = 0
	c.done = c.step >= c.cfg.MaxTemps
}

// stats accumulates mean/std/min online.
type stats struct {
	n          int
	mean, m2   float64
	min        float64
	haveSample bool
}

func (s *stats) add(x float64) {
	if !s.haveSample || x < s.min {
		s.min = x
		s.haveSample = true
	}
	s.n++
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

func (s *stats) std() float64 {
	if s.n < 2 {
		return 0
	}
	return math.Sqrt(s.m2 / float64(s.n-1))
}
