// Package anneal provides the simulated-annealing engine shared by the
// baseline placer and the simultaneous place-and-route optimizer. The cooling
// schedule is adaptive in the style of Huang, Romeo and
// Sangiovanni-Vincentelli (ICCAD 1986, the paper's reference [4]): the
// starting temperature is derived from the cost spread of an initial random
// walk, each temperature decrement is scaled by the cost standard deviation
// observed at that temperature, and termination is detected from acceptance
// ratio and best-cost stagnation rather than a fixed temperature count.
package anneal

import (
	"math"
	"math/rand"
)

// Problem is a state that the engine can perturb. Propose applies a tentative
// move and returns its cost delta; the engine then calls exactly one of
// Accept or Reject.
type Problem interface {
	Cost() float64
	Propose(rng *rand.Rand) float64
	Accept()
	Reject()
}

// Config tunes the engine. Zero values select the documented defaults.
type Config struct {
	Seed         int64
	MovesPerTemp int     // moves attempted per temperature (size to the problem)
	InitAccept   float64 // target acceptance probability at T0 (default 0.93)
	Lambda       float64 // cooling aggressiveness λ in T' = T·exp(-λT/σ) (default 0.7)
	MinDecrement float64 // lower bound on the per-temperature cooling factor (default 0.5)
	MaxTemps     int     // hard cap on temperature steps (default 400)
	FrozenTemps  int     // stop after this many stagnant, cold temperatures (default 4)
	AcceptFloor  float64 // acceptance ratio below which a temperature counts as cold (default 0.02)
}

func (c *Config) setDefaults() {
	if c.MovesPerTemp <= 0 {
		c.MovesPerTemp = 1000
	}
	if c.InitAccept <= 0 || c.InitAccept >= 1 {
		c.InitAccept = 0.93
	}
	if c.Lambda <= 0 {
		c.Lambda = 0.7
	}
	if c.MinDecrement <= 0 || c.MinDecrement >= 1 {
		c.MinDecrement = 0.5
	}
	if c.MaxTemps <= 0 {
		c.MaxTemps = 400
	}
	if c.FrozenTemps <= 0 {
		c.FrozenTemps = 4
	}
	if c.AcceptFloor <= 0 {
		c.AcceptFloor = 0.02
	}
}

// TempStats summarizes one temperature step; it drives the Figure-6 style
// dynamics instrumentation.
type TempStats struct {
	Step     int
	Temp     float64
	Moves    int
	Accepted int
	Cost     float64 // cost at end of the temperature
	BestCost float64 // best cost seen so far
	StdCost  float64 // cost standard deviation within the temperature
}

// AcceptRatio returns the fraction of proposed moves accepted.
func (s TempStats) AcceptRatio() float64 {
	if s.Moves == 0 {
		return 0
	}
	return float64(s.Accepted) / float64(s.Moves)
}

// Result reports a finished run.
type Result struct {
	FinalCost  float64
	BestCost   float64
	Temps      int
	TotalMoves int
	Accepted   int
}

// Run anneals the problem. onTemp, if non-nil, is called after every
// temperature (including the warmup walk, reported as step 0 with the
// starting temperature).
func Run(p Problem, cfg Config, onTemp func(TempStats)) Result {
	cfg.setDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Warmup random walk: accept everything, measure the cost spread.
	var warm stats
	for i := 0; i < cfg.MovesPerTemp; i++ {
		p.Propose(rng)
		p.Accept()
		warm.add(p.Cost())
	}
	sigma := warm.std()
	if sigma <= 0 {
		sigma = math.Max(1, math.Abs(p.Cost())*0.05)
	}
	temp := sigma / -math.Log(cfg.InitAccept)
	best := p.Cost()
	res := Result{TotalMoves: cfg.MovesPerTemp, Accepted: cfg.MovesPerTemp}
	if onTemp != nil {
		onTemp(TempStats{Step: 0, Temp: temp, Moves: cfg.MovesPerTemp, Accepted: cfg.MovesPerTemp,
			Cost: p.Cost(), BestCost: best, StdCost: sigma})
	}

	frozen := 0
	for step := 1; step <= cfg.MaxTemps; step++ {
		var st stats
		accepted := 0
		bestBefore := best
		for i := 0; i < cfg.MovesPerTemp; i++ {
			d := p.Propose(rng)
			if d <= 0 || rng.Float64() < math.Exp(-d/temp) {
				p.Accept()
				accepted++
			} else {
				p.Reject()
			}
			c := p.Cost()
			st.add(c)
			if c < best {
				best = c
			}
		}
		res.TotalMoves += cfg.MovesPerTemp
		res.Accepted += accepted
		res.Temps = step
		ratio := float64(accepted) / float64(cfg.MovesPerTemp)
		improved := best < bestBefore
		if onTemp != nil {
			onTemp(TempStats{Step: step, Temp: temp, Moves: cfg.MovesPerTemp, Accepted: accepted,
				Cost: p.Cost(), BestCost: best, StdCost: st.std()})
		}
		// A temperature is stagnant when it neither improved the best nor
		// shows real cost movement: acceptance collapsed, or all accepted
		// moves were zero-delta plateau wandering.
		if !improved && (ratio < cfg.AcceptFloor || st.std() == 0) {
			frozen++
			if frozen >= cfg.FrozenTemps {
				break
			}
		} else {
			frozen = 0
		}
		// Huang et al. adaptive decrement, bounded to avoid quenching.
		dec := math.Exp(-cfg.Lambda * temp / math.Max(st.std(), 1e-9))
		if dec < cfg.MinDecrement {
			dec = cfg.MinDecrement
		}
		if dec > 0.995 {
			dec = 0.995
		}
		temp *= dec
	}
	res.FinalCost = p.Cost()
	res.BestCost = best
	return res
}

// stats accumulates mean/std/min online.
type stats struct {
	n          int
	mean, m2   float64
	min        float64
	haveSample bool
}

func (s *stats) add(x float64) {
	if !s.haveSample || x < s.min {
		s.min = x
		s.haveSample = true
	}
	s.n++
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

func (s *stats) std() float64 {
	if s.n < 2 {
		return 0
	}
	return math.Sqrt(s.m2 / float64(s.n-1))
}
