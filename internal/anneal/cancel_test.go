package anneal

import (
	"testing"
	"time"
)

// TestCancelUnsetIsFree runs the same seed with Cancel nil and with an open
// (never-fired) channel and requires bit-identical trajectories: the hook must
// not consume RNG draws or change any decision.
func TestCancelUnsetIsFree(t *testing.T) {
	run := func(cancel <-chan struct{}) Result {
		tr := newTour(16, 7)
		return Run(tr, Config{Seed: 42, MovesPerTemp: 200, MaxTemps: 60, Cancel: cancel}, nil)
	}
	plain := run(nil)
	open := run(make(chan struct{}))
	if plain != open {
		t.Errorf("open cancel channel changed the run: %+v vs %+v", plain, open)
	}
	if plain.Cancelled || open.Cancelled {
		t.Error("uncancelled run reported Cancelled")
	}
}

// TestCancelStopsAtTemperatureBoundary closes the channel mid-run from the
// temperature callback and checks the chain stops before the next temperature
// with the flag set.
func TestCancelStopsAtTemperatureBoundary(t *testing.T) {
	cancel := make(chan struct{})
	tr := newTour(16, 3)
	steps := 0
	res := Run(tr, Config{Seed: 1, MovesPerTemp: 200, MaxTemps: 500, Cancel: cancel}, func(s TempStats) {
		steps++
		if s.Step == 5 {
			close(cancel)
		}
	})
	if !res.Cancelled {
		t.Error("Result.Cancelled not set")
	}
	if res.Temps != 5 {
		t.Errorf("stopped after %d temps, want exactly 5 (the boundary after the close)", res.Temps)
	}
	if steps != 6 { // warmup + 5 temperatures
		t.Errorf("%d temperature callbacks, want 6", steps)
	}
}

// TestCancelPreCancelledRunsNothing starts with the channel already closed:
// the chain must not even run the warmup walk.
func TestCancelPreCancelledRunsNothing(t *testing.T) {
	cancel := make(chan struct{})
	close(cancel)
	tr := newTour(16, 3)
	start := tr.Cost()
	res := Run(tr, Config{Seed: 1, MovesPerTemp: 200, MaxTemps: 500, Cancel: cancel}, nil)
	if !res.Cancelled {
		t.Error("Result.Cancelled not set")
	}
	if res.TotalMoves != 0 || res.Temps != 0 {
		t.Errorf("pre-cancelled run did work: %d moves, %d temps", res.TotalMoves, res.Temps)
	}
	if tr.Cost() != start {
		t.Errorf("pre-cancelled run perturbed the problem: cost %v -> %v", start, tr.Cost())
	}
}

// TestCancelParallelStopsAllChains cancels a portfolio run mid-flight and
// checks every chain stops promptly and the result is flagged.
func TestCancelParallelStopsAllChains(t *testing.T) {
	cancel := make(chan struct{})
	done := make(chan ParallelResult, 1)
	go func() {
		tr := newForkableTour(24, 5)
		done <- RunParallel(tr, ParallelConfig{
			Config: Config{Seed: 9, MovesPerTemp: 400, MaxTemps: 100000, FrozenTemps: 100000, Cancel: cancel},
			Chains: 3, Workers: 2, SyncTemps: 4,
		}, nil)
	}()
	time.Sleep(20 * time.Millisecond)
	close(cancel)
	select {
	case res := <-done:
		if !res.Cancelled {
			t.Error("ParallelResult not flagged Cancelled")
		}
		if res.Result.Temps >= 100000 {
			t.Error("champion chain ran to the temperature cap despite cancel")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("parallel run did not stop within 10s of cancellation")
	}
}

// TestCancelParallelUnsetMatchesBaseline pins that threading an open cancel
// channel through the portfolio engine leaves the deterministic outcome
// untouched.
func TestCancelParallelUnsetMatchesBaseline(t *testing.T) {
	run := func(cancel <-chan struct{}) ParallelResult {
		tr := newForkableTour(16, 7)
		return RunParallel(tr, ParallelConfig{
			Config: Config{Seed: 21, MovesPerTemp: 150, MaxTemps: 40, Cancel: cancel},
			Chains: 3, Workers: 2, SyncTemps: 4,
		}, nil)
	}
	a, b := run(nil), run(make(chan struct{}))
	if a.Result != b.Result || a.Champion != b.Champion || a.Restarts != b.Restarts {
		t.Errorf("open cancel channel changed the portfolio outcome:\n%+v\nvs\n%+v", a.Result, b.Result)
	}
}
