package exper

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
)

// BenchSchema versions the BENCH_*.json report emitted by cmd/bench. Bump on
// any breaking change to BenchReport/BenchRow.
const BenchSchema = "repro-bench/v1"

// BenchReport is the schema-versioned output of one cmd/bench run. All
// quality fields (final cost, unrouted counts, critical path) are
// deterministic for a fixed (effort, seed, tracks, chains) tuple; only the
// wall-clock and throughput fields vary between runs and machines.
type BenchReport struct {
	Schema    string     `json:"schema"`
	Generated string     `json:"generated,omitempty"` // RFC3339; ignored by comparisons
	GoVersion string     `json:"go_version,omitempty"`
	Effort    string     `json:"effort"`
	Seed      int64      `json:"seed"`
	Tracks    int        `json:"tracks"`
	Chains    int        `json:"chains"`
	Rows      []BenchRow `json:"benchmarks"`

	// Criticality-weighted timing term settings the suite ran with (see
	// core.Config). Zero — and omitted from the JSON — for the default
	// engine, so pre-extension reports decode and compare unchanged.
	CritWeight  float64 `json:"crit_weight,omitempty"`
	CritBias    float64 `json:"crit_bias,omitempty"`
	CritDamping float64 `json:"crit_damping,omitempty"`

	// Detailed-router backend the suite ran with (see droute.Backend). Empty
	// — and omitted from the JSON — for the default ordered router, so
	// pre-extension reports decode and compare unchanged. RouteWorkers is
	// deliberately absent: it is scheduling-only and never affects results.
	RouteBackend string `json:"route_backend,omitempty"`
	RouteIters   int    `json:"route_iters,omitempty"`
}

// BenchRow is one benchmark design's result.
type BenchRow struct {
	Design      string  `json:"design"`
	Cells       int     `json:"cells"`
	Nets        int     `json:"nets"`
	FullyRouted bool    `json:"fully_routed"`
	Unrouted    int     `json:"unrouted"`         // nets lacking a complete detailed route (D)
	GUnrouted   int     `json:"global_unrouted"`  // globally unroutable nets (G)
	WCDPs       float64 `json:"critical_path_ps"` // worst-case delay
	FinalCost   float64 `json:"final_cost"`
	Temps       int     `json:"temps"`
	Moves       int     `json:"moves"`
	Accepted    int     `json:"accepted"`
	Restarts    int     `json:"restarts"` // elite-migration restarts (parallel runs)

	// LayoutHash fingerprints the final placement, pinmaps and routes; like
	// the quality fields it is bit-identical for a fixed configuration, so
	// the compare gate can prove a perf change did not alter results. Empty
	// in reports predating the field.
	LayoutHash string `json:"layout_hash,omitempty"`

	// RouteFailed is the channel-need count the initial constructive routing
	// pass left unrouted — deterministic for a fixed configuration, and the
	// quality metric the route-scaling gate holds cross-backend runs to.
	// Omitted (decoded as zero) in reports predating the field; the gates
	// use RouteWallMS > 0 as the carries-route-fields sentinel.
	RouteFailed int `json:"route_failed,omitempty"`

	// Machine-dependent fields; excluded from exact quality comparisons.
	// The alloc counters are heap activity over the whole run divided by
	// total moves — near-deterministic for a fixed configuration (the
	// workload is), with only minor runtime-internal noise, so the compare
	// gate bounds them with a tolerance rather than requiring equality.
	WallMS          float64 `json:"wall_ms"`
	PeakMovesPerSec float64 `json:"peak_moves_per_sec"`
	AllocsPerMove   float64 `json:"allocs_per_move"`
	BytesPerMove    float64 `json:"bytes_per_move"`

	// RouteWallMS is the wall clock of the constructive routing pass alone
	// (global + detailed route phases), the series the route-scaling gate
	// compares across backends. Omitted in reports predating the field.
	RouteWallMS float64 `json:"route_wall_ms,omitempty"`
}

// RunBenchmark executes the simultaneous flow on one named design and reports
// the row. The effort's collector (if any) observes the run; a private
// Summary is layered on top to extract peak throughput.
func RunBenchmark(design string, e Effort, seed int64, tracks int) (BenchRow, error) {
	nl, err := Design(design)
	if err != nil {
		return BenchRow{}, err
	}
	a, err := ArchFor(nl, tracks)
	if err != nil {
		return BenchRow{}, err
	}
	sum := metrics.NewSummary()
	e.Metrics = metrics.Multi(e.Metrics, sum)
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	opt, res, dur, err := RunSim(a, nl, e, seed, false)
	runtime.ReadMemStats(&m1)
	if err != nil {
		return BenchRow{}, err
	}
	moves := res.Anneal.TotalMoves + res.RepairMoves
	if moves < 1 {
		moves = 1
	}
	routeDur := sum.Totals().PhaseDur[metrics.PhaseGlobalRoute] +
		sum.Totals().PhaseDur[metrics.PhaseDetailRoute]
	return BenchRow{
		Design:          design,
		Cells:           nl.NumCells(),
		Nets:            nl.NumNets(),
		FullyRouted:     res.FullyRouted,
		Unrouted:        res.D,
		GUnrouted:       res.G,
		WCDPs:           res.WCD,
		FinalCost:       res.FinalCost,
		Temps:           res.Anneal.Temps,
		Moves:           res.Anneal.TotalMoves,
		Accepted:        res.Anneal.Accepted,
		Restarts:        res.Restarts,
		LayoutHash:      LayoutHash(opt),
		RouteFailed:     res.RouteFailed,
		WallMS:          float64(dur) / float64(time.Millisecond),
		PeakMovesPerSec: sum.PeakMovesPerSec(),
		AllocsPerMove:   float64(m1.Mallocs-m0.Mallocs) / float64(moves),
		BytesPerMove:    float64(m1.TotalAlloc-m0.TotalAlloc) / float64(moves),
		RouteWallMS:     float64(routeDur) / float64(time.Millisecond),
	}, nil
}

// LayoutHash returns a SHA-256 fingerprint of the optimizer's final layout:
// every cell's slot and pinmap plus every net's complete route descriptor.
// Two runs with the same configuration produce the same hash on any machine;
// a perf-only change that alters the hash has changed results.
func LayoutHash(o *core.Optimizer) string {
	h := sha256.New()
	for id, loc := range o.P.Loc {
		fmt.Fprintf(h, "c%d:%d,%d,%d;", id, loc.Row, loc.Col, o.P.Pm[id])
	}
	for id := range o.Rts {
		r := &o.Rts[id]
		fmt.Fprintf(h, "n%d:%v,%v,%d,%d,%d,%d|", id, r.Global, r.HasTrunk, r.TrunkCol, r.TrunkTrack, r.VLo, r.VHi)
		for _, ca := range r.Chans {
			fmt.Fprintf(h, "%d,%d,%d,%d,%d,%d;", ca.Ch, ca.Lo, ca.Hi, ca.Track, ca.SegLo, ca.SegHi)
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// BenchDesigns is the default benchmark suite for cmd/bench: the test-sized
// design plus two of the paper's Table-1 designs, small enough that the
// fast-effort suite stays a CI smoke run.
func BenchDesigns() []string { return []string{"tiny", "s1", "cse"} }

// PaperBenchDesigns is the full reproduction suite behind cmd/bench's
// -suite paper flag: all five Table-1 designs plus the Figure-7 529-cell
// design. At paper effort this takes minutes, not seconds — it is meant for
// generating the reproduction tables, never for the CI smoke gate.
func PaperBenchDesigns() []string { return []string{"s1", "cse", "ex1", "bw", "s1a", "big529"} }

// WriteBenchReport writes the report as indented JSON.
func WriteBenchReport(w io.Writer, r *BenchReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadBenchReport parses a report and validates its schema tag.
func ReadBenchReport(r io.Reader) (*BenchReport, error) {
	var rep BenchReport
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return nil, fmt.Errorf("bench report: %w", err)
	}
	if rep.Schema != BenchSchema {
		return nil, fmt.Errorf("bench report: schema %q, want %q", rep.Schema, BenchSchema)
	}
	return &rep, nil
}

// CompareOptions tunes CompareBenchReports.
type CompareOptions struct {
	// WallTol is the allowed relative wall-time regression (0.25 = +25%).
	WallTol float64
	// WallSlackMS is an absolute grace on top of WallTol, so sub-second
	// benchmarks on differently loaded machines do not flake the gate.
	WallSlackMS float64
	// AllocTol is the allowed relative allocs/move and bytes/move regression.
	// The counters are near-deterministic, so the tolerance only absorbs
	// runtime-internal noise, not real regressions.
	AllocTol float64
	// AllocSlack / BytesSlack are the absolute graces on top of AllocTol
	// (allocs per move, bytes per move), keeping near-zero baselines from
	// flaking the gate on sub-allocation noise.
	AllocSlack float64
	BytesSlack float64

	// TimingQuality switches the gate from same-configuration regression
	// checking to cross-configuration quality comparison: the current report
	// (typically a criticality-weighted run) must strictly improve the
	// geometric-mean critical path over the baseline without routing any
	// worse, at a total wall-time cost of at most WallCostTol. Per-design
	// layout-hash, critical-path, wall and alloc gates are skipped — the
	// configurations are *supposed* to differ in results — but
	// Effort/Seed/Tracks/Chains must still match, and both reports must be
	// from the same machine for the wall comparison to mean anything.
	TimingQuality bool
	// WallCostTol is the allowed relative total wall-time increase in
	// TimingQuality mode (0.05 = the timing win may cost at most 5% runtime).
	WallCostTol float64

	// RouteGate switches the gate to cross-backend route-scaling comparison:
	// the current report (typically a lagrange-backend run) must be
	// quality-neutral — no design routes any worse overall and no design's
	// constructive pass fails more channel needs — at a total route wall
	// time no higher than the baseline backend's (plus RouteWallSlackMS).
	// Per-design layout-hash, critical-path, wall and alloc gates are
	// skipped — different backends are *supposed* to produce different
	// layouts — and the route backend/iters headers may differ, but
	// Effort/Seed/Tracks/Chains must still match, and both reports must be
	// from the same machine for the wall comparison to mean anything.
	RouteGate bool
	// RouteWallSlackMS is the absolute grace on the total route-wall
	// comparison in RouteGate mode, keeping sub-millisecond route phases on
	// small suites from flaking the gate.
	RouteWallSlackMS float64
}

// DefaultCompareOptions returns the CI gate settings: fail on >25% wall-time
// regression (plus 250 ms absolute slack), >25% allocs/bytes-per-move
// regression (plus small absolute slack), any quality worsening, or a layout
// hash mismatch.
func DefaultCompareOptions() CompareOptions {
	return CompareOptions{WallTol: 0.25, WallSlackMS: 250, AllocTol: 0.25, AllocSlack: 2, BytesSlack: 256}
}

// TimingQualityCompareOptions returns the nightly paper-suite gate settings:
// the criticality-weighted run must improve geomean critical path at a total
// wall cost of at most 5% (plus the usual absolute slack for sub-second
// suites).
func TimingQualityCompareOptions() CompareOptions {
	return CompareOptions{TimingQuality: true, WallCostTol: 0.05, WallSlackMS: 250}
}

// RouteGateCompareOptions returns the route-scaling gate settings: the
// candidate backend must be quality-neutral on routing (per-design unrouted
// counts and constructive-pass failures no worse) at a total route wall time
// no higher than the baseline's plus 50 ms of noise grace.
func RouteGateCompareOptions() CompareOptions {
	return CompareOptions{RouteGate: true, RouteWallSlackMS: 50}
}

// CompareBenchReports checks cur against base and returns one message per
// regression (empty = gate passes). Quality metrics (unrouted counts,
// critical path) are deterministic for a fixed configuration, so any
// worsening at all fails; wall time gets the configured tolerance. Comparing
// reports from different configurations is itself an error — except the
// criticality fields in TimingQuality mode, where differing is the point.
// Designs present in the baseline but missing from the current report are a
// hard failure in every mode: suite shrinkage must never mask regressions.
func CompareBenchReports(base, cur *BenchReport, opt CompareOptions) ([]string, error) {
	if base.Effort != cur.Effort || base.Seed != cur.Seed || base.Tracks != cur.Tracks || base.Chains != cur.Chains {
		return nil, fmt.Errorf("bench compare: configuration mismatch (base %s/seed %d/tracks %d/chains %d, current %s/seed %d/tracks %d/chains %d)",
			base.Effort, base.Seed, base.Tracks, base.Chains, cur.Effort, cur.Seed, cur.Tracks, cur.Chains)
	}
	if !opt.TimingQuality &&
		(base.CritWeight != cur.CritWeight || base.CritBias != cur.CritBias || base.CritDamping != cur.CritDamping) {
		return nil, fmt.Errorf("bench compare: criticality configuration mismatch (base %g/%g/%g, current %g/%g/%g)",
			base.CritWeight, base.CritBias, base.CritDamping, cur.CritWeight, cur.CritBias, cur.CritDamping)
	}
	if !opt.RouteGate &&
		(base.RouteBackend != cur.RouteBackend || base.RouteIters != cur.RouteIters) {
		return nil, fmt.Errorf("bench compare: route backend configuration mismatch (base %q/iters %d, current %q/iters %d)",
			base.RouteBackend, base.RouteIters, cur.RouteBackend, cur.RouteIters)
	}
	baseRows := make(map[string]BenchRow, len(base.Rows))
	for _, r := range base.Rows {
		baseRows[r.Design] = r
	}
	curRows := make(map[string]BenchRow, len(cur.Rows))
	for _, r := range cur.Rows {
		curRows[r.Design] = r
	}
	var regressions []string
	for _, c := range cur.Rows {
		b, ok := baseRows[c.Design]
		if !ok {
			continue // new benchmark: nothing to gate against
		}
		if c.Unrouted > b.Unrouted {
			regressions = append(regressions,
				fmt.Sprintf("%s: unrouted nets %d -> %d", c.Design, b.Unrouted, c.Unrouted))
		}
		if c.GUnrouted > b.GUnrouted {
			regressions = append(regressions,
				fmt.Sprintf("%s: globally unrouted nets %d -> %d", c.Design, b.GUnrouted, c.GUnrouted))
		}
		if opt.RouteGate {
			// Cross-backend comparison: layouts are expected to differ, but
			// the candidate backend must not leave more of any design's
			// constructive pass unrouted. Armed only when the baseline
			// carries the route fields.
			if b.RouteWallMS > 0 && c.RouteFailed > b.RouteFailed {
				regressions = append(regressions,
					fmt.Sprintf("%s: constructive route failures %d -> %d", c.Design, b.RouteFailed, c.RouteFailed))
			}
			continue
		}
		if opt.TimingQuality {
			// Cross-configuration comparison: results are expected to
			// differ, so the per-design hash/critical-path/wall/alloc gates
			// below do not apply. The routing gates above still do — a
			// timing win that breaks routability is no win.
			continue
		}
		// Same-configuration runs are deterministic, so a constructive-pass
		// failure increase is a real regression (armed only when the
		// baseline carries the route fields).
		if b.RouteWallMS > 0 && c.RouteFailed > b.RouteFailed {
			regressions = append(regressions,
				fmt.Sprintf("%s: constructive route failures %d -> %d", c.Design, b.RouteFailed, c.RouteFailed))
		}
		if c.WCDPs > b.WCDPs {
			regressions = append(regressions,
				fmt.Sprintf("%s: critical path %.1f ps -> %.1f ps", c.Design, b.WCDPs, c.WCDPs))
		}
		if b.LayoutHash != "" && c.LayoutHash != "" && b.LayoutHash != c.LayoutHash {
			regressions = append(regressions,
				fmt.Sprintf("%s: layout hash changed (%.12s... -> %.12s...)", c.Design, b.LayoutHash, c.LayoutHash))
		}
		if limit := b.WallMS*(1+opt.WallTol) + opt.WallSlackMS; c.WallMS > limit {
			regressions = append(regressions,
				fmt.Sprintf("%s: wall time %.0f ms -> %.0f ms (limit %.0f ms)", c.Design, b.WallMS, c.WallMS, limit))
		}
		// Alloc gates only arm once the baseline carries the counters
		// (reports predating the fields decode them as zero).
		if b.AllocsPerMove > 0 {
			if limit := b.AllocsPerMove*(1+opt.AllocTol) + opt.AllocSlack; c.AllocsPerMove > limit {
				regressions = append(regressions,
					fmt.Sprintf("%s: allocs/move %.2f -> %.2f (limit %.2f)", c.Design, b.AllocsPerMove, c.AllocsPerMove, limit))
			}
		}
		if b.BytesPerMove > 0 {
			if limit := b.BytesPerMove*(1+opt.AllocTol) + opt.BytesSlack; c.BytesPerMove > limit {
				regressions = append(regressions,
					fmt.Sprintf("%s: bytes/move %.0f -> %.0f (limit %.0f)", c.Design, b.BytesPerMove, c.BytesPerMove, limit))
			}
		}
	}
	for _, b := range base.Rows {
		if _, ok := curRows[b.Design]; !ok {
			regressions = append(regressions, fmt.Sprintf("%s: benchmark missing from current report", b.Design))
		}
	}
	if opt.TimingQuality {
		regressions = append(regressions, timingQualityGate(base, cur, baseRows, curRows, opt)...)
	}
	if opt.RouteGate {
		regressions = append(regressions, routeScalingGate(base, curRows, opt)...)
	}
	return regressions, nil
}

// routeScalingGate is the RouteGate-mode aggregate check: over the designs
// both reports share (and whose baseline rows carry route timings), the
// current report's total constructive-route wall time must not exceed the
// baseline's plus the slack. Reports without route fields fail closed — a
// gate that silently compares nothing would pass any regression.
func routeScalingGate(base *BenchReport, curRows map[string]BenchRow, opt CompareOptions) []string {
	var wallBase, wallCur float64
	n := 0
	for _, b := range base.Rows {
		c, ok := curRows[b.Design]
		if !ok || b.RouteWallMS <= 0 {
			continue
		}
		wallBase += b.RouteWallMS
		wallCur += c.RouteWallMS
		n++
	}
	if n == 0 {
		return []string{"route-scaling gate: no comparable designs with route timings"}
	}
	if limit := wallBase + opt.RouteWallSlackMS; wallCur > limit {
		return []string{fmt.Sprintf(
			"route-scaling gate: total route wall time %.1f ms -> %.1f ms exceeds the baseline plus %.0f ms slack (limit %.1f ms)",
			wallBase, wallCur, opt.RouteWallSlackMS, limit)}
	}
	return nil
}

// timingQualityGate is the TimingQuality-mode aggregate check: the current
// report's geometric-mean critical path over the designs both reports share
// must strictly improve on the baseline's, at a total wall-time cost of at
// most WallCostTol (both reports must come from the same machine and run for
// the wall comparison to hold).
func timingQualityGate(base, cur *BenchReport, baseRows, curRows map[string]BenchRow, opt CompareOptions) []string {
	var (
		logSumBase, logSumCur float64
		wallBase, wallCur     float64
		n                     int
	)
	for _, b := range base.Rows {
		c, ok := curRows[b.Design]
		if !ok || b.WCDPs <= 0 || c.WCDPs <= 0 {
			continue
		}
		logSumBase += math.Log(b.WCDPs)
		logSumCur += math.Log(c.WCDPs)
		wallBase += b.WallMS
		wallCur += c.WallMS
		n++
	}
	if n == 0 {
		return []string{"timing-quality gate: no comparable designs with positive critical paths"}
	}
	var out []string
	gmBase := math.Exp(logSumBase / float64(n))
	gmCur := math.Exp(logSumCur / float64(n))
	if gmCur >= gmBase {
		out = append(out, fmt.Sprintf(
			"timing-quality gate: geomean critical path did not improve (%.1f ps -> %.1f ps over %d designs)",
			gmBase, gmCur, n))
	}
	if limit := wallBase*(1+opt.WallCostTol) + opt.WallSlackMS; wallCur > limit {
		out = append(out, fmt.Sprintf(
			"timing-quality gate: total wall time %.0f ms -> %.0f ms exceeds the %.0f%% cost budget (limit %.0f ms)",
			wallBase, wallCur, opt.WallCostTol*100, limit))
	}
	return out
}
