package exper

import "repro/internal/portfolio"

// PortfolioMatrix resolves a named server-side portfolio matrix. Presets are
// concrete matrices — the daemon and the CLI expand them identically, so a
// preset sweep is reproducible on either side.
func PortfolioMatrix(name string) (portfolio.Matrix, bool) {
	switch name {
	case "seeds4":
		// Pure seed diversity at the submitted effort.
		return portfolio.Matrix{Seeds: []int64{1, 2, 3, 4}}, true
	case "seeds8":
		return portfolio.Matrix{Seeds: []int64{1, 2, 3, 4, 5, 6, 7, 8}}, true
	case "paper8":
		// The EXPERIMENTS.md portfolio-of-8: 2 seeds × 2 effort points
		// (FastEffort- and PaperEffort-class core knobs) × 2 router backends.
		return portfolio.Matrix{
			Seeds: []int64{1, 2},
			Efforts: []portfolio.Effort{
				{Name: "fast", MovesPerCell: 6, MaxTemps: 80},
				{Name: "deep", MovesPerCell: 12, MaxTemps: 180},
			},
			Backends: []string{"ordered", "lagrange"},
		}, true
	}
	return portfolio.Matrix{}, false
}

// PortfolioPresets lists the preset names PortfolioMatrix resolves.
func PortfolioPresets() []string {
	return []string{"paper8", "seeds4", "seeds8"}
}
