package exper

import (
	"repro/internal/arch"
	"repro/internal/core"
)

// SegSweepRow is one segmentation scheme's outcome in the architecture
// study: the paper's §1 tension made quantitative. "Small segment sizes are
// desirable for wirability ... However, this tends to increase the number of
// antifuses on each signal path, which is detrimental for timing. Hence,
// there is usually a mix of small and large segments."
type SegSweepRow struct {
	Scheme      string
	Pattern     []int
	FullyRouted bool
	WCD         float64 // ps (simultaneous flow, timing-driven)
	Antifuses   int     // programmed antifuses across all nets
}

// SegSchemes returns the segmentation schemes compared by the sweep.
func SegSchemes() []struct {
	Name    string
	Pattern []int
} {
	return []struct {
		Name    string
		Pattern []int
	}{
		{"short", []int{3, 4, 3, 5}},
		{"mixed", []int{4, 9, 3, 14, 5, 7}}, // the default architecture
		{"long", []int{14, 18, 12}},
	}
}

// SegmentationSweep lays out one design with the simultaneous flow under
// each segmentation scheme at a fixed, moderately tight channel capacity,
// reporting routability, delay and antifuse usage. Expected shape: short
// segments route at lower capacity but accrue antifuses and delay; long
// segments are fast but waste capacity; the mixed scheme balances both —
// which is why real parts mix sizes.
func SegmentationSweep(design string, tracks int, e Effort, seed int64) ([]SegSweepRow, error) {
	nl, err := Design(design)
	if err != nil {
		return nil, err
	}
	rows := make([]SegSweepRow, 0, 3)
	for _, sch := range SegSchemes() {
		archRows := 8
		if nl.NumCells() > 350 {
			archRows = 12
		}
		cols := (nl.NumCells()*18/10 + archRows - 1) / archRows
		if cols < 8 {
			cols = 8
		}
		p := arch.Default(archRows, cols, tracks)
		p.SegPattern = sch.Pattern
		a, err := arch.New(p)
		if err != nil {
			return nil, err
		}
		o, err := core.New(a, nl, core.Config{
			Seed:         seed,
			MovesPerCell: e.CoreMovesPerCell,
			MaxTemps:     e.CoreMaxTemps,
		})
		if err != nil {
			return nil, err
		}
		res := o.Run()
		af := 0
		for id := range o.Rts {
			af += o.Rts[id].AntifuseCount()
		}
		rows = append(rows, SegSweepRow{
			Scheme:      sch.Name,
			Pattern:     sch.Pattern,
			FullyRouted: res.FullyRouted,
			WCD:         res.WCD,
			Antifuses:   af,
		})
	}
	return rows, nil
}
