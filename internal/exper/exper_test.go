package exper

import (
	"testing"
)

// tinyEffort keeps unit tests quick.
func tinyEffort() Effort {
	return Effort{Name: "tiny", PlaceMovesPerCell: 5, PlaceMaxTemps: 50,
		CoreMovesPerCell: 5, CoreMaxTemps: 50, RouteAttempts: 4}
}

func TestArchFor(t *testing.T) {
	nl, err := Design("tiny")
	if err != nil {
		t.Fatal(err)
	}
	a, err := ArchFor(nl, 20)
	if err != nil {
		t.Fatal(err)
	}
	if a.Tracks != 20 {
		t.Errorf("tracks = %d", a.Tracks)
	}
	if a.Slots() < nl.NumCells() {
		t.Errorf("only %d slots for %d cells", a.Slots(), nl.NumCells())
	}
	big, err := Design("big529")
	if err != nil {
		t.Fatal(err)
	}
	ab, err := ArchFor(big, 20)
	if err != nil {
		t.Fatal(err)
	}
	if ab.Rows <= a.Rows {
		t.Error("larger design should get more rows")
	}
}

func TestDesignUnknown(t *testing.T) {
	if _, err := Design("nonesuch"); err == nil {
		t.Error("unknown design accepted")
	}
}

func TestTableDesigns(t *testing.T) {
	names := TableDesigns()
	if len(names) != 5 {
		t.Fatalf("want the paper's 5 designs, got %d", len(names))
	}
	for _, n := range names {
		if _, err := Design(n); err != nil {
			t.Errorf("design %s: %v", n, err)
		}
	}
}

func TestTable1Tiny(t *testing.T) {
	rows, err := Table1([]string{"tiny"}, tinyEffort(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("%d rows", len(rows))
	}
	r := rows[0]
	if r.Err != "" {
		t.Fatalf("flow failed: %s", r.Err)
	}
	if r.SeqWCD <= 0 || r.SimWCD <= 0 {
		t.Errorf("missing delays: %+v", r)
	}
	if r.Agreement < 0.8 || r.Agreement > 1.05 {
		t.Errorf("agreement %.3f implausible", r.Agreement)
	}
	// On a 30-cell design the margin is noisy; just require the simultaneous
	// tool is not drastically worse.
	if r.ImprovePct < -15 {
		t.Errorf("simultaneous much worse than sequential: %+v", r)
	}
}

func TestTable2Tiny(t *testing.T) {
	rows, err := Table2([]string{"tiny"}, tinyEffort(), 3)
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.SeqTracks <= 0 || r.SimTracks <= 0 {
		t.Fatalf("min-track search failed: %+v", r)
	}
	if r.SimTracks > r.SeqTracks {
		t.Errorf("simultaneous needed more tracks than sequential: %+v", r)
	}
}

func TestFigure6Tiny(t *testing.T) {
	dyn, err := Figure6("tiny", tinyEffort(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(dyn) < 3 {
		t.Fatalf("trace too short: %d", len(dyn))
	}
	last := dyn[len(dyn)-1]
	if last.Unrouted > 0.05 {
		t.Errorf("final unrouted fraction %.3f", last.Unrouted)
	}
	if dyn[1].CellsPerturbed <= last.CellsPerturbed {
		t.Errorf("placement activity did not decay: %.2f -> %.2f",
			dyn[1].CellsPerturbed, last.CellsPerturbed)
	}
}

func TestRuntimeRatioTiny(t *testing.T) {
	seqDur, simDur, err := RuntimeRatio("tiny", tinyEffort(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if seqDur <= 0 || simDur <= 0 {
		t.Fatal("durations not measured")
	}
	// The simultaneous flow pays a runtime premium (paper: 3-4x).
	if simDur < seqDur {
		t.Logf("note: sim (%v) faster than seq (%v) on tiny design", simDur, seqDur)
	}
}

func TestFigure7Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("big529 run in -short mode")
	}
	res, err := Figure7(tinyEffort(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cells != 529 {
		t.Errorf("cells = %d, want 529", res.Cells)
	}
	if !res.FullyRouted {
		t.Errorf("big529 not fully routed at tiny effort")
	}
}

func TestSegmentationSweepTiny(t *testing.T) {
	rows, err := SegmentationSweep("tiny", 16, tinyEffort(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	var short, long *SegSweepRow
	for i := range rows {
		switch rows[i].Scheme {
		case "short":
			short = &rows[i]
		case "long":
			long = &rows[i]
		}
		if rows[i].FullyRouted && rows[i].WCD <= 0 {
			t.Errorf("%s: routed but no WCD", rows[i].Scheme)
		}
	}
	// The §1 tradeoff (short segmentation → more antifuses) emerges on
	// realistic sizes but sits inside placement noise on a 30-cell design,
	// so only log it here; all rows must carry sane data.
	if short.FullyRouted && long.FullyRouted {
		t.Logf("antifuses: short %d, long %d", short.Antifuses, long.Antifuses)
	}
	for _, r := range rows {
		if r.Antifuses <= 0 {
			t.Errorf("%s: no antifuses reported", r.Scheme)
		}
	}
}
