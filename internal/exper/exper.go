// Package exper regenerates every table and figure of the paper's evaluation
// (§4): Table 1 (timing improvement of simultaneous over sequential layout),
// Table 2 (minimum tracks per channel for 100% wirability), Figure 6
// (annealing dynamics), Figure 7 (the 529-cell design routed to completion),
// and the runtime-ratio observation. It is shared by cmd/paper and the
// repository benchmarks.
package exper

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/droute"
	"repro/internal/metrics"
	"repro/internal/netgen"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/render"
	"repro/internal/seq"
	"repro/internal/timing"
)

// Effort scales how hard the optimizers work. Fast keeps unit-test and
// development turnaround short; Paper is the setting used to regenerate the
// reported numbers.
type Effort struct {
	Name              string
	PlaceMovesPerCell int
	PlaceMaxTemps     int
	CoreMovesPerCell  int
	CoreMaxTemps      int
	RouteAttempts     int

	// Chains/Workers select parallel portfolio annealing for the
	// simultaneous flow (1 chain = the serial engine). The constructors set
	// Chains explicitly so that a constructed Effort is always fully
	// specified; callers (cmd/paper -chains, cmd/bench -chains) override.
	Chains  int
	Workers int

	// Criticality-weighted timing term for the simultaneous flow (see
	// core.Config). All zero — the term off — in both constructors; callers
	// opt in (cmd/bench -crit-weight, cmd/paper -crit-weight).
	CritWeight  float64
	CritBias    float64
	CritDamping float64

	// RouteBackend selects the detailed-router backend for both flows
	// ("", "ordered", "negotiated" or "lagrange"; see droute.Backend), with
	// RouteIters overriding the iterative backends' iteration cap and
	// RouteWorkers capping router concurrency (scheduling only). Zero values
	// — the ordered backend — in both constructors; callers opt in
	// (cmd/bench / cmd/paper -route-backend).
	RouteBackend string
	RouteIters   int
	RouteWorkers int

	// Metrics, when non-nil, is threaded into every flow the effort runs
	// (core and seq). It must be safe for concurrent use: table rows run
	// concurrently and parallel chains share it.
	Metrics metrics.Collector
}

// FastEffort is sized for tests and smoke runs.
func FastEffort() Effort {
	return Effort{Name: "fast", PlaceMovesPerCell: 6, PlaceMaxTemps: 80,
		CoreMovesPerCell: 6, CoreMaxTemps: 80, RouteAttempts: 4,
		Chains: 1, Workers: 0}
}

// PaperEffort is sized for regenerating the reported tables.
func PaperEffort() Effort {
	return Effort{Name: "paper", PlaceMovesPerCell: 14, PlaceMaxTemps: 200,
		CoreMovesPerCell: 12, CoreMaxTemps: 180, RouteAttempts: 10,
		Chains: 1, Workers: 0}
}

// DefaultTracks is the generous channel capacity used for the timing
// comparison (Table 1), chosen above every design's sequential minimum in
// Table 2 so both flows route completely.
const DefaultTracks = 38

// ArchFor sizes a row-based architecture for a netlist: 8 module rows (the
// era's A1010-class geometry) at roughly 55% slot utilization, wider rows for
// the Figure-7-class design.
func ArchFor(nl *netlist.Netlist, tracks int) (*arch.Arch, error) {
	rows := 8
	if nl.NumCells() > 350 {
		rows = 12
	}
	cols := (nl.NumCells()*18/10 + rows - 1) / rows
	if cols < 8 {
		cols = 8
	}
	return arch.New(arch.Default(rows, cols, tracks))
}

// constrainedArchFor builds a deliberately tight instance for the dynamics
// figure: channel capacity near the designs' Table-2 minima and reduced
// vertical tracks — enough to route, but with real global- and
// detailed-routing contention along the way.
func constrainedArchFor(nl *netlist.Netlist) (*arch.Arch, error) {
	rows := 8
	if nl.NumCells() > 350 {
		rows = 12
	}
	cols := (nl.NumCells()*18/10 + rows - 1) / rows
	if cols < 8 {
		cols = 8
	}
	p := arch.Default(rows, cols, 24)
	p.VTracks = 3
	return arch.New(p)
}

// Design loads a named benchmark profile.
func Design(name string) (*netlist.Netlist, error) {
	p, ok := netgen.Profile(name)
	if !ok {
		return nil, fmt.Errorf("exper: unknown design %q", name)
	}
	return netgen.Generate(p)
}

// TableDesigns lists the five Table-1/Table-2 designs in paper order.
func TableDesigns() []string { return []string{"s1", "cse", "ex1", "bw", "s1a"} }

// runSeq executes the sequential flow.
func runSeq(a *arch.Arch, nl *netlist.Netlist, e Effort, seed int64) (*seq.Result, time.Duration, error) {
	start := time.Now()
	res, err := seq.Run(a, nl, seq.Config{
		Seed: seed,
		Place: place.Config{
			Seed:         seed,
			MovesPerCell: e.PlaceMovesPerCell,
			MaxTemps:     e.PlaceMaxTemps,
		},
		RouteAttempts: e.RouteAttempts,
		RouteBackend:  droute.Backend(e.RouteBackend),
		RouteIters:    e.RouteIters,
		RouteWorkers:  e.RouteWorkers,
		Metrics:       e.Metrics,
	})
	return res, time.Since(start), err
}

// RunSim executes the simultaneous flow at the given effort (parallel
// portfolio annealing when the effort requests more than one chain), with the
// effort's metrics collector threaded through the optimizer. Exported for
// cmd/bench and for tests that assert the Chains plumbing end to end.
func RunSim(a *arch.Arch, nl *netlist.Netlist, e Effort, seed int64, wirabilityOnly bool) (*core.Optimizer, core.Result, time.Duration, error) {
	start := time.Now()
	o, err := core.New(a, nl, core.Config{
		Seed:          seed,
		MovesPerCell:  e.CoreMovesPerCell,
		MaxTemps:      e.CoreMaxTemps,
		DisableTiming: wirabilityOnly,
		Chains:        e.Chains,
		Workers:       e.Workers,
		CritWeight:    e.CritWeight,
		CritBias:      e.CritBias,
		CritDamping:   e.CritDamping,
		RouteBackend:  droute.Backend(e.RouteBackend),
		RouteIters:    e.RouteIters,
		RouteWorkers:  e.RouteWorkers,
		Metrics:       e.Metrics,
	})
	if err != nil {
		return nil, core.Result{}, 0, err
	}
	o, res := o.RunParallel()
	return o, res, time.Since(start), nil
}

// runSim is the historical internal spelling of RunSim.
func runSim(a *arch.Arch, nl *netlist.Netlist, e Effort, seed int64, wirabilityOnly bool) (*core.Optimizer, core.Result, time.Duration, error) {
	return RunSim(a, nl, e, seed, wirabilityOnly)
}

// Table1Row is one line of the paper's Table 1 plus the supporting detail we
// report alongside (absolute delays and the independent-analyzer agreement).
type Table1Row struct {
	Design     string
	Cells      int
	SeqWCD     float64 // ps, sequential flow, fully routed
	SimWCD     float64 // ps, simultaneous flow, fully routed
	ImprovePct float64 // paper's "% improvement"
	Agreement  float64 // in-loop vs independent analyzer on the sim layout
	SeqTime    time.Duration
	SimTime    time.Duration
	Err        string // non-empty when a flow failed to route
}

// Table1 regenerates the timing-improvement table on the given designs.
// Designs are independent and run concurrently; results stay in input order
// and are deterministic for a given seed.
func Table1(designs []string, e Effort, seed int64) ([]Table1Row, error) {
	rows := make([]Table1Row, len(designs))
	errs := make([]error, len(designs))
	var wg sync.WaitGroup
	for di, name := range designs {
		wg.Add(1)
		go func(di int, name string) {
			defer wg.Done()
			row, err := table1Row(name, e, seed)
			rows[di], errs[di] = row, err
		}(di, name)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return rows, nil
}

func table1Row(name string, e Effort, seed int64) (Table1Row, error) {
	nl, err := Design(name)
	if err != nil {
		return Table1Row{}, err
	}
	row := Table1Row{Design: name, Cells: nl.NumCells()}

	aSeq, err := ArchFor(nl, DefaultTracks)
	if err != nil {
		return row, err
	}
	sres, sdur, err := runSeq(aSeq, nl, e, seed)
	if err != nil {
		return row, err
	}
	row.SeqTime = sdur
	if !sres.FullyRouted {
		row.Err = fmt.Sprintf("sequential flow left %d nets unrouted", sres.UnroutedNets)
		return row, nil
	}
	row.SeqWCD = sres.WCD

	aSim, err := ArchFor(nl, DefaultTracks)
	if err != nil {
		return row, err
	}
	o, cres, cdur, err := runSim(aSim, nl, e, seed, false)
	if err != nil {
		return row, err
	}
	row.SimTime = cdur
	if !cres.FullyRouted {
		row.Err = fmt.Sprintf("simultaneous flow left %d nets unrouted", cres.D)
		return row, nil
	}
	row.SimWCD = cres.WCD
	row.ImprovePct = 100 * (row.SeqWCD - row.SimWCD) / row.SeqWCD
	if v, err := timing.Verify(o.P, o.Rts, cres.WCD); err == nil {
		row.Agreement = v.Agreement
	}
	return row, nil
}

// Table2Row is one line of the paper's Table 2.
type Table2Row struct {
	Design     string
	Cells      int
	SeqTracks  int // minimum tracks/channel for 100% wirability, sequential
	SimTracks  int // same, simultaneous
	ImprovePct float64
}

// Table2 regenerates the wirability table: for each design, the minimum
// channel capacity at which each flow still achieves 100% routing, found by
// bisection (the paper reduced tracks per channel "to the point that
// [each] tool failed to meet 100% wirability").
func Table2(designs []string, e Effort, seed int64) ([]Table2Row, error) {
	rows := make([]Table2Row, len(designs))
	errs := make([]error, len(designs))
	var wg sync.WaitGroup
	for di, name := range designs {
		wg.Add(1)
		go func(di int, name string) {
			defer wg.Done()
			rows[di], errs[di] = table2Row(name, e, seed)
		}(di, name)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return rows, nil
}

func table2Row(name string, e Effort, seed int64) (Table2Row, error) {
	nl, err := Design(name)
	if err != nil {
		return Table2Row{}, err
	}
	seqMin, err := minTracks(nl, e, func(a *arch.Arch, s int64) (bool, error) {
		res, _, err := runSeq(a, nl, e, s)
		if err != nil {
			return false, err
		}
		return res.FullyRouted, nil
	}, seed)
	if err != nil {
		return Table2Row{}, err
	}
	simMin, err := minTracks(nl, e, func(a *arch.Arch, s int64) (bool, error) {
		_, res, _, err := runSim(a, nl, e, s, true)
		if err != nil {
			return false, err
		}
		return res.FullyRouted, nil
	}, seed)
	if err != nil {
		return Table2Row{}, err
	}
	row := Table2Row{Design: name, Cells: nl.NumCells(), SeqTracks: seqMin, SimTracks: simMin}
	if seqMin > 0 {
		row.ImprovePct = 100 * float64(seqMin-simMin) / float64(seqMin)
	}
	return row, nil
}

// minTracks finds the smallest tracks-per-channel at which try reports
// success. Annealing makes success slightly noisy rather than strictly
// monotone in capacity, so each probe gets a second chance with a different
// seed, bisection narrows the range, and a final descending scan pushes past
// any non-monotone pocket the bisection landed on. Returns 0 if even the
// upper bound fails.
func minTracks(nl *netlist.Netlist, e Effort, try func(*arch.Arch, int64) (bool, error), seed int64) (int, error) {
	const hi = 44
	ok := func(tracks int) (bool, error) {
		a, err := ArchFor(nl, tracks)
		if err != nil {
			return false, err
		}
		good, err := try(a, seed)
		if err != nil || good {
			return good, err
		}
		return try(a, seed+9091)
	}
	top, err := ok(hi)
	if err != nil {
		return 0, err
	}
	if !top {
		return 0, nil
	}
	lo, high := 1, hi // invariant: high succeeds
	for lo < high {
		mid := (lo + high) / 2
		good, err := ok(mid)
		if err != nil {
			return 0, err
		}
		if good {
			high = mid
		} else {
			lo = mid + 1
		}
	}
	// Descend below the bisection answer, tolerating up to three consecutive
	// failures before concluding the floor is real (annealing noise creates
	// pockets where t tracks fail but t-1 succeed).
	fails := 0
	for t := high - 1; t >= 1 && fails < 3; t-- {
		good, err := ok(t)
		if err != nil {
			return 0, err
		}
		if good {
			high = t
			fails = 0
		} else {
			fails++
		}
	}
	return high, nil
}

// Figure6 returns the per-temperature dynamics trace of a simultaneous run
// on the named design. The run uses a resource-constrained instance (channel
// capacity near the design's Table-2 minimum, halved vertical tracks) so
// that all three phases of the paper's figure are exercised: with generous
// resources the global router never fails and the %globally-unrouted series
// is trivially zero.
func Figure6(design string, e Effort, seed int64) ([]core.DynamicsSample, error) {
	nl, err := Design(design)
	if err != nil {
		return nil, err
	}
	a, err := constrainedArchFor(nl)
	if err != nil {
		return nil, err
	}
	_, res, _, err := runSim(a, nl, e, seed, false)
	if err != nil {
		return nil, err
	}
	return res.Dynamics, nil
}

// Figure7Result reports the large-design completion run.
type Figure7Result struct {
	Design      string
	Cells       int
	FullyRouted bool
	WCD         float64
	Elapsed     time.Duration
	Rendered    string // ASCII rendering of the finished layout (the figure itself)
}

// Figure7 runs the simultaneous tool on the 529-cell design to 100% routing.
// The paper spent 8 hours of 1994 hardware on this run; an effort floor keeps
// low-effort callers from starving it below the convergence point.
func Figure7(e Effort, seed int64) (Figure7Result, error) {
	if e.CoreMovesPerCell < 8 {
		e.CoreMovesPerCell = 8
	}
	if e.CoreMaxTemps < 140 {
		e.CoreMaxTemps = 140
	}
	nl, err := Design("big529")
	if err != nil {
		return Figure7Result{}, err
	}
	a, err := ArchFor(nl, DefaultTracks)
	if err != nil {
		return Figure7Result{}, err
	}
	o, res, dur, err := runSim(a, nl, e, seed, false)
	if err != nil {
		return Figure7Result{}, err
	}
	return Figure7Result{
		Design:      "big529",
		Cells:       nl.NumCells(),
		FullyRouted: res.FullyRouted,
		WCD:         res.WCD,
		Elapsed:     dur,
		Rendered:    render.ASCII(o.P, o.Rts),
	}, nil
}

// RuntimeRatio measures the sequential and simultaneous wall-clock on one
// design (the paper reports roughly 1 hour vs 3–4 hours, i.e. a 3–4× ratio).
func RuntimeRatio(design string, e Effort, seed int64) (seqDur, simDur time.Duration, err error) {
	nl, err := Design(design)
	if err != nil {
		return 0, 0, err
	}
	a, err := ArchFor(nl, DefaultTracks)
	if err != nil {
		return 0, 0, err
	}
	_, seqDur, err = runSeq(a, nl, e, seed)
	if err != nil {
		return 0, 0, err
	}
	_, _, simDur, err = runSim(a, nl, e, seed, false)
	return seqDur, simDur, err
}
