package exper

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/metrics"
)

// goldenReport is a fixed report whose serialized form is pinned by testdata.
// Changing the JSON shape without bumping BenchSchema breaks this test on
// purpose.
func goldenReport() *BenchReport {
	return &BenchReport{
		Schema:    BenchSchema,
		Generated: "2026-01-02T03:04:05Z",
		GoVersion: "go1.24.0",
		Effort:    "fast",
		Seed:      1,
		Tracks:    38,
		Chains:    1,
		Rows: []BenchRow{{
			Design: "tiny", Cells: 30, Nets: 40,
			FullyRouted: true, Unrouted: 0, GUnrouted: 0,
			WCDPs: 1234.5, FinalCost: 6.789,
			Temps: 50, Moves: 9000, Accepted: 4000, Restarts: 0,
			LayoutHash: "deadbeef00112233445566778899aabbccddeeff00112233445566778899aabb",
			WallMS:     125.25, PeakMovesPerSec: 72000,
			AllocsPerMove: 1.25, BytesPerMove: 96.5,
			RouteFailed: 0, RouteWallMS: 4.5,
		}},
	}
}

func TestBenchReportGoldenSchema(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBenchReport(&buf, goldenReport()); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "bench_golden.json")
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (regenerate by writing the test output): %v", err)
	}
	if buf.String() != string(want) {
		t.Errorf("BENCH JSON schema drifted from %s.\ngot:\n%s\nwant:\n%s",
			golden, buf.String(), want)
	}
}

func TestBenchReportRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBenchReport(&buf, goldenReport()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBenchReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := goldenReport()
	if got.Seed != want.Seed || got.Effort != want.Effort || len(got.Rows) != 1 ||
		got.Rows[0] != want.Rows[0] {
		t.Errorf("round trip mismatch:\ngot  %+v\nwant %+v", got, want)
	}

	if _, err := ReadBenchReport(strings.NewReader(`{"schema":"other/v9"}`)); err == nil {
		t.Error("foreign schema accepted")
	}
}

func TestCompareBenchReports(t *testing.T) {
	base := goldenReport()
	opt := DefaultCompareOptions()

	t.Run("identical passes", func(t *testing.T) {
		regs, err := CompareBenchReports(base, goldenReport(), opt)
		if err != nil || len(regs) != 0 {
			t.Errorf("got %v, %v; want no regressions", regs, err)
		}
	})

	t.Run("wall time within tolerance passes", func(t *testing.T) {
		cur := goldenReport()
		cur.Rows[0].WallMS = base.Rows[0].WallMS*1.2 + 100 // inside 25% + 250ms
		regs, err := CompareBenchReports(base, cur, opt)
		if err != nil || len(regs) != 0 {
			t.Errorf("got %v, %v; want no regressions", regs, err)
		}
	})

	t.Run("quality and wall regressions flagged", func(t *testing.T) {
		cur := goldenReport()
		cur.Rows[0].Unrouted = 2
		cur.Rows[0].GUnrouted = 1
		cur.Rows[0].WCDPs = base.Rows[0].WCDPs * 1.01
		cur.Rows[0].WallMS = base.Rows[0].WallMS*1.25 + 251
		regs, err := CompareBenchReports(base, cur, opt)
		if err != nil {
			t.Fatal(err)
		}
		if len(regs) != 4 {
			t.Errorf("got %d regressions (%v), want 4", len(regs), regs)
		}
	})

	t.Run("layout hash mismatch flagged", func(t *testing.T) {
		cur := goldenReport()
		cur.Rows[0].LayoutHash = "0000000000112233445566778899aabbccddeeff00112233445566778899aabb"
		regs, err := CompareBenchReports(base, cur, opt)
		if err != nil {
			t.Fatal(err)
		}
		if len(regs) != 1 || !strings.Contains(regs[0], "layout hash") {
			t.Errorf("got %v, want one layout-hash regression", regs)
		}
	})

	t.Run("missing hash on either side is not gated", func(t *testing.T) {
		cur := goldenReport()
		cur.Rows[0].LayoutHash = ""
		regs, err := CompareBenchReports(base, cur, opt)
		if err != nil || len(regs) != 0 {
			t.Errorf("got %v, %v; want no regressions against a hashless report", regs, err)
		}
	})

	t.Run("alloc regressions flagged", func(t *testing.T) {
		cur := goldenReport()
		cur.Rows[0].AllocsPerMove = base.Rows[0].AllocsPerMove*1.25 + 3
		cur.Rows[0].BytesPerMove = base.Rows[0].BytesPerMove*1.25 + 257
		regs, err := CompareBenchReports(base, cur, opt)
		if err != nil {
			t.Fatal(err)
		}
		if len(regs) != 2 {
			t.Errorf("got %d regressions (%v), want 2 (allocs/move and bytes/move)", len(regs), regs)
		}
	})

	t.Run("alloc growth within tolerance passes", func(t *testing.T) {
		cur := goldenReport()
		cur.Rows[0].AllocsPerMove = base.Rows[0].AllocsPerMove*1.2 + 1
		cur.Rows[0].BytesPerMove = base.Rows[0].BytesPerMove*1.2 + 100
		regs, err := CompareBenchReports(base, cur, opt)
		if err != nil || len(regs) != 0 {
			t.Errorf("got %v, %v; want no regressions", regs, err)
		}
	})

	t.Run("zero-alloc baseline does not arm alloc gate", func(t *testing.T) {
		b0 := goldenReport()
		b0.Rows[0].AllocsPerMove, b0.Rows[0].BytesPerMove = 0, 0
		cur := goldenReport()
		cur.Rows[0].AllocsPerMove, cur.Rows[0].BytesPerMove = 50, 5000
		regs, err := CompareBenchReports(b0, cur, opt)
		if err != nil || len(regs) != 0 {
			t.Errorf("got %v, %v; want no regressions against a pre-counter baseline", regs, err)
		}
	})

	t.Run("missing benchmark flagged", func(t *testing.T) {
		cur := goldenReport()
		cur.Rows = nil
		regs, err := CompareBenchReports(base, cur, opt)
		if err != nil {
			t.Fatal(err)
		}
		if len(regs) != 1 || !strings.Contains(regs[0], "missing") {
			t.Errorf("got %v, want one missing-benchmark regression", regs)
		}
	})

	t.Run("configuration mismatch errors", func(t *testing.T) {
		cur := goldenReport()
		cur.Seed = 2
		if _, err := CompareBenchReports(base, cur, opt); err == nil {
			t.Error("seed mismatch accepted")
		}
	})

	t.Run("crit configuration mismatch errors in standard mode", func(t *testing.T) {
		cur := goldenReport()
		cur.CritWeight = 1
		if _, err := CompareBenchReports(base, cur, opt); err == nil {
			t.Error("crit-weight mismatch accepted by the standard gate")
		}
	})
}

// tqReport is a two-design baseline for the timing-quality gate tests.
func tqReport() *BenchReport {
	r := goldenReport()
	second := r.Rows[0]
	second.Design = "cse"
	second.WCDPs = 2000
	second.WallMS = 300
	r.Rows = append(r.Rows, second)
	return r
}

func TestCompareTimingQuality(t *testing.T) {
	opt := TimingQualityCompareOptions()
	base := tqReport()

	// critRun mimics a criticality-weighted re-run of the same suite: the
	// layouts (hence hashes and critical paths) differ by design.
	critRun := func() *BenchReport {
		r := tqReport()
		r.CritWeight, r.CritBias, r.CritDamping = 1, 0.25, 0.6
		for i := range r.Rows {
			r.Rows[i].WCDPs *= 0.9
			r.Rows[i].LayoutHash = "1111111111112233445566778899aabbccddeeff00112233445566778899aabb"
			r.Rows[i].WallMS *= 1.02
		}
		return r
	}

	t.Run("improvement within wall budget passes", func(t *testing.T) {
		regs, err := CompareBenchReports(base, critRun(), opt)
		if err != nil || len(regs) != 0 {
			t.Errorf("got %v, %v; want no regressions", regs, err)
		}
	})

	t.Run("no geomean improvement fails", func(t *testing.T) {
		cur := critRun()
		for i := range cur.Rows {
			cur.Rows[i].WCDPs = base.Rows[i].WCDPs // equal is not an improvement
		}
		regs, err := CompareBenchReports(base, cur, opt)
		if err != nil {
			t.Fatal(err)
		}
		if len(regs) != 1 || !strings.Contains(regs[0], "geomean") {
			t.Errorf("got %v, want one geomean regression", regs)
		}
	})

	t.Run("one design worse but geomean better still passes", func(t *testing.T) {
		cur := critRun()
		cur.Rows[0].WCDPs = base.Rows[0].WCDPs * 1.05
		cur.Rows[1].WCDPs = base.Rows[1].WCDPs * 0.5
		regs, err := CompareBenchReports(base, cur, opt)
		if err != nil || len(regs) != 0 {
			t.Errorf("got %v, %v; want no regressions (aggregate gate, not per-design)", regs, err)
		}
	})

	t.Run("wall cost over budget fails", func(t *testing.T) {
		cur := critRun()
		for i := range cur.Rows {
			cur.Rows[i].WallMS = base.Rows[i].WallMS*1.06 + 300
		}
		regs, err := CompareBenchReports(base, cur, opt)
		if err != nil {
			t.Fatal(err)
		}
		if len(regs) != 1 || !strings.Contains(regs[0], "wall") {
			t.Errorf("got %v, want one wall-budget regression", regs)
		}
	})

	t.Run("routing regression still fails", func(t *testing.T) {
		cur := critRun()
		cur.Rows[0].Unrouted = 1
		regs, err := CompareBenchReports(base, cur, opt)
		if err != nil {
			t.Fatal(err)
		}
		if len(regs) != 1 || !strings.Contains(regs[0], "unrouted") {
			t.Errorf("got %v, want one unrouted regression", regs)
		}
	})

	t.Run("missing design still fails", func(t *testing.T) {
		cur := critRun()
		cur.Rows = cur.Rows[:1]
		regs, err := CompareBenchReports(base, cur, opt)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, r := range regs {
			if strings.Contains(r, "missing") {
				found = true
			}
		}
		if !found {
			t.Errorf("got %v, want a missing-benchmark regression", regs)
		}
	})

	t.Run("crit fields may differ without error", func(t *testing.T) {
		if _, err := CompareBenchReports(base, critRun(), opt); err != nil {
			t.Errorf("timing-quality compare rejected differing crit configs: %v", err)
		}
	})

	t.Run("effort mismatch still errors", func(t *testing.T) {
		cur := critRun()
		cur.Effort = "paper"
		if _, err := CompareBenchReports(base, cur, opt); err == nil {
			t.Error("effort mismatch accepted in timing-quality mode")
		}
	})

	t.Run("no comparable designs fails closed", func(t *testing.T) {
		cur := critRun()
		for i := range cur.Rows {
			cur.Rows[i].WCDPs = 0
		}
		regs, err := CompareBenchReports(base, cur, opt)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, r := range regs {
			if strings.Contains(r, "no comparable designs") {
				found = true
			}
		}
		if !found {
			t.Errorf("got %v, want a no-comparable-designs failure", regs)
		}
	})
}

// TestRunBenchmarkDeterministicQuality runs the same benchmark twice and
// requires bit-identical quality metrics; only wall-clock fields may differ.
func TestRunBenchmarkDeterministicQuality(t *testing.T) {
	e := tinyEffort()
	e.Chains = 1
	r1, err := RunBenchmark("tiny", e, 1, 20)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunBenchmark("tiny", e, 1, 20)
	if err != nil {
		t.Fatal(err)
	}
	// Strip the machine-dependent fields, then require exact equality — note
	// LayoutHash stays in the comparison: it must be bit-identical per seed.
	r1.WallMS, r2.WallMS = 0, 0
	r1.PeakMovesPerSec, r2.PeakMovesPerSec = 0, 0
	r1.AllocsPerMove, r2.AllocsPerMove = 0, 0
	r1.BytesPerMove, r2.BytesPerMove = 0, 0
	r1.RouteWallMS, r2.RouteWallMS = 0, 0
	if r1 != r2 {
		t.Errorf("same-seed benchmark rows differ:\n%+v\n%+v", r1, r2)
	}
	if r1.Moves == 0 || r1.Temps == 0 {
		t.Errorf("benchmark row looks empty: %+v", r1)
	}
}

// TestRunBenchmarkFeedsCallerCollector verifies the effort's own collector
// still sees the run when RunBenchmark layers its private Summary on top.
func TestRunBenchmarkFeedsCallerCollector(t *testing.T) {
	e := tinyEffort()
	sum := metrics.NewSummary()
	e.Metrics = sum
	row, err := RunBenchmark("tiny", e, 1, 20)
	if err != nil {
		t.Fatal(err)
	}
	tot := sum.Totals()
	if tot.Moves != row.Moves {
		t.Errorf("caller collector saw %d moves, row reports %d", tot.Moves, row.Moves)
	}
	if row.PeakMovesPerSec <= 0 {
		t.Errorf("PeakMovesPerSec = %v, want > 0", row.PeakMovesPerSec)
	}
}

func TestCompareRouteGate(t *testing.T) {
	opt := RouteGateCompareOptions()
	base := goldenReport()

	t.Run("backend mismatch allowed with route fields intact", func(t *testing.T) {
		cur := goldenReport()
		cur.RouteBackend = "lagrange"
		cur.RouteIters = 12
		// Cross-backend layouts legitimately differ: none of the per-design
		// hash/WCD/wall/alloc gates may fire in route mode.
		cur.Rows[0].LayoutHash = strings.Repeat("ab", 32)
		cur.Rows[0].WCDPs = base.Rows[0].WCDPs * 1.5
		cur.Rows[0].WallMS = base.Rows[0].WallMS * 10
		cur.Rows[0].AllocsPerMove = base.Rows[0].AllocsPerMove * 10
		regs, err := CompareBenchReports(base, cur, opt)
		if err != nil || len(regs) != 0 {
			t.Errorf("got %v, %v; want no regressions", regs, err)
		}
	})

	t.Run("standard mode rejects backend mismatch", func(t *testing.T) {
		cur := goldenReport()
		cur.RouteBackend = "lagrange"
		if _, err := CompareBenchReports(base, cur, DefaultCompareOptions()); err == nil {
			t.Error("route-backend mismatch accepted by the standard gate")
		}
	})

	t.Run("route failure increase flagged", func(t *testing.T) {
		cur := goldenReport()
		cur.RouteBackend = "lagrange"
		cur.Rows[0].RouteFailed = 1
		regs, err := CompareBenchReports(base, cur, opt)
		if err != nil {
			t.Fatal(err)
		}
		if len(regs) != 1 || !strings.Contains(regs[0], "constructive route failures") {
			t.Errorf("got %v, want one route-failure regression", regs)
		}
	})

	t.Run("unrouted increase still flagged", func(t *testing.T) {
		cur := goldenReport()
		cur.Rows[0].Unrouted = 2
		regs, err := CompareBenchReports(base, cur, opt)
		if err != nil {
			t.Fatal(err)
		}
		if len(regs) != 1 || !strings.Contains(regs[0], "unrouted nets") {
			t.Errorf("got %v, want one unrouted regression", regs)
		}
	})

	t.Run("route wall over slack flagged", func(t *testing.T) {
		cur := goldenReport()
		cur.Rows[0].RouteWallMS = base.Rows[0].RouteWallMS + opt.RouteWallSlackMS + 1
		regs, err := CompareBenchReports(base, cur, opt)
		if err != nil {
			t.Fatal(err)
		}
		if len(regs) != 1 || !strings.Contains(regs[0], "route-scaling gate") {
			t.Errorf("got %v, want one route-scaling regression", regs)
		}
	})

	t.Run("route wall within slack passes", func(t *testing.T) {
		cur := goldenReport()
		cur.Rows[0].RouteWallMS = base.Rows[0].RouteWallMS + opt.RouteWallSlackMS - 1
		regs, err := CompareBenchReports(base, cur, opt)
		if err != nil || len(regs) != 0 {
			t.Errorf("got %v, %v; want no regressions", regs, err)
		}
	})

	t.Run("baseline without route fields fails closed", func(t *testing.T) {
		old := goldenReport()
		old.Rows[0].RouteWallMS = 0
		regs, err := CompareBenchReports(old, goldenReport(), opt)
		if err != nil {
			t.Fatal(err)
		}
		if len(regs) != 1 || !strings.Contains(regs[0], "no comparable designs") {
			t.Errorf("got %v, want the fail-closed route-scaling regression", regs)
		}
	})

	t.Run("route failure gate armed in standard mode", func(t *testing.T) {
		cur := goldenReport()
		cur.Rows[0].RouteFailed = 3
		regs, err := CompareBenchReports(base, cur, DefaultCompareOptions())
		if err != nil {
			t.Fatal(err)
		}
		if len(regs) != 1 || !strings.Contains(regs[0], "constructive route failures") {
			t.Errorf("got %v, want one route-failure regression", regs)
		}
	})
}
