// Package report renders the experiment results as the paper's tables and
// as CSV series for the figures.
package report

import (
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/exper"
)

// Table1 renders the timing-improvement table (paper Table 1), with the
// supporting absolute numbers and analyzer agreement the paper reports in
// prose.
func Table1(w io.Writer, rows []exper.Table1Row) error {
	var b strings.Builder
	b.WriteString("Table 1. Timing Improvement\n")
	b.WriteString("design  #cells  seq WCD(ns)  sim WCD(ns)  %improvement  agreement  seq time   sim time\n")
	b.WriteString("------  ------  -----------  -----------  ------------  ---------  ---------  ---------\n")
	for _, r := range rows {
		if r.Err != "" {
			fmt.Fprintf(&b, "%-6s  %6d  FAILED: %s\n", r.Design, r.Cells, r.Err)
			continue
		}
		fmt.Fprintf(&b, "%-6s  %6d  %11.2f  %11.2f  %12.1f  %9.3f  %9s  %9s\n",
			r.Design, r.Cells, r.SeqWCD/1000, r.SimWCD/1000, r.ImprovePct, r.Agreement,
			round(r.SeqTime), round(r.SimTime))
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Table2 renders the wirability table (paper Table 2).
func Table2(w io.Writer, rows []exper.Table2Row) error {
	var b strings.Builder
	b.WriteString("Table 2. Wirability Improvement (tracks/channel required)\n")
	b.WriteString("design  #cells  seq P&R  sim P&R  %improvement\n")
	b.WriteString("------  ------  -------  -------  ------------\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6s  %6d  %7d  %7d  %12.1f\n",
			r.Design, r.Cells, r.SeqTracks, r.SimTracks, r.ImprovePct)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Figure6CSV writes the annealing-dynamics trace as CSV: one row per
// temperature with the three series the paper plots (plus supporting
// columns).
func Figure6CSV(w io.Writer, samples []core.DynamicsSample) error {
	if _, err := fmt.Fprintln(w,
		"step,temperature,pct_cells_perturbed,pct_nets_globally_unrouted,pct_nets_unrouted,wcd_ps,accept_ratio"); err != nil {
		return err
	}
	for _, s := range samples {
		if _, err := fmt.Fprintf(w, "%d,%g,%.2f,%.2f,%.2f,%.1f,%.3f\n",
			s.Step, s.Temp, 100*s.CellsPerturbed, 100*s.GlobalUnrouted, 100*s.Unrouted,
			s.WCD, s.AcceptRatio); err != nil {
			return err
		}
	}
	return nil
}

// Figure7 renders the large-design completion report.
func Figure7(w io.Writer, r exper.Figure7Result) error {
	status := "100% routed"
	if !r.FullyRouted {
		status = "INCOMPLETE"
	}
	if _, err := fmt.Fprintf(w, "Figure 7. %d-cell design: %s, worst-case delay %.2f ns, %s\n",
		r.Cells, status, r.WCD/1000, round(r.Elapsed)); err != nil {
		return err
	}
	if r.Rendered != "" {
		_, err := io.WriteString(w, r.Rendered)
		return err
	}
	return nil
}

// SegSweep renders the segmentation-architecture study (not a paper table;
// it quantifies the §1 segment-size tradeoff the architecture embodies).
func SegSweep(w io.Writer, rows []exper.SegSweepRow) error {
	var b strings.Builder
	b.WriteString("Segmentation study (simultaneous flow, fixed channel capacity)\n")
	b.WriteString("scheme  pattern               routed  WCD(ns)  antifuses\n")
	b.WriteString("------  --------------------  ------  -------  ---------\n")
	for _, r := range rows {
		status := "yes"
		if !r.FullyRouted {
			status = "NO"
		}
		pat := strings.Trim(strings.ReplaceAll(fmt.Sprint(r.Pattern), " ", ","), "[]")
		fmt.Fprintf(&b, "%-6s  %-20s  %-6s  %7.2f  %9d\n",
			r.Scheme, pat, status, r.WCD/1000, r.Antifuses)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func round(d time.Duration) string {
	return d.Round(10 * time.Millisecond).String()
}
