package report

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/exper"
)

func TestTable1Format(t *testing.T) {
	rows := []exper.Table1Row{
		{Design: "s1", Cells: 181, SeqWCD: 80810, SimWCD: 60258, ImprovePct: 25.4,
			Agreement: 0.954, SeqTime: 500 * time.Millisecond, SimTime: 6 * time.Second},
		{Design: "bad", Cells: 100, Err: "sequential flow left 3 nets unrouted"},
	}
	var buf bytes.Buffer
	if err := Table1(&buf, rows); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table 1", "s1", "80.81", "60.26", "25.4", "0.954", "FAILED", "3 nets unrouted"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestTable2Format(t *testing.T) {
	rows := []exper.Table2Row{
		{Design: "cse", Cells: 156, SeqTracks: 23, SimTracks: 16, ImprovePct: 30.4},
	}
	var buf bytes.Buffer
	if err := Table2(&buf, rows); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table 2", "cse", "23", "16", "30.4"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestFigure6CSV(t *testing.T) {
	samples := []core.DynamicsSample{
		{Step: 0, Temp: 10, CellsPerturbed: 1, GlobalUnrouted: 0.25, Unrouted: 0.5, WCD: 50000, AcceptRatio: 0.9},
		{Step: 1, Temp: 5, CellsPerturbed: 0.4, GlobalUnrouted: 0, Unrouted: 0.1, WCD: 45000, AcceptRatio: 0.5},
	}
	var buf bytes.Buffer
	if err := Figure6CSV(&buf, samples); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("want header + 2 rows, got %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "step,temperature,") {
		t.Errorf("bad header: %s", lines[0])
	}
	if !strings.Contains(lines[1], "100.00") || !strings.Contains(lines[1], "50.00") {
		t.Errorf("percentages not scaled: %s", lines[1])
	}
}

func TestFigure7Format(t *testing.T) {
	var buf bytes.Buffer
	err := Figure7(&buf, exper.Figure7Result{
		Design: "big529", Cells: 529, FullyRouted: true, WCD: 150000, Elapsed: 90 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"529-cell", "100% routed", "150.00 ns"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in %q", want, out)
		}
	}
	buf.Reset()
	_ = Figure7(&buf, exper.Figure7Result{Cells: 529, FullyRouted: false})
	if !strings.Contains(buf.String(), "INCOMPLETE") {
		t.Error("incomplete status not rendered")
	}
}
