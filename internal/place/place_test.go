package place

import (
	"math/rand"
	"testing"

	"repro/internal/arch"
	"repro/internal/layout"
	"repro/internal/netgen"
	"repro/internal/netlist"
)

func testDesign(t *testing.T) (*arch.Arch, *netlist.Netlist) {
	t.Helper()
	nl, err := netgen.Generate(netgen.Params{Name: "p", Inputs: 4, Outputs: 3, Seq: 2, Comb: 40, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	return arch.MustNew(arch.Default(6, 12, 12)), nl
}

func totalWL(p *layout.Placement) float64 {
	wl := 0.0
	for id := range p.NL.Nets {
		wl += p.EstLength(int32(id))
	}
	return wl
}

func TestPlaceImprovesWirelength(t *testing.T) {
	a, nl := testDesign(t)
	rnd, err := layout.NewRandom(a, nl, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	randomWL := totalWL(rnd)

	p, res, err := Place(a, nl, Config{Seed: 7, MovesPerCell: 8, MaxTemps: 120})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("placement illegal after annealing: %v", err)
	}
	if res.Wirelength >= randomWL {
		t.Errorf("annealed WL %.0f not better than random %.0f", res.Wirelength, randomWL)
	}
	// Expect a substantial (>25%) improvement over random on this size.
	if res.Wirelength > 0.75*randomWL {
		t.Errorf("annealed WL %.0f, want < 75%% of random %.0f", res.Wirelength, randomWL)
	}
	if got := totalWL(p); got != res.Wirelength {
		t.Errorf("reported WL %.3f disagrees with recount %.3f", res.Wirelength, got)
	}
}

func TestPlaceDeterministic(t *testing.T) {
	a, nl := testDesign(t)
	run := func() float64 {
		_, res, err := Place(a, nl, Config{Seed: 3, MovesPerCell: 4, MaxTemps: 40})
		if err != nil {
			t.Fatal(err)
		}
		return res.Wirelength
	}
	if run() != run() {
		t.Error("same seed produced different placements")
	}
}

func TestIncrementalCostMatchesRecount(t *testing.T) {
	a, nl := testDesign(t)
	p, err := layout.NewRandom(a, nl, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	pr := newProblem(p, func() Config { c := Config{}; c.setDefaults(); return c }())
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 500; i++ {
		pr.Propose(rng)
		if rng.Intn(2) == 0 {
			pr.Accept()
		} else {
			pr.Reject()
		}
	}
	// Recount from scratch.
	fresh := newProblem(p, pr.cfg)
	if diff := pr.wl - fresh.wl; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("incremental WL drifted: %.6f vs %.6f", pr.wl, fresh.wl)
	}
	if diff := pr.penalty - fresh.penalty; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("incremental penalty drifted: %.6f vs %.6f", pr.penalty, fresh.penalty)
	}
	for ch := range pr.loads {
		if d := pr.loads[ch] - fresh.loads[ch]; d > 1e-6 || d < -1e-6 {
			t.Errorf("channel %d load drifted: %.6f vs %.6f", ch, pr.loads[ch], fresh.loads[ch])
		}
	}
	if err := p.Validate(); err != nil {
		t.Error(err)
	}
}

func TestCongestionPenaltyActivates(t *testing.T) {
	// Tiny capacity forces overflow to be visible.
	nl, err := netgen.Generate(netgen.Params{Name: "c", Inputs: 3, Outputs: 2, Seq: 1, Comb: 20, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	a := arch.MustNew(arch.Default(3, 10, 1)) // single track per channel
	p, err := layout.NewRandom(a, nl, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{}
	cfg.setDefaults()
	pr := newProblem(p, cfg)
	if pr.penalty <= 0 {
		t.Error("expected congestion overflow with 1 track/channel")
	}
	if pr.Cost() <= pr.wl {
		t.Error("penalty not reflected in cost")
	}
}
