// Package place implements the sequential baseline's placer: a
// TimberWolfSC-style simulated-annealing placement (the paper's reference
// [6], the basis of the Texas Instruments tool compared against) that
// minimizes estimated wirelength plus a channel-congestion penalty. Like the
// production flow the paper measures, it is deliberately blind to the
// channel segmentation and to timing — that blindness is exactly what the
// simultaneous approach exploits.
package place

import (
	"math/rand"

	"repro/internal/anneal"
	"repro/internal/arch"
	"repro/internal/layout"
	"repro/internal/netlist"
)

// Config tunes the baseline placer.
type Config struct {
	Seed             int64
	MovesPerCell     int     // moves per temperature = MovesPerCell × #cells (default 12)
	CongestionWeight float64 // weight of the congestion-overflow penalty (default 2.0)
	CapacityFactor   float64 // usable fraction of per-bin track capacity (default 0.75)
	BinWidth         int     // columns per congestion bin (default 4)
	MaxTemps         int     // annealing temperature cap (default 250)

	// NetWeights, when non-nil, scales each net's wirelength contribution —
	// the classic criticality-weighted timing-driven placement (paper §2.1:
	// "placers often use initial critical path/net estimates to prioritize
	// the nets"). nil means uniform weights.
	NetWeights []float64
}

func (c *Config) setDefaults() {
	if c.MovesPerCell <= 0 {
		c.MovesPerCell = 12
	}
	if c.CongestionWeight <= 0 {
		c.CongestionWeight = 2.0
	}
	if c.CapacityFactor <= 0 || c.CapacityFactor > 1 {
		c.CapacityFactor = 0.75
	}
	if c.BinWidth <= 0 {
		c.BinWidth = 4
	}
	if c.MaxTemps <= 0 {
		c.MaxTemps = 250
	}
}

// Result summarizes a placement run.
type Result struct {
	Wirelength float64
	Penalty    float64
	Anneal     anneal.Result
}

// Place anneals a random initial placement of nl onto a and returns it.
func Place(a *arch.Arch, nl *netlist.Netlist, cfg Config) (*layout.Placement, Result, error) {
	cfg.setDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	p, err := layout.NewRandom(a, nl, rng)
	if err != nil {
		return nil, Result{}, err
	}
	pr := newProblem(p, cfg)
	ares := anneal.Run(pr, anneal.Config{
		Seed:         cfg.Seed + 1,
		MovesPerTemp: cfg.MovesPerCell * nl.NumCells(),
		MaxTemps:     cfg.MaxTemps,
	}, nil)
	return p, Result{Wirelength: pr.wl, Penalty: pr.penalty, Anneal: ares}, nil
}

// netContrib caches one net's current contribution to the cost terms.
type netContrib struct {
	wl   float64
	bins []chLen
}

// chLen is a net's occupied length within one (channel, column-bin) cell of
// the congestion map.
type chLen struct {
	bin int // flattened channel*nbins + bin index
	len float64
}

type problem struct {
	p   *layout.Placement
	cfg Config

	wl      float64
	nbins   int       // congestion bins per channel
	loads   []float64 // per (channel, bin): occupied interval length
	penalty float64   // sum over bins of overflow²
	cap     float64   // usable capacity per bin

	contrib []netContrib

	// Move journal.
	movedA, movedB layout.Loc
	touched        []int32
	oldContrib     []netContrib
	oldWL          float64
	oldPenalty     float64
	netSeen        []uint32
	epoch          uint32
	scratch        []int32
}

func newProblem(p *layout.Placement, cfg Config) *problem {
	nbins := (p.A.Cols + cfg.BinWidth - 1) / cfg.BinWidth
	pr := &problem{
		p:       p,
		cfg:     cfg,
		nbins:   nbins,
		loads:   make([]float64, p.A.Channels()*nbins),
		contrib: make([]netContrib, p.NL.NumNets()),
		netSeen: make([]uint32, p.NL.NumNets()),
		cap:     cfg.CapacityFactor * float64(p.A.Tracks) * float64(cfg.BinWidth),
	}
	for id := range pr.contrib {
		c := pr.computeContrib(int32(id))
		pr.contrib[id] = c
		pr.wl += c.wl
		for _, cl := range c.bins {
			pr.loads[cl.bin] += cl.len
		}
	}
	for _, l := range pr.loads {
		pr.penalty += pr.overflow(l)
	}
	return pr
}

func (pr *problem) overflow(load float64) float64 {
	d := load - pr.cap
	if d <= 0 {
		return 0
	}
	return d * d
}

// computeContrib derives a net's wirelength and per-channel occupied length
// from the current placement (matching groute.Needs geometry).
func (pr *problem) computeContrib(id int32) netContrib {
	nl := pr.p.NL
	net := &nl.Nets[id]
	if len(net.Sinks) == 0 {
		return netContrib{}
	}
	var c netContrib
	type iv struct{ lo, hi int }
	byCh := make(map[int]iv, 2)
	add := func(ch, col int) {
		v, ok := byCh[ch]
		if !ok {
			byCh[ch] = iv{col, col}
			return
		}
		if col < v.lo {
			v.lo = col
		}
		if col > v.hi {
			v.hi = col
		}
		byCh[ch] = v
	}
	ch, col := pr.p.PinPos(net.Driver)
	add(ch, col)
	for _, s := range net.Sinks {
		ch, col = pr.p.PinPos(s)
		add(ch, col)
	}
	// A multi-channel net's intervals will be extended to its feedthrough
	// column by the global router; model that with the bounding-box center
	// the router prefers.
	if len(byCh) > 1 {
		box := pr.p.NetBox(id)
		center := (box.ColLo + box.ColHi) / 2
		for ch, v := range byCh {
			if center < v.lo {
				v.lo = center
			}
			if center > v.hi {
				v.hi = center
			}
			byCh[ch] = v
		}
	}
	c.wl = pr.p.EstLength(id)
	if pr.cfg.NetWeights != nil {
		c.wl *= pr.cfg.NetWeights[id]
	}
	w := pr.cfg.BinWidth
	for ch, v := range byCh {
		for b := v.lo / w; b <= v.hi/w; b++ {
			lo, hi := b*w, (b+1)*w-1
			if v.lo > lo {
				lo = v.lo
			}
			if v.hi < hi {
				hi = v.hi
			}
			c.bins = append(c.bins, chLen{bin: ch*pr.nbins + b, len: float64(hi - lo + 1)})
		}
	}
	return c
}

func (pr *problem) Cost() float64 {
	return pr.wl + pr.cfg.CongestionWeight*pr.penalty
}

func (pr *problem) Propose(rng *rand.Rand) float64 {
	a := pr.p.A
	// Pick a random occupied slot and a random other slot (swap or translate).
	var la layout.Loc
	for {
		la = layout.Loc{Row: rng.Intn(a.Rows), Col: rng.Intn(a.Cols)}
		if pr.p.CellAt(la.Row, la.Col) >= 0 {
			break
		}
	}
	lb := layout.Loc{Row: rng.Intn(a.Rows), Col: rng.Intn(a.Cols)}
	pr.movedA, pr.movedB = la, lb
	before := pr.Cost()
	pr.oldWL, pr.oldPenalty = pr.wl, pr.penalty

	// Collect affected nets before the swap.
	pr.epoch++
	pr.touched = pr.touched[:0]
	pr.oldContrib = pr.oldContrib[:0]
	pr.collectNets(pr.p.CellAt(la.Row, la.Col))
	pr.collectNets(pr.p.CellAt(lb.Row, lb.Col))

	pr.p.Swap(la, lb)

	for _, id := range pr.touched {
		old := pr.contrib[id]
		pr.oldContrib = append(pr.oldContrib, old)
		pr.wl -= old.wl
		for _, cl := range old.bins {
			pr.penalty -= pr.overflow(pr.loads[cl.bin])
			pr.loads[cl.bin] -= cl.len
			pr.penalty += pr.overflow(pr.loads[cl.bin])
		}
		nc := pr.computeContrib(id)
		pr.contrib[id] = nc
		pr.wl += nc.wl
		for _, cl := range nc.bins {
			pr.penalty -= pr.overflow(pr.loads[cl.bin])
			pr.loads[cl.bin] += cl.len
			pr.penalty += pr.overflow(pr.loads[cl.bin])
		}
	}
	return pr.Cost() - before
}

func (pr *problem) collectNets(cell int32) {
	if cell < 0 {
		return
	}
	c := &pr.p.NL.Cells[cell]
	pr.scratch = pr.scratch[:0]
	if c.Out >= 0 {
		pr.scratch = append(pr.scratch, c.Out)
	}
	for _, in := range c.In {
		if in >= 0 {
			pr.scratch = append(pr.scratch, in)
		}
	}
	for _, id := range pr.scratch {
		if pr.netSeen[id] != pr.epoch {
			pr.netSeen[id] = pr.epoch
			pr.touched = append(pr.touched, id)
		}
	}
}

func (pr *problem) Accept() {}

func (pr *problem) Reject() {
	pr.p.Swap(pr.movedA, pr.movedB)
	for i, id := range pr.touched {
		nc := pr.contrib[id]
		for _, cl := range nc.bins {
			pr.loads[cl.bin] -= cl.len
		}
		old := pr.oldContrib[i]
		pr.contrib[id] = old
		for _, cl := range old.bins {
			pr.loads[cl.bin] += cl.len
		}
	}
	pr.wl = pr.oldWL
	pr.penalty = pr.oldPenalty
}

var _ anneal.Problem = (*problem)(nil)
