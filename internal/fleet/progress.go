package fleet

import (
	"sync"

	"repro/internal/metrics"
)

// defaultProgressCap bounds a ProgressBuffer between drains. A stalled
// heartbeat loop must not let a chatty optimizer run grow the buffer without
// bound; past the cap the oldest events are dropped — the coordinator's SSE
// stream loses some mid-run detail, never the terminal records, because the
// final drain rides the complete call.
const defaultProgressCap = 4096

// ProgressBuffer is the worker-side metrics.Collector: optimizer progress
// accumulates here between heartbeats, and Drain hands the batch to the
// wire. Safe for concurrent use — parallel annealing chains record into it
// while the heartbeat loop drains.
type ProgressBuffer struct {
	mu      sync.Mutex
	events  []ProgressEvent
	max     int
	dropped int64
}

// NewProgressBuffer builds a buffer bounded to max events (<= 0 selects the
// default).
func NewProgressBuffer(max int) *ProgressBuffer {
	if max <= 0 {
		max = defaultProgressCap
	}
	return &ProgressBuffer{max: max}
}

func (b *ProgressBuffer) append(ev ProgressEvent) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.events) >= b.max {
		b.events = b.events[1:]
		b.dropped++
	}
	b.events = append(b.events, ev)
}

// RecordTemp implements metrics.Collector.
func (b *ProgressBuffer) RecordTemp(r metrics.TempRecord) {
	b.append(ProgressEvent{Type: "temp", Temp: &r})
}

// RecordPhase implements metrics.Collector.
func (b *ProgressBuffer) RecordPhase(r metrics.PhaseRecord) {
	b.append(ProgressEvent{Type: "phase", Phase: &PhaseProgress{
		Name: r.Phase.String(), ElapsedNS: int64(r.Elapsed),
	}})
}

// RecordChain implements metrics.Collector.
func (b *ProgressBuffer) RecordChain(r metrics.ChainRecord) {
	b.append(ProgressEvent{Type: "chain", Chain: &r})
}

// Drain removes and returns everything buffered so far.
func (b *ProgressBuffer) Drain() []ProgressEvent {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := b.events
	b.events = nil
	return out
}

var _ metrics.Collector = (*ProgressBuffer)(nil)
