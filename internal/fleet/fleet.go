// Package fleet is the distributed work-dispatch layer that turns the
// single-process fpgaprd daemon into a coordinator/worker fleet:
//
//   - Scheduler: the queue discipline that replaces the plain FIFO — three
//     priority classes (low/normal/high) with aging so low-priority work
//     cannot starve, and per-client weighted round-robin fair queueing
//     inside each class.
//   - LeaseManager + Registry: job leases with heartbeat renewal and
//     expiry (a crashed or partitioned worker's job is detected and handed
//     back for re-enqueue), plus worker registration and drain.
//   - Wire protocol (wire.go): the small HTTP/JSON messages workers and
//     coordinator exchange — register, lease, heartbeat, complete — with
//     strict decoding and validation (fuzzed by FuzzLeaseProtocol).
//   - Worker (worker.go): the lease → execute → heartbeat → complete loop
//     that cmd/fpgaprw and the in-process test harness both run; the actual
//     optimizer run is injected as an Executor so this package never
//     depends on the server.
//
// The package is deliberately mechanism, not policy: it knows nothing about
// netlists or layouts. Job payloads travel as opaque JSON (the coordinator's
// validated JobRequest), results as opaque layout bytes plus stats JSON, and
// progress as metrics records. Retry safety comes from the layer above: jobs
// are deterministic for their cache key, so a lease that expires and runs
// again elsewhere produces bit-identical bytes.
package fleet

import "fmt"

// Priority is a job's scheduling class. Higher classes are always served
// first; aging promotes waiting jobs one class per AgingStep so a sustained
// high-priority load cannot starve the low class. Priority is deliberately
// not part of the result cache key: it changes when work runs, never what is
// computed.
type Priority uint8

const (
	PriorityLow Priority = iota
	PriorityNormal
	PriorityHigh

	// numPriorities bounds per-class arrays.
	numPriorities
)

// ParsePriority maps the wire spelling of a priority class. The empty string
// selects PriorityNormal (the documented default for POST /v1/jobs); any
// other unknown spelling is an error the caller should surface as a 400.
func ParsePriority(s string) (Priority, error) {
	switch s {
	case "":
		return PriorityNormal, nil
	case "low":
		return PriorityLow, nil
	case "normal":
		return PriorityNormal, nil
	case "high":
		return PriorityHigh, nil
	}
	return PriorityNormal, fmt.Errorf("unknown priority %q (want low, normal or high)", s)
}

// String returns the wire spelling of the class.
func (p Priority) String() string {
	switch p {
	case PriorityLow:
		return "low"
	case PriorityHigh:
		return "high"
	}
	return "normal"
}
