package fleet

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
)

// newLike returns a fresh zero value of the same message type as m.
func newLike(m Message) Message {
	return reflect.New(reflect.TypeOf(m).Elem()).Interface().(Message)
}

// FuzzLeaseProtocol hammers the fleet wire codec with arbitrary bytes against
// every message type: decoding must never panic, and any input a type
// accepts must survive a canonical round trip — re-marshaling the decoded
// value, decoding that, and marshaling again yields identical bytes. (The
// comparison is marshal-of-decode vs marshal-of-decode-of-marshal rather
// than input vs re-marshal because strict decoding still admits cosmetic
// variation — field order, whitespace inside RawMessage payloads — that the
// first marshal canonicalizes away.)
func FuzzLeaseProtocol(f *testing.F) {
	for _, m := range validMessages() {
		data, err := json.Marshal(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"worker_id":"w1","status":"done","layout":"bm90IGI2NA=="}`))
	f.Add([]byte(`{"worker_id":"w1","progress":[{"type":"temp","temp":{}}]}`))
	f.Add([]byte(`null`))
	f.Add([]byte{0xff, 0xfe})

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, proto := range validMessages() {
			m := newLike(proto)
			if err := UnmarshalMessage(data, m); err != nil {
				continue // rejected input: only the no-panic property applies
			}
			gen2, err := json.Marshal(m)
			if err != nil {
				t.Fatalf("%T accepted %q but won't re-marshal: %v", m, data, err)
			}
			again := newLike(proto)
			if err := UnmarshalMessage(gen2, again); err != nil {
				t.Fatalf("%T re-decode of own marshal %q failed: %v", m, gen2, err)
			}
			gen3, err := json.Marshal(again)
			if err != nil {
				t.Fatalf("%T re-marshal failed: %v", m, err)
			}
			if !bytes.Equal(gen2, gen3) {
				t.Fatalf("%T round trip not canonical:\n gen2 %s\n gen3 %s", m, gen2, gen3)
			}
		}
	})
}
