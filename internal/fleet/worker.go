package fleet

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// ExecResult is one finished optimizer run, as the Executor reports it:
// either Canceled (the cancel channel fired and the run stopped at a
// boundary), or a done result carrying the serialized layout plus stats
// JSON. Errors travel on the Executor's error return instead.
type ExecResult struct {
	Canceled bool
	Layout   []byte
	Stats    json.RawMessage
}

// Executor runs one leased job: spec is the coordinator's validated job
// request verbatim, cancel fires when the coordinator asks the run to stop
// (or the worker is killed), and progress receives per-temperature records
// for the heartbeat loop to ship. cmd/fpgaprw injects the real optimizer;
// tests inject wrappers.
type Executor func(spec json.RawMessage, cancel <-chan struct{}, progress metrics.Collector) (ExecResult, error)

// WorkerConfig wires a Worker to its coordinator.
type WorkerConfig struct {
	// Coordinator is the coordinator's base URL (http://host:port).
	Coordinator string
	// Name is the worker's display name (required).
	Name string
	// Execute runs one leased job (required).
	Execute Executor
	// Client is the HTTP client (nil selects a default with a timeout
	// comfortably above PollWait).
	Client *http.Client
	// Heartbeat overrides the coordinator-advertised renewal cadence
	// (0 = follow the coordinator).
	Heartbeat time.Duration
	// PollWait is the lease long-poll window (default 2s, capped at the
	// protocol's MaxWaitMS).
	PollWait time.Duration
	// RetryEvery spaces retries after transport errors (default 200ms).
	RetryEvery time.Duration
}

// Worker is the lease → execute → heartbeat → complete loop. Run blocks
// until Drain (finish the current job, then exit), Kill (abandon everything
// mid-flight — the crash-simulation hook the fault-injection tests use), or
// the coordinator refuses the worker as draining.
type Worker struct {
	cfg       WorkerConfig
	client    *http.Client
	heartbeat time.Duration

	id string

	stopOnce sync.Once
	stop     chan struct{}
	killOnce sync.Once
	kill     chan struct{}
	done     chan struct{}

	// stallHB simulates a partitioned worker: the run continues but
	// heartbeats stop, so the coordinator expires the lease out from under
	// a worker that is still computing.
	stallHB atomic.Bool
}

// NewWorker builds a worker; Run starts it.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.Coordinator == "" {
		return nil, errors.New("fleet: worker needs a coordinator URL")
	}
	if cfg.Name == "" {
		return nil, errors.New("fleet: worker needs a name")
	}
	if cfg.Execute == nil {
		return nil, errors.New("fleet: worker needs an executor")
	}
	if cfg.PollWait <= 0 {
		cfg.PollWait = 2 * time.Second
	}
	if cfg.PollWait > MaxWaitMS*time.Millisecond {
		cfg.PollWait = MaxWaitMS * time.Millisecond
	}
	if cfg.RetryEvery <= 0 {
		cfg.RetryEvery = 200 * time.Millisecond
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: cfg.PollWait + 30*time.Second}
	}
	return &Worker{
		cfg:    cfg,
		client: client,
		stop:   make(chan struct{}),
		kill:   make(chan struct{}),
		done:   make(chan struct{}),
	}, nil
}

// ID returns the coordinator-assigned worker ID (empty before Run
// registers).
func (w *Worker) ID() string { return w.id }

// Drain asks the worker to finish its current job and exit.
func (w *Worker) Drain() { w.stopOnce.Do(func() { close(w.stop) }) }

// Kill abandons everything immediately: heartbeats stop, the in-flight run
// is cancelled and its result discarded without a complete call. From the
// coordinator's side this is indistinguishable from a crash — the lease
// expires and the job is re-enqueued elsewhere.
func (w *Worker) Kill() { w.killOnce.Do(func() { close(w.kill) }) }

// StallHeartbeats freezes (or resumes) heartbeat sending while the run
// continues — the partitioned-worker fault the e2e tests inject.
func (w *Worker) StallHeartbeats(stall bool) { w.stallHB.Store(stall) }

// Done is closed when Run returns.
func (w *Worker) Done() <-chan struct{} { return w.done }

// errDraining reports the coordinator refusing leases because this worker
// was drained.
var errDraining = errors.New("fleet: worker drained by coordinator")

// Run registers with the coordinator and serves leases until Drain, Kill or
// a coordinator-side drain. Transport errors back off and retry — a worker
// outlives coordinator restarts.
func (w *Worker) Run() error {
	defer close(w.done)
	if err := w.register(); err != nil {
		return err
	}
	for {
		if w.interrupted() {
			return nil
		}
		grant, ok, err := w.acquire()
		switch {
		case errors.Is(err, errDraining):
			return nil
		case err != nil:
			if !w.sleep(w.cfg.RetryEvery) {
				return nil
			}
			continue
		case !ok:
			continue // long poll elapsed with no work
		}
		w.runLease(grant)
	}
}

func (w *Worker) interrupted() bool {
	select {
	case <-w.stop:
		return true
	case <-w.kill:
		return true
	default:
		return false
	}
}

// sleep waits d, reporting false when the worker was stopped or killed.
func (w *Worker) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-w.stop:
		return false
	case <-w.kill:
		return false
	case <-t.C:
		return true
	}
}

// register announces the worker, retrying transport errors until admitted
// or interrupted.
func (w *Worker) register() error {
	for {
		var resp RegisterResponse
		code, err := w.post("/v1/fleet/workers", &RegisterRequest{Name: w.cfg.Name}, &resp)
		if err == nil && code == http.StatusOK {
			if err := resp.Validate(); err != nil {
				return err
			}
			w.id = resp.WorkerID
			w.heartbeat = time.Duration(resp.HeartbeatMS) * time.Millisecond
			if w.cfg.Heartbeat > 0 {
				w.heartbeat = w.cfg.Heartbeat
			}
			return nil
		}
		if err == nil {
			return fmt.Errorf("fleet: register: coordinator answered %d", code)
		}
		if !w.sleep(w.cfg.RetryEvery) {
			return nil
		}
	}
}

// acquire asks for one lease, long-polling PollWait server-side.
func (w *Worker) acquire() (LeaseGrant, bool, error) {
	var grant LeaseGrant
	code, err := w.post("/v1/fleet/lease", &LeaseRequest{
		WorkerID: w.id,
		WaitMS:   w.cfg.PollWait.Milliseconds(),
	}, &grant)
	if err != nil {
		return LeaseGrant{}, false, err
	}
	switch code {
	case http.StatusOK:
		if err := grant.Validate(); err != nil {
			return LeaseGrant{}, false, err
		}
		return grant, true, nil
	case http.StatusNoContent:
		return LeaseGrant{}, false, nil
	case http.StatusConflict:
		return LeaseGrant{}, false, errDraining
	case http.StatusNotFound:
		// Coordinator restarted and lost the registration: re-register.
		if err := w.register(); err != nil {
			return LeaseGrant{}, false, err
		}
		return LeaseGrant{}, false, nil
	}
	return LeaseGrant{}, false, fmt.Errorf("fleet: lease: coordinator answered %d", code)
}

// runLease executes one granted job with a heartbeat loop alongside, then
// completes the lease (unless killed — a killed worker vanishes silently).
func (w *Worker) runLease(grant LeaseGrant) {
	cancel := make(chan struct{})
	var cancelOnce sync.Once
	cancelFn := func() { cancelOnce.Do(func() { close(cancel) }) }
	buf := NewProgressBuffer(0)
	hbStop := make(chan struct{})
	hbDone := make(chan struct{})
	go w.heartbeatLoop(grant.LeaseID, buf, cancelFn, hbStop, hbDone)

	res, err := w.cfg.Execute(grant.Spec, cancel, buf)
	close(hbStop)
	<-hbDone
	select {
	case <-w.kill:
		return // abandoned: no completion, the lease dies of expiry
	default:
	}
	w.complete(grant.LeaseID, res, err, buf.Drain())
}

// heartbeatLoop renews the lease and ships buffered progress every
// w.heartbeat until hbStop. A Cancel ack or a 410 (lease lost) cancels the
// run; transport errors are skipped — the lease tolerates several missed
// beats before expiring.
func (w *Worker) heartbeatLoop(leaseID string, buf *ProgressBuffer, cancelFn func(), hbStop, hbDone chan struct{}) {
	defer close(hbDone)
	hb := w.heartbeat
	if hb <= 0 {
		hb = time.Second
	}
	t := time.NewTicker(hb)
	defer t.Stop()
	for {
		select {
		case <-hbStop:
			return
		case <-w.kill:
			cancelFn()
			return
		case <-t.C:
			if w.stallHB.Load() {
				continue
			}
			var ack HeartbeatResponse
			code, err := w.post("/v1/fleet/leases/"+leaseID+"/heartbeat", &HeartbeatRequest{
				WorkerID: w.id,
				Progress: buf.Drain(),
			}, &ack)
			if err != nil {
				continue
			}
			if code == http.StatusGone {
				// The lease expired under us (coordinator re-enqueued the
				// job); stop burning cycles on a result nobody will accept.
				cancelFn()
				return
			}
			if code == http.StatusOK && ack.Cancel {
				cancelFn()
			}
		}
	}
}

// complete retires the lease with the run's outcome. A 410 means the lease
// expired first and another worker owns the job now — the result is simply
// dropped (it would have been bit-identical anyway). Transport errors retry
// a few times; an unreachable coordinator then behaves exactly like a
// worker crash, which the lease protocol already covers.
func (w *Worker) complete(leaseID string, res ExecResult, execErr error, tail []ProgressEvent) {
	req := CompleteRequest{WorkerID: w.id, Progress: tail}
	switch {
	case execErr != nil:
		req.Status = StatusFailed
		req.Error = execErr.Error()
		if len(req.Error) > maxErrorLen {
			req.Error = req.Error[:maxErrorLen]
		}
	case res.Canceled:
		req.Status = StatusCanceled
	default:
		req.Status = StatusDone
		req.Layout = res.Layout
		req.Stats = res.Stats
	}
	for attempt := 0; attempt < 5; attempt++ {
		if _, err := w.post("/v1/fleet/leases/"+leaseID+"/complete", &req, nil); err == nil {
			return
		}
		if !w.sleep(w.cfg.RetryEvery) {
			return
		}
	}
}

// post sends one JSON message and decodes a 200 response into resp (when
// non-nil). Non-200 statuses are returned for the caller to interpret; only
// transport failures are errors.
func (w *Worker) post(path string, req Message, resp Message) (int, error) {
	if err := req.Validate(); err != nil {
		return 0, err
	}
	body, err := json.Marshal(req)
	if err != nil {
		return 0, err
	}
	hreq, err := http.NewRequest(http.MethodPost, w.cfg.Coordinator+path, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hresp, err := w.client.Do(hreq)
	if err != nil {
		return 0, err
	}
	defer func() {
		io.Copy(io.Discard, hresp.Body)
		hresp.Body.Close()
	}()
	if hresp.StatusCode == http.StatusOK && resp != nil {
		data, err := io.ReadAll(io.LimitReader(hresp.Body, 64<<20))
		if err != nil {
			return 0, err
		}
		if err := UnmarshalMessage(data, resp); err != nil {
			return 0, err
		}
	}
	return hresp.StatusCode, nil
}
