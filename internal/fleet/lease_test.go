package fleet

import (
	"testing"
	"time"
)

// TestLeaseLifecycle: grant → renew pushes the deadline → complete retires
// exactly once.
func TestLeaseLifecycle(t *testing.T) {
	clk := newTestClock()
	m := NewLeaseManager(10*time.Second, clk.Now)

	l := m.Grant("j1", "w1")
	if l.Job != "j1" || l.Worker != "w1" || l.ID == "" {
		t.Fatalf("grant = %+v", l)
	}
	if m.Active() != 1 {
		t.Fatalf("Active = %d after grant, want 1", m.Active())
	}

	// Renew at t+8 pushes expiry to t+18: the original deadline passing must
	// not expire it.
	clk.Advance(8 * time.Second)
	if _, ok := m.Renew(l.ID); !ok {
		t.Fatal("renew of live lease refused")
	}
	clk.Advance(4 * time.Second) // t+12: past the original t+10 deadline
	if exp := m.Expire(clk.Now()); len(exp) != 0 {
		t.Fatalf("renewed lease expired: %+v", exp)
	}

	got, ok := m.Complete(l.ID)
	if !ok || got.Job != "j1" {
		t.Fatalf("complete = %+v, %v", got, ok)
	}
	if _, ok := m.Complete(l.ID); ok {
		t.Fatal("second complete succeeded; must be exactly-once")
	}
	if _, ok := m.Renew(l.ID); ok {
		t.Fatal("renew of completed lease succeeded")
	}
	c := m.Counters()
	if c.Granted != 1 || c.Renewed != 1 || c.Completed != 1 || c.Expired != 0 {
		t.Fatalf("counters = %+v", c)
	}
}

// TestLeaseExpiry: an unrenewed lease is harvested once, and the original
// holder's late complete is refused — the exactly-once race the fault
// injection e2e depends on.
func TestLeaseExpiry(t *testing.T) {
	clk := newTestClock()
	m := NewLeaseManager(5*time.Second, clk.Now)
	l1 := m.Grant("j1", "w1")
	m.Grant("j2", "w2")

	clk.Advance(3 * time.Second)
	m.Renew(l1.ID) // only j1's holder heartbeats

	clk.Advance(3 * time.Second) // t+6: j2's lease (deadline t+5) is dead
	exp := m.Expire(clk.Now())
	if len(exp) != 1 || exp[0].Job != "j2" {
		t.Fatalf("Expire harvested %+v, want just j2", exp)
	}
	if exp2 := m.Expire(clk.Now()); len(exp2) != 0 {
		t.Fatalf("second harvest returned %+v; expiry must be exactly-once", exp2)
	}
	if _, ok := m.Complete(exp[0].ID); ok {
		t.Fatal("complete of an expired lease succeeded; stale results must be refused")
	}
	if _, ok := m.Complete(l1.ID); !ok {
		t.Fatal("renewed lease refused its completion")
	}
	c := m.Counters()
	if c.Expired != 1 || c.Completed != 1 {
		t.Fatalf("counters = %+v", c)
	}
}

// TestRegistry: identity, liveness windows and drain state.
func TestRegistry(t *testing.T) {
	clk := newTestClock()
	r := NewRegistry(clk.Now)
	w1 := r.Register("alpha")
	w2 := r.Register("beta")
	if w1.ID == w2.ID {
		t.Fatalf("duplicate worker IDs %q", w1.ID)
	}
	if _, ok := r.Get(w1.ID); !ok {
		t.Fatal("registered worker not found")
	}
	if r.Touch("nope") || r.Drain("nope") {
		t.Fatal("unknown worker touched/drained")
	}

	clk.Advance(time.Minute)
	r.Touch(w1.ID) // only alpha stays live
	reg, live, draining := r.Counts(30 * time.Second)
	if reg != 2 || live != 1 || draining != 0 {
		t.Fatalf("Counts = (%d, %d, %d), want (2, 1, 0)", reg, live, draining)
	}

	if !r.Drain(w2.ID) {
		t.Fatal("drain refused")
	}
	if w, _ := r.Get(w2.ID); !w.Draining {
		t.Fatal("drained worker not flagged")
	}
	_, _, draining = r.Counts(30 * time.Second)
	if draining != 1 {
		t.Fatalf("draining = %d, want 1", draining)
	}

	r.RecordCompletion(w2.ID)
	if w, _ := r.Get(w2.ID); w.Completed != 1 {
		t.Fatalf("Completed = %d, want 1", w.Completed)
	}
	// RecordCompletion also counts as liveness.
	_, live, _ = r.Counts(30 * time.Second)
	if live != 2 {
		t.Fatalf("live = %d after completion touch, want 2", live)
	}
}
