// The coordinator ↔ worker wire protocol: five HTTP/JSON exchanges.
//
//	POST /v1/fleet/workers              RegisterRequest  → RegisterResponse
//	POST /v1/fleet/workers/{id}/drain   (empty)          → 200
//	POST /v1/fleet/lease                LeaseRequest     → LeaseGrant | 204 no work | 409 draining
//	POST /v1/fleet/leases/{id}/heartbeat HeartbeatRequest → HeartbeatResponse | 410 lease lost
//	POST /v1/fleet/leases/{id}/complete CompleteRequest  → 200 | 410 stale lease
//
// Every message decodes strictly (unknown fields and trailing data are
// errors) and validates its invariants; FuzzLeaseProtocol holds the codec to
// never-panic plus canonical round-trip. Job payloads (Spec) and result
// stats travel as opaque JSON so this package stays independent of the
// server's request schema.
package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"

	"repro/internal/metrics"
)

// Wire bounds: hostile or corrupt messages must not cost unbounded memory
// or smuggle unvalidatable garbage past the handlers.
const (
	maxNameLen  = 128
	maxErrorLen = 4096
	// MaxWaitMS caps a lease long-poll.
	MaxWaitMS = 60_000
)

// Message is any wire message: strict decoding via UnmarshalMessage ends
// with the message validating its own invariants.
type Message interface{ Validate() error }

// UnmarshalMessage strictly decodes one wire message: unknown fields,
// trailing data and invariant violations are all errors.
func UnmarshalMessage(data []byte, v Message) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("fleet: decode %T: %w", v, err)
	}
	if dec.More() {
		return fmt.Errorf("fleet: decode %T: trailing data after message", v)
	}
	return v.Validate()
}

// RegisterRequest announces a worker to the coordinator.
type RegisterRequest struct {
	// Name is the worker's self-chosen display name (hostname, usually).
	Name string `json:"name"`
}

func (m *RegisterRequest) Validate() error {
	if m.Name == "" || len(m.Name) > maxNameLen {
		return fmt.Errorf("fleet: worker name length %d out of range [1, %d]", len(m.Name), maxNameLen)
	}
	return nil
}

// RegisterResponse assigns the worker its identity and cadence.
type RegisterResponse struct {
	WorkerID string `json:"worker_id"`
	// LeaseTTLMS is how long a lease survives without a heartbeat.
	LeaseTTLMS int64 `json:"lease_ttl_ms"`
	// HeartbeatMS is the renewal cadence the coordinator wants (a fraction
	// of the TTL, so several beats can be lost before the lease expires).
	HeartbeatMS int64 `json:"heartbeat_ms"`
}

func (m *RegisterResponse) Validate() error {
	if m.WorkerID == "" || len(m.WorkerID) > maxNameLen {
		return fmt.Errorf("fleet: worker id length %d out of range [1, %d]", len(m.WorkerID), maxNameLen)
	}
	if m.LeaseTTLMS <= 0 || m.HeartbeatMS <= 0 {
		return fmt.Errorf("fleet: non-positive lease ttl %d / heartbeat %d", m.LeaseTTLMS, m.HeartbeatMS)
	}
	return nil
}

// LeaseRequest asks for one job. WaitMS > 0 long-polls: the coordinator
// holds the request open up to that long waiting for work before answering
// 204.
type LeaseRequest struct {
	WorkerID string `json:"worker_id"`
	WaitMS   int64  `json:"wait_ms,omitempty"`
}

func (m *LeaseRequest) Validate() error {
	if m.WorkerID == "" || len(m.WorkerID) > maxNameLen {
		return fmt.Errorf("fleet: worker id length %d out of range [1, %d]", len(m.WorkerID), maxNameLen)
	}
	if m.WaitMS < 0 || m.WaitMS > MaxWaitMS {
		return fmt.Errorf("fleet: wait_ms %d out of range [0, %d]", m.WaitMS, MaxWaitMS)
	}
	return nil
}

// LeaseGrant checks one job out to the worker. Spec is the coordinator's
// validated job request, opaque to this layer; the worker hands it to its
// Executor verbatim.
type LeaseGrant struct {
	LeaseID string          `json:"lease_id"`
	JobID   string          `json:"job_id"`
	Key     string          `json:"key"`
	Spec    json.RawMessage `json:"spec"`
	TTLMS   int64           `json:"ttl_ms"`
}

func (m *LeaseGrant) Validate() error {
	if m.LeaseID == "" || m.JobID == "" {
		return fmt.Errorf("fleet: lease grant missing lease_id/job_id")
	}
	if len(m.Spec) == 0 || !json.Valid(m.Spec) {
		return fmt.Errorf("fleet: lease grant spec is not valid JSON")
	}
	if m.TTLMS <= 0 {
		return fmt.Errorf("fleet: lease grant ttl %d must be positive", m.TTLMS)
	}
	return nil
}

// ProgressEvent is one optimizer progress record in flight from worker to
// coordinator (batched on heartbeats and the final complete), mirroring the
// coordinator's SSE event types so /events streams keep working when the
// run happens on another machine.
type ProgressEvent struct {
	Type  string               `json:"type"` // temp | phase | chain
	Temp  *metrics.TempRecord  `json:"temp,omitempty"`
	Phase *PhaseProgress       `json:"phase,omitempty"`
	Chain *metrics.ChainRecord `json:"chain,omitempty"`
}

// PhaseProgress reports one finished flow phase.
type PhaseProgress struct {
	Name      string `json:"name"`
	ElapsedNS int64  `json:"elapsed_ns"`
}

func (m *ProgressEvent) Validate() error {
	var own bool
	switch m.Type {
	case "temp":
		own = m.Temp != nil
	case "phase":
		own = m.Phase != nil
	case "chain":
		own = m.Chain != nil
	default:
		return fmt.Errorf("fleet: unknown progress event type %q", m.Type)
	}
	set := 0
	for _, p := range []bool{m.Temp != nil, m.Phase != nil, m.Chain != nil} {
		if p {
			set++
		}
	}
	if !own || set != 1 {
		return fmt.Errorf("fleet: progress event %q must set exactly its own payload", m.Type)
	}
	return nil
}

// HeartbeatRequest renews a lease and ships buffered progress.
type HeartbeatRequest struct {
	WorkerID string          `json:"worker_id"`
	Progress []ProgressEvent `json:"progress,omitempty"`
}

func (m *HeartbeatRequest) Validate() error {
	if m.WorkerID == "" || len(m.WorkerID) > maxNameLen {
		return fmt.Errorf("fleet: worker id length %d out of range [1, %d]", len(m.WorkerID), maxNameLen)
	}
	for i := range m.Progress {
		if err := m.Progress[i].Validate(); err != nil {
			return err
		}
	}
	return nil
}

// HeartbeatResponse acknowledges a renewal. Cancel tells the worker the job
// was canceled client-side: stop at the next boundary and complete with
// status canceled.
type HeartbeatResponse struct {
	Cancel bool  `json:"cancel,omitempty"`
	TTLMS  int64 `json:"ttl_ms"`
}

func (m *HeartbeatResponse) Validate() error {
	if m.TTLMS <= 0 {
		return fmt.Errorf("fleet: heartbeat ack ttl %d must be positive", m.TTLMS)
	}
	return nil
}

// Completion statuses.
const (
	StatusDone     = "done"
	StatusFailed   = "failed"
	StatusCanceled = "canceled"
)

// CompleteRequest retires a lease with the job's outcome. Layout carries the
// serialized result for done jobs (base64 over the wire via encoding/json);
// Stats is the run's quality report, opaque JSON to this layer. Progress
// carries any records buffered since the last heartbeat so the event stream
// ends complete.
type CompleteRequest struct {
	WorkerID string          `json:"worker_id"`
	Status   string          `json:"status"`
	Error    string          `json:"error,omitempty"`
	Layout   []byte          `json:"layout,omitempty"`
	Stats    json.RawMessage `json:"stats,omitempty"`
	Progress []ProgressEvent `json:"progress,omitempty"`
}

func (m *CompleteRequest) Validate() error {
	if m.WorkerID == "" || len(m.WorkerID) > maxNameLen {
		return fmt.Errorf("fleet: worker id length %d out of range [1, %d]", len(m.WorkerID), maxNameLen)
	}
	switch m.Status {
	case StatusDone:
		if len(m.Layout) == 0 {
			return fmt.Errorf("fleet: done completion carries no layout")
		}
	case StatusFailed, StatusCanceled:
		if len(m.Layout) != 0 {
			return fmt.Errorf("fleet: %s completion must not carry a layout", m.Status)
		}
	default:
		return fmt.Errorf("fleet: unknown completion status %q", m.Status)
	}
	if len(m.Error) > maxErrorLen {
		return fmt.Errorf("fleet: completion error length %d exceeds %d", len(m.Error), maxErrorLen)
	}
	if len(m.Stats) > 0 && !json.Valid(m.Stats) {
		return fmt.Errorf("fleet: completion stats is not valid JSON")
	}
	for i := range m.Progress {
		if err := m.Progress[i].Validate(); err != nil {
			return err
		}
	}
	return nil
}
