package fleet

import (
	"testing"
	"time"
)

// testClock is a hand-advanced time source for deterministic aging tests.
type testClock struct{ now time.Time }

func newTestClock() *testClock {
	return &testClock{now: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}
func (c *testClock) Now() time.Time          { return c.now }
func (c *testClock) Advance(d time.Duration) { c.now = c.now.Add(d) }

func drain(t *testing.T, s *Scheduler[string], n int) []string {
	t.Helper()
	var out []string
	for i := 0; i < n; i++ {
		v, ok := s.TryDequeue()
		if !ok {
			t.Fatalf("TryDequeue %d/%d: queue empty, got %v", i+1, n, out)
		}
		out = append(out, v)
	}
	return out
}

func wantOrder(t *testing.T, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("dequeued %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dequeue order %v, want %v (diverges at %d)", got, want, i)
		}
	}
}

// TestParsePriority pins the wire vocabulary: the three classes, the empty
// default, and a hard error for anything else.
func TestParsePriority(t *testing.T) {
	cases := []struct {
		in   string
		want Priority
		ok   bool
	}{
		{"", PriorityNormal, true},
		{"low", PriorityLow, true},
		{"normal", PriorityNormal, true},
		{"high", PriorityHigh, true},
		{"urgent", 0, false},
		{"HIGH", 0, false},
		{"0", 0, false},
	}
	for _, c := range cases {
		got, err := ParsePriority(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("ParsePriority(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("ParsePriority(%q) accepted; want error", c.in)
		}
	}
	for _, p := range []Priority{PriorityLow, PriorityNormal, PriorityHigh} {
		back, err := ParsePriority(p.String())
		if err != nil || back != p {
			t.Errorf("String/Parse round trip broke for %v: %v, %v", p, back, err)
		}
	}
}

// TestSchedulerSingleClientFIFO pins the compatibility contract: one client
// submitting at one priority sees exactly the FIFO the scheduler replaced.
func TestSchedulerSingleClientFIFO(t *testing.T) {
	s := NewScheduler[string](SchedulerConfig{})
	for _, v := range []string{"a", "b", "c", "d", "e"} {
		if !s.TryEnqueue(v, PriorityNormal, "cli") {
			t.Fatalf("enqueue %q rejected", v)
		}
	}
	wantOrder(t, drain(t, s, 5), []string{"a", "b", "c", "d", "e"})
}

// TestSchedulerPriorityOrdering: higher classes drain first regardless of
// arrival order; FIFO within a class.
func TestSchedulerPriorityOrdering(t *testing.T) {
	s := NewScheduler[string](SchedulerConfig{Clock: newTestClock().Now})
	s.TryEnqueue("low1", PriorityLow, "cli")
	s.TryEnqueue("norm1", PriorityNormal, "cli")
	s.TryEnqueue("high1", PriorityHigh, "cli")
	s.TryEnqueue("low2", PriorityLow, "cli")
	s.TryEnqueue("high2", PriorityHigh, "cli")
	s.TryEnqueue("norm2", PriorityNormal, "cli")
	wantOrder(t, drain(t, s, 6),
		[]string{"high1", "high2", "norm1", "norm2", "low1", "low2"})
}

// TestSchedulerAgingPromotion: a low job under a steady high-priority storm
// is promoted one class per AgingStep and gets served instead of starving.
func TestSchedulerAgingPromotion(t *testing.T) {
	clk := newTestClock()
	s := NewScheduler[string](SchedulerConfig{AgingStep: time.Second, Clock: clk.Now})
	s.TryEnqueue("victim", PriorityLow, "slow")

	served := -1
	for round := 1; round <= 6; round++ {
		clk.Advance(time.Second)
		s.TryEnqueue("storm", PriorityHigh, "fast")
		if v, ok := s.TryDequeue(); !ok {
			t.Fatalf("round %d: queue empty", round)
		} else if v == "victim" {
			served = round
			break
		}
	}
	// Two steps promote low → high; WRR admits the victim's client within a
	// round or two of that. Without aging it would never be served here.
	if served < 0 {
		t.Fatalf("low job starved through 6 rounds of high-priority storm")
	}
	if served < 3 {
		t.Fatalf("low job served in round %d, before it could have aged to high", served)
	}
}

// TestSchedulerAgingDisabled: a negative AgingStep turns promotion off.
func TestSchedulerAgingDisabled(t *testing.T) {
	clk := newTestClock()
	s := NewScheduler[string](SchedulerConfig{AgingStep: -1, Clock: clk.Now})
	s.TryEnqueue("low", PriorityLow, "cli")
	clk.Advance(24 * time.Hour)
	s.TryEnqueue("high", PriorityHigh, "cli")
	wantOrder(t, drain(t, s, 2), []string{"high", "low"})
}

// TestSchedulerFairness: three clients with queued backlogs are served
// round-robin — no client waits for another's backlog to drain.
func TestSchedulerFairness(t *testing.T) {
	s := NewScheduler[string](SchedulerConfig{Clock: newTestClock().Now})
	for _, cli := range []string{"a", "b", "c"} {
		for i := 0; i < 3; i++ {
			s.TryEnqueue(cli, PriorityNormal, cli)
		}
	}
	wantOrder(t, drain(t, s, 9),
		[]string{"a", "b", "c", "a", "b", "c", "a", "b", "c"})
}

// TestSchedulerWeights: a weight-2 client gets two dequeues per turn.
func TestSchedulerWeights(t *testing.T) {
	s := NewScheduler[string](SchedulerConfig{
		Weights: map[string]int{"heavy": 2},
		Clock:   newTestClock().Now,
	})
	for i := 0; i < 4; i++ {
		s.TryEnqueue("h", PriorityNormal, "heavy")
		s.TryEnqueue("l", PriorityNormal, "light")
	}
	wantOrder(t, drain(t, s, 8),
		[]string{"h", "h", "l", "h", "h", "l", "l", "l"})
}

// TestSchedulerCapacity: TryEnqueue bounds the queue; EnqueueFront (the
// lease-expiry path) deliberately does not, and its item is served next.
func TestSchedulerCapacity(t *testing.T) {
	clk := newTestClock()
	s := NewScheduler[string](SchedulerConfig{Capacity: 2, Clock: clk.Now})
	if !s.TryEnqueue("a", PriorityNormal, "cli") || !s.TryEnqueue("b", PriorityNormal, "cli") {
		t.Fatal("enqueue under capacity rejected")
	}
	if s.TryEnqueue("c", PriorityNormal, "cli") {
		t.Fatal("enqueue beyond capacity accepted")
	}
	s.EnqueueFront("retry", PriorityNormal, "cli", clk.Now())
	if got := s.Len(); got != 3 {
		t.Fatalf("Len = %d after front push past capacity, want 3", got)
	}
	wantOrder(t, drain(t, s, 3), []string{"retry", "a", "b"})
}

// TestSchedulerEnqueueFrontCrossClient: a re-enqueued job is the very next
// dequeue even when other clients have queued work.
func TestSchedulerEnqueueFrontCrossClient(t *testing.T) {
	clk := newTestClock()
	s := NewScheduler[string](SchedulerConfig{Clock: clk.Now})
	s.TryEnqueue("other1", PriorityNormal, "other")
	s.TryEnqueue("other2", PriorityNormal, "other")
	s.EnqueueFront("retry", PriorityNormal, "victim", clk.Now())
	if v, ok := s.TryDequeue(); !ok || v != "retry" {
		t.Fatalf("first dequeue after EnqueueFront = %q, want retry", v)
	}
}

// TestSchedulerBlockingDequeue: Dequeue parks until an enqueue arrives and
// returns false once stopped.
func TestSchedulerBlockingDequeue(t *testing.T) {
	s := NewScheduler[string](SchedulerConfig{})
	got := make(chan string, 1)
	go func() {
		v, ok := s.Dequeue(nil)
		if ok {
			got <- v
		}
	}()
	time.Sleep(10 * time.Millisecond) // let the goroutine park
	s.TryEnqueue("x", PriorityHigh, "cli")
	select {
	case v := <-got:
		if v != "x" {
			t.Fatalf("blocked Dequeue woke with %q", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked Dequeue never woke after enqueue")
	}

	stop := make(chan struct{})
	done := make(chan bool, 1)
	go func() {
		_, ok := s.Dequeue(stop)
		done <- ok
	}()
	close(stop)
	select {
	case ok := <-done:
		if ok {
			t.Fatal("stopped Dequeue reported an item")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Dequeue ignored stop")
	}

	s.Close()
	if _, ok := s.Dequeue(nil); ok {
		t.Fatal("Dequeue on closed scheduler reported an item")
	}
	if s.TryEnqueue("y", PriorityNormal, "cli") {
		t.Fatal("enqueue accepted after Close")
	}
}

// TestSchedulerDepths: the observability snapshot counts by class and client.
func TestSchedulerDepths(t *testing.T) {
	s := NewScheduler[string](SchedulerConfig{Clock: newTestClock().Now})
	s.TryEnqueue("1", PriorityHigh, "a")
	s.TryEnqueue("2", PriorityNormal, "a")
	s.TryEnqueue("3", PriorityNormal, "b")
	s.TryEnqueue("4", PriorityLow, "b")
	d := s.Depths()
	if d.Total != 4 {
		t.Fatalf("Total = %d, want 4", d.Total)
	}
	if d.ByClass["high"] != 1 || d.ByClass["normal"] != 2 || d.ByClass["low"] != 1 {
		t.Fatalf("ByClass = %v", d.ByClass)
	}
	if d.ByClient["a"] != 2 || d.ByClient["b"] != 2 {
		t.Fatalf("ByClient = %v", d.ByClient)
	}
}

// TestSchedulerTryEnqueueAll pins the group admission contract: a batch
// lands whole (per-item classes respected, FIFO within a class) or not at
// all — a batch that would exceed capacity leaves the queue untouched, and
// mismatched inputs or a closed scheduler admit nothing.
func TestSchedulerTryEnqueueAll(t *testing.T) {
	s := NewScheduler[string](SchedulerConfig{Capacity: 4, Clock: newTestClock().Now})
	if !s.TryEnqueueAll([]string{"a", "b", "c"},
		[]Priority{PriorityNormal, PriorityHigh, PriorityNormal}, "cli") {
		t.Fatal("in-capacity batch rejected")
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d after batch, want 3", s.Len())
	}

	// 2 more items would exceed capacity 4: nothing may land.
	if s.TryEnqueueAll([]string{"d", "e"}, []Priority{PriorityLow, PriorityLow}, "cli") {
		t.Fatal("over-capacity batch accepted")
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d after rejected batch, want 3 (partial admission)", s.Len())
	}

	// Mismatched classes are a caller bug, refused outright.
	if s.TryEnqueueAll([]string{"d", "e"}, []Priority{PriorityLow}, "cli") {
		t.Fatal("mismatched vs/pris accepted")
	}

	// A batch that exactly fills the queue is fine, and per-item classes hold:
	// the high member drains before the normals, which keep submission order.
	if !s.TryEnqueueAll([]string{"d"}, []Priority{PriorityHigh, PriorityHigh}[:1], "cli") {
		t.Fatal("exact-fit batch rejected")
	}
	wantOrder(t, drain(t, s, 4), []string{"b", "d", "a", "c"})

	s.Close()
	if s.TryEnqueueAll([]string{"z"}, []Priority{PriorityNormal}, "cli") {
		t.Fatal("batch accepted after Close")
	}
}

// TestSchedulerAgingStepAccessor: the accessor reports the defaulted quantum
// and the disabled state, matching what /statsz publishes.
func TestSchedulerAgingStepAccessor(t *testing.T) {
	if got := NewScheduler[string](SchedulerConfig{}).AgingStep(); got != DefaultAgingStep {
		t.Errorf("default AgingStep = %v, want %v", got, DefaultAgingStep)
	}
	if got := NewScheduler[string](SchedulerConfig{AgingStep: 5 * time.Second}).AgingStep(); got != 5*time.Second {
		t.Errorf("AgingStep = %v, want 5s", got)
	}
	if got := NewScheduler[string](SchedulerConfig{AgingStep: -1}).AgingStep(); got > 0 {
		t.Errorf("disabled AgingStep = %v, want non-positive", got)
	}
}
