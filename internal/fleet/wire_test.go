package fleet

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/metrics"
)

// validMessages is one well-formed instance of every wire message; the fuzz
// seed corpus and the strictness tests share it.
func validMessages() []Message {
	return []Message{
		&RegisterRequest{Name: "worker-7"},
		&RegisterResponse{WorkerID: "w1", LeaseTTLMS: 15000, HeartbeatMS: 5000},
		&LeaseRequest{WorkerID: "w1", WaitMS: 2000},
		&LeaseGrant{LeaseID: "l1", JobID: "j1", Key: "abc123",
			Spec: json.RawMessage(`{"design":"tiny"}`), TTLMS: 15000},
		&HeartbeatRequest{WorkerID: "w1", Progress: []ProgressEvent{
			{Type: "temp", Temp: &metrics.TempRecord{Temp: 3.5, Cost: 120}},
			{Type: "phase", Phase: &PhaseProgress{Name: "anneal", ElapsedNS: 12345}},
			{Type: "chain", Chain: &metrics.ChainRecord{Chain: 1}},
		}},
		&HeartbeatResponse{Cancel: true, TTLMS: 15000},
		&CompleteRequest{WorkerID: "w1", Status: StatusDone,
			Layout: []byte("layout bytes"), Stats: json.RawMessage(`{"temps":9}`)},
		&CompleteRequest{WorkerID: "w1", Status: StatusFailed, Error: "boom"},
		&CompleteRequest{WorkerID: "w1", Status: StatusCanceled},
	}
}

// TestWireRoundTrip: every valid message survives marshal → strict decode.
func TestWireRoundTrip(t *testing.T) {
	for _, m := range validMessages() {
		data, err := json.Marshal(m)
		if err != nil {
			t.Fatalf("marshal %T: %v", m, err)
		}
		fresh := newLike(m)
		if err := UnmarshalMessage(data, fresh); err != nil {
			t.Errorf("round trip %T (%s): %v", m, data, err)
		}
	}
}

// TestWireStrictness: unknown fields, trailing data and malformed JSON are
// all rejected.
func TestWireStrictness(t *testing.T) {
	cases := []string{
		`{"name":"w","bonus":1}`, // unknown field
		`{"name":"w"} {}`,        // trailing data
		`{"name":"w"`,            // truncated
		`[]`,                     // wrong shape
	}
	for _, c := range cases {
		if err := UnmarshalMessage([]byte(c), &RegisterRequest{}); err == nil {
			t.Errorf("strict decode accepted %q", c)
		}
	}
}

// TestWireValidation: each message's invariants reject the obvious abuses.
func TestWireValidation(t *testing.T) {
	long := strings.Repeat("x", maxNameLen+1)
	cases := []struct {
		name string
		m    Message
	}{
		{"empty worker name", &RegisterRequest{}},
		{"oversized worker name", &RegisterRequest{Name: long}},
		{"zero ttl", &RegisterResponse{WorkerID: "w1", HeartbeatMS: 1}},
		{"negative wait", &LeaseRequest{WorkerID: "w1", WaitMS: -1}},
		{"wait beyond cap", &LeaseRequest{WorkerID: "w1", WaitMS: MaxWaitMS + 1}},
		{"grant without spec", &LeaseGrant{LeaseID: "l1", JobID: "j1", TTLMS: 1}},
		{"grant with invalid spec", &LeaseGrant{LeaseID: "l1", JobID: "j1",
			Spec: json.RawMessage(`{`), TTLMS: 1}},
		{"unknown progress type", &HeartbeatRequest{WorkerID: "w1",
			Progress: []ProgressEvent{{Type: "vibe"}}}},
		{"progress payload mismatch", &HeartbeatRequest{WorkerID: "w1",
			Progress: []ProgressEvent{{Type: "temp", Phase: &PhaseProgress{Name: "p"}}}}},
		{"progress double payload", &HeartbeatRequest{WorkerID: "w1",
			Progress: []ProgressEvent{{Type: "temp",
				Temp: &metrics.TempRecord{}, Chain: &metrics.ChainRecord{}}}}},
		{"zero heartbeat ttl", &HeartbeatResponse{}},
		{"unknown status", &CompleteRequest{WorkerID: "w1", Status: "maybe"}},
		{"done without layout", &CompleteRequest{WorkerID: "w1", Status: StatusDone}},
		{"failed with layout", &CompleteRequest{WorkerID: "w1", Status: StatusFailed,
			Layout: []byte("x")}},
		{"oversized error", &CompleteRequest{WorkerID: "w1", Status: StatusFailed,
			Error: strings.Repeat("e", maxErrorLen+1)}},
		{"invalid stats json", &CompleteRequest{WorkerID: "w1", Status: StatusDone,
			Layout: []byte("x"), Stats: json.RawMessage(`{`)}},
	}
	for _, c := range cases {
		if err := c.m.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", c.name, c.m)
		}
	}
}
