package fleet

import (
	"sync"
	"time"
)

// SchedulerConfig sizes and tunes a Scheduler.
type SchedulerConfig struct {
	// Capacity bounds the number of queued items; TryEnqueue beyond it
	// reports false (the caller's backpressure path). <= 0 means unbounded.
	Capacity int
	// AgingStep is the wait per one-class promotion: an item queued for
	// N*AgingStep is served as if it were N classes higher (capped at high).
	// 0 selects DefaultAgingStep; negative disables aging.
	AgingStep time.Duration
	// Weights optionally gives some clients more than one dequeue per
	// round-robin turn. Absent clients weigh 1.
	Weights map[string]int
	// Clock is the time source (tests inject a fake one; nil = time.Now).
	Clock func() time.Time
}

// DefaultAgingStep is the promotion quantum when none is configured: long
// enough that priorities mean something under bursts, short enough that a
// low job outlives any plausible high-priority storm.
const DefaultAgingStep = 30 * time.Second

// entry is one queued item with the metadata scheduling needs.
type entry[T any] struct {
	v        T
	client   string
	base     Priority
	enqueued time.Time
}

// clientQueue is one client's FIFO inside one class, plus its WRR credit.
type clientQueue[T any] struct {
	client string
	items  []entry[T]
	credit int
}

// class is one priority level: per-client queues and the round-robin ring
// over the clients that currently have work here.
type class[T any] struct {
	queues map[string]*clientQueue[T]
	ring   []*clientQueue[T]
	cursor int
}

// Scheduler is the fleet queue discipline: strict priority across classes
// (after aging promotion), weighted round-robin across clients within a
// class, FIFO within a client. With a single client and a single class it
// degenerates to exactly the plain FIFO it replaced. Safe for concurrent
// use; Dequeue blocks until work arrives or stop fires.
type Scheduler[T any] struct {
	mu      sync.Mutex
	cfg     SchedulerConfig
	classes [numPriorities]class[T]
	size    int
	closed  bool
	wake    chan struct{} // closed and replaced on every enqueue/close
}

// NewScheduler builds an empty scheduler.
func NewScheduler[T any](cfg SchedulerConfig) *Scheduler[T] {
	if cfg.AgingStep == 0 {
		cfg.AgingStep = DefaultAgingStep
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	s := &Scheduler[T]{cfg: cfg, wake: make(chan struct{})}
	for i := range s.classes {
		s.classes[i].queues = make(map[string]*clientQueue[T])
	}
	return s
}

// TryEnqueue adds an item at the tail of its (class, client) queue. It
// reports false when the scheduler is at capacity or closed — never blocks.
func (s *Scheduler[T]) TryEnqueue(v T, pri Priority, client string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || (s.cfg.Capacity > 0 && s.size >= s.cfg.Capacity) {
		return false
	}
	s.pushLocked(pri, entry[T]{v: v, client: client, base: pri, enqueued: s.cfg.Clock()}, false)
	return true
}

// TryEnqueueAll atomically adds a group of items at the tail of their
// (class, client) queues, pris[i] being item i's class: either every item is
// admitted, or — if the batch would exceed capacity or the scheduler is
// closed — none is. This is the batch/portfolio admission path;
// all-or-nothing under one lock means a concurrent submitter can never
// interleave into the middle of a group and strand half of it past the
// capacity check.
func (s *Scheduler[T]) TryEnqueueAll(vs []T, pris []Priority, client string) bool {
	if len(vs) != len(pris) {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || (s.cfg.Capacity > 0 && s.size+len(vs) > s.cfg.Capacity) {
		return false
	}
	now := s.cfg.Clock()
	for i, v := range vs {
		s.pushLocked(pris[i], entry[T]{v: v, client: client, base: pris[i], enqueued: now}, false)
	}
	return true
}

// EnqueueFront re-admits an item at the head of its (class, client) queue,
// keeping its original enqueue time so aging credit is preserved. This is
// the lease-expiry path: the item was already dequeued once, so it goes back
// in front of everything submitted after it, and capacity is deliberately
// not enforced — re-enqueued work was already admitted.
func (s *Scheduler[T]) EnqueueFront(v T, pri Priority, client string, enqueued time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.pushLocked(pri, entry[T]{v: v, client: client, base: pri, enqueued: enqueued}, true)
}

// pushLocked links an entry into class pri and wakes waiters. Front pushes
// also move the client to the ring's serving position, so a re-enqueued item
// is the next thing a worker sees.
func (s *Scheduler[T]) pushLocked(pri Priority, e entry[T], front bool) {
	c := &s.classes[pri]
	q, ok := c.queues[e.client]
	if !ok {
		q = &clientQueue[T]{client: e.client}
		c.queues[e.client] = q
		if front && len(c.ring) > 0 {
			at := c.cursor % len(c.ring)
			c.ring = append(c.ring[:at], append([]*clientQueue[T]{q}, c.ring[at:]...)...)
			c.cursor = at
		} else {
			c.ring = append(c.ring, q)
		}
	}
	if front {
		q.items = append([]entry[T]{e}, q.items...)
	} else {
		q.items = append(q.items, e)
	}
	s.size++
	close(s.wake)
	s.wake = make(chan struct{})
}

// effective is the class an entry is served at: its base class plus one
// promotion per AgingStep waited, capped at high.
func (s *Scheduler[T]) effective(e *entry[T], now time.Time) Priority {
	if s.cfg.AgingStep <= 0 {
		return e.base
	}
	steps := int64(now.Sub(e.enqueued) / s.cfg.AgingStep)
	p := int64(e.base) + steps
	if p > int64(PriorityHigh) {
		return PriorityHigh
	}
	if p < int64(e.base) { // overflow paranoia
		return e.base
	}
	return Priority(p)
}

// promoteLocked moves aged entries up to the class they are now served at.
// Client queues are age-ordered (FIFO plus front-pushes of older items), so
// only heads ever need to move; promoted items keep their enqueue time and
// join the tail of their client's queue in the higher class.
func (s *Scheduler[T]) promoteLocked(now time.Time) {
	if s.cfg.AgingStep <= 0 {
		return
	}
	for pri := PriorityLow; pri < PriorityHigh; pri++ {
		c := &s.classes[pri]
		for i := 0; i < len(c.ring); {
			q := c.ring[i]
			for len(q.items) > 0 {
				eff := s.effective(&q.items[0], now)
				if eff <= pri {
					break
				}
				e := q.items[0]
				q.items = q.items[1:]
				s.size-- // pushLocked re-counts it
				s.pushLocked(eff, e, false)
			}
			if len(q.items) == 0 {
				s.removeFromRingLocked(c, i)
				delete(c.queues, q.client)
				continue
			}
			i++
		}
	}
}

// removeFromRingLocked unlinks ring[i], keeping the cursor pointed at the
// same next-to-serve client.
func (s *Scheduler[T]) removeFromRingLocked(c *class[T], i int) {
	c.ring = append(c.ring[:i], c.ring[i+1:]...)
	if c.cursor > i {
		c.cursor--
	}
	if c.cursor >= len(c.ring) {
		c.cursor = 0
	}
}

// pickLocked dequeues the next item: highest effective class first, weighted
// round-robin across that class's clients, FIFO within a client.
func (s *Scheduler[T]) pickLocked(now time.Time) (entry[T], bool) {
	s.promoteLocked(now)
	for pri := PriorityHigh + 1; pri > PriorityLow; pri-- {
		c := &s.classes[pri-1]
		if len(c.ring) == 0 {
			continue
		}
		if c.cursor >= len(c.ring) {
			c.cursor = 0
		}
		q := c.ring[c.cursor]
		if q.credit <= 0 {
			q.credit = s.weight(q.client)
		}
		e := q.items[0]
		q.items = q.items[1:]
		q.credit--
		s.size--
		if len(q.items) == 0 {
			s.removeFromRingLocked(c, c.cursor)
			delete(c.queues, q.client)
		} else if q.credit <= 0 {
			c.cursor++
			if c.cursor >= len(c.ring) {
				c.cursor = 0
			}
		}
		return e, true
	}
	return entry[T]{}, false
}

// weight returns a client's WRR weight (>= 1).
func (s *Scheduler[T]) weight(client string) int {
	if w, ok := s.cfg.Weights[client]; ok && w > 1 {
		return w
	}
	return 1
}

// TryDequeue removes and returns the next scheduled item without blocking.
func (s *Scheduler[T]) TryDequeue() (T, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.pickLocked(s.cfg.Clock())
	return e.v, ok
}

// Dequeue blocks until an item is available (returned with true) or stop
// fires / the scheduler closes (zero value, false).
func (s *Scheduler[T]) Dequeue(stop <-chan struct{}) (T, bool) {
	for {
		s.mu.Lock()
		if e, ok := s.pickLocked(s.cfg.Clock()); ok {
			s.mu.Unlock()
			return e.v, true
		}
		if s.closed {
			s.mu.Unlock()
			var zero T
			return zero, false
		}
		wake := s.wake
		s.mu.Unlock()
		select {
		case <-stop:
			var zero T
			return zero, false
		case <-wake:
		}
	}
}

// WakeChan returns a channel closed at the next enqueue (or already closed
// once the scheduler is). Snapshot it before TryDequeue to poll without
// missed wakeups.
func (s *Scheduler[T]) WakeChan() <-chan struct{} {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.wake
}

// Close wakes every blocked Dequeue; the scheduler accepts nothing further.
func (s *Scheduler[T]) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	close(s.wake)
}

// AgingStep reports the configured promotion quantum (after defaulting);
// <= 0 means aging is disabled.
func (s *Scheduler[T]) AgingStep() time.Duration { return s.cfg.AgingStep }

// Len reports the number of queued items.
func (s *Scheduler[T]) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.size
}

// Depths is the observability snapshot of the queue: totals by residence
// class and by client (summed across classes).
type Depths struct {
	Total    int            `json:"total"`
	ByClass  map[string]int `json:"by_class"`
	ByClient map[string]int `json:"by_client"`
}

// Depths snapshots per-class and per-client queue depths for /statsz.
func (s *Scheduler[T]) Depths() Depths {
	s.mu.Lock()
	defer s.mu.Unlock()
	d := Depths{
		Total:    s.size,
		ByClass:  make(map[string]int, int(numPriorities)),
		ByClient: make(map[string]int),
	}
	for pri := PriorityLow; pri < numPriorities; pri++ {
		n := 0
		for _, q := range s.classes[pri].queues {
			n += len(q.items)
			d.ByClient[q.client] += len(q.items)
		}
		d.ByClass[pri.String()] = n
	}
	return d
}
