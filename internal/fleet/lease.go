package fleet

import (
	"fmt"
	"sync"
	"time"
)

// DefaultLeaseTTL is the heartbeat budget a lease gets when the coordinator
// configures none: long enough for several missed heartbeats on a loaded
// box, short enough that a crashed worker's job is retried promptly.
const DefaultLeaseTTL = 15 * time.Second

// Lease is one job checked out to one worker. It stays valid only while the
// worker heartbeats: every renewal pushes Expires forward by the TTL, and a
// lease that reaches Expires unrenewed is harvested by Expire and its job
// handed back for re-enqueue.
type Lease struct {
	ID      string
	Job     string
	Worker  string
	Granted time.Time
	Expires time.Time
}

// LeaseCounters is the lifetime tally a LeaseManager keeps for /statsz.
type LeaseCounters struct {
	Granted   int64 `json:"granted"`
	Renewed   int64 `json:"renewed"`
	Completed int64 `json:"completed"`
	Expired   int64 `json:"expired"`
}

// LeaseManager tracks the leases of every job currently checked out to a
// worker. It is pure bookkeeping: granting, renewing, completing and
// harvesting expiries are all O(1)/O(n) map operations under one mutex, and
// re-enqueue policy lives with the caller.
type LeaseManager struct {
	mu       sync.Mutex
	ttl      time.Duration
	clock    func() time.Time
	nextID   int64
	leases   map[string]*Lease
	counters LeaseCounters
}

// NewLeaseManager builds a manager granting leases of the given TTL
// (<= 0 selects DefaultLeaseTTL). clock is the time source (nil = time.Now).
func NewLeaseManager(ttl time.Duration, clock func() time.Time) *LeaseManager {
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	if clock == nil {
		clock = time.Now
	}
	return &LeaseManager{ttl: ttl, clock: clock, leases: make(map[string]*Lease)}
}

// TTL reports the configured lease duration.
func (m *LeaseManager) TTL() time.Duration { return m.ttl }

// Grant checks job out to worker and returns the new lease.
func (m *LeaseManager) Grant(job, worker string) Lease {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nextID++
	now := m.clock()
	l := &Lease{
		ID:      fmt.Sprintf("l%d", m.nextID),
		Job:     job,
		Worker:  worker,
		Granted: now,
		Expires: now.Add(m.ttl),
	}
	m.leases[l.ID] = l
	m.counters.Granted++
	return *l
}

// Renew pushes a lease's expiry forward by the TTL. It reports false for an
// unknown (completed or already expired) lease — the worker's signal to stop
// working on the job.
func (m *LeaseManager) Renew(id string) (Lease, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	l, ok := m.leases[id]
	if !ok {
		return Lease{}, false
	}
	l.Expires = m.clock().Add(m.ttl)
	m.counters.Renewed++
	return *l, true
}

// Complete retires a lease, returning it exactly once. A second Complete —
// or one racing a harvested expiry — reports false, which is what makes the
// completion path exactly-once: only the caller that wins this removal may
// publish the job's result.
func (m *LeaseManager) Complete(id string) (Lease, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	l, ok := m.leases[id]
	if !ok {
		return Lease{}, false
	}
	delete(m.leases, id)
	m.counters.Completed++
	return *l, true
}

// Expire harvests every lease whose deadline has passed, removing and
// returning them. The caller re-enqueues the jobs; a late Complete from the
// original worker then finds its lease gone and is rejected.
func (m *LeaseManager) Expire(now time.Time) []Lease {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []Lease
	for id, l := range m.leases {
		if now.After(l.Expires) {
			out = append(out, *l)
			delete(m.leases, id)
			m.counters.Expired++
		}
	}
	return out
}

// Active reports the number of live leases.
func (m *LeaseManager) Active() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.leases)
}

// Counters snapshots the lifetime tallies.
func (m *LeaseManager) Counters() LeaseCounters {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.counters
}

// WorkerInfo is one registered worker's record.
type WorkerInfo struct {
	ID         string    `json:"id"`
	Name       string    `json:"name"`
	Registered time.Time `json:"registered"`
	LastSeen   time.Time `json:"last_seen"`
	Draining   bool      `json:"draining"`
	Completed  int64     `json:"completed"`
}

// Registry tracks registered workers: identity, liveness (LastSeen is
// touched by every lease/heartbeat/complete call) and drain state. Workers
// are never removed — the fleet is small and the history is useful — but a
// drained worker is refused new leases.
type Registry struct {
	mu      sync.Mutex
	clock   func() time.Time
	nextID  int64
	workers map[string]*WorkerInfo
}

// NewRegistry builds an empty registry (nil clock = time.Now).
func NewRegistry(clock func() time.Time) *Registry {
	if clock == nil {
		clock = time.Now
	}
	return &Registry{clock: clock, workers: make(map[string]*WorkerInfo)}
}

// Register admits a worker and returns its record.
func (r *Registry) Register(name string) WorkerInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextID++
	now := r.clock()
	w := &WorkerInfo{
		ID:         fmt.Sprintf("w%d", r.nextID),
		Name:       name,
		Registered: now,
		LastSeen:   now,
	}
	r.workers[w.ID] = w
	return *w
}

// Get looks a worker up by ID.
func (r *Registry) Get(id string) (WorkerInfo, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	w, ok := r.workers[id]
	if !ok {
		return WorkerInfo{}, false
	}
	return *w, true
}

// Touch records liveness; it reports false for an unknown worker.
func (r *Registry) Touch(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	w, ok := r.workers[id]
	if !ok {
		return false
	}
	w.LastSeen = r.clock()
	return true
}

// Drain flags a worker as draining: it keeps its active leases but is
// refused new ones. Reports false for an unknown worker.
func (r *Registry) Drain(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	w, ok := r.workers[id]
	if !ok {
		return false
	}
	w.Draining = true
	return true
}

// RecordCompletion bumps a worker's completed-job tally.
func (r *Registry) RecordCompletion(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if w, ok := r.workers[id]; ok {
		w.Completed++
		w.LastSeen = r.clock()
	}
}

// Counts reports (registered, live within window, draining).
func (r *Registry) Counts(window time.Duration) (registered, live, draining int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	cutoff := r.clock().Add(-window)
	for _, w := range r.workers {
		registered++
		if !w.LastSeen.Before(cutoff) {
			live++
		}
		if w.Draining {
			draining++
		}
	}
	return registered, live, draining
}
