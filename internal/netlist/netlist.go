// Package netlist defines the technology-mapped netlist consumed by the
// layout tools: single-output logic cells typed as primary inputs, primary
// outputs, combinational modules, or sequential modules, connected by
// driver/sink nets. It includes a programmatic builder, hand-rolled parsers
// for a native ".net" format and a BLIF subset, a writer, validation, and
// levelization.
package netlist

import (
	"fmt"
	"sort"
)

// CellType classifies a cell for placement and timing purposes.
type CellType uint8

const (
	// Input is a primary input pad: a timing source, drives one net.
	Input CellType = iota
	// Output is a primary output pad: a timing sink, receives one net.
	Output
	// Comb is a combinational logic module.
	Comb
	// Seq is a sequential module (flip-flop): both a timing sink (its data
	// inputs) and a timing source (its output).
	Seq
)

var typeNames = [...]string{"input", "output", "comb", "seq"}

func (t CellType) String() string {
	if int(t) < len(typeNames) {
		return typeNames[t]
	}
	return fmt.Sprintf("CellType(%d)", uint8(t))
}

// ParseCellType converts a type keyword to a CellType.
func ParseCellType(s string) (CellType, error) {
	for i, n := range typeNames {
		if s == n {
			return CellType(i), nil
		}
	}
	return 0, fmt.Errorf("netlist: unknown cell type %q", s)
}

// PinRef identifies one pin of one cell. Pin 0 is the cell's output; pins
// 1..k are its inputs in declaration order.
type PinRef struct {
	Cell int32
	Pin  int32
}

// Cell is a logic module instance. In[i] is the net feeding input pin i+1
// (or -1 if unconnected); Out is the net driven by pin 0 (or -1).
type Cell struct {
	Name  string
	Type  CellType
	Delay float64 // intrinsic delay in picoseconds (comb: pin-to-pin; seq: clock-to-out)
	In    []int32
	Out   int32
}

// NumPins returns the number of pins on the cell (output + inputs).
func (c *Cell) NumPins() int { return len(c.In) + 1 }

// Net is a signal: one driver pin and zero or more sink pins.
type Net struct {
	Name   string
	Driver PinRef
	Sinks  []PinRef
}

// NumPins returns the total pin count on the net.
func (n *Net) NumPins() int { return len(n.Sinks) + 1 }

// Netlist is a complete technology-mapped design.
type Netlist struct {
	Name  string
	Cells []Cell
	Nets  []Net

	cellByName map[string]int32
	netByName  map[string]int32
}

// CellID returns the index of the named cell, or -1.
func (nl *Netlist) CellID(name string) int32 {
	if id, ok := nl.cellByName[name]; ok {
		return id
	}
	return -1
}

// NetID returns the index of the named net, or -1.
func (nl *Netlist) NetID(name string) int32 {
	if id, ok := nl.netByName[name]; ok {
		return id
	}
	return -1
}

// NumCells returns the number of cells.
func (nl *Netlist) NumCells() int { return len(nl.Cells) }

// NumNets returns the number of nets.
func (nl *Netlist) NumNets() int { return len(nl.Nets) }

// IsSource reports whether the cell's output arrival time does not depend on
// its inputs (primary inputs and flip-flop outputs).
func (nl *Netlist) IsSource(cell int32) bool {
	t := nl.Cells[cell].Type
	return t == Input || t == Seq
}

// IsSinkPin reports whether arrival at the given pin terminates a timing path
// (primary-output pads and flip-flop data inputs).
func (nl *Netlist) IsSinkPin(p PinRef) bool {
	t := nl.Cells[p.Cell].Type
	return (t == Output || t == Seq) && p.Pin >= 1
}

// rebuildIndex recomputes the name lookup maps.
func (nl *Netlist) rebuildIndex() {
	nl.cellByName = make(map[string]int32, len(nl.Cells))
	for i := range nl.Cells {
		nl.cellByName[nl.Cells[i].Name] = int32(i)
	}
	nl.netByName = make(map[string]int32, len(nl.Nets))
	for i := range nl.Nets {
		nl.netByName[nl.Nets[i].Name] = int32(i)
	}
}

// Validate checks referential integrity: unique names, driver/sink pin
// consistency between Cells and Nets, type-specific pin shapes, and that the
// combinational subgraph is acyclic.
func (nl *Netlist) Validate() error {
	names := make(map[string]bool, len(nl.Cells))
	for i := range nl.Cells {
		c := &nl.Cells[i]
		if c.Name == "" {
			return fmt.Errorf("netlist: cell %d has empty name", i)
		}
		if names[c.Name] {
			return fmt.Errorf("netlist: duplicate cell name %q", c.Name)
		}
		names[c.Name] = true
		switch c.Type {
		case Input:
			if len(c.In) != 0 {
				return fmt.Errorf("netlist: input cell %q has input pins", c.Name)
			}
			if c.Out < 0 {
				return fmt.Errorf("netlist: input cell %q drives no net", c.Name)
			}
		case Output:
			if len(c.In) != 1 {
				return fmt.Errorf("netlist: output cell %q must have exactly one input", c.Name)
			}
			if c.Out >= 0 {
				return fmt.Errorf("netlist: output cell %q drives a net", c.Name)
			}
		case Comb, Seq:
			if len(c.In) == 0 {
				return fmt.Errorf("netlist: %s cell %q has no inputs", c.Type, c.Name)
			}
		default:
			return fmt.Errorf("netlist: cell %q has invalid type %d", c.Name, c.Type)
		}
		if c.Out >= 0 {
			if int(c.Out) >= len(nl.Nets) {
				return fmt.Errorf("netlist: cell %q output net %d out of range", c.Name, c.Out)
			}
			d := nl.Nets[c.Out].Driver
			if d.Cell != int32(i) || d.Pin != 0 {
				return fmt.Errorf("netlist: cell %q output net %q has mismatched driver", c.Name, nl.Nets[c.Out].Name)
			}
		}
		for pi, netID := range c.In {
			if netID < 0 {
				continue
			}
			if int(netID) >= len(nl.Nets) {
				return fmt.Errorf("netlist: cell %q input net %d out of range", c.Name, netID)
			}
			found := false
			for _, s := range nl.Nets[netID].Sinks {
				if s.Cell == int32(i) && s.Pin == int32(pi+1) {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("netlist: cell %q pin %d not listed as sink of net %q", c.Name, pi+1, nl.Nets[netID].Name)
			}
		}
	}
	netNames := make(map[string]bool, len(nl.Nets))
	for i := range nl.Nets {
		n := &nl.Nets[i]
		if n.Name == "" {
			return fmt.Errorf("netlist: net %d has empty name", i)
		}
		if netNames[n.Name] {
			return fmt.Errorf("netlist: duplicate net name %q", n.Name)
		}
		netNames[n.Name] = true
		d := n.Driver
		if d.Cell < 0 || int(d.Cell) >= len(nl.Cells) || d.Pin != 0 {
			return fmt.Errorf("netlist: net %q has invalid driver", n.Name)
		}
		if nl.Cells[d.Cell].Out != int32(i) {
			return fmt.Errorf("netlist: net %q driver cell %q does not list it as output", n.Name, nl.Cells[d.Cell].Name)
		}
		for _, s := range n.Sinks {
			if s.Cell < 0 || int(s.Cell) >= len(nl.Cells) || s.Pin < 1 || int(s.Pin) > len(nl.Cells[s.Cell].In) {
				return fmt.Errorf("netlist: net %q has invalid sink %+v", n.Name, s)
			}
			if nl.Cells[s.Cell].In[s.Pin-1] != int32(i) {
				return fmt.Errorf("netlist: net %q sink cell %q pin %d mismatch", n.Name, nl.Cells[s.Cell].Name, s.Pin)
			}
		}
	}
	if _, err := nl.Levels(); err != nil {
		return err
	}
	return nil
}

// Levels levelizes the netlist (paper §3.5): timing sources (primary inputs
// and sequential cells) have level 0; every other cell's level is one more
// than the maximum level of the cells driving its inputs. Levels depend only
// on connectivity, never on placement, so this is computed once. An error is
// returned if the combinational subgraph contains a cycle.
func (nl *Netlist) Levels() ([]int32, error) {
	n := len(nl.Cells)
	level := make([]int32, n)
	deg := make([]int32, n) // unresolved combinational fanins
	queue := make([]int32, 0, n)
	for i := range nl.Cells {
		c := &nl.Cells[i]
		if nl.IsSource(int32(i)) {
			queue = append(queue, int32(i))
			continue
		}
		d := int32(0)
		for _, netID := range c.In {
			if netID >= 0 {
				d++
			}
		}
		deg[i] = d
		if d == 0 {
			queue = append(queue, int32(i))
		}
	}
	processed := 0
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		processed++
		c := &nl.Cells[id]
		if c.Out < 0 {
			continue
		}
		for _, s := range nl.Nets[c.Out].Sinks {
			if nl.IsSource(s.Cell) {
				continue // sequential cells break timing paths
			}
			if lv := level[id] + 1; lv > level[s.Cell] {
				level[s.Cell] = lv
			}
			deg[s.Cell]--
			if deg[s.Cell] == 0 {
				queue = append(queue, s.Cell)
			}
		}
	}
	if processed != n {
		return nil, fmt.Errorf("netlist: combinational cycle detected (%d of %d cells levelized)", processed, n)
	}
	return level, nil
}

// Stats summarizes a netlist for reports.
type Stats struct {
	Cells, Nets            int
	Inputs, Outputs        int
	CombCells, SeqCells    int
	MaxFanin, MaxFanout    int
	AvgFanout              float64
	LogicDepth             int // maximum level
	MultiRowCapableFanouts int // nets with >= 2 pins
}

// ComputeStats returns summary statistics; it assumes a valid netlist.
func (nl *Netlist) ComputeStats() Stats {
	var s Stats
	s.Cells = len(nl.Cells)
	s.Nets = len(nl.Nets)
	for i := range nl.Cells {
		c := &nl.Cells[i]
		switch c.Type {
		case Input:
			s.Inputs++
		case Output:
			s.Outputs++
		case Comb:
			s.CombCells++
		case Seq:
			s.SeqCells++
		}
		if len(c.In) > s.MaxFanin {
			s.MaxFanin = len(c.In)
		}
	}
	totalSinks := 0
	for i := range nl.Nets {
		k := len(nl.Nets[i].Sinks)
		totalSinks += k
		if k > s.MaxFanout {
			s.MaxFanout = k
		}
		if k >= 1 {
			s.MultiRowCapableFanouts++
		}
	}
	if s.Nets > 0 {
		s.AvgFanout = float64(totalSinks) / float64(s.Nets)
	}
	if lv, err := nl.Levels(); err == nil {
		for _, l := range lv {
			if int(l) > s.LogicDepth {
				s.LogicDepth = int(l)
			}
		}
	}
	return s
}

// SortedCellNames returns cell names in sorted order (for deterministic
// output in writers and reports).
func (nl *Netlist) SortedCellNames() []string {
	names := make([]string, len(nl.Cells))
	for i := range nl.Cells {
		names[i] = nl.Cells[i].Name
	}
	sort.Strings(names)
	return names
}
