package netlist

import (
	"bytes"
	"strings"
	"testing"
)

func TestNetFormatRoundTrip(t *testing.T) {
	nl := tiny(t)
	var buf bytes.Buffer
	if err := WriteNet(&buf, nl); err != nil {
		t.Fatalf("WriteNet: %v", err)
	}
	got, err := ParseNet(&buf)
	if err != nil {
		t.Fatalf("ParseNet: %v", err)
	}
	if got.Name != nl.Name || got.NumCells() != nl.NumCells() || got.NumNets() != nl.NumNets() {
		t.Fatalf("round trip changed shape: %s %d/%d vs %s %d/%d",
			got.Name, got.NumCells(), got.NumNets(), nl.Name, nl.NumCells(), nl.NumNets())
	}
	// Second write must be byte-identical (canonical form).
	var buf2 bytes.Buffer
	if err := WriteNet(&buf, nl); err != nil {
		t.Fatal(err)
	}
	if err := WriteNet(&buf2, got); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Error("write(parse(write(x))) != write(x)")
	}
}

func TestParseNetErrors(t *testing.T) {
	cases := []struct{ name, in, want string }{
		{"no design", "cell a input 0 n\n", "missing design"},
		{"dup design", "design a\ndesign b\n", "duplicate design"},
		{"bad directive", "design a\nwat 1 2\n", "unknown directive"},
		{"short cell", "design a\ncell x input 0\n", "cell wants"},
		{"bad type", "design a\ncell x foo 0 n\n", "unknown cell type"},
		{"bad delay", "design a\ncell x input -3 n\n", "bad delay"},
		{"bad delay text", "design a\ncell x input xx n\n", "bad delay"},
	}
	for _, tc := range cases {
		_, err := ParseNet(strings.NewReader(tc.in))
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want contains %q", tc.name, err, tc.want)
		}
	}
}

func TestParseNetCommentsAndBlank(t *testing.T) {
	in := `
# header comment
design d

cell pi_a input 0 a
cell g comb 3000 y a
# trailing
cell po output 0 - y
`
	nl, err := ParseNet(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ParseNet: %v", err)
	}
	if nl.NumCells() != 3 {
		t.Errorf("cells = %d, want 3", nl.NumCells())
	}
}

const sampleBlif = `
# MCNC-style sample
.model demo
.inputs a b \
        c
.outputs f g
.names a b t1
11 1
.names t1 c f
1- 1
-1 1
.latch f g re clk 0
.end
`

func TestParseBlif(t *testing.T) {
	nl, err := ParseBlif(strings.NewReader(sampleBlif), DefaultBlifOptions())
	if err != nil {
		t.Fatalf("ParseBlif: %v", err)
	}
	if nl.Name != "demo" {
		t.Errorf("model name = %q", nl.Name)
	}
	s := nl.ComputeStats()
	// 3 PIs, 2 POs, 2 comb cells, 1 latch.
	if s.Inputs != 3 || s.Outputs != 2 || s.CombCells != 2 || s.SeqCells != 1 {
		t.Errorf("bad shape: %+v", s)
	}
	// The latch output net "g" feeds primary output pad po_g.
	g := nl.NetID("g")
	if g < 0 {
		t.Fatal("net g missing")
	}
	if nl.Cells[nl.Nets[g].Driver.Cell].Type != Seq {
		t.Error("net g should be driven by the latch")
	}
	if err := nl.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestParseBlifConstNames(t *testing.T) {
	in := `
.model c
.inputs a
.outputs f
.names one
1
.names a one f
11 1
.end
`
	nl, err := ParseBlif(strings.NewReader(in), DefaultBlifOptions())
	if err != nil {
		t.Fatalf("ParseBlif: %v", err)
	}
	one := nl.NetID("one")
	if one < 0 {
		t.Fatal("constant net missing")
	}
	if nl.Cells[nl.Nets[one].Driver.Cell].Type != Input {
		t.Error("constant generator should be modeled as a source pad")
	}
}

func TestParseBlifErrors(t *testing.T) {
	cases := []struct{ name, in, want string }{
		{"no model", ".inputs a\n.end\n", "missing .model"},
		{"two models", ".model a\n.model b\n", "multiple .model"},
		{"unknown", ".model a\n.frob x\n", "unknown construct"},
		{"unsupported", ".model a\n.gate nand2 a=x b=y o=z\n", "unsupported construct"},
		{"stray row", ".model a\n11 1\n", "outside any command"},
		{"short latch", ".model a\n.latch x\n", ".latch wants"},
		{"empty names", ".model a\n.names\n", ".names with no signals"},
	}
	for _, tc := range cases {
		_, err := ParseBlif(strings.NewReader(tc.in), DefaultBlifOptions())
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want contains %q", tc.name, err, tc.want)
		}
	}
}

func TestParseBlifTwoModelsAfterEndIgnored(t *testing.T) {
	// Content after .end is ignored per common BLIF practice.
	in := ".model a\n.inputs x\n.outputs y\n.names x y\n1 1\n.end\ngarbage here\n"
	if _, err := ParseBlif(strings.NewReader(in), DefaultBlifOptions()); err != nil {
		t.Fatalf("post-.end content should be ignored: %v", err)
	}
}

func TestBlifThenNetRoundTrip(t *testing.T) {
	nl, err := ParseBlif(strings.NewReader(sampleBlif), DefaultBlifOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteNet(&buf, nl); err != nil {
		t.Fatal(err)
	}
	again, err := ParseNet(&buf)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if again.NumCells() != nl.NumCells() || again.NumNets() != nl.NumNets() {
		t.Error("BLIF -> .net -> parse changed design shape")
	}
}
