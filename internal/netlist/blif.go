package netlist

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// BlifOptions configures technology parameters applied while importing a
// BLIF logic description (BLIF itself carries no delay information).
type BlifOptions struct {
	CombDelay float64 // intrinsic delay assigned to .names cells
	SeqDelay  float64 // clock-to-out delay assigned to .latch cells
}

// DefaultBlifOptions returns era-plausible module delays.
func DefaultBlifOptions() BlifOptions {
	return BlifOptions{CombDelay: 3000, SeqDelay: 3500}
}

// ParseBlif reads a subset of Berkeley BLIF sufficient for the MCNC logic
// benchmarks after technology mapping: .model/.inputs/.outputs/.names/.latch/
// .end, with backslash line continuation. Truth-table rows under .names are
// accepted and ignored (only connectivity matters to layout). Each .names
// becomes a combinational cell, each .latch a sequential cell; pads are
// synthesized for .inputs and .outputs.
func ParseBlif(r io.Reader, opt BlifOptions) (*Netlist, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)

	var (
		model    string
		inputs   []string
		outputs  []string
		ended    bool
		b        = NewBuilder("")
		lineNo   int
		pending  string // continuation accumulator
		haveBody bool
	)

	emitNames := func(tokens []string) error {
		if len(tokens) == 0 {
			return fmt.Errorf("blif: line %d: .names with no signals", lineNo)
		}
		out := tokens[len(tokens)-1]
		ins := tokens[:len(tokens)-1]
		if len(ins) == 0 {
			// Constant generator: model as a source pad so it still has a
			// placeable, routable driver.
			b.AddCell("const_"+out, Input, 0, out)
			return nil
		}
		b.Comb("g_"+out, opt.CombDelay, out, ins...)
		return nil
	}
	emitLatch := func(tokens []string) error {
		if len(tokens) < 2 {
			return fmt.Errorf("blif: line %d: .latch wants input and output", lineNo)
		}
		in, out := tokens[0], tokens[1]
		// Optional <type> <control> [init-val] tokens are accepted and ignored.
		b.Seq("ff_"+out, opt.SeqDelay, out, in)
		return nil
	}

	process := func(line string) error {
		fields := strings.Fields(line)
		if len(fields) == 0 {
			return nil
		}
		if !strings.HasPrefix(fields[0], ".") {
			// Truth-table row (e.g. "01- 1"): connectivity-irrelevant.
			if !haveBody {
				return fmt.Errorf("blif: line %d: unexpected token %q outside any command", lineNo, fields[0])
			}
			return nil
		}
		switch fields[0] {
		case ".model":
			if model != "" {
				return fmt.Errorf("blif: line %d: multiple .model sections are not supported", lineNo)
			}
			if len(fields) >= 2 {
				model = fields[1]
			} else {
				model = "unnamed"
			}
			b = NewBuilder(model)
		case ".inputs":
			inputs = append(inputs, fields[1:]...)
		case ".outputs":
			outputs = append(outputs, fields[1:]...)
		case ".names":
			haveBody = true
			return emitNames(fields[1:])
		case ".latch":
			haveBody = true
			return emitLatch(fields[1:])
		case ".end":
			ended = true
		case ".wire_load_slope", ".gate", ".mlatch", ".clock", ".area", ".delay":
			return fmt.Errorf("blif: line %d: unsupported construct %s", lineNo, fields[0])
		default:
			return fmt.Errorf("blif: line %d: unknown construct %s", lineNo, fields[0])
		}
		return nil
	}

	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.Index(line, "#"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimRight(line, " \t")
		if strings.HasSuffix(line, "\\") {
			pending += strings.TrimSuffix(line, "\\") + " "
			continue
		}
		line = pending + line
		pending = ""
		if strings.TrimSpace(line) == "" {
			continue
		}
		if ended {
			continue
		}
		if err := process(line); err != nil {
			return nil, err
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("blif: read: %w", err)
	}
	if model == "" {
		return nil, fmt.Errorf("blif: missing .model")
	}
	for _, in := range inputs {
		b.Input("pi_"+in, in)
	}
	for _, out := range outputs {
		b.Output("po_"+out, out)
	}
	return b.Build()
}
