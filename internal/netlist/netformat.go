package netlist

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The native ".net" format is a line-oriented description:
//
//	# comment
//	design NAME
//	cell NAME TYPE DELAY_PS OUTNET|- [INNET ...]
//
// TYPE is input|output|comb|seq; "-" marks a cell without an output net.
// Cells appear in definition order; nets are implicit.

// ParseNet reads a netlist in the native .net format.
func ParseNet(r io.Reader) (*Netlist, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	b := NewBuilder("")
	named := false
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "design":
			if len(fields) != 2 {
				return nil, fmt.Errorf("net: line %d: design wants one name", lineNo)
			}
			if named {
				return nil, fmt.Errorf("net: line %d: duplicate design directive", lineNo)
			}
			b = NewBuilder(fields[1])
			named = true
		case "cell":
			if len(fields) < 5 {
				return nil, fmt.Errorf("net: line %d: cell wants NAME TYPE DELAY OUTNET [IN...]", lineNo)
			}
			name := fields[1]
			typ, err := ParseCellType(fields[2])
			if err != nil {
				return nil, fmt.Errorf("net: line %d: %v", lineNo, err)
			}
			delay, err := strconv.ParseFloat(fields[3], 64)
			if err != nil || delay < 0 {
				return nil, fmt.Errorf("net: line %d: bad delay %q", lineNo, fields[3])
			}
			out := fields[4]
			if out == "-" {
				out = ""
			}
			ins := make([]string, len(fields[5:]))
			for i, f := range fields[5:] {
				if f != "-" {
					ins[i] = f
				}
			}
			b.AddCell(name, typ, delay, out, ins...)
		default:
			return nil, fmt.Errorf("net: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("net: read: %w", err)
	}
	if !named {
		return nil, fmt.Errorf("net: missing design directive")
	}
	return b.Build()
}

// WriteNet emits the netlist in the native .net format, reparseable by
// ParseNet. Cells are written in index order so output is deterministic.
func WriteNet(w io.Writer, nl *Netlist) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %d cells, %d nets\n", len(nl.Cells), len(nl.Nets))
	fmt.Fprintf(bw, "design %s\n", nl.Name)
	for i := range nl.Cells {
		c := &nl.Cells[i]
		out := "-"
		if c.Out >= 0 {
			out = nl.Nets[c.Out].Name
		}
		fmt.Fprintf(bw, "cell %s %s %g %s", c.Name, c.Type, c.Delay, out)
		for _, in := range c.In {
			if in < 0 {
				fmt.Fprint(bw, " -")
			} else {
				fmt.Fprintf(bw, " %s", nl.Nets[in].Name)
			}
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}
