package netlist

import "fmt"

// Builder assembles a Netlist from cells declared against net names, the way
// both parsers and the synthetic benchmark generator produce designs. Nets
// are created implicitly the first time a name is mentioned; Build resolves
// all references and checks single-driver discipline.
type Builder struct {
	name  string
	cells []builderCell
	err   error
}

type builderCell struct {
	name   string
	typ    CellType
	delay  float64
	out    string // output net name, "" if none
	inputs []string
}

// NewBuilder starts a netlist named name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name}
}

// AddCell declares a cell. out is the name of the net driven by the cell's
// output pin ("" for none, e.g. primary-output pads); inputs are the net
// names feeding input pins 1..k in order. The first error sticks and is
// reported by Build.
func (b *Builder) AddCell(name string, typ CellType, delay float64, out string, inputs ...string) {
	if b.err != nil {
		return
	}
	if name == "" {
		b.err = fmt.Errorf("netlist: builder: empty cell name")
		return
	}
	ins := make([]string, len(inputs))
	copy(ins, inputs)
	b.cells = append(b.cells, builderCell{name: name, typ: typ, delay: delay, out: out, inputs: ins})
}

// Input declares a primary-input pad driving net out.
func (b *Builder) Input(name, out string) { b.AddCell(name, Input, 0, out) }

// Output declares a primary-output pad receiving net in.
func (b *Builder) Output(name, in string) { b.AddCell(name, Output, 0, "", in) }

// Comb declares a combinational cell.
func (b *Builder) Comb(name string, delay float64, out string, inputs ...string) {
	b.AddCell(name, Comb, delay, out, inputs...)
}

// Seq declares a sequential cell (flip-flop).
func (b *Builder) Seq(name string, delay float64, out string, inputs ...string) {
	b.AddCell(name, Seq, delay, out, inputs...)
}

// Build resolves names and returns a validated netlist.
func (b *Builder) Build() (*Netlist, error) {
	if b.err != nil {
		return nil, b.err
	}
	nl := &Netlist{Name: b.name}
	netID := make(map[string]int32)
	getNet := func(name string) int32 {
		if id, ok := netID[name]; ok {
			return id
		}
		id := int32(len(nl.Nets))
		nl.Nets = append(nl.Nets, Net{Name: name, Driver: PinRef{Cell: -1}})
		netID[name] = id
		return id
	}
	for _, bc := range b.cells {
		id := int32(len(nl.Cells))
		c := Cell{Name: bc.name, Type: bc.typ, Delay: bc.delay, Out: -1}
		if bc.out != "" {
			nid := getNet(bc.out)
			if nl.Nets[nid].Driver.Cell >= 0 {
				return nil, fmt.Errorf("netlist: net %q has multiple drivers (%q and %q)",
					bc.out, nl.Cells[nl.Nets[nid].Driver.Cell].Name, bc.name)
			}
			nl.Nets[nid].Driver = PinRef{Cell: id, Pin: 0}
			c.Out = nid
		}
		c.In = make([]int32, len(bc.inputs))
		for i, in := range bc.inputs {
			if in == "" {
				c.In[i] = -1
				continue
			}
			nid := getNet(in)
			nl.Nets[nid].Sinks = append(nl.Nets[nid].Sinks, PinRef{Cell: id, Pin: int32(i + 1)})
			c.In[i] = nid
		}
		nl.Cells = append(nl.Cells, c)
	}
	for i := range nl.Nets {
		if nl.Nets[i].Driver.Cell < 0 {
			return nil, fmt.Errorf("netlist: net %q has no driver", nl.Nets[i].Name)
		}
	}
	nl.rebuildIndex()
	if err := nl.Validate(); err != nil {
		return nil, err
	}
	return nl, nil
}

// MustBuild is Build but panics on error; for tests and examples.
func (b *Builder) MustBuild() *Netlist {
	nl, err := b.Build()
	if err != nil {
		panic(err)
	}
	return nl
}
