package netlist

import (
	"strings"
	"testing"
)

// Fuzz targets: the parsers must never panic, and anything they accept must
// validate and survive a write/parse round trip. Run with
// `go test -fuzz=FuzzParseNet ./internal/netlist` for exploration; the seed
// corpus runs in every plain `go test`.

func FuzzParseNet(f *testing.F) {
	f.Add("design d\ncell pi input 0 a\ncell g comb 3000 y a\ncell po output 0 - y\n")
	f.Add("# comment only\n")
	f.Add("design x\ncell a input 0 n1\ncell b seq 3500 n2 n1\ncell c output 0 - n2\n")
	f.Add("design bad\ncell a input 0\n")
	f.Add("cell before design\n")
	f.Fuzz(func(t *testing.T, in string) {
		nl, err := ParseNet(strings.NewReader(in))
		if err != nil {
			return
		}
		if verr := nl.Validate(); verr != nil {
			t.Fatalf("accepted netlist fails validation: %v", verr)
		}
		var sb strings.Builder
		if werr := WriteNet(&sb, nl); werr != nil {
			t.Fatalf("write: %v", werr)
		}
		again, rerr := ParseNet(strings.NewReader(sb.String()))
		if rerr != nil {
			t.Fatalf("canonical output fails to reparse: %v", rerr)
		}
		if again.NumCells() != nl.NumCells() || again.NumNets() != nl.NumNets() {
			t.Fatal("round trip changed shape")
		}
	})
}

func FuzzParseBlif(f *testing.F) {
	f.Add(".model m\n.inputs a b\n.outputs y\n.names a b y\n11 1\n.end\n")
	f.Add(".model m\n.latch a b re c 0\n.inputs a\n.outputs b\n.end\n")
	f.Add(".model\n")
	f.Add(".names x y\n")
	f.Add(".model m\n.inputs a \\\nb\n.outputs y\n.names a b y\n.end\n")
	f.Fuzz(func(t *testing.T, in string) {
		nl, err := ParseBlif(strings.NewReader(in), DefaultBlifOptions())
		if err != nil {
			return
		}
		if verr := nl.Validate(); verr != nil {
			t.Fatalf("accepted netlist fails validation: %v", verr)
		}
	})
}

func FuzzParseXnf(f *testing.F) {
	f.Add("LCANET, 4\nEXT, A, I\nEXT, Y, O\nSYM, G, AND2\nPIN, O, O, Y\nPIN, I, I, A\nEND\nEOF\n")
	f.Add("LCANET, 4\nSYM, F, DFF\nPIN, Q, O, q\nPIN, D, I, d\nPIN, C, I, clk\nEND\nEXT, d, I\nEXT, q, O\nEOF\n")
	f.Add("PIN, O, O, x\n")
	f.Fuzz(func(t *testing.T, in string) {
		nl, err := ParseXnf(strings.NewReader(in), DefaultXnfOptions())
		if err != nil {
			return
		}
		if verr := nl.Validate(); verr != nil {
			t.Fatalf("accepted netlist fails validation: %v", verr)
		}
	})
}
