package netlist

import (
	"strings"
	"testing"
)

// tiny builds a small valid design:
//
//	pi_a -> g1 -> g2 -> po_x
//	pi_b -> g1 ;  g2 also feeds ff1 -> g2 (feedback through the flop)
func tiny(t *testing.T) *Netlist {
	t.Helper()
	b := NewBuilder("tiny")
	b.Input("pi_a", "a")
	b.Input("pi_b", "bb")
	b.Comb("g1", 3000, "n1", "a", "bb")
	b.Comb("g2", 3000, "n2", "n1", "q")
	b.Seq("ff1", 3500, "q", "n2")
	b.Output("po_x", "n2")
	nl, err := b.Build()
	if err != nil {
		t.Fatalf("build tiny: %v", err)
	}
	return nl
}

func TestBuilderBasic(t *testing.T) {
	nl := tiny(t)
	if nl.NumCells() != 6 {
		t.Errorf("cells = %d, want 6", nl.NumCells())
	}
	if nl.NumNets() != 5 {
		t.Errorf("nets = %d, want 5", nl.NumNets())
	}
	if id := nl.CellID("g2"); id < 0 || nl.Cells[id].Type != Comb {
		t.Errorf("CellID(g2) broken: %d", id)
	}
	if nl.CellID("nope") != -1 {
		t.Error("CellID of missing cell should be -1")
	}
	n2 := nl.NetID("n2")
	if n2 < 0 {
		t.Fatal("net n2 missing")
	}
	if got := len(nl.Nets[n2].Sinks); got != 2 {
		t.Errorf("n2 sinks = %d, want 2 (ff1 and po_x)", got)
	}
}

func TestBuilderMultipleDrivers(t *testing.T) {
	b := NewBuilder("bad")
	b.Input("p1", "x")
	b.Input("p2", "x")
	b.Output("o", "x")
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "multiple drivers") {
		t.Fatalf("expected multiple-driver error, got %v", err)
	}
}

func TestBuilderUndrivenNet(t *testing.T) {
	b := NewBuilder("bad")
	b.Input("p1", "x")
	b.Comb("g", 1000, "y", "x", "ghost")
	b.Output("o", "y")
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "no driver") {
		t.Fatalf("expected no-driver error, got %v", err)
	}
}

func TestCombinationalCycleDetected(t *testing.T) {
	b := NewBuilder("cyc")
	b.Input("p", "a")
	b.Comb("g1", 1000, "x", "a", "y")
	b.Comb("g2", 1000, "y", "x")
	b.Output("o", "y")
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("expected cycle error, got %v", err)
	}
}

func TestCycleThroughFlopIsFine(t *testing.T) {
	nl := tiny(t) // g2 <- q <- ff1 <- n2 <- g2 is a loop broken by the flop
	lv, err := nl.Levels()
	if err != nil {
		t.Fatalf("Levels: %v", err)
	}
	if lv[nl.CellID("pi_a")] != 0 || lv[nl.CellID("ff1")] != 0 {
		t.Error("sources must be level 0")
	}
	if lv[nl.CellID("g1")] != 1 {
		t.Errorf("g1 level = %d, want 1", lv[nl.CellID("g1")])
	}
	if lv[nl.CellID("g2")] != 2 {
		t.Errorf("g2 level = %d, want 2", lv[nl.CellID("g2")])
	}
}

func TestSourceSinkClassification(t *testing.T) {
	nl := tiny(t)
	if !nl.IsSource(nl.CellID("pi_a")) || !nl.IsSource(nl.CellID("ff1")) {
		t.Error("primary inputs and flops must be timing sources")
	}
	if nl.IsSource(nl.CellID("g1")) {
		t.Error("comb cell is not a source")
	}
	ff := nl.CellID("ff1")
	if !nl.IsSinkPin(PinRef{Cell: ff, Pin: 1}) {
		t.Error("flop data input must be a timing sink")
	}
	if nl.IsSinkPin(PinRef{Cell: ff, Pin: 0}) {
		t.Error("flop output is not a timing sink")
	}
	po := nl.CellID("po_x")
	if !nl.IsSinkPin(PinRef{Cell: po, Pin: 1}) {
		t.Error("primary output input must be a timing sink")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	nl := tiny(t)
	if err := nl.Validate(); err != nil {
		t.Fatalf("valid netlist rejected: %v", err)
	}
	// Corrupt a sink reference.
	bad := *nl
	bad.Nets = append([]Net(nil), nl.Nets...)
	bad.Nets[0].Sinks = append([]PinRef(nil), nl.Nets[0].Sinks...)
	if len(bad.Nets[0].Sinks) > 0 {
		bad.Nets[0].Sinks[0].Pin = 99
		if err := bad.Validate(); err == nil {
			t.Error("corrupted sink pin not detected")
		}
	}
}

func TestStats(t *testing.T) {
	nl := tiny(t)
	s := nl.ComputeStats()
	if s.Cells != 6 || s.Nets != 5 || s.Inputs != 2 || s.Outputs != 1 || s.CombCells != 2 || s.SeqCells != 1 {
		t.Errorf("bad counts: %+v", s)
	}
	if s.MaxFanin != 2 {
		t.Errorf("MaxFanin = %d, want 2", s.MaxFanin)
	}
	// pi -> g1 -> g2 -> po_x: output pads sit one level past the last gate.
	if s.LogicDepth != 3 {
		t.Errorf("LogicDepth = %d, want 3", s.LogicDepth)
	}
}

func TestParseCellType(t *testing.T) {
	for _, s := range []string{"input", "output", "comb", "seq"} {
		ct, err := ParseCellType(s)
		if err != nil {
			t.Fatalf("ParseCellType(%q): %v", s, err)
		}
		if ct.String() != s {
			t.Errorf("round trip %q -> %v", s, ct)
		}
	}
	if _, err := ParseCellType("bogus"); err == nil {
		t.Error("bogus type accepted")
	}
}
