package netlist

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// XnfOptions configures technology parameters applied while importing XNF.
type XnfOptions struct {
	CombDelay float64 // intrinsic delay of combinational symbols (default 3000)
	SeqDelay  float64 // clock-to-out of DFF symbols (default 3500)
}

// DefaultXnfOptions returns era-plausible module delays.
func DefaultXnfOptions() XnfOptions {
	return XnfOptions{CombDelay: 3000, SeqDelay: 3500}
}

// ParseXnf reads a subset of the Xilinx Netlist Format (XNF), the other
// widely used FPGA interchange format of the paper's era, sufficient for
// structural netlists:
//
//	LCANET, 4
//	PROG, <tool>, <version>, ...
//	EXT, <signal>, <I|O>
//	SYM, <name>, <type>[, ...]
//	PIN, <pin>, <I|O>, <signal>[, ...]
//	END
//	EOF
//
// Record and field parsing is comma-separated with arbitrary spacing;
// comments ({ ... } and lines starting with #) are ignored. Symbols of type
// DFF/FD/FDR/FDC become sequential cells (only their D input is treated as a
// data pin; C/CLK/R/CLR pins are control and ignored for layout); every
// other symbol type becomes a combinational cell. EXT records synthesize
// input/output pads.
func ParseXnf(r io.Reader, opt XnfOptions) (*Netlist, error) {
	if opt.CombDelay <= 0 {
		opt.CombDelay = 3000
	}
	if opt.SeqDelay <= 0 {
		opt.SeqDelay = 3500
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)

	b := NewBuilder("xnf")
	type sym struct {
		name, typ string
		out       string
		ins       []string
		line      int
	}
	var (
		cur      *sym
		sawNet   bool
		lineNo   int
		exts     []struct{ sig, dir string }
		finished bool
	)
	flush := func() error {
		if cur == nil {
			return nil
		}
		seq := isSeqType(cur.typ)
		if cur.out == "" {
			return fmt.Errorf("xnf: line %d: symbol %q has no output pin", cur.line, cur.name)
		}
		if len(cur.ins) == 0 {
			return fmt.Errorf("xnf: line %d: symbol %q has no input pins", cur.line, cur.name)
		}
		if seq {
			b.Seq(cur.name, opt.SeqDelay, cur.out, cur.ins[0])
		} else {
			b.Comb(cur.name, opt.CombDelay, cur.out, cur.ins...)
		}
		cur = nil
		return nil
	}

	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.Index(line, "{"); i >= 0 {
			if j := strings.Index(line, "}"); j > i {
				line = line[:i] + line[j+1:]
			} else {
				line = line[:i]
			}
		}
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if finished {
			continue
		}
		fields := splitXnf(line)
		switch strings.ToUpper(fields[0]) {
		case "LCANET", "PROG", "PART", "PWR":
			sawNet = true
		case "EXT":
			if len(fields) < 3 {
				return nil, fmt.Errorf("xnf: line %d: EXT wants signal and direction", lineNo)
			}
			dir := strings.ToUpper(fields[2])
			if dir != "I" && dir != "O" {
				return nil, fmt.Errorf("xnf: line %d: EXT direction %q", lineNo, fields[2])
			}
			exts = append(exts, struct{ sig, dir string }{fields[1], dir})
		case "SYM":
			if err := flush(); err != nil {
				return nil, err
			}
			if len(fields) < 3 {
				return nil, fmt.Errorf("xnf: line %d: SYM wants name and type", lineNo)
			}
			cur = &sym{name: fields[1], typ: strings.ToUpper(fields[2]), line: lineNo}
		case "PIN":
			if cur == nil {
				return nil, fmt.Errorf("xnf: line %d: PIN outside SYM", lineNo)
			}
			if len(fields) < 4 {
				return nil, fmt.Errorf("xnf: line %d: PIN wants name, direction, signal", lineNo)
			}
			pin := strings.ToUpper(fields[1])
			dir := strings.ToUpper(fields[2])
			sig := fields[3]
			switch dir {
			case "O":
				if cur.out != "" {
					return nil, fmt.Errorf("xnf: line %d: symbol %q has two output pins", lineNo, cur.name)
				}
				cur.out = sig
			case "I":
				if isSeqType(cur.typ) && isControlPin(pin) {
					continue // clock/reset pins carry no layout connectivity here
				}
				cur.ins = append(cur.ins, sig)
			default:
				return nil, fmt.Errorf("xnf: line %d: PIN direction %q", lineNo, fields[2])
			}
		case "END":
			if err := flush(); err != nil {
				return nil, err
			}
		case "EOF":
			if err := flush(); err != nil {
				return nil, err
			}
			finished = true
		default:
			return nil, fmt.Errorf("xnf: line %d: unknown record %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("xnf: read: %w", err)
	}
	if err := flush(); err != nil {
		return nil, err
	}
	if !sawNet {
		return nil, fmt.Errorf("xnf: missing LCANET/PROG header")
	}
	for _, e := range exts {
		if e.dir == "I" {
			b.Input("pi_"+e.sig, e.sig)
		} else {
			b.Output("po_"+e.sig, e.sig)
		}
	}
	return b.Build()
}

func splitXnf(line string) []string {
	raw := strings.Split(line, ",")
	out := raw[:0]
	for _, f := range raw {
		out = append(out, strings.TrimSpace(f))
	}
	return out
}

func isSeqType(t string) bool {
	switch t {
	case "DFF", "FD", "FDR", "FDC", "FDCE", "FDRE":
		return true
	}
	return false
}

func isControlPin(p string) bool {
	switch p {
	case "C", "CLK", "K", "R", "RD", "CLR", "CE", "PRE", "S":
		return true
	}
	return false
}
