package netlist

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomNetlist builds a random valid layered design directly through the
// Builder (independent of the netgen package, which has its own tests).
func randomNetlist(rng *rand.Rand) *Netlist {
	b := NewBuilder("prop")
	nIn := 1 + rng.Intn(5)
	var pool []string
	for i := 0; i < nIn; i++ {
		n := "i" + string(rune('a'+i))
		b.Input("pi_"+n, n)
		pool = append(pool, n)
	}
	nGates := 1 + rng.Intn(30)
	for g := 0; g < nGates; g++ {
		k := 1 + rng.Intn(3)
		ins := make([]string, 0, k)
		seen := map[string]bool{}
		for j := 0; j < k; j++ {
			n := pool[rng.Intn(len(pool))]
			if seen[n] {
				continue
			}
			seen[n] = true
			ins = append(ins, n)
		}
		out := "n" + itoa(g)
		if rng.Intn(6) == 0 {
			b.Seq("ff"+itoa(g), 3500, out, ins[0])
		} else {
			b.Comb("g"+itoa(g), 3000, out, ins...)
		}
		pool = append(pool, out)
	}
	b.Output("po", pool[len(pool)-1])
	nl, err := b.Build()
	if err != nil {
		panic(err)
	}
	return nl
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [8]byte
	p := len(buf)
	for i > 0 {
		p--
		buf[p] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[p:])
}

// Property: write → parse → write is a fixed point, and parsing preserves
// structure and validity.
func TestWriteParseFixedPointProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nl := randomNetlist(rng)
		var b1 bytes.Buffer
		if err := WriteNet(&b1, nl); err != nil {
			return false
		}
		again, err := ParseNet(bytes.NewReader(b1.Bytes()))
		if err != nil {
			t.Logf("seed %d: reparse: %v", seed, err)
			return false
		}
		if err := again.Validate(); err != nil {
			t.Logf("seed %d: revalidate: %v", seed, err)
			return false
		}
		var b2 bytes.Buffer
		if err := WriteNet(&b2, again); err != nil {
			return false
		}
		if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
			t.Logf("seed %d: not a fixed point", seed)
			return false
		}
		s1, s2 := nl.ComputeStats(), again.ComputeStats()
		return s1 == s2
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: levelization is a valid topological labelling — every comb/pad
// cell sits strictly above all of its non-source fanins.
func TestLevelsTopologicalProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nl := randomNetlist(rng)
		lv, err := nl.Levels()
		if err != nil {
			return false
		}
		for i := range nl.Cells {
			c := &nl.Cells[i]
			if nl.IsSource(int32(i)) {
				if lv[i] != 0 {
					return false
				}
				continue
			}
			for _, in := range c.In {
				if in < 0 {
					continue
				}
				drv := nl.Nets[in].Driver.Cell
				if !nl.IsSource(drv) && lv[i] <= lv[drv] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
