package netlist

import (
	"strings"
	"testing"
)

const sampleXnf = `
LCANET, 4
PROG, repro-test, 1.0
# structural sample with a flop
EXT, A, I
EXT, B, I
EXT, Y, O
SYM, G1, AND2 { a comment }
PIN, O, O, T1
PIN, I0, I, A
PIN, I1, I, B
END
SYM, FF1, DFF
PIN, Q, O, Q1
PIN, D, I, T1
PIN, C, I, CLK_NET
END
SYM, G2, OR2
PIN, O, O, Y
PIN, I0, I, Q1
PIN, I1, I, A
END
EOF
`

func TestParseXnf(t *testing.T) {
	nl, err := ParseXnf(strings.NewReader(sampleXnf), DefaultXnfOptions())
	if err != nil {
		t.Fatalf("ParseXnf: %v", err)
	}
	s := nl.ComputeStats()
	if s.Inputs != 2 || s.Outputs != 1 || s.CombCells != 2 || s.SeqCells != 1 {
		t.Errorf("shape: %+v", s)
	}
	ff := nl.CellID("FF1")
	if ff < 0 {
		t.Fatal("FF1 missing")
	}
	if nl.Cells[ff].Type != Seq {
		t.Error("DFF not sequential")
	}
	// The clock pin must not appear as a data input.
	if len(nl.Cells[ff].In) != 1 {
		t.Errorf("FF1 has %d data inputs, want 1", len(nl.Cells[ff].In))
	}
	if err := nl.Validate(); err != nil {
		t.Error(err)
	}
	// G2 reads Q1 from the flop and A from the pad.
	g2 := nl.CellID("G2")
	if len(nl.Cells[g2].In) != 2 {
		t.Errorf("G2 fanin %d", len(nl.Cells[g2].In))
	}
}

func TestParseXnfErrors(t *testing.T) {
	cases := []struct{ name, in, want string }{
		{"no header", "SYM, G, AND2\nPIN, O, O, x\nPIN, I, I, y\nEND\n", "missing LCANET"},
		{"pin outside sym", "LCANET, 4\nPIN, O, O, x\n", "PIN outside SYM"},
		{"two outputs", "LCANET, 4\nSYM, G, AND2\nPIN, O, O, x\nPIN, O2, O, y\n", "two output pins"},
		{"no output", "LCANET, 4\nSYM, G, AND2\nPIN, I, I, y\nEND\n", "no output pin"},
		{"no inputs", "LCANET, 4\nSYM, G, AND2\nPIN, O, O, x\nEND\n", "no input pins"},
		{"bad ext dir", "LCANET, 4\nEXT, x, Q\n", "EXT direction"},
		{"bad record", "LCANET, 4\nFROB, 1\n", "unknown record"},
		{"bad pin dir", "LCANET, 4\nSYM, G, AND2\nPIN, O, B, x\n", "PIN direction"},
		{"short sym", "LCANET, 4\nSYM, G\n", "SYM wants"},
		{"short pin", "LCANET, 4\nSYM, G, AND2\nPIN, O\n", "PIN wants"},
	}
	for _, tc := range cases {
		_, err := ParseXnf(strings.NewReader(tc.in), DefaultXnfOptions())
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want contains %q", tc.name, err, tc.want)
		}
	}
}

func TestParseXnfIgnoresAfterEOF(t *testing.T) {
	in := sampleXnf + "\ngarbage that would fail\n"
	if _, err := ParseXnf(strings.NewReader(in), DefaultXnfOptions()); err != nil {
		t.Fatalf("content after EOF should be ignored: %v", err)
	}
}

func TestXnfToNetRoundTrip(t *testing.T) {
	nl, err := ParseXnf(strings.NewReader(sampleXnf), DefaultXnfOptions())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteNet(&sb, nl); err != nil {
		t.Fatal(err)
	}
	again, err := ParseNet(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if again.NumCells() != nl.NumCells() || again.NumNets() != nl.NumNets() {
		t.Error("XNF -> .net -> parse changed shape")
	}
}
