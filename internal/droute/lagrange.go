package droute

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/fabric"
)

// Backend names a full detailed-routing algorithm. The zero value selects the
// paper-era ordered router.
type Backend string

const (
	// BackendOrdered is the paper's sequential router: longest-first single
	// pass per channel with randomized-ordering retries ([8][11]).
	BackendOrdered Backend = "ordered"
	// BackendNegotiated is the PathFinder-style negotiated-congestion router
	// (RouteAllNegotiated): channels negotiate independently in parallel.
	BackendNegotiated Backend = "negotiated"
	// BackendLagrange is the Lagrangian-relaxation router (RouteAllLagrange):
	// nets route independently in parallel against shared congestion prices.
	BackendLagrange Backend = "lagrange"
)

// ParseBackend validates a backend name from a flag or API field. The empty
// string selects BackendOrdered, keeping every pre-existing configuration
// bit-identical.
func ParseBackend(s string) (Backend, error) {
	switch Backend(s) {
	case "", BackendOrdered:
		return BackendOrdered, nil
	case BackendNegotiated:
		return BackendNegotiated, nil
	case BackendLagrange:
		return BackendLagrange, nil
	}
	return "", fmt.Errorf("droute: unknown router backend %q (want %q, %q or %q)",
		s, BackendOrdered, BackendNegotiated, BackendLagrange)
}

// LagrangeConfig tunes the Lagrangian-relaxation full detailed router. The
// scheme follows the parallel FPGA routers built on Lagrangian relaxation
// (ParaLarH and the sub-gradient Steiner router): capacity constraints are
// priced rather than enforced, every net independently picks its cheapest
// track under the current prices, and a projected sub-gradient step raises
// the price of over-subscribed segments between iterations.
type LagrangeConfig struct {
	// MaxIters caps the price-update iterations (default 24). The loop exits
	// early as soon as an iteration produces no over-subscribed segment.
	MaxIters int
	// Step is the initial sub-gradient step size (default 1.0); iteration t
	// uses Step/√(t+1), the classic diminishing schedule that guarantees
	// sub-gradient convergence.
	Step float64
	// Seed feeds the per-net tie-break RNGs and the ordered-router fallback.
	Seed int64
	// FallbackAttempts is the ordering-retry budget of the ordered-router
	// fallback on instances the relaxation cannot fully embed (default 8).
	FallbackAttempts int
	// Workers caps how many nets choose tracks concurrently within an
	// iteration (0 = GOMAXPROCS). Scheduling only: the choice pass reads a
	// frozen price snapshot and each worker writes a disjoint index of the
	// choice array, so results are bit-identical for every worker count.
	Workers int
}

func (c *LagrangeConfig) setDefaults() {
	if c.MaxIters <= 0 {
		c.MaxIters = 24
	}
	if c.Step <= 0 {
		c.Step = 1.0
	}
	if c.FallbackAttempts <= 0 {
		c.FallbackAttempts = 8
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
}

// lagItem is one unrouted channel need plus its dedicated tie-break RNG.
type lagItem struct {
	net int32
	ci  int
	ch  int
	rng *rand.Rand
}

// lagChannel is the priced view of one channel: λ ≥ 0 per (track, segment),
// the occupancy of the current iteration's choices, and the segments already
// owned in the fabric (blocked at any price).
type lagChannel struct {
	price   [][]float64
	occ     [][]int16
	blocked [][]bool
}

// RouteAllLagrange detail-routes every unrouted channel need of the globally
// routed nets by Lagrangian relaxation, then commits the final assignment
// into f. Returns the number of channel needs left unrouted.
//
// Each iteration proceeds in three strictly separated steps. First, every
// net independently picks the track minimizing base cost plus the summed
// congestion prices λ of the segments it would occupy — this step runs on a
// bounded worker pool against a frozen price snapshot, with workers writing
// only their own items' choice slots, so it is embarrassingly parallel and
// schedule-independent. Second, occupancy is accumulated serially and the
// iteration terminates the loop if no segment is over-subscribed. Third, a
// projected sub-gradient step updates the prices: λ ← max(0, λ + αt·(occ−1))
// with αt = Step/√(t+1), raising prices on contended segments and decaying
// them on idle ones. Equal-cost track ties are broken by a per-net RNG split
// deterministically from (Seed, net, channel index), which decorrelates
// symmetric nets (otherwise they would all migrate to the same alternative
// track each iteration and oscillate) without making the outcome depend on
// scheduling. Commitment is serial in ascending (net, channel-index) order
// with first-come-wins on residual conflicts and a salvage RouteChan for the
// losers; if needs remain unrouted, the ordered router with retry orderings
// runs as a fallback and the better result is kept, so the relaxation is
// never a downgrade. Results are bit-identical for fixed (Seed, MaxIters)
// regardless of Workers or GOMAXPROCS.
func RouteAllLagrange(f *fabric.Fabric, routes []fabric.NetRoute, base Cost, cfg LagrangeConfig) int {
	cfg.setDefaults()

	var items []lagItem
	for id := range routes {
		if !routes[id].Global {
			continue
		}
		for ci := range routes[id].Chans {
			ca := &routes[id].Chans[ci]
			if !ca.Routed() {
				items = append(items, lagItem{
					net: int32(id),
					ci:  ci,
					ch:  ca.Ch,
					rng: rand.New(rand.NewSource(splitSeed(cfg.Seed, int32(id), ci))),
				})
			}
		}
	}
	if len(items) == 0 {
		return 0
	}
	// One attempt per channel need; salvage and fallback RouteChan calls
	// count their own attempts on top, as genuinely separate tries.
	f.Stats.DRouteAttempts += int64(len(items))

	a := f.A
	chans := make([]*lagChannel, a.Channels())
	for _, it := range items {
		if chans[it.ch] != nil {
			continue
		}
		lc := &lagChannel{
			price:   make([][]float64, a.Tracks),
			occ:     make([][]int16, a.Tracks),
			blocked: channelBlocked(f, it.ch),
		}
		for t := 0; t < a.Tracks; t++ {
			n := len(a.Seg[t])
			lc.price[t] = make([]float64, n)
			lc.occ[t] = make([]int16, n)
		}
		chans[it.ch] = lc
	}

	choices := make([]negChoice, len(items))
	workers := min(cfg.Workers, len(items))
	for iter := 0; iter < cfg.MaxIters; iter++ {
		// Step 1: parallel per-net track choice against frozen prices.
		parallelIndex(workers, len(items), func(i int) {
			choices[i] = lagrangeChoose(f, routes, chans[items[i].ch], items[i], base)
		})
		// Step 2: serial occupancy accumulation.
		for _, lc := range chans {
			if lc == nil {
				continue
			}
			for t := range lc.occ {
				clear(lc.occ[t])
			}
		}
		for i, it := range items {
			c := choices[i]
			if c.track < 0 {
				continue
			}
			occ := chans[it.ch].occ[c.track]
			for s := c.segLo; s <= c.segHi; s++ {
				occ[s]++
			}
		}
		// Step 3: projected sub-gradient price update; exit when feasible.
		step := cfg.Step / math.Sqrt(float64(iter+1))
		over := 0
		for _, lc := range chans {
			if lc == nil {
				continue
			}
			for t := range lc.occ {
				price := lc.price[t]
				for s, o := range lc.occ[t] {
					switch g := int(o) - 1; {
					case g > 0:
						price[s] += step * float64(g)
						over++
					case g < 0 && price[s] > 0:
						price[s] = math.Max(0, price[s]-step)
					}
				}
			}
		}
		if over == 0 {
			break
		}
	}

	// Commit serially in ascending (net, ci) order: first-come wins on
	// residual conflicts, and conflict losers get a salvage attempt on
	// whatever capacity remains.
	commit := func() int {
		failed := 0
		for i, it := range items {
			c := choices[i]
			ca := &routes[it.net].Chans[it.ci]
			if c.track >= 0 && f.HRangeFree(ca.Ch, c.track, c.segLo, c.segHi) {
				f.AllocH(ca.Ch, c.track, c.segLo, c.segHi, it.net)
				ca.Track, ca.SegLo, ca.SegHi = c.track, c.segLo, c.segHi
				continue
			}
			if RouteChan(f, it.net, &routes[it.net], it.ci, base) {
				continue
			}
			failed++ // the salvage RouteChan already counted the failure
		}
		return failed
	}
	ripItems := func() {
		for _, it := range items {
			if routes[it.net].Chans[it.ci].Routed() {
				UnrouteChan(f, it.net, &routes[it.net], it.ci)
			}
		}
	}
	failed := commit()
	if failed == 0 {
		return 0
	}
	// Non-convergent (infeasible or pathological) instance: the classic
	// ordered router with retry orderings may salvage more. Keep whichever
	// result loses fewer channel needs, so the relaxation is never a
	// downgrade relative to the baseline.
	ripItems()
	orderedFailed := RouteAllDetailedWorkers(f, routes, base, cfg.FallbackAttempts,
		rand.New(rand.NewSource(cfg.Seed+43)), cfg.Workers)
	if orderedFailed <= failed {
		return orderedFailed
	}
	ripItems()
	return commit()
}

// lagrangeChoose picks the track minimizing base cost plus summed congestion
// prices for one channel need. It reads only the frozen per-channel prices
// and blocked matrix — never the fabric's mutable state or other items'
// choices — so concurrent calls for distinct items are race-free and
// schedule-independent. Exact cost ties are broken by reservoir sampling on
// the item's own RNG: the stream advances only with this item's tie count,
// which is itself a pure function of the frozen prices, so the draw sequence
// is identical no matter which worker runs the item or when.
func lagrangeChoose(f *fabric.Fabric, routes []fabric.NetRoute, lc *lagChannel, it lagItem, base Cost) negChoice {
	a := f.A
	ca := &routes[it.net].Chans[it.ci]
	best := math.Inf(1)
	bt := -1
	var bl, bh int
	ties := 0
	for t := 0; t < a.Tracks; t++ {
		sl, sh := a.SegRange(t, ca.Lo, ca.Hi)
		price := 0.0
		feasible := true
		for s := sl; s <= sh; s++ {
			if lc.blocked[t][s] {
				feasible = false
				break
			}
			price += lc.price[t][s]
		}
		if !feasible {
			continue
		}
		segs := a.Seg[t]
		waste := float64((segs[sh].End - segs[sl].Start) - (ca.Hi - ca.Lo + 1))
		cost := base.WWaste*waste + base.WSegs*float64(sh-sl+1) + price
		switch {
		case cost < best:
			best, bt, bl, bh = cost, t, sl, sh
			ties = 1
		case cost == best:
			ties++
			if it.rng.Intn(ties) == 0 {
				bt, bl, bh = t, sl, sh
			}
		}
	}
	return negChoice{bt, bl, bh}
}

// channelBlocked snapshots which (track, segment) slots of channel ch are
// already owned in the fabric.
func channelBlocked(f *fabric.Fabric, ch int) [][]bool {
	a := f.A
	blocked := make([][]bool, a.Tracks)
	for t := 0; t < a.Tracks; t++ {
		n := len(a.Seg[t])
		blocked[t] = make([]bool, n)
		for s := 0; s < n; s++ {
			blocked[t][s] = f.HOwner(ch, t, s) != fabric.Free
		}
	}
	return blocked
}

// parallelIndex runs fn(i) for every i in [0, n) on up to workers
// goroutines. Work is handed out in chunks via an atomic cursor; fn must
// touch only state owned by index i, which makes the execution order
// unobservable and the result schedule-independent.
func parallelIndex(workers, n int, fn func(int)) {
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	const chunk = 16
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lo := int(next.Add(chunk)) - chunk
				if lo >= n {
					return
				}
				hi := min(lo+chunk, n)
				for i := lo; i < hi; i++ {
					fn(i)
				}
			}
		}()
	}
	wg.Wait()
}

// splitSeed derives the per-item RNG seed from the backend seed and the
// item's (net, channel-index) identity via SplitMix64 — statistically
// independent streams from sequential identifiers, and stable no matter how
// many other items exist or in what order they are built.
func splitSeed(seed int64, net int32, ci int) int64 {
	z := splitmix64(uint64(seed))
	z = splitmix64(z ^ uint64(uint32(net))<<20 ^ uint64(uint32(ci)))
	return int64(z)
}

func splitmix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
