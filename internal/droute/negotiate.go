package droute

import (
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"repro/internal/fabric"
)

// NegotiateConfig tunes the negotiated-congestion full detailed router, a
// PathFinder-style iterative scheme adapted to segmented channels: every net
// picks its cheapest track while sharing is permitted but increasingly
// penalized, and per-segment history cost accumulates on chronically
// contended segments until the solution untangles. This post-dates the
// paper (it is the direction detailed FPGA routing took) and is offered as
// an opt-in alternative to the ordered single-pass router of [8][11].
type NegotiateConfig struct {
	MaxIters     int     // negotiation iterations (default 40)
	PresentBase  float64 // first-iteration sharing penalty (default 0.5)
	PresentGrow  float64 // multiplicative growth per iteration (default 1.6)
	HistoryDelta float64 // history added to each over-subscribed segment per iteration (default 1.0)
	Seed         int64   // seed for the ordered-router fallback on non-convergent instances

	// FallbackAttempts is the ordering-retry budget of the ordered-router
	// fallback on non-convergent instances (default 8).
	FallbackAttempts int

	// Workers caps how many channels are negotiated concurrently
	// (0 = GOMAXPROCS). Scheduling only: results are identical for every
	// worker count because channels share no horizontal resources — each is
	// negotiated independently and committed in fixed channel order.
	Workers int
}

func (c *NegotiateConfig) setDefaults() {
	if c.MaxIters <= 0 {
		c.MaxIters = 40
	}
	if c.PresentBase <= 0 {
		c.PresentBase = 0.5
	}
	if c.PresentGrow <= 1 {
		c.PresentGrow = 1.6
	}
	if c.HistoryDelta <= 0 {
		c.HistoryDelta = 1.0
	}
	if c.FallbackAttempts <= 0 {
		c.FallbackAttempts = 8
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
}

// negItem identifies one unrouted channel need during negotiation.
type negItem struct {
	net int32
	ci  int
}

// negChoice is an item's current (track, segLo, segHi); track == -1 when
// nothing is feasible.
type negChoice struct{ track, segLo, segHi int }

// RouteAllNegotiated detail-routes every unrouted channel need of the
// globally routed nets using congestion negotiation, then commits the final
// conflict-free assignments into f. Channel needs that still conflict after
// MaxIters (the loser keeps Track == -1) or that fit no track at all are
// counted in the returned failure total.
//
// Horizontal segments never span channels, so the negotiation decomposes
// exactly by channel: each channel's needs are negotiated independently (its
// own occupancy, history and present-cost schedule) on a bounded worker pool
// and the results are committed serially in ascending channel order. The
// outcome is bit-identical for every Workers value and GOMAXPROCS setting.
func RouteAllNegotiated(f *fabric.Fabric, routes []fabric.NetRoute, base Cost, cfg NegotiateConfig) int {
	cfg.setDefaults()

	var items []negItem
	for id := range routes {
		if !routes[id].Global {
			continue
		}
		for ci := range routes[id].Chans {
			if !routes[id].Chans[ci].Routed() {
				items = append(items, negItem{int32(id), ci})
			}
		}
	}
	if len(items) == 0 {
		return 0
	}
	// One attempt per channel need; the salvage RouteChan calls at commit
	// count their own attempts on top, as genuinely separate tries.
	f.Stats.DRouteAttempts += int64(len(items))
	// Ascending channel first (grouping the per-channel subproblems), then
	// longest intervals first within a channel: they have the fewest
	// alternatives, so they should claim resources first both during
	// negotiation and at commit. The (net, ci) tiebreak makes the ordering a
	// total one — a net with two equal-length intervals in different channels
	// would otherwise land in sort-instability-dependent order.
	sort.Slice(items, func(i, j int) bool {
		a1 := &routes[items[i].net].Chans[items[i].ci]
		a2 := &routes[items[j].net].Chans[items[j].ci]
		if a1.Ch != a2.Ch {
			return a1.Ch < a2.Ch
		}
		l1, l2 := a1.Hi-a1.Lo, a2.Hi-a2.Lo
		if l1 != l2 {
			return l1 > l2
		}
		if items[i].net != items[j].net {
			return items[i].net < items[j].net
		}
		return items[i].ci < items[j].ci
	})

	// Contiguous per-channel groups of the sorted item list.
	type group struct{ lo, hi int }
	var groups []group
	for lo := 0; lo < len(items); {
		ch := routes[items[lo].net].Chans[items[lo].ci].Ch
		hi := lo + 1
		for hi < len(items) && routes[items[hi].net].Chans[items[hi].ci].Ch == ch {
			hi++
		}
		groups = append(groups, group{lo, hi})
		lo = hi
	}

	// Negotiate each channel independently. Workers write disjoint choices
	// ranges and only read f (no fabric mutation happens until commit), so the
	// pool is race-free; per-group results do not depend on scheduling.
	choices := make([]negChoice, len(items))
	if workers := min(cfg.Workers, len(groups)); workers <= 1 {
		for _, g := range groups {
			negotiateChannel(f, routes, base, cfg, items[g.lo:g.hi], choices[g.lo:g.hi])
		}
	} else {
		work := make(chan group)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for g := range work {
					negotiateChannel(f, routes, base, cfg, items[g.lo:g.hi], choices[g.lo:g.hi])
				}
			}()
		}
		for _, g := range groups {
			work <- g
		}
		close(work)
		wg.Wait()
	}

	// Commit serially in item (= ascending channel) order: first-come wins on
	// residual conflicts, and conflict losers get a salvage attempt on
	// whatever capacity remains (matters only when the instance is infeasible
	// and negotiation could not converge).
	commit := func() int {
		failed := 0
		for i, it := range items {
			c := choices[i]
			ca := &routes[it.net].Chans[it.ci]
			if c.track >= 0 && f.HRangeFree(ca.Ch, c.track, c.segLo, c.segHi) {
				f.AllocH(ca.Ch, c.track, c.segLo, c.segHi, it.net)
				ca.Track, ca.SegLo, ca.SegHi = c.track, c.segLo, c.segHi
				continue
			}
			if RouteChan(f, it.net, &routes[it.net], it.ci, base) {
				continue
			}
			failed++ // the salvage RouteChan already counted the failure
		}
		return failed
	}
	ripItems := func() {
		for _, it := range items {
			if routes[it.net].Chans[it.ci].Routed() {
				UnrouteChan(f, it.net, &routes[it.net], it.ci)
			}
		}
	}
	failed := commit()
	if failed == 0 {
		return 0
	}
	// Non-convergent (infeasible or pathological) instance: the classic
	// ordered router with retry orderings may salvage more. Keep whichever
	// result loses fewer channel needs, so negotiation is never a downgrade.
	ripItems()
	orderedFailed := RouteAllDetailedWorkers(f, routes, base, cfg.FallbackAttempts,
		rand.New(rand.NewSource(cfg.Seed+41)), cfg.Workers)
	if orderedFailed <= failed {
		return orderedFailed
	}
	ripItems()
	return commit()
}

// negotiateChannel runs the present/history negotiation loop for the needs of
// one channel (items, all sharing the same Ch), writing each item's final
// track selection into choices. It reads the fabric's current H ownership
// (pre-routed nets block their segments permanently) but never mutates f —
// commitment happens later, serially. The present-cost escalation and the
// convergence check are local to the channel: a hard-to-untangle channel no
// longer inflates the sharing penalty for channels that converged early.
func negotiateChannel(f *fabric.Fabric, routes []fabric.NetRoute, base Cost, cfg NegotiateConfig, items []negItem, choices []negChoice) {
	a := f.A
	ch := routes[items[0].net].Chans[items[0].ci].Ch

	// Occupancy and history over this channel's tracks, permitting
	// over-subscription during negotiation; segments already owned in the
	// fabric are permanently blocked.
	occ := make([][]int16, a.Tracks)
	hist := make([][]float64, a.Tracks)
	blocked := make([][]bool, a.Tracks)
	for t := 0; t < a.Tracks; t++ {
		n := len(a.Seg[t])
		occ[t] = make([]int16, n)
		hist[t] = make([]float64, n)
		blocked[t] = make([]bool, n)
		for s := 0; s < n; s++ {
			blocked[t][s] = f.HOwner(ch, t, s) != fabric.Free
		}
	}
	for i := range choices {
		choices[i].track = -1
	}

	pres := cfg.PresentBase
	for iter := 0; iter < cfg.MaxIters; iter++ {
		// Rip everything (occupancy only) and re-route in index order.
		for t := range occ {
			for s := range occ[t] {
				occ[t][s] = 0
			}
		}
		for i, it := range items {
			ca := &routes[it.net].Chans[it.ci]
			best := math.Inf(1)
			bt := -1
			var bl, bh int
			for t := 0; t < a.Tracks; t++ {
				sl, sh := a.SegRange(t, ca.Lo, ca.Hi)
				cost := 0.0
				feasible := true
				for s := sl; s <= sh; s++ {
					if blocked[t][s] {
						feasible = false
						break
					}
					share := float64(occ[t][s])
					cost += (1 + hist[t][s]) * (1 + pres*share)
				}
				if !feasible {
					continue
				}
				segs := a.Seg[t]
				waste := float64((segs[sh].End - segs[sl].Start) - (ca.Hi - ca.Lo + 1))
				cost += base.WWaste*waste + base.WSegs*float64(sh-sl+1)
				if cost < best {
					best, bt, bl, bh = cost, t, sl, sh
				}
			}
			choices[i] = negChoice{bt, bl, bh}
			if bt >= 0 {
				for s := bl; s <= bh; s++ {
					occ[bt][s]++
				}
			}
		}
		// Check for over-subscription; accrue history on contended segments.
		clean := true
		for i := range items {
			c := choices[i]
			if c.track < 0 {
				continue
			}
			for s := c.segLo; s <= c.segHi; s++ {
				if occ[c.track][s] > 1 {
					clean = false
					hist[c.track][s] += cfg.HistoryDelta
				}
			}
		}
		if clean {
			return
		}
		pres *= cfg.PresentGrow
	}
}
