package droute

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/fabric"
)

// NegotiateConfig tunes the negotiated-congestion full detailed router, a
// PathFinder-style iterative scheme adapted to segmented channels: every net
// picks its cheapest track while sharing is permitted but increasingly
// penalized, and per-segment history cost accumulates on chronically
// contended segments until the solution untangles. This post-dates the
// paper (it is the direction detailed FPGA routing took) and is offered as
// an opt-in alternative to the ordered single-pass router of [8][11].
type NegotiateConfig struct {
	MaxIters     int     // negotiation iterations (default 40)
	PresentBase  float64 // first-iteration sharing penalty (default 0.5)
	PresentGrow  float64 // multiplicative growth per iteration (default 1.6)
	HistoryDelta float64 // history added to each over-subscribed segment per iteration (default 1.0)
	Seed         int64   // seed for the ordered-router fallback on non-convergent instances
}

func (c *NegotiateConfig) setDefaults() {
	if c.MaxIters <= 0 {
		c.MaxIters = 40
	}
	if c.PresentBase <= 0 {
		c.PresentBase = 0.5
	}
	if c.PresentGrow <= 1 {
		c.PresentGrow = 1.6
	}
	if c.HistoryDelta <= 0 {
		c.HistoryDelta = 1.0
	}
}

// RouteAllNegotiated detail-routes every unrouted channel need of the
// globally routed nets using congestion negotiation, then commits the final
// conflict-free assignments into f. Channel needs that still conflict after
// MaxIters (the loser keeps Track == -1) or that fit no track at all are
// counted in the returned failure total.
func RouteAllNegotiated(f *fabric.Fabric, routes []fabric.NetRoute, base Cost, cfg NegotiateConfig) int {
	cfg.setDefaults()
	a := f.A

	// Work items: one per unrouted channel need.
	type item struct {
		net int32
		ci  int
	}
	var items []item
	for id := range routes {
		if !routes[id].Global {
			continue
		}
		for ci := range routes[id].Chans {
			if !routes[id].Chans[ci].Routed() {
				items = append(items, item{int32(id), ci})
			}
		}
	}
	if len(items) == 0 {
		return 0
	}
	// One attempt per channel need; the salvage RouteChan calls at commit
	// count their own attempts on top, as genuinely separate tries.
	f.Stats.DRouteAttempts += int64(len(items))
	// Longest intervals first: they have the fewest alternatives, so they
	// should claim resources first both during negotiation and at commit.
	// The (net, ci) tiebreak makes the ordering a total one — a net with two
	// equal-length intervals in different channels would otherwise land in
	// sort-instability-dependent order.
	sort.Slice(items, func(i, j int) bool {
		a1 := &routes[items[i].net].Chans[items[i].ci]
		a2 := &routes[items[j].net].Chans[items[j].ci]
		l1, l2 := a1.Hi-a1.Lo, a2.Hi-a2.Lo
		if l1 != l2 {
			return l1 > l2
		}
		if items[i].net != items[j].net {
			return items[i].net < items[j].net
		}
		return items[i].ci < items[j].ci
	})

	// Shared occupancy and history, mirroring the fabric's H segments but
	// permitting over-subscription during negotiation. Segments already owned
	// in the fabric (pre-routed nets) are permanently blocked.
	occ := make([][][]int16, a.Channels())
	hist := make([][][]float64, a.Channels())
	blocked := make([][][]bool, a.Channels())
	for ch := 0; ch < a.Channels(); ch++ {
		occ[ch] = make([][]int16, a.Tracks)
		hist[ch] = make([][]float64, a.Tracks)
		blocked[ch] = make([][]bool, a.Tracks)
		for t := 0; t < a.Tracks; t++ {
			n := len(a.Seg[t])
			occ[ch][t] = make([]int16, n)
			hist[ch][t] = make([]float64, n)
			blocked[ch][t] = make([]bool, n)
			for s := 0; s < n; s++ {
				blocked[ch][t][s] = f.HOwner(ch, t, s) != fabric.Free
			}
		}
	}

	// choice[i] is item i's current (track, segLo, segHi), track == -1 if
	// nothing feasible.
	type choice struct{ track, segLo, segHi int }
	choices := make([]choice, len(items))
	for i := range choices {
		choices[i].track = -1
	}

	pres := cfg.PresentBase
	for iter := 0; iter < cfg.MaxIters; iter++ {
		// Rip everything (occupancy only) and re-route in index order.
		for ch := range occ {
			for t := range occ[ch] {
				for s := range occ[ch][t] {
					occ[ch][t][s] = 0
				}
			}
		}
		for i, it := range items {
			ca := &routes[it.net].Chans[it.ci]
			best := math.Inf(1)
			bt := -1
			var bl, bh int
			for t := 0; t < a.Tracks; t++ {
				sl, sh := a.SegRange(t, ca.Lo, ca.Hi)
				cost := 0.0
				feasible := true
				for s := sl; s <= sh; s++ {
					if blocked[ca.Ch][t][s] {
						feasible = false
						break
					}
					share := float64(occ[ca.Ch][t][s])
					cost += (1 + hist[ca.Ch][t][s]) * (1 + pres*share)
				}
				if !feasible {
					continue
				}
				segs := a.Seg[t]
				waste := float64((segs[sh].End - segs[sl].Start) - (ca.Hi - ca.Lo + 1))
				cost += base.WWaste*waste + base.WSegs*float64(sh-sl+1)
				if cost < best {
					best, bt, bl, bh = cost, t, sl, sh
				}
			}
			choices[i] = choice{bt, bl, bh}
			if bt >= 0 {
				for s := bl; s <= bh; s++ {
					occ[ca.Ch][bt][s]++
				}
			}
		}
		// Check for over-subscription; accrue history on contended segments.
		clean := true
		for i, it := range items {
			c := choices[i]
			if c.track < 0 {
				continue
			}
			ch := routes[it.net].Chans[it.ci].Ch
			for s := c.segLo; s <= c.segHi; s++ {
				if occ[ch][c.track][s] > 1 {
					clean = false
					hist[ch][c.track][s] += cfg.HistoryDelta
				}
			}
		}
		if clean {
			break
		}
		pres *= cfg.PresentGrow
	}

	// Commit: first-come wins on residual conflicts, and conflict losers get
	// a salvage attempt on whatever capacity remains (matters only when the
	// instance is infeasible and negotiation could not converge).
	commit := func() int {
		failed := 0
		for i, it := range items {
			c := choices[i]
			ca := &routes[it.net].Chans[it.ci]
			if c.track >= 0 && f.HRangeFree(ca.Ch, c.track, c.segLo, c.segHi) {
				f.AllocH(ca.Ch, c.track, c.segLo, c.segHi, it.net)
				ca.Track, ca.SegLo, ca.SegHi = c.track, c.segLo, c.segHi
				continue
			}
			if RouteChan(f, it.net, &routes[it.net], it.ci, base) {
				continue
			}
			failed++ // the salvage RouteChan already counted the failure
		}
		return failed
	}
	ripItems := func() {
		for _, it := range items {
			if routes[it.net].Chans[it.ci].Routed() {
				UnrouteChan(f, it.net, &routes[it.net], it.ci)
			}
		}
	}
	failed := commit()
	if failed == 0 {
		return 0
	}
	// Non-convergent (infeasible or pathological) instance: the classic
	// ordered router with retry orderings may salvage more. Keep whichever
	// result loses fewer channel needs, so negotiation is never a downgrade.
	ripItems()
	orderedFailed := RouteAllDetailed(f, routes, base, 8, rand.New(rand.NewSource(cfg.Seed+41)))
	if orderedFailed <= failed {
		return orderedFailed
	}
	ripItems()
	return commit()
}
