package droute

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/arch"
	"repro/internal/fabric"
)

// singleTrackArch builds a 1-row architecture whose single track is cut into
// exactly the given segments — used to script Figure-2-style scenarios.
func singleTrackArch(t *testing.T, segLens []int, tracks int) *arch.Arch {
	t.Helper()
	cols := 0
	for _, l := range segLens {
		cols += l
	}
	p := arch.Default(1, cols, tracks)
	p.SegPattern = segLens
	p.PhaseStep = 0 // all tracks identical so the scenario is exact
	return arch.MustNew(p)
}

func need(ch, lo, hi int) fabric.NetRoute {
	return fabric.NetRoute{Global: true, Chans: []fabric.ChanAssign{{Ch: ch, Lo: lo, Hi: hi, Track: -1}}}
}

func TestPickTrackMinimizesWastage(t *testing.T) {
	// Two tracks with different segmentation: track 0 = [0,4)[4,8), track 1
	// phase-shifted. Interval [1,2] fits in track 0's first segment with
	// wastage 2.
	p := arch.Default(1, 8, 2)
	p.SegPattern = []int{4}
	p.PhaseStep = 2 // track 1 = [0,2)[2,6)[6,8)
	a := arch.MustNew(p)
	f := fabric.New(a)
	tr, sl, sh, ok := PickTrack(f, 0, 2, 3, DefaultCost())
	if !ok {
		t.Fatal("no track found")
	}
	// Track 0 seg [0,4): waste 2, 1 segment -> cost 2+4 = 6.
	// Track 1 seg [2,6): waste 2, 1 segment -> same cost; tie goes to track 0.
	if tr != 0 || sl != sh {
		t.Errorf("picked track %d segs [%d,%d]", tr, sl, sh)
	}
	// Interval [0,1]: track 0 waste 2 (seg [0,4)), track 1 waste 0 (seg [0,2)).
	tr, _, _, ok = PickTrack(f, 0, 0, 1, DefaultCost())
	if !ok || tr != 1 {
		t.Errorf("interval [0,1] picked track %d, want 1 (zero wastage)", tr)
	}
}

func TestPickTrackPrefersFewerSegments(t *testing.T) {
	// Track 0: [0,2)[2,4)[4,6)[6,8); track 1: [0,8). Interval [1,6] needs 3
	// segments on track 0 (waste 1, cost 1+12=13) vs 1 segment on track 1
	// (waste 2, cost 2+4=6).
	p := arch.Default(1, 8, 2)
	p.SegPattern = []int{2, 2, 2, 2, 8}
	p.PhaseStep = 8
	a := arch.MustNew(p)
	if len(a.Seg[1]) != 1 {
		t.Fatalf("track 1 segmentation unexpected: %v", a.Seg[1])
	}
	f := fabric.New(a)
	tr, _, _, ok := PickTrack(f, 0, 1, 6, DefaultCost())
	if !ok || tr != 1 {
		t.Errorf("picked track %d, want 1 (fewer antifuses)", tr)
	}
}

// TestFigure2Scenario reconstructs the paper's Figure 2: with rigid
// segmentation, the placement with the smaller total net length is
// unroutable, while an alternative (longer) placement routes completely.
// Single track cut as [0,2)[2,6)[6,8); three two-pin nets.
func TestFigure2Scenario(t *testing.T) {
	a := singleTrackArch(t, []int{2, 4, 2}, 1)
	f := fabric.New(a)
	cost := DefaultCost()

	// "Left" placement: N1=[0,1], N2=[2,3], N3=[4,5]. Total length 3.
	routes := []fabric.NetRoute{need(0, 0, 1), need(0, 2, 3), need(0, 4, 5)}
	okCount := 0
	for id := range routes {
		if RouteChan(f, int32(id), &routes[id], 0, cost) {
			okCount++
		}
	}
	if okCount != 2 {
		t.Fatalf("left placement: %d/3 nets routed, want exactly 2 (N2/N3 share segment [2,6))", okCount)
	}

	// "Right" placement (cell B moved): N1=[0,1], N2=[6,7], N3=[2,5].
	// Total length 5 — longer, yet fully routable.
	f.Reset()
	routes = []fabric.NetRoute{need(0, 0, 1), need(0, 6, 7), need(0, 2, 5)}
	for id := range routes {
		if !RouteChan(f, int32(id), &routes[id], 0, cost) {
			t.Fatalf("right placement: net %d failed", id)
		}
	}
	if err := f.CheckConsistent(routes); err != nil {
		t.Error(err)
	}
}

func TestRouteNetCountsMissing(t *testing.T) {
	a := singleTrackArch(t, []int{4, 4}, 1)
	f := fabric.New(a)
	// Net needs channels 0 and 1; block channel 1 entirely.
	f.AllocH(1, 0, 0, 1, 99)
	r := fabric.NetRoute{Global: true, Chans: []fabric.ChanAssign{
		{Ch: 0, Lo: 0, Hi: 3, Track: -1},
		{Ch: 1, Lo: 0, Hi: 3, Track: -1},
	}}
	missing := RouteNet(f, 1, &r, DefaultCost())
	if missing != 1 {
		t.Fatalf("missing = %d, want 1", missing)
	}
	if !r.Chans[0].Routed() || r.Chans[1].Routed() {
		t.Error("wrong channel routed")
	}
	if r.DetailDone() {
		t.Error("route with missing channel reported done")
	}
}

func TestUnrouteChan(t *testing.T) {
	a := singleTrackArch(t, []int{4, 4}, 2)
	f := fabric.New(a)
	r := need(0, 1, 6)
	if !RouteChan(f, 5, &r, 0, DefaultCost()) {
		t.Fatal("route failed")
	}
	UnrouteChan(f, 5, &r, 0)
	if f.UsedH() != 0 {
		t.Error("segments leaked")
	}
	if r.Chans[0].Routed() {
		t.Error("channel still marked routed")
	}
}

func TestRouteAllDetailedOrderingMatters(t *testing.T) {
	// One track [0,2)[2,6)[6,8), second track [0,8).
	p := arch.Default(1, 8, 2)
	p.SegPattern = []int{2, 4, 2, 8}
	p.PhaseStep = 8
	a := arch.MustNew(p)
	f := fabric.New(a)
	// Three nets: [2,5] (fits track0 seg1 exactly or track1), [0,7] (only
	// track 1), [6,7] (track0 seg2 or track1). Longest-first ordering routes
	// [0,7] onto track 1 first, leaving the exact fits for track 0.
	routes := []fabric.NetRoute{need(0, 2, 5), need(0, 0, 7), need(0, 6, 7)}
	failed := RouteAllDetailed(f, routes, DefaultCost(), 1, rand.New(rand.NewSource(1)))
	if failed != 0 {
		t.Fatalf("failed = %d, want 0", failed)
	}
	if err := f.CheckConsistent(routes); err != nil {
		t.Error(err)
	}
}

func TestRouteAllDetailedRetriesHelp(t *testing.T) {
	// Craft a channel where greedy longest-first fails but some ordering
	// succeeds. Track A: [0,4)[4,8); track B: [0,8).
	// Nets: x=[0,3], y=[4,7], z=[2,5].
	// Longest-first ties (all length 3); deterministic tie-break routes x
	// first. x->A(seg0, waste 0) ... z needs A segs 0-1 or B. If x takes A0
	// and y takes A1, z takes B: all route. Hard to make greedy fail without
	// wastage ties, so instead verify retries never hurt: result with 8
	// attempts <= result with 1 attempt.
	p := arch.Default(1, 8, 2)
	p.SegPattern = []int{4, 4, 8}
	p.PhaseStep = 8
	a := arch.MustNew(p)
	mk := func() []fabric.NetRoute {
		return []fabric.NetRoute{need(0, 0, 3), need(0, 4, 7), need(0, 2, 5), need(0, 0, 7)}
	}
	f1 := fabric.New(a)
	r1 := mk()
	fail1 := RouteAllDetailed(f1, r1, DefaultCost(), 1, rand.New(rand.NewSource(1)))
	f8 := fabric.New(a)
	r8 := mk()
	fail8 := RouteAllDetailed(f8, r8, DefaultCost(), 8, rand.New(rand.NewSource(1)))
	if fail8 > fail1 {
		t.Errorf("more attempts made things worse: %d vs %d", fail8, fail1)
	}
	if err := f8.CheckConsistent(r8); err != nil {
		t.Error(err)
	}
}

// Property: random intervals on random segmentations — RouteChan either
// fails cleanly or produces a covering, consistent assignment; unrouting
// everything restores an empty fabric.
func TestRouteChanProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := arch.Default(2, 6+rng.Intn(30), 1+rng.Intn(5))
		p.SegPattern = []int{1 + rng.Intn(6), 1 + rng.Intn(9), 1 + rng.Intn(4)}
		p.PhaseStep = rng.Intn(5)
		a, err := arch.New(p)
		if err != nil {
			return false
		}
		f := fabric.New(a)
		var routes []fabric.NetRoute
		for i := 0; i < 25; i++ {
			ch := rng.Intn(a.Channels())
			lo := rng.Intn(a.Cols)
			hi := lo + rng.Intn(a.Cols-lo)
			routes = append(routes, need(ch, lo, hi))
		}
		for id := range routes {
			RouteChan(f, int32(id), &routes[id], 0, DefaultCost())
		}
		if err := f.CheckConsistent(routes); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		for id := range routes {
			if routes[id].Chans[0].Routed() {
				UnrouteChan(f, int32(id), &routes[id], 0)
			}
		}
		return f.UsedH() == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
