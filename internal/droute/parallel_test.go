package droute

import (
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/arch"
	"repro/internal/fabric"
	"repro/internal/groute"
	"repro/internal/layout"
	"repro/internal/netgen"
)

// routeKey flattens a detailed-routing outcome for exact comparison.
func routeKey(routes []fabric.NetRoute) [][]fabric.ChanAssign {
	out := make([][]fabric.ChanAssign, len(routes))
	for i := range routes {
		out[i] = append([]fabric.ChanAssign(nil), routes[i].Chans...)
	}
	return out
}

func equalKeys(a, b [][]fabric.ChanAssign) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// TestNegotiatedParallelInvariance pins the determinism contract of the
// channel-parallel negotiated router: for a fixed input, every worker count
// (1, 2, 8 and the GOMAXPROCS default) must produce the identical layout —
// same failure count, same track/segment assignment for every channel need of
// every net. Running under -race (the CI race gate covers this package)
// additionally proves the worker pool shares no mutable state.
func TestNegotiatedParallelInvariance(t *testing.T) {
	nl, err := netgen.Generate(netgen.Params{Name: "pw", Inputs: 5, Outputs: 4, Seq: 2, Comb: 45, Seed: 87})
	if err != nil {
		t.Fatal(err)
	}
	for _, tracks := range []int{10, 14} {
		for seed := int64(0); seed < 3; seed++ {
			a := arch.MustNew(arch.Default(6, 16, tracks))
			pl, err := layout.NewRandom(a, nl, rand.New(rand.NewSource(seed)))
			if err != nil {
				t.Fatal(err)
			}
			route := func(workers int) (int, *fabric.Fabric, []fabric.NetRoute) {
				f := fabric.New(a)
				routes := make([]fabric.NetRoute, nl.NumNets())
				if gf := groute.RouteAll(f, pl, routes); len(gf) > 0 {
					t.Skipf("global routing failed at %d tracks", tracks)
				}
				failed := RouteAllNegotiated(f, routes, DefaultCost(), NegotiateConfig{Workers: workers})
				return failed, f, routes
			}
			refFailed, refF, refRoutes := route(1)
			if err := refF.CheckConsistent(refRoutes); err != nil {
				t.Fatalf("tracks=%d seed=%d workers=1: %v", tracks, seed, err)
			}
			refKey := routeKey(refRoutes)
			for _, workers := range []int{2, 8, 0} {
				failed, f, routes := route(workers)
				if failed != refFailed {
					t.Errorf("tracks=%d seed=%d workers=%d: %d failed, want %d",
						tracks, seed, workers, failed, refFailed)
				}
				if !equalKeys(routeKey(routes), refKey) {
					t.Errorf("tracks=%d seed=%d workers=%d: layout differs from workers=1",
						tracks, seed, workers)
				}
				if err := f.CheckConsistent(routes); err != nil {
					t.Fatalf("tracks=%d seed=%d workers=%d: %v", tracks, seed, workers, err)
				}
			}
		}
	}
}

// TestNegotiatedGOMAXPROCSInvariance re-runs the default-workers router under
// GOMAXPROCS=1 and checks the result matches a fully parallel run — the same
// scheduling-independence contract the parallel annealer pins.
func TestNegotiatedGOMAXPROCSInvariance(t *testing.T) {
	nl, err := netgen.Generate(netgen.Params{Name: "pg", Inputs: 4, Outputs: 3, Seq: 2, Comb: 36, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	a := arch.MustNew(arch.Default(5, 14, 12))
	pl, err := layout.NewRandom(a, nl, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	route := func() (int, [][]fabric.ChanAssign) {
		f := fabric.New(a)
		routes := make([]fabric.NetRoute, nl.NumNets())
		if gf := groute.RouteAll(f, pl, routes); len(gf) > 0 {
			t.Skip("global routing failed")
		}
		failed := RouteAllNegotiated(f, routes, DefaultCost(), NegotiateConfig{})
		return failed, routeKey(routes)
	}
	wideFailed, wideKey := route()
	prev := runtime.GOMAXPROCS(1)
	oneFailed, oneKey := route()
	runtime.GOMAXPROCS(prev)
	if wideFailed != oneFailed || !equalKeys(wideKey, oneKey) {
		t.Errorf("GOMAXPROCS=1 result differs: %d failed vs %d", oneFailed, wideFailed)
	}
}
