// Package droute implements detailed routing for segmented channels: picking,
// for each net in each channel, a track whose free consecutive segments cover
// the net's column interval. Track choice minimizes a weighted sum of segment
// wastage and segment count (after Greene et al. [8] and Roy [11]), which
// constructively prefers short, low-antifuse-count embeddings — the paper's
// substitute for an explicit wirelength cost term. The same primitive serves
// the incremental in-the-loop router and the sequential baseline's full
// channel router.
package droute

import (
	"math"
	"math/rand"
	"runtime"
	"sort"

	"repro/internal/fabric"
)

// Cost weights the two terms of the track-selection objective.
type Cost struct {
	WWaste float64 // per column of allocated-but-unneeded segment length
	WSegs  float64 // per segment used (each extra segment implies an antifuse)
}

// DefaultCost returns the weights used throughout the reproduction.
func DefaultCost() Cost { return Cost{WWaste: 1, WSegs: 4} }

// PickTrack returns the cheapest feasible track for covering columns
// [lo, hi] in channel ch, or ok=false when no track has the needed free run.
func PickTrack(f *fabric.Fabric, ch, lo, hi int, cost Cost) (track, segLo, segHi int, ok bool) {
	a := f.A
	best := math.Inf(1)
	track = -1
	for t := 0; t < a.Tracks; t++ {
		sl, sh := a.SegRange(t, lo, hi)
		if !f.HRangeFree(ch, t, sl, sh) {
			continue
		}
		segs := a.Seg[t]
		waste := float64((segs[sh].End - segs[sl].Start) - (hi - lo + 1))
		c := cost.WWaste*waste + cost.WSegs*float64(sh-sl+1)
		if c < best {
			best, track, segLo, segHi = c, t, sl, sh
		}
	}
	return track, segLo, segHi, track >= 0
}

// RouteChan detail-routes channel entry ci of net id's route, allocating the
// chosen segments. The entry must currently be unrouted. Returns false when
// no track can host the interval.
func RouteChan(f *fabric.Fabric, id int32, r *fabric.NetRoute, ci int, cost Cost) bool {
	f.Stats.DRouteAttempts++
	ca := &r.Chans[ci]
	t, sl, sh, ok := PickTrack(f, ca.Ch, ca.Lo, ca.Hi, cost)
	if !ok {
		f.Stats.DRouteFails++
		return false
	}
	f.AllocH(ca.Ch, t, sl, sh, id)
	ca.Track, ca.SegLo, ca.SegHi = t, sl, sh
	return true
}

// UnrouteChan releases channel entry ci of net id's route and marks it
// unrouted.
func UnrouteChan(f *fabric.Fabric, id int32, r *fabric.NetRoute, ci int) {
	ca := &r.Chans[ci]
	f.FreeH(ca.Ch, ca.Track, ca.SegLo, ca.SegHi, id)
	ca.Track = -1
}

// RouteNet attempts to detail-route every unrouted channel of a globally
// routed net. It returns the number of channels that remain unrouted.
func RouteNet(f *fabric.Fabric, id int32, r *fabric.NetRoute, cost Cost) int {
	missing := 0
	for ci := range r.Chans {
		if r.Chans[ci].Routed() {
			continue
		}
		if !RouteChan(f, id, r, ci, cost) {
			missing++
		}
	}
	return missing
}

// chanItem identifies one channel need of one net during full routing.
type chanItem struct {
	net int32
	ci  int
	len int
}

// RouteAllDetailed is the sequential baseline's full detailed router: each
// channel is routed independently. Nets are first ordered longest-interval
// first (the classic segmented-channel heuristic); if any fail, additional
// randomized orderings are tried and the best assignment (fewest failures)
// kept. Returns the total number of channel needs left unrouted.
//
// Retry orderings for one channel are evaluated concurrently on up to
// GOMAXPROCS workers; see RouteAllDetailedWorkers for the determinism
// contract.
func RouteAllDetailed(f *fabric.Fabric, routes []fabric.NetRoute, cost Cost, attempts int, rng *rand.Rand) int {
	return RouteAllDetailedWorkers(f, routes, cost, attempts, rng, 0)
}

// RouteAllDetailedWorkers is RouteAllDetailed with an explicit cap on how
// many retry orderings are evaluated concurrently (0 = GOMAXPROCS).
//
// Workers is scheduling only: each retry ordering gets its own RNG seeded
// from a value drawn serially from rng before any attempt runs, and is
// evaluated as a pure simulation against a frozen snapshot of the channel's
// occupancy — attempts share no mutable state. The winner (fewest failures,
// lowest attempt index on ties, with the deterministic longest-first
// ordering as attempt zero) is then replayed into the fabric serially, so
// results are bit-identical for every worker count and GOMAXPROCS setting.
func RouteAllDetailedWorkers(f *fabric.Fabric, routes []fabric.NetRoute, cost Cost, attempts int, rng *rand.Rand, workers int) int {
	if attempts < 1 {
		attempts = 1
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	totalFailed := 0
	for ch := 0; ch < f.A.Channels(); ch++ {
		var items []chanItem
		for id := range routes {
			if !routes[id].Global {
				continue
			}
			for ci := range routes[id].Chans {
				ca := &routes[id].Chans[ci]
				if ca.Ch == ch && !ca.Routed() {
					items = append(items, chanItem{net: int32(id), ci: ci, len: ca.Hi - ca.Lo})
				}
			}
		}
		if len(items) == 0 {
			continue
		}
		sort.Slice(items, func(i, j int) bool {
			if items[i].len != items[j].len {
				return items[i].len > items[j].len
			}
			if items[i].net != items[j].net {
				return items[i].net < items[j].net
			}
			return items[i].ci < items[j].ci
		})
		bestFailed := routeChannelOrder(f, routes, items, cost)
		if bestFailed > 0 && attempts > 1 {
			// Per-attempt RNG splitting: seeds are drawn serially from the
			// caller's stream (fixed-seed results survive), then the shuffled
			// orderings are simulated concurrently against a frozen snapshot
			// of the channel.
			seeds := make([]int64, attempts-1)
			for k := range seeds {
				seeds[k] = rng.Int63()
			}
			unrouteChannel(f, routes, items)
			blocked := channelBlocked(f, ch)
			orders := make([][]chanItem, attempts)
			fails := make([]int, attempts)
			orders[0], fails[0] = items, bestFailed
			parallelIndex(min(workers, attempts-1), attempts-1, func(k int) {
				order := append([]chanItem(nil), items...)
				r := rand.New(rand.NewSource(seeds[k]))
				r.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
				orders[k+1], fails[k+1] = order, simulateOrder(f, routes, blocked, order, cost)
			})
			best := 0
			for k := 1; k < attempts; k++ {
				if fails[k] < fails[best] {
					best = k
				}
			}
			bestFailed = routeChannelOrder(f, routes, orders[best], cost)
		}
		totalFailed += bestFailed
	}
	return totalFailed
}

// simulateOrder counts how many channel needs a given routing order would
// fail to embed, mirroring routeChannelOrder/PickTrack exactly but against a
// private occupancy copy instead of the fabric — it mutates nothing, so
// concurrent simulations of different orders are race-free.
func simulateOrder(f *fabric.Fabric, routes []fabric.NetRoute, blocked [][]bool, items []chanItem, cost Cost) int {
	a := f.A
	occ := make([][]bool, len(blocked))
	for t := range blocked {
		occ[t] = append([]bool(nil), blocked[t]...)
	}
	failed := 0
	for _, it := range items {
		ca := &routes[it.net].Chans[it.ci]
		best := math.Inf(1)
		bt := -1
		var bl, bh int
		for t := 0; t < a.Tracks; t++ {
			sl, sh := a.SegRange(t, ca.Lo, ca.Hi)
			free := true
			for s := sl; s <= sh; s++ {
				if occ[t][s] {
					free = false
					break
				}
			}
			if !free {
				continue
			}
			segs := a.Seg[t]
			waste := float64((segs[sh].End - segs[sl].Start) - (ca.Hi - ca.Lo + 1))
			c := cost.WWaste*waste + cost.WSegs*float64(sh-sl+1)
			if c < best {
				best, bt, bl, bh = c, t, sl, sh
			}
		}
		if bt < 0 {
			failed++
			continue
		}
		for s := bl; s <= bh; s++ {
			occ[bt][s] = true
		}
	}
	return failed
}

func routeChannelOrder(f *fabric.Fabric, routes []fabric.NetRoute, items []chanItem, cost Cost) int {
	failed := 0
	for _, it := range items {
		if !RouteChan(f, it.net, &routes[it.net], it.ci, cost) {
			failed++
		}
	}
	return failed
}

func unrouteChannel(f *fabric.Fabric, routes []fabric.NetRoute, items []chanItem) {
	for _, it := range items {
		if routes[it.net].Chans[it.ci].Routed() {
			UnrouteChan(f, it.net, &routes[it.net], it.ci)
		}
	}
}
