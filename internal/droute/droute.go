// Package droute implements detailed routing for segmented channels: picking,
// for each net in each channel, a track whose free consecutive segments cover
// the net's column interval. Track choice minimizes a weighted sum of segment
// wastage and segment count (after Greene et al. [8] and Roy [11]), which
// constructively prefers short, low-antifuse-count embeddings — the paper's
// substitute for an explicit wirelength cost term. The same primitive serves
// the incremental in-the-loop router and the sequential baseline's full
// channel router.
package droute

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/fabric"
)

// Cost weights the two terms of the track-selection objective.
type Cost struct {
	WWaste float64 // per column of allocated-but-unneeded segment length
	WSegs  float64 // per segment used (each extra segment implies an antifuse)
}

// DefaultCost returns the weights used throughout the reproduction.
func DefaultCost() Cost { return Cost{WWaste: 1, WSegs: 4} }

// PickTrack returns the cheapest feasible track for covering columns
// [lo, hi] in channel ch, or ok=false when no track has the needed free run.
func PickTrack(f *fabric.Fabric, ch, lo, hi int, cost Cost) (track, segLo, segHi int, ok bool) {
	a := f.A
	best := math.Inf(1)
	track = -1
	for t := 0; t < a.Tracks; t++ {
		sl, sh := a.SegRange(t, lo, hi)
		if !f.HRangeFree(ch, t, sl, sh) {
			continue
		}
		segs := a.Seg[t]
		waste := float64((segs[sh].End - segs[sl].Start) - (hi - lo + 1))
		c := cost.WWaste*waste + cost.WSegs*float64(sh-sl+1)
		if c < best {
			best, track, segLo, segHi = c, t, sl, sh
		}
	}
	return track, segLo, segHi, track >= 0
}

// RouteChan detail-routes channel entry ci of net id's route, allocating the
// chosen segments. The entry must currently be unrouted. Returns false when
// no track can host the interval.
func RouteChan(f *fabric.Fabric, id int32, r *fabric.NetRoute, ci int, cost Cost) bool {
	f.Stats.DRouteAttempts++
	ca := &r.Chans[ci]
	t, sl, sh, ok := PickTrack(f, ca.Ch, ca.Lo, ca.Hi, cost)
	if !ok {
		f.Stats.DRouteFails++
		return false
	}
	f.AllocH(ca.Ch, t, sl, sh, id)
	ca.Track, ca.SegLo, ca.SegHi = t, sl, sh
	return true
}

// UnrouteChan releases channel entry ci of net id's route and marks it
// unrouted.
func UnrouteChan(f *fabric.Fabric, id int32, r *fabric.NetRoute, ci int) {
	ca := &r.Chans[ci]
	f.FreeH(ca.Ch, ca.Track, ca.SegLo, ca.SegHi, id)
	ca.Track = -1
}

// RouteNet attempts to detail-route every unrouted channel of a globally
// routed net. It returns the number of channels that remain unrouted.
func RouteNet(f *fabric.Fabric, id int32, r *fabric.NetRoute, cost Cost) int {
	missing := 0
	for ci := range r.Chans {
		if r.Chans[ci].Routed() {
			continue
		}
		if !RouteChan(f, id, r, ci, cost) {
			missing++
		}
	}
	return missing
}

// chanItem identifies one channel need of one net during full routing.
type chanItem struct {
	net int32
	ci  int
	len int
}

// RouteAllDetailed is the sequential baseline's full detailed router: each
// channel is routed independently. Nets are first ordered longest-interval
// first (the classic segmented-channel heuristic); if any fail, additional
// randomized orderings are tried and the best assignment (fewest failures)
// kept. Returns the total number of channel needs left unrouted.
func RouteAllDetailed(f *fabric.Fabric, routes []fabric.NetRoute, cost Cost, attempts int, rng *rand.Rand) int {
	if attempts < 1 {
		attempts = 1
	}
	totalFailed := 0
	for ch := 0; ch < f.A.Channels(); ch++ {
		var items []chanItem
		for id := range routes {
			if !routes[id].Global {
				continue
			}
			for ci := range routes[id].Chans {
				ca := &routes[id].Chans[ci]
				if ca.Ch == ch && !ca.Routed() {
					items = append(items, chanItem{net: int32(id), ci: ci, len: ca.Hi - ca.Lo})
				}
			}
		}
		if len(items) == 0 {
			continue
		}
		sort.Slice(items, func(i, j int) bool {
			if items[i].len != items[j].len {
				return items[i].len > items[j].len
			}
			if items[i].net != items[j].net {
				return items[i].net < items[j].net
			}
			return items[i].ci < items[j].ci
		})
		bestFailed := routeChannelOrder(f, routes, items, cost)
		if bestFailed > 0 && attempts > 1 {
			bestOrder := append([]chanItem(nil), items...)
			for try := 1; try < attempts && bestFailed > 0; try++ {
				unrouteChannel(f, routes, items)
				rng.Shuffle(len(items), func(i, j int) { items[i], items[j] = items[j], items[i] })
				failed := routeChannelOrder(f, routes, items, cost)
				if failed < bestFailed {
					bestFailed = failed
					copy(bestOrder, items)
				}
			}
			// Re-route with the best ordering found.
			unrouteChannel(f, routes, items)
			final := routeChannelOrder(f, routes, bestOrder, cost)
			bestFailed = final
		}
		totalFailed += bestFailed
	}
	return totalFailed
}

func routeChannelOrder(f *fabric.Fabric, routes []fabric.NetRoute, items []chanItem, cost Cost) int {
	failed := 0
	for _, it := range items {
		if !RouteChan(f, it.net, &routes[it.net], it.ci, cost) {
			failed++
		}
	}
	return failed
}

func unrouteChannel(f *fabric.Fabric, routes []fabric.NetRoute, items []chanItem) {
	for _, it := range items {
		if routes[it.net].Chans[it.ci].Routed() {
			UnrouteChan(f, it.net, &routes[it.net], it.ci)
		}
	}
}
