package droute

import (
	"math/rand"
	"testing"

	"repro/internal/arch"
	"repro/internal/fabric"
	"repro/internal/groute"
	"repro/internal/layout"
	"repro/internal/netgen"
)

// TestNegotiationUntanglesOrderingTrap builds a channel where greedy
// longest-first fails but a different assignment succeeds — negotiation must
// find it.
func TestNegotiationUntanglesOrderingTrap(t *testing.T) {
	// Track 0: [0,2)[2,6)[6,8); track 1: [0,4)[4,8).
	p := arch.Default(1, 8, 2)
	p.SegPattern = []int{2, 4, 2}
	p.PhaseStep = 0
	a := arch.MustNew(p)
	// Overwrite track 1 by rebuilding with a phase shift: instead use a
	// custom second pattern via PhaseStep.
	p.PhaseStep = 2 // track 1: [0,4)[4,8) given pattern (2,4,2) shifted by 2
	a = arch.MustNew(p)
	if len(a.Seg[1]) != 3 {
		t.Logf("track1 segs: %v", a.Seg[1])
	}

	// Nets: x=[3,4] (straddles track boundaries differently per track),
	// y=[0,3], z=[4,7]. Greedy order (longest first: y,z,x) can strand x.
	mk := func() []fabric.NetRoute {
		return []fabric.NetRoute{need(0, 3, 4), need(0, 0, 3), need(0, 4, 7)}
	}
	fGreedy := fabric.New(a)
	rGreedy := mk()
	greedyFailed := RouteAllDetailed(fGreedy, rGreedy, DefaultCost(), 1, rand.New(rand.NewSource(1)))

	fNeg := fabric.New(a)
	rNeg := mk()
	negFailed := RouteAllNegotiated(fNeg, rNeg, DefaultCost(), NegotiateConfig{})
	if negFailed > greedyFailed {
		t.Errorf("negotiation (%d failed) worse than greedy (%d failed)", negFailed, greedyFailed)
	}
	if negFailed == 0 {
		if err := fNeg.CheckConsistent(rNeg); err != nil {
			t.Fatal(err)
		}
	}
}

// Negotiation must never do worse than the single-pass router across random
// full-design instances, and its results must be fabric-consistent.
func TestNegotiationAtLeastAsGoodAsGreedy(t *testing.T) {
	nl, err := netgen.Generate(netgen.Params{Name: "ng", Inputs: 5, Outputs: 4, Seq: 2, Comb: 45, Seed: 87})
	if err != nil {
		t.Fatal(err)
	}
	for _, tracks := range []int{10, 14, 18} {
		for seed := int64(0); seed < 3; seed++ {
			a := arch.MustNew(arch.Default(6, 16, tracks))
			rng := rand.New(rand.NewSource(seed))
			pl, err := layout.NewRandom(a, nl, rng)
			if err != nil {
				t.Fatal(err)
			}
			route := func(neg bool) (int, *fabric.Fabric, []fabric.NetRoute) {
				f := fabric.New(a)
				routes := make([]fabric.NetRoute, nl.NumNets())
				if gf := groute.RouteAll(f, pl, routes); len(gf) > 0 {
					t.Skipf("global routing failed at %d tracks", tracks)
				}
				if neg {
					return RouteAllNegotiated(f, routes, DefaultCost(), NegotiateConfig{}), f, routes
				}
				return RouteAllDetailed(f, routes, DefaultCost(), 1, rand.New(rand.NewSource(seed))), f, routes
			}
			greedyFailed, _, _ := route(false)
			negFailed, fNeg, rNeg := route(true)
			if negFailed > greedyFailed {
				t.Errorf("tracks=%d seed=%d: negotiation %d failed vs greedy %d",
					tracks, seed, negFailed, greedyFailed)
			}
			if err := fNeg.CheckConsistent(rNeg); err != nil {
				t.Fatalf("tracks=%d seed=%d: %v", tracks, seed, err)
			}
		}
	}
}

func TestNegotiationRespectsPreRouted(t *testing.T) {
	a := arch.MustNew(arch.Default(1, 8, 1))
	f := fabric.New(a)
	// Block the whole single track with a foreign net.
	f.AllocH(0, 0, 0, len(a.Seg[0])-1, 99)
	routes := []fabric.NetRoute{need(0, 1, 3)}
	failed := RouteAllNegotiated(f, routes, DefaultCost(), NegotiateConfig{})
	if failed != 1 {
		t.Errorf("failed = %d, want 1 (track fully blocked)", failed)
	}
	if routes[0].Chans[0].Routed() {
		t.Error("net routed through blocked segments")
	}
}

func TestNegotiationEmptyInput(t *testing.T) {
	a := arch.MustNew(arch.Default(1, 8, 2))
	f := fabric.New(a)
	if failed := RouteAllNegotiated(f, nil, DefaultCost(), NegotiateConfig{}); failed != 0 {
		t.Errorf("failed = %d on empty input", failed)
	}
}
