package droute

import (
	"math/rand"
	"testing"

	"repro/internal/arch"
	"repro/internal/fabric"
)

// FuzzDetailedRoute: arbitrary segmentation patterns, phases and channel
// needs must never panic the full detailed router, and whatever it routes
// must be a valid, consistent, covering assignment that unroutes cleanly.
func FuzzDetailedRoute(f *testing.F) {
	f.Add(uint8(8), uint8(2), uint8(4), uint8(4), uint8(0), []byte{0, 0, 3, 0, 4, 3}, int64(1))
	f.Add(uint8(12), uint8(3), uint8(3), uint8(7), uint8(2), []byte{1, 2, 9, 0, 0, 11, 1, 5, 5}, int64(7))
	f.Add(uint8(30), uint8(1), uint8(9), uint8(1), uint8(5), []byte{0, 10, 19, 0, 10, 19, 0, 0, 29}, int64(3))
	f.Add(uint8(5), uint8(6), uint8(1), uint8(2), uint8(1), []byte{2, 4, 4}, int64(-9))
	f.Fuzz(func(t *testing.T, colsB, tracksB, seg1, seg2, phase uint8, needBytes []byte, seed int64) {
		cols := int(colsB)%40 + 2
		tracks := int(tracksB)%6 + 1
		p := arch.Default(2, cols, tracks)
		p.SegPattern = []int{int(seg1)%9 + 1, int(seg2)%9 + 1}
		p.PhaseStep = int(phase) % 7
		a, err := arch.New(p)
		if err != nil {
			t.Fatalf("clamped params rejected: %v", err)
		}
		f := fabric.New(a)

		// Each 3-byte chunk is one channel need, clamped into range.
		var routes []fabric.NetRoute
		for i := 0; i+2 < len(needBytes) && len(routes) < 48; i += 3 {
			ch := int(needBytes[i]) % a.Channels()
			lo := int(needBytes[i+1]) % cols
			hi := lo + int(needBytes[i+2])%(cols-lo)
			routes = append(routes, need(ch, lo, hi))
		}
		if len(routes) == 0 {
			return
		}

		attempts := 1 + int(seed&3)
		failed := RouteAllDetailed(f, routes, DefaultCost(), attempts, rand.New(rand.NewSource(seed)))
		if failed < 0 || failed > len(routes) {
			t.Fatalf("failed = %d with %d needs", failed, len(routes))
		}

		// The fabric and the route descriptors must agree exactly.
		if err := f.CheckConsistent(routes); err != nil {
			t.Fatal(err)
		}

		// Every routed assignment must cover its column interval.
		routed := 0
		for id := range routes {
			ca := &routes[id].Chans[0]
			if !ca.Routed() {
				continue
			}
			routed++
			if ca.Track < 0 || ca.Track >= a.Tracks {
				t.Fatalf("net %d on track %d of %d", id, ca.Track, a.Tracks)
			}
			segs := a.Seg[ca.Track]
			if ca.SegLo < 0 || ca.SegHi >= len(segs) || ca.SegLo > ca.SegHi {
				t.Fatalf("net %d segment range [%d,%d] of %d", id, ca.SegLo, ca.SegHi, len(segs))
			}
			if segs[ca.SegLo].Start > ca.Lo || segs[ca.SegHi].End <= ca.Hi {
				t.Fatalf("net %d segments [%d,%d) do not cover columns [%d,%d]",
					id, segs[ca.SegLo].Start, segs[ca.SegHi].End, ca.Lo, ca.Hi)
			}
			wantLo, wantHi := a.SegRange(ca.Track, ca.Lo, ca.Hi)
			if ca.SegLo != wantLo || ca.SegHi != wantHi {
				t.Fatalf("net %d segment range [%d,%d], SegRange says [%d,%d]",
					id, ca.SegLo, ca.SegHi, wantLo, wantHi)
			}
		}
		if routed+failed != len(routes) {
			t.Fatalf("routed %d + failed %d != %d needs", routed, failed, len(routes))
		}

		// Unrouting everything must restore an empty fabric.
		for id := range routes {
			if routes[id].Chans[0].Routed() {
				UnrouteChan(f, int32(id), &routes[id], 0)
			}
		}
		if f.UsedH() != 0 {
			t.Fatalf("%d segments leaked after unrouting", f.UsedH())
		}
	})
}

// The full-router ordering is a total order: among equal-length intervals the
// lower net id routes first and therefore wins the last free track.
func TestRouteAllDetailedTiebreakByNetID(t *testing.T) {
	// One track [0,8): capacity for exactly one of the two identical needs.
	p := arch.Default(1, 8, 1)
	p.SegPattern = []int{8}
	p.PhaseStep = 0
	a := arch.MustNew(p)
	f := fabric.New(a)
	routes := []fabric.NetRoute{need(0, 2, 5), need(0, 2, 5)}
	failed := RouteAllDetailed(f, routes, DefaultCost(), 1, rand.New(rand.NewSource(1)))
	if failed != 1 {
		t.Fatalf("failed = %d, want 1", failed)
	}
	if !routes[0].Chans[0].Routed() || routes[1].Chans[0].Routed() {
		t.Errorf("equal-length tie must go to the lower net id: net0 routed=%v net1 routed=%v",
			routes[0].Chans[0].Routed(), routes[1].Chans[0].Routed())
	}
}

// Same property for the negotiated router's commit ordering, including the
// (net, ci) tiebreak for one net holding equal-length intervals in several
// channels: the outcome must be identical run to run.
func TestRouteAllNegotiatedDeterministic(t *testing.T) {
	p := arch.Default(2, 10, 2)
	p.SegPattern = []int{5, 5}
	p.PhaseStep = 0
	a := arch.MustNew(p)
	mk := func() []fabric.NetRoute {
		return []fabric.NetRoute{
			// Net 0: equal-length needs in channels 0 and 2 (exercises the ci
			// tiebreak), plus competitors.
			{Global: true, Chans: []fabric.ChanAssign{
				{Ch: 0, Lo: 1, Hi: 4, Track: -1},
				{Ch: 2, Lo: 1, Hi: 4, Track: -1},
			}},
			need(0, 1, 4),
			need(2, 1, 4),
			need(0, 0, 9),
		}
	}
	key := func(routes []fabric.NetRoute) [][3]int {
		var k [][3]int
		for id := range routes {
			for ci := range routes[id].Chans {
				ca := &routes[id].Chans[ci]
				k = append(k, [3]int{ca.Track, ca.SegLo, ca.SegHi})
			}
		}
		return k
	}
	f1 := fabric.New(a)
	r1 := mk()
	fail1 := RouteAllNegotiated(f1, r1, DefaultCost(), NegotiateConfig{Seed: 5})
	f2 := fabric.New(a)
	r2 := mk()
	fail2 := RouteAllNegotiated(f2, r2, DefaultCost(), NegotiateConfig{Seed: 5})
	if fail1 != fail2 {
		t.Fatalf("failure counts diverged: %d vs %d", fail1, fail2)
	}
	k1, k2 := key(r1), key(r2)
	for i := range k1 {
		if k1[i] != k2[i] {
			t.Errorf("assignment %d diverged: %v vs %v", i, k1[i], k2[i])
		}
	}
	if err := f1.CheckConsistent(r1); err != nil {
		t.Error(err)
	}
}
