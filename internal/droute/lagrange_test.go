package droute

import (
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/arch"
	"repro/internal/fabric"
	"repro/internal/groute"
	"repro/internal/layout"
	"repro/internal/netgen"
)

func TestParseBackend(t *testing.T) {
	for s, want := range map[string]Backend{
		"": BackendOrdered, "ordered": BackendOrdered,
		"negotiated": BackendNegotiated, "lagrange": BackendLagrange,
	} {
		got, err := ParseBackend(s)
		if err != nil || got != want {
			t.Errorf("ParseBackend(%q) = %q, %v; want %q", s, got, err, want)
		}
	}
	for _, s := range []string{"pathfinder", "LAGRANGE", "ordered "} {
		if _, err := ParseBackend(s); err == nil {
			t.Errorf("ParseBackend(%q) accepted", s)
		}
	}
}

// TestLagrangeParallelInvariance pins the determinism contract of the
// net-parallel Lagrangian router: for a fixed (seed, iteration cap), every
// worker count must produce the identical layout — same failure count, same
// track/segment assignment for every channel need of every net. Under -race
// (the CI race gate covers this package) it additionally proves the choice
// pass shares no mutable state across workers.
func TestLagrangeParallelInvariance(t *testing.T) {
	nl, err := netgen.Generate(netgen.Params{Name: "lw", Inputs: 5, Outputs: 4, Seq: 2, Comb: 45, Seed: 87})
	if err != nil {
		t.Fatal(err)
	}
	for _, tracks := range []int{10, 14} {
		for seed := int64(0); seed < 3; seed++ {
			a := arch.MustNew(arch.Default(6, 16, tracks))
			pl, err := layout.NewRandom(a, nl, rand.New(rand.NewSource(seed)))
			if err != nil {
				t.Fatal(err)
			}
			route := func(workers int) (int, *fabric.Fabric, []fabric.NetRoute) {
				f := fabric.New(a)
				routes := make([]fabric.NetRoute, nl.NumNets())
				if gf := groute.RouteAll(f, pl, routes); len(gf) > 0 {
					t.Skipf("global routing failed at %d tracks", tracks)
				}
				failed := RouteAllLagrange(f, routes, DefaultCost(), LagrangeConfig{Seed: seed, Workers: workers})
				return failed, f, routes
			}
			refFailed, refF, refRoutes := route(1)
			if err := refF.CheckConsistent(refRoutes); err != nil {
				t.Fatalf("tracks=%d seed=%d workers=1: %v", tracks, seed, err)
			}
			refKey := routeKey(refRoutes)
			for _, workers := range []int{4, 16, 0} {
				failed, f, routes := route(workers)
				if failed != refFailed {
					t.Errorf("tracks=%d seed=%d workers=%d: %d failed, want %d",
						tracks, seed, workers, failed, refFailed)
				}
				if !equalKeys(routeKey(routes), refKey) {
					t.Errorf("tracks=%d seed=%d workers=%d: layout differs from workers=1",
						tracks, seed, workers)
				}
				if err := f.CheckConsistent(routes); err != nil {
					t.Fatalf("tracks=%d seed=%d workers=%d: %v", tracks, seed, workers, err)
				}
			}
		}
	}
}

// TestLagrangeGOMAXPROCSInvariance re-runs the default-workers Lagrangian
// router under GOMAXPROCS=1 and checks the result matches a fully parallel
// run — the same scheduling-independence contract the negotiated router and
// the parallel annealer pin.
func TestLagrangeGOMAXPROCSInvariance(t *testing.T) {
	nl, err := netgen.Generate(netgen.Params{Name: "lg", Inputs: 4, Outputs: 3, Seq: 2, Comb: 36, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	a := arch.MustNew(arch.Default(5, 14, 12))
	pl, err := layout.NewRandom(a, nl, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	route := func() (int, [][]fabric.ChanAssign) {
		f := fabric.New(a)
		routes := make([]fabric.NetRoute, nl.NumNets())
		if gf := groute.RouteAll(f, pl, routes); len(gf) > 0 {
			t.Skip("global routing failed")
		}
		failed := RouteAllLagrange(f, routes, DefaultCost(), LagrangeConfig{Seed: 3})
		return failed, routeKey(routes)
	}
	wideFailed, wideKey := route()
	prev := runtime.GOMAXPROCS(1)
	oneFailed, oneKey := route()
	runtime.GOMAXPROCS(prev)
	if wideFailed != oneFailed || !equalKeys(wideKey, oneKey) {
		t.Errorf("GOMAXPROCS=1 result differs: %d failed vs %d", oneFailed, wideFailed)
	}
}

// The Lagrangian router's commit ordering is the same (net, ci) total order
// as the negotiated router's: same seed twice must give bit-identical
// assignments, including for one net holding equal-length intervals in
// several channels.
func TestRouteAllLagrangeDeterministic(t *testing.T) {
	p := arch.Default(2, 10, 2)
	p.SegPattern = []int{5, 5}
	p.PhaseStep = 0
	a := arch.MustNew(p)
	mk := func() []fabric.NetRoute {
		return []fabric.NetRoute{
			{Global: true, Chans: []fabric.ChanAssign{
				{Ch: 0, Lo: 1, Hi: 4, Track: -1},
				{Ch: 2, Lo: 1, Hi: 4, Track: -1},
			}},
			need(0, 1, 4),
			need(2, 1, 4),
			need(0, 0, 9),
		}
	}
	key := func(routes []fabric.NetRoute) [][3]int {
		var k [][3]int
		for id := range routes {
			for ci := range routes[id].Chans {
				ca := &routes[id].Chans[ci]
				k = append(k, [3]int{ca.Track, ca.SegLo, ca.SegHi})
			}
		}
		return k
	}
	f1 := fabric.New(a)
	r1 := mk()
	fail1 := RouteAllLagrange(f1, r1, DefaultCost(), LagrangeConfig{Seed: 5})
	f2 := fabric.New(a)
	r2 := mk()
	fail2 := RouteAllLagrange(f2, r2, DefaultCost(), LagrangeConfig{Seed: 5})
	if fail1 != fail2 {
		t.Fatalf("failure counts diverged: %d vs %d", fail1, fail2)
	}
	k1, k2 := key(r1), key(r2)
	for i := range k1 {
		if k1[i] != k2[i] {
			t.Errorf("assignment %d diverged: %v vs %v", i, k1[i], k2[i])
		}
	}
	if err := f1.CheckConsistent(r1); err != nil {
		t.Error(err)
	}
}

// On a feasible instance with spare capacity the relaxation must converge to
// a fully routed layout (the early-exit path, no fallback), and salvage plus
// fallback guarantee it is never worse than the ordered router it would fall
// back to.
func TestRouteAllLagrangeRoutesFeasible(t *testing.T) {
	nl, err := netgen.Generate(netgen.Params{Name: "lf", Inputs: 4, Outputs: 3, Seq: 2, Comb: 30, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	a := arch.MustNew(arch.Default(5, 14, 20))
	pl, err := layout.NewRandom(a, nl, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	f := fabric.New(a)
	routes := make([]fabric.NetRoute, nl.NumNets())
	if gf := groute.RouteAll(f, pl, routes); len(gf) > 0 {
		t.Skip("global routing failed")
	}
	if failed := RouteAllLagrange(f, routes, DefaultCost(), LagrangeConfig{Seed: 1}); failed != 0 {
		t.Fatalf("%d needs unrouted at 20 tracks", failed)
	}
	if err := f.CheckConsistent(routes); err != nil {
		t.Fatal(err)
	}
}

// FuzzLagrangeRoute: arbitrary segmentation patterns, phases and channel
// needs must never panic the Lagrangian router, and whatever it routes must
// be a valid, consistent, covering assignment that unroutes cleanly.
func FuzzLagrangeRoute(f *testing.F) {
	f.Add(uint8(8), uint8(2), uint8(4), uint8(4), uint8(0), []byte{0, 0, 3, 0, 4, 3}, int64(1))
	f.Add(uint8(12), uint8(3), uint8(3), uint8(7), uint8(2), []byte{1, 2, 9, 0, 0, 11, 1, 5, 5}, int64(7))
	f.Add(uint8(30), uint8(1), uint8(9), uint8(1), uint8(5), []byte{0, 10, 19, 0, 10, 19, 0, 0, 29}, int64(3))
	f.Add(uint8(5), uint8(6), uint8(1), uint8(2), uint8(1), []byte{2, 4, 4}, int64(-9))
	f.Fuzz(func(t *testing.T, colsB, tracksB, seg1, seg2, phase uint8, needBytes []byte, seed int64) {
		cols := int(colsB)%40 + 2
		tracks := int(tracksB)%6 + 1
		p := arch.Default(2, cols, tracks)
		p.SegPattern = []int{int(seg1)%9 + 1, int(seg2)%9 + 1}
		p.PhaseStep = int(phase) % 7
		a, err := arch.New(p)
		if err != nil {
			t.Fatalf("clamped params rejected: %v", err)
		}
		f := fabric.New(a)

		// Each 3-byte chunk is one channel need, clamped into range.
		var routes []fabric.NetRoute
		for i := 0; i+2 < len(needBytes) && len(routes) < 48; i += 3 {
			ch := int(needBytes[i]) % a.Channels()
			lo := int(needBytes[i+1]) % cols
			hi := lo + int(needBytes[i+2])%(cols-lo)
			routes = append(routes, need(ch, lo, hi))
		}
		if len(routes) == 0 {
			return
		}

		cfg := LagrangeConfig{MaxIters: 1 + int(seed&7), Seed: seed, Workers: 1 + int(seed>>3&3)}
		failed := RouteAllLagrange(f, routes, DefaultCost(), cfg)
		if failed < 0 || failed > len(routes) {
			t.Fatalf("failed = %d with %d needs", failed, len(routes))
		}

		// The fabric and the route descriptors must agree exactly.
		if err := f.CheckConsistent(routes); err != nil {
			t.Fatal(err)
		}

		// Every routed assignment must cover its column interval.
		routed := 0
		for id := range routes {
			ca := &routes[id].Chans[0]
			if !ca.Routed() {
				continue
			}
			routed++
			if ca.Track < 0 || ca.Track >= a.Tracks {
				t.Fatalf("net %d on track %d of %d", id, ca.Track, a.Tracks)
			}
			segs := a.Seg[ca.Track]
			if ca.SegLo < 0 || ca.SegHi >= len(segs) || ca.SegLo > ca.SegHi {
				t.Fatalf("net %d segment range [%d,%d] of %d", id, ca.SegLo, ca.SegHi, len(segs))
			}
			if segs[ca.SegLo].Start > ca.Lo || segs[ca.SegHi].End <= ca.Hi {
				t.Fatalf("net %d segments [%d,%d) do not cover columns [%d,%d]",
					id, segs[ca.SegLo].Start, segs[ca.SegHi].End, ca.Lo, ca.Hi)
			}
			wantLo, wantHi := a.SegRange(ca.Track, ca.Lo, ca.Hi)
			if ca.SegLo != wantLo || ca.SegHi != wantHi {
				t.Fatalf("net %d segment range [%d,%d], SegRange says [%d,%d]",
					id, ca.SegLo, ca.SegHi, wantLo, wantHi)
			}
		}
		if routed+failed != len(routes) {
			t.Fatalf("routed %d + failed %d != %d needs", routed, failed, len(routes))
		}

		// Unrouting everything must restore an empty fabric.
		for id := range routes {
			if routes[id].Chans[0].Routed() {
				UnrouteChan(f, int32(id), &routes[id], 0)
			}
		}
		if f.UsedH() != 0 {
			t.Fatalf("%d segments leaked after unrouting", f.UsedH())
		}
	})
}

// TestDetailedWorkersInvariance pins the retry-path determinism of the
// ordered router: the attempts>1 loop simulates candidate orderings
// concurrently, and the chosen winner must be identical for every worker
// count because candidate seeds are drawn serially and ties go to the lowest
// attempt index.
func TestDetailedWorkersInvariance(t *testing.T) {
	nl, err := netgen.Generate(netgen.Params{Name: "dw", Inputs: 5, Outputs: 4, Seq: 2, Comb: 45, Seed: 87})
	if err != nil {
		t.Fatal(err)
	}
	// Scarce tracks so first-pass failures engage the retry loop.
	a := arch.MustNew(arch.Default(6, 16, 8))
	pl, err := layout.NewRandom(a, nl, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	route := func(workers int) (int, *fabric.Fabric, []fabric.NetRoute) {
		f := fabric.New(a)
		routes := make([]fabric.NetRoute, nl.NumNets())
		if gf := groute.RouteAll(f, pl, routes); len(gf) > 0 {
			t.Skip("global routing failed at 8 tracks")
		}
		failed := RouteAllDetailedWorkers(f, routes, DefaultCost(), 6, rand.New(rand.NewSource(9)), workers)
		return failed, f, routes
	}
	refFailed, refF, refRoutes := route(1)
	if err := refF.CheckConsistent(refRoutes); err != nil {
		t.Fatal(err)
	}
	refKey := routeKey(refRoutes)
	for _, workers := range []int{4, 16, 0} {
		failed, f, routes := route(workers)
		if failed != refFailed {
			t.Errorf("workers=%d: %d failed, want %d", workers, failed, refFailed)
		}
		if !equalKeys(routeKey(routes), refKey) {
			t.Errorf("workers=%d: layout differs from workers=1", workers)
		}
		if err := f.CheckConsistent(routes); err != nil {
			t.Fatal(err)
		}
	}
}
