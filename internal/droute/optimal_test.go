package droute

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/arch"
	"repro/internal/fabric"
)

// bruteBest exhaustively evaluates every feasible track for the interval and
// returns the minimum cost (math.Inf(1) if none).
func bruteBest(f *fabric.Fabric, ch, lo, hi int, cost Cost) float64 {
	a := f.A
	best := math.Inf(1)
	for t := 0; t < a.Tracks; t++ {
		sl, sh := a.SegRange(t, lo, hi)
		if !f.HRangeFree(ch, t, sl, sh) {
			continue
		}
		segs := a.Seg[t]
		waste := float64((segs[sh].End - segs[sl].Start) - (hi - lo + 1))
		c := cost.WWaste*waste + cost.WSegs*float64(sh-sl+1)
		if c < best {
			best = c
		}
	}
	return best
}

// Property: PickTrack always returns a track achieving the exhaustive
// minimum cost, under random segmentations, random pre-existing occupancy
// and random cost weights.
func TestPickTrackIsOptimalProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := arch.Default(1, 6+rng.Intn(24), 1+rng.Intn(6))
		p.SegPattern = []int{1 + rng.Intn(5), 1 + rng.Intn(8)}
		p.PhaseStep = rng.Intn(6)
		a, err := arch.New(p)
		if err != nil {
			return false
		}
		f := fabric.New(a)
		// Random occupancy.
		for i := 0; i < 10; i++ {
			tr := rng.Intn(a.Tracks)
			seg := rng.Intn(len(a.Seg[tr]))
			if f.HOwner(0, tr, seg) == fabric.Free {
				f.AllocH(0, tr, seg, seg, 99)
			}
		}
		cost := Cost{WWaste: rng.Float64()*3 + 0.1, WSegs: rng.Float64()*6 + 0.1}
		for trial := 0; trial < 20; trial++ {
			lo := rng.Intn(a.Cols)
			hi := lo + rng.Intn(a.Cols-lo)
			want := bruteBest(f, 0, lo, hi, cost)
			tr, sl, sh, ok := PickTrack(f, 0, lo, hi, cost)
			if !ok {
				if !math.IsInf(want, 1) {
					t.Logf("seed %d: PickTrack failed but brute force found cost %v", seed, want)
					return false
				}
				continue
			}
			segs := a.Seg[tr]
			waste := float64((segs[sh].End - segs[sl].Start) - (hi - lo + 1))
			got := cost.WWaste*waste + cost.WSegs*float64(sh-sl+1)
			if math.Abs(got-want) > 1e-9 {
				t.Logf("seed %d: PickTrack cost %v, optimum %v", seed, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
