// Package render draws finished layouts as text, in the spirit of the
// paper's Figure 7 (a plot of the routed 529-cell design): module rows with
// cell occupancy by type interleaved with channel-occupancy density lines.
package render

import (
	"fmt"
	"strings"

	"repro/internal/fabric"
	"repro/internal/layout"
	"repro/internal/netlist"
)

// ASCII renders the placement and routing. Cell glyphs: i = input pad,
// o = output pad, c = combinational, s = sequential, . = empty. Channel
// lines shade each column by the fraction of tracks occupied there.
func ASCII(p *layout.Placement, routes []fabric.NetRoute) string {
	a := p.A
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d cells on %d rows x %d cols, %d tracks/channel\n",
		p.NL.Name, p.NL.NumCells(), a.Rows, a.Cols, a.Tracks)

	cut := make([][]int, a.Channels())
	for ch := range cut {
		cut[ch] = make([]int, a.Cols)
	}
	for id := range routes {
		r := &routes[id]
		for i := range r.Chans {
			ca := &r.Chans[i]
			if !ca.Routed() {
				continue
			}
			segs := a.Seg[ca.Track]
			for c := segs[ca.SegLo].Start; c < segs[ca.SegHi].End; c++ {
				cut[ca.Ch][c]++
			}
		}
	}
	shades := []byte(" .:-=+*#")
	shade := func(n int) byte {
		if n <= 0 {
			return shades[0]
		}
		i := 1 + (len(shades)-2)*n/a.Tracks
		if i >= len(shades) {
			i = len(shades) - 1
		}
		return shades[i]
	}
	channelLine := func(ch int) {
		fmt.Fprintf(&b, "ch%3d  |", ch)
		peak := 0
		for c := 0; c < a.Cols; c++ {
			b.WriteByte(shade(cut[ch][c]))
			if cut[ch][c] > peak {
				peak = cut[ch][c]
			}
		}
		fmt.Fprintf(&b, "| peak %d/%d\n", peak, a.Tracks)
	}
	typeChar := func(cell int32) byte {
		if cell < 0 {
			return '.'
		}
		switch p.NL.Cells[cell].Type {
		case netlist.Input:
			return 'i'
		case netlist.Output:
			return 'o'
		case netlist.Seq:
			return 's'
		default:
			return 'c'
		}
	}
	for row := a.Rows - 1; row >= 0; row-- {
		channelLine(row + 1)
		fmt.Fprintf(&b, "row%3d |", row)
		for c := 0; c < a.Cols; c++ {
			b.WriteByte(typeChar(p.CellAt(row, c)))
		}
		b.WriteString("|\n")
	}
	channelLine(0)
	return b.String()
}
