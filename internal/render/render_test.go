package render

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/droute"
	"repro/internal/fabric"
	"repro/internal/groute"
	"repro/internal/layout"
	"repro/internal/netgen"
)

func TestASCIIStructure(t *testing.T) {
	nl, err := netgen.Generate(netgen.Params{Name: "rd", Inputs: 3, Outputs: 2, Seq: 1, Comb: 15, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	a := arch.MustNew(arch.Default(3, 12, 8))
	rng := rand.New(rand.NewSource(1))
	p, err := layout.NewRandom(a, nl, rng)
	if err != nil {
		t.Fatal(err)
	}
	f := fabric.New(a)
	routes := make([]fabric.NetRoute, nl.NumNets())
	groute.RouteAll(f, p, routes)
	droute.RouteAllDetailed(f, routes, droute.DefaultCost(), 2, rng)

	out := ASCII(p, routes)
	lines := strings.Split(strings.TrimSuffix(out, "\n"), "\n")
	if len(lines) != 1+a.Rows+a.Channels() {
		t.Fatalf("%d lines, want %d", len(lines), 1+a.Rows+a.Channels())
	}
	// Channels interleave rows top-down: ch3, row2, ch2, row1, ch1, row0, ch0.
	if !strings.HasPrefix(lines[1], "ch  3") || !strings.HasPrefix(lines[2], "row  2") {
		t.Errorf("interleaving broken:\n%s", out)
	}
	if !strings.HasPrefix(lines[len(lines)-1], "ch  0") {
		t.Errorf("last line should be channel 0: %q", lines[len(lines)-1])
	}
	for _, ln := range lines[1:] {
		if !strings.Contains(ln, "|") {
			t.Errorf("line missing frame: %q", ln)
		}
	}
	// Routed segments must produce non-blank channel shading somewhere.
	shaded := false
	for _, ln := range lines {
		if strings.HasPrefix(ln, "ch") && strings.ContainsAny(ln, ".:-=+*#") {
			shaded = true
		}
	}
	if !shaded {
		t.Error("no channel occupancy rendered despite routed nets")
	}
}

func TestASCIIEmptyFabric(t *testing.T) {
	nl, err := netgen.Generate(netgen.Params{Name: "rd2", Inputs: 3, Outputs: 2, Seq: 1, Comb: 10, Seed: 98})
	if err != nil {
		t.Fatal(err)
	}
	a := arch.MustNew(arch.Default(2, 10, 4))
	p, err := layout.NewRandom(a, nl, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	out := ASCII(p, make([]fabric.NetRoute, nl.NumNets()))
	if !strings.Contains(out, "peak 0/4") {
		t.Errorf("empty fabric should report zero peaks:\n%s", out)
	}
}
