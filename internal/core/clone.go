package core

import (
	"repro/internal/anneal"
	"repro/internal/fabric"
)

// Clone returns a deep copy of the complete optimizer state: placement (cell
// slots and pinmaps), fabric ownership tables, every net's segment
// assignment, the G/D/dc counters, the adaptive cost weights, the move-range
// window, and the incremental timing-analyzer state. Clones share only
// immutable structures (the architecture, the netlist, the prefilled pinmap
// palette) and evolve fully independently afterwards — the parallel annealing
// engine relies on this to run chains on separate goroutines.
//
// The clone starts with fresh journal scratch and epoch counters; cloning
// inside an open move is a programming error and panics.
func (o *Optimizer) Clone() *Optimizer {
	if o.moveKind != moveNone {
		panic("core: Clone inside an open move")
	}
	c := &Optimizer{
		A:   o.A,
		NL:  o.NL,
		P:   o.P.Clone(),
		F:   o.F.Clone(),
		Rts: make([]fabric.NetRoute, len(o.Rts)),
		An:  o.An.Clone(),
		cfg: o.cfg,

		g:  o.g,
		d:  o.d,
		dc: o.dc,

		initRouteFailed: o.initRouteFailed,

		wg:  o.wg,
		wd:  o.wd,
		wt:  o.wt,
		wcr: o.wcr,

		netStamp:  make([]uint32, len(o.netStamp)),
		cellStamp: make([]uint32, len(o.cellStamp)),
		perturbed: o.perturbed,

		dynamics: append([]DynamicsSample(nil), o.dynamics...),
		window:   o.window,

		chain:   o.chain,
		lastRt:  o.lastRt,
		lastSTA: o.lastSTA,
	}
	for id := range o.Rts {
		c.Rts[id] = o.Rts[id].Clone()
	}
	if o.crit != nil {
		c.crit = o.crit.Clone(c.An)
		c.netMaxD = append([]float64(nil), o.netMaxD...)
		c.critSum = o.critSum
		c.critCells = append(make([]int32, 0, cap(o.critCells)), o.critCells...)
		c.critStamp = make([]uint32, len(o.critStamp))
	}
	return c
}

// CloneProblem implements anneal.Forkable.
func (o *Optimizer) CloneProblem() anneal.Problem { return o.Clone() }

var _ anneal.Forkable = (*Optimizer)(nil)
