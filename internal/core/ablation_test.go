package core

import (
	"math/rand"
	"testing"

	"repro/internal/arch"
	"repro/internal/netgen"
)

// The ablation knobs must leave every invariant intact; their quantitative
// effect is measured by the root ablation benchmarks.

func runVariant(t *testing.T, mutate func(*Config)) Result {
	t.Helper()
	nl, err := netgen.Generate(netgen.Params{Name: "abl", Inputs: 4, Outputs: 3, Seq: 2, Comb: 30, Seed: 81})
	if err != nil {
		t.Fatal(err)
	}
	a := arch.MustNew(arch.Default(5, 12, 12))
	cfg := Config{Seed: 5, MovesPerCell: 5, MaxTemps: 50}
	mutate(&cfg)
	o, err := New(a, nl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := o.Run()
	if err := o.Check(); err != nil {
		t.Fatal(err)
	}
	return res
}

func TestNoPinmapMovesStillRoutes(t *testing.T) {
	res := runVariant(t, func(c *Config) { c.DisablePinmapMoves = true })
	if !res.FullyRouted {
		t.Errorf("not routed without pinmap moves: D=%d", res.D)
	}
}

func TestNoDCGradientStillRoutes(t *testing.T) {
	res := runVariant(t, func(c *Config) { c.DCFraction = -1 })
	if !res.FullyRouted {
		t.Errorf("not routed without the missing-channel gradient: D=%d", res.D)
	}
}

func TestRangeLimitStillRoutes(t *testing.T) {
	res := runVariant(t, func(c *Config) { c.RangeLimit = true })
	if !res.FullyRouted {
		t.Errorf("not routed with range limiting: D=%d", res.D)
	}
	if res.WCD <= 0 {
		t.Error("no WCD")
	}
}

func TestRangeLimitWindowAdapts(t *testing.T) {
	nl, err := netgen.Generate(netgen.Params{Name: "abl", Inputs: 4, Outputs: 3, Seq: 2, Comb: 30, Seed: 81})
	if err != nil {
		t.Fatal(err)
	}
	a := arch.MustNew(arch.Default(5, 12, 12))
	o, err := New(a, nl, Config{Seed: 5, MovesPerCell: 5, MaxTemps: 60, RangeLimit: true})
	if err != nil {
		t.Fatal(err)
	}
	start := o.window
	o.Run()
	if o.window >= start {
		t.Errorf("window did not shrink over the anneal: %d -> %d", start, o.window)
	}
	if o.window < 1 {
		t.Errorf("window below 1: %d", o.window)
	}
}

func TestRangeLimitMovesStayInWindow(t *testing.T) {
	nl, err := netgen.Generate(netgen.Params{Name: "abl", Inputs: 4, Outputs: 3, Seq: 2, Comb: 30, Seed: 81})
	if err != nil {
		t.Fatal(err)
	}
	a := arch.MustNew(arch.Default(5, 12, 12))
	o, err := New(a, nl, Config{Seed: 5, RangeLimit: true})
	if err != nil {
		t.Fatal(err)
	}
	o.window = 2
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		la := o.P.Loc[rng.Intn(o.NL.NumCells())]
		lb := o.pickPartner(rng, la)
		if abs(lb.Row-la.Row) > 2 || abs(lb.Col-la.Col) > 2 {
			t.Fatalf("partner %v outside window of %v", lb, la)
		}
		if lb == la {
			t.Fatal("partner equals source")
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
