package core

import (
	"math/rand"

	"repro/internal/arch"
	"repro/internal/droute"
	"repro/internal/fabric"
	"repro/internal/groute"
	"repro/internal/layout"
)

// jEntry journals one net's pre-move route. ripped marks nets whose pins
// moved (their delays must be refreshed even if the route descriptor ends up
// bitwise identical, e.g. unrouted before and after).
type jEntry struct {
	id      int32
	old     fabric.NetRoute
	ripped  bool
	oldMaxD float64 // pre-move worst sink delay (criticality term only)
}

// Propose implements anneal.Problem: apply one tentative move (cell swap /
// translation, or pinmap reassignment), cascade the incremental ripup and
// reroute, update timing, and return the cost delta. Accept or Reject must
// follow.
func (o *Optimizer) Propose(rng *rand.Rand) float64 {
	if o.cfg.PinmapProb > 0 && rng.Float64() < o.cfg.PinmapProb {
		cell := int32(rng.Intn(o.NL.NumCells()))
		nv := uint8((int(o.P.Pm[cell]) + 1 + rng.Intn(arch.NumPinmaps-1)) % arch.NumPinmaps)
		return o.proposePinmap(cell, nv)
	}
	// Criticality-directed selection: with probability CritBias draw the swap
	// source from the cells on near-critical nets instead of uniformly. The
	// length guard precedes the Float64 draw so the RNG stream is untouched
	// whenever the extension is off — fixed-seed runs stay bit-identical.
	if o.cfg.CritBias > 0 && len(o.critCells) > 0 && rng.Float64() < o.cfg.CritBias {
		cell := o.critCells[rng.Intn(len(o.critCells))]
		la := o.P.Loc[cell]
		return o.proposeSwap(la, o.pickPartner(rng, la))
	}
	var la layout.Loc
	for {
		la = layout.Loc{Row: rng.Intn(o.A.Rows), Col: rng.Intn(o.A.Cols)}
		if o.P.CellAt(la.Row, la.Col) >= 0 {
			break
		}
	}
	lb := o.pickPartner(rng, la)
	return o.proposeSwap(la, lb)
}

// pickPartner chooses the destination slot for a swap: uniform over the
// array, or — with RangeLimit — within the adaptive window around the source.
func (o *Optimizer) pickPartner(rng *rand.Rand, la layout.Loc) layout.Loc {
	for {
		var lb layout.Loc
		if o.cfg.RangeLimit {
			w := o.window
			lb = layout.Loc{
				Row: clampInt(la.Row+rng.Intn(2*w+1)-w, 0, o.A.Rows-1),
				Col: clampInt(la.Col+rng.Intn(2*w+1)-w, 0, o.A.Cols-1),
			}
		} else {
			lb = layout.Loc{Row: rng.Intn(o.A.Rows), Col: rng.Intn(o.A.Cols)}
		}
		if lb != la {
			return lb
		}
	}
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func (o *Optimizer) begin(kind moveKind) float64 {
	if o.moveKind != moveNone {
		panic("core: Propose while a move is open")
	}
	o.moveKind = kind
	o.epoch++
	o.journal = o.journal[:0]
	o.jOldG, o.jOldD, o.jOldDC = o.g, o.d, o.dc
	o.jCritSum = o.critSum
	if o.timingOn() {
		o.An.Begin()
	}
	return o.Cost()
}

func (o *Optimizer) proposeSwap(la, lb layout.Loc) float64 {
	before := o.begin(moveSwap)
	o.swapA, o.swapB = la, lb
	o.ripCell(o.P.CellAt(la.Row, la.Col))
	o.ripCell(o.P.CellAt(lb.Row, lb.Col))
	o.P.Swap(la, lb)
	o.rerouteAndTime()
	return o.Cost() - before
}

func (o *Optimizer) proposePinmap(cell int32, nv uint8) float64 {
	before := o.begin(movePinmap)
	o.pmCell, o.pmOld = cell, o.P.Pm[cell]
	o.ripCell(cell)
	o.P.SetPinmap(cell, nv)
	o.rerouteAndTime()
	return o.Cost() - before
}

// journalNet records a net's current route once per move; returns its entry.
func (o *Optimizer) journalNet(id int32, ripped bool) {
	if o.netStamp[id] == o.epoch {
		if ripped {
			// Upgrade an existing entry (cannot happen in practice: rips
			// precede reroutes, but keep the invariant airtight).
			for i := range o.journal {
				if o.journal[i].id == id {
					o.journal[i].ripped = true
					break
				}
			}
		}
		return
	}
	o.netStamp[id] = o.epoch
	if len(o.journal) < cap(o.journal) {
		o.journal = o.journal[:len(o.journal)+1]
	} else {
		o.journal = append(o.journal, jEntry{})
	}
	e := &o.journal[len(o.journal)-1]
	e.id = id
	e.ripped = ripped
	e.old.CopyFrom(&o.Rts[id])
	if o.netMaxD != nil {
		e.oldMaxD = o.netMaxD[id]
	}
}

// ripCell rips up every net attached to the cell: resources are freed, the
// route descriptors reset, and G/D updated. The nets join the unrouted pool
// that rerouteAndTime drains.
func (o *Optimizer) ripCell(cell int32) {
	if cell < 0 {
		return
	}
	c := &o.NL.Cells[cell]
	if c.Out >= 0 {
		o.ripNet(c.Out)
	}
	for _, in := range c.In {
		if in >= 0 {
			o.ripNet(in)
		}
	}
}

func (o *Optimizer) ripNet(id int32) {
	if o.netStamp[id] == o.epoch {
		// Already ripped via another pin of the moved cell(s).
		return
	}
	o.journalNet(id, true)
	o.F.Stats.RipUps++
	r := &o.Rts[id]
	if r.Global {
		o.g++
		o.dc -= r.UnroutedChans()
	}
	if r.DetailDone() {
		o.d++
	}
	o.F.RemoveRoute(id, r)
	r.Reset()
}

// rerouteAndTime is the paper's incremental routing cascade (§3.3–§3.4):
// every currently-unroutable net (the ripped ones plus any that were stuck
// before this move) is attempted again, longest first — global routing, then
// the missing channels of the detailed routing — and the timing view is
// refreshed for every net whose embedding or pins changed.
func (o *Optimizer) rerouteAndTime() {
	o.worklist = o.worklist[:0]
	for id := range o.Rts {
		if !o.Rts[id].DetailDone() {
			o.worklist = append(o.worklist, int32(id))
		}
	}
	o.sortWorklist()

	for _, id := range o.worklist {
		r := &o.Rts[id]
		if !r.Global {
			o.journalNet(id, false)
			if !groute.Route(o.F, o.P, id, r) {
				continue
			}
			o.g--
			o.dc += r.UnroutedChans()
		}
		if !r.DetailDone() {
			o.journalNet(id, false)
			u0 := r.UnroutedChans()
			missing := droute.RouteNet(o.F, id, r, o.cfg.DrouteCost)
			o.dc += missing - u0
			if missing == 0 {
				o.d--
			}
		} else {
			// Global route with no channel needs (e.g. sink-less nets).
			o.d--
		}
	}

	if !o.timingOn() {
		return
	}
	critOn := o.critOn()
	var cv []float64
	if critOn {
		cv = o.crit.Values()
	}
	for i := range o.journal {
		e := &o.journal[i]
		if len(o.NL.Nets[e.id].Sinks) == 0 {
			continue
		}
		if !e.ripped && o.Rts[e.id].Equal(&e.old) {
			continue // attempted but unchanged, pins unmoved: delays stand
		}
		d, err := o.netDelays(e.id)
		if err != nil {
			panic("core: " + err.Error())
		}
		o.An.SetNetDelays(e.id, d)
		if critOn {
			m := 0.0
			for _, v := range d {
				if v > m {
					m = v
				}
			}
			o.critSum += cv[e.id] * (m - o.netMaxD[e.id])
			o.netMaxD[e.id] = m
		}
	}
	o.An.Propagate()
}

// Accept implements anneal.Problem.
func (o *Optimizer) Accept() {
	if o.moveKind == moveNone {
		panic("core: Accept without an open move")
	}
	if o.timingOn() {
		o.An.Commit()
	}
	switch o.moveKind {
	case moveSwap:
		o.countPerturbed(o.P.CellAt(o.swapA.Row, o.swapA.Col))
		o.countPerturbed(o.P.CellAt(o.swapB.Row, o.swapB.Col))
	case movePinmap:
		if o.P.Pm[o.pmCell] != o.pmOld {
			o.countPerturbed(o.pmCell)
		}
	}
	o.moveKind = moveNone
}

func (o *Optimizer) countPerturbed(cell int32) {
	if cell < 0 {
		return
	}
	if o.cellStamp[cell] <= o.cellEpochBase {
		o.cellStamp[cell] = o.epoch
		o.perturbed++
	}
}

// Reject implements anneal.Problem: every route, placement, counter and
// timing change of the tentative move is rolled back exactly.
func (o *Optimizer) Reject() {
	if o.moveKind == moveNone {
		panic("core: Reject without an open move")
	}
	if o.timingOn() {
		o.An.Revert()
	}
	// Free whatever the touched nets now hold, then reinstate the journaled
	// routes (the old set is mutually consistent, so two phases cannot
	// collide).
	for i := range o.journal {
		e := &o.journal[i]
		o.F.RemoveRoute(e.id, &o.Rts[e.id])
	}
	for i := range o.journal {
		e := &o.journal[i]
		o.Rts[e.id].CopyFrom(&e.old)
		o.F.InstallRoute(e.id, &o.Rts[e.id])
	}
	switch o.moveKind {
	case moveSwap:
		o.P.Swap(o.swapA, o.swapB)
	case movePinmap:
		o.P.SetPinmap(o.pmCell, o.pmOld)
	}
	o.g, o.d, o.dc = o.jOldG, o.jOldD, o.jOldDC
	if o.netMaxD != nil {
		for i := range o.journal {
			o.netMaxD[o.journal[i].id] = o.journal[i].oldMaxD
		}
		o.critSum = o.jCritSum
	}
	o.moveKind = moveNone
}
