package core

import (
	"math/rand"
	"testing"
)

// TestMoveAllocFree asserts the absolute steady-state bound the hot-path work
// targets: proposing and resolving a move — the full rip-up, incremental
// global + detailed reroute, and timing-propagation cascade — performs ZERO
// heap allocations once every scratch buffer has grown to capacity.
//
// The assertion is made airtight by a replay trick: Reject restores the
// optimizer state exactly (pinned by TestMoveUndoExactness), so a
// propose+reject cycle leaves the state where it started and the move
// sequence depends only on the RNG stream. Warming up with seed S for more
// iterations than AllocsPerRun will perform (runs + 1 internal warm-up call)
// and then measuring with a fresh RNG at the same seed S replays the exact
// same moves — every slice growth already happened, so any remaining
// allocation is a genuine per-move leak, not first-touch capacity growth.
func TestMoveAllocFree(t *testing.T) {
	a, nl := smallDesign(t)
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"timing-on", Config{Seed: 3}},
		{"wirability-only", Config{Seed: 3, DisableTiming: true}},
		{"crit-on", Config{Seed: 3, CritWeight: 1, CritBias: 0.4}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			o, err := New(a, nl, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			const seed, runs = 17, 300
			warm := rand.New(rand.NewSource(seed))
			for i := 0; i < runs+1; i++ {
				o.Propose(warm)
				o.Reject()
			}
			rng := rand.New(rand.NewSource(seed))
			allocs := testing.AllocsPerRun(runs, func() {
				o.Propose(rng)
				o.Reject()
			})
			if allocs != 0 {
				t.Errorf("move path allocates: %.4f allocs/move, want exactly 0", allocs)
			}
		})
	}
}

// TestAcceptAllocFree covers the accept side of the protocol: a long mixed
// accept/reject burst after warm-up must average out to zero allocations per
// move. Accepts mutate state, so exact replay is impossible; instead the
// warm-up burst is long and uses the same move policy, making any scratch
// growth during measurement a real regression.
func TestAcceptAllocFree(t *testing.T) {
	a, nl := smallDesign(t)
	o, err := New(a, nl, Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(23))
	step := func() {
		if o.Propose(rng) <= 0 {
			o.Accept()
		} else {
			o.Reject()
		}
	}
	for i := 0; i < 4000; i++ {
		step()
	}
	if allocs := testing.AllocsPerRun(1000, step); allocs != 0 {
		t.Errorf("accept/reject mix allocates: %.4f allocs/move, want exactly 0", allocs)
	}
}
