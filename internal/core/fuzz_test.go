package core

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/arch"
	"repro/internal/netgen"
	"repro/internal/netlist"
)

var fuzzDesign struct {
	once sync.Once
	a    *arch.Arch
	nl   *netlist.Netlist
	err  error
}

func fuzzSetup() (*arch.Arch, *netlist.Netlist, error) {
	fuzzDesign.once.Do(func() {
		fuzzDesign.nl, fuzzDesign.err = netgen.Generate(netgen.Params{
			Name: "fz", Inputs: 4, Outputs: 3, Seq: 2, Comb: 24, Seed: 51,
		})
		fuzzDesign.a = arch.MustNew(arch.Default(5, 11, 12))
	})
	return fuzzDesign.a, fuzzDesign.nl, fuzzDesign.err
}

// FuzzCloneEquivalence: a clone fed the identical move sequence must follow
// the identical cost trajectory — the contract the parallel portfolio engine
// rests on. Any state the clone shares mutably with the original, or fails to
// copy, diverges the trajectories.
func FuzzCloneEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(10), uint16(60))
	f.Add(int64(9), uint8(0), uint16(120))
	f.Add(int64(42), uint8(50), uint16(200))
	f.Add(int64(-7), uint8(255), uint16(33))
	f.Fuzz(func(t *testing.T, seed int64, warm uint8, moves uint16) {
		a, nl, err := fuzzSetup()
		if err != nil {
			t.Fatal(err)
		}
		o, err := New(a, nl, Config{Seed: seed, MovesPerCell: 4, MaxTemps: 30})
		if err != nil {
			t.Fatal(err)
		}
		// Warm the original away from the initial state.
		wrng := rand.New(rand.NewSource(seed + 7))
		for i := 0; i < int(warm); i++ {
			o.Propose(wrng)
			if wrng.Intn(4) == 0 {
				o.Reject()
			} else {
				o.Accept()
			}
		}

		c := o.Clone()
		if got, want := c.Cost(), o.Cost(); got != want {
			t.Fatalf("clone cost %v != original %v before any move", got, want)
		}
		// The incremental bounding-box cache must be deep-copied: the clone
		// serves the same boxes as the original, and both caches must agree
		// with a from-scratch recompute.
		for id := int32(0); id < int32(nl.NumNets()); id++ {
			if ob, cb := o.P.NetBox(id), c.P.NetBox(id); ob != cb {
				t.Fatalf("net %d: clone box %+v != original %+v", id, cb, ob)
			}
		}
		if err := o.P.ValidateNetBoxes(); err != nil {
			t.Fatalf("original after warm-up: %v", err)
		}
		if err := c.P.ValidateNetBoxes(); err != nil {
			t.Fatalf("clone after copy: %v", err)
		}

		n := int(moves)%300 + 1
		r1 := rand.New(rand.NewSource(seed * 31))
		r2 := rand.New(rand.NewSource(seed * 31))
		for i := 0; i < n; i++ {
			d1 := o.Propose(r1)
			d2 := c.Propose(r2)
			if d1 != d2 {
				t.Fatalf("move %d: deltas diverged: %v vs %v", i, d1, d2)
			}
			if r1.Intn(3) == 0 {
				o.Reject()
			} else {
				o.Accept()
			}
			if r2.Intn(3) == 0 {
				c.Reject()
			} else {
				c.Accept()
			}
			if o.Cost() != c.Cost() {
				t.Fatalf("move %d: costs diverged: %v vs %v", i, o.Cost(), c.Cost())
			}
		}
		if o.G() != c.G() || o.D() != c.D() || o.WCD() != c.WCD() {
			t.Fatalf("final state diverged: (G=%d D=%d T=%v) vs (G=%d D=%d T=%v)",
				o.G(), o.D(), o.WCD(), c.G(), c.D(), c.WCD())
		}
		if err := o.Check(); err != nil {
			t.Fatalf("original: %v", err)
		}
		if err := c.Check(); err != nil {
			t.Fatalf("clone: %v", err)
		}
	})
}

// TestCloneIndependence: after cloning, moves on either copy must leave the
// other bit-for-bit untouched.
func TestCloneIndependence(t *testing.T) {
	a, nl := smallDesign(t)
	o, err := New(a, nl, Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 60; i++ {
		o.Propose(rng)
		o.Accept()
	}
	c := o.Clone()
	cCost, cWCD := c.Cost(), c.WCD()
	cLocs := flattenLocs(c)

	// Hammer the original; the clone must not move.
	for i := 0; i < 150; i++ {
		o.Propose(rng)
		o.Accept()
	}
	if c.Cost() != cCost || c.WCD() != cWCD {
		t.Fatalf("mutating the original changed the clone: cost %v->%v, WCD %v->%v",
			cCost, c.Cost(), cWCD, c.WCD())
	}
	for i, v := range flattenLocs(c) {
		if v != cLocs[i] {
			t.Fatal("mutating the original changed the clone's placement")
		}
	}
	if err := c.Check(); err != nil {
		t.Fatalf("clone after original mutation: %v", err)
	}

	// And the other direction.
	oCost := o.Cost()
	oLocs := flattenLocs(o)
	for i := 0; i < 150; i++ {
		c.Propose(rng)
		c.Accept()
	}
	if o.Cost() != oCost {
		t.Fatalf("mutating the clone changed the original: cost %v->%v", oCost, o.Cost())
	}
	for i, v := range flattenLocs(o) {
		if v != oLocs[i] {
			t.Fatal("mutating the clone changed the original's placement")
		}
	}
	if err := o.Check(); err != nil {
		t.Fatal(err)
	}
	if err := c.Check(); err != nil {
		t.Fatal(err)
	}
}

// Cloning inside an open move is a programming error and must panic rather
// than produce a clone with dangling journal state.
func TestCloneInsideMovePanics(t *testing.T) {
	a, nl := smallDesign(t)
	o, err := New(a, nl, Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	o.Propose(rng)
	defer func() {
		if recover() == nil {
			t.Error("Clone inside an open move did not panic")
		}
	}()
	o.Clone()
}
