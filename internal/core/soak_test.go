package core

import (
	"math/rand"
	"testing"

	"repro/internal/arch"
	"repro/internal/netgen"
)

// TestSoakLongRandomWalk drives the optimizer through a long mixed sequence
// of accepted and rejected moves across several contention regimes, checking
// the full cross-structure invariants periodically. This is the long-horizon
// complement to the per-move undo tests.
func TestSoakLongRandomWalk(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test in -short mode")
	}
	nl, err := netgen.Generate(netgen.Params{Name: "soak", Inputs: 6, Outputs: 5, Seq: 3, Comb: 60, Seed: 97})
	if err != nil {
		t.Fatal(err)
	}
	regimes := []struct {
		name   string
		tracks int
		vt     int
	}{
		{"generous", 24, 5},
		{"tight-horizontal", 8, 5},
		{"tight-vertical", 20, 1},
	}
	for _, rg := range regimes {
		t.Run(rg.name, func(t *testing.T) {
			p := arch.Default(6, 20, rg.tracks)
			p.VTracks = rg.vt
			a := arch.MustNew(p)
			o, err := New(a, nl, Config{Seed: 13})
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(14))
			for i := 0; i < 4000; i++ {
				d := o.Propose(rng)
				switch {
				case d <= 0 || rng.Float64() < 0.3:
					o.Accept()
				default:
					o.Reject()
				}
				if i%500 == 499 {
					if err := o.Check(); err != nil {
						t.Fatalf("%s: move %d: %v", rg.name, i, err)
					}
				}
			}
			if err := o.Check(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
