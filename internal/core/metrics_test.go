package core

import (
	"math/rand"
	"testing"

	"repro/internal/metrics"
)

// TestMetricsMatchAnnealTotals runs the serial engine with a Summary attached
// and checks the collector's aggregates against the engine's own Result: one
// TempRecord per temperature plus the warmup walk, and move/accept totals in
// exact agreement.
func TestMetricsMatchAnnealTotals(t *testing.T) {
	a, nl := smallDesign(t)
	sum := metrics.NewSummary()
	o, err := New(a, nl, Config{Seed: 1, MovesPerCell: 4, MaxTemps: 12, Metrics: sum})
	if err != nil {
		t.Fatal(err)
	}
	res := o.Run()

	tot := sum.Totals()
	if tot.Temps != res.Anneal.Temps+1 {
		t.Errorf("temp records = %d, want %d (Temps+warmup)", tot.Temps, res.Anneal.Temps+1)
	}
	if tot.Moves != res.Anneal.TotalMoves {
		t.Errorf("moves = %d, want %d", tot.Moves, res.Anneal.TotalMoves)
	}
	if tot.Accepted != res.Anneal.Accepted {
		t.Errorf("accepted = %d, want %d", tot.Accepted, res.Anneal.Accepted)
	}
	// The optimizer rips and reroutes on every spatial move and pushes
	// incremental delay updates into the analyzer; an anneal with zero router
	// or STA activity means the counters are disconnected.
	if tot.RipUps == 0 || tot.GRouteAttempts == 0 || tot.DRouteAttempts == 0 {
		t.Errorf("router counters flatlined: rip-ups %d, groute %d, droute %d",
			tot.RipUps, tot.GRouteAttempts, tot.DRouteAttempts)
	}
	if tot.STAUpdates == 0 || tot.STACellsRelaxed == 0 {
		t.Errorf("STA counters flatlined: updates %d, relaxed %d", tot.STAUpdates, tot.STACellsRelaxed)
	}
	if tot.PhaseDur[metrics.PhaseInit] <= 0 || tot.PhaseDur[metrics.PhaseAnneal] <= 0 {
		t.Errorf("phase timers: init %v, anneal %v, want both > 0",
			tot.PhaseDur[metrics.PhaseInit], tot.PhaseDur[metrics.PhaseAnneal])
	}
	if tot.LastTemp.Step != res.Anneal.Temps {
		t.Errorf("last temp record step = %d, want %d", tot.LastTemp.Step, res.Anneal.Temps)
	}
}

// TestMetricsDoNotPerturbResults runs the same seed with and without a
// collector and requires bit-identical outcomes: observation must never feed
// back into the optimization.
func TestMetricsDoNotPerturbResults(t *testing.T) {
	a, nl := smallDesign(t)
	cfg := Config{Seed: 7, MovesPerCell: 4, MaxTemps: 10}

	plain, err := New(a, nl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pres := plain.Run()

	cfg.Metrics = metrics.NewSummary()
	observed, err := New(a, nl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ores := observed.Run()

	if pres.FinalCost != ores.FinalCost || pres.G != ores.G || pres.D != ores.D || pres.WCD != ores.WCD {
		t.Errorf("observed run diverged: cost %v/%v G %d/%d D %d/%d WCD %v/%v",
			pres.FinalCost, ores.FinalCost, pres.G, ores.G, pres.D, ores.D, pres.WCD, ores.WCD)
	}
	if pres.Anneal != ores.Anneal {
		t.Errorf("anneal results diverged: %+v vs %+v", pres.Anneal, ores.Anneal)
	}
}

// TestMetricsParallelChainRecords runs the portfolio engine and checks the
// per-chain records: one per chain, exactly one champion, and the champion
// index agreeing with the Result.
func TestMetricsParallelChainRecords(t *testing.T) {
	a, nl := smallDesign(t)
	sum := metrics.NewSummary()
	o, err := New(a, nl, Config{Seed: 3, MovesPerCell: 4, MaxTemps: 8,
		Chains: 3, Workers: 2, Metrics: sum})
	if err != nil {
		t.Fatal(err)
	}
	_, res := o.RunParallel()
	if res.Chains != 3 {
		t.Fatalf("Result.Chains = %d, want 3", res.Chains)
	}

	tot := sum.Totals()
	if len(tot.Chains) != 3 {
		t.Fatalf("chain records = %d, want 3", len(tot.Chains))
	}
	champions := 0
	for i, c := range tot.Chains {
		if c.Chain != i {
			t.Errorf("chain record %d has index %d (want sorted by index)", i, c.Chain)
		}
		if c.Champion {
			champions++
			if i != res.Champion {
				t.Errorf("champion record is chain %d, Result says %d", i, res.Champion)
			}
		}
		if c.Temps == 0 || c.Moves == 0 {
			t.Errorf("chain %d: %d temps, %d moves, want both > 0", i, c.Temps, c.Moves)
		}
	}
	if champions != 1 {
		t.Errorf("%d champion records, want exactly 1", champions)
	}
}

// TestDisabledCollectorAddsNoMoveAllocations compares per-move allocations
// between a collector-enabled and a disabled (nil) optimizer over the same
// deterministic move sequence. The per-move hot path contains no collector
// calls at all — records are only emitted at temperature boundaries — so
// enabling collection must not add a single allocation per move.
func TestDisabledCollectorAddsNoMoveAllocations(t *testing.T) {
	a, nl := smallDesign(t)
	build := func(mc metrics.Collector) *Optimizer {
		o, err := New(a, nl, Config{Seed: 11, MovesPerCell: 4, MaxTemps: 8, Metrics: mc})
		if err != nil {
			t.Fatal(err)
		}
		return o
	}
	measure := func(o *Optimizer) float64 {
		rng := rand.New(rand.NewSource(99))
		return testing.AllocsPerRun(2000, func() {
			if o.Propose(rng) <= 0 {
				o.Accept()
			} else {
				o.Reject()
			}
		})
	}
	disabled := measure(build(nil))
	enabled := measure(build(metrics.NewSummary()))
	if enabled > disabled {
		t.Errorf("collector added per-move allocations: %.3f enabled vs %.3f disabled",
			enabled, disabled)
	}
}
