package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/arch"
	"repro/internal/droute"
	"repro/internal/netgen"
	"repro/internal/netlist"
)

func smallDesign(t *testing.T) (*arch.Arch, *netlist.Netlist) {
	t.Helper()
	nl, err := netgen.Generate(netgen.Params{Name: "t", Inputs: 4, Outputs: 3, Seq: 2, Comb: 30, Seed: 51})
	if err != nil {
		t.Fatal(err)
	}
	return arch.MustNew(arch.Default(5, 12, 14)), nl
}

func TestNewInitialStateConsistent(t *testing.T) {
	a, nl := smallDesign(t)
	o, err := New(a, nl, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Check(); err != nil {
		t.Fatal(err)
	}
	if o.WCD() <= 0 {
		t.Error("initial WCD not positive")
	}
}

// The load-bearing property of the whole optimizer: a rejected move leaves
// every piece of state exactly as it was, and accepted moves never break the
// cross-structure invariants.
func TestMoveUndoExactness(t *testing.T) {
	a, nl := smallDesign(t)
	o, err := New(a, nl, Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 400; i++ {
		g0, d0, w0, c0 := o.G(), o.D(), o.WCD(), o.Cost()
		o.Propose(rng)
		if rng.Intn(2) == 0 {
			o.Reject()
			if o.G() != g0 || o.D() != d0 || o.WCD() != w0 || o.Cost() != c0 {
				t.Fatalf("move %d: reject did not restore (G %d->%d, D %d->%d, T %v->%v)",
					i, g0, o.G(), d0, o.D(), w0, o.WCD())
			}
		} else {
			o.Accept()
		}
		if i%50 == 49 {
			if err := o.Check(); err != nil {
				t.Fatalf("move %d: %v", i, err)
			}
		}
	}
	if err := o.Check(); err != nil {
		t.Fatal(err)
	}
}

// Property variant across seeds, with deep-state comparison after reject.
func TestRejectRestoresDeepState(t *testing.T) {
	a, nl := smallDesign(t)
	check := func(seed int64) bool {
		o, err := New(a, nl, Config{Seed: seed})
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed + 1))
		// Warm up with accepted moves.
		for i := 0; i < 40; i++ {
			o.Propose(rng)
			o.Accept()
		}
		routesBefore := make([]string, len(o.Rts))
		for id := range o.Rts {
			routesBefore[id] = routeKey(o, int32(id))
		}
		locBefore := append([]int32(nil), flattenLocs(o)...)
		for i := 0; i < 30; i++ {
			o.Propose(rng)
			o.Reject()
		}
		for id := range o.Rts {
			if routeKey(o, int32(id)) != routesBefore[id] {
				t.Logf("seed %d: net %d route changed after rejects", seed, id)
				return false
			}
		}
		now := flattenLocs(o)
		for i := range now {
			if now[i] != locBefore[i] {
				t.Logf("seed %d: placement changed after rejects", seed)
				return false
			}
		}
		return o.Check() == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

func routeKey(o *Optimizer, id int32) string {
	r := &o.Rts[id]
	key := ""
	if r.Global {
		key = "G"
	}
	if r.HasTrunk {
		key += "T"
		key += string(rune(r.TrunkCol)) + string(rune(r.TrunkTrack)) + string(rune(r.VLo)) + string(rune(r.VHi))
	}
	for i := range r.Chans {
		ca := &r.Chans[i]
		key += string(rune(ca.Ch)) + string(rune(ca.Lo)) + string(rune(ca.Hi)) + string(rune(ca.Track+1)) + string(rune(ca.SegLo+1)) + string(rune(ca.SegHi+1))
	}
	return key
}

func flattenLocs(o *Optimizer) []int32 {
	out := make([]int32, 0, 3*o.NL.NumCells())
	for id := range o.P.Loc {
		out = append(out, int32(o.P.Loc[id].Row), int32(o.P.Loc[id].Col), int32(o.P.Pm[id]))
	}
	return out
}

func TestRunReachesFullRouting(t *testing.T) {
	a, nl := smallDesign(t)
	o, err := New(a, nl, Config{Seed: 4, MovesPerCell: 6, MaxTemps: 60})
	if err != nil {
		t.Fatal(err)
	}
	res := o.Run()
	if !res.FullyRouted {
		t.Fatalf("not fully routed: G=%d D=%d", res.G, res.D)
	}
	if err := o.Check(); err != nil {
		t.Fatal(err)
	}
	if res.WCD <= 0 {
		t.Error("WCD not positive")
	}
	if len(res.Dynamics) < 3 {
		t.Errorf("dynamics trace too short: %d samples", len(res.Dynamics))
	}
	if len(res.CriticalPath) < 2 {
		t.Error("no critical path")
	}
}

func TestRunDeterministicBySeed(t *testing.T) {
	a, nl := smallDesign(t)
	run := func() (float64, int, int) {
		o, err := New(a, nl, Config{Seed: 9, MovesPerCell: 3, MaxTemps: 25})
		if err != nil {
			t.Fatal(err)
		}
		r := o.Run()
		return r.WCD, r.G, r.D
	}
	w1, g1, d1 := run()
	w2, g2, d2 := run()
	if w1 != w2 || g1 != g2 || d1 != d2 {
		t.Errorf("same seed diverged: (%v,%d,%d) vs (%v,%d,%d)", w1, g1, d1, w2, g2, d2)
	}
}

// Figure 6's qualitative shape: placement activity decays over the anneal,
// and unrouted fractions converge to zero by the end.
func TestDynamicsShape(t *testing.T) {
	a, nl := smallDesign(t)
	o, err := New(a, nl, Config{Seed: 6, MovesPerCell: 6, MaxTemps: 80})
	if err != nil {
		t.Fatal(err)
	}
	res := o.Run()
	dyn := res.Dynamics
	if len(dyn) < 5 {
		t.Fatalf("trace too short: %d", len(dyn))
	}
	early := dyn[1].CellsPerturbed
	late := dyn[len(dyn)-1].CellsPerturbed
	if early < 0.5 {
		t.Errorf("early placement activity %.2f, want vigorous (>0.5)", early)
	}
	if late >= early {
		t.Errorf("placement activity did not decay: %.2f -> %.2f", early, late)
	}
	if res.FullyRouted && dyn[len(dyn)-1].Unrouted != 0 {
		t.Errorf("final unrouted fraction %.3f with fully routed result", dyn[len(dyn)-1].Unrouted)
	}
}

func TestWirabilityOnlyMode(t *testing.T) {
	a, nl := smallDesign(t)
	o, err := New(a, nl, Config{Seed: 8, MovesPerCell: 4, MaxTemps: 40, DisableTiming: true})
	if err != nil {
		t.Fatal(err)
	}
	res := o.Run()
	if !res.FullyRouted {
		t.Fatalf("wirability mode failed to route: G=%d D=%d", res.G, res.D)
	}
	if err := o.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestMoveMisusePanics(t *testing.T) {
	a, nl := smallDesign(t)
	o, err := New(a, nl, Config{Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("Accept without move", o.Accept)
	mustPanic("Reject without move", o.Reject)
	rng := rand.New(rand.NewSource(1))
	o.Propose(rng)
	mustPanic("nested Propose", func() { o.Propose(rng) })
	o.Reject()
	if err := o.Check(); err != nil {
		t.Fatal(err)
	}
}

// The simultaneous flow only re-routes incrementally after construction, so
// the route backend shapes the initial layout the anneal starts from. The
// full run must stay deterministic per seed and worker-count invariant, and
// an unknown backend must be rejected before any work happens.
func TestRouteBackendInitialRoute(t *testing.T) {
	a, nl := smallDesign(t)
	if _, err := New(a, nl, Config{Seed: 1, RouteBackend: "pathfinder"}); err == nil {
		t.Fatal("New accepted route backend \"pathfinder\"")
	}
	for _, backend := range []string{"negotiated", "lagrange"} {
		run := func(workers int) Result {
			o, err := New(a, nl, Config{
				Seed: 4, MovesPerCell: 3, MaxTemps: 25,
				RouteBackend: droute.Backend(backend), RouteWorkers: workers,
			})
			if err != nil {
				t.Fatal(err)
			}
			res := o.Run()
			if err := o.Check(); err != nil {
				t.Fatalf("%s: %v", backend, err)
			}
			return res
		}
		ref := run(1)
		if ref.RouteFailed < 0 {
			t.Errorf("%s: negative RouteFailed %d", backend, ref.RouteFailed)
		}
		for _, workers := range []int{4, 16} {
			r := run(workers)
			if r.WCD != ref.WCD || r.G != ref.G || r.D != ref.D || r.RouteFailed != ref.RouteFailed {
				t.Errorf("%s workers=%d diverged: (%v,%d,%d) vs (%v,%d,%d)",
					backend, workers, r.WCD, r.G, r.D, ref.WCD, ref.G, ref.D)
			}
		}
	}
}
