package core

import (
	"runtime"
	"testing"

	"repro/internal/arch"
	"repro/internal/netgen"
)

// golden is the exact serial-engine outcome for a fixed design and seed,
// captured before the parallel annealing engine landed. The serial (1-chain)
// path is contractually bit-identical to the historical engine: any change to
// these numbers means the rng stream, the move sequence, or an ordering
// somewhere in the pipeline changed.
type golden struct {
	cfg        Config
	wcd        float64
	finalCost  float64
	temps      int
	totalMoves int
	accepted   int
	annealBest float64
	dyn        int
}

var goldenRuns = []golden{
	{
		cfg:        Config{Seed: 9, MovesPerCell: 3, MaxTemps: 25},
		wcd:        39617.731000000007,
		finalCost:  1,
		temps:      25,
		totalMoves: 3042,
		accepted:   1353,
		annealBest: 0.87185025591758358,
		dyn:        26,
	},
	{
		cfg:        Config{Seed: 4, MovesPerCell: 6, MaxTemps: 60, RangeLimit: true},
		wcd:        35398.376000000004,
		finalCost:  1,
		temps:      37,
		totalMoves: 8892,
		accepted:   3540,
		annealBest: 0.88186076555232296,
		dyn:        38,
	},
}

// TestSerialGoldenValues pins the serial engine bit-for-bit against the
// pre-parallel-engine capture. Float comparisons are exact on purpose.
func TestSerialGoldenValues(t *testing.T) {
	nl, err := netgen.Generate(netgen.Params{Name: "t", Inputs: 4, Outputs: 3, Seq: 2, Comb: 30, Seed: 51})
	if err != nil {
		t.Fatal(err)
	}
	a := arch.MustNew(arch.Default(5, 12, 14))
	for i, g := range goldenRuns {
		o, err := New(a, nl, g.cfg)
		if err != nil {
			t.Fatal(err)
		}
		r := o.Run()
		if r.G != 0 || r.D != 0 {
			t.Errorf("run %d: G=%d D=%d, want fully routed", i, r.G, r.D)
		}
		if r.WCD != g.wcd {
			t.Errorf("run %d: WCD = %.17g, golden %.17g", i, r.WCD, g.wcd)
		}
		if r.FinalCost != g.finalCost {
			t.Errorf("run %d: FinalCost = %.17g, golden %.17g", i, r.FinalCost, g.finalCost)
		}
		if r.Anneal.Temps != g.temps || r.Anneal.TotalMoves != g.totalMoves || r.Anneal.Accepted != g.accepted {
			t.Errorf("run %d: anneal (temps=%d moves=%d accepted=%d), golden (%d, %d, %d)",
				i, r.Anneal.Temps, r.Anneal.TotalMoves, r.Anneal.Accepted, g.temps, g.totalMoves, g.accepted)
		}
		if r.Anneal.BestCost != g.annealBest {
			t.Errorf("run %d: anneal best = %.17g, golden %.17g", i, r.Anneal.BestCost, g.annealBest)
		}
		if len(r.Dynamics) != g.dyn {
			t.Errorf("run %d: %d dynamics samples, golden %d", i, len(r.Dynamics), g.dyn)
		}
		if r.Chains != 0 || r.Restarts != 0 || r.ChainCosts != nil {
			t.Errorf("run %d: serial path reported parallel fields: %+v", i, r)
		}
	}
}

// TestRunParallelSingleChainIsSerial: Chains=1 must take the serial path
// exactly — same optimizer returned, same golden numbers.
func TestRunParallelSingleChainIsSerial(t *testing.T) {
	nl, err := netgen.Generate(netgen.Params{Name: "t", Inputs: 4, Outputs: 3, Seq: 2, Comb: 30, Seed: 51})
	if err != nil {
		t.Fatal(err)
	}
	a := arch.MustNew(arch.Default(5, 12, 14))
	g := goldenRuns[0]
	cfg := g.cfg
	cfg.Chains = 1
	o, err := New(a, nl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	champ, r := o.RunParallel()
	if champ != o {
		t.Error("1-chain RunParallel must anneal the receiver in place")
	}
	if r.WCD != g.wcd || r.Anneal.BestCost != g.annealBest || r.Anneal.Accepted != g.accepted {
		t.Errorf("1-chain result diverged from golden: WCD=%.17g best=%.17g accepted=%d",
			r.WCD, r.Anneal.BestCost, r.Anneal.Accepted)
	}
}

// TestParallelDeterministicAcrossGOMAXPROCS: a K=4 run must reproduce the
// identical final result for a fixed seed across two runs with different
// GOMAXPROCS and worker counts — scheduling must never leak into results.
func TestParallelDeterministicAcrossGOMAXPROCS(t *testing.T) {
	nl, err := netgen.Generate(netgen.Params{Name: "t", Inputs: 4, Outputs: 3, Seq: 2, Comb: 30, Seed: 51})
	if err != nil {
		t.Fatal(err)
	}
	a := arch.MustNew(arch.Default(5, 12, 14))
	run := func(maxprocs, workers int) Result {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(maxprocs))
		o, err := New(a, nl, Config{
			Seed: 9, MovesPerCell: 3, MaxTemps: 25,
			Chains: 4, Workers: workers, SyncTemps: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		champ, r := o.RunParallel()
		if err := champ.Check(); err != nil {
			t.Fatalf("champion state inconsistent: %v", err)
		}
		return r
	}
	r1 := run(1, 1)
	r2 := run(4, 4)
	if r1.WCD != r2.WCD || r1.FinalCost != r2.FinalCost || r1.G != r2.G || r1.D != r2.D {
		t.Errorf("GOMAXPROCS changed the outcome: (WCD=%.17g cost=%.17g G=%d D=%d) vs (WCD=%.17g cost=%.17g G=%d D=%d)",
			r1.WCD, r1.FinalCost, r1.G, r1.D, r2.WCD, r2.FinalCost, r2.G, r2.D)
	}
	if r1.Champion != r2.Champion || r1.Restarts != r2.Restarts {
		t.Errorf("champion/restarts diverged: (%d,%d) vs (%d,%d)",
			r1.Champion, r1.Restarts, r2.Champion, r2.Restarts)
	}
	if len(r1.ChainCosts) != 4 || len(r2.ChainCosts) != 4 {
		t.Fatalf("chain costs missing: %v vs %v", r1.ChainCosts, r2.ChainCosts)
	}
	for i := range r1.ChainCosts {
		if r1.ChainCosts[i] != r2.ChainCosts[i] {
			t.Errorf("chain %d cost diverged: %.17g vs %.17g", i, r1.ChainCosts[i], r2.ChainCosts[i])
		}
	}
	if r1.Chains != 4 {
		t.Errorf("Chains = %d, want 4", r1.Chains)
	}
}

// TestParallelRunRoutesAndChecks: the champion state of a parallel run is a
// real, fully consistent layout.
func TestParallelRunRoutesAndChecks(t *testing.T) {
	nl, err := netgen.Generate(netgen.Params{Name: "t", Inputs: 4, Outputs: 3, Seq: 2, Comb: 30, Seed: 51})
	if err != nil {
		t.Fatal(err)
	}
	a := arch.MustNew(arch.Default(5, 12, 14))
	o, err := New(a, nl, Config{Seed: 4, MovesPerCell: 6, MaxTemps: 60, Chains: 3, SyncTemps: 6})
	if err != nil {
		t.Fatal(err)
	}
	champ, r := o.RunParallel()
	if !r.FullyRouted {
		t.Fatalf("parallel run not fully routed: G=%d D=%d", r.G, r.D)
	}
	if err := champ.Check(); err != nil {
		t.Fatal(err)
	}
	if r.WCD <= 0 {
		t.Error("WCD not positive")
	}
	if r.Champion < 0 || r.Champion >= 3 {
		t.Errorf("champion index %d out of range", r.Champion)
	}
}
