package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/arch"
	"repro/internal/netgen"
)

// TestIncrementalStateAgreesWithRecompute is the cross-cutting consistency
// property behind the whole incremental engine: after any burst of random
// moves (accepted and rejected alike), the incrementally maintained G, D,
// missing-channel and WCD values must agree exactly with a from-scratch
// recomputation, and the full invariant checker must pass. Runs table-driven
// over architectures, designs, seeds and optimizer modes.
func TestIncrementalStateAgreesWithRecompute(t *testing.T) {
	type row struct {
		name  string
		arch  arch.Params
		comb  int
		seq   int
		cfg   Config
		seeds []int64
	}
	shifted := arch.Default(4, 14, 8)
	shifted.SegPattern = []int{3, 5, 2, 7}
	shifted.PhaseStep = 2
	narrow := arch.Default(6, 9, 10)

	rows := []row{
		{
			name:  "default-arch",
			arch:  arch.Default(5, 12, 14),
			comb:  30,
			seq:   2,
			cfg:   Config{},
			seeds: []int64{1, 12, 23},
		},
		{
			name:  "shifted-segmentation",
			arch:  shifted,
			comb:  22,
			seq:   3,
			cfg:   Config{RangeLimit: true},
			seeds: []int64{7, 18},
		},
		{
			name:  "narrow-wirability-only",
			arch:  narrow,
			comb:  26,
			seq:   2,
			cfg:   Config{DisableTiming: true},
			seeds: []int64{5, 16},
		},
		{
			name:  "criticality-weighted",
			arch:  arch.Default(5, 12, 14),
			comb:  30,
			seq:   2,
			cfg:   Config{CritWeight: 1},
			seeds: []int64{3, 21},
		},
		{
			name:  "criticality-biased-range-limited",
			arch:  shifted,
			comb:  22,
			seq:   3,
			cfg:   Config{CritWeight: 0.5, CritBias: 0.4, CritThreshold: 0.5, RangeLimit: true},
			seeds: []int64{9},
		},
	}

	const movesPerCheck = 40
	const checks = 8

	for _, tc := range rows {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			nl, err := netgen.Generate(netgen.Params{
				Name: tc.name, Inputs: 4, Outputs: 3, Seq: tc.seq, Comb: tc.comb, Seed: 51,
			})
			if err != nil {
				t.Fatal(err)
			}
			a := arch.MustNew(tc.arch)
			for _, seed := range tc.seeds {
				cfg := tc.cfg
				cfg.Seed = seed
				o, err := New(a, nl, cfg)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				rng := rand.New(rand.NewSource(seed + 100))
				for chk := 0; chk < checks; chk++ {
					for i := 0; i < movesPerCheck; i++ {
						o.Propose(rng)
						if rng.Intn(3) == 0 {
							o.Reject()
						} else {
							o.Accept()
						}
					}
					verifyAgainstRecompute(t, o, seed, chk)
					if t.Failed() {
						return
					}
				}
			}
		})
	}
}

// verifyAgainstRecompute compares the optimizer's incremental counters and
// timing view against from-scratch recomputation.
func verifyAgainstRecompute(t *testing.T, o *Optimizer, seed int64, chk int) {
	t.Helper()

	// Bounding-box cache: every cached span must equal a from-scratch pin
	// scan after any mixture of accepted and rejected moves (rejections roll
	// back via Swap/SetPinmap, so they exercise the invalidation paths too).
	if err := o.P.ValidateNetBoxes(); err != nil {
		t.Errorf("seed %d check %d: %v", seed, chk, err)
		return
	}

	// Route counters: recountGD rebuilds g/d/dc by scanning every route.
	g, d, dc := o.g, o.d, o.dc
	o.recountGD()
	if g != o.g || d != o.d || dc != o.dc {
		t.Errorf("seed %d check %d: incremental counters (G=%d D=%d dc=%d) != recount (G=%d D=%d dc=%d)",
			seed, chk, g, d, dc, o.g, o.d, o.dc)
		return
	}

	// Timing: a full RefreshTiming from the current routes must reproduce the
	// incrementally maintained WCD (and, being a rebuild of the same inputs,
	// leave the cost unchanged). In wirability-only mode the timing view is
	// deliberately not maintained move-to-move, so there is nothing to
	// cross-check.
	if o.timingOn() {
		wcd, cost := o.WCD(), o.Cost()
		if err := o.RefreshTiming(); err != nil {
			t.Errorf("seed %d check %d: RefreshTiming: %v", seed, chk, err)
			return
		}
		if math.Abs(o.WCD()-wcd) > 1e-6 {
			t.Errorf("seed %d check %d: incremental WCD %v != from-scratch %v", seed, chk, wcd, o.WCD())
			return
		}
		if math.Abs(o.Cost()-cost) > 1e-9 {
			t.Errorf("seed %d check %d: cost drifted across refresh: %v -> %v", seed, chk, cost, o.Cost())
			return
		}
	}

	// Full cross-structure invariant check (placement legality, fabric
	// ownership vs routes, route geometry vs pins, timing cache vs rebuild).
	if err := o.Check(); err != nil {
		t.Errorf("seed %d check %d: %v", seed, chk, err)
	}
}
