package core

import (
	"math/rand"
	"testing"

	"repro/internal/arch"
	"repro/internal/netgen"
)

// The paper's Figures 3 and 4 illustrate the incremental rerouting cascade:
// a placement move rips up the mover's nets, and the freed segments let
// *other*, previously stuck nets route. These tests assert exactly that
// mechanism: an accepted move whose journal shows a net transitioning from
// stuck to routed without having been ripped (i.e. not attached to the moved
// cells).

// driveUntil runs random moves (always accepted) until pred holds or the
// budget runs out; reports success.
func driveUntil(o *Optimizer, rng *rand.Rand, budget int, pred func() bool) bool {
	for i := 0; i < budget; i++ {
		if pred() {
			return true
		}
		o.Propose(rng)
		o.Accept()
	}
	return pred()
}

// unrippedRecoveries counts journal entries of the last move where a net not
// attached to the moved cells went from unrouted (globally for wantGlobal,
// else detail-incomplete) to routed.
func unrippedRecoveries(o *Optimizer, wantGlobal bool) int {
	n := 0
	for i := range o.journal {
		e := &o.journal[i]
		if e.ripped {
			continue
		}
		r := &o.Rts[e.id]
		if wantGlobal {
			if !e.old.Global && r.Global {
				n++
			}
		} else {
			if !e.old.DetailDone() && r.DetailDone() {
				n++
			}
		}
	}
	return n
}

func TestFigure3IncrementalGlobalReroute(t *testing.T) {
	nl, err := netgen.Generate(netgen.Params{Name: "f3", Inputs: 5, Outputs: 4, Seq: 2, Comb: 40, Seed: 71})
	if err != nil {
		t.Fatal(err)
	}
	// Scarce vertical resources so global routing is contended.
	p := arch.Default(6, 14, 20)
	p.VTracks = 1
	p.VSpan = 2
	a := arch.MustNew(p)
	o, err := New(a, nl, Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	if !driveUntil(o, rng, 3000, func() bool { return o.G() > 0 }) {
		t.Skip("could not provoke global-routing contention")
	}
	// Search for a move in which a stuck net becomes globally routed without
	// being ripped: the Figure-3 cascade.
	found := false
	for i := 0; i < 5000 && !found; i++ {
		g0 := o.G()
		o.Propose(rng)
		if o.G() < g0 && unrippedRecoveries(o, true) > 0 {
			found = true
			o.Accept()
			break
		}
		o.Reject()
		if o.G() == 0 {
			// Contention resolved itself; provoke again.
			if !driveUntil(o, rng, 2000, func() bool { return o.G() > 0 }) {
				break
			}
		}
	}
	if !found {
		t.Fatal("no move exhibited the incremental global rerouting cascade")
	}
	if err := o.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestFigure4IncrementalDetailedReroute(t *testing.T) {
	nl, err := netgen.Generate(netgen.Params{Name: "f4", Inputs: 5, Outputs: 4, Seq: 2, Comb: 40, Seed: 73})
	if err != nil {
		t.Fatal(err)
	}
	// Scarce horizontal resources so detailed routing is contended.
	a := arch.MustNew(arch.Default(6, 14, 4))
	o, err := New(a, nl, Config{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(10))
	if !driveUntil(o, rng, 3000, func() bool { return o.D() > o.G() }) {
		t.Skip("could not provoke detailed-routing contention")
	}
	found := false
	for i := 0; i < 5000 && !found; i++ {
		d0 := o.D()
		o.Propose(rng)
		if o.D() < d0 && unrippedRecoveries(o, false) > 0 {
			found = true
			o.Accept()
			break
		}
		o.Reject()
		if o.D() == o.G() {
			if !driveUntil(o, rng, 2000, func() bool { return o.D() > o.G() }) {
				break
			}
		}
	}
	if !found {
		t.Fatal("no move exhibited the incremental detailed rerouting cascade")
	}
	if err := o.Check(); err != nil {
		t.Fatal(err)
	}
}

// δG in Figure 3 is the move's contribution to the cost: verify the counter
// arithmetic against a recount across a burst of accepted moves under
// contention.
func TestCountersUnderContention(t *testing.T) {
	nl, err := netgen.Generate(netgen.Params{Name: "f3c", Inputs: 5, Outputs: 4, Seq: 2, Comb: 40, Seed: 75})
	if err != nil {
		t.Fatal(err)
	}
	p := arch.Default(6, 14, 3)
	p.VTracks = 1
	a := arch.MustNew(p)
	o, err := New(a, nl, Config{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 300; i++ {
		o.Propose(rng)
		if rng.Intn(3) == 0 {
			o.Reject()
		} else {
			o.Accept()
		}
	}
	g, d, dc := o.g, o.d, o.dc
	o.recountGD()
	if g != o.g || d != o.d || dc != o.dc {
		t.Fatalf("counters drifted under contention: G %d vs %d, D %d vs %d, dc %d vs %d",
			g, o.g, d, o.d, dc, o.dc)
	}
	if err := o.Check(); err != nil {
		t.Fatal(err)
	}
}
