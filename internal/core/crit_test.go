package core

import (
	"runtime"
	"testing"

	"repro/internal/arch"
	"repro/internal/netgen"
)

// TestCritRunDeterministicAndConsistent: a full serial run with the
// criticality term and move bias enabled is deterministic for a fixed seed,
// routes completely, and leaves a state that passes the full invariant
// checker (including the crit-sum cross-check).
func TestCritRunDeterministicAndConsistent(t *testing.T) {
	nl, err := netgen.Generate(netgen.Params{Name: "t", Inputs: 4, Outputs: 3, Seq: 2, Comb: 30, Seed: 51})
	if err != nil {
		t.Fatal(err)
	}
	a := arch.MustNew(arch.Default(5, 12, 14))
	cfg := Config{Seed: 9, MovesPerCell: 3, MaxTemps: 25, CritWeight: 1, CritBias: 0.3}
	run := func() (Result, *Optimizer) {
		o, err := New(a, nl, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return o.Run(), o
	}
	r1, o1 := run()
	r2, _ := run()
	if !r1.FullyRouted {
		t.Fatalf("crit-on run not fully routed: G=%d D=%d", r1.G, r1.D)
	}
	if r1.WCD != r2.WCD || r1.FinalCost != r2.FinalCost ||
		r1.Anneal.TotalMoves != r2.Anneal.TotalMoves || r1.Anneal.Accepted != r2.Anneal.Accepted {
		t.Errorf("crit-on run not deterministic: (WCD=%.17g cost=%.17g moves=%d acc=%d) vs (WCD=%.17g cost=%.17g moves=%d acc=%d)",
			r1.WCD, r1.FinalCost, r1.Anneal.TotalMoves, r1.Anneal.Accepted,
			r2.WCD, r2.FinalCost, r2.Anneal.TotalMoves, r2.Anneal.Accepted)
	}
	if err := o1.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestCritParallelDeterministicAcrossGOMAXPROCS: the criticality state must
// clone correctly — a multi-chain crit-on run reproduces the identical result
// regardless of scheduling.
func TestCritParallelDeterministicAcrossGOMAXPROCS(t *testing.T) {
	nl, err := netgen.Generate(netgen.Params{Name: "t", Inputs: 4, Outputs: 3, Seq: 2, Comb: 30, Seed: 51})
	if err != nil {
		t.Fatal(err)
	}
	a := arch.MustNew(arch.Default(5, 12, 14))
	run := func(maxprocs, workers int) Result {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(maxprocs))
		o, err := New(a, nl, Config{
			Seed: 9, MovesPerCell: 3, MaxTemps: 25,
			Chains: 3, Workers: workers, SyncTemps: 4,
			CritWeight: 1, CritBias: 0.3,
		})
		if err != nil {
			t.Fatal(err)
		}
		champ, r := o.RunParallel()
		if err := champ.Check(); err != nil {
			t.Fatalf("champion state inconsistent: %v", err)
		}
		return r
	}
	r1 := run(1, 1)
	r2 := run(4, 4)
	if r1.WCD != r2.WCD || r1.FinalCost != r2.FinalCost || r1.Champion != r2.Champion {
		t.Errorf("crit-on parallel run scheduling-dependent: (WCD=%.17g cost=%.17g champ=%d) vs (WCD=%.17g cost=%.17g champ=%d)",
			r1.WCD, r1.FinalCost, r1.Champion, r2.WCD, r2.FinalCost, r2.Champion)
	}
}

// TestCritDefaultsApplied: setting CritWeight alone fills in the dependent
// knobs; leaving it zero keeps every crit field inert.
func TestCritDefaultsApplied(t *testing.T) {
	c := Config{CritWeight: 2}
	c.setDefaults()
	if c.CritDamping != 0.6 || c.CritBias != 0.25 || c.CritThreshold != 0.75 {
		t.Errorf("crit defaults not applied: damping=%v bias=%v threshold=%v", c.CritDamping, c.CritBias, c.CritThreshold)
	}
	z := Config{}
	z.setDefaults()
	if z.CritWeight != 0 || z.CritDamping != 0 || z.CritBias != 0 || z.CritThreshold != 0 {
		t.Errorf("crit-off config gained crit defaults: %+v", z)
	}
}
