package core

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/metrics"
)

// TestCancelUnsetBitIdentical is the zero-cost contract for the optimizer: a
// run with an open (never-fired) Cancel channel must be bit-identical to a run
// with the field unset — the hook may not consume RNG draws, change any
// decision, or alter the result in any way.
func TestCancelUnsetBitIdentical(t *testing.T) {
	a, nl := smallDesign(t)
	run := func(cancel <-chan struct{}) Result {
		o, err := New(a, nl, Config{Seed: 5, MovesPerCell: 4, MaxTemps: 10, Cancel: cancel})
		if err != nil {
			t.Fatal(err)
		}
		return o.Run()
	}
	plain := run(nil)
	open := run(make(chan struct{}))
	if plain.FinalCost != open.FinalCost || plain.G != open.G || plain.D != open.D ||
		plain.WCD != open.WCD || plain.Anneal != open.Anneal ||
		plain.RepairMoves != open.RepairMoves || plain.RepairFixed != open.RepairFixed {
		t.Errorf("open cancel channel changed the run:\n%+v\nvs\n%+v", plain, open)
	}
	if plain.Cancelled || open.Cancelled {
		t.Error("uncancelled run reported Cancelled")
	}
}

// TestCancelAddsNoMoveAllocations pins that the cancellation hook lives
// entirely outside the per-move path: proposing and resolving moves with an
// armed (open) cancel channel allocates no more than without one.
func TestCancelAddsNoMoveAllocations(t *testing.T) {
	a, nl := smallDesign(t)
	build := func(cancel <-chan struct{}) *Optimizer {
		o, err := New(a, nl, Config{Seed: 11, MovesPerCell: 4, MaxTemps: 8, Cancel: cancel})
		if err != nil {
			t.Fatal(err)
		}
		return o
	}
	measure := func(o *Optimizer) float64 {
		rng := rand.New(rand.NewSource(99))
		return testing.AllocsPerRun(2000, func() {
			if o.Propose(rng) <= 0 {
				o.Accept()
			} else {
				o.Reject()
			}
		})
	}
	unset := measure(build(nil))
	armed := measure(build(make(chan struct{})))
	if armed > unset {
		t.Errorf("cancel hook added per-move allocations: %.3f armed vs %.3f unset", armed, unset)
	}
}

// TestCancelStopsSerialRun cancels a serial run from the temperature callback
// and checks it stops at the boundary, skips repair, and flags the result.
func TestCancelStopsSerialRun(t *testing.T) {
	a, nl := smallDesign(t)
	cancel := make(chan struct{})
	cancelled := false
	o, err := New(a, nl, Config{Seed: 3, MovesPerCell: 4, MaxTemps: 200, Cancel: cancel,
		Metrics: tempTrigger(func(step int) {
			if step == 3 && !cancelled {
				cancelled = true
				close(cancel)
			}
		})})
	if err != nil {
		t.Fatal(err)
	}
	res := o.Run()
	if !res.Cancelled {
		t.Error("Result.Cancelled not set")
	}
	if res.Anneal.Temps != 3 {
		t.Errorf("stopped after %d temps, want 3", res.Anneal.Temps)
	}
	if res.RepairMoves != 0 {
		t.Errorf("cancelled run still ran %d repair moves", res.RepairMoves)
	}
	// The state left behind is the consistent last-temperature state.
	if err := o.Check(); err != nil {
		t.Errorf("post-cancel state inconsistent: %v", err)
	}
}

// TestCancelStopsParallelRun cancels a portfolio run mid-flight and checks
// prompt, flagged termination with a consistent champion state.
func TestCancelStopsParallelRun(t *testing.T) {
	a, nl := smallDesign(t)
	cancel := make(chan struct{})
	type out struct {
		o   *Optimizer
		res Result
	}
	done := make(chan out, 1)
	o, err := New(a, nl, Config{Seed: 7, MovesPerCell: 8, MaxTemps: 10000,
		Chains: 3, Workers: 2, Cancel: cancel})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		champ, res := o.RunParallel()
		done <- out{champ, res}
	}()
	time.Sleep(30 * time.Millisecond)
	close(cancel)
	select {
	case r := <-done:
		if !r.res.Cancelled {
			t.Error("parallel Result.Cancelled not set")
		}
		if err := r.o.Check(); err != nil {
			t.Errorf("post-cancel champion state inconsistent: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("parallel run did not stop within 30s of cancellation")
	}
}

// tempTrigger adapts a step callback into a metrics.Collector so tests can
// fire cancellation from inside the run at an exact temperature boundary.
type tempTrigger func(step int)

func (f tempTrigger) RecordTemp(r metrics.TempRecord) { f(r.Step) }
func (f tempTrigger) RecordPhase(metrics.PhaseRecord) {}
func (f tempTrigger) RecordChain(metrics.ChainRecord) {}
