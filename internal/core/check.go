package core

import (
	"fmt"
	"math"

	"repro/internal/timing"
)

// Check verifies every cross-structure invariant of the optimizer state from
// scratch: placement legality, fabric/route consistency, the G and D
// counters, route geometry against current pin positions, and the
// incremental timing view against a full recomputation. Tests call it after
// move bursts; it is far too slow for the inner loop.
func (o *Optimizer) Check() error {
	if o.moveKind != moveNone {
		return fmt.Errorf("core: Check inside an open move")
	}
	if err := o.P.Validate(); err != nil {
		return err
	}
	if err := o.P.ValidateNetBoxes(); err != nil {
		return err
	}
	if err := o.F.CheckConsistent(o.Rts); err != nil {
		return err
	}

	g, d := 0, 0
	for id := range o.Rts {
		if !o.Rts[id].Global {
			g++
		}
		if !o.Rts[id].DetailDone() {
			d++
		}
	}
	if g != o.g || d != o.d {
		return fmt.Errorf("core: counters drifted: G=%d (recount %d), D=%d (recount %d)", o.g, g, o.d, d)
	}

	// Route geometry must match current pin positions.
	for id := range o.Rts {
		r := &o.Rts[id]
		net := &o.NL.Nets[id]
		if !r.Global || len(net.Sinks) == 0 {
			continue
		}
		covers := func(ch, col int) bool {
			for i := range r.Chans {
				ca := &r.Chans[i]
				if ca.Ch == ch && ca.Lo <= col && col <= ca.Hi {
					return true
				}
			}
			return false
		}
		ch, col := o.P.PinPos(net.Driver)
		if !covers(ch, col) {
			return fmt.Errorf("core: net %d driver pin (%d,%d) outside route intervals", id, ch, col)
		}
		for _, s := range net.Sinks {
			ch, col = o.P.PinPos(s)
			if !covers(ch, col) {
				return fmt.Errorf("core: net %d sink pin (%d,%d) outside route intervals", id, ch, col)
			}
		}
		if r.HasTrunk {
			for i := range r.Chans {
				ca := &r.Chans[i]
				if ca.Lo > r.TrunkCol || r.TrunkCol > ca.Hi {
					return fmt.Errorf("core: net %d channel %d interval misses trunk column", id, ca.Ch)
				}
			}
		}
	}

	// Timing: rebuild from scratch and compare. In wirability-only mode the
	// timing view is not maintained move-to-move, so there is nothing to
	// cross-check.
	if !o.timingOn() {
		return nil
	}
	ref, err := timing.NewAnalyzer(o.NL)
	if err != nil {
		return err
	}
	ref.Begin()
	for id := range o.Rts {
		if len(o.NL.Nets[id].Sinks) == 0 {
			continue
		}
		want, err := o.netDelays(int32(id))
		if err != nil {
			return fmt.Errorf("core: net %d: %w", id, err)
		}
		got := o.An.NetDelay(int32(id))
		for i := range want {
			if math.Abs(want[i]-got[i]) > 1e-6 {
				ref.Commit()
				return fmt.Errorf("core: net %d sink %d delay cache %v, recompute %v", id, i, got[i], want[i])
			}
		}
		ref.SetNetDelays(int32(id), want)
	}
	ref.Propagate()
	ref.Commit()
	for c := int32(0); c < int32(o.NL.NumCells()); c++ {
		if math.Abs(ref.Arrival(c)-o.An.Arrival(c)) > 1e-6 {
			return fmt.Errorf("core: cell %d arrival %v, recompute %v", c, o.An.Arrival(c), ref.Arrival(c))
		}
	}
	if math.Abs(ref.WCD()-o.An.WCD()) > 1e-6 {
		return fmt.Errorf("core: WCD %v, recompute %v", o.An.WCD(), ref.WCD())
	}

	// Criticality term: the incrementally maintained per-net max delays and
	// the weighted sum must agree with a from-scratch recomputation over the
	// analyzer's committed delays.
	if o.critOn() {
		crit := o.crit.Values()
		sum := 0.0
		for id := range o.Rts {
			m := 0.0
			for _, v := range o.An.NetDelay(int32(id)) {
				if v > m {
					m = v
				}
			}
			if math.Abs(m-o.netMaxD[id]) > 1e-9 {
				return fmt.Errorf("core: net %d max delay cache %v, recompute %v", id, o.netMaxD[id], m)
			}
			sum += crit[id] * m
		}
		if math.Abs(sum-o.critSum) > 1e-6*(1+math.Abs(sum)) {
			return fmt.Errorf("core: critSum %v, recompute %v", o.critSum, sum)
		}
	}
	return nil
}
