// Package core implements the paper's contribution: performance-driven
// simultaneous placement, global routing and detailed routing for row-based
// FPGAs (Nag & Rutenbar, DAC 1994, §3).
//
// A single simulated annealing optimization manipulates all the actors of
// the layout concurrently. The state is a legal placement plus a pinmap
// choice per cell plus a (possibly incomplete) segment assignment per net;
// the move set is cell swaps/translations and pinmap reassignments; every
// move rips up the nets on the perturbed cells and triggers incremental
// global and detailed rerouting of all currently-unroutable nets; the cost is
//
//	Cost = Wg·G + Wd·D + Wt·T
//
// with G = globally-unroutable net count, D = nets lacking a complete
// detailed route (D ⊇ G), and T the worst-case path delay maintained by an
// incremental, levelized timing analysis (Elmore RC-tree delays once a net is
// physically embedded, spatial-extent estimates before). There is no
// wirelength term: short wires emerge constructively from the routers'
// wastage/segment-count preferences. Weights are renormalized adaptively at
// temperature boundaries.
package core

import (
	"fmt"
	"math/rand"
	"slices"
	"time"

	"repro/internal/anneal"
	"repro/internal/arch"
	"repro/internal/droute"
	"repro/internal/fabric"
	"repro/internal/groute"
	"repro/internal/layout"
	"repro/internal/metrics"
	"repro/internal/netlist"
	"repro/internal/timing"
)

// Config tunes the simultaneous optimizer.
type Config struct {
	Seed         int64
	MovesPerCell int     // moves per temperature = MovesPerCell × #cells (default 12)
	PinmapProb   float64 // fraction of moves that reassign a pinmap (default 0.15)
	MaxTemps     int     // temperature cap (default 300)

	// Relative emphasis of the cost components; the absolute weights are
	// renormalized adaptively each temperature (paper §3.2). DisableTiming
	// yields a pure wirability optimization (used by the Table-2 sweep).
	RouteGamma    float64 // default 1.0
	TimingGamma   float64 // default 1.0
	DisableTiming bool

	DrouteCost   droute.Cost // zero value selects droute.DefaultCost
	RepairPasses int         // zero-temperature routability repair passes (default 6)

	// RouteBackend selects the algorithm of the initial constructive full
	// routing pass: the paper's ordered single-pass router (empty or
	// droute.BackendOrdered — the default, bit-identical to the
	// pre-extension engine), the negotiated-congestion router
	// (droute.BackendNegotiated), or the Lagrangian-relaxation net-parallel
	// router (droute.BackendLagrange). The in-loop incremental rerouting is
	// backend-independent. Every backend is deterministic for a fixed Seed
	// regardless of RouteWorkers or GOMAXPROCS.
	RouteBackend droute.Backend

	// RouteIters overrides the iteration cap of the negotiated and lagrange
	// route backends (0 = the backend's default). Ignored when the ordered
	// backend is selected.
	RouteIters int

	// RouteWorkers caps the selected route backend's concurrency
	// (0 = GOMAXPROCS). Scheduling only; never affects results.
	RouteWorkers int

	// DisablePinmapMoves removes pinmap reassignment from the move set
	// (ablation: quantifies what the paper's "Cell Pin Assignments" state
	// component buys).
	DisablePinmapMoves bool

	// DCFraction is the per-missing-channel surcharge inside the D term
	// (default 0.35; negative disables it). The paper defines D as a bare
	// net count; the surcharge gives the annealer a gradient toward full
	// detailed routing and is ablatable.
	DCFraction float64

	// CritWeight enables criticality-weighted timing-driven annealing — the
	// critical-path-aware extension of the paper's single-worst-path T term.
	// A second timing component, Σ_nets crit(n)·maxSinkDelay(n), joins the
	// cost with its own adaptively renormalized weight, so moves that slow
	// many near-critical paths are penalized even while the single worst path
	// is unchanged. Per-net criticalities are extracted from the incremental
	// STA once per temperature and exponentially damped (see CritDamping);
	// the per-move cost of the term is a handful of float ops. CritWeight
	// scales the term's share of the normalization relative to TimingGamma.
	// 0 (the default) disables the machinery entirely: no extra state, no
	// extra RNG draws, bit-identical fixed-seed results for every
	// pre-existing configuration.
	CritWeight float64

	// CritDamping is the history weight of the per-temperature criticality
	// update: crit ← damping·crit + (1-damping)·instantaneous (default 0.6;
	// negative selects 0, i.e. undamped tracking). Only meaningful with
	// CritWeight > 0.
	CritDamping float64

	// CritBias is the fraction of swap moves whose moved cell is drawn from
	// a near-critical net instead of uniformly, focusing the annealer's
	// attention where timing is won (default 0.25 with CritWeight on;
	// negative disables biasing while keeping the cost term).
	CritBias float64

	// CritThreshold is the damped criticality at or above which a net counts
	// as near-critical for move biasing (default 0.75).
	CritThreshold float64

	// RangeLimit enables TimberWolf-style adaptive move-range windows (the
	// "technical improvements ... for increased speed" direction of the
	// paper's §5): the swap partner is drawn from a window around the moved
	// cell whose radius adapts to keep acceptance near 0.44.
	RangeLimit bool

	// Chains selects parallel portfolio annealing: K independent chains run
	// concurrently and exchange state at synchronization barriers (losers
	// restart from a clone of the champion). 0 or 1 keeps the serial engine
	// with bit-identical behavior for a fixed seed. Results for a fixed
	// (Seed, Chains, SyncTemps) are deterministic regardless of Workers or
	// GOMAXPROCS.
	Chains int

	// Workers caps how many chains are stepped concurrently (default
	// runtime.GOMAXPROCS(0)). Scheduling only; never affects results.
	Workers int

	// SyncTemps is the number of temperatures between chain synchronization
	// barriers (default 8).
	SyncTemps int

	// Metrics, when non-nil, receives per-temperature, per-phase and
	// per-chain observability records. It must be safe for concurrent use
	// (parallel chains share it). nil disables collection entirely: the move
	// loop then performs no collector calls and allocates nothing extra.
	// Collection never affects results.
	Metrics metrics.Collector

	// Cancel, when non-nil, requests early termination: the serial engine
	// polls it at temperature boundaries, the parallel engine additionally at
	// synchronization barriers, and the repair phase between passes. Once the
	// channel closes the run stops at the next boundary, skips the repair
	// phase, and reports Result.Cancelled with the consistent state of the
	// last completed temperature. The hook is free when unset: a nil channel
	// adds no per-move work, no allocations and no RNG draws, so results are
	// bit-identical with or without the field. Closing the channel is the only
	// supported signal (send never unblocks more than one poll); to drive it
	// from a context.Context, pass ctx.Done().
	Cancel <-chan struct{}
}

func (c *Config) setDefaults() {
	if c.MovesPerCell <= 0 {
		c.MovesPerCell = 12
	}
	if c.PinmapProb <= 0 {
		c.PinmapProb = 0.15
	}
	if c.MaxTemps <= 0 {
		c.MaxTemps = 300
	}
	if c.RouteGamma <= 0 {
		c.RouteGamma = 1.0
	}
	if c.TimingGamma <= 0 {
		c.TimingGamma = 1.0
	}
	if c.DisableTiming {
		c.TimingGamma = 0
	}
	if c.DrouteCost == (droute.Cost{}) {
		c.DrouteCost = droute.DefaultCost()
	}
	if c.RepairPasses <= 0 {
		c.RepairPasses = 6
	}
	if c.DCFraction == 0 {
		c.DCFraction = 0.35
	}
	if c.DCFraction < 0 {
		c.DCFraction = 0
	}
	if c.DisablePinmapMoves {
		c.PinmapProb = 0
	}
	if c.CritWeight < 0 {
		c.CritWeight = 0
	}
	if c.CritWeight > 0 {
		if c.CritDamping == 0 {
			c.CritDamping = 0.6
		}
		if c.CritDamping < 0 {
			c.CritDamping = 0
		}
		if c.CritBias == 0 {
			c.CritBias = 0.25
		}
		if c.CritBias < 0 {
			c.CritBias = 0
		}
		if c.CritThreshold <= 0 {
			c.CritThreshold = 0.75
		}
		if c.CritThreshold > 1 {
			c.CritThreshold = 1
		}
	}
}

// DynamicsSample is one temperature's activity snapshot — the series plotted
// in the paper's Figure 6.
type DynamicsSample struct {
	Step             int
	Temp             float64
	CellsPerturbed   float64 // fraction of cells whose location/pinmap changed
	GlobalUnrouted   float64 // fraction of nets with no global route (G/#nets)
	Unrouted         float64 // fraction of nets lacking complete detailed routing (D/#nets)
	WCD              float64 // current worst-case delay, ps
	Cost             float64
	AcceptRatio      float64
	MovesAtTemp      int
	AcceptedMovesSum int
}

// Result reports a finished simultaneous place-and-route run.
type Result struct {
	G, D         int     // final unrouted counts (0,0 = 100% routed)
	WCD          float64 // final worst-case delay per the in-loop model
	FullyRouted  bool
	Anneal       anneal.Result
	Dynamics     []DynamicsSample
	RepairMoves  int
	RepairFixed  int
	FinalCost    float64
	CriticalPath []int32
	Cancelled    bool // run cut short by Config.Cancel (repair skipped)

	// RouteFailed is the number of channel needs the initial constructive
	// routing pass (Config.RouteBackend) left unrouted — the starting debt
	// the annealer then works off.
	RouteFailed int

	// Parallel-run report; zero values on the serial path.
	Chains           int             // number of annealing chains (0 or 1 = serial)
	Champion         int             // winning chain index
	Restarts         int             // loser restarts performed at sync barriers
	ChainCosts       []float64       // final annealing cost per chain
	ChainWall        []time.Duration // wall clock spent stepping each chain (reporting only)
	ChampionSwitches int             // barriers at which the champion index changed
}

// Optimizer is the simultaneous place-and-route engine. It implements
// anneal.Problem; most callers just use Run.
type Optimizer struct {
	A   *arch.Arch
	NL  *netlist.Netlist
	P   *layout.Placement
	F   *fabric.Fabric
	Rts []fabric.NetRoute
	An  *timing.Analyzer

	cfg Config

	g, d       int // current G and D counts
	dc         int // missing detailed channel routes across globally routed nets
	wg, wd, wt float64

	initRouteFailed int // channel needs the initial constructive route left unrouted

	// Move journal (valid between Propose and Accept/Reject).
	moveKind     moveKind
	swapA        layout.Loc
	swapB        layout.Loc
	pmCell       int32
	pmOld        uint8
	journal      []jEntry
	jOldG, jOldD int
	jOldDC       int
	netStamp     []uint32
	epoch        uint32

	// Dynamics instrumentation.
	cellStamp     []uint32
	cellEpochBase uint32
	perturbed     int

	worklist []int32
	estLen   []float64
	dynamics []DynamicsSample
	dcalc    timing.DelayCalc
	estBuf   []float64

	// Criticality-weighted timing term (CritWeight extension). All nil/zero
	// when the extension is off; none of it is touched then, keeping the
	// default path bit-identical to the pre-extension engine.
	crit      *timing.Criticality
	netMaxD   []float64 // per net: max sink delay currently in the analyzer
	critSum   float64   // Σ crit(n)·netMaxD[n], maintained incrementally
	wcr       float64   // adaptive weight of the criticality term
	critCells []int32   // cells on near-critical nets (rebuilt per temperature)
	critStamp []uint32  // per cell: critEpoch when added to critCells
	critEpoch uint32
	jCritSum  float64 // journaled critSum (valid during an open move)

	// Adaptive move-range window (RangeLimit extension).
	window int

	// Observability state: the chain index this optimizer is annealing as,
	// and the router/STA counter snapshots taken at the last temperature
	// boundary (for per-temperature deltas). Only read when cfg.Metrics is
	// non-nil.
	chain   int
	lastRt  fabric.RouteStats
	lastSTA timing.Stats
}

type moveKind uint8

const (
	moveNone moveKind = iota
	moveSwap
	movePinmap
)

// New builds the initial state: a random legal placement, a constructive
// first routing pass, and a fully initialized timing view.
func New(a *arch.Arch, nl *netlist.Netlist, cfg Config) (*Optimizer, error) {
	cfg.setDefaults()
	backend, err := droute.ParseBackend(string(cfg.RouteBackend))
	if err != nil {
		return nil, err
	}
	initDone := metrics.StartPhase(cfg.Metrics, metrics.PhaseInit)
	rng := rand.New(rand.NewSource(cfg.Seed))
	p, err := layout.NewRandom(a, nl, rng)
	if err != nil {
		return nil, err
	}
	an, err := timing.NewAnalyzer(nl)
	if err != nil {
		return nil, err
	}
	o := &Optimizer{
		A:   a,
		NL:  nl,
		P:   p,
		F:   fabric.New(a),
		Rts: make([]fabric.NetRoute, nl.NumNets()),
		An:  an,
		cfg: cfg,

		netStamp:  make([]uint32, nl.NumNets()),
		cellStamp: make([]uint32, nl.NumCells()),

		// Pre-sized move scratch: a move can journal and re-attempt every
		// net, so sizing for the worst case up front keeps the steady-state
		// move path at zero allocations (asserted by TestMoveAllocFree).
		journal:  make([]jEntry, 0, nl.NumNets()),
		worklist: make([]int32, 0, nl.NumNets()),
		estLen:   make([]float64, nl.NumNets()),
	}
	o.window = maxInt(a.Rows, a.Cols)

	// Initial constructive routing (longest nets first) and delay fill.
	// The nested phase records let benchmarks attribute the construction's
	// route share separately from the enclosing init phase.
	grouteDone := metrics.StartPhase(cfg.Metrics, metrics.PhaseGlobalRoute)
	groute.RouteAll(o.F, o.P, o.Rts)
	grouteDone()
	drouteDone := metrics.StartPhase(cfg.Metrics, metrics.PhaseDetailRoute)
	switch backend {
	case droute.BackendNegotiated:
		o.initRouteFailed = droute.RouteAllNegotiated(o.F, o.Rts, cfg.DrouteCost, droute.NegotiateConfig{
			MaxIters: cfg.RouteIters,
			Seed:     cfg.Seed,
			Workers:  cfg.RouteWorkers,
		})
	case droute.BackendLagrange:
		o.initRouteFailed = droute.RouteAllLagrange(o.F, o.Rts, cfg.DrouteCost, droute.LagrangeConfig{
			MaxIters: cfg.RouteIters,
			Seed:     cfg.Seed,
			Workers:  cfg.RouteWorkers,
		})
	default:
		// A single ordered pass consuming no RNG draws beyond placement's:
		// the annealer works off the remaining debt move by move, exactly as
		// in the pre-backend engine.
		o.initRouteFailed = droute.RouteAllDetailed(o.F, o.Rts, cfg.DrouteCost, 1, rng)
	}
	drouteDone()
	o.recountGD()
	if o.timingOn() {
		an.Begin()
		for id := range o.Rts {
			if len(nl.Nets[id].Sinks) == 0 {
				continue
			}
			d, err := o.netDelays(int32(id))
			if err != nil {
				return nil, err
			}
			an.SetNetDelays(int32(id), d)
		}
		an.Propagate()
		an.Commit()
	}
	if o.critOn() {
		o.crit = timing.NewCriticality(an, cfg.CritDamping)
		o.netMaxD = make([]float64, nl.NumNets())
		o.critCells = make([]int32, 0, nl.NumCells())
		o.critStamp = make([]uint32, nl.NumCells())
		o.crit.Update()
		o.rebuildCritState()
	}
	o.refreshWeights()
	o.lastRt, o.lastSTA = o.F.Stats, o.An.Stats()
	initDone()
	return o, nil
}

// critOn reports whether the criticality-weighted timing term participates in
// the optimization. It requires the base timing term: criticalities are
// slack-derived, and without a maintained timing view there are no slacks.
func (o *Optimizer) critOn() bool { return o.cfg.CritWeight > 0 && o.timingOn() }

// rebuildCritState refreshes the per-net max sink delays, the criticality-
// weighted delay sum, and the near-critical cell pool from the analyzer's
// committed state and the current damped criticalities. It runs at
// construction and at temperature boundaries, never on the per-move path.
func (o *Optimizer) rebuildCritState() {
	crit := o.crit.Values()
	o.critSum = 0
	o.critCells = o.critCells[:0]
	o.critEpoch++
	mark := func(cell int32) {
		if o.critStamp[cell] != o.critEpoch {
			o.critStamp[cell] = o.critEpoch
			o.critCells = append(o.critCells, cell)
		}
	}
	for id := range o.Rts {
		m := 0.0
		for _, v := range o.An.NetDelay(int32(id)) {
			if v > m {
				m = v
			}
		}
		o.netMaxD[id] = m
		o.critSum += crit[id] * m
		if crit[id] >= o.cfg.CritThreshold {
			net := &o.NL.Nets[id]
			mark(net.Driver.Cell)
			for _, s := range net.Sinks {
				mark(s.Cell)
			}
		}
	}
}

// timingOn reports whether the timing term participates in the optimization.
// When it does not (the pure-wirability mode of the Table-2 sweep), delay
// evaluation and propagation are skipped entirely.
func (o *Optimizer) timingOn() bool { return o.cfg.TimingGamma > 0 }

// RefreshTiming fills the timing view from the current routes regardless of
// mode; wirability-only callers use it to obtain a final WCD report.
func (o *Optimizer) RefreshTiming() error {
	o.An.Begin()
	for id := range o.Rts {
		if len(o.NL.Nets[id].Sinks) == 0 {
			continue
		}
		d, err := o.netDelays(int32(id))
		if err != nil {
			o.An.Revert()
			return err
		}
		o.An.SetNetDelays(int32(id), d)
	}
	o.An.Propagate()
	o.An.Commit()
	return nil
}

// netDelays returns the current best-known per-sink delays for a net:
// detailed Elmore when fully embedded, the spatial estimator otherwise. The
// returned slice is only valid until the next call (the analyzer copies it).
func (o *Optimizer) netDelays(id int32) ([]float64, error) {
	if o.Rts[id].DetailDone() {
		return o.dcalc.NetDelays(o.P, id, &o.Rts[id], 1.0)
	}
	o.estBuf = timing.AppendEstimateDelays(o.estBuf[:0], o.P, id)
	return o.estBuf, nil
}

// recountGD recomputes G, D and the missing-channel count from scratch.
func (o *Optimizer) recountGD() {
	o.g, o.d, o.dc = 0, 0, 0
	for id := range o.Rts {
		if !o.Rts[id].Global {
			o.g++
		}
		if !o.Rts[id].DetailDone() {
			o.d++
		}
		if o.Rts[id].Global {
			o.dc += o.Rts[id].UnroutedChans()
		}
	}
}

// refreshWeights renormalizes the cost weights against the current component
// magnitudes (paper §3.2: "determined adaptively at runtime so as to
// normalize the components"). Floors keep the pressure per unrouted net
// growing as the counts shrink, which is what drives the layout to 100%
// routing.
func (o *Optimizer) refreshWeights() {
	n := float64(o.NL.NumNets())
	gRef := float64(o.g)
	if gRef < 0.02*n {
		gRef = 0.02 * n
	}
	dRef := float64(o.d)
	if dRef < 0.04*n {
		dRef = 0.04 * n
	}
	o.wg = o.cfg.RouteGamma / gRef
	o.wd = o.cfg.RouteGamma / dRef
	if !o.timingOn() {
		o.wt = 0
		return
	}
	t := o.An.WCD()
	if t <= 0 {
		t = 1
	}
	o.wt = o.cfg.TimingGamma / t
	if !o.critOn() {
		o.wcr = 0
		return
	}
	cs := o.critSum
	if cs <= 0 {
		cs = 1
	}
	o.wcr = o.cfg.CritWeight * o.cfg.TimingGamma / cs
}

// Cost implements anneal.Problem. The D term carries a fractional
// missing-channel component: a net stuck in three channels costs more than
// one stuck in a single channel, which gives the annealer a gradient toward
// full detailed routing that a bare net count lacks.
func (o *Optimizer) Cost() float64 {
	d := float64(o.d) + o.cfg.DCFraction*float64(o.dc)
	// The criticality term contributes exactly +0.0 when the extension is
	// off (wcr and critSum are both zero), leaving the float result
	// bit-identical to the three-term cost.
	return o.wg*float64(o.g) + o.wd*d + o.wt*o.An.WCD() + o.wcr*o.critSum
}

// G returns the current number of globally unroutable nets.
func (o *Optimizer) G() int { return o.g }

// D returns the current number of nets lacking a complete detailed route.
func (o *Optimizer) D() int { return o.d }

// WCD returns the current worst-case delay in picoseconds.
func (o *Optimizer) WCD() float64 { return o.An.WCD() }

// annealConfig is the engine configuration shared by the serial and parallel
// paths.
func (o *Optimizer) annealConfig() anneal.Config {
	return anneal.Config{
		Seed:         o.cfg.Seed + 1,
		MovesPerTemp: o.cfg.MovesPerCell * o.NL.NumCells(),
		MaxTemps:     o.cfg.MaxTemps,
		Cancel:       o.cfg.Cancel,
	}
}

// Run anneals to completion, applies the zero-temperature routability repair,
// and reports the result.
func (o *Optimizer) Run() Result {
	o.dynamics = o.dynamics[:0]
	o.cellEpochBase = o.epoch
	annealDone := metrics.StartPhase(o.cfg.Metrics, metrics.PhaseAnneal)
	ares := anneal.Run(o, o.annealConfig(), o.onTemp)
	annealDone()
	return o.finish(ares)
}

// finish is the shared post-annealing tail: zero-temperature routability
// repair, the wirability-only timing refresh, and result assembly. A
// cancelled anneal skips the repair phase entirely so termination stays
// prompt; the rest of the report is still assembled from the consistent
// last-temperature state.
func (o *Optimizer) finish(ares anneal.Result) Result {
	var repairMoves, repairFixed int
	if !ares.Cancelled {
		rng := rand.New(rand.NewSource(o.cfg.Seed + 2))
		repairDone := metrics.StartPhase(o.cfg.Metrics, metrics.PhaseRepair)
		repairMoves, repairFixed = o.repair(rng)
		repairDone()
	}

	if !o.timingOn() {
		// Wirability-only runs still report a real final delay.
		timingDone := metrics.StartPhase(o.cfg.Metrics, metrics.PhaseTiming)
		if err := o.RefreshTiming(); err != nil {
			panic("core: " + err.Error())
		}
		timingDone()
	}
	res := Result{
		G:            o.g,
		D:            o.d,
		WCD:          o.An.WCD(),
		FullyRouted:  o.g == 0 && o.d == 0,
		Anneal:       ares,
		Dynamics:     append([]DynamicsSample(nil), o.dynamics...),
		RepairMoves:  repairMoves,
		RepairFixed:  repairFixed,
		FinalCost:    o.Cost(),
		CriticalPath: o.An.CriticalPath(),
		Cancelled:    ares.Cancelled,
		RouteFailed:  o.initRouteFailed,
	}
	return res
}

// RunParallel anneals with cfg.Chains parallel portfolio chains and returns
// the optimizer holding the winning state along with its result. With
// Chains <= 1 it is exactly Run on the receiver (same moves, same rng
// stream, bit-identical result); with K > 1 the returned optimizer is the
// champion chain's state, which may be a clone of the receiver.
func (o *Optimizer) RunParallel() (*Optimizer, Result) {
	if o.cfg.Chains <= 1 {
		return o, o.Run()
	}
	o.dynamics = o.dynamics[:0]
	o.cellEpochBase = o.epoch
	annealDone := metrics.StartPhase(o.cfg.Metrics, metrics.PhaseAnneal)
	pres := anneal.RunParallel(o, anneal.ParallelConfig{
		Config:    o.annealConfig(),
		Chains:    o.cfg.Chains,
		Workers:   o.cfg.Workers,
		SyncTemps: o.cfg.SyncTemps,
	}, func(ci int, p anneal.Problem, s anneal.TempStats) {
		// Each chain maintains its own weights, window and dynamics trace;
		// the callback only ever touches that chain's optimizer.
		opt := p.(*Optimizer)
		opt.chain = ci
		opt.onTemp(s)
	})
	annealDone()
	if mc := o.cfg.Metrics; mc != nil {
		for i := range pres.PerChain {
			mc.RecordChain(metrics.ChainRecord{
				Chain:     i,
				Temps:     pres.PerChain[i].Temps,
				Moves:     pres.PerChain[i].TotalMoves,
				Accepted:  pres.PerChain[i].Accepted,
				FinalCost: pres.PerChain[i].FinalCost,
				Wall:      pres.Wall[i],
				Adoptions: pres.Adoptions[i],
				Champion:  i == pres.Champion,
			})
		}
	}
	champ := pres.Best.(*Optimizer)
	res := champ.finish(pres.Result)
	res.Chains = o.cfg.Chains
	res.Champion = pres.Champion
	res.Restarts = pres.Restarts
	res.ChampionSwitches = pres.ChampionSwitches
	res.ChainWall = append([]time.Duration(nil), pres.Wall...)
	res.ChainCosts = make([]float64, len(pres.PerChain))
	for i := range pres.PerChain {
		res.ChainCosts[i] = pres.PerChain[i].FinalCost
	}
	return champ, res
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// onTemp records Figure-6 dynamics, emits the observability record,
// renormalizes weights, and adapts the move-range window toward the classic
// 0.44 acceptance target.
func (o *Optimizer) onTemp(s anneal.TempStats) {
	if mc := o.cfg.Metrics; mc != nil {
		rt, st := o.F.Stats.Sub(o.lastRt), o.An.Stats().Sub(o.lastSTA)
		mc.RecordTemp(metrics.TempRecord{
			Chain:    o.chain,
			Step:     s.Step,
			Temp:     s.Temp,
			Moves:    s.Moves,
			Accepted: s.Accepted,
			Cost:     s.Cost,
			BestCost: s.BestCost,
			G:        o.g,
			D:        o.d,
			GCost:    o.wg * float64(o.g),
			DCost:    o.wd * (float64(o.d) + o.cfg.DCFraction*float64(o.dc)),
			TCost:    o.wt * o.An.WCD(),
			CCost:    o.wcr * o.critSum,
			WCD:      o.An.WCD(),

			RipUps:          rt.RipUps,
			GRouteAttempts:  rt.GRouteAttempts,
			GRouteFails:     rt.GRouteFails,
			DRouteAttempts:  rt.DRouteAttempts,
			DRouteFails:     rt.DRouteFails,
			STAUpdates:      st.NetUpdates,
			STACellsRelaxed: st.CellsRelaxed,

			Elapsed: s.Elapsed,
		})
		o.lastRt, o.lastSTA = o.F.Stats, o.An.Stats()
	}
	n := float64(o.NL.NumNets())
	o.dynamics = append(o.dynamics, DynamicsSample{
		Step:             s.Step,
		Temp:             s.Temp,
		CellsPerturbed:   float64(o.perturbed) / float64(o.NL.NumCells()),
		GlobalUnrouted:   float64(o.g) / n,
		Unrouted:         float64(o.d) / n,
		WCD:              o.An.WCD(),
		Cost:             s.Cost,
		AcceptRatio:      s.AcceptRatio(),
		MovesAtTemp:      s.Moves,
		AcceptedMovesSum: s.Accepted,
	})
	o.perturbed = 0
	o.cellEpochBase = o.epoch // invalidate per-temperature cell stamps
	if o.critOn() {
		// Fold a fresh slack extraction into the damped criticalities, then
		// re-anchor the weighted-delay sum and the near-critical cell pool
		// on the new values. One O(cells + pins) pass per temperature.
		o.crit.Update()
		o.rebuildCritState()
	}
	o.refreshWeights()
	if o.cfg.RangeLimit {
		// Lam-style control: low acceptance means the moves are too
		// disruptive, so shrink the window; high acceptance means they are
		// too timid, so widen it.
		switch r := s.AcceptRatio(); {
		case r < 0.38:
			o.window = maxInt(1, o.window*8/10)
		case r > 0.55:
			o.window = minIntc(o.window*12/10+1, maxInt(o.A.Rows, o.A.Cols))
		}
	}
}

func minIntc(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// cancelPending reports whether cfg.Cancel has fired (nil = never). It is
// polled only at phase/pass boundaries, never on the per-move path.
func (o *Optimizer) cancelPending() bool {
	if o.cfg.Cancel == nil {
		return false
	}
	select {
	case <-o.cfg.Cancel:
		return true
	default:
		return false
	}
}

// repair runs greedy zero-temperature passes that target the cells of
// still-unrouted nets, accepting only non-worsening moves, until the layout
// is fully routed, the pass budget is exhausted, or cancellation fires (a
// cancel arriving mid-repair stops at the next pass boundary). Returns moves
// tried and nets fixed.
func (o *Optimizer) repair(rng *rand.Rand) (moves, fixed int) {
	if o.d == 0 {
		return 0, 0
	}
	startD := o.d
	for pass := 0; pass < o.cfg.RepairPasses && o.d > 0 && !o.cancelPending(); pass++ {
		budget := 4 * o.NL.NumCells()
		for i := 0; i < budget && o.d > 0; i++ {
			dC := o.proposeBiased(rng)
			moves++
			dGD := (o.g + o.d) - (o.jOldG + o.jOldD)
			if dGD < 0 || (dGD == 0 && dC <= 0) {
				o.Accept()
			} else {
				o.Reject()
			}
		}
	}
	return moves, startD - o.d
}

// proposeBiased is Propose, but the moved cell is drawn from an unrouted
// net's pins half of the time — used only by the repair phase.
func (o *Optimizer) proposeBiased(rng *rand.Rand) float64 {
	if o.d > 0 && rng.Intn(2) == 0 {
		if cell, ok := o.cellOnUnroutedNet(rng); ok {
			lb := layout.Loc{Row: rng.Intn(o.A.Rows), Col: rng.Intn(o.A.Cols)}
			return o.proposeSwap(o.P.Loc[cell], lb)
		}
	}
	return o.Propose(rng)
}

func (o *Optimizer) cellOnUnroutedNet(rng *rand.Rand) (int32, bool) {
	// Reservoir-sample an unrouted net.
	seen := 0
	pick := int32(-1)
	for id := range o.Rts {
		if o.Rts[id].DetailDone() {
			continue
		}
		seen++
		if rng.Intn(seen) == 0 {
			pick = int32(id)
		}
	}
	if pick < 0 {
		return 0, false
	}
	net := &o.NL.Nets[pick]
	k := rng.Intn(len(net.Sinks) + 1)
	if k == 0 {
		return net.Driver.Cell, true
	}
	return net.Sinks[k-1].Cell, true
}

// Dynamics returns the per-temperature activity trace of the last Run.
func (o *Optimizer) Dynamics() []DynamicsSample { return o.dynamics }

// sortWorklist orders net ids by decreasing estimated length (the paper's
// U_G/U_D priority). The comparator is a strict total order (length, then
// id), so any correct sort yields the same sequence; slices.SortFunc is used
// because, unlike sort.Slice, it does not allocate — this runs on every move.
func (o *Optimizer) sortWorklist() {
	if cap(o.estLen) < o.NL.NumNets() {
		o.estLen = make([]float64, o.NL.NumNets())
	}
	for _, id := range o.worklist {
		o.estLen[id] = o.P.EstLength(id)
	}
	slices.SortFunc(o.worklist, func(a, b int32) int {
		if o.estLen[a] != o.estLen[b] {
			if o.estLen[a] > o.estLen[b] {
				return -1
			}
			return 1
		}
		if a < b {
			return -1
		}
		if a > b {
			return 1
		}
		return 0
	})
}

var _ anneal.Problem = (*Optimizer)(nil)

// String summarizes the current state (for logs and debugging).
func (o *Optimizer) String() string {
	return fmt.Sprintf("core{G=%d D=%d T=%.0fps cost=%.4f}", o.g, o.d, o.An.WCD(), o.Cost())
}
