package groute

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/arch"
	"repro/internal/fabric"
	"repro/internal/layout"
)

// RouteAll's net ordering sorts on estimated length with no explicit tiebreak
// among equal lengths — deliberately, because the historical order is pinned
// by downstream fixed-seed golden results (see the audit note in RouteAll).
// This test asserts the property that makes that acceptable: for a fixed
// placement the full global route is identical run to run, ties included.
func TestRouteAllDeterministicOrder(t *testing.T) {
	nl := chainNetlist(25)
	a := arch.MustNew(arch.Default(6, 12, 8))
	p, err := layout.NewRandom(a, nl, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	run := func() ([]fabric.NetRoute, []int32) {
		f := fabric.New(a)
		routes := make([]fabric.NetRoute, nl.NumNets())
		failed := RouteAll(f, p, routes)
		if err := f.CheckConsistent(routes); err != nil {
			t.Fatal(err)
		}
		return routes, failed
	}
	r1, f1 := run()
	r2, f2 := run()
	if !reflect.DeepEqual(f1, f2) {
		t.Fatalf("failed sets diverged: %v vs %v", f1, f2)
	}
	if !reflect.DeepEqual(r1, r2) {
		for id := range r1 {
			if !reflect.DeepEqual(r1[id], r2[id]) {
				t.Errorf("net %d routed differently across identical runs: %+v vs %+v", id, r1[id], r2[id])
			}
		}
	}
	// The scenario must actually contain estimated-length ties, or the
	// assertion is vacuous.
	seen := map[float64]bool{}
	ties := false
	for id := 0; id < nl.NumNets(); id++ {
		l := p.EstLength(int32(id))
		if seen[l] {
			ties = true
			break
		}
		seen[l] = true
	}
	if !ties {
		t.Fatal("no equal-length nets in the scenario; pick a design that produces ties")
	}
}
