package groute

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/arch"
	"repro/internal/fabric"
	"repro/internal/layout"
	"repro/internal/netlist"
)

// chainNetlist builds pi -> g0 -> g1 -> ... -> g{n-1} -> po.
func chainNetlist(n int) *netlist.Netlist {
	b := netlist.NewBuilder("chain")
	b.Input("pi", "n0")
	for i := 0; i < n; i++ {
		in := "n" + itoa(i)
		b.Comb("g"+itoa(i), 3000, "n"+itoa(i+1), in)
	}
	b.Output("po", "n"+itoa(n))
	return b.MustBuild()
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [8]byte
	p := len(buf)
	for i > 0 {
		p--
		buf[p] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[p:])
}

func place(t *testing.T, p *layout.Placement, cell string, row, col int) {
	t.Helper()
	id := p.NL.CellID(cell)
	if id < 0 {
		t.Fatalf("no cell %q", cell)
	}
	p.Swap(p.Loc[id], layout.Loc{Row: row, Col: col})
}

func setup(t *testing.T, rows, cols int, nl *netlist.Netlist, seed int64) (*arch.Arch, *fabric.Fabric, *layout.Placement) {
	t.Helper()
	a := arch.MustNew(arch.Default(rows, cols, 8))
	p, err := layout.NewRandom(a, nl, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return a, fabric.New(a), p
}

func TestSingleChannelNet(t *testing.T) {
	nl := chainNetlist(2)
	_, f, p := setup(t, 4, 10, nl, 1)
	// Put g0 and g1 in the same row with pinmaps that place the connecting
	// net's pins on the same channel.
	place(t, p, "g0", 1, 2)
	place(t, p, "g1", 1, 7)
	g0 := nl.CellID("g0")
	g1 := nl.CellID("g1")
	p.SetPinmap(g0, 2) // output top -> channel 2
	p.SetPinmap(g1, 3) // inputs top -> channel 2
	n1 := nl.NetID("n1")
	var r fabric.NetRoute
	if !Route(f, p, n1, &r) {
		t.Fatal("single-channel net failed to route globally")
	}
	if r.HasTrunk {
		t.Error("single-channel net should not hold vertical resources")
	}
	if len(r.Chans) != 1 || r.Chans[0].Ch != 2 || r.Chans[0].Lo != 2 || r.Chans[0].Hi != 7 {
		t.Errorf("bad channel need: %+v", r.Chans)
	}
	if f.UsedV() != 0 {
		t.Error("vertical resources leaked")
	}
}

func TestMultiChannelTrunkNearCenter(t *testing.T) {
	nl := chainNetlist(2)
	_, f, p := setup(t, 4, 10, nl, 2)
	place(t, p, "g0", 0, 2)
	place(t, p, "g1", 3, 8)
	g0 := nl.CellID("g0")
	g1 := nl.CellID("g1")
	p.SetPinmap(g0, 3) // output bottom -> channel 0
	p.SetPinmap(g1, 3) // inputs top -> channel 4
	n1 := nl.NetID("n1")
	var r fabric.NetRoute
	if !Route(f, p, n1, &r) {
		t.Fatal("route failed")
	}
	if !r.HasTrunk {
		t.Fatal("expected trunk")
	}
	if r.TrunkCol != (2+8)/2 {
		t.Errorf("trunk at column %d, want bbox center 5", r.TrunkCol)
	}
	if got := len(r.Chans); got != 2 {
		t.Fatalf("channel needs = %d, want 2", got)
	}
	// Channel intervals extend to include the trunk column.
	if r.Chans[0].Ch != 0 || r.Chans[0].Lo != 2 || r.Chans[0].Hi != 5 {
		t.Errorf("channel 0 need %+v", r.Chans[0])
	}
	if r.Chans[1].Ch != 4 || r.Chans[1].Lo != 5 || r.Chans[1].Hi != 8 {
		t.Errorf("channel 4 need %+v", r.Chans[1])
	}
	// Vertical run must cover channels 0..4.
	vl, vh := f.A.VSegRange(0, 4)
	if r.VLo != vl || r.VHi != vh {
		t.Errorf("vertical run [%d,%d], want [%d,%d]", r.VLo, r.VHi, vl, vh)
	}
	routes := make([]fabric.NetRoute, nl.NumNets())
	routes[n1] = r
	if err := f.CheckConsistent(routes); err != nil {
		t.Error(err)
	}
}

func TestNoSinkNetTrivial(t *testing.T) {
	b := netlist.NewBuilder("dangling")
	b.Input("pi", "a")
	b.Comb("g", 1000, "unused", "a")
	b.Output("po", "a")
	nl := b.MustBuild()
	_, f, p := setup(t, 2, 6, nl, 3)
	var r fabric.NetRoute
	if !Route(f, p, nl.NetID("unused"), &r) {
		t.Fatal("sink-less net should route trivially")
	}
	if len(r.Chans) != 0 || r.HasTrunk {
		t.Error("sink-less net should hold no resources")
	}
}

func TestVerticalExhaustion(t *testing.T) {
	nl := chainNetlist(2)
	a, f, p := setup(t, 4, 10, nl, 4)
	// Fill every vertical segment.
	for c := 0; c < a.Cols; c++ {
		for vt := 0; vt < a.VTracks; vt++ {
			f.AllocV(c, vt, 0, a.NVSegs-1, 999)
		}
	}
	place(t, p, "g0", 0, 2)
	place(t, p, "g1", 3, 8)
	p.SetPinmap(nl.CellID("g0"), 3)
	p.SetPinmap(nl.CellID("g1"), 3)
	var r fabric.NetRoute
	if Route(f, p, nl.NetID("n1"), &r) {
		t.Fatal("route should fail with no vertical resources")
	}
	if r.Global || r.HasTrunk || len(r.Chans) != 0 {
		t.Error("failed route must leave descriptor reset")
	}
}

func TestRipUpRestores(t *testing.T) {
	nl := chainNetlist(2)
	_, f, p := setup(t, 4, 10, nl, 5)
	place(t, p, "g0", 0, 2)
	place(t, p, "g1", 3, 8)
	p.SetPinmap(nl.CellID("g0"), 3)
	p.SetPinmap(nl.CellID("g1"), 3)
	var r fabric.NetRoute
	id := nl.NetID("n1")
	if !Route(f, p, id, &r) {
		t.Fatal("route failed")
	}
	RipUp(f, id, &r)
	if f.UsedV() != 0 || f.UsedH() != 0 {
		t.Error("RipUp leaked resources")
	}
	if r.Global {
		t.Error("RipUp did not reset descriptor")
	}
}

func TestRouteAllChain(t *testing.T) {
	nl := chainNetlist(20)
	_, f, p := setup(t, 6, 12, nl, 6)
	routes := make([]fabric.NetRoute, nl.NumNets())
	failed := RouteAll(f, p, routes)
	if len(failed) != 0 {
		t.Fatalf("%d nets failed global routing on an empty fabric", len(failed))
	}
	if err := f.CheckConsistent(routes); err != nil {
		t.Error(err)
	}
}

// Property: on random placements, Route/RipUp cycles keep the fabric exactly
// consistent and leak-free.
func TestRouteRipupProperty(t *testing.T) {
	nl := chainNetlist(15)
	check := func(seed int64) bool {
		a := arch.MustNew(arch.Default(5, 14, 6))
		rng := rand.New(rand.NewSource(seed))
		p, err := layout.NewRandom(a, nl, rng)
		if err != nil {
			return false
		}
		f := fabric.New(a)
		routes := make([]fabric.NetRoute, nl.NumNets())
		routed := map[int32]bool{}
		for step := 0; step < 120; step++ {
			id := int32(rng.Intn(nl.NumNets()))
			if routed[id] {
				RipUp(f, id, &routes[id])
				delete(routed, id)
			} else {
				if Route(f, p, id, &routes[id]) {
					routed[id] = true
				}
			}
		}
		if err := f.CheckConsistent(routes); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		for id := range routed {
			RipUp(f, id, &routes[id])
		}
		return f.UsedH() == 0 && f.UsedV() == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
