// Package groute implements global routing for row-based FPGAs: assigning
// vertical segments ("feedthroughs") to nets that span multiple channels and
// deriving the per-channel column intervals that define each channel's
// detailed-routing problem. The heuristic follows the paper (§3.3): take the
// free vertical segment run closest to the center of the net's bounding box.
// The same primitive serves both the incremental in-the-loop router and the
// sequential baseline's one-shot full global route.
package groute

import (
	"sort"

	"repro/internal/fabric"
	"repro/internal/layout"
)

// Needs derives the channel intervals a net requires given the current
// placement and pinmaps, before any trunk extension: one ChanAssign (with
// Track == -1) per channel containing at least one of the net's pins, in
// ascending channel order.
func Needs(p *layout.Placement, id int32) []fabric.ChanAssign {
	return appendNeeds(nil, p, id)
}

// appendNeeds appends the channel needs to dst (reusing its storage) and
// returns it sorted by channel. Nets touch at most a handful of channels, so
// linear insertion into channel order beats any map or sort — and, unlike
// sort.Slice, allocates nothing, which matters because this runs on every
// rip-up/re-route of the annealer's inner loop. Channels are unique keys, so
// the result is identical to the historical append-then-sort.
func appendNeeds(dst []fabric.ChanAssign, p *layout.Placement, id int32) []fabric.ChanAssign {
	n := &p.NL.Nets[id]
	ch, col := p.PinPos(n.Driver)
	dst = insertNeed(dst, ch, col)
	for _, s := range n.Sinks {
		ch, col = p.PinPos(s)
		dst = insertNeed(dst, ch, col)
	}
	return dst
}

// insertNeed merges pin position (ch, col) into the channel-sorted needs list.
func insertNeed(dst []fabric.ChanAssign, ch, col int) []fabric.ChanAssign {
	i := 0
	for i < len(dst) && dst[i].Ch < ch {
		i++
	}
	if i < len(dst) && dst[i].Ch == ch {
		if col < dst[i].Lo {
			dst[i].Lo = col
		}
		if col > dst[i].Hi {
			dst[i].Hi = col
		}
		return dst
	}
	dst = append(dst, fabric.ChanAssign{})
	copy(dst[i+1:], dst[i:])
	dst[i] = fabric.ChanAssign{Ch: ch, Lo: col, Hi: col, Track: -1}
	return dst
}

// Route attempts to globally route net id into r, which must be in the reset
// (unrouted) state. On success it allocates any vertical resources in f,
// fills r.Chans with the channel intervals (all detail-unrouted), and returns
// true. On failure r is left reset and false is returned.
//
// Single-channel nets need no vertical resources and always succeed. Nets
// with no sinks are trivially globally routed with no resources at all.
func Route(f *fabric.Fabric, p *layout.Placement, id int32, r *fabric.NetRoute) bool {
	f.Stats.GRouteAttempts++
	if len(p.NL.Nets[id].Sinks) == 0 {
		r.Global = true
		return true
	}
	chans := appendNeeds(r.Chans[:0], p, id)
	r.Chans = chans[:0] // reclaim storage; refilled below on success
	// The cached bounding box covers the same pins appendNeeds just visited:
	// its channel span matches chans' first/last entries and its column span is
	// the union of their intervals, so it substitutes exactly for a rescan.
	box := p.NetBox(id)
	chLo, chHi := box.ChLo, box.ChHi
	if chLo == chHi {
		r.Global = true
		r.Chans = append(r.Chans[:0], chans...)
		return true
	}

	// Multi-channel: find a free vertical run covering [chLo, chHi], trying
	// columns by increasing distance from the bounding-box center.
	a := f.A
	vLo, vHi := a.VSegRange(chLo, chHi)
	center := (box.ColLo + box.ColHi) / 2
	for d := 0; d < a.Cols; d++ {
		cand := [2]int{center - d, center + d}
		ncand := 2
		if d == 0 {
			ncand = 1
		}
		for _, col := range cand[:ncand] {
			if col < 0 || col >= a.Cols {
				continue
			}
			for vt := 0; vt < a.VTracks; vt++ {
				if !f.VRangeFree(col, vt, vLo, vHi) {
					continue
				}
				f.AllocV(col, vt, vLo, vHi, id)
				r.Global = true
				r.HasTrunk = true
				r.TrunkCol, r.TrunkTrack = col, vt
				r.VLo, r.VHi = vLo, vHi
				r.Chans = r.Chans[:0]
				for _, c := range chans {
					if col < c.Lo {
						c.Lo = col
					}
					if col > c.Hi {
						c.Hi = col
					}
					r.Chans = append(r.Chans, c)
				}
				return true
			}
		}
	}
	f.Stats.GRouteFails++
	return false
}

// RipUp releases everything net id holds and resets its route descriptor.
func RipUp(f *fabric.Fabric, id int32, r *fabric.NetRoute) {
	f.Stats.RipUps++
	f.RemoveRoute(id, r)
	r.Reset()
}

// RouteAll globally routes every net from scratch in decreasing
// estimated-length order (the sequential flow's one-shot global route, after
// [7]). It returns the ids of nets that could not be globally routed.
func RouteAll(f *fabric.Fabric, p *layout.Placement, routes []fabric.NetRoute) []int32 {
	order := make([]int32, len(routes))
	length := make([]float64, len(routes))
	for i := range routes {
		order[i] = int32(i)
		length[i] = p.EstLength(int32(i))
	}
	// Determinism audit note: the relative order of equal-length nets is
	// whatever sort.Slice yields, which is deterministic for a fixed input
	// (pdqsort is not randomized) but unspecified. An explicit id tiebreak
	// here would reorder equal-length nets and change every downstream
	// fixed-seed result, so the historical order is kept deliberately; the
	// fixed-seed golden test in internal/core pins it.
	sort.Slice(order, func(i, j int) bool { return length[order[i]] > length[order[j]] })
	var failed []int32
	for _, id := range order {
		if !Route(f, p, id, &routes[id]) {
			failed = append(failed, id)
		}
	}
	return failed
}
