package metrics

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// handStepped is a hand-written two-temperature anneal (warmup step 0 plus
// temperatures 1 and 2) with every field chosen so aggregate arithmetic can be
// checked exactly.
func handStepped() []TempRecord {
	return []TempRecord{
		{Chain: 0, Step: 0, Temp: 10, Moves: 100, Accepted: 90, Cost: 50,
			RipUps: 40, GRouteAttempts: 45, GRouteFails: 5, DRouteAttempts: 80, DRouteFails: 8,
			STAUpdates: 30, STACellsRelaxed: 120, Elapsed: 10 * time.Millisecond},
		{Chain: 0, Step: 1, Temp: 8, Moves: 200, Accepted: 100, Cost: 40,
			RipUps: 70, GRouteAttempts: 72, GRouteFails: 2, DRouteAttempts: 140, DRouteFails: 4,
			STAUpdates: 50, STACellsRelaxed: 200, Elapsed: 20 * time.Millisecond},
		{Chain: 0, Step: 2, Temp: 6, Moves: 200, Accepted: 60, Cost: 35,
			RipUps: 55, GRouteAttempts: 55, GRouteFails: 0, DRouteAttempts: 110, DRouteFails: 1,
			STAUpdates: 45, STACellsRelaxed: 180, Elapsed: 10 * time.Millisecond},
	}
}

func TestSummaryAggregatesHandSteppedAnneal(t *testing.T) {
	s := NewSummary()
	for _, r := range handStepped() {
		s.RecordTemp(r)
	}
	s.RecordPhase(PhaseRecord{Phase: PhaseAnneal, Elapsed: 40 * time.Millisecond})
	s.RecordPhase(PhaseRecord{Phase: PhaseAnneal, Elapsed: 10 * time.Millisecond})
	s.RecordPhase(PhaseRecord{Phase: PhaseRepair, Elapsed: 5 * time.Millisecond})
	s.RecordChain(ChainRecord{Chain: 1, Temps: 3, Moves: 500})
	s.RecordChain(ChainRecord{Chain: 0, Temps: 3, Moves: 500, Champion: true})

	tot := s.Totals()
	if tot.Temps != 3 {
		t.Errorf("Temps = %d, want 3", tot.Temps)
	}
	if tot.Moves != 500 || tot.Accepted != 250 {
		t.Errorf("Moves/Accepted = %d/%d, want 500/250", tot.Moves, tot.Accepted)
	}
	if tot.RipUps != 165 {
		t.Errorf("RipUps = %d, want 165", tot.RipUps)
	}
	if tot.GRouteAttempts != 172 || tot.GRouteFails != 7 {
		t.Errorf("GRoute = %d/%d, want 172/7", tot.GRouteAttempts, tot.GRouteFails)
	}
	if tot.DRouteAttempts != 330 || tot.DRouteFails != 13 {
		t.Errorf("DRoute = %d/%d, want 330/13", tot.DRouteAttempts, tot.DRouteFails)
	}
	if tot.STAUpdates != 125 || tot.STACellsRelaxed != 500 {
		t.Errorf("STA = %d/%d, want 125/500", tot.STAUpdates, tot.STACellsRelaxed)
	}
	// Peak throughput is step 2's: 200 moves / 10 ms = 20000 moves/s (step 1
	// runs at 10000, the warmup at 10000).
	if tot.PeakMovesPerSec != 20000 {
		t.Errorf("PeakMovesPerSec = %v, want 20000", tot.PeakMovesPerSec)
	}
	if tot.LastTemp.Step != 2 || tot.LastTemp.Cost != 35 {
		t.Errorf("LastTemp = step %d cost %v, want step 2 cost 35", tot.LastTemp.Step, tot.LastTemp.Cost)
	}
	if tot.PhaseDur[PhaseAnneal] != 50*time.Millisecond {
		t.Errorf("PhaseDur[anneal] = %v, want 50ms", tot.PhaseDur[PhaseAnneal])
	}
	if tot.PhaseDur[PhaseRepair] != 5*time.Millisecond {
		t.Errorf("PhaseDur[repair] = %v, want 5ms", tot.PhaseDur[PhaseRepair])
	}
	// Chains are reported sorted by index regardless of arrival order.
	if len(tot.Chains) != 2 || tot.Chains[0].Chain != 0 || !tot.Chains[0].Champion {
		t.Errorf("Chains = %+v, want chain 0 (champion) first", tot.Chains)
	}

	var buf bytes.Buffer
	if err := s.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"3 temps, 500 moves, 250 accepted (50.0%)",
		"165 rip-ups",
		"125 incremental net updates",
		"anneal", "repair", "chain *0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteText output missing %q:\n%s", want, out)
		}
	}
}

func TestTempRecordRatios(t *testing.T) {
	var zero TempRecord
	if zero.AcceptRatio() != 0 || zero.MovesPerSec() != 0 {
		t.Errorf("zero record: AcceptRatio=%v MovesPerSec=%v, want 0/0",
			zero.AcceptRatio(), zero.MovesPerSec())
	}
	r := TempRecord{Moves: 80, Accepted: 20, Elapsed: 2 * time.Second}
	if r.AcceptRatio() != 0.25 {
		t.Errorf("AcceptRatio = %v, want 0.25", r.AcceptRatio())
	}
	if r.MovesPerSec() != 40 {
		t.Errorf("MovesPerSec = %v, want 40", r.MovesPerSec())
	}
}

func TestPhaseString(t *testing.T) {
	cases := map[Phase]string{
		PhaseInit: "init", PhasePlace: "place", PhaseGlobalRoute: "global-route",
		PhaseDetailRoute: "detail-route", PhaseTiming: "timing",
		PhaseAnneal: "anneal", PhaseRepair: "repair", NumPhases: "unknown",
	}
	for p, want := range cases {
		if got := p.String(); got != want {
			t.Errorf("Phase(%d).String() = %q, want %q", p, got, want)
		}
	}
}

func TestTraceEmitsParseableJSONL(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTrace(&buf)
	for _, r := range handStepped() {
		tr.RecordTemp(r)
	}
	tr.RecordPhase(PhaseRecord{Phase: PhaseAnneal, Elapsed: 40 * time.Millisecond})
	tr.RecordChain(ChainRecord{Chain: 0, Temps: 3, Champion: true})
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}

	type phasePayload struct {
		Name      string `json:"name"`
		ElapsedNS int64  `json:"elapsed_ns"`
	}
	type event struct {
		Event  string        `json:"event"`
		Schema string        `json:"schema"`
		Temp   *TempRecord   `json:"temp"`
		Phase  *phasePayload `json:"phase"`
		Chain  *ChainRecord  `json:"chain"`
	}
	var events []event
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var ev event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %d: %v", len(events)+1, err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(events) != 6 {
		t.Fatalf("got %d events, want 6 (header + 3 temps + phase + chain)", len(events))
	}
	if events[0].Event != "header" || events[0].Schema != TraceSchema {
		t.Errorf("header = %+v, want event=header schema=%s", events[0], TraceSchema)
	}
	if events[1].Temp == nil || events[1].Temp.Step != 0 || events[1].Temp.Moves != 100 {
		t.Errorf("first temp event = %+v, want step 0 moves 100", events[1].Temp)
	}
	if events[4].Phase == nil || events[4].Phase.Name != "anneal" || events[4].Phase.ElapsedNS != int64(40*time.Millisecond) {
		t.Errorf("phase event = %+v, want anneal/40ms", events[4].Phase)
	}
	if events[5].Chain == nil || !events[5].Chain.Champion {
		t.Errorf("chain event = %+v, want champion chain 0", events[5].Chain)
	}
}

func TestMultiFansOutAndFiltersNil(t *testing.T) {
	if Multi() != nil || Multi(nil, nil) != nil {
		t.Error("Multi with no live collectors must return nil (disabled)")
	}
	a := NewSummary()
	if got := Multi(nil, a); got != Collector(a) {
		t.Error("Multi with one live collector must return it directly")
	}
	b := NewSummary()
	m := Multi(a, nil, b)
	m.RecordTemp(TempRecord{Moves: 10, Accepted: 5})
	m.RecordPhase(PhaseRecord{Phase: PhaseInit, Elapsed: time.Millisecond})
	m.RecordChain(ChainRecord{Chain: 0})
	for i, s := range []*Summary{a, b} {
		tot := s.Totals()
		if tot.Moves != 10 || tot.PhaseDur[PhaseInit] != time.Millisecond || len(tot.Chains) != 1 {
			t.Errorf("collector %d missed fan-out: %+v", i, tot)
		}
	}
}

func TestStartPhase(t *testing.T) {
	StartPhase(nil, PhaseAnneal)() // must be a safe no-op

	s := NewSummary()
	done := StartPhase(s, PhaseTiming)
	time.Sleep(time.Millisecond)
	done()
	tot := s.Totals()
	if tot.PhaseDur[PhaseTiming] <= 0 {
		t.Errorf("PhaseDur[timing] = %v, want > 0", tot.PhaseDur[PhaseTiming])
	}
}
