package metrics

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Summary aggregates every record into run totals: move/acceptance counts,
// router and STA activity, per-phase wall clock, peak throughput, and the
// final per-chain table. It is safe for concurrent use.
type Summary struct {
	mu sync.Mutex

	temps    int // temperature records seen (warmup included)
	moves    int
	accepted int

	ripUps          int64
	gRouteAttempts  int64
	gRouteFails     int64
	dRouteAttempts  int64
	dRouteFails     int64
	staUpdates      int64
	staCellsRelaxed int64

	peakMovesPerSec float64
	lastTemp        TempRecord

	phaseDur   [NumPhases]time.Duration
	phaseCount [NumPhases]int

	chains []ChainRecord
}

// NewSummary returns an empty summary collector.
func NewSummary() *Summary { return &Summary{} }

// RecordTemp implements Collector.
func (s *Summary) RecordTemp(r TempRecord) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.temps++
	s.moves += r.Moves
	s.accepted += r.Accepted
	s.ripUps += r.RipUps
	s.gRouteAttempts += r.GRouteAttempts
	s.gRouteFails += r.GRouteFails
	s.dRouteAttempts += r.DRouteAttempts
	s.dRouteFails += r.DRouteFails
	s.staUpdates += r.STAUpdates
	s.staCellsRelaxed += r.STACellsRelaxed
	if mps := r.MovesPerSec(); mps > s.peakMovesPerSec {
		s.peakMovesPerSec = mps
	}
	if r.Step >= s.lastTemp.Step || r.Chain != s.lastTemp.Chain {
		s.lastTemp = r
	}
}

// RecordPhase implements Collector.
func (s *Summary) RecordPhase(r PhaseRecord) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if r.Phase < NumPhases {
		s.phaseDur[r.Phase] += r.Elapsed
		s.phaseCount[r.Phase]++
	}
}

// RecordChain implements Collector.
func (s *Summary) RecordChain(r ChainRecord) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.chains = append(s.chains, r)
}

// Totals is a snapshot of a Summary's aggregates.
type Totals struct {
	Temps    int
	Moves    int
	Accepted int

	RipUps          int64
	GRouteAttempts  int64
	GRouteFails     int64
	DRouteAttempts  int64
	DRouteFails     int64
	STAUpdates      int64
	STACellsRelaxed int64

	PeakMovesPerSec float64
	LastTemp        TempRecord

	PhaseDur [NumPhases]time.Duration
	Chains   []ChainRecord
}

// Totals returns a consistent snapshot of the aggregates so far.
func (s *Summary) Totals() Totals {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := Totals{
		Temps:           s.temps,
		Moves:           s.moves,
		Accepted:        s.accepted,
		RipUps:          s.ripUps,
		GRouteAttempts:  s.gRouteAttempts,
		GRouteFails:     s.gRouteFails,
		DRouteAttempts:  s.dRouteAttempts,
		DRouteFails:     s.dRouteFails,
		STAUpdates:      s.staUpdates,
		STACellsRelaxed: s.staCellsRelaxed,
		PeakMovesPerSec: s.peakMovesPerSec,
		LastTemp:        s.lastTemp,
		PhaseDur:        s.phaseDur,
		Chains:          append([]ChainRecord(nil), s.chains...),
	}
	sort.Slice(t.Chains, func(i, j int) bool { return t.Chains[i].Chain < t.Chains[j].Chain })
	return t
}

// PeakMovesPerSec returns the highest single-temperature throughput observed.
func (s *Summary) PeakMovesPerSec() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.peakMovesPerSec
}

// WriteText prints a human-readable report of the collected statistics.
func (s *Summary) WriteText(w io.Writer) error {
	t := s.Totals()
	// Sections with no records are omitted: a flow that was never
	// temperature-instrumented (the sequential baseline) reports only its
	// phase timers rather than misleading zero counters.
	if t.Temps > 0 {
		ratio := 0.0
		if t.Moves > 0 {
			ratio = float64(t.Accepted) / float64(t.Moves)
		}
		if _, err := fmt.Fprintf(w, "anneal   %d temps, %d moves, %d accepted (%.1f%%), peak %.0f moves/s\n",
			t.Temps, t.Moves, t.Accepted, 100*ratio, t.PeakMovesPerSec); err != nil {
			return err
		}
	}
	if t.RipUps+t.GRouteAttempts+t.DRouteAttempts > 0 {
		fmt.Fprintf(w, "routing  %d rip-ups, global %d attempts (%d failed), detailed %d attempts (%d failed)\n",
			t.RipUps, t.GRouteAttempts, t.GRouteFails, t.DRouteAttempts, t.DRouteFails)
	}
	if t.STAUpdates+t.STACellsRelaxed > 0 {
		fmt.Fprintf(w, "timing   %d incremental net updates, %d cell arrivals relaxed\n",
			t.STAUpdates, t.STACellsRelaxed)
	}
	for p := Phase(0); p < NumPhases; p++ {
		if t.PhaseDur[p] > 0 {
			fmt.Fprintf(w, "phase    %-13s %v\n", p.String(), t.PhaseDur[p].Round(time.Microsecond))
		}
	}
	for _, c := range t.Chains {
		mark := " "
		if c.Champion {
			mark = "*"
		}
		fmt.Fprintf(w, "chain %s%d  %d temps, %d moves, cost %.4f, wall %v, %d adoptions\n",
			mark, c.Chain, c.Temps, c.Moves, c.FinalCost, c.Wall.Round(time.Microsecond), c.Adoptions)
	}
	return nil
}

var _ Collector = (*Summary)(nil)
