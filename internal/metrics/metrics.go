// Package metrics is the optimizer observability layer: a Collector interface
// that the annealing engines, routers and flows feed with per-temperature,
// per-phase and per-chain records, plus ready-made collectors (an aggregating
// Summary, a JSONL event Trace, and a fan-out Multi).
//
// Design constraints, in order:
//
//  1. Disabled must be free. A nil Collector is the disabled state; every
//     instrumentation site is a single nil check, no per-move calls exist at
//     all (hot-loop counts are plain integer fields on fabric.Fabric and
//     timing.Analyzer, snapshotted once per temperature), and records are
//     passed by value so the interface boundary never allocates.
//  2. Determinism is untouched. Collectors only observe; wall-clock fields
//     (Elapsed) are reporting-only and never feed back into any decision.
//  3. Concurrency-safe. Parallel portfolio chains share one collector and
//     call it concurrently; every collector in this package locks internally,
//     and records carry the chain index.
package metrics

import "time"

// Phase identifies a timed stage of a layout flow.
type Phase uint8

const (
	// PhaseInit is the simultaneous flow's construction: random placement,
	// constructive first routing pass, and the initial timing fill.
	PhaseInit Phase = iota
	// PhasePlace is the sequential flow's annealing placement.
	PhasePlace
	// PhaseGlobalRoute is the sequential flow's one-shot global route.
	PhaseGlobalRoute
	// PhaseDetailRoute is the sequential flow's channel routing.
	PhaseDetailRoute
	// PhaseTiming is a full (non-incremental) timing analysis pass.
	PhaseTiming
	// PhaseAnneal is the simultaneous flow's annealing loop (all chains).
	PhaseAnneal
	// PhaseRepair is the zero-temperature routability repair.
	PhaseRepair

	// NumPhases bounds per-phase arrays.
	NumPhases
)

var phaseNames = [NumPhases]string{
	"init", "place", "global-route", "detail-route", "timing", "anneal", "repair",
}

// String returns the phase's stable, schema-visible name.
func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return "unknown"
}

// TempRecord is one temperature step of one annealing chain: the engine-level
// move statistics, the optimizer's cost decomposition, and the router/STA
// activity deltas accumulated during the temperature.
type TempRecord struct {
	Chain    int     `json:"chain"`     // chain index (0 on the serial path)
	Step     int     `json:"step"`      // 0 = warmup walk, then 1..Temps
	Temp     float64 `json:"temp"`      // temperature
	Moves    int     `json:"moves"`     // moves proposed at this temperature
	Accepted int     `json:"accepted"`  // moves accepted
	Cost     float64 `json:"cost"`      // cost at end of temperature
	BestCost float64 `json:"best_cost"` // best cost seen so far by this chain

	// Cost decomposition at the temperature boundary (weights as used during
	// the temperature, before renormalization).
	G     int     `json:"g"`                // globally unroutable nets
	D     int     `json:"d"`                // nets lacking a complete detailed route
	GCost float64 `json:"g_cost"`           // weighted G component
	DCost float64 `json:"d_cost"`           // weighted D component
	TCost float64 `json:"t_cost"`           // weighted timing component
	CCost float64 `json:"c_cost,omitempty"` // weighted criticality component (0 unless core.Config.CritWeight > 0)
	WCD   float64 `json:"wcd_ps"`           // worst-case delay, ps

	// Router and timing activity during this temperature (deltas of the
	// always-on fabric/analyzer counters).
	RipUps          int64 `json:"rip_ups"`           // nets ripped up
	GRouteAttempts  int64 `json:"groute_attempts"`   // global-route attempts
	GRouteFails     int64 `json:"groute_fails"`      // global-route failures
	DRouteAttempts  int64 `json:"droute_attempts"`   // detailed channel-route attempts
	DRouteFails     int64 `json:"droute_fails"`      // detailed channel-route failures
	STAUpdates      int64 `json:"sta_updates"`       // incremental net-delay updates pushed into the analyzer
	STACellsRelaxed int64 `json:"sta_cells_relaxed"` // cell arrivals recomputed by frontier propagation

	Elapsed time.Duration `json:"elapsed_ns"` // wall clock spent in this temperature
}

// AcceptRatio returns the fraction of proposed moves accepted.
func (r TempRecord) AcceptRatio() float64 {
	if r.Moves == 0 {
		return 0
	}
	return float64(r.Accepted) / float64(r.Moves)
}

// MovesPerSec returns the throughput of this temperature (0 when unmeasured).
func (r TempRecord) MovesPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Moves) / r.Elapsed.Seconds()
}

// PhaseRecord reports the wall-clock duration of one flow phase.
type PhaseRecord struct {
	Phase   Phase
	Elapsed time.Duration
}

// ChainRecord summarizes one chain of a parallel portfolio run.
type ChainRecord struct {
	Chain     int           `json:"chain"`
	Temps     int           `json:"temps"`
	Moves     int           `json:"moves"`
	Accepted  int           `json:"accepted"`
	FinalCost float64       `json:"final_cost"`
	Wall      time.Duration `json:"wall_ns"`   // wall clock spent stepping this chain
	Adoptions int           `json:"adoptions"` // times this chain restarted from the champion
	Champion  bool          `json:"champion"`  // whether this chain won
}

// Collector receives optimizer events. Implementations must be safe for
// concurrent use: parallel annealing chains share one collector. A nil
// Collector means collection is disabled; callers nil-check before calling.
type Collector interface {
	RecordTemp(TempRecord)
	RecordPhase(PhaseRecord)
	RecordChain(ChainRecord)
}

// StartPhase starts a wall-clock timer for a phase and returns the function
// that stops it and reports the record. With a nil collector it returns a
// no-op, so call sites do not need their own nil checks.
func StartPhase(c Collector, p Phase) func() {
	if c == nil {
		return func() {}
	}
	start := time.Now()
	return func() { c.RecordPhase(PhaseRecord{Phase: p, Elapsed: time.Since(start)}) }
}

// Multi fans records out to every non-nil collector. It returns nil when none
// remain (keeping the disabled path free), and the collector itself when only
// one remains (avoiding a pointless indirection).
func Multi(cs ...Collector) Collector {
	var live []Collector
	for _, c := range cs {
		if c != nil {
			live = append(live, c)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return multi(live)
}

type multi []Collector

func (m multi) RecordTemp(r TempRecord) {
	for _, c := range m {
		c.RecordTemp(r)
	}
}
func (m multi) RecordPhase(r PhaseRecord) {
	for _, c := range m {
		c.RecordPhase(r)
	}
}
func (m multi) RecordChain(r ChainRecord) {
	for _, c := range m {
		c.RecordChain(r)
	}
}
