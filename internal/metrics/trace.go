package metrics

import (
	"encoding/json"
	"io"
	"sync"
)

// TraceSchema versions the JSONL event stream. Bump on any breaking change to
// the event shapes below.
const TraceSchema = "repro-trace/v1"

// Trace is a Collector that writes one JSON object per event to a stream
// (JSONL). The first line is always a header event carrying the schema
// version. Events are written under a lock, so concurrent chains interleave
// whole lines, never bytes; per-chain event order is preserved.
type Trace struct {
	mu  sync.Mutex
	enc *json.Encoder
	err error
}

// traceEvent is the on-the-wire shape of every trace line. Event is one of
// "header", "temp", "phase", "chain"; exactly one of the payload pointers is
// set (plus Schema on the header).
type traceEvent struct {
	Event  string       `json:"event"`
	Schema string       `json:"schema,omitempty"`
	Temp   *TempRecord  `json:"temp,omitempty"`
	Phase  *phaseEvent  `json:"phase,omitempty"`
	Chain  *ChainRecord `json:"chain,omitempty"`
}

// phaseEvent names the phase explicitly so the stream is self-describing.
type phaseEvent struct {
	Name      string `json:"name"`
	ElapsedNS int64  `json:"elapsed_ns"`
}

// NewTrace returns a tracer writing to w, emitting the schema header
// immediately.
func NewTrace(w io.Writer) *Trace {
	t := &Trace{enc: json.NewEncoder(w)}
	t.emit(traceEvent{Event: "header", Schema: TraceSchema})
	return t
}

func (t *Trace) emit(ev traceEvent) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	t.err = t.enc.Encode(ev)
}

// RecordTemp implements Collector.
func (t *Trace) RecordTemp(r TempRecord) {
	t.emit(traceEvent{Event: "temp", Temp: &r})
}

// RecordPhase implements Collector.
func (t *Trace) RecordPhase(r PhaseRecord) {
	t.emit(traceEvent{Event: "phase", Phase: &phaseEvent{Name: r.Phase.String(), ElapsedNS: int64(r.Elapsed)}})
}

// RecordChain implements Collector.
func (t *Trace) RecordChain(r ChainRecord) {
	t.emit(traceEvent{Event: "chain", Chain: &r})
}

// Err returns the first write error encountered, if any.
func (t *Trace) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

var _ Collector = (*Trace)(nil)
