// Package layout holds the geometric state of an evolving design: the
// assignment of cells to module slots and the pinmap selected for each cell.
// It maps logical pins to the (channel, column) positions the routers and the
// delay model consume.
package layout

import (
	"fmt"
	"math/rand"

	"repro/internal/arch"
	"repro/internal/netlist"
)

// Loc is a module slot position.
type Loc struct {
	Row, Col int
}

// Placement is a complete, legal assignment of every cell to a distinct slot
// plus a pinmap choice per cell. Intermediate layouts in both flows are
// always legal placements (paper §3.2: no overlapping or unassigned cells).
type Placement struct {
	A  *arch.Arch
	NL *netlist.Netlist

	Slot [][]int32 // [row][col] -> cell id, or -1 when empty
	Loc  []Loc     // per cell
	Pm   []uint8   // per cell: pinmap variant index

	pinmapCache map[int][]arch.Pinmap // palette keyed by input count

	// Incremental bounding-box cache: boxCache[id] holds the net's current
	// channel/column span when boxOK[id] is set. Entries are invalidated at
	// the mutation sites themselves (Swap, SetPinmap) for every net touching
	// a moved cell, so the cache is exact by construction — including across
	// move rollbacks, which are just another Swap/SetPinmap. NetBox fills
	// entries lazily on first read.
	boxCache []NetBox
	boxOK    []bool
}

// NewRandom places all cells into random distinct slots with pinmap variant 0.
func NewRandom(a *arch.Arch, nl *netlist.Netlist, rng *rand.Rand) (*Placement, error) {
	n := nl.NumCells()
	if n > a.Slots() {
		return nil, fmt.Errorf("layout: %d cells exceed %d slots", n, a.Slots())
	}
	p := &Placement{
		A:           a,
		NL:          nl,
		Loc:         make([]Loc, n),
		Pm:          make([]uint8, n),
		pinmapCache: make(map[int][]arch.Pinmap),
		boxCache:    make([]NetBox, nl.NumNets()),
		boxOK:       make([]bool, nl.NumNets()),
	}
	p.Slot = make([][]int32, a.Rows)
	for r := range p.Slot {
		p.Slot[r] = make([]int32, a.Cols)
		for c := range p.Slot[r] {
			p.Slot[r][c] = -1
		}
	}
	perm := rng.Perm(a.Slots())
	for i := 0; i < n; i++ {
		s := perm[i]
		r, c := s/a.Cols, s%a.Cols
		p.Slot[r][c] = int32(i)
		p.Loc[i] = Loc{Row: r, Col: c}
	}
	return p, nil
}

// Clone returns a deep copy sharing only the immutable arch and netlist.
// The pinmap palette is prefilled for every input count in the netlist before
// being shared, so clones used from different goroutines only ever read it.
func (p *Placement) Clone() *Placement {
	p.prefillPinmaps()
	q := &Placement{
		A:           p.A,
		NL:          p.NL,
		Loc:         append([]Loc(nil), p.Loc...),
		Pm:          append([]uint8(nil), p.Pm...),
		pinmapCache: p.pinmapCache, // complete and read-only after prefill
		boxCache:    append([]NetBox(nil), p.boxCache...),
		boxOK:       append([]bool(nil), p.boxOK...),
	}
	q.Slot = make([][]int32, len(p.Slot))
	for r := range p.Slot {
		q.Slot[r] = append([]int32(nil), p.Slot[r]...)
	}
	return q
}

// prefillPinmaps builds the lazily-populated pinmap palette for every input
// count present in the netlist, after which the cache is never written again.
func (p *Placement) prefillPinmaps() {
	if p.pinmapCache == nil {
		p.pinmapCache = make(map[int][]arch.Pinmap)
	}
	for id := range p.NL.Cells {
		k := len(p.NL.Cells[id].In)
		if _, ok := p.pinmapCache[k]; ok {
			continue
		}
		pal := make([]arch.Pinmap, arch.NumPinmaps)
		for v := range pal {
			pal[v] = arch.PinmapFor(k, v)
		}
		p.pinmapCache[k] = pal
	}
}

// CellAt returns the cell occupying slot (row, col), or -1.
func (p *Placement) CellAt(row, col int) int32 { return p.Slot[row][col] }

// Swap exchanges the contents of two slots; either (or both) may be empty.
// The bounding boxes of every net touching a moved cell are invalidated, so
// the cache stays exact whether the swap is a tentative move or its rollback.
func (p *Placement) Swap(a, b Loc) {
	ca, cb := p.Slot[a.Row][a.Col], p.Slot[b.Row][b.Col]
	p.Slot[a.Row][a.Col], p.Slot[b.Row][b.Col] = cb, ca
	if ca >= 0 {
		p.Loc[ca] = b
		p.invalidateCellBoxes(ca)
	}
	if cb >= 0 {
		p.Loc[cb] = a
		p.invalidateCellBoxes(cb)
	}
}

// SetPinmap selects pinmap variant v for the cell. Pinmaps choose which
// channel each pin taps, so the cell's nets lose their cached boxes.
func (p *Placement) SetPinmap(cell int32, v uint8) {
	p.Pm[cell] = v
	p.invalidateCellBoxes(cell)
}

// invalidateCellBoxes drops the cached bounding box of every net attached to
// the cell.
func (p *Placement) invalidateCellBoxes(cell int32) {
	if p.boxOK == nil {
		return
	}
	c := &p.NL.Cells[cell]
	if c.Out >= 0 {
		p.boxOK[c.Out] = false
	}
	for _, in := range c.In {
		if in >= 0 {
			p.boxOK[in] = false
		}
	}
}

// Pinmap returns the cell's current pinmap.
func (p *Placement) Pinmap(cell int32) arch.Pinmap {
	if p.pinmapCache == nil {
		p.pinmapCache = make(map[int][]arch.Pinmap)
	}
	k := len(p.NL.Cells[cell].In)
	pal, ok := p.pinmapCache[k]
	if !ok {
		pal = make([]arch.Pinmap, arch.NumPinmaps)
		for v := range pal {
			pal[v] = arch.PinmapFor(k, v)
		}
		p.pinmapCache[k] = pal
	}
	return pal[p.Pm[cell]%arch.NumPinmaps]
}

// PinPos returns the channel and column a pin currently taps.
func (p *Placement) PinPos(pin netlist.PinRef) (ch, col int) {
	loc := p.Loc[pin.Cell]
	side := p.Pinmap(pin.Cell)[pin.Pin]
	return p.A.ChannelOf(loc.Row, side), loc.Col
}

// NetBox is a net's current bounding box in channel/column space.
type NetBox struct {
	ChLo, ChHi   int
	ColLo, ColHi int
}

// NetBox returns the bounding box over all pin positions of the net, serving
// it from the incremental cache when the net's pins have not moved since the
// last computation. This is the hot lookup behind EstLength (the per-move
// worklist ordering), the global router's trunk-column selection, and the
// timing estimator.
func (p *Placement) NetBox(netID int32) NetBox {
	if p.boxOK != nil && p.boxOK[netID] {
		return p.boxCache[netID]
	}
	box := p.computeNetBox(netID)
	if p.boxOK != nil {
		p.boxCache[netID] = box
		p.boxOK[netID] = true
	}
	return box
}

// computeNetBox derives the bounding box from scratch by scanning every pin.
func (p *Placement) computeNetBox(netID int32) NetBox {
	n := &p.NL.Nets[netID]
	ch, col := p.PinPos(n.Driver)
	box := NetBox{ChLo: ch, ChHi: ch, ColLo: col, ColHi: col}
	for _, s := range n.Sinks {
		ch, col = p.PinPos(s)
		if ch < box.ChLo {
			box.ChLo = ch
		}
		if ch > box.ChHi {
			box.ChHi = ch
		}
		if col < box.ColLo {
			box.ColLo = col
		}
		if col > box.ColHi {
			box.ColHi = col
		}
	}
	return box
}

// EstLength is the net-length estimate used to order the unroutable-net
// queues (longer nets get routing priority) and to drive the baseline
// placer's wirelength objective: half-perimeter with channels weighted by the
// architecture's vertical span cost.
func (p *Placement) EstLength(netID int32) float64 {
	b := p.NetBox(netID)
	return float64(b.ColHi-b.ColLo) + 2*float64(b.ChHi-b.ChLo)
}

// ValidateNetBoxes cross-checks every cached bounding box against a
// from-scratch recomputation. Tests call it after move bursts; a mismatch
// means an invalidation path was missed.
func (p *Placement) ValidateNetBoxes() error {
	if p.boxOK == nil {
		return nil
	}
	for id := range p.NL.Nets {
		if !p.boxOK[id] {
			continue
		}
		if got, want := p.boxCache[id], p.computeNetBox(int32(id)); got != want {
			return fmt.Errorf("layout: net %d cached box %+v, recompute %+v", id, got, want)
		}
	}
	return nil
}

// Validate checks slot/loc consistency: every cell placed exactly once and
// every non-empty slot pointing back at its cell.
func (p *Placement) Validate() error {
	seen := make([]bool, p.NL.NumCells())
	for r := range p.Slot {
		for c, id := range p.Slot[r] {
			if id < 0 {
				continue
			}
			if int(id) >= len(seen) {
				return fmt.Errorf("layout: slot (%d,%d) holds invalid cell %d", r, c, id)
			}
			if seen[id] {
				return fmt.Errorf("layout: cell %d placed twice", id)
			}
			seen[id] = true
			if p.Loc[id] != (Loc{r, c}) {
				return fmt.Errorf("layout: cell %d loc %v disagrees with slot (%d,%d)", id, p.Loc[id], r, c)
			}
		}
	}
	for id, ok := range seen {
		if !ok {
			return fmt.Errorf("layout: cell %d (%s) unplaced", id, p.NL.Cells[id].Name)
		}
	}
	return nil
}
