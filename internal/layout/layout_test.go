package layout

import (
	"math/rand"
	"testing"

	"repro/internal/arch"
	"repro/internal/netlist"
)

func testSetup(t *testing.T) (*arch.Arch, *netlist.Netlist) {
	t.Helper()
	a := arch.MustNew(arch.Default(4, 8, 6))
	b := netlist.NewBuilder("t")
	b.Input("pi", "a")
	b.Comb("g1", 3000, "x", "a")
	b.Comb("g2", 3000, "y", "x", "a")
	b.Seq("ff", 3500, "q", "y")
	b.Output("po", "q")
	return a, b.MustBuild()
}

func TestNewRandomLegal(t *testing.T) {
	a, nl := testSetup(t)
	for seed := int64(0); seed < 20; seed++ {
		p, err := NewRandom(a, nl, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatalf("NewRandom: %v", err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestNewRandomOverCapacity(t *testing.T) {
	a := arch.MustNew(arch.Default(1, 2, 2)) // 2 slots
	_, nl := testSetup(t)                    // 5 cells
	if _, err := NewRandom(a, nl, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("expected capacity error")
	}
}

func TestSwap(t *testing.T) {
	a, nl := testSetup(t)
	p, _ := NewRandom(a, nl, rand.New(rand.NewSource(7)))
	l1 := p.Loc[0]
	// Find an empty slot.
	var empty Loc
	found := false
	for r := 0; r < a.Rows && !found; r++ {
		for c := 0; c < a.Cols && !found; c++ {
			if p.Slot[r][c] < 0 {
				empty = Loc{r, c}
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no empty slot")
	}
	p.Swap(l1, empty)
	if p.Loc[0] != empty {
		t.Error("cell did not move to empty slot")
	}
	if p.Slot[l1.Row][l1.Col] != -1 {
		t.Error("origin slot not vacated")
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Swap two occupied slots.
	l0, l1b := p.Loc[0], p.Loc[1]
	p.Swap(l0, l1b)
	if p.Loc[0] != l1b || p.Loc[1] != l0 {
		t.Error("occupied swap broken")
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPinPosRespectsPinmap(t *testing.T) {
	a, nl := testSetup(t)
	p, _ := NewRandom(a, nl, rand.New(rand.NewSource(3)))
	g2 := nl.CellID("g2")
	row := p.Loc[g2].Row
	// Variant 2: output top, all inputs bottom.
	p.SetPinmap(g2, 2)
	ch, col := p.PinPos(netlist.PinRef{Cell: g2, Pin: 0})
	if ch != row+1 || col != p.Loc[g2].Col {
		t.Errorf("output pin at (%d,%d), want (%d,%d)", ch, col, row+1, p.Loc[g2].Col)
	}
	ch, _ = p.PinPos(netlist.PinRef{Cell: g2, Pin: 1})
	if ch != row {
		t.Errorf("input pin channel %d, want %d", ch, row)
	}
	// Variant 3: output bottom, all inputs top.
	p.SetPinmap(g2, 3)
	ch, _ = p.PinPos(netlist.PinRef{Cell: g2, Pin: 0})
	if ch != row {
		t.Errorf("variant 3 output channel %d, want %d", ch, row)
	}
}

func TestNetBoxAndEstLength(t *testing.T) {
	a, nl := testSetup(t)
	p, _ := NewRandom(a, nl, rand.New(rand.NewSource(3)))
	// Pin positions: manually place the two cells on net "a" far apart.
	pi := nl.CellID("pi")
	g1 := nl.CellID("g1")
	g2 := nl.CellID("g2")
	// Clear the board to known state by swapping cells into chosen slots.
	p.Swap(p.Loc[pi], Loc{0, 0})
	p.Swap(p.Loc[g1], Loc{3, 7})
	p.Swap(p.Loc[g2], Loc{1, 4})
	for _, c := range []int32{pi, g1, g2} {
		p.SetPinmap(c, 2) // output top, inputs bottom
	}
	aNet := nl.NetID("a")
	box := p.NetBox(aNet)
	// pi output: row 0 top -> channel 1, col 0. g1 in: row 3 bottom -> channel 3, col 7.
	// g2 in (pin 2): row 1 bottom -> channel 1, col 4.
	if box.ChLo != 1 || box.ChHi != 3 || box.ColLo != 0 || box.ColHi != 7 {
		t.Errorf("NetBox = %+v", box)
	}
	want := float64(7) + 2*float64(2)
	if got := p.EstLength(aNet); got != want {
		t.Errorf("EstLength = %v, want %v", got, want)
	}
}

func TestCloneIndependence(t *testing.T) {
	a, nl := testSetup(t)
	p, _ := NewRandom(a, nl, rand.New(rand.NewSource(5)))
	q := p.Clone()
	l0 := p.Loc[0]
	var other Loc
	for r := 0; r < a.Rows; r++ {
		for c := 0; c < a.Cols; c++ {
			if (Loc{r, c}) != l0 {
				other = Loc{r, c}
			}
		}
	}
	p.Swap(l0, other)
	p.SetPinmap(0, 3)
	if q.Loc[0] != l0 {
		t.Error("clone's Loc mutated by original's Swap")
	}
	if q.Pm[0] == 3 && p.Pm[0] == 3 && &q.Pm[0] == &p.Pm[0] {
		t.Error("clone shares Pm storage")
	}
	if err := q.Validate(); err != nil {
		t.Error(err)
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	a, nl := testSetup(t)
	p, _ := NewRandom(a, nl, rand.New(rand.NewSource(9)))
	p.Loc[0] = Loc{0, 0}
	p.Loc[1] = Loc{0, 0} // two cells claim one slot -> slot table disagrees
	if err := p.Validate(); err == nil {
		t.Error("corruption not detected")
	}
}
