package layout

import (
	"math/rand"
	"testing"
)

// TestNetBoxCacheExactUnderRandomMutation is the exactness property of the
// incremental bounding-box cache: after any interleaving of Swap and
// SetPinmap calls (with NetBox reads filling the cache between them), every
// cached span must equal a from-scratch pin scan. This is what lets the
// routers and the timing estimator trust NetBox without rescanning pins.
func TestNetBoxCacheExactUnderRandomMutation(t *testing.T) {
	a, nl := testSetup(t)
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p, err := NewRandom(a, nl, rng)
		if err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 300; step++ {
			switch rng.Intn(3) {
			case 0:
				la := Loc{Row: rng.Intn(a.Rows), Col: rng.Intn(a.Cols)}
				lb := Loc{Row: rng.Intn(a.Rows), Col: rng.Intn(a.Cols)}
				p.Swap(la, lb)
			case 1:
				p.SetPinmap(int32(rng.Intn(nl.NumCells())), uint8(rng.Intn(4)))
			case 2:
				// Fill some cache entries so later mutations must invalidate
				// populated state, not just recompute misses.
				for i := 0; i < 3; i++ {
					p.NetBox(int32(rng.Intn(nl.NumNets())))
				}
			}
			if step%37 == 0 {
				if err := p.ValidateNetBoxes(); err != nil {
					t.Fatalf("seed %d step %d: %v", seed, step, err)
				}
			}
		}
		if err := p.ValidateNetBoxes(); err != nil {
			t.Fatalf("seed %d final: %v", seed, err)
		}
		// Cached and uncached reads must agree for every net.
		for id := int32(0); id < int32(nl.NumNets()); id++ {
			if got, want := p.NetBox(id), p.computeNetBox(id); got != want {
				t.Fatalf("seed %d net %d: NetBox %+v, recompute %+v", seed, id, got, want)
			}
		}
	}
}

// TestNetBoxCacheCloneDeepCopy pins that Clone deep-copies the cache:
// mutations on either side must not leak into the other's cached spans.
func TestNetBoxCacheCloneDeepCopy(t *testing.T) {
	a, nl := testSetup(t)
	p, err := NewRandom(a, nl, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	for id := int32(0); id < int32(nl.NumNets()); id++ {
		p.NetBox(id) // populate the cache before cloning
	}
	q := p.Clone()
	for id := int32(0); id < int32(nl.NumNets()); id++ {
		if pb, qb := p.NetBox(id), q.NetBox(id); pb != qb {
			t.Fatalf("net %d: clone box %+v != original %+v", id, qb, pb)
		}
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 100; i++ {
		p.Swap(Loc{Row: rng.Intn(a.Rows), Col: rng.Intn(a.Cols)},
			Loc{Row: rng.Intn(a.Rows), Col: rng.Intn(a.Cols)})
		p.NetBox(int32(rng.Intn(nl.NumNets())))
	}
	if err := q.ValidateNetBoxes(); err != nil {
		t.Fatalf("mutating the original corrupted the clone's cache: %v", err)
	}
	for i := 0; i < 100; i++ {
		q.Swap(Loc{Row: rng.Intn(a.Rows), Col: rng.Intn(a.Cols)},
			Loc{Row: rng.Intn(a.Rows), Col: rng.Intn(a.Cols)})
		q.NetBox(int32(rng.Intn(nl.NumNets())))
	}
	if err := p.ValidateNetBoxes(); err != nil {
		t.Fatalf("mutating the clone corrupted the original's cache: %v", err)
	}
	if err := q.ValidateNetBoxes(); err != nil {
		t.Fatal(err)
	}
}
