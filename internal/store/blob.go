package store

import (
	"container/list"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// blobMagic heads every blob file, followed by a uint32le CRC-32C of the
// payload and then the payload itself. The key is a hash of the *inputs*
// that produced the blob, not of its content, so the CRC is what detects
// on-disk corruption: a blob that fails its checksum is treated as a miss
// and deleted rather than served.
const blobMagic = "FPB1"

const blobHeaderLen = len(blobMagic) + 4

// BlobStore is the content-addressed result store: one file per key under
// dir, written via temp-file+rename so readers never observe a partial blob
// and a crash never corrupts an existing one. Total bytes are bounded by an
// LRU index; file mtimes are touched on access so the LRU order survives
// restarts (the reopen scan sorts by mtime).
type BlobStore struct {
	dir string
	max int64

	mu      sync.Mutex
	entries map[string]*list.Element
	lru     *list.List // front = most recently used
	total   int64

	hits      int64
	misses    int64
	evictions int64
	putErrors int64
	oversized int64
}

type blobEntry struct {
	key  string
	size int64 // on-disk file size, header included
}

// OpenBlobStore opens (creating if absent) the store rooted at dir, bounded
// to maxBytes of blob files (<= 0 means a 256 MiB default). Existing blobs
// are indexed oldest-access first, then evicted down to the bound in case it
// shrank since the last run.
func OpenBlobStore(dir string, maxBytes int64) (*BlobStore, error) {
	if maxBytes <= 0 {
		maxBytes = 256 << 20
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create blob dir: %w", err)
	}
	s := &BlobStore{
		dir:     dir,
		max:     maxBytes,
		entries: make(map[string]*list.Element),
		lru:     list.New(),
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: scan blob dir: %w", err)
	}
	type scanned struct {
		key   string
		size  int64
		mtime time.Time
	}
	var found []scanned
	for _, e := range ents {
		if e.IsDir() || !validBlobKey(e.Name()) {
			continue // stray temp files and foreign names are not indexed
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		found = append(found, scanned{e.Name(), info.Size(), info.ModTime()})
	}
	sort.Slice(found, func(i, j int) bool { return found[i].mtime.Before(found[j].mtime) })
	for _, b := range found { // oldest first, so each PushFront leaves it LRU-last
		s.entries[b.key] = s.lru.PushFront(&blobEntry{key: b.key, size: b.size})
		s.total += b.size
	}
	s.evictLocked()
	return s, nil
}

// validBlobKey accepts lowercase-hex content keys (the server's sha256 cache
// keys). Everything else — in particular anything that could traverse paths
// — is rejected.
func validBlobKey(key string) bool {
	if len(key) < 8 || len(key) > 128 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Get returns the blob stored under key. A checksum failure deletes the
// file and reports a miss: corruption must never be served.
func (s *BlobStore) Get(key string) ([]byte, bool) {
	if !validBlobKey(key) {
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[key]
	if !ok {
		s.misses++
		return nil, false
	}
	path := filepath.Join(s.dir, key)
	data, err := os.ReadFile(path)
	if err == nil && len(data) >= blobHeaderLen && string(data[:len(blobMagic)]) == blobMagic {
		payload := data[blobHeaderLen:]
		if crc32.Checksum(payload, crcTable) == binary.LittleEndian.Uint32(data[len(blobMagic):blobHeaderLen]) {
			s.lru.MoveToFront(el)
			s.hits++
			now := time.Now()
			os.Chtimes(path, now, now) // best-effort: persists LRU order across restarts
			return payload, true
		}
	}
	// Unreadable, truncated or checksum-failed: drop it from disk and index.
	os.Remove(path)
	s.total -= el.Value.(*blobEntry).size
	s.lru.Remove(el)
	delete(s.entries, key)
	s.misses++
	return nil, false
}

// Has reports whether key is indexed (without reading or touching it).
func (s *BlobStore) Has(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.entries[key]
	return ok
}

// Put stores data under key. The blob is written to a temp file, fsynced,
// and renamed into place (plus a directory fsync), so it becomes visible
// atomically and only once durable. Content addressing makes the first
// writer win: a key that already exists is just touched, since any two
// writes for one key carry identical bytes. Blobs that alone exceed the
// size bound are skipped — storing one would immediately evict everything
// including itself.
func (s *BlobStore) Put(key string, data []byte) error {
	if !validBlobKey(key) {
		return fmt.Errorf("store: invalid blob key %q", key)
	}
	size := int64(len(data) + blobHeaderLen)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[key]; ok {
		s.lru.MoveToFront(el)
		return nil
	}
	if size > s.max {
		s.oversized++
		return nil
	}
	buf := make([]byte, 0, size)
	buf = append(buf, blobMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(data, crcTable))
	buf = append(buf, data...)
	tmp, err := os.CreateTemp(s.dir, "put-*.tmp")
	if err != nil {
		s.putErrors++
		return fmt.Errorf("store: blob temp file: %w", err)
	}
	if _, err := tmp.Write(buf); err == nil {
		err = tmp.Sync()
	}
	if err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		s.putErrors++
		return fmt.Errorf("store: write blob: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		s.putErrors++
		return fmt.Errorf("store: close blob: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(s.dir, key)); err != nil {
		os.Remove(tmp.Name())
		s.putErrors++
		return fmt.Errorf("store: publish blob: %w", err)
	}
	if err := syncDir(s.dir); err != nil {
		s.putErrors++
		return err
	}
	s.entries[key] = s.lru.PushFront(&blobEntry{key: key, size: size})
	s.total += size
	s.evictLocked()
	return nil
}

// evictLocked drops least-recently-used blobs until the store fits its
// byte bound. Callers hold s.mu.
func (s *BlobStore) evictLocked() {
	for s.total > s.max {
		back := s.lru.Back()
		if back == nil {
			return
		}
		e := back.Value.(*blobEntry)
		os.Remove(filepath.Join(s.dir, e.key))
		s.lru.Remove(back)
		delete(s.entries, e.key)
		s.total -= e.size
		s.evictions++
	}
}

// BlobStats is the blob store's counter snapshot.
type BlobStats struct {
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
	MaxBytes  int64 `json:"max_bytes"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	PutErrors int64 `json:"put_errors"`
	Oversized int64 `json:"oversized_skips"`
}

// Stats snapshots the store's counters.
func (s *BlobStore) Stats() BlobStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return BlobStats{
		Entries:   len(s.entries),
		Bytes:     s.total,
		MaxBytes:  s.max,
		Hits:      s.hits,
		Misses:    s.misses,
		Evictions: s.evictions,
		PutErrors: s.putErrors,
		Oversized: s.oversized,
	}
}
