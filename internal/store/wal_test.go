package store

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func testRecords() []Record {
	return []Record{
		{Kind: KindSubmitted, Job: "j1", Key: "aaaa1111bbbb2222", Data: []byte(`{"req":{"design":"tiny"}}`)},
		{Kind: KindRunning, Job: "j1", Key: "aaaa1111bbbb2222"},
		{Kind: KindDone, Job: "j1", Key: "aaaa1111bbbb2222", Data: []byte(`{"stats":{}}`)},
		{Kind: KindSubmitted, Job: "j2", Key: "cccc3333dddd4444", Data: bytes.Repeat([]byte("x"), 300)},
		{Kind: KindFailed, Job: "j2", Key: "cccc3333dddd4444", Data: []byte("boom")},
		{Kind: KindSubmitted, Job: "j3", Key: "eeee5555ffff6666"},
		{Kind: KindCanceled, Job: "j3", Key: "eeee5555ffff6666"},
	}
}

func openTestWAL(t *testing.T, path string) (*WAL, []Record, RecoverStats) {
	t.Helper()
	w, recs, stats, err := OpenWAL(path)
	if err != nil {
		t.Fatalf("OpenWAL(%s): %v", path, err)
	}
	return w, recs, stats
}

// TestWALRoundTrip appends a record sequence, reopens the log, and requires
// the identical sequence back with clean recovery stats.
func TestWALRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	w, recs, stats := openTestWAL(t, path)
	if len(recs) != 0 || stats.Records != 0 || stats.TornBytes != 0 {
		t.Fatalf("fresh WAL not empty: %d records, stats %+v", len(recs), stats)
	}
	want := testRecords()
	for _, r := range want {
		if err := w.Append(r); err != nil {
			t.Fatalf("Append(%v): %v", r.Kind, err)
		}
	}
	nrec, nbytes := w.Size()
	if nrec != int64(len(want)) || nbytes <= 0 {
		t.Fatalf("Size() = %d records %d bytes, want %d records", nrec, nbytes, len(want))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, got, stats := openTestWAL(t, path)
	defer w2.Close()
	if stats.TornBytes != 0 {
		t.Errorf("clean log reported %d torn bytes", stats.TornBytes)
	}
	if stats.Records != len(want) {
		t.Errorf("recovered %d records, want %d", stats.Records, len(want))
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("replay mismatch:\n got %+v\nwant %+v", got, want)
	}
	// The reopened log must stay appendable and keep the history.
	extra := Record{Kind: KindRunning, Job: "j9", Key: "0123456789abcdef"}
	if err := w2.Append(extra); err != nil {
		t.Fatalf("append after reopen: %v", err)
	}
	w2.Close()
	w3, got, _ := openTestWAL(t, path)
	defer w3.Close()
	if !reflect.DeepEqual(got, append(want, extra)) {
		t.Errorf("post-reopen append lost: got %d records, want %d", len(got), len(want)+1)
	}
}

// TestWALCompact rewrites the journal down to a subset and requires the
// rewrite to be atomic, replayable and appendable.
func TestWALCompact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	w, _, _ := openTestWAL(t, path)
	for _, r := range testRecords() {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	_, before := w.Size()
	keep := []Record{
		{Kind: KindDone, Job: "j1", Key: "aaaa1111bbbb2222", Data: []byte(`{"stats":{}}`)},
		{Kind: KindSubmitted, Job: "j4", Key: "9999aaaa8888bbbb", Data: []byte(`{}`)},
	}
	if err := w.Compact(keep); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	nrec, nbytes := w.Size()
	if nrec != 2 || nbytes >= before {
		t.Errorf("after compact: %d records %d bytes (was %d bytes)", nrec, nbytes, before)
	}
	post := Record{Kind: KindRunning, Job: "j4", Key: "9999aaaa8888bbbb"}
	if err := w.Append(post); err != nil {
		t.Fatalf("append after compact: %v", err)
	}
	w.Close()
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Errorf("compaction temp file left behind: %v", err)
	}
	_, got, stats := openTestWAL(t, path)
	if stats.TornBytes != 0 {
		t.Errorf("compacted log has torn bytes: %+v", stats)
	}
	if !reflect.DeepEqual(got, append(keep, post)) {
		t.Errorf("compacted replay mismatch: %+v", got)
	}
}

// TestWALRejectsInvalidRecords pins the codec validation surface.
func TestWALRejectsInvalidRecords(t *testing.T) {
	w, _, _ := openTestWAL(t, filepath.Join(t.TempDir(), "journal.wal"))
	defer w.Close()
	for name, r := range map[string]Record{
		"zero kind":    {Kind: 0, Job: "j1"},
		"unknown kind": {Kind: 99, Job: "j1"},
		"empty job":    {Kind: KindRunning},
		"huge job":     {Kind: KindRunning, Job: string(bytes.Repeat([]byte("j"), maxJobLen+1))},
		"huge key":     {Kind: KindRunning, Job: "j1", Key: string(bytes.Repeat([]byte("k"), maxKeyLen+1))},
	} {
		if err := w.Append(r); err == nil {
			t.Errorf("%s: Append accepted invalid record", name)
		}
	}
	if nrec, _ := w.Size(); nrec != 0 {
		t.Errorf("invalid records were journaled: %d", nrec)
	}
}

// TestReduceRecords pins the recovery classification: done jobs are
// re-advertised, unfinished jobs are pending in submission order, and
// failed/canceled jobs vanish.
func TestReduceRecords(t *testing.T) {
	recs := testRecords()
	recs = append(recs,
		Record{Kind: KindSubmitted, Job: "j4", Key: "1212343456567878", Data: []byte("a")},
		Record{Kind: KindSubmitted, Job: "j5", Key: "abcdefabcdefabcd", Data: []byte("b")},
		Record{Kind: KindRunning, Job: "j5", Key: "abcdefabcdefabcd"},
		// A running record with no submitted record (pre-compaction stray)
		// must not produce a pending job: there is nothing to rebuild from.
		Record{Kind: KindRunning, Job: "j6", Key: "ffff0000ffff0000"},
	)
	rec := reduceRecords(recs)
	if len(rec.Done) != 1 || rec.Done[0].Job != "j1" || rec.Done[0].Kind != KindDone {
		t.Errorf("Done = %+v, want j1's done record", rec.Done)
	}
	if len(rec.Pending) != 2 || rec.Pending[0].Job != "j4" || rec.Pending[1].Job != "j5" {
		t.Errorf("Pending = %+v, want j4 then j5", rec.Pending)
	}
	for _, p := range rec.Pending {
		if p.Kind != KindSubmitted || len(p.Data) == 0 {
			t.Errorf("pending record %+v is not a submitted record with payload", p)
		}
	}
}
