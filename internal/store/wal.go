package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// WAL is the append-only job journal. Appends are framed (record.go),
// written in one Write call and fsynced before Append returns, so a record
// that was acknowledged is durable; a crash mid-append leaves at most one
// torn frame at the tail, which OpenWAL detects (length/CRC framing) and
// truncates away. Replay therefore always yields an intact prefix of
// acknowledged records.
type WAL struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	records int64
	size    int64
	buf     []byte // append scratch, reused across Append calls
}

// RecoverStats describes what OpenWAL found on disk.
type RecoverStats struct {
	// Records is the number of intact records replayed.
	Records int
	// TornBytes is the length of the corrupt/torn tail that was truncated.
	TornBytes int64
}

// OpenWAL opens (creating if absent) the journal at path, replays its intact
// record prefix, and truncates any torn tail so the log is append-clean.
func OpenWAL(path string) (*WAL, []Record, RecoverStats, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, RecoverStats{}, fmt.Errorf("store: open WAL: %w", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		f.Close()
		return nil, nil, RecoverStats{}, fmt.Errorf("store: read WAL: %w", err)
	}
	var recs []Record
	off := 0
	for off < len(data) {
		r, n, err := decodeFrame(data[off:])
		if err != nil {
			break // torn or corrupt tail: keep the intact prefix
		}
		recs = append(recs, r)
		off += n
	}
	stats := RecoverStats{Records: len(recs), TornBytes: int64(len(data) - off)}
	if stats.TornBytes > 0 {
		if err := f.Truncate(int64(off)); err != nil {
			f.Close()
			return nil, nil, stats, fmt.Errorf("store: truncate torn WAL tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, stats, fmt.Errorf("store: sync truncated WAL: %w", err)
		}
	}
	if _, err := f.Seek(int64(off), 0); err != nil {
		f.Close()
		return nil, nil, stats, fmt.Errorf("store: seek WAL end: %w", err)
	}
	w := &WAL{f: f, path: path, records: int64(len(recs)), size: int64(off)}
	return w, recs, stats, nil
}

// Append journals one record: encode, write, fsync. It returns only after
// the record is durable.
func (w *WAL) Append(r Record) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return fmt.Errorf("store: append to closed WAL")
	}
	var err error
	w.buf, err = appendFrame(w.buf[:0], &r)
	if err != nil {
		return err
	}
	if _, err := w.f.Write(w.buf); err != nil {
		return fmt.Errorf("store: append WAL record: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("store: fsync WAL: %w", err)
	}
	w.records++
	w.size += int64(len(w.buf))
	return nil
}

// Compact atomically replaces the journal's contents with keep: the new log
// is written to a temp file, fsynced, and renamed over the old one (with a
// directory fsync), so a crash at any point leaves either the old complete
// log or the new complete log. The server compacts at recovery, folding a
// history of lifecycle records down to one record per job that still
// matters, which bounds journal growth across restarts.
func (w *WAL) Compact(keep []Record) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return fmt.Errorf("store: compact closed WAL")
	}
	var buf []byte
	for i := range keep {
		var err error
		if buf, err = appendFrame(buf, &keep[i]); err != nil {
			return err
		}
	}
	tmp := w.path + ".tmp"
	if err := writeFileSync(tmp, buf); err != nil {
		return err
	}
	if err := os.Rename(tmp, w.path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: swap compacted WAL: %w", err)
	}
	if err := syncDir(filepath.Dir(w.path)); err != nil {
		return err
	}
	f, err := os.OpenFile(w.path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("store: reopen compacted WAL: %w", err)
	}
	if _, err := f.Seek(int64(len(buf)), 0); err != nil {
		f.Close()
		return fmt.Errorf("store: seek compacted WAL: %w", err)
	}
	w.f.Close()
	w.f = f
	w.records = int64(len(keep))
	w.size = int64(len(buf))
	return nil
}

// Size reports the journal's record count and byte length.
func (w *WAL) Size() (records, bytes int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.records, w.size
}

// Close releases the journal file. Appends after Close fail.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}

// writeFileSync writes data to path and fsyncs it before returning.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: create %s: %w", filepath.Base(path), err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("store: write %s: %w", filepath.Base(path), err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: fsync %s: %w", filepath.Base(path), err)
	}
	return f.Close()
}

// syncDir fsyncs a directory so a just-created or just-renamed entry in it
// is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: open dir for sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("store: fsync dir %s: %w", dir, err)
	}
	return nil
}
