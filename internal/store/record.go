// Package store is fpgaprd's durability layer: an append-only,
// fsync-disciplined write-ahead log that journals job lifecycle records, and
// a content-addressed on-disk blob store for finished layouts, keyed by the
// same sha256 cache key the in-memory result cache uses.
//
// The WAL is the source of truth for "what work was promised": every
// submission is journaled before it is enqueued, every state transition is
// appended behind it, and on startup the intact prefix of the log is
// replayed to re-enqueue interrupted jobs and re-advertise finished ones.
// Records are CRC-framed so a torn tail (crash mid-append) is detected and
// dropped without losing the prefix. The blob store holds the expensive
// artifacts — place-and-route results are deterministic for their cache key,
// so a layout written once can be served forever without re-annealing —
// bounded by a size-budgeted LRU index.
package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Kind is a job lifecycle record type.
type Kind uint8

const (
	// KindSubmitted journals a validated submission before it is enqueued.
	// Its Data payload is everything needed to rebuild the job (the server's
	// journalSubmission JSON); a submitted record with no terminal record
	// behind it is an interrupted job, re-enqueued at recovery.
	KindSubmitted Kind = 1
	// KindRunning marks the queued → running transition.
	KindRunning Kind = 2
	// KindDone marks successful completion; Data carries the result metadata
	// (design name, size, stats) and the layout bytes live in the blob store
	// under the record's Key.
	KindDone Kind = 3
	// KindFailed marks optimizer failure; Data is the error message.
	KindFailed Kind = 4
	// KindCanceled marks a client-requested cancellation (never a shutdown
	// interrupt — interrupted jobs keep their submitted record so they run
	// again on restart).
	KindCanceled Kind = 5
	// KindGroup journals a batch or portfolio group: Job is the group ID
	// ("b%d"/"p%d", disjoint from the job "j%d" namespace) and Data maps the
	// group to its member job IDs (the server's journalGroup JSON). Group
	// records carry no lifecycle of their own — a group's state is derived
	// from its member jobs' records at recovery.
	KindGroup Kind = 6
)

// Terminal reports whether the kind ends a job's lifecycle.
func (k Kind) Terminal() bool { return k >= KindDone && k <= KindCanceled }

func (k Kind) String() string {
	switch k {
	case KindSubmitted:
		return "submitted"
	case KindRunning:
		return "running"
	case KindDone:
		return "done"
	case KindFailed:
		return "failed"
	case KindCanceled:
		return "canceled"
	case KindGroup:
		return "group"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Record is one journal entry: a lifecycle event for one job. Key is the
// content address of the job's result (the server's sha256 cache key) and
// Data is an opaque payload whose meaning depends on Kind.
type Record struct {
	Kind Kind
	Job  string
	Key  string
	Data []byte
}

// Codec bounds. They keep a corrupt or adversarial length field from
// allocating unbounded memory during replay and give the fuzzer a hard
// never-panic envelope.
const (
	maxJobLen  = 255
	maxKeyLen  = 1 << 10
	maxDataLen = 16 << 20

	// bodyHeaderLen is kind(1) + jobLen(1) + keyLen(2) + dataLen(4).
	bodyHeaderLen = 8
	// frameHeaderLen is bodyLen(4) + crc32(4).
	frameHeaderLen = 8
	// maxBodyLen caps the framed payload length field.
	maxBodyLen = bodyHeaderLen + maxJobLen + maxKeyLen + maxDataLen
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// validate checks the record against the codec bounds.
func (r *Record) validate() error {
	if r.Kind < KindSubmitted || r.Kind > KindGroup {
		return fmt.Errorf("store: invalid record kind %d", r.Kind)
	}
	if r.Job == "" || len(r.Job) > maxJobLen {
		return fmt.Errorf("store: job id length %d out of range [1, %d]", len(r.Job), maxJobLen)
	}
	if len(r.Key) > maxKeyLen {
		return fmt.Errorf("store: key length %d exceeds %d", len(r.Key), maxKeyLen)
	}
	if len(r.Data) > maxDataLen {
		return fmt.Errorf("store: data length %d exceeds %d", len(r.Data), maxDataLen)
	}
	return nil
}

// appendBody appends the record's body encoding (no frame) to dst.
func appendBody(dst []byte, r *Record) []byte {
	dst = append(dst, byte(r.Kind), byte(len(r.Job)))
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(r.Key)))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(r.Data)))
	dst = append(dst, r.Job...)
	dst = append(dst, r.Key...)
	dst = append(dst, r.Data...)
	return dst
}

// decodeBody decodes an exact body encoding. The returned record owns its
// bytes (Data is copied), so callers may discard or reuse b.
func decodeBody(b []byte) (Record, error) {
	if len(b) < bodyHeaderLen {
		return Record{}, fmt.Errorf("store: record body too short (%d bytes)", len(b))
	}
	r := Record{Kind: Kind(b[0])}
	jobLen := int(b[1])
	keyLen := int(binary.LittleEndian.Uint16(b[2:4]))
	dataLen := int(binary.LittleEndian.Uint32(b[4:8]))
	if dataLen > maxDataLen {
		return Record{}, fmt.Errorf("store: record data length %d exceeds %d", dataLen, maxDataLen)
	}
	if want := bodyHeaderLen + jobLen + keyLen + dataLen; len(b) != want {
		return Record{}, fmt.Errorf("store: record body length %d, header implies %d", len(b), want)
	}
	off := bodyHeaderLen
	r.Job = string(b[off : off+jobLen])
	off += jobLen
	r.Key = string(b[off : off+keyLen])
	off += keyLen
	if dataLen > 0 {
		r.Data = append([]byte(nil), b[off:off+dataLen]...)
	}
	if err := r.validate(); err != nil {
		return Record{}, err
	}
	return r, nil
}

// appendFrame appends the framed encoding of r to dst:
//
//	uint32le bodyLen | uint32le crc32c(body) | body
//
// The CRC covers the body only; the length field is validated by range
// checks at decode time and the CRC then proves the window it selected.
func appendFrame(dst []byte, r *Record) ([]byte, error) {
	if err := r.validate(); err != nil {
		return dst, err
	}
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0) // frame header placeholder
	dst = appendBody(dst, r)
	body := dst[start+frameHeaderLen:]
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(body)))
	binary.LittleEndian.PutUint32(dst[start+4:], crc32.Checksum(body, crcTable))
	return dst, nil
}

// decodeFrame decodes one framed record from the front of b and reports the
// bytes consumed. Any error means the prefix of b is not an intact frame —
// during replay that is a torn or corrupt tail, and the log is truncated at
// this offset.
func decodeFrame(b []byte) (Record, int, error) {
	if len(b) < frameHeaderLen {
		return Record{}, 0, fmt.Errorf("store: truncated frame header (%d bytes)", len(b))
	}
	bodyLen := int(binary.LittleEndian.Uint32(b[0:4]))
	if bodyLen < bodyHeaderLen || bodyLen > maxBodyLen {
		return Record{}, 0, fmt.Errorf("store: frame body length %d out of range [%d, %d]", bodyLen, bodyHeaderLen, maxBodyLen)
	}
	if len(b) < frameHeaderLen+bodyLen {
		return Record{}, 0, fmt.Errorf("store: truncated frame body (%d of %d bytes)", len(b)-frameHeaderLen, bodyLen)
	}
	body := b[frameHeaderLen : frameHeaderLen+bodyLen]
	if got, want := crc32.Checksum(body, crcTable), binary.LittleEndian.Uint32(b[4:8]); got != want {
		return Record{}, 0, fmt.Errorf("store: frame CRC mismatch (%08x != %08x)", got, want)
	}
	r, err := decodeBody(body)
	if err != nil {
		return Record{}, 0, err
	}
	return r, frameHeaderLen + bodyLen, nil
}
