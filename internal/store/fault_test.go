// Fault injection for the journal: simulate a crash mid-append by truncating
// or corrupting the WAL's last record at every byte offset, and require
// recovery to keep exactly the intact prefix, drop the torn tail, and leave
// the log appendable.
package store

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// buildWAL writes recs to a fresh journal and returns its path, raw bytes,
// and the byte offset where the last record begins.
func buildWAL(t *testing.T, recs []Record) (path string, raw []byte, lastOff int) {
	t.Helper()
	path = filepath.Join(t.TempDir(), "journal.wal")
	w, _, _, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range recs {
		if i == len(recs)-1 {
			fi, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			lastOff = int(fi.Size())
		}
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	raw, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return path, raw, lastOff
}

// recoverBytes writes data to a fresh journal file, opens it, and returns
// the replayed records plus stats; it also requires the file to be truncated
// back to exactly the intact prefix and to accept a post-recovery append.
func recoverBytes(t *testing.T, data []byte, wantPrefix []Record, wantPrefixLen int) ([]Record, RecoverStats) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "journal.wal")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	w, recs, stats, err := OpenWAL(path)
	if err != nil {
		t.Fatalf("OpenWAL on damaged log: %v", err)
	}
	defer w.Close()
	if !reflect.DeepEqual(recs, wantPrefix) {
		t.Fatalf("recovered %d records, want the %d-record intact prefix", len(recs), len(wantPrefix))
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() != int64(wantPrefixLen) {
		t.Fatalf("file is %v bytes after recovery, want truncation to %d (err %v)", fi.Size(), wantPrefixLen, err)
	}
	// The recovered log must be append-clean: a new record lands after the
	// prefix and the whole thing replays.
	post := Record{Kind: KindRunning, Job: "post", Key: "aaaabbbbccccdddd"}
	if err := w.Append(post); err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
	w.Close()
	_, recs2, stats2, err := OpenWAL(path)
	if err != nil || stats2.TornBytes != 0 {
		t.Fatalf("re-replay after recovery+append: %v, stats %+v", err, stats2)
	}
	if !reflect.DeepEqual(recs2, append(append([]Record{}, wantPrefix...), post)) {
		t.Fatalf("post-recovery append not replayed: %d records", len(recs2))
	}
	return recs, stats
}

// TestWALTornTailEveryOffset truncates the log inside the last record at
// every byte offset: recovery must always return the preceding records
// intact and report the torn remainder.
func TestWALTornTailEveryOffset(t *testing.T) {
	recs := testRecords()
	_, raw, lastOff := buildWAL(t, recs)
	prefix := recs[:len(recs)-1]
	for cut := lastOff; cut < len(raw); cut++ {
		_, stats := recoverBytes(t, raw[:cut], prefix, lastOff)
		if want := int64(cut - lastOff); stats.TornBytes != want {
			t.Fatalf("cut at %d: TornBytes = %d, want %d", cut, stats.TornBytes, want)
		}
	}
}

// TestWALCorruptTailEveryOffset flips a byte of the last record at every
// offset (header and body): recovery must drop the corrupt record, keep the
// prefix, and never serve damaged data.
func TestWALCorruptTailEveryOffset(t *testing.T) {
	recs := testRecords()
	_, raw, lastOff := buildWAL(t, recs)
	prefix := recs[:len(recs)-1]
	for off := lastOff; off < len(raw); off++ {
		damaged := append([]byte(nil), raw...)
		damaged[off] ^= 0x5a
		_, stats := recoverBytes(t, damaged, prefix, lastOff)
		if stats.TornBytes != int64(len(raw)-lastOff) {
			t.Fatalf("flip at %d: TornBytes = %d, want %d", off, stats.TornBytes, len(raw)-lastOff)
		}
	}
}

// TestWALMidLogCorruption flips a byte of the *first* record: everything
// from the damage onward is indistinguishable from a torn tail and must be
// dropped, leaving an empty-but-usable journal.
func TestWALMidLogCorruption(t *testing.T) {
	recs := testRecords()
	_, raw, _ := buildWAL(t, recs)
	damaged := append([]byte(nil), raw...)
	damaged[frameHeaderLen] ^= 0xff // first byte of the first record's body
	recoverBytes(t, damaged, nil, 0)
}

// TestWALGarbageFile feeds a journal of pure garbage: recovery yields zero
// records and a clean, appendable log.
func TestWALGarbageFile(t *testing.T) {
	garbage := []byte("this has never been a WAL, but it is long enough to look like one")
	recoverBytes(t, garbage, nil, 0)
}

// TestStoreRecoveryAfterTornTail runs the full-store path: a journal whose
// tail died mid-append must recover the intact prefix's job set, and the
// torn submitted record's job must simply not exist (it was never
// acknowledged).
func TestStoreRecoveryAfterTornTail(t *testing.T) {
	recs := []Record{
		{Kind: KindSubmitted, Job: "j1", Key: "aaaa1111bbbb2222", Data: []byte(`{"a":1}`)},
		{Kind: KindDone, Job: "j1", Key: "aaaa1111bbbb2222", Data: []byte(`{"ok":true}`)},
		{Kind: KindSubmitted, Job: "j2", Key: "cccc3333dddd4444", Data: []byte(`{"b":2}`)},
		{Kind: KindSubmitted, Job: "j3", Key: "eeee5555ffff6666", Data: []byte(`{"c":3}`)},
	}
	_, raw, lastOff := buildWAL(t, recs)

	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "journal.wal"), raw[:lastOff+3], 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir, 1<<20)
	if err != nil {
		t.Fatalf("Open over torn journal: %v", err)
	}
	defer st.Close()
	rec := st.Recovery()
	if rec.WAL.TornBytes != 3 || rec.WAL.Records != 3 {
		t.Errorf("recovery stats = %+v, want 3 records + 3 torn bytes", rec.WAL)
	}
	if len(rec.Done) != 1 || rec.Done[0].Job != "j1" {
		t.Errorf("Done = %+v, want j1", rec.Done)
	}
	if len(rec.Pending) != 1 || rec.Pending[0].Job != "j2" {
		t.Errorf("Pending = %+v, want exactly the acknowledged j2 (torn j3 dropped)", rec.Pending)
	}
}
