package store

import (
	"fmt"
	"os"
	"path/filepath"
)

// Store bundles the job journal and the content-addressed blob store under
// one data directory:
//
//	<dir>/journal.wal   CRC-framed job lifecycle log (wal.go)
//	<dir>/blobs/<key>   checksummed result blobs, LRU-bounded (blob.go)
//
// It is the unit the server wires in: Journal/PutBlob/GetBlob during
// operation, Recovery at startup, Compact once the recovered state has been
// re-instated.
type Store struct {
	dir      string
	wal      *WAL
	blobs    *BlobStore
	recovery *Recovery
}

// Recovery is the reduction of the replayed journal to the jobs that still
// matter: Pending holds the original submitted record of every job with no
// terminal record (in submission order — these are re-enqueued), Done
// holds the done record of every successfully finished job (these are
// re-advertised; their layouts live in the blob store), and Groups holds
// every batch/portfolio group record in journal order (the server rebuilds
// group scoreboards from these after the member jobs are re-instated).
type Recovery struct {
	Pending []Record
	Done    []Record
	Groups  []Record
	WAL     RecoverStats
}

// Open opens (creating if absent) the store under dir, replaying the
// journal and indexing the blobs. blobCacheBytes bounds the blob store
// (<= 0 selects its default).
func Open(dir string, blobCacheBytes int64) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty data directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create data dir: %w", err)
	}
	wal, recs, rstats, err := OpenWAL(filepath.Join(dir, "journal.wal"))
	if err != nil {
		return nil, err
	}
	blobs, err := OpenBlobStore(filepath.Join(dir, "blobs"), blobCacheBytes)
	if err != nil {
		wal.Close()
		return nil, err
	}
	rec := reduceRecords(recs)
	rec.WAL = rstats
	return &Store{dir: dir, wal: wal, blobs: blobs, recovery: rec}, nil
}

// reduceRecords folds a replayed record history into per-job outcomes,
// preserving first-submission order.
func reduceRecords(recs []Record) *Recovery {
	type jobState struct {
		submitted *Record
		done      *Record
		terminal  bool
	}
	byJob := make(map[string]*jobState)
	var order []string
	for i := range recs {
		r := &recs[i]
		st, ok := byJob[r.Job]
		if !ok {
			st = &jobState{}
			byJob[r.Job] = st
			order = append(order, r.Job)
		}
		switch r.Kind {
		case KindSubmitted:
			if st.submitted == nil {
				st.submitted = r
			}
		case KindDone:
			if st.done == nil {
				st.done = r
			}
			st.terminal = true
		case KindFailed, KindCanceled:
			st.terminal = true
		}
	}
	rec := &Recovery{}
	for i := range recs {
		if recs[i].Kind == KindGroup {
			rec.Groups = append(rec.Groups, recs[i])
		}
	}
	for _, job := range order {
		st := byJob[job]
		switch {
		case st.done != nil:
			rec.Done = append(rec.Done, *st.done)
		case !st.terminal && st.submitted != nil:
			rec.Pending = append(rec.Pending, *st.submitted)
		}
	}
	return rec
}

// Recovery returns what the journal replay found at Open time.
func (s *Store) Recovery() *Recovery { return s.recovery }

// Journal appends one lifecycle record durably.
func (s *Store) Journal(r Record) error { return s.wal.Append(r) }

// Compact rewrites the journal to exactly keep (see WAL.Compact).
func (s *Store) Compact(keep []Record) error { return s.wal.Compact(keep) }

// PutBlob stores a result blob under its content key.
func (s *Store) PutBlob(key string, data []byte) error { return s.blobs.Put(key, data) }

// GetBlob fetches a result blob, verifying its checksum.
func (s *Store) GetBlob(key string) ([]byte, bool) { return s.blobs.Get(key) }

// HasBlob reports whether a key is present without reading it.
func (s *Store) HasBlob(key string) bool { return s.blobs.Has(key) }

// Close releases the journal. Blob files need no teardown.
func (s *Store) Close() error { return s.wal.Close() }

// Stats is the store section of the daemon's /statsz.
type Stats struct {
	WALRecords       int64     `json:"wal_records"`
	WALBytes         int64     `json:"wal_bytes"`
	RecoveredPending int       `json:"recovered_pending"`
	RecoveredDone    int       `json:"recovered_done"`
	TornBytesDropped int64     `json:"torn_bytes_dropped"`
	Blobs            BlobStats `json:"disk_cache"`
}

// Stats snapshots journal and blob counters plus the recovery outcome.
func (s *Store) Stats() Stats {
	records, bytes := s.wal.Size()
	return Stats{
		WALRecords:       records,
		WALBytes:         bytes,
		RecoveredPending: len(s.recovery.Pending),
		RecoveredDone:    len(s.recovery.Done),
		TornBytesDropped: s.recovery.WAL.TornBytes,
		Blobs:            s.blobs.Stats(),
	}
}
