package store

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzWALDecode hammers the record codec: arbitrary bytes must never panic
// the frame decoder, any accepted frame must re-encode to the identical
// bytes (a true round trip), and a replay loop over arbitrary input must
// terminate having consumed a valid prefix.
func FuzzWALDecode(f *testing.F) {
	for _, r := range testRecords() {
		frame, err := appendFrame(nil, &r)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame)
		f.Add(frame[:len(frame)-1]) // torn tail
	}
	two, _ := appendFrame(nil, &Record{Kind: KindSubmitted, Job: "a", Key: "00ff00ff", Data: []byte("d")})
	two, _ = appendFrame(two, &Record{Kind: KindDone, Job: "a", Key: "00ff00ff"})
	f.Add(two)
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})
	f.Add(bytes.Repeat([]byte{0}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Replay loop: must terminate, consuming a decodable prefix.
		off := 0
		for off < len(data) {
			rec, n, err := decodeFrame(data[off:])
			if err != nil {
				break
			}
			if n <= 0 || off+n > len(data) {
				t.Fatalf("decodeFrame consumed %d bytes at offset %d of %d", n, off, len(data))
			}
			// Round trip: an accepted record re-encodes to the exact frame
			// bytes it was decoded from, and decodes back equal.
			re, err := appendFrame(nil, &rec)
			if err != nil {
				t.Fatalf("accepted record fails re-encode: %v (%+v)", err, rec)
			}
			if !bytes.Equal(re, data[off:off+n]) {
				t.Fatalf("re-encode differs from source frame at offset %d", off)
			}
			rec2, n2, err := decodeFrame(re)
			if err != nil || n2 != len(re) {
				t.Fatalf("re-decode failed: %v (n=%d of %d)", err, n2, len(re))
			}
			if !reflect.DeepEqual(rec, rec2) {
				t.Fatalf("round-trip mismatch: %+v vs %+v", rec, rec2)
			}
			off += n
		}
	})
}
