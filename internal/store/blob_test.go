package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// blobKey fabricates a valid (hex) content key distinguishable by i.
func blobKey(i int) string { return fmt.Sprintf("%064x", i+1) }

func openTestBlobs(t *testing.T, dir string, max int64) *BlobStore {
	t.Helper()
	s, err := OpenBlobStore(dir, max)
	if err != nil {
		t.Fatalf("OpenBlobStore: %v", err)
	}
	return s
}

// TestBlobRoundTrip stores and refetches blobs, in one process and across a
// reopen.
func TestBlobRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openTestBlobs(t, dir, 1<<20)
	want := []byte("layout bytes\nrow 0: ...\n")
	if err := s.Put(blobKey(0), want); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, ok := s.Get(blobKey(0))
	if !ok || !bytes.Equal(got, want) {
		t.Fatalf("Get = %q, %v; want stored bytes", got, ok)
	}
	if _, ok := s.Get(blobKey(1)); ok {
		t.Error("Get of absent key reported a hit")
	}
	// Identical re-put is a no-op (content addressing: first writer wins).
	if err := s.Put(blobKey(0), want); err != nil {
		t.Fatalf("re-Put: %v", err)
	}
	st := s.Stats()
	if st.Entries != 1 || st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v, want 1 entry / 1 hit / 1 miss", st)
	}

	// A fresh process must see the same content.
	s2 := openTestBlobs(t, dir, 1<<20)
	got, ok = s2.Get(blobKey(0))
	if !ok || !bytes.Equal(got, want) {
		t.Fatalf("reopened Get = %q, %v", got, ok)
	}
}

// TestBlobKeyValidation pins the path-safety gate.
func TestBlobKeyValidation(t *testing.T) {
	s := openTestBlobs(t, t.TempDir(), 1<<20)
	for _, key := range []string{"", "short", "../../../../etc/passwd", "ABCDEF0123456789", "0123456789abcdefg"} {
		if err := s.Put(key, []byte("x")); err == nil {
			t.Errorf("Put accepted invalid key %q", key)
		}
		if _, ok := s.Get(key); ok {
			t.Errorf("Get accepted invalid key %q", key)
		}
	}
}

// TestBlobLRUEviction fills the store past its byte bound and requires the
// least-recently-used blobs to be dropped, with recently-read blobs kept.
func TestBlobLRUEviction(t *testing.T) {
	payload := bytes.Repeat([]byte("p"), 100)
	per := int64(len(payload) + blobHeaderLen)
	s := openTestBlobs(t, t.TempDir(), 4*per)
	for i := 0; i < 4; i++ {
		if err := s.Put(blobKey(i), payload); err != nil {
			t.Fatal(err)
		}
	}
	// Touch blob 0 so blob 1 is now the LRU victim.
	if _, ok := s.Get(blobKey(0)); !ok {
		t.Fatal("blob 0 missing before eviction")
	}
	if err := s.Put(blobKey(4), payload); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(blobKey(1)); ok {
		t.Error("LRU blob 1 survived eviction")
	}
	for _, i := range []int{0, 2, 3, 4} {
		if _, ok := s.Get(blobKey(i)); !ok {
			t.Errorf("blob %d evicted, want kept", i)
		}
	}
	st := s.Stats()
	if st.Evictions != 1 || st.Bytes > st.MaxBytes {
		t.Errorf("stats = %+v, want 1 eviction within bound", st)
	}
}

// TestBlobLRUSurvivesReopen requires access order (persisted via mtimes) to
// drive eviction after a restart.
func TestBlobLRUSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	payload := bytes.Repeat([]byte("p"), 100)
	per := int64(len(payload) + blobHeaderLen)
	s := openTestBlobs(t, dir, 4*per)
	for i := 0; i < 3; i++ {
		if err := s.Put(blobKey(i), payload); err != nil {
			t.Fatal(err)
		}
	}
	// Make the access-order distinction robust to filesystem mtime
	// granularity, then touch blob 0.
	for i := 0; i < 3; i++ {
		old := time.Now().Add(-time.Hour).Add(time.Duration(i) * time.Minute)
		if err := os.Chtimes(filepath.Join(dir, blobKey(i)), old, old); err != nil {
			t.Fatal(err)
		}
	}
	s.Get(blobKey(0))

	s2 := openTestBlobs(t, dir, 2*per) // shrunk bound: must evict down to 2
	if _, ok := s2.Get(blobKey(1)); ok {
		t.Error("oldest-access blob 1 survived the shrunk bound")
	}
	for _, i := range []int{0, 2} {
		if _, ok := s2.Get(blobKey(i)); !ok {
			t.Errorf("blob %d evicted at reopen, want kept", i)
		}
	}
}

// TestBlobCorruptionIsAMiss flips payload bytes on disk and requires Get to
// refuse and delete the blob instead of serving it.
func TestBlobCorruptionIsAMiss(t *testing.T) {
	dir := t.TempDir()
	s := openTestBlobs(t, dir, 1<<20)
	if err := s.Put(blobKey(0), []byte("precious layout bytes")); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, blobKey(0))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(blobKey(0)); ok {
		t.Fatal("corrupt blob served as a hit")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("corrupt blob not deleted")
	}
	if s.Has(blobKey(0)) {
		t.Error("corrupt blob still indexed")
	}
}

// TestBlobOversizedSkipped requires a blob larger than the whole bound to be
// skipped rather than thrash the cache.
func TestBlobOversizedSkipped(t *testing.T) {
	s := openTestBlobs(t, t.TempDir(), 64)
	if err := s.Put(blobKey(0), bytes.Repeat([]byte("x"), 256)); err != nil {
		t.Fatalf("oversized Put errored: %v", err)
	}
	if s.Has(blobKey(0)) {
		t.Error("oversized blob was stored")
	}
	if st := s.Stats(); st.Oversized != 1 || st.Entries != 0 {
		t.Errorf("stats = %+v, want one oversized skip", st)
	}
}
