// Package seq implements the traditional sequential layout flow the paper
// compares against (its Figure 1, as embodied by the Texas Instruments
// production system): timing-blind annealing placement [6], then one-shot
// global routing [7], then segmented-channel detailed routing [11], then
// post-layout static timing analysis. Each stage commits before the next
// begins — the lack of feedback between stages is precisely the weakness the
// simultaneous approach addresses.
package seq

import (
	"math/rand"

	"repro/internal/arch"
	"repro/internal/droute"
	"repro/internal/fabric"
	"repro/internal/groute"
	"repro/internal/layout"
	"repro/internal/metrics"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/timing"
)

// Config tunes the sequential flow.
type Config struct {
	Seed          int64
	Place         place.Config
	RouteAttempts int         // detailed-routing ordering retries per channel (default 8)
	DrouteCost    droute.Cost // zero value selects droute.DefaultCost

	// TimingDriven enables the classic two-pass criticality-weighted
	// placement: place once, estimate net criticalities from the placement's
	// spatial extents, then re-place with critical nets weighted heavier.
	// The paper (§2.1) explains why even this stronger sequential baseline
	// struggles on row-based FPGAs: interconnect delay tracks antifuse
	// count, not length, so placement-level criticality estimates mislead.
	TimingDriven bool
	// CritWeight scales how much a fully critical net's wirelength is
	// amplified in the second pass (default 3).
	CritWeight float64

	// RouteBackend selects the full detailed-routing algorithm: the
	// paper-era ordered router (empty or droute.BackendOrdered), the
	// PathFinder-style negotiated router (droute.BackendNegotiated), or the
	// Lagrangian-relaxation net-parallel router (droute.BackendLagrange).
	// Every backend is deterministic for a fixed Seed regardless of
	// RouteWorkers or GOMAXPROCS.
	RouteBackend droute.Backend

	// Negotiated selects the negotiated backend when RouteBackend is unset.
	// Deprecated: kept for callers predating RouteBackend.
	Negotiated bool

	// RouteIters overrides the iteration cap of the negotiated and lagrange
	// backends (0 = the backend's default). Ignored by the ordered router.
	RouteIters int

	// RouteWorkers caps the detailed router's concurrency: channels
	// negotiated at once (negotiated), nets choosing tracks at once
	// (lagrange), or retry orderings evaluated at once (ordered). 0 =
	// GOMAXPROCS. Scheduling only; never affects results.
	RouteWorkers int

	// Metrics, when non-nil, receives per-phase wall-clock records for the
	// four sequential stages (place, global-route, detail-route, timing).
	// Collection never affects results.
	Metrics metrics.Collector
}

func (c *Config) setDefaults() {
	if c.RouteAttempts <= 0 {
		c.RouteAttempts = 8
	}
	if c.RouteBackend == "" && c.Negotiated {
		c.RouteBackend = droute.BackendNegotiated
	}
	if c.CritWeight <= 0 {
		c.CritWeight = 3
	}
	if c.DrouteCost == (droute.Cost{}) {
		c.DrouteCost = droute.DefaultCost()
	}
	if c.Place.Seed == 0 {
		c.Place.Seed = c.Seed
	}
}

// Result is a finished sequential layout.
type Result struct {
	P      *layout.Placement
	F      *fabric.Fabric
	Routes []fabric.NetRoute

	GlobalFailed  int // nets with no global route
	DetailFailed  int // channel needs with no detailed route
	UnroutedNets  int // nets lacking a complete detailed route (the paper's D)
	FullyRouted   bool
	WCD           float64 // worst-case delay (estimates fill in for unrouted nets)
	PlaceResult   place.Result
	CriticalCells []int32
}

// Run executes the complete sequential flow.
func Run(a *arch.Arch, nl *netlist.Netlist, cfg Config) (*Result, error) {
	cfg.setDefaults()

	placeDone := metrics.StartPhase(cfg.Metrics, metrics.PhasePlace)
	p, pres, err := place.Place(a, nl, cfg.Place)
	if err != nil {
		return nil, err
	}
	if cfg.TimingDriven {
		weights, werr := criticalityWeights(nl, p, cfg.CritWeight)
		if werr != nil {
			return nil, werr
		}
		pc := cfg.Place
		pc.Seed++
		pc.NetWeights = weights
		p, pres, err = place.Place(a, nl, pc)
		if err != nil {
			return nil, err
		}
	}
	placeDone()

	f := fabric.New(a)
	routes := make([]fabric.NetRoute, nl.NumNets())
	grouteDone := metrics.StartPhase(cfg.Metrics, metrics.PhaseGlobalRoute)
	gFailed := groute.RouteAll(f, p, routes)
	grouteDone()
	backend, err := droute.ParseBackend(string(cfg.RouteBackend))
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 17))
	var dFailed int
	drouteDone := metrics.StartPhase(cfg.Metrics, metrics.PhaseDetailRoute)
	switch backend {
	case droute.BackendNegotiated:
		dFailed = droute.RouteAllNegotiated(f, routes, cfg.DrouteCost, droute.NegotiateConfig{
			MaxIters:         cfg.RouteIters,
			Seed:             cfg.Seed,
			FallbackAttempts: cfg.RouteAttempts,
			Workers:          cfg.RouteWorkers,
		})
	case droute.BackendLagrange:
		dFailed = droute.RouteAllLagrange(f, routes, cfg.DrouteCost, droute.LagrangeConfig{
			MaxIters:         cfg.RouteIters,
			Seed:             cfg.Seed,
			FallbackAttempts: cfg.RouteAttempts,
			Workers:          cfg.RouteWorkers,
		})
	default:
		dFailed = droute.RouteAllDetailedWorkers(f, routes, cfg.DrouteCost, cfg.RouteAttempts, rng, cfg.RouteWorkers)
	}
	drouteDone()

	res := &Result{
		P:            p,
		F:            f,
		Routes:       routes,
		GlobalFailed: len(gFailed),
		DetailFailed: dFailed,
		PlaceResult:  pres,
	}
	for id := range routes {
		if !routes[id].DetailDone() {
			res.UnroutedNets++
		}
	}
	res.FullyRouted = res.UnroutedNets == 0

	timingDone := metrics.StartPhase(cfg.Metrics, metrics.PhaseTiming)
	an, err := timing.NewAnalyzer(nl)
	if err != nil {
		return nil, err
	}
	an.Begin()
	for id := range routes {
		if len(nl.Nets[id].Sinks) == 0 {
			continue
		}
		var d []float64
		if routes[id].DetailDone() {
			d, err = timing.NetDelays(p, int32(id), &routes[id], 1.0)
			if err != nil {
				return nil, err
			}
		} else {
			d = timing.EstimateDelays(p, int32(id))
		}
		an.SetNetDelays(int32(id), d)
	}
	res.WCD = an.Propagate()
	an.Commit()
	res.CriticalCells = an.CriticalPath()
	timingDone()
	return res, nil
}

// criticalityWeights derives per-net placement weights from estimated delays
// on the first-pass placement (no routing exists yet, exactly the
// information a sequential timing-driven placer has).
func criticalityWeights(nl *netlist.Netlist, p *layout.Placement, critWeight float64) ([]float64, error) {
	an, err := timing.NewAnalyzer(nl)
	if err != nil {
		return nil, err
	}
	an.Begin()
	for id := range nl.Nets {
		if len(nl.Nets[id].Sinks) == 0 {
			continue
		}
		an.SetNetDelays(int32(id), timing.EstimateDelays(p, int32(id)))
	}
	an.Propagate()
	an.Commit()
	// One shot, no history to damp: the shared extractor with damping 0
	// yields exactly the instantaneous criticalities.
	ext := timing.NewCriticality(an, 0)
	ext.Update()
	weights := make([]float64, nl.NumNets())
	for i, c := range ext.Values() {
		weights[i] = 1 + critWeight*c
	}
	return weights, nil
}
