package seq

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/netgen"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/timing"
)

func testDesign(t *testing.T) (*arch.Arch, *netlist.Netlist) {
	t.Helper()
	nl, err := netgen.Generate(netgen.Params{Name: "t", Inputs: 4, Outputs: 3, Seq: 2, Comb: 30, Seed: 61})
	if err != nil {
		t.Fatal(err)
	}
	return arch.MustNew(arch.Default(5, 14, 20)), nl
}

func fastCfg(seed int64) Config {
	return Config{
		Seed:          seed,
		Place:         place.Config{Seed: seed, MovesPerCell: 5, MaxTemps: 50},
		RouteAttempts: 4,
	}
}

// TestSequentialFlowStages exercises the paper's Figure-1 pipeline: placement
// then global routing then detailed routing then timing, each stage's output
// consumed by the next.
func TestSequentialFlowStages(t *testing.T) {
	a, nl := testDesign(t)
	res, err := Run(a, nl, fastCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := res.P.Validate(); err != nil {
		t.Fatalf("placement invalid: %v", err)
	}
	if err := res.F.CheckConsistent(res.Routes); err != nil {
		t.Fatalf("fabric inconsistent: %v", err)
	}
	if !res.FullyRouted {
		t.Fatalf("generous fabric not fully routed: global=%d detail=%d", res.GlobalFailed, res.DetailFailed)
	}
	if res.WCD <= 0 {
		t.Error("no worst-case delay")
	}
	if len(res.CriticalCells) < 2 {
		t.Error("no critical path")
	}
}

func TestSequentialDeterministic(t *testing.T) {
	a, nl := testDesign(t)
	r1, err := Run(a, nl, fastCfg(5))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(a, nl, fastCfg(5))
	if err != nil {
		t.Fatal(err)
	}
	if r1.WCD != r2.WCD || r1.UnroutedNets != r2.UnroutedNets {
		t.Errorf("same seed diverged: %v/%d vs %v/%d", r1.WCD, r1.UnroutedNets, r2.WCD, r2.UnroutedNets)
	}
}

func TestSequentialFailsGracefullyWhenStarved(t *testing.T) {
	nl, err := netgen.Generate(netgen.Params{Name: "t", Inputs: 4, Outputs: 3, Seq: 2, Comb: 30, Seed: 61})
	if err != nil {
		t.Fatal(err)
	}
	a := arch.MustNew(arch.Default(5, 14, 2)) // starved: 2 tracks/channel
	res, err := Run(a, nl, fastCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.FullyRouted {
		t.Error("2 tracks/channel should not route this design")
	}
	if res.UnroutedNets == 0 {
		t.Error("unrouted count not reported")
	}
	// WCD must still be defined (estimates for unrouted nets).
	if res.WCD <= 0 {
		t.Error("WCD undefined on partial layout")
	}
}

// Delays reported by the flow must equal an independent recomputation from
// the final layout.
func TestSequentialTimingMatchesRecompute(t *testing.T) {
	a, nl := testDesign(t)
	res, err := Run(a, nl, fastCfg(9))
	if err != nil {
		t.Fatal(err)
	}
	if !res.FullyRouted {
		t.Skip("not fully routed at this seed")
	}
	an, err := timing.NewAnalyzer(nl)
	if err != nil {
		t.Fatal(err)
	}
	an.Begin()
	for id := range res.Routes {
		if len(nl.Nets[id].Sinks) == 0 {
			continue
		}
		d, err := timing.NetDelays(res.P, int32(id), &res.Routes[id], 1.0)
		if err != nil {
			t.Fatal(err)
		}
		an.SetNetDelays(int32(id), d)
	}
	got := an.Propagate()
	an.Commit()
	if got != res.WCD {
		t.Errorf("flow WCD %v, recompute %v", res.WCD, got)
	}
}

// The classic criticality-weighted two-pass placement is a stronger
// baseline, but on row-based FPGAs its placement-level delay estimates are
// structurally misleading (paper §2.1). It must still run correctly.
func TestTimingDrivenVariant(t *testing.T) {
	a, nl := testDesign(t)
	cfg := fastCfg(3)
	cfg.TimingDriven = true
	res, err := Run(a, nl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.P.Validate(); err != nil {
		t.Fatal(err)
	}
	if !res.FullyRouted {
		t.Skipf("timing-driven variant unrouted at this seed")
	}
	if res.WCD <= 0 {
		t.Error("no WCD")
	}
	// Same seed, plain flow: results must differ (the weights did something).
	plain, err := Run(a, nl, fastCfg(3))
	if err != nil {
		t.Fatal(err)
	}
	if plain.WCD == res.WCD {
		t.Log("note: timing-driven pass produced identical WCD (possible but unlikely)")
	}
}

func TestNegotiatedRouterVariant(t *testing.T) {
	a, nl := testDesign(t)
	cfg := fastCfg(1)
	cfg.Negotiated = true
	res, err := Run(a, nl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.F.CheckConsistent(res.Routes); err != nil {
		t.Fatal(err)
	}
	if !res.FullyRouted {
		t.Errorf("negotiated router failed on generous fabric: %d unrouted", res.UnroutedNets)
	}
	// Head-to-head on a starved fabric: negotiation must not be worse.
	tight := arch.MustNew(arch.Default(5, 14, 6))
	plain, err := Run(tight, nl, fastCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	neg := fastCfg(1)
	neg.Negotiated = true
	negRes, err := Run(tight, nl, neg)
	if err != nil {
		t.Fatal(err)
	}
	if err := negRes.F.CheckConsistent(negRes.Routes); err != nil {
		t.Fatal(err)
	}
	// Deeply infeasible instances are outside negotiation's value
	// proposition (it targets order-sensitive feasible ones), so only log
	// the comparison here; the head-to-head guarantees live in
	// internal/droute's negotiation tests.
	t.Logf("starved fabric: ordered %d unrouted, negotiated %d unrouted", plain.UnroutedNets, negRes.UnroutedNets)
}

func TestLagrangeRouterVariant(t *testing.T) {
	a, nl := testDesign(t)
	cfg := fastCfg(1)
	cfg.RouteBackend = "lagrange"
	res, err := Run(a, nl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.F.CheckConsistent(res.Routes); err != nil {
		t.Fatal(err)
	}
	if !res.FullyRouted {
		t.Errorf("lagrange router failed on generous fabric: %d unrouted", res.UnroutedNets)
	}
	// The choice pass is net-parallel: every worker count must reproduce the
	// exact same layout (full-flow extension of the droute invariance tests).
	for _, workers := range []int{1, 4, 16} {
		c := fastCfg(1)
		c.RouteBackend = "lagrange"
		c.RouteWorkers = workers
		r, err := Run(a, nl, c)
		if err != nil {
			t.Fatal(err)
		}
		if r.WCD != res.WCD || r.UnroutedNets != res.UnroutedNets {
			t.Errorf("workers=%d diverged: %v/%d vs %v/%d",
				workers, r.WCD, r.UnroutedNets, res.WCD, res.UnroutedNets)
		}
	}
	t.Logf("generous fabric: lagrange WCD %v", res.WCD)
}

// An unknown backend must fail fast with a configuration error, not fall
// through to some default router.
func TestUnknownRouteBackendRejected(t *testing.T) {
	a, nl := testDesign(t)
	cfg := fastCfg(1)
	cfg.RouteBackend = "pathfinder"
	if _, err := Run(a, nl, cfg); err == nil {
		t.Fatal("Run accepted route backend \"pathfinder\"")
	}
}

// The deprecated Negotiated flag must keep selecting the negotiated backend.
func TestNegotiatedFlagMapsToBackend(t *testing.T) {
	a, nl := testDesign(t)
	old := fastCfg(4)
	old.Negotiated = true
	r1, err := Run(a, nl, old)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastCfg(4)
	cfg.RouteBackend = "negotiated"
	r2, err := Run(a, nl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.WCD != r2.WCD || r1.UnroutedNets != r2.UnroutedNets {
		t.Errorf("Negotiated flag and RouteBackend diverged: %v/%d vs %v/%d",
			r1.WCD, r1.UnroutedNets, r2.WCD, r2.UnroutedNets)
	}
}
