// Package partition implements Fiduccia-Mattheyses min-cut bipartitioning
// (the paper's references [19][20], which it cites as the basis of FPGA
// partitioning practice) with recursive bisection for k-way partitions, plus
// netlist splitting: turning one design into per-chip netlists whose cut
// signals become I/O pads. Very large logic circuits require multiple FPGA
// chips (paper §2.2); this package provides that front-end to the layout
// flows.
package partition

import (
	"fmt"
	"math/rand"

	"repro/internal/netlist"
)

// Config tunes partitioning.
type Config struct {
	Parts      int     // number of partitions; must be a power of two (default 2)
	BalanceTol float64 // allowed relative deviation from perfect balance (default 0.10)
	Passes     int     // max FM improvement passes per bisection (default 12)
	Seed       int64
}

func (c *Config) setDefaults() {
	if c.Parts <= 0 {
		c.Parts = 2
	}
	if c.BalanceTol <= 0 {
		c.BalanceTol = 0.10
	}
	if c.Passes <= 0 {
		c.Passes = 12
	}
}

// Stats reports a finished partitioning.
type Stats struct {
	CutNets   int   // nets spanning more than one partition
	PartSizes []int // cells per partition
	Passes    int   // total FM passes executed
}

// Partition assigns every cell to one of cfg.Parts partitions, minimizing
// the number of cut nets under the balance constraint. The result maps cell
// id to partition id.
func Partition(nl *netlist.Netlist, cfg Config) ([]int, Stats, error) {
	cfg.setDefaults()
	if cfg.Parts&(cfg.Parts-1) != 0 {
		return nil, Stats{}, fmt.Errorf("partition: parts %d is not a power of two", cfg.Parts)
	}
	if cfg.Parts > nl.NumCells() {
		return nil, Stats{}, fmt.Errorf("partition: %d parts for %d cells", cfg.Parts, nl.NumCells())
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	part := make([]int, nl.NumCells())
	var stats Stats
	// Recursive bisection: at each level, split every current part in two.
	for parts := 1; parts < cfg.Parts; parts *= 2 {
		for p := 0; p < parts; p++ {
			var members []int32
			for c := range part {
				if part[c] == p {
					members = append(members, int32(c))
				}
			}
			passes := bisect(nl, part, members, p, p+parts, cfg, rng)
			stats.Passes += passes
		}
	}
	stats.PartSizes = make([]int, cfg.Parts)
	for _, p := range part {
		stats.PartSizes[p]++
	}
	stats.CutNets = CutSize(nl, part)
	return part, stats, nil
}

// CutSize counts nets whose pins span more than one partition.
func CutSize(nl *netlist.Netlist, part []int) int {
	cut := 0
	for i := range nl.Nets {
		n := &nl.Nets[i]
		p0 := part[n.Driver.Cell]
		for _, s := range n.Sinks {
			if part[s.Cell] != p0 {
				cut++
				break
			}
		}
	}
	return cut
}

// bisect splits members (currently all in part lo) between lo and hi using
// FM passes; returns the number of passes run.
func bisect(nl *netlist.Netlist, part []int, members []int32, lo, hi int, cfg Config, rng *rand.Rand) int {
	if len(members) < 2 {
		return 0
	}
	// Random balanced initial split.
	perm := rng.Perm(len(members))
	for i, idx := range perm {
		if i < len(members)/2 {
			part[members[idx]] = lo
		} else {
			part[members[idx]] = hi
		}
	}
	f := newFM(nl, part, members, lo, hi, cfg)
	passes := 0
	for ; passes < cfg.Passes; passes++ {
		if gain := f.pass(); gain <= 0 {
			passes++
			break
		}
	}
	return passes
}

// fm holds the state of one bipartitioning instance. Only nets with at least
// one pin among members participate; pins on cells outside members are fixed
// anchors counted in the distribution but never moved.
type fm struct {
	nl   *netlist.Netlist
	part []int
	lo   int
	hi   int

	members []int32
	inSet   []bool  // cell id -> participates
	nets    []int32 // participating nets
	netIdx  []int32 // net id -> index into counts, or -1

	cnt [2][]int32 // per participating net: pins in lo (0) and hi (1)

	maxCells int // balance bound: max cells allowed on one side

	// Gain bucket structure.
	maxGain int
	buckets [][]int32 // gain+maxGain -> stack of cells (lazily cleaned)
	gain    []int32   // per cell
	locked  []bool
	inLo    int // current number of member cells in lo
}

func newFM(nl *netlist.Netlist, part []int, members []int32, lo, hi int, cfg Config) *fm {
	f := &fm{nl: nl, part: part, lo: lo, hi: hi, members: members}
	f.inSet = make([]bool, nl.NumCells())
	for _, c := range members {
		f.inSet[c] = true
	}
	f.netIdx = make([]int32, nl.NumNets())
	for i := range f.netIdx {
		f.netIdx[i] = -1
	}
	for i := range nl.Nets {
		n := &nl.Nets[i]
		touches := f.inSet[n.Driver.Cell]
		for _, s := range n.Sinks {
			if f.inSet[s.Cell] {
				touches = true
				break
			}
		}
		if touches {
			f.netIdx[i] = int32(len(f.nets))
			f.nets = append(f.nets, int32(i))
		}
	}
	f.cnt[0] = make([]int32, len(f.nets))
	f.cnt[1] = make([]int32, len(f.nets))
	half := len(members) / 2
	slack := int(float64(len(members)) * cfg.BalanceTol / 2)
	f.maxCells = half + 1 + slack
	f.gain = make([]int32, nl.NumCells())
	f.locked = make([]bool, nl.NumCells())
	maxDeg := 1
	for _, c := range members {
		if d := nl.Cells[c].NumPins(); d > maxDeg {
			maxDeg = d
		}
	}
	f.maxGain = maxDeg
	f.buckets = make([][]int32, 2*maxDeg+1)
	return f
}

// side returns 0 for lo, 1 for hi.
func (f *fm) side(cell int32) int {
	if f.part[cell] == f.lo {
		return 0
	}
	return 1
}

// recount initializes the per-net pin distributions and each member's gain.
func (f *fm) recount() {
	for i := range f.nets {
		f.cnt[0][i], f.cnt[1][i] = 0, 0
	}
	f.inLo = 0
	forEachPinCell := func(netID int32, fn func(cell int32)) {
		n := &f.nl.Nets[netID]
		fn(n.Driver.Cell)
		for _, s := range n.Sinks {
			fn(s.Cell)
		}
	}
	for i, netID := range f.nets {
		forEachPinCell(netID, func(cell int32) {
			f.cnt[f.side(cell)][i]++
		})
	}
	for _, c := range f.members {
		if f.side(c) == 0 {
			f.inLo++
		}
	}
	for i := range f.buckets {
		f.buckets[i] = f.buckets[i][:0]
	}
	for _, c := range f.members {
		f.locked[c] = false
		f.gain[c] = f.computeGain(c)
		f.pushBucket(c)
	}
}

// computeGain is the FM gain of moving cell c to the other side.
func (f *fm) computeGain(c int32) int32 {
	from := f.side(c)
	to := 1 - from
	g := int32(0)
	cell := &f.nl.Cells[c]
	visit := func(netID int32) {
		if netID < 0 {
			return
		}
		i := f.netIdx[netID]
		if i < 0 {
			return
		}
		if f.cnt[from][i] == 1 {
			g++
		}
		if f.cnt[to][i] == 0 {
			g--
		}
	}
	if cell.Out >= 0 {
		visit(cell.Out)
	}
	for _, in := range cell.In {
		visit(in)
	}
	return g
}

func (f *fm) pushBucket(c int32) {
	idx := int(f.gain[c]) + f.maxGain
	f.buckets[idx] = append(f.buckets[idx], c)
}

// popBest removes and returns the highest-gain unlocked cell whose move
// keeps balance; returns -1 when none.
func (f *fm) popBest() int32 {
	for idx := len(f.buckets) - 1; idx >= 0; idx-- {
		b := f.buckets[idx]
		for len(b) > 0 {
			c := b[len(b)-1]
			b = b[:len(b)-1]
			f.buckets[idx] = b
			// Lazy deletion: skip stale entries.
			if f.locked[c] || int(f.gain[c])+f.maxGain != idx {
				continue
			}
			// Balance: moving from lo must keep lo nonempty within bounds.
			if f.side(c) == 0 {
				if len(f.members)-(f.inLo-1) > f.maxCells || f.inLo-1 < 1 {
					continue
				}
			} else {
				if f.inLo+1 > f.maxCells {
					continue
				}
			}
			return c
		}
	}
	return -1
}

// move applies the move of cell c, updating distributions and neighbor gains.
func (f *fm) move(c int32) {
	from := f.side(c)
	to := 1 - from
	cell := &f.nl.Cells[c]
	adjust := func(netID int32) {
		if netID < 0 {
			return
		}
		i := f.netIdx[netID]
		if i < 0 {
			return
		}
		// Before the move (standard FM gain-update rules).
		if f.cnt[to][i] == 0 {
			f.bumpNetGains(netID, +1) // net was uncut: all free cells on it gain
		} else if f.cnt[to][i] == 1 {
			f.bumpSoleCellGain(netID, to, -1)
		}
		f.cnt[from][i]--
		f.cnt[to][i]++
		if f.cnt[from][i] == 0 {
			f.bumpNetGains(netID, -1)
		} else if f.cnt[from][i] == 1 {
			f.bumpSoleCellGain(netID, from, +1)
		}
	}
	f.locked[c] = true
	if from == 0 {
		f.inLo--
		f.part[c] = f.hi
	} else {
		f.inLo++
		f.part[c] = f.lo
	}
	if cell.Out >= 0 {
		adjust(cell.Out)
	}
	for _, in := range cell.In {
		adjust(in)
	}
}

// bumpNetGains adds delta to the gain of every free member cell on the net.
func (f *fm) bumpNetGains(netID int32, delta int32) {
	n := &f.nl.Nets[netID]
	f.bumpCell(n.Driver.Cell, delta)
	for _, s := range n.Sinks {
		f.bumpCell(s.Cell, delta)
	}
}

// bumpSoleCellGain adds delta to the single free cell on the given side of
// the net, if any.
func (f *fm) bumpSoleCellGain(netID int32, side int, delta int32) {
	n := &f.nl.Nets[netID]
	try := func(cell int32) {
		if f.inSet[cell] && !f.locked[cell] && f.side(cell) == side {
			f.bumpCell(cell, delta)
		}
	}
	try(n.Driver.Cell)
	for _, s := range n.Sinks {
		try(s.Cell)
	}
}

func (f *fm) bumpCell(cell int32, delta int32) {
	if !f.inSet[cell] || f.locked[cell] {
		return
	}
	f.gain[cell] += delta
	f.pushBucket(cell)
}

// pass runs one FM pass: tentatively move every cell once in best-gain
// order, then keep the prefix with the best cumulative gain. Returns that
// best gain (0 means the pass found no improvement and was fully undone).
func (f *fm) pass() int {
	f.recount()
	type rec struct{ cell int32 }
	var order []rec
	cum, best, bestAt := 0, 0, -1
	for {
		c := f.popBest()
		if c < 0 {
			break
		}
		cum += int(f.gain[c])
		f.move(c)
		order = append(order, rec{c})
		if cum > best {
			best = cum
			bestAt = len(order) - 1
		}
	}
	// Undo moves past the best prefix.
	for i := len(order) - 1; i > bestAt; i-- {
		c := order[i].cell
		if f.part[c] == f.lo {
			f.part[c] = f.hi
		} else {
			f.part[c] = f.lo
		}
	}
	return best
}
