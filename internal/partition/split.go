package partition

import (
	"fmt"

	"repro/internal/netlist"
)

// Split materializes per-chip netlists from a partition assignment. A cut
// net keeps its driver in the driver's chip, which gains an output pad
// ("xo_<net>") exporting the signal; every other chip with sinks gains an
// input pad ("xi_<net>") re-driving the net locally. The resulting netlists
// are independently valid and placeable-and-routable; inter-chip timing is
// outside the single-chip layout problem (paper §2.2: partitioners must
// weigh intra- vs inter-chip delays).
func Split(nl *netlist.Netlist, part []int, parts int) ([]*netlist.Netlist, error) {
	if len(part) != nl.NumCells() {
		return nil, fmt.Errorf("partition: assignment covers %d of %d cells", len(part), nl.NumCells())
	}
	builders := make([]*netlist.Builder, parts)
	for p := range builders {
		builders[p] = netlist.NewBuilder(fmt.Sprintf("%s_chip%d", nl.Name, p))
	}
	// Which chips need an import of each net.
	needsImport := make([][]bool, parts)
	for p := range needsImport {
		needsImport[p] = make([]bool, nl.NumNets())
	}
	exported := make([]bool, nl.NumNets())
	for i := range nl.Nets {
		n := &nl.Nets[i]
		home := part[n.Driver.Cell]
		for _, s := range n.Sinks {
			if p := part[s.Cell]; p != home {
				needsImport[p][i] = true
				exported[i] = true
			}
		}
	}
	for id := range nl.Cells {
		c := &nl.Cells[id]
		p := part[id]
		if p < 0 || p >= parts {
			return nil, fmt.Errorf("partition: cell %q assigned to invalid part %d", c.Name, p)
		}
		out := ""
		if c.Out >= 0 {
			out = nl.Nets[c.Out].Name
		}
		ins := make([]string, len(c.In))
		for i, in := range c.In {
			if in >= 0 {
				ins[i] = nl.Nets[in].Name
			}
		}
		builders[p].AddCell(c.Name, c.Type, c.Delay, out, ins...)
	}
	for i := range nl.Nets {
		if !exported[i] {
			continue
		}
		name := nl.Nets[i].Name
		home := part[nl.Nets[i].Driver.Cell]
		builders[home].Output("xo_"+name, name)
		for p := 0; p < parts; p++ {
			if needsImport[p][i] {
				builders[p].Input("xi_"+name, name)
			}
		}
	}
	out := make([]*netlist.Netlist, parts)
	for p := range builders {
		chip, err := builders[p].Build()
		if err != nil {
			return nil, fmt.Errorf("partition: chip %d: %w", p, err)
		}
		out[p] = chip
	}
	return out, nil
}
