package partition

import (
	"testing"

	"repro/internal/netlist"
)

func TestSplitTwoChips(t *testing.T) {
	nl := twoClusters(t)
	part, stats, err := Partition(nl, Config{Parts: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	chips, err := Split(nl, part, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(chips) != 2 {
		t.Fatalf("%d chips", len(chips))
	}
	totalCells := 0
	xo, xi := 0, 0
	for p, chip := range chips {
		if err := chip.Validate(); err != nil {
			t.Fatalf("chip %d invalid: %v", p, err)
		}
		for i := range chip.Cells {
			name := chip.Cells[i].Name
			switch {
			case len(name) > 3 && name[:3] == "xo_":
				xo++
			case len(name) > 3 && name[:3] == "xi_":
				xi++
			default:
				totalCells++
			}
		}
	}
	if totalCells != nl.NumCells() {
		t.Errorf("original cells across chips = %d, want %d", totalCells, nl.NumCells())
	}
	// Each cut net gets exactly one export and at least one import.
	if xo != stats.CutNets {
		t.Errorf("exports = %d, cut nets = %d", xo, stats.CutNets)
	}
	if xi < stats.CutNets {
		t.Errorf("imports = %d < cut nets %d", xi, stats.CutNets)
	}
}

func TestSplitFourChips(t *testing.T) {
	nl := twoClusters(t)
	part, _, err := Partition(nl, Config{Parts: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	chips, err := Split(nl, part, 4)
	if err != nil {
		t.Fatal(err)
	}
	for p, chip := range chips {
		if err := chip.Validate(); err != nil {
			t.Fatalf("chip %d invalid: %v", p, err)
		}
	}
}

func TestSplitPreservesConnectivitySemantics(t *testing.T) {
	// Hand-build: a -> g -> b with the two gates forced into separate chips.
	b := netlist.NewBuilder("x")
	b.Input("pi", "a")
	b.Comb("g1", 1000, "m", "a")
	b.Comb("g2", 1000, "y", "m")
	b.Output("po", "y")
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	part := make([]int, nl.NumCells())
	part[nl.CellID("g2")] = 1
	part[nl.CellID("po")] = 1
	chips, err := Split(nl, part, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Chip 0 must export m; chip 1 must import it.
	if chips[0].CellID("xo_m") < 0 {
		t.Error("chip 0 missing export pad for m")
	}
	if chips[1].CellID("xi_m") < 0 {
		t.Error("chip 1 missing import pad for m")
	}
	// Chip 1's g2 must be fed by the import.
	c1 := chips[1]
	g2 := c1.CellID("g2")
	in := c1.Cells[g2].In[0]
	if c1.Nets[in].Name != "m" {
		t.Errorf("g2 input net %q", c1.Nets[in].Name)
	}
	if c1.Cells[c1.Nets[in].Driver.Cell].Name != "xi_m" {
		t.Error("m not driven by import pad in chip 1")
	}
}

func TestSplitBadAssignment(t *testing.T) {
	nl := twoClusters(t)
	part := make([]int, nl.NumCells())
	part[0] = 9
	if _, err := Split(nl, part, 2); err == nil {
		t.Error("invalid part id accepted")
	}
	if _, err := Split(nl, part[:3], 2); err == nil {
		t.Error("short assignment accepted")
	}
}
