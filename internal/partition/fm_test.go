package partition

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/netgen"
	"repro/internal/netlist"
)

func testNetlist(t *testing.T, comb int, seed int64) *netlist.Netlist {
	t.Helper()
	nl, err := netgen.Generate(netgen.Params{Name: "pt", Inputs: 6, Outputs: 4, Seq: 3, Comb: comb, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return nl
}

// twoClusters builds a netlist with two dense clusters joined by exactly one
// net; FM must find the (nearly) ideal cut.
func twoClusters(t *testing.T) *netlist.Netlist {
	t.Helper()
	b := netlist.NewBuilder("clusters")
	mk := func(prefix string) string {
		b.Input(prefix+"_pi", prefix+"_n0")
		for i := 0; i < 12; i++ {
			in1 := prefix + "_n" + itoa(i)
			in2 := prefix + "_n" + itoa(i/2)
			b.Comb(prefix+"_g"+itoa(i), 1000, prefix+"_n"+itoa(i+1), in1, in2)
		}
		b.Output(prefix+"_po", prefix+"_n12")
		return prefix + "_n12"
	}
	a := mk("a")
	_ = mk("b")
	// Single bridge net between the clusters.
	b.Comb("bridge", 1000, "bridge_out", a, "b_n3")
	b.Output("bridge_po", "bridge_out")
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return nl
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [8]byte
	p := len(buf)
	for i > 0 {
		p--
		buf[p] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[p:])
}

func TestBipartitionClusters(t *testing.T) {
	nl := twoClusters(t)
	part, stats, err := Partition(nl, Config{Parts: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// The clusters are joined by the bridge cell: an ideal cut severs at most
	// a handful of nets. Random balanced cuts on this graph run ~20+.
	if stats.CutNets > 6 {
		t.Errorf("cut = %d, expected near-ideal (<= 6)", stats.CutNets)
	}
	// Cells of cluster "a" should be (almost) entirely on one side.
	aSide := map[int]int{}
	for id := range nl.Cells {
		if len(nl.Cells[id].Name) > 1 && nl.Cells[id].Name[0] == 'a' {
			aSide[part[id]]++
		}
	}
	if len(aSide) > 1 {
		minority := minInt(aSide[0], aSide[1])
		if minority > 2 {
			t.Errorf("cluster a split %v", aSide)
		}
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestPartitionBalance(t *testing.T) {
	nl := testNetlist(t, 60, 7)
	for _, parts := range []int{2, 4} {
		part, stats, err := Partition(nl, Config{Parts: parts, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		if len(stats.PartSizes) != parts {
			t.Fatalf("parts = %d", len(stats.PartSizes))
		}
		ideal := nl.NumCells() / parts
		for p, size := range stats.PartSizes {
			if size < ideal*7/10 || size > ideal*13/10+1 {
				t.Errorf("parts=%d: part %d size %d vs ideal %d", parts, p, size, ideal)
			}
		}
		if got := CutSize(nl, part); got != stats.CutNets {
			t.Errorf("reported cut %d, recount %d", stats.CutNets, got)
		}
	}
}

func TestPartitionBeatsRandom(t *testing.T) {
	nl := testNetlist(t, 80, 9)
	_, stats, err := Partition(nl, Config{Parts: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Average random balanced cut.
	rng := rand.New(rand.NewSource(4))
	total := 0
	const trials = 10
	for i := 0; i < trials; i++ {
		part := make([]int, nl.NumCells())
		perm := rng.Perm(nl.NumCells())
		for j, idx := range perm {
			if j >= nl.NumCells()/2 {
				part[idx] = 1
			}
		}
		total += CutSize(nl, part)
	}
	avgRandom := total / trials
	if stats.CutNets >= avgRandom {
		t.Errorf("FM cut %d not better than random average %d", stats.CutNets, avgRandom)
	}
	if stats.CutNets > avgRandom/2 {
		t.Errorf("FM cut %d, want < half of random %d", stats.CutNets, avgRandom)
	}
}

func TestPartitionErrors(t *testing.T) {
	nl := testNetlist(t, 20, 11)
	if _, _, err := Partition(nl, Config{Parts: 3}); err == nil {
		t.Error("non-power-of-two accepted")
	}
	if _, _, err := Partition(nl, Config{Parts: 1024}); err == nil {
		t.Error("more parts than cells accepted")
	}
}

func TestPartitionDeterministic(t *testing.T) {
	nl := testNetlist(t, 50, 13)
	p1, s1, err := Partition(nl, Config{Parts: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	p2, s2, err := Partition(nl, Config{Parts: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if s1.CutNets != s2.CutNets {
		t.Error("cut size not deterministic")
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("assignment not deterministic")
		}
	}
}

// Property: across random designs and seeds, partitioning preserves balance
// bounds and never reports a cut different from a recount.
func TestPartitionProperty(t *testing.T) {
	check := func(seed int64) bool {
		nl, err := netgen.Generate(netgen.Params{
			Name: "pp", Inputs: 3, Outputs: 2, Seq: 1,
			Comb: 15 + int(seed%40+40)%40, Seed: seed,
		})
		if err != nil {
			return false
		}
		part, stats, err := Partition(nl, Config{Parts: 2, Seed: seed})
		if err != nil {
			return false
		}
		if CutSize(nl, part) != stats.CutNets {
			return false
		}
		diff := stats.PartSizes[0] - stats.PartSizes[1]
		if diff < 0 {
			diff = -diff
		}
		return diff <= nl.NumCells()/4+2
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
