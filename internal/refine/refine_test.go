package refine

import (
	"math/rand"
	"testing"

	"repro/internal/arch"
	"repro/internal/droute"
	"repro/internal/fabric"
	"repro/internal/groute"
	"repro/internal/layout"
	"repro/internal/netgen"
	"repro/internal/timing"
)

// capacityCost emphasizes wastage over antifuse count — the embedding a
// purely wirability-minded router would pick, leaving delay on the table for
// the refinement pass to recover.
func capacityCost() droute.Cost { return droute.Cost{WWaste: 4, WSegs: 0.5} }

// refineSetup routes a design fully and returns everything TimingRefine needs.
func refineSetup(t *testing.T, tracks int, seed int64) (*layout.Placement, *fabric.Fabric, []fabric.NetRoute, *timing.Analyzer) {
	t.Helper()
	nl, err := netgen.Generate(netgen.Params{Name: "rf", Inputs: 5, Outputs: 4, Seq: 2, Comb: 45, Seed: 83})
	if err != nil {
		t.Fatal(err)
	}
	a := arch.MustNew(arch.Default(6, 16, tracks))
	rng := rand.New(rand.NewSource(seed))
	p, err := layout.NewRandom(a, nl, rng)
	if err != nil {
		t.Fatal(err)
	}
	f := fabric.New(a)
	routes := make([]fabric.NetRoute, nl.NumNets())
	if failed := groute.RouteAll(f, p, routes); len(failed) > 0 {
		t.Fatalf("%d global failures", len(failed))
	}
	if failed := droute.RouteAllDetailed(f, routes, capacityCost(), 4, rng); failed > 0 {
		t.Fatalf("%d detail failures", failed)
	}
	an, err := timing.NewAnalyzer(nl)
	if err != nil {
		t.Fatal(err)
	}
	an.Begin()
	for id := range routes {
		if len(nl.Nets[id].Sinks) == 0 {
			continue
		}
		d, err := timing.NetDelays(p, int32(id), &routes[id], 1.0)
		if err != nil {
			t.Fatal(err)
		}
		an.SetNetDelays(int32(id), d)
	}
	an.Propagate()
	an.Commit()
	return p, f, routes, an
}

func TestTimingRefineImprovesOrHolds(t *testing.T) {
	p, f, routes, an := refineSetup(t, 30, 5)
	before := an.WCD()
	improved, err := TimingRefine(f, p, routes, an, capacityCost(), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.CheckConsistent(routes); err != nil {
		t.Fatalf("refine corrupted fabric: %v", err)
	}
	for id := range routes {
		if !routes[id].DetailDone() {
			t.Fatalf("refine left net %d unrouted", id)
		}
	}
	after := an.WCD()
	if after > before+1e-9 {
		t.Errorf("refine made WCD worse: %.1f -> %.1f", before, after)
	}
	if improved == 0 {
		t.Error("refine found nothing to improve on a capacity-greedy routing")
	}
	if after >= before {
		t.Errorf("refine did not reduce WCD: %.1f -> %.1f", before, after)
	}
	t.Logf("refine: %d nets improved, WCD %.1f -> %.1f ps", improved, before, after)

	// The analyzer's incremental state must match a from-scratch rebuild.
	ref, err := timing.NewAnalyzer(p.NL)
	if err != nil {
		t.Fatal(err)
	}
	ref.Begin()
	for id := range routes {
		if len(p.NL.Nets[id].Sinks) == 0 {
			continue
		}
		d, err := timing.NetDelays(p, int32(id), &routes[id], 1.0)
		if err != nil {
			t.Fatal(err)
		}
		ref.SetNetDelays(int32(id), d)
	}
	got := ref.Propagate()
	ref.Commit()
	if diff := got - after; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("analyzer drifted through refine: %.3f vs %.3f", after, got)
	}
}

func TestTimingRefineThresholdOne(t *testing.T) {
	// Threshold slightly above 1 selects nothing and must change nothing.
	p, f, routes, an := refineSetup(t, 30, 7)
	before := make([]fabric.NetRoute, len(routes))
	for i := range routes {
		before[i] = routes[i].Clone()
	}
	improved, err := TimingRefine(f, p, routes, an, capacityCost(), 1.01)
	if err != nil {
		t.Fatal(err)
	}
	if improved != 0 {
		t.Errorf("improved = %d with empty selection", improved)
	}
	for i := range routes {
		if !routes[i].Equal(&before[i]) {
			t.Fatalf("net %d changed", i)
		}
	}
}
