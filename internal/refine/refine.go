// Package refine implements the slack-driven rerouting post-pass (after
// Frankle's iterative slack allocation, the paper's reference [13]).
package refine

import (
	"sort"

	"repro/internal/droute"
	"repro/internal/fabric"
	"repro/internal/layout"
	"repro/internal/timing"
)

// TimingRefine is a slack-driven rerouting post-pass in the spirit of
// Frankle's iterative slack allocation (the paper's reference [13]): nets are
// visited in decreasing timing criticality, and each critical net's channels
// are rerouted with the segment-count term of the track-selection cost
// amplified — trading wastage (capacity) for fewer antifuses (delay) exactly
// where the slack budget says it pays. Non-critical nets keep their
// capacity-friendly embeddings.
//
// The pass never leaves a net worse off: if rerouting a channel fails or the
// net's worst sink delay does not improve, the original embedding is
// restored. Returns the number of nets whose embedding improved.
func TimingRefine(f *fabric.Fabric, p *layout.Placement, routes []fabric.NetRoute,
	an *timing.Analyzer, base droute.Cost, critThreshold float64) (improved int, err error) {
	crit := an.NetCriticality(an.WCD())
	order := make([]int32, 0, len(routes))
	for id := range routes {
		if routes[id].DetailDone() && len(p.NL.Nets[id].Sinks) > 0 && crit[id] >= critThreshold {
			order = append(order, int32(id))
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if crit[order[i]] != crit[order[j]] {
			return crit[order[i]] > crit[order[j]]
		}
		return order[i] < order[j]
	})

	var dc timing.DelayCalc
	for _, id := range order {
		r := &routes[id]
		before, derr := dc.NetDelays(p, id, r, 1.0)
		if derr != nil {
			return improved, derr
		}
		worstBefore := maxOf(before)

		// Remember and release the current embedding, then reroute with the
		// antifuse-count term amplified by the net's criticality.
		old := r.Clone()
		for ci := range r.Chans {
			droute.UnrouteChan(f, id, r, ci)
		}
		aggressive := droute.Cost{
			WWaste: base.WWaste / (1 + 3*crit[id]),
			WSegs:  base.WSegs * (1 + 8*crit[id]),
		}
		ok := true
		for ci := range r.Chans {
			if !droute.RouteChan(f, id, r, ci, aggressive) {
				ok = false
				break
			}
		}
		better := false
		if ok {
			after, derr := dc.NetDelays(p, id, r, 1.0)
			if derr != nil {
				return improved, derr
			}
			better = maxOf(after) < worstBefore-1e-9
		}
		if !better {
			// Roll back to the original embedding.
			for ci := range r.Chans {
				if r.Chans[ci].Routed() {
					droute.UnrouteChan(f, id, r, ci)
				}
			}
			r.CopyFrom(&old)
			for ci := range r.Chans {
				ca := &r.Chans[ci]
				f.AllocH(ca.Ch, ca.Track, ca.SegLo, ca.SegHi, id)
			}
			continue
		}
		improved++
		// Feed the better delays into the analyzer so later nets see the
		// updated criticalities' arrival context.
		after, derr := dc.NetDelays(p, id, r, 1.0)
		if derr != nil {
			return improved, derr
		}
		an.Begin()
		an.SetNetDelays(id, after)
		an.Propagate()
		an.Commit()
	}
	return improved, nil
}

func maxOf(v []float64) float64 {
	m := 0.0
	for _, x := range v {
		if x > m {
			m = x
		}
	}
	return m
}
