// Package arch models a row-based (ACTEL-style) antifuse FPGA architecture:
// a grid of logic-module slots separated by horizontal routing channels whose
// tracks are divided into fixed segments, plus segmented vertical tracks used
// to span channels. It also carries the RC delay parameters used by the
// Elmore timing model and the pinmap palettes used by the layout state.
package arch

import (
	"errors"
	"fmt"
)

// Side identifies which edge of a logic module a pin is assigned to. A pin on
// the Bottom side taps the channel below the module's row; a pin on the Top
// side taps the channel above it.
type Side uint8

const (
	// Bottom places the pin on the channel below the module's row.
	Bottom Side = iota
	// Top places the pin on the channel above the module's row.
	Top
)

func (s Side) String() string {
	if s == Bottom {
		return "bottom"
	}
	return "top"
}

// Segment is one fixed horizontal routing segment on a track, covering the
// half-open column range [Start, End).
type Segment struct {
	Start int
	End   int
}

// Len returns the number of column positions the segment covers.
func (s Segment) Len() int { return s.End - s.Start }

// Contains reports whether column col lies on the segment.
func (s Segment) Contains(col int) bool { return col >= s.Start && col < s.End }

// RC holds the electrical parameters of the delay model. Resistances are in
// ohms and capacitances in picofarads, so products are directly in
// picoseconds.
type RC struct {
	RDriver   float64 // output resistance of a module driver
	RAntifuse float64 // programmed horizontal/vertical antifuse resistance
	CAntifuse float64 // antifuse junction capacitance
	RCross    float64 // programmed cross (pin-to-segment) antifuse resistance
	CCross    float64 // cross antifuse junction capacitance
	RUnit     float64 // horizontal track resistance per column unit
	CUnit     float64 // horizontal track capacitance per column unit
	RVUnit    float64 // vertical track resistance per channel crossed
	CVUnit    float64 // vertical track capacitance per channel crossed
	CPin      float64 // sink pin load capacitance
}

// DefaultRC returns delay-model constants plausible for early-1990s antifuse
// parts. Only relative delays matter for the reproduced experiments.
func DefaultRC() RC {
	return RC{
		RDriver:   600,
		RAntifuse: 550,
		CAntifuse: 0.012,
		RCross:    750,
		CCross:    0.014,
		RUnit:     14,
		CUnit:     0.045,
		RVUnit:    22,
		CVUnit:    0.080,
		CPin:      0.030,
	}
}

// Params describes an architecture instance before compilation.
type Params struct {
	Rows   int // rows of logic modules
	Cols   int // module slots per row
	Tracks int // horizontal tracks per channel

	// SegPattern is the cyclic sequence of segment lengths used to cut each
	// track. Tracks are phase-shifted against each other by PhaseStep columns
	// so that segment boundaries do not align across tracks (the non-uniform
	// segmentation the paper's timing discussion depends on).
	SegPattern []int
	PhaseStep  int

	VTracks int // vertical tracks per column
	VSpan   int // channels spanned by one vertical segment

	RC RC
}

// Default returns a parameter set with a mixed short/long segmentation
// pattern, sized for the given module grid and channel capacity.
func Default(rows, cols, tracks int) Params {
	return Params{
		Rows:       rows,
		Cols:       cols,
		Tracks:     tracks,
		SegPattern: []int{4, 9, 3, 14, 5, 7},
		PhaseStep:  3,
		VTracks:    5,
		VSpan:      3,
		RC:         DefaultRC(),
	}
}

// Arch is a compiled architecture: the parameters plus the derived
// segmentation tables shared by every channel.
type Arch struct {
	Params

	// Seg holds, for each track index, that track's segments in column order.
	// Every channel uses the same per-track segmentation.
	Seg [][]Segment

	// segAt[t][col] is the index within Seg[t] of the segment covering col.
	segAt [][]int16

	// NVSegs is the number of vertical segments on one vertical track.
	NVSegs int
}

// New validates p and compiles the derived segmentation tables.
func New(p Params) (*Arch, error) {
	if p.Rows < 1 || p.Cols < 2 {
		return nil, fmt.Errorf("arch: grid %dx%d too small", p.Rows, p.Cols)
	}
	if p.Tracks < 1 {
		return nil, errors.New("arch: need at least one track per channel")
	}
	if len(p.SegPattern) == 0 {
		return nil, errors.New("arch: empty segmentation pattern")
	}
	for _, l := range p.SegPattern {
		if l < 1 {
			return nil, fmt.Errorf("arch: segment length %d in pattern must be >= 1", l)
		}
	}
	if p.VTracks < 1 || p.VSpan < 1 {
		return nil, errors.New("arch: vertical routing parameters must be >= 1")
	}
	a := &Arch{Params: p}
	a.Seg = make([][]Segment, p.Tracks)
	a.segAt = make([][]int16, p.Tracks)
	for t := 0; t < p.Tracks; t++ {
		segs := buildTrack(p.Cols, p.SegPattern, t*p.PhaseStep)
		a.Seg[t] = segs
		at := make([]int16, p.Cols)
		for i, s := range segs {
			for c := s.Start; c < s.End; c++ {
				at[c] = int16(i)
			}
		}
		a.segAt[t] = at
	}
	a.NVSegs = (a.Channels() + p.VSpan - 1) / p.VSpan
	return a, nil
}

// MustNew is New but panics on error; intended for tests and examples with
// constant parameters.
func MustNew(p Params) *Arch {
	a, err := New(p)
	if err != nil {
		panic(err)
	}
	return a
}

// buildTrack tiles pattern cyclically, phase-shifted left by phase columns,
// and returns the segments clipped to [0, cols).
func buildTrack(cols int, pattern []int, phase int) []Segment {
	total := 0
	for _, l := range pattern {
		total += l
	}
	phase %= total
	var segs []Segment
	pos := -phase
	for i := 0; pos < cols; i++ {
		l := pattern[i%len(pattern)]
		start, end := pos, pos+l
		pos = end
		if end <= 0 {
			continue
		}
		if start < 0 {
			start = 0
		}
		if end > cols {
			end = cols
		}
		if end > start {
			segs = append(segs, Segment{start, end})
		}
	}
	return segs
}

// Channels returns the number of horizontal channels: one below each row plus
// one above the top row.
func (a *Arch) Channels() int { return a.Rows + 1 }

// Slots returns the total number of module slots.
func (a *Arch) Slots() int { return a.Rows * a.Cols }

// SegIndexAt returns the index of the segment covering column col on the
// given track.
func (a *Arch) SegIndexAt(track, col int) int { return int(a.segAt[track][col]) }

// SegRange returns the inclusive range of segment indices a net spanning
// columns [lo, hi] needs on the given track.
func (a *Arch) SegRange(track, lo, hi int) (segLo, segHi int) {
	return int(a.segAt[track][lo]), int(a.segAt[track][hi])
}

// VSegRange returns the inclusive range of vertical segment indices needed to
// connect channels [chLo, chHi]. Vertical segment k covers channels
// [k*VSpan, (k+1)*VSpan).
func (a *Arch) VSegRange(chLo, chHi int) (lo, hi int) {
	return chLo / a.VSpan, chHi / a.VSpan
}

// ChannelOf returns the channel a pin taps given the module's row and the
// pin's side.
func (a *Arch) ChannelOf(row int, side Side) int {
	if side == Bottom {
		return row
	}
	return row + 1
}

// AvgSegLen returns the mean segment length of the segmentation pattern,
// used by the unrouted-net delay estimator.
func (a *Arch) AvgSegLen() float64 {
	total := 0
	for _, l := range a.SegPattern {
		total += l
	}
	return float64(total) / float64(len(a.SegPattern))
}
