package arch

// Pinmap assigns each pin of a cell to a module edge. Index 0 is the cell's
// output pin; indices 1..k are its inputs. Since any cell-level function can
// be realized with several different physical pin assignments, the layout
// optimizer is free to pick among a palette of legal pinmaps (paper §3.2).
type Pinmap []Side

// NumPinmaps is the size of the pinmap palette generated for every cell
// shape. The paper assumes "a manageable palette of pinmap alternatives"
// generated at compile time; four variants per shape is that palette here.
const NumPinmaps = 4

// PinmapFor returns pinmap variant v for a cell with numInputs input pins.
// The variants differ in which edge the output drives and how inputs are
// distributed between the two adjacent channels:
//
//	0: output top, inputs alternating bottom/top
//	1: output bottom, inputs alternating top/bottom
//	2: output top, all inputs bottom
//	3: output bottom, all inputs top
//
// The result has length numInputs+1 and index 0 is the output pin.
func PinmapFor(numInputs, v int) Pinmap {
	pm := make(Pinmap, numInputs+1)
	switch v % NumPinmaps {
	case 0:
		pm[0] = Top
		for i := 1; i <= numInputs; i++ {
			if i%2 == 1 {
				pm[i] = Bottom
			} else {
				pm[i] = Top
			}
		}
	case 1:
		pm[0] = Bottom
		for i := 1; i <= numInputs; i++ {
			if i%2 == 1 {
				pm[i] = Top
			} else {
				pm[i] = Bottom
			}
		}
	case 2:
		pm[0] = Top
		for i := 1; i <= numInputs; i++ {
			pm[i] = Bottom
		}
	case 3:
		pm[0] = Bottom
		for i := 1; i <= numInputs; i++ {
			pm[i] = Top
		}
	}
	return pm
}
