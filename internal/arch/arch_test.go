package arch

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func testParams(rows, cols, tracks int) Params {
	return Default(rows, cols, tracks)
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Params)
	}{
		{"zero rows", func(p *Params) { p.Rows = 0 }},
		{"one col", func(p *Params) { p.Cols = 1 }},
		{"zero tracks", func(p *Params) { p.Tracks = 0 }},
		{"empty pattern", func(p *Params) { p.SegPattern = nil }},
		{"bad segment length", func(p *Params) { p.SegPattern = []int{4, 0} }},
		{"zero vtracks", func(p *Params) { p.VTracks = 0 }},
		{"zero vspan", func(p *Params) { p.VSpan = 0 }},
	}
	for _, tc := range cases {
		p := testParams(4, 20, 8)
		tc.mut(&p)
		if _, err := New(p); err == nil {
			t.Errorf("%s: expected error, got nil", tc.name)
		}
	}
	if _, err := New(testParams(4, 20, 8)); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
}

// Track segmentation must tile [0, Cols) exactly: contiguous, non-overlapping,
// non-empty segments.
func TestSegmentationTiles(t *testing.T) {
	a := MustNew(testParams(6, 37, 11))
	for tr, segs := range a.Seg {
		if len(segs) == 0 {
			t.Fatalf("track %d has no segments", tr)
		}
		if segs[0].Start != 0 {
			t.Errorf("track %d starts at %d, want 0", tr, segs[0].Start)
		}
		if segs[len(segs)-1].End != a.Cols {
			t.Errorf("track %d ends at %d, want %d", tr, segs[len(segs)-1].End, a.Cols)
		}
		for i := 1; i < len(segs); i++ {
			if segs[i].Start != segs[i-1].End {
				t.Errorf("track %d: gap/overlap between segment %d and %d", tr, i-1, i)
			}
		}
		for i, s := range segs {
			if s.Len() < 1 {
				t.Errorf("track %d segment %d empty", tr, i)
			}
		}
	}
}

// Property: for any geometry, SegIndexAt agrees with a direct scan, and
// SegRange covers the queried interval.
func TestSegLookupProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		cols := 5 + r.Intn(60)
		pat := make([]int, 1+r.Intn(5))
		for i := range pat {
			pat[i] = 1 + r.Intn(10)
		}
		p := testParams(3, cols, 1+r.Intn(6))
		p.SegPattern = pat
		p.PhaseStep = r.Intn(7)
		a, err := New(p)
		if err != nil {
			return false
		}
		for tr := 0; tr < a.Tracks; tr++ {
			for col := 0; col < cols; col++ {
				i := a.SegIndexAt(tr, col)
				if !a.Seg[tr][i].Contains(col) {
					return false
				}
			}
			lo := r.Intn(cols)
			hi := lo + r.Intn(cols-lo)
			sl, sh := a.SegRange(tr, lo, hi)
			if a.Seg[tr][sl].Start > lo || a.Seg[tr][sh].End <= hi {
				return false
			}
			if sl > sh {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPhaseShiftStaggersBoundaries(t *testing.T) {
	a := MustNew(testParams(4, 40, 4))
	// With a nonzero phase step, track 0 and track 1 must not have identical
	// segmentation (that staggering is what makes Figure-2 situations arise).
	same := len(a.Seg[0]) == len(a.Seg[1])
	if same {
		for i := range a.Seg[0] {
			if a.Seg[0][i] != a.Seg[1][i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("tracks 0 and 1 have identical segmentation despite phase step")
	}
}

func TestVSegRange(t *testing.T) {
	a := MustNew(testParams(8, 20, 6)) // 9 channels, VSpan=3 -> 3 vsegs
	if a.NVSegs != 3 {
		t.Fatalf("NVSegs = %d, want 3", a.NVSegs)
	}
	cases := []struct{ chLo, chHi, lo, hi int }{
		{0, 0, 0, 0},
		{0, 2, 0, 0},
		{0, 3, 0, 1},
		{2, 7, 0, 2},
		{8, 8, 2, 2},
	}
	for _, c := range cases {
		lo, hi := a.VSegRange(c.chLo, c.chHi)
		if lo != c.lo || hi != c.hi {
			t.Errorf("VSegRange(%d,%d) = (%d,%d), want (%d,%d)", c.chLo, c.chHi, lo, hi, c.lo, c.hi)
		}
	}
}

func TestChannelOf(t *testing.T) {
	a := MustNew(testParams(4, 10, 4))
	if got := a.ChannelOf(2, Bottom); got != 2 {
		t.Errorf("ChannelOf(2, Bottom) = %d, want 2", got)
	}
	if got := a.ChannelOf(2, Top); got != 3 {
		t.Errorf("ChannelOf(2, Top) = %d, want 3", got)
	}
	if a.Channels() != 5 {
		t.Errorf("Channels() = %d, want 5", a.Channels())
	}
}

func TestPinmapPalette(t *testing.T) {
	for k := 0; k <= 8; k++ {
		seen := map[string]bool{}
		for v := 0; v < NumPinmaps; v++ {
			pm := PinmapFor(k, v)
			if len(pm) != k+1 {
				t.Fatalf("PinmapFor(%d,%d) length %d, want %d", k, v, len(pm), k+1)
			}
			key := ""
			for _, s := range pm {
				key += s.String() + ","
			}
			seen[key] = true
		}
		// For k >= 2 inputs all four variants must be distinct.
		if k >= 2 && len(seen) != NumPinmaps {
			t.Errorf("k=%d: only %d distinct pinmaps out of %d", k, len(seen), NumPinmaps)
		}
	}
}

func TestPinmapVariantWraps(t *testing.T) {
	a := PinmapFor(3, 1)
	b := PinmapFor(3, 1+NumPinmaps)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("pinmap variant index does not wrap modulo NumPinmaps")
		}
	}
}

func TestAvgSegLen(t *testing.T) {
	p := testParams(2, 10, 2)
	p.SegPattern = []int{2, 4, 6}
	a := MustNew(p)
	if got := a.AvgSegLen(); got != 4 {
		t.Errorf("AvgSegLen = %v, want 4", got)
	}
}

func TestSlots(t *testing.T) {
	a := MustNew(testParams(7, 13, 3))
	if a.Slots() != 91 {
		t.Errorf("Slots = %d, want 91", a.Slots())
	}
}
