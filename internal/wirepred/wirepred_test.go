package wirepred

import (
	"math/rand"
	"testing"

	"repro/internal/arch"
	"repro/internal/droute"
	"repro/internal/fabric"
	"repro/internal/groute"
	"repro/internal/layout"
	"repro/internal/netgen"
	"repro/internal/netlist"
	"repro/internal/place"
)

func design(t *testing.T) *netlist.Netlist {
	t.Helper()
	nl, err := netgen.Generate(netgen.Params{Name: "wp", Inputs: 5, Outputs: 4, Seq: 2, Comb: 45, Seed: 85})
	if err != nil {
		t.Fatal(err)
	}
	return nl
}

func placed(t *testing.T, nl *netlist.Netlist, tracks int) *layout.Placement {
	t.Helper()
	a := arch.MustNew(arch.Default(6, 16, tracks))
	p, _, err := place.Place(a, nl, place.Config{Seed: 3, MovesPerCell: 6, MaxTemps: 60})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func actuallyRoutes(t *testing.T, p *layout.Placement) bool {
	t.Helper()
	f := fabric.New(p.A)
	routes := make([]fabric.NetRoute, p.NL.NumNets())
	gf := groute.RouteAll(f, p, routes)
	df := droute.RouteAllDetailed(f, routes, droute.DefaultCost(), 4, rand.New(rand.NewSource(1)))
	return len(gf) == 0 && df == 0
}

func TestScoreMonotoneInCapacity(t *testing.T) {
	nl := design(t)
	prev := -1.0
	for _, tracks := range []int{4, 8, 14, 24, 40} {
		p := placed(t, nl, tracks)
		pr := Predict(p)
		if pr.Score < 0 || pr.Score > 1 {
			t.Fatalf("tracks=%d: score %v out of range", tracks, pr.Score)
		}
		if pr.Score < prev-0.15 {
			t.Errorf("score dropped substantially with more tracks: %v -> %v at %d", prev, pr.Score, tracks)
		}
		if pr.Score > prev {
			prev = pr.Score
		}
	}
	// Generous capacity must predict near-certain routability.
	p := placed(t, nl, 40)
	if pr := Predict(p); pr.Score < 0.9 || !pr.Routable {
		t.Errorf("40 tracks: score %v routable %v", pr.Score, pr.Routable)
	}
	// Starved capacity must predict failure.
	p = placed(t, nl, 3)
	if pr := Predict(p); pr.Score > 0.1 || pr.Routable {
		t.Errorf("3 tracks: score %v routable %v", pr.Score, pr.Routable)
	}
}

// The predictor must correlate with reality: clearly-routable and
// clearly-unroutable instances are classified correctly. (Near the boundary
// it may err either way — the paper's Figure 2 point.)
func TestPredictionMatchesExtremes(t *testing.T) {
	nl := design(t)
	easy := placed(t, nl, 36)
	if !actuallyRoutes(t, easy) {
		t.Skip("36 tracks did not route; cannot test easy extreme")
	}
	if pr := Predict(easy); !pr.Routable {
		t.Errorf("easy instance predicted unroutable (score %v)", pr.Score)
	}
	hard := placed(t, nl, 4)
	if actuallyRoutes(t, hard) {
		t.Skip("4 tracks routed; cannot test hard extreme")
	}
	if pr := Predict(hard); pr.Routable {
		t.Errorf("hard instance predicted routable (score %v)", pr.Score)
	}
}

func TestChannelDiagnostics(t *testing.T) {
	nl := design(t)
	p := placed(t, nl, 12)
	pr := Predict(p)
	if len(pr.ChannelScore) != p.A.Channels() || len(pr.MaxAdjustedCut) != p.A.Channels() {
		t.Fatal("diagnostic arity wrong")
	}
	// Edge channels carry less demand than center channels.
	if pr.MaxAdjustedCut[0] > pr.MaxAdjustedCut[p.A.Channels()/2] {
		t.Errorf("edge channel busier than center: %v vs %v",
			pr.MaxAdjustedCut[0], pr.MaxAdjustedCut[p.A.Channels()/2])
	}
}
