package wirepred

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/arch"
	"repro/internal/droute"
	"repro/internal/fabric"
	"repro/internal/groute"
	"repro/internal/layout"
	"repro/internal/netlist"
)

// TestFigure2BlindSpot demonstrates the limitation the paper's Figure 2 and
// §2.2 analysis identify: placement-level wirability prediction cannot see
// segment boundaries. The two placements below present nearly identical
// supply/demand pictures to the predictor, yet on the actual segmented
// channel one routes 100% and the other cannot.
func TestFigure2BlindSpot(t *testing.T) {
	// One channel, one track, segments [0,2)[2,6)[6,8).
	pa := arch.Default(1, 8, 1)
	pa.SegPattern = []int{2, 4, 2}
	pa.PhaseStep = 0
	a := arch.MustNew(pa)

	b := netlist.NewBuilder("fig2")
	b.Input("d1", "N1")
	b.Output("s1", "N1")
	b.Input("d2", "N2")
	b.Output("s2", "N2")
	b.Input("d3", "N3")
	b.Output("s3", "N3")
	nl := b.MustBuild()

	build := func(cols map[string]int) *layout.Placement {
		p, err := layout.NewRandom(a, nl, rand.New(rand.NewSource(1)))
		if err != nil {
			t.Fatal(err)
		}
		for name, col := range cols {
			id := nl.CellID(name)
			p.Swap(p.Loc[id], layout.Loc{Row: 0, Col: col})
		}
		for i := range nl.Cells {
			// All pins on the bottom channel.
			if nl.Cells[i].Type == netlist.Input {
				p.SetPinmap(int32(i), 3)
			} else {
				p.SetPinmap(int32(i), 2)
			}
		}
		return p
	}
	routes := func(p *layout.Placement) bool {
		f := fabric.New(a)
		rts := make([]fabric.NetRoute, nl.NumNets())
		if failed := groute.RouteAll(f, p, rts); len(failed) > 0 {
			return false
		}
		return droute.RouteAllDetailed(f, rts, droute.DefaultCost(), 4, rand.New(rand.NewSource(1))) == 0
	}

	// Placement A (the paper's "shorter" one): N1=[0,1] N2=[2,3] N3=[4,5].
	pA := build(map[string]int{"d1": 0, "s1": 1, "d2": 2, "s2": 3, "d3": 4, "s3": 5})
	// Placement B (cell moved): N1=[0,1] N2=[6,7] N3=[2,5].
	pB := build(map[string]int{"d1": 0, "s1": 1, "d2": 6, "s2": 7, "d3": 2, "s3": 5})

	if routes(pA) {
		t.Fatal("placement A should be unroutable on this segmentation")
	}
	if !routes(pB) {
		t.Fatal("placement B should route")
	}

	prA, prB := Predict(pA), Predict(pB)
	// The predictor sees nearly the same picture for both: demand one track
	// everywhere. It cannot distinguish the unroutable placement from the
	// routable one.
	if math.Abs(prA.Score-prB.Score) > 0.2 {
		t.Errorf("predictor separated the placements (%.3f vs %.3f) — Figure-2 blindness expected",
			prA.Score, prB.Score)
	}
	t.Logf("prediction scores: unroutable placement %.3f, routable placement %.3f (indistinguishable, as §2.2 argues)",
		prA.Score, prB.Score)
}
