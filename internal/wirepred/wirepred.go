// Package wirepred implements placement-level routability prediction in the
// spirit of Chan et al. (the paper's reference [22], "On Routability
// Prediction for Field Programmable Gate Arrays"): estimating, before any
// routing is attempted, how likely a placement is to wire completely on the
// given architecture. The paper cites this line of work as "a reaction to
// the continuing difficulty of ensuring that complex designs can be packed
// onto a specific FPGA architecture with 100% routability" — and its own
// Figure 2 shows why such predictions are structurally limited on segmented
// channels. This package provides the predictor both as a usable pre-route
// check and as the foil for that limitation.
package wirepred

import (
	"math"

	"repro/internal/groute"
	"repro/internal/layout"
)

// Prediction reports the estimated wirability of a placement.
type Prediction struct {
	// ChannelScore[ch] is the estimated probability channel ch routes
	// completely, from a per-column supply/demand model.
	ChannelScore []float64
	// MaxAdjustedCut[ch] is the channel's peak segmentation-adjusted track
	// demand (raw interval cut inflated by the expected segment wastage).
	MaxAdjustedCut []float64
	// Score is the product of the channel scores: the estimated probability
	// the whole placement routes.
	Score float64
	// Routable is the binary call: every channel's adjusted peak demand fits
	// the track supply.
	Routable bool
}

// Predict analyzes the placement. It sees exactly what a placement-level
// tool can see: pin positions and the architecture — no routing.
func Predict(p *layout.Placement) Prediction {
	a := p.A
	cut := make([][]float64, a.Channels())
	for ch := range cut {
		cut[ch] = make([]float64, a.Cols)
	}
	// Demand: each net contributes its channel intervals, extended to the
	// bounding-box-center feedthrough column the global router prefers.
	for id := range p.NL.Nets {
		if len(p.NL.Nets[id].Sinks) == 0 {
			continue
		}
		needs := groute.Needs(p, int32(id))
		if len(needs) > 1 {
			box := p.NetBox(int32(id))
			center := (box.ColLo + box.ColHi) / 2
			for i := range needs {
				if center < needs[i].Lo {
					needs[i].Lo = center
				}
				if center > needs[i].Hi {
					needs[i].Hi = center
				}
			}
		}
		for _, ca := range needs {
			for c := ca.Lo; c <= ca.Hi; c++ {
				cut[ca.Ch][c]++
			}
		}
	}
	// Supply adjustment: a net occupying an interval of length L holds whole
	// segments, so its effective footprint is roughly L + avgSegLen/2 per
	// free end; short intervals waste proportionally more. Model this as a
	// per-column inflation of demand by the expected wastage ratio.
	avgSeg := a.AvgSegLen()
	pr := Prediction{
		ChannelScore:   make([]float64, a.Channels()),
		MaxAdjustedCut: make([]float64, a.Channels()),
		Score:          1,
		Routable:       true,
	}
	tracks := float64(a.Tracks)
	for ch := range cut {
		worst := 0.0
		prob := 1.0
		for x := 0; x < a.Cols; x++ {
			if cut[ch][x] == 0 {
				continue
			}
			// Average interval length crossing this column is unknown at
			// this level; use the channel-wide mean demand to estimate it.
			adj := cut[ch][x] * (1 + avgSeg/(2*meanRunLen(cut[ch], x)))
			if adj > worst {
				worst = adj
			}
			// Per-column success probability: logistic in the utilization,
			// sharp near 100% (tracks are hard capacity).
			u := adj / tracks
			prob *= 1 / (1 + math.Exp(18*(u-1.02)))
		}
		pr.MaxAdjustedCut[ch] = worst
		pr.ChannelScore[ch] = prob
		pr.Score *= prob
		if worst > tracks {
			pr.Routable = false
		}
	}
	return pr
}

// meanRunLen estimates the average contiguous demand run length around
// column x — a proxy for the interval lengths crossing it.
func meanRunLen(cut []float64, x int) float64 {
	lo, hi := x, x
	for lo > 0 && cut[lo-1] > 0 {
		lo--
	}
	for hi < len(cut)-1 && cut[hi+1] > 0 {
		hi++
	}
	l := float64(hi - lo + 1)
	if l < 1 {
		return 1
	}
	return l
}
