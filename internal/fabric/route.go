package fabric

import "fmt"

// ChanAssign describes a net's presence in one channel: the column interval
// it must cover there and, once detail-routed, the track and segment run
// assigned (Track == -1 while unrouted in this channel). A net uses exactly
// one track per channel it crosses — the single-track constraint imposed by
// antifuse placement in row-based parts (paper §2.1).
type ChanAssign struct {
	Ch     int
	Lo, Hi int // inclusive column interval to cover

	Track        int // -1 if not detail-routed in this channel
	SegLo, SegHi int // inclusive segment indices on Track when routed
}

// Routed reports whether the channel assignment is detail-routed.
func (c *ChanAssign) Routed() bool { return c.Track >= 0 }

// NetRoute is the complete disposition of one net (paper §3.2 "Net Segment
// Assignments"): unrouted, globally routed (vertical/trunk resources held,
// channel intervals known), or globally and detail routed.
type NetRoute struct {
	// Global is true once vertical resources (if any are needed) are assigned
	// and the per-channel intervals are derived.
	Global bool

	// HasTrunk is true when the net spans multiple channels and therefore
	// holds vertical segments.
	HasTrunk             bool
	TrunkCol, TrunkTrack int
	VLo, VHi             int // inclusive vertical segment indices

	// Chans lists every channel in which the net needs horizontal routing,
	// in ascending channel order.
	Chans []ChanAssign
}

// Reset returns the route to the completely-unrouted state (the caller must
// free fabric resources first).
func (r *NetRoute) Reset() {
	r.Global = false
	r.HasTrunk = false
	r.Chans = r.Chans[:0]
}

// DetailDone reports whether the net is globally routed and every channel
// assignment is routed.
func (r *NetRoute) DetailDone() bool {
	if !r.Global {
		return false
	}
	for i := range r.Chans {
		if !r.Chans[i].Routed() {
			return false
		}
	}
	return true
}

// UnroutedChans returns how many needed channels lack a detailed route.
func (r *NetRoute) UnroutedChans() int {
	n := 0
	for i := range r.Chans {
		if !r.Chans[i].Routed() {
			n++
		}
	}
	return n
}

// Clone returns a deep copy, used by the simultaneous optimizer's undo
// journal.
func (r *NetRoute) Clone() NetRoute {
	c := *r
	c.Chans = append([]ChanAssign(nil), r.Chans...)
	return c
}

// CopyFrom makes r a deep copy of src, reusing r's Chans storage.
func (r *NetRoute) CopyFrom(src *NetRoute) {
	chans := r.Chans[:0]
	chans = append(chans, src.Chans...)
	*r = *src
	r.Chans = chans
}

// Equal reports deep equality (used by tests and consistency checks).
func (r *NetRoute) Equal(o *NetRoute) bool {
	if r.Global != o.Global || r.HasTrunk != o.HasTrunk {
		return false
	}
	if r.HasTrunk && (r.TrunkCol != o.TrunkCol || r.TrunkTrack != o.TrunkTrack || r.VLo != o.VLo || r.VHi != o.VHi) {
		return false
	}
	if len(r.Chans) != len(o.Chans) {
		return false
	}
	for i := range r.Chans {
		if r.Chans[i] != o.Chans[i] {
			return false
		}
	}
	return true
}

// AntifuseCount returns the number of programmed antifuses the route implies:
// horizontal antifuses between consecutive segments, vertical antifuses
// between consecutive vertical segments, one vertical-to-horizontal antifuse
// per routed channel when a trunk exists, plus cross antifuses for pins
// (added by the timing model, not counted here).
func (r *NetRoute) AntifuseCount() int {
	n := 0
	for i := range r.Chans {
		if r.Chans[i].Routed() {
			n += r.Chans[i].SegHi - r.Chans[i].SegLo
			if r.HasTrunk {
				n++ // tap from trunk into this channel's track
			}
		}
	}
	if r.HasTrunk {
		n += r.VHi - r.VLo
	}
	return n
}

// CheckConsistent verifies that the ownership tables are exactly the union of
// the given routes: every resource held by route i is owned by net i in the
// fabric and vice versa. Used by tests and the optimizer's self-checks.
func (f *Fabric) CheckConsistent(routes []NetRoute) error {
	a := f.A
	wantH := make(map[[3]int]int32)
	wantV := make(map[[3]int]int32)
	for id := range routes {
		r := &routes[id]
		if r.HasTrunk {
			if !r.Global {
				return fmt.Errorf("fabric: net %d has trunk but not global", id)
			}
			for s := r.VLo; s <= r.VHi; s++ {
				key := [3]int{r.TrunkCol, r.TrunkTrack, s}
				if prev, ok := wantV[key]; ok {
					return fmt.Errorf("fabric: nets %d and %d both claim vseg %v", prev, id, key)
				}
				wantV[key] = int32(id)
			}
		}
		for i := range r.Chans {
			ca := &r.Chans[i]
			if !ca.Routed() {
				continue
			}
			segs := a.Seg[ca.Track]
			if segs[ca.SegLo].Start > ca.Lo || segs[ca.SegHi].End <= ca.Hi {
				return fmt.Errorf("fabric: net %d channel %d assignment does not cover [%d,%d]", id, ca.Ch, ca.Lo, ca.Hi)
			}
			for s := ca.SegLo; s <= ca.SegHi; s++ {
				key := [3]int{ca.Ch, ca.Track, s}
				if prev, ok := wantH[key]; ok {
					return fmt.Errorf("fabric: nets %d and %d both claim hseg %v", prev, id, key)
				}
				wantH[key] = int32(id)
			}
		}
	}
	for ch := range f.h {
		for t := range f.h[ch] {
			for s, owner := range f.h[ch][t] {
				want, ok := wantH[[3]int{ch, t, s}]
				if !ok {
					want = Free
				}
				if owner != want {
					return fmt.Errorf("fabric: hseg ch=%d t=%d s=%d owner=%d want=%d", ch, t, s, owner, want)
				}
			}
		}
	}
	for c := range f.v {
		for t := range f.v[c] {
			for s, owner := range f.v[c][t] {
				want, ok := wantV[[3]int{c, t, s}]
				if !ok {
					want = Free
				}
				if owner != want {
					return fmt.Errorf("fabric: vseg col=%d t=%d s=%d owner=%d want=%d", c, t, s, owner, want)
				}
			}
		}
	}
	return nil
}

// InstallRoute allocates every resource named by r for net id. It is the
// inverse of RemoveRoute and is used when restoring a journaled route.
func (f *Fabric) InstallRoute(id int32, r *NetRoute) {
	if r.HasTrunk {
		f.AllocV(r.TrunkCol, r.TrunkTrack, r.VLo, r.VHi, id)
	}
	for i := range r.Chans {
		if r.Chans[i].Routed() {
			f.AllocH(r.Chans[i].Ch, r.Chans[i].Track, r.Chans[i].SegLo, r.Chans[i].SegHi, id)
		}
	}
}

// RemoveRoute frees every resource named by r for net id. The route
// descriptor itself is left unchanged; callers Reset it if the net is being
// ripped up (as opposed to journaled).
func (f *Fabric) RemoveRoute(id int32, r *NetRoute) {
	if r.HasTrunk {
		f.FreeV(r.TrunkCol, r.TrunkTrack, r.VLo, r.VHi, id)
	}
	for i := range r.Chans {
		if r.Chans[i].Routed() {
			f.FreeH(r.Chans[i].Ch, r.Chans[i].Track, r.Chans[i].SegLo, r.Chans[i].SegHi, id)
		}
	}
}
