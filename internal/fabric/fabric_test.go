package fabric

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/arch"
)

func testArch() *arch.Arch {
	return arch.MustNew(arch.Default(4, 24, 6))
}

func TestAllocFreeH(t *testing.T) {
	f := New(testArch())
	if !f.HRangeFree(0, 0, 0, 2) {
		t.Fatal("fresh fabric not free")
	}
	f.AllocH(0, 0, 0, 2, 7)
	if f.HOwner(0, 0, 1) != 7 {
		t.Error("owner not recorded")
	}
	if f.HRangeFree(0, 0, 2, 3) {
		t.Error("range overlapping allocation reported free")
	}
	if f.UsedH() != 3 {
		t.Errorf("UsedH = %d, want 3", f.UsedH())
	}
	f.FreeH(0, 0, 0, 2, 7)
	if f.UsedH() != 0 || !f.HRangeFree(0, 0, 0, 2) {
		t.Error("free did not restore")
	}
}

func TestAllocFreeV(t *testing.T) {
	f := New(testArch())
	f.AllocV(3, 1, 0, 1, 9)
	if f.VOwner(3, 1, 0) != 9 || f.VOwner(3, 1, 1) != 9 {
		t.Error("vertical ownership not recorded")
	}
	if f.VRangeFree(3, 1, 1, 1) {
		t.Error("allocated vseg reported free")
	}
	if f.UsedV() != 2 {
		t.Errorf("UsedV = %d, want 2", f.UsedV())
	}
	f.FreeV(3, 1, 0, 1, 9)
	if f.UsedV() != 0 {
		t.Error("UsedV not restored")
	}
}

func TestDoubleAllocPanics(t *testing.T) {
	f := New(testArch())
	f.AllocH(1, 2, 1, 1, 3)
	defer func() {
		if recover() == nil {
			t.Error("double alloc did not panic")
		}
	}()
	f.AllocH(1, 2, 1, 1, 4)
}

func TestWrongOwnerFreePanics(t *testing.T) {
	f := New(testArch())
	f.AllocH(1, 2, 1, 1, 3)
	defer func() {
		if recover() == nil {
			t.Error("wrong-owner free did not panic")
		}
	}()
	f.FreeH(1, 2, 1, 1, 5)
}

func TestReset(t *testing.T) {
	f := New(testArch())
	f.AllocH(0, 0, 0, 1, 1)
	f.AllocV(0, 0, 0, 0, 1)
	f.Reset()
	if f.UsedH() != 0 || f.UsedV() != 0 {
		t.Error("Reset did not clear usage")
	}
	if f.HOwner(0, 0, 0) != Free || f.VOwner(0, 0, 0) != Free {
		t.Error("Reset did not clear owners")
	}
}

// Property: any sequence of install/remove of random well-formed routes keeps
// the ownership tables exactly consistent with the route set, and removing
// everything restores an all-free fabric.
func TestInstallRemoveRouteProperty(t *testing.T) {
	a := testArch()
	f := func(seed int64) bool {
		fab := New(a)
		r := rand.New(rand.NewSource(seed))
		routes := make([]NetRoute, 12)
		live := map[int]bool{}
		for step := 0; step < 60; step++ {
			id := r.Intn(len(routes))
			if live[id] {
				fab.RemoveRoute(int32(id), &routes[id])
				routes[id].Reset()
				delete(live, id)
				continue
			}
			// Build a random route that only claims free resources.
			nr := NetRoute{Global: true}
			if r.Intn(2) == 0 {
				col := r.Intn(a.Cols)
				vt := r.Intn(a.VTracks)
				lo := r.Intn(a.NVSegs)
				hi := lo + r.Intn(a.NVSegs-lo)
				if fab.VRangeFree(col, vt, lo, hi) {
					nr.HasTrunk = true
					nr.TrunkCol, nr.TrunkTrack, nr.VLo, nr.VHi = col, vt, lo, hi
				}
			}
			nch := 1 + r.Intn(2)
			used := map[int]bool{}
			for c := 0; c < nch; c++ {
				ch := r.Intn(a.Channels())
				if used[ch] {
					continue
				}
				used[ch] = true
				tr := r.Intn(a.Tracks)
				lo := r.Intn(a.Cols)
				hi := lo + r.Intn(a.Cols-lo)
				sl, sh := a.SegRange(tr, lo, hi)
				if fab.HRangeFree(ch, tr, sl, sh) {
					nr.Chans = append(nr.Chans, ChanAssign{Ch: ch, Lo: lo, Hi: hi, Track: tr, SegLo: sl, SegHi: sh})
				}
			}
			routes[id] = nr
			fab.InstallRoute(int32(id), &routes[id])
			live[id] = true

			if err := fab.CheckConsistent(routes); err != nil {
				t.Logf("seed %d step %d: %v", seed, step, err)
				return false
			}
		}
		for id := range live {
			fab.RemoveRoute(int32(id), &routes[id])
			routes[id].Reset()
		}
		return fab.UsedH() == 0 && fab.UsedV() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestNetRouteHelpers(t *testing.T) {
	r := NetRoute{Global: true, HasTrunk: true, VLo: 1, VHi: 3}
	r.Chans = []ChanAssign{
		{Ch: 0, Lo: 2, Hi: 9, Track: 0, SegLo: 1, SegHi: 3},
		{Ch: 2, Lo: 4, Hi: 5, Track: -1},
	}
	if r.DetailDone() {
		t.Error("route with unrouted channel reported done")
	}
	if r.UnroutedChans() != 1 {
		t.Errorf("UnroutedChans = %d, want 1", r.UnroutedChans())
	}
	// 2 horizontal antifuses (segs 1-3) + 1 trunk tap + 2 vertical antifuses.
	if got := r.AntifuseCount(); got != 5 {
		t.Errorf("AntifuseCount = %d, want 5", got)
	}
	c := r.Clone()
	if !r.Equal(&c) {
		t.Error("clone not equal")
	}
	c.Chans[0].Track = 5
	if r.Chans[0].Track == 5 {
		t.Error("clone shares Chans storage")
	}
	if r.Equal(&c) {
		t.Error("Equal missed difference")
	}
	r.Reset()
	if r.Global || r.HasTrunk || len(r.Chans) != 0 {
		t.Error("Reset incomplete")
	}
}

func TestCheckConsistentCatchesDrift(t *testing.T) {
	a := testArch()
	fab := New(a)
	routes := make([]NetRoute, 2)
	sl, sh := a.SegRange(0, 2, 7)
	routes[0] = NetRoute{Global: true, Chans: []ChanAssign{{Ch: 1, Lo: 2, Hi: 7, Track: 0, SegLo: sl, SegHi: sh}}}
	fab.InstallRoute(0, &routes[0])
	if err := fab.CheckConsistent(routes); err != nil {
		t.Fatalf("consistent state rejected: %v", err)
	}
	// Drift: free a segment behind the route's back.
	fab.FreeH(1, 0, sl, sl, 0)
	if err := fab.CheckConsistent(routes); err == nil {
		t.Error("drift not detected")
	}
}
