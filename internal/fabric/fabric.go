// Package fabric manages the physical routing resources of a row-based FPGA
// instance: ownership of every horizontal track segment in every channel and
// of every vertical track segment in every column, plus the route descriptors
// that record which resources a net currently holds. Both the incremental
// (in-the-annealing-loop) and the full (sequential-flow) routers allocate
// through this package, so resource accounting is exact by construction.
package fabric

import (
	"fmt"

	"repro/internal/arch"
)

// Free marks an unowned segment in the ownership tables.
const Free int32 = -1

// RouteStats counts router activity on a fabric. The routers (groute, droute,
// core's rip-up cascade) increment the fields unconditionally — plain integer
// adds, cheap enough to stay on in the hot loop — and the observability layer
// snapshots them at temperature boundaries to derive per-temperature deltas.
// Rollback traffic (Reject reinstating journaled routes) is deliberately not
// counted: the stats describe router work, not bookkeeping.
type RouteStats struct {
	RipUps         int64 // nets ripped up (resources freed ahead of a reroute)
	GRouteAttempts int64 // global-route attempts
	GRouteFails    int64 // global-route attempts that found no vertical run
	DRouteAttempts int64 // detailed channel-route attempts
	DRouteFails    int64 // detailed attempts with no feasible track
}

// Sub returns the delta s - prev, for per-interval reporting.
func (s RouteStats) Sub(prev RouteStats) RouteStats {
	return RouteStats{
		RipUps:         s.RipUps - prev.RipUps,
		GRouteAttempts: s.GRouteAttempts - prev.GRouteAttempts,
		GRouteFails:    s.GRouteFails - prev.GRouteFails,
		DRouteAttempts: s.DRouteAttempts - prev.DRouteAttempts,
		DRouteFails:    s.DRouteFails - prev.DRouteFails,
	}
}

// Fabric tracks segment ownership. Ownership violations (allocating an owned
// segment, freeing a segment not owned by the caller) are programming errors
// in the routers and panic.
type Fabric struct {
	A *arch.Arch

	// Stats accumulates router activity against this fabric. Cloned fabrics
	// carry the counts forward, so parallel chains keep independent tallies.
	Stats RouteStats

	h [][][]int32 // [channel][track][segment] -> owning net or Free
	v [][][]int32 // [column][vtrack][vsegment] -> owning net or Free

	usedH, usedV int
}

// New returns an empty fabric for the architecture.
func New(a *arch.Arch) *Fabric {
	f := &Fabric{A: a}
	f.h = make([][][]int32, a.Channels())
	for ch := range f.h {
		f.h[ch] = make([][]int32, a.Tracks)
		for t := range f.h[ch] {
			row := make([]int32, len(a.Seg[t]))
			for i := range row {
				row[i] = Free
			}
			f.h[ch][t] = row
		}
	}
	f.v = make([][][]int32, a.Cols)
	for c := range f.v {
		f.v[c] = make([][]int32, a.VTracks)
		for t := range f.v[c] {
			row := make([]int32, a.NVSegs)
			for i := range row {
				row[i] = Free
			}
			f.v[c][t] = row
		}
	}
	return f
}

// Clone returns a deep copy of the ownership tables, sharing only the
// immutable architecture.
func (f *Fabric) Clone() *Fabric {
	c := &Fabric{A: f.A, Stats: f.Stats, usedH: f.usedH, usedV: f.usedV}
	c.h = make([][][]int32, len(f.h))
	for ch := range f.h {
		c.h[ch] = make([][]int32, len(f.h[ch]))
		for t := range f.h[ch] {
			c.h[ch][t] = append([]int32(nil), f.h[ch][t]...)
		}
	}
	c.v = make([][][]int32, len(f.v))
	for col := range f.v {
		c.v[col] = make([][]int32, len(f.v[col]))
		for t := range f.v[col] {
			c.v[col][t] = append([]int32(nil), f.v[col][t]...)
		}
	}
	return c
}

// Reset frees every segment.
func (f *Fabric) Reset() {
	for _, ch := range f.h {
		for _, t := range ch {
			for i := range t {
				t[i] = Free
			}
		}
	}
	for _, c := range f.v {
		for _, t := range c {
			for i := range t {
				t[i] = Free
			}
		}
	}
	f.usedH, f.usedV = 0, 0
}

// HOwner returns the net owning horizontal segment (ch, track, seg), or Free.
func (f *Fabric) HOwner(ch, track, seg int) int32 { return f.h[ch][track][seg] }

// VOwner returns the net owning vertical segment (col, vtrack, vseg), or Free.
func (f *Fabric) VOwner(col, vtrack, vseg int) int32 { return f.v[col][vtrack][vseg] }

// HRangeFree reports whether horizontal segments [segLo, segHi] on (ch, track)
// are all free.
func (f *Fabric) HRangeFree(ch, track, segLo, segHi int) bool {
	row := f.h[ch][track]
	for i := segLo; i <= segHi; i++ {
		if row[i] != Free {
			return false
		}
	}
	return true
}

// VRangeFree reports whether vertical segments [vLo, vHi] on (col, vtrack)
// are all free.
func (f *Fabric) VRangeFree(col, vtrack, vLo, vHi int) bool {
	row := f.v[col][vtrack]
	for i := vLo; i <= vHi; i++ {
		if row[i] != Free {
			return false
		}
	}
	return true
}

// AllocH assigns horizontal segments [segLo, segHi] on (ch, track) to net.
func (f *Fabric) AllocH(ch, track, segLo, segHi int, net int32) {
	row := f.h[ch][track]
	for i := segLo; i <= segHi; i++ {
		if row[i] != Free {
			panic(fmt.Sprintf("fabric: AllocH ch=%d track=%d seg=%d already owned by net %d (want net %d)",
				ch, track, i, row[i], net))
		}
		row[i] = net
	}
	f.usedH += segHi - segLo + 1
}

// FreeH releases horizontal segments [segLo, segHi] on (ch, track) owned by net.
func (f *Fabric) FreeH(ch, track, segLo, segHi int, net int32) {
	row := f.h[ch][track]
	for i := segLo; i <= segHi; i++ {
		if row[i] != net {
			panic(fmt.Sprintf("fabric: FreeH ch=%d track=%d seg=%d owned by net %d, not %d",
				ch, track, i, row[i], net))
		}
		row[i] = Free
	}
	f.usedH -= segHi - segLo + 1
}

// AllocV assigns vertical segments [vLo, vHi] on (col, vtrack) to net.
func (f *Fabric) AllocV(col, vtrack, vLo, vHi int, net int32) {
	row := f.v[col][vtrack]
	for i := vLo; i <= vHi; i++ {
		if row[i] != Free {
			panic(fmt.Sprintf("fabric: AllocV col=%d vtrack=%d vseg=%d already owned by net %d (want net %d)",
				col, vtrack, i, row[i], net))
		}
		row[i] = net
	}
	f.usedV += vHi - vLo + 1
}

// FreeV releases vertical segments [vLo, vHi] on (col, vtrack) owned by net.
func (f *Fabric) FreeV(col, vtrack, vLo, vHi int, net int32) {
	row := f.v[col][vtrack]
	for i := vLo; i <= vHi; i++ {
		if row[i] != net {
			panic(fmt.Sprintf("fabric: FreeV col=%d vtrack=%d vseg=%d owned by net %d, not %d",
				col, vtrack, i, row[i], net))
		}
		row[i] = Free
	}
	f.usedV -= vHi - vLo + 1
}

// UsedH returns the number of horizontal segments currently owned.
func (f *Fabric) UsedH() int { return f.usedH }

// UsedV returns the number of vertical segments currently owned.
func (f *Fabric) UsedV() int { return f.usedV }
