// Package layio serializes finished layouts — placement, pinmaps and
// per-net segment assignments — to a line-oriented text format and loads
// them back with full validation against the architecture and netlist. It
// lets layouts be archived, diffed, and re-analyzed without re-running the
// optimizer.
//
// Format:
//
//	layout DESIGN rows R cols C tracks T
//	place CELL ROW COL PINMAP
//	net NAME unrouted
//	net NAME global [trunk COL VTRACK VLO VHI] [chan CH LO HI TRACK SEGLO SEGHI | chan CH LO HI open]...
package layio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/arch"
	"repro/internal/fabric"
	"repro/internal/layout"
	"repro/internal/netlist"
)

// Write emits the layout. Cells and nets appear in index order, so output is
// canonical for a given state.
func Write(w io.Writer, p *layout.Placement, routes []fabric.NetRoute) error {
	bw := bufio.NewWriter(w)
	a := p.A
	fmt.Fprintf(bw, "layout %s rows %d cols %d tracks %d\n", p.NL.Name, a.Rows, a.Cols, a.Tracks)
	for id := range p.NL.Cells {
		loc := p.Loc[id]
		fmt.Fprintf(bw, "place %s %d %d %d\n", p.NL.Cells[id].Name, loc.Row, loc.Col, p.Pm[id])
	}
	for id := range p.NL.Nets {
		name := p.NL.Nets[id].Name
		if id >= len(routes) || !routes[id].Global {
			fmt.Fprintf(bw, "net %s unrouted\n", name)
			continue
		}
		r := &routes[id]
		fmt.Fprintf(bw, "net %s global", name)
		if r.HasTrunk {
			fmt.Fprintf(bw, " trunk %d %d %d %d", r.TrunkCol, r.TrunkTrack, r.VLo, r.VHi)
		}
		for i := range r.Chans {
			ca := &r.Chans[i]
			if ca.Routed() {
				fmt.Fprintf(bw, " chan %d %d %d %d %d %d", ca.Ch, ca.Lo, ca.Hi, ca.Track, ca.SegLo, ca.SegHi)
			} else {
				fmt.Fprintf(bw, " chan %d %d %d open", ca.Ch, ca.Lo, ca.Hi)
			}
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// Read parses a layout written by Write and validates it against the
// architecture and netlist: geometry bounds, placement legality, resource
// exclusivity (via a fresh fabric), and per-net channel coverage of the pin
// positions.
func Read(rd io.Reader, a *arch.Arch, nl *netlist.Netlist) (*layout.Placement, []fabric.NetRoute, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)

	p := &layout.Placement{A: a, NL: nl}
	p.Loc = make([]layout.Loc, nl.NumCells())
	p.Pm = make([]uint8, nl.NumCells())
	p.Slot = make([][]int32, a.Rows)
	for r := range p.Slot {
		p.Slot[r] = make([]int32, a.Cols)
		for c := range p.Slot[r] {
			p.Slot[r][c] = -1
		}
	}
	placed := make([]bool, nl.NumCells())
	routes := make([]fabric.NetRoute, nl.NumNets())
	seenNet := make([]bool, nl.NumNets())

	lineNo := 0
	header := false
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		switch f[0] {
		case "layout":
			if header {
				return nil, nil, fmt.Errorf("layio: line %d: duplicate header", lineNo)
			}
			header = true
			if len(f) != 8 || f[2] != "rows" || f[4] != "cols" || f[6] != "tracks" {
				return nil, nil, fmt.Errorf("layio: line %d: malformed header", lineNo)
			}
			if f[1] != nl.Name {
				return nil, nil, fmt.Errorf("layio: line %d: layout is for design %q, netlist is %q", lineNo, f[1], nl.Name)
			}
			r, _ := strconv.Atoi(f[3])
			c, _ := strconv.Atoi(f[5])
			t, _ := strconv.Atoi(f[7])
			if r != a.Rows || c != a.Cols || t != a.Tracks {
				return nil, nil, fmt.Errorf("layio: line %d: layout geometry %dx%d/%d does not match architecture %dx%d/%d",
					lineNo, r, c, t, a.Rows, a.Cols, a.Tracks)
			}
		case "place":
			if !header {
				return nil, nil, fmt.Errorf("layio: line %d: place before header", lineNo)
			}
			if len(f) != 5 {
				return nil, nil, fmt.Errorf("layio: line %d: place wants CELL ROW COL PINMAP", lineNo)
			}
			id := nl.CellID(f[1])
			if id < 0 {
				return nil, nil, fmt.Errorf("layio: line %d: unknown cell %q", lineNo, f[1])
			}
			if placed[id] {
				return nil, nil, fmt.Errorf("layio: line %d: cell %q placed twice", lineNo, f[1])
			}
			row, err1 := strconv.Atoi(f[2])
			col, err2 := strconv.Atoi(f[3])
			pm, err3 := strconv.Atoi(f[4])
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, nil, fmt.Errorf("layio: line %d: bad place numbers", lineNo)
			}
			if row < 0 || row >= a.Rows || col < 0 || col >= a.Cols {
				return nil, nil, fmt.Errorf("layio: line %d: slot (%d,%d) out of range", lineNo, row, col)
			}
			if pm < 0 || pm >= arch.NumPinmaps {
				return nil, nil, fmt.Errorf("layio: line %d: pinmap %d out of range", lineNo, pm)
			}
			if p.Slot[row][col] >= 0 {
				return nil, nil, fmt.Errorf("layio: line %d: slot (%d,%d) already occupied", lineNo, row, col)
			}
			p.Slot[row][col] = id
			p.Loc[id] = layout.Loc{Row: row, Col: col}
			p.Pm[id] = uint8(pm)
			placed[id] = true
		case "net":
			if !header {
				return nil, nil, fmt.Errorf("layio: line %d: net before header", lineNo)
			}
			if len(f) < 3 {
				return nil, nil, fmt.Errorf("layio: line %d: net wants NAME STATE", lineNo)
			}
			id := nl.NetID(f[1])
			if id < 0 {
				return nil, nil, fmt.Errorf("layio: line %d: unknown net %q", lineNo, f[1])
			}
			if seenNet[id] {
				return nil, nil, fmt.Errorf("layio: line %d: net %q appears twice", lineNo, f[1])
			}
			seenNet[id] = true
			if f[2] == "unrouted" {
				continue
			}
			if f[2] != "global" {
				return nil, nil, fmt.Errorf("layio: line %d: unknown net state %q", lineNo, f[2])
			}
			r := &routes[id]
			r.Global = true
			toks := f[3:]
			for len(toks) > 0 {
				switch toks[0] {
				case "trunk":
					if len(toks) < 5 {
						return nil, nil, fmt.Errorf("layio: line %d: short trunk", lineNo)
					}
					nums, err := atoiAll(toks[1:5])
					if err != nil {
						return nil, nil, fmt.Errorf("layio: line %d: %v", lineNo, err)
					}
					r.HasTrunk = true
					r.TrunkCol, r.TrunkTrack, r.VLo, r.VHi = nums[0], nums[1], nums[2], nums[3]
					if r.TrunkCol < 0 || r.TrunkCol >= a.Cols || r.TrunkTrack < 0 || r.TrunkTrack >= a.VTracks ||
						r.VLo < 0 || r.VHi < r.VLo || r.VHi >= a.NVSegs {
						return nil, nil, fmt.Errorf("layio: line %d: trunk out of range", lineNo)
					}
					toks = toks[5:]
				case "chan":
					if len(toks) < 5 {
						return nil, nil, fmt.Errorf("layio: line %d: short chan", lineNo)
					}
					nums, err := atoiAll(toks[1:4])
					if err != nil {
						return nil, nil, fmt.Errorf("layio: line %d: %v", lineNo, err)
					}
					ca := fabric.ChanAssign{Ch: nums[0], Lo: nums[1], Hi: nums[2], Track: -1}
					if ca.Ch < 0 || ca.Ch >= a.Channels() || ca.Lo < 0 || ca.Hi < ca.Lo || ca.Hi >= a.Cols {
						return nil, nil, fmt.Errorf("layio: line %d: chan out of range", lineNo)
					}
					if toks[4] == "open" {
						r.Chans = append(r.Chans, ca)
						toks = toks[5:]
						break
					}
					if len(toks) < 7 {
						return nil, nil, fmt.Errorf("layio: line %d: short routed chan", lineNo)
					}
					nums, err = atoiAll(toks[4:7])
					if err != nil {
						return nil, nil, fmt.Errorf("layio: line %d: %v", lineNo, err)
					}
					ca.Track, ca.SegLo, ca.SegHi = nums[0], nums[1], nums[2]
					if ca.Track < 0 || ca.Track >= a.Tracks ||
						ca.SegLo < 0 || ca.SegHi < ca.SegLo || ca.SegHi >= len(a.Seg[ca.Track]) {
						return nil, nil, fmt.Errorf("layio: line %d: segment run out of range", lineNo)
					}
					segs := a.Seg[ca.Track]
					if segs[ca.SegLo].Start > ca.Lo || segs[ca.SegHi].End <= ca.Hi {
						return nil, nil, fmt.Errorf("layio: line %d: net %q segments do not cover [%d,%d]", lineNo, f[1], ca.Lo, ca.Hi)
					}
					r.Chans = append(r.Chans, ca)
					toks = toks[7:]
				default:
					return nil, nil, fmt.Errorf("layio: line %d: unknown token %q", lineNo, toks[0])
				}
			}
		default:
			return nil, nil, fmt.Errorf("layio: line %d: unknown directive %q", lineNo, f[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("layio: read: %w", err)
	}
	if !header {
		return nil, nil, fmt.Errorf("layio: missing header")
	}
	for id, ok := range placed {
		if !ok {
			return nil, nil, fmt.Errorf("layio: cell %q unplaced", nl.Cells[id].Name)
		}
	}
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	// Resource exclusivity: install everything into a fresh fabric. Fabric
	// panics on double allocation; convert to an error.
	f := fabric.New(a)
	if err := installAll(f, routes); err != nil {
		return nil, nil, err
	}
	if err := f.CheckConsistent(routes); err != nil {
		return nil, nil, err
	}
	return p, routes, nil
}

func installAll(f *fabric.Fabric, routes []fabric.NetRoute) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("layio: resource conflict: %v", r)
		}
	}()
	for id := range routes {
		f.InstallRoute(int32(id), &routes[id])
	}
	return nil
}

func atoiAll(toks []string) ([]int, error) {
	out := make([]int, len(toks))
	for i, t := range toks {
		v, err := strconv.Atoi(t)
		if err != nil {
			return nil, fmt.Errorf("bad number %q", t)
		}
		out[i] = v
	}
	return out, nil
}
