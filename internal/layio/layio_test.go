package layio

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/netgen"
	"repro/internal/netlist"
)

// routedState produces a real placed-and-routed design to serialize.
func routedState(t *testing.T) (*arch.Arch, *netlist.Netlist, *core.Optimizer) {
	t.Helper()
	nl, err := netgen.Generate(netgen.Params{Name: "lt", Inputs: 4, Outputs: 3, Seq: 2, Comb: 25, Seed: 91})
	if err != nil {
		t.Fatal(err)
	}
	a := arch.MustNew(arch.Default(5, 12, 14))
	o, err := core.New(a, nl, core.Config{Seed: 3, MovesPerCell: 5, MaxTemps: 40})
	if err != nil {
		t.Fatal(err)
	}
	o.Run()
	return a, nl, o
}

func TestWriteReadRoundTrip(t *testing.T) {
	a, nl, o := routedState(t)
	var buf bytes.Buffer
	if err := Write(&buf, o.P, o.Rts); err != nil {
		t.Fatal(err)
	}
	p2, routes2, err := Read(bytes.NewReader(buf.Bytes()), a, nl)
	if err != nil {
		t.Fatal(err)
	}
	for id := range nl.Cells {
		if p2.Loc[id] != o.P.Loc[id] || p2.Pm[id] != o.P.Pm[id] {
			t.Fatalf("cell %d placement drifted", id)
		}
	}
	for id := range routes2 {
		if !routes2[id].Equal(&o.Rts[id]) {
			t.Fatalf("net %d route drifted", id)
		}
	}
	// Canonical: rewriting gives identical bytes.
	var buf2 bytes.Buffer
	if err := Write(&buf2, p2, routes2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("write(read(write(x))) != write(x)")
	}
}

func TestReadRejectsCorruption(t *testing.T) {
	a, nl, o := routedState(t)
	var buf bytes.Buffer
	if err := Write(&buf, o.P, o.Rts); err != nil {
		t.Fatal(err)
	}
	base := buf.String()

	mutations := []struct {
		name string
		mut  func(string) string
		want string
	}{
		{"wrong design", func(s string) string { return strings.Replace(s, "layout lt", "layout other", 1) }, "design"},
		{"wrong geometry", func(s string) string { return strings.Replace(s, "rows 5", "rows 6", 1) }, "geometry"},
		{"unknown cell", func(s string) string { return strings.Replace(s, "place g0 ", "place ghost ", 1) }, "unknown cell"},
		{"missing cell", func(s string) string {
			i := strings.Index(s, "place g0")
			j := strings.Index(s[i:], "\n")
			return s[:i] + s[i+j+1:]
		}, "unplaced"},
		{"garbage", func(s string) string { return s + "frobnicate 1 2\n" }, "unknown directive"},
		{"no header", func(s string) string {
			return strings.Replace(s, "layout lt", "# layout lt", 1)
		}, "header"},
	}
	for _, m := range mutations {
		_, _, err := Read(strings.NewReader(m.mut(base)), a, nl)
		if err == nil || !strings.Contains(err.Error(), m.want) {
			t.Errorf("%s: got %v, want contains %q", m.name, err, m.want)
		}
	}
}

func TestReadRejectsResourceConflict(t *testing.T) {
	a, nl, o := routedState(t)
	// Find two routed single-channel nets and force them onto the same
	// track/segments by editing the serialized form.
	var buf bytes.Buffer
	if err := Write(&buf, o.P, o.Rts); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(buf.String(), "\n")
	first := ""
	edited := false
	for i, ln := range lines {
		if !strings.HasPrefix(ln, "net ") || !strings.Contains(ln, " chan ") || strings.Contains(ln, "trunk") {
			continue
		}
		body := ln[strings.Index(ln, " chan "):]
		if first == "" {
			first = body
			continue
		}
		lines[i] = ln[:strings.Index(ln, " chan ")] + first
		edited = true
		break
	}
	if !edited {
		t.Skip("could not build conflict scenario")
	}
	_, _, err := Read(strings.NewReader(strings.Join(lines, "\n")), a, nl)
	if err == nil {
		t.Error("resource conflict accepted")
	}
}

func TestReadRejectsDoublePlacement(t *testing.T) {
	a, nl, o := routedState(t)
	var buf bytes.Buffer
	if err := Write(&buf, o.P, o.Rts); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	// Duplicate the first place line: same cell twice.
	i := strings.Index(s, "place ")
	j := strings.Index(s[i:], "\n")
	dup := s[:i+j+1] + s[i:i+j+1] + s[i+j+1:]
	if _, _, err := Read(strings.NewReader(dup), a, nl); err == nil {
		t.Error("double placement accepted")
	}
}

func TestReadPartialRoutesOK(t *testing.T) {
	// A layout with unrouted and open-channel nets must load.
	nl, err := netgen.Generate(netgen.Params{Name: "lt2", Inputs: 3, Outputs: 2, Seq: 1, Comb: 10, Seed: 92})
	if err != nil {
		t.Fatal(err)
	}
	a := arch.MustNew(arch.Default(3, 10, 2))
	o, err := core.New(a, nl, core.Config{Seed: 3, MovesPerCell: 2, MaxTemps: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Rip a couple of nets to create unrouted/open states deterministically.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10; i++ {
		o.Propose(rng)
		o.Reject()
	}
	var buf bytes.Buffer
	if err := Write(&buf, o.P, o.Rts); err != nil {
		t.Fatal(err)
	}
	_, routes, err := Read(bytes.NewReader(buf.Bytes()), a, nl)
	if err != nil {
		t.Fatal(err)
	}
	f := fabric.New(a)
	for id := range routes {
		f.InstallRoute(int32(id), &routes[id])
	}
	if err := f.CheckConsistent(routes); err != nil {
		t.Error(err)
	}
}
