// Package techmap implements the technology-mapping stage of the paper's
// Figure-1 flow (its references [9][16][17]): converting a generic logic
// netlist into a netlist of FPGA logic-module-sized cells. Two structural
// transformations are provided, mirroring the classic mappers' effect on the
// netlist the layout tools consume:
//
//   - fanin legalization: any combinational cell with more than K inputs is
//     decomposed into a balanced tree of K-input cells (Chortle-style tree
//     decomposition);
//   - absorption packing: a combinational cell whose only fanout is another
//     combinational cell is merged into it when the merged support still
//     fits in K inputs (the covering step of LUT mappers, which reduces both
//     cell count and logic depth).
//
// The layout system consumes only netlist structure, so mapping is
// structural: module logic functions are opaque here, exactly as they are to
// the placer and routers.
package techmap

import (
	"fmt"
	"sort"

	"repro/internal/netlist"
)

// Options configures mapping.
type Options struct {
	K         int     // module input limit (default 4)
	NoAbsorb  bool    // disable absorption packing (ablation)
	CombDelay float64 // delay for cells created by decomposition (default 3000)
}

func (o *Options) setDefaults() {
	if o.K <= 1 {
		o.K = 4
	}
	if o.CombDelay <= 0 {
		o.CombDelay = 3000
	}
}

// Stats reports a mapping run.
type Stats struct {
	CellsIn, CellsOut int
	DepthIn, DepthOut int
	Decomposed        int // cells split for fanin legalization
	TreeCellsAdded    int // extra cells created by decomposition
	Absorbed          int // cells merged away by packing
}

// Map returns a new netlist in which every combinational cell has at most
// opt.K inputs.
func Map(nl *netlist.Netlist, opt Options) (*netlist.Netlist, Stats, error) {
	opt.setDefaults()
	var st Stats
	st.CellsIn = nl.NumCells()
	if lv, err := nl.Levels(); err == nil {
		for _, l := range lv {
			if int(l) > st.DepthIn {
				st.DepthIn = int(l)
			}
		}
	}

	work := buildWork(nl)
	decompose(work, opt, &st)
	if !opt.NoAbsorb {
		absorb(work, opt, &st)
	}
	out, err := work.emit(nl.Name)
	if err != nil {
		return nil, st, err
	}
	st.CellsOut = out.NumCells()
	if lv, err := out.Levels(); err == nil {
		for _, l := range lv {
			if int(l) > st.DepthOut {
				st.DepthOut = int(l)
			}
		}
	}
	return out, st, nil
}

// workCell is a mutable cell during mapping; inputs are net names.
type workCell struct {
	name   string
	typ    netlist.CellType
	delay  float64
	out    string
	inputs []string
	dead   bool
}

// workNetlist is the mutable mapping state.
type workNetlist struct {
	cells   []*workCell
	byOut   map[string]*workCell // net name -> producing cell
	fanouts map[string]int       // net name -> sink count
	nextID  int
}

func buildWork(nl *netlist.Netlist) *workNetlist {
	w := &workNetlist{
		byOut:   make(map[string]*workCell),
		fanouts: make(map[string]int),
	}
	for i := range nl.Cells {
		c := &nl.Cells[i]
		wc := &workCell{name: c.Name, typ: c.Type, delay: c.Delay}
		if c.Out >= 0 {
			wc.out = nl.Nets[c.Out].Name
			w.byOut[wc.out] = wc
		}
		for _, in := range c.In {
			if in < 0 {
				wc.inputs = append(wc.inputs, "")
				continue
			}
			name := nl.Nets[in].Name
			wc.inputs = append(wc.inputs, name)
			w.fanouts[name]++
		}
		w.cells = append(w.cells, wc)
	}
	return w
}

func (w *workNetlist) freshNet() string {
	w.nextID++
	return fmt.Sprintf("tm%d", w.nextID)
}

func (w *workNetlist) addCell(c *workCell) {
	w.cells = append(w.cells, c)
	if c.out != "" {
		w.byOut[c.out] = c
	}
	for _, in := range c.inputs {
		if in != "" {
			w.fanouts[in]++
		}
	}
}

// decompose splits every comb cell with more than K inputs into a balanced
// tree: groups of K inputs feed new intermediate cells until the root fits.
func decompose(w *workNetlist, opt Options, st *Stats) {
	n := len(w.cells) // only original cells; new ones are legal by construction
	for i := 0; i < n; i++ {
		c := w.cells[i]
		if c.typ != netlist.Comb || len(c.inputs) <= opt.K {
			continue
		}
		st.Decomposed++
		level := append([]string(nil), c.inputs...)
		for len(level) > opt.K {
			var next []string
			for j := 0; j < len(level); j += opt.K {
				end := j + opt.K
				if end > len(level) {
					end = len(level)
				}
				group := level[j:end]
				if len(group) == 1 {
					next = append(next, group[0])
					continue
				}
				out := w.freshNet()
				st.TreeCellsAdded++
				w.addCell(&workCell{
					name:   fmt.Sprintf("%s_t%d", c.name, w.nextID),
					typ:    netlist.Comb,
					delay:  opt.CombDelay,
					out:    out,
					inputs: append([]string(nil), group...),
				})
				next = append(next, out)
			}
			level = next
		}
		// Rewire the root to the reduced input set.
		for _, in := range c.inputs {
			if in != "" {
				w.fanouts[in]--
			}
		}
		c.inputs = level
		for _, in := range c.inputs {
			if in != "" {
				w.fanouts[in]++
			}
		}
	}
}

// absorb merges single-fanout comb cells into their unique comb fanout when
// the merged support fits K inputs. Iterates to a fixed point.
func absorb(w *workNetlist, opt Options, st *Stats) {
	// sinksOf maps a net to its consuming cells (recomputed per round; the
	// netlists here are small).
	for changed := true; changed; {
		changed = false
		sinksOf := make(map[string][]*workCell)
		for _, c := range w.cells {
			if c.dead {
				continue
			}
			for _, in := range c.inputs {
				if in != "" {
					sinksOf[in] = append(sinksOf[in], c)
				}
			}
		}
		for _, c := range w.cells {
			if c.dead || c.typ != netlist.Comb || c.out == "" {
				continue
			}
			sinks := sinksOf[c.out]
			if len(sinks) != 1 || w.fanouts[c.out] != 1 {
				continue
			}
			host := sinks[0]
			if host.dead || host.typ != netlist.Comb || host == c {
				continue
			}
			// Merged support: host inputs minus c.out, plus c's inputs.
			support := make(map[string]bool)
			for _, in := range host.inputs {
				if in != "" && in != c.out {
					support[in] = true
				}
			}
			for _, in := range c.inputs {
				if in != "" {
					support[in] = true
				}
			}
			if len(support) > opt.K {
				continue
			}
			// Absorb: host's input list becomes the merged support.
			for _, in := range host.inputs {
				if in != "" {
					w.fanouts[in]--
				}
			}
			for _, in := range c.inputs {
				if in != "" {
					w.fanouts[in]--
				}
			}
			merged := make([]string, 0, len(support))
			for in := range support {
				merged = append(merged, in)
			}
			sort.Strings(merged)
			host.inputs = merged
			for _, in := range host.inputs {
				w.fanouts[in]++
			}
			host.delay = maxF(host.delay, c.delay)
			delete(w.byOut, c.out)
			c.dead = true
			st.Absorbed++
			changed = true
		}
	}
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// emit materializes the work state as a validated netlist.
func (w *workNetlist) emit(name string) (*netlist.Netlist, error) {
	b := netlist.NewBuilder(name)
	for _, c := range w.cells {
		if c.dead {
			continue
		}
		b.AddCell(c.name, c.typ, c.delay, c.out, c.inputs...)
	}
	return b.Build()
}
