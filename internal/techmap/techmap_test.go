package techmap

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/netlist"
)

// wideGate builds pi0..pi{n-1} -> one n-input gate -> po.
func wideGate(t *testing.T, n int) *netlist.Netlist {
	t.Helper()
	b := netlist.NewBuilder("wide")
	ins := make([]string, n)
	for i := range ins {
		ins[i] = fmt.Sprintf("a%d", i)
		b.Input(fmt.Sprintf("pi%d", i), ins[i])
	}
	b.Comb("g", 3000, "y", ins...)
	b.Output("po", "y")
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return nl
}

func maxFanin(nl *netlist.Netlist) int {
	m := 0
	for i := range nl.Cells {
		if nl.Cells[i].Type == netlist.Comb && len(nl.Cells[i].In) > m {
			m = len(nl.Cells[i].In)
		}
	}
	return m
}

func TestDecomposeWideGate(t *testing.T) {
	for _, n := range []int{5, 9, 16, 33} {
		nl := wideGate(t, n)
		out, st, err := Map(nl, Options{K: 4})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if got := maxFanin(out); got > 4 {
			t.Errorf("n=%d: max fanin %d after mapping", n, got)
		}
		if err := out.Validate(); err != nil {
			t.Errorf("n=%d: %v", n, err)
		}
		if st.Decomposed != 1 {
			t.Errorf("n=%d: decomposed = %d", n, st.Decomposed)
		}
		// Balanced tree over n leaves with arity 4: depth is ceil(log4(n)).
		lv, _ := out.Levels()
		depth := 0
		for _, l := range lv {
			if int(l) > depth {
				depth = int(l)
			}
		}
		wantDepth := 1 // pads add one level
		for m := n; m > 4; m = (m + 3) / 4 {
			wantDepth++
		}
		wantDepth++ // root gate level
		if depth > wantDepth {
			t.Errorf("n=%d: depth %d, want <= %d (balanced tree)", n, depth, wantDepth)
		}
	}
}

func TestLegalNetlistUntouched(t *testing.T) {
	b := netlist.NewBuilder("ok")
	b.Input("pi", "a")
	b.Comb("g1", 3000, "x", "a")
	b.Comb("g2", 3000, "y", "x", "a")
	b.Output("po", "y")
	nl := b.MustBuild()
	out, st, err := Map(nl, Options{K: 4, NoAbsorb: true})
	if err != nil {
		t.Fatal(err)
	}
	if st.Decomposed != 0 || st.TreeCellsAdded != 0 || st.Absorbed != 0 {
		t.Errorf("legal netlist modified: %+v", st)
	}
	if out.NumCells() != nl.NumCells() {
		t.Errorf("cells %d -> %d", nl.NumCells(), out.NumCells())
	}
}

func TestAbsorbChain(t *testing.T) {
	// g1(a,b) -> g2(g1,c): single fanout, merged support {a,b,c} fits K=4.
	b := netlist.NewBuilder("chain")
	b.Input("pa", "a")
	b.Input("pb", "b")
	b.Input("pc", "c")
	b.Comb("g1", 3000, "m", "a", "b")
	b.Comb("g2", 3000, "y", "m", "c")
	b.Output("po", "y")
	nl := b.MustBuild()
	out, st, err := Map(nl, Options{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if st.Absorbed != 1 {
		t.Fatalf("absorbed = %d, want 1", st.Absorbed)
	}
	g2 := out.CellID("g2")
	if g2 < 0 {
		t.Fatal("g2 missing")
	}
	if len(out.Cells[g2].In) != 3 {
		t.Errorf("g2 fanin %d, want 3 (a,b,c)", len(out.Cells[g2].In))
	}
	if out.CellID("g1") >= 0 {
		t.Error("g1 should have been absorbed")
	}
	if st.DepthOut >= st.DepthIn {
		t.Errorf("absorption did not reduce depth: %d -> %d", st.DepthIn, st.DepthOut)
	}
}

func TestAbsorbRespectsFanout(t *testing.T) {
	// g1 feeds two cells: must not be absorbed.
	b := netlist.NewBuilder("fan")
	b.Input("pa", "a")
	b.Comb("g1", 3000, "m", "a")
	b.Comb("g2", 3000, "y", "m")
	b.Comb("g3", 3000, "z", "m")
	b.Output("po1", "y")
	b.Output("po2", "z")
	nl := b.MustBuild()
	out, _, err := Map(nl, Options{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if out.CellID("g1") < 0 {
		t.Error("multi-fanout cell absorbed")
	}
}

func TestAbsorbRespectsK(t *testing.T) {
	// Merged support would be 5 > K=4: no absorption.
	b := netlist.NewBuilder("big")
	for _, n := range []string{"a", "b", "c", "d", "e"} {
		b.Input("p"+n, n)
	}
	b.Comb("g1", 3000, "m", "a", "b", "c")
	b.Comb("g2", 3000, "y", "m", "d", "e")
	b.Output("po", "y")
	nl := b.MustBuild()
	out, st, err := Map(nl, Options{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if st.Absorbed != 0 {
		t.Errorf("absorbed = %d, want 0", st.Absorbed)
	}
	if out.CellID("g1") < 0 {
		t.Error("g1 should survive")
	}
}

func TestSeqAndPadsNeverTouched(t *testing.T) {
	b := netlist.NewBuilder("seqs")
	b.Input("pi", "a")
	b.Comb("g1", 3000, "m", "a")
	b.Seq("ff", 3500, "q", "m")
	b.Comb("g2", 3000, "y", "q")
	b.Output("po", "y")
	nl := b.MustBuild()
	out, _, err := Map(nl, Options{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"pi", "ff", "po"} {
		if out.CellID(name) < 0 {
			t.Errorf("%s disappeared", name)
		}
	}
	// g1 must not be absorbed into the flop.
	if out.CellID("g1") < 0 {
		t.Error("comb cell absorbed into a sequential cell")
	}
}

// Property: mapping always yields a valid netlist with fanin <= K, preserves
// pads and sequential cells, and is idempotent.
func TestMapProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := netlist.NewBuilder("prop")
		nIn := 2 + rng.Intn(6)
		var pool []string
		for i := 0; i < nIn; i++ {
			n := fmt.Sprintf("i%d", i)
			b.Input("pi"+n, n)
			pool = append(pool, n)
		}
		nG := 1 + rng.Intn(25)
		for g := 0; g < nG; g++ {
			k := 1 + rng.Intn(9) // deliberately beyond K
			seen := map[string]bool{}
			var ins []string
			for j := 0; j < k; j++ {
				c := pool[rng.Intn(len(pool))]
				if !seen[c] {
					seen[c] = true
					ins = append(ins, c)
				}
			}
			out := fmt.Sprintf("n%d", g)
			b.Comb(fmt.Sprintf("g%d", g), 3000, out, ins...)
			pool = append(pool, out)
		}
		b.Output("po", pool[len(pool)-1])
		nl, err := b.Build()
		if err != nil {
			return false
		}
		k := 2 + int(seed%3+3)%3 // K in {2,3,4}
		out, _, err := Map(nl, Options{K: k})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if maxFanin(out) > k {
			t.Logf("seed %d: fanin %d > K %d", seed, maxFanin(out), k)
			return false
		}
		if err := out.Validate(); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		// Idempotent.
		again, st2, err := Map(out, Options{K: k})
		if err != nil {
			return false
		}
		return st2.Decomposed == 0 && st2.Absorbed == 0 && again.NumCells() == out.NumCells()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
