package portfolio

import (
	"reflect"
	"testing"
)

func TestExpandOrderDeterministic(t *testing.T) {
	m := Matrix{
		Seeds:    []int64{1, 2},
		Efforts:  []Effort{{Name: "fast", MovesPerCell: 4}, {}},
		Backends: []string{"", "lagrange"},
	}
	got, err := m.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 8 {
		t.Fatalf("len = %d, want 8", len(got))
	}
	// Nesting order: efforts (outer) × backends × seeds (inner, fastest).
	want := []Member{
		{Index: 0, Seed: 1, Effort: Effort{Name: "fast", MovesPerCell: 4}},
		{Index: 1, Seed: 2, Effort: Effort{Name: "fast", MovesPerCell: 4}},
		{Index: 2, Seed: 1, Effort: Effort{Name: "fast", MovesPerCell: 4}, Backend: "lagrange"},
		{Index: 3, Seed: 2, Effort: Effort{Name: "fast", MovesPerCell: 4}, Backend: "lagrange"},
		{Index: 4, Seed: 1},
		{Index: 5, Seed: 2},
		{Index: 6, Seed: 1, Backend: "lagrange"},
		{Index: 7, Seed: 2, Backend: "lagrange"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("expansion order changed:\n got %+v\nwant %+v", got, want)
	}
	again, err := m.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, again) {
		t.Fatal("expansion is not deterministic")
	}
}

func TestExpandEmptyAxesInherit(t *testing.T) {
	m := Matrix{Seeds: []int64{7}}
	got, err := m.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Seed != 7 || got[0].Backend != "" || !got[0].Effort.zero() {
		t.Fatalf("single-axis expansion = %+v", got)
	}
}

func TestExpandRejections(t *testing.T) {
	cases := []struct {
		name string
		m    Matrix
	}{
		{"empty", Matrix{}},
		{"unresolved preset", Matrix{Preset: "paper8"}},
		{"preset plus axes", Matrix{Preset: "paper8", Seeds: []int64{1}}},
		{"negative seed", Matrix{Seeds: []int64{-1}}},
		{"bad backend", Matrix{Backends: []string{"warp"}}},
		{"negative effort", Matrix{Efforts: []Effort{{MaxTemps: -4}}}},
		{"too many members", Matrix{Seeds: make([]int64, MaxMembers+1)}},
	}
	for _, tc := range cases {
		if _, err := tc.m.Expand(); err == nil {
			t.Errorf("%s: expansion accepted, want error", tc.name)
		}
	}
	// Size counts without validating.
	big := Matrix{Seeds: []int64{1, 2, 3}, Backends: []string{"", "negotiated"}}
	if big.Size() != 6 {
		t.Errorf("Size = %d, want 6", big.Size())
	}
}

func TestScoreOrder(t *testing.T) {
	routed := Score{WCDPs: 100, Cost: 10}
	cases := []struct {
		name string
		a, b Score
		less bool
	}{
		{"routed beats unrouted", routed, Score{RouteFailed: true, Unrouted: 1, WCDPs: 1, Cost: 1}, true},
		{"fewer unrouted", Score{RouteFailed: true, Unrouted: 2}, Score{RouteFailed: true, Unrouted: 5}, true},
		{"shorter critical path", Score{WCDPs: 90, Cost: 99}, routed, true},
		{"lower cost on equal WCD", Score{WCDPs: 100, Cost: 9}, routed, true},
		{"equal is not less", routed, routed, false},
	}
	for _, tc := range cases {
		if got := tc.a.Less(tc.b); got != tc.less {
			t.Errorf("%s: Less = %v, want %v", tc.name, got, tc.less)
		}
	}
}

func TestChampionTieBreak(t *testing.T) {
	s := func(wcd float64) *Score { return &Score{WCDPs: wcd, Cost: 1} }
	if got := Champion([]*Score{nil, nil}); got != -1 {
		t.Errorf("no finished members: champion = %d, want -1", got)
	}
	// Exact tie: the lower index wins.
	if got := Champion([]*Score{s(50), s(50), s(50)}); got != 0 {
		t.Errorf("tie champion = %d, want 0", got)
	}
	// Strictly better later member wins; nil members are skipped.
	if got := Champion([]*Score{s(50), nil, s(40)}); got != 2 {
		t.Errorf("champion = %d, want 2", got)
	}
	// An unrouted member never beats a routed one.
	bad := &Score{RouteFailed: true, Unrouted: 3, WCDPs: 1}
	if got := Champion([]*Score{bad, s(900)}); got != 1 {
		t.Errorf("champion = %d, want the routed member", got)
	}
}

func TestMemberDesc(t *testing.T) {
	cases := []struct {
		m    Member
		want string
	}{
		{Member{}, "base"},
		{Member{Seed: 3}, "seed=3"},
		{Member{Seed: 3, Backend: "lagrange"}, "seed=3 backend=lagrange"},
		{Member{Effort: Effort{Name: "deep"}}, "effort=deep"},
		{Member{Effort: Effort{MovesPerCell: 9, MaxTemps: 120}}, "effort=mpc9/t120"},
	}
	for _, tc := range cases {
		if got := tc.m.Desc(); got != tc.want {
			t.Errorf("Desc(%+v) = %q, want %q", tc.m, got, tc.want)
		}
	}
}
