// Package portfolio turns one place-and-route problem into a best-of-N
// sweep: a Matrix of result-affecting knobs (seeds, effort points, route
// backends) expands deterministically into an ordered member list, every
// member is an independent deterministic run, and a champion is selected by
// a strict quality order with the member index as the final tie-break.
//
// The package is deliberately mechanism, not transport: it knows nothing
// about HTTP, jobs or the scheduler. The fpgaprd coordinator expands a wire
// Matrix into member jobs it fans out through its normal queue, and the
// fpgapr CLI expands the same Matrix into local runs — both get identical
// member lists for identical matrices, which is what makes a server-side
// portfolio reproducible client-side.
package portfolio

import (
	"fmt"
	"strings"

	"repro/internal/droute"
)

// MaxMembers bounds a single matrix expansion. It protects the expander's
// callers (the daemon validates against its own, possibly lower, cap); a
// sweep larger than this should be split into several portfolios.
const MaxMembers = 64

// Effort is one point on the matrix's effort axis: annealing knobs that
// trade wall time for quality. Zero fields inherit the base configuration
// the portfolio was submitted with, so the zero Effort is "as submitted".
type Effort struct {
	// Name labels the point in scoreboards ("fast", "deep", ...). Optional.
	Name string `json:"name,omitempty"`
	// MovesPerCell overrides annealing moves per cell per temperature.
	MovesPerCell int `json:"moves_per_cell,omitempty"`
	// MaxTemps overrides the annealing temperature cap.
	MaxTemps int `json:"max_temps,omitempty"`
	// Chains overrides the parallel-chain count (1 = serial engine).
	Chains int `json:"chains,omitempty"`
}

// zero reports whether the effort point inherits everything.
func (e Effort) zero() bool {
	return e.Name == "" && e.MovesPerCell == 0 && e.MaxTemps == 0 && e.Chains == 0
}

// label is the effort's scoreboard spelling.
func (e Effort) label() string {
	if e.Name != "" {
		return e.Name
	}
	if e.zero() {
		return "base"
	}
	return fmt.Sprintf("mpc%d/t%d", e.MovesPerCell, e.MaxTemps)
}

// Matrix is the wire shape of a portfolio's member axes. Expansion is the
// cross product seeds × efforts × backends in that nesting order (seed is
// the innermost, fastest-varying axis), so the member list — and therefore
// every member index, scoreboard row and tie-break — is a pure function of
// the matrix.
//
// An empty axis contributes one inherit-the-base element: seed 0 means "the
// base config's seed", the zero Effort means "the base config's effort", and
// the empty backend means "the base config's route backend".
type Matrix struct {
	// Preset names a server-side matrix (see exper.PortfolioMatrix). When
	// set, no explicit axis may be given; the caller resolves the name to a
	// concrete Matrix before Expand.
	Preset string `json:"preset,omitempty"`

	Seeds    []int64  `json:"seeds,omitempty"`
	Efforts  []Effort `json:"efforts,omitempty"`
	Backends []string `json:"backends,omitempty"`
}

// Axes reports whether any explicit axis is populated.
func (m *Matrix) Axes() bool {
	return len(m.Seeds) > 0 || len(m.Efforts) > 0 || len(m.Backends) > 0
}

// Size is the member count Expand would produce (before validation).
func (m *Matrix) Size() int {
	n := func(k int) int {
		if k == 0 {
			return 1
		}
		return k
	}
	return n(len(m.Seeds)) * n(len(m.Efforts)) * n(len(m.Backends))
}

// Member is one expanded matrix point. Index is its position in the
// deterministic expansion order and the final champion tie-break.
type Member struct {
	Index   int    `json:"index"`
	Seed    int64  `json:"seed"`              // 0 = inherit the base seed
	Effort  Effort `json:"effort"`            // zero = inherit the base effort
	Backend string `json:"backend,omitempty"` // "" = inherit the base backend
}

// Desc is the member's human-readable scoreboard label.
func (m *Member) Desc() string {
	var parts []string
	if m.Seed != 0 {
		parts = append(parts, fmt.Sprintf("seed=%d", m.Seed))
	}
	if !m.Effort.zero() {
		parts = append(parts, "effort="+m.Effort.label())
	}
	if m.Backend != "" {
		parts = append(parts, "backend="+m.Backend)
	}
	if len(parts) == 0 {
		return "base"
	}
	return strings.Join(parts, " ")
}

// Expand validates the matrix and produces its ordered member list. A
// matrix still carrying an unresolved preset is rejected — name resolution
// is the caller's job, so the expansion itself stays a pure function.
func (m *Matrix) Expand() ([]Member, error) {
	if m.Preset != "" {
		if m.Axes() {
			return nil, fmt.Errorf("portfolio: matrix gives both a preset %q and explicit axes", m.Preset)
		}
		return nil, fmt.Errorf("portfolio: unresolved matrix preset %q", m.Preset)
	}
	if !m.Axes() {
		return nil, fmt.Errorf("portfolio: empty matrix (need at least one of seeds, efforts or backends)")
	}
	if n := m.Size(); n > MaxMembers {
		return nil, fmt.Errorf("portfolio: matrix expands to %d members (max %d)", n, MaxMembers)
	}
	for _, s := range m.Seeds {
		if s < 0 {
			return nil, fmt.Errorf("portfolio: seed %d must be non-negative", s)
		}
	}
	for i, e := range m.Efforts {
		if e.MovesPerCell < 0 || e.MaxTemps < 0 || e.Chains < 0 {
			return nil, fmt.Errorf("portfolio: effort %d has negative knobs", i)
		}
	}
	for _, b := range m.Backends {
		if _, err := droute.ParseBackend(b); err != nil {
			return nil, fmt.Errorf("portfolio: %v", err)
		}
	}
	seeds := m.Seeds
	if len(seeds) == 0 {
		seeds = []int64{0}
	}
	efforts := m.Efforts
	if len(efforts) == 0 {
		efforts = []Effort{{}}
	}
	backends := m.Backends
	if len(backends) == 0 {
		backends = []string{""}
	}
	members := make([]Member, 0, len(seeds)*len(efforts)*len(backends))
	for _, e := range efforts {
		for _, b := range backends {
			for _, s := range seeds {
				members = append(members, Member{
					Index: len(members), Seed: s, Effort: e, Backend: b,
				})
			}
		}
	}
	return members, nil
}

// Score is a finished member's quality, ordered worst-is-last: a fully
// routed layout always beats an unrouted one, then fewer unrouted nets,
// then a shorter critical path, then a lower final cost. Wall time is
// deliberately not part of the order — a portfolio buys quality with
// parallel wall time, and making speed a tie-break would let scheduling
// noise pick the champion.
type Score struct {
	RouteFailed bool    `json:"route_failed"`
	Unrouted    int     `json:"unrouted"`
	WCDPs       float64 `json:"critical_path_ps"`
	Cost        float64 `json:"bbox_cost"`
}

// Less reports whether a ranks strictly better than b.
func (a Score) Less(b Score) bool {
	if a.RouteFailed != b.RouteFailed {
		return !a.RouteFailed
	}
	if a.Unrouted != b.Unrouted {
		return a.Unrouted < b.Unrouted
	}
	if a.WCDPs != b.WCDPs {
		return a.WCDPs < b.WCDPs
	}
	return a.Cost < b.Cost
}

// Champion selects the winning member index from the members that finished
// (scored[i] non-nil): the best Score, with the lowest index winning exact
// ties. It returns -1 when no member finished. The selection is
// deterministic: member runs are themselves deterministic, so a portfolio
// re-run — or a member retried on another worker after a lease expiry —
// always crowns the same champion.
func Champion(scored []*Score) int {
	champ := -1
	for i, s := range scored {
		if s == nil {
			continue
		}
		if champ == -1 || s.Less(*scored[champ]) {
			champ = i
		}
	}
	return champ
}
