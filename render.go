package repro

import "repro/internal/render"

// RenderASCII draws the layout as text, in the spirit of the paper's
// Figure 7: one line per module row showing cell occupancy by type
// (i = input pad, o = output pad, c = combinational, s = sequential,
// . = empty slot), interleaved with one line per channel showing horizontal
// track occupancy density at each column.
func RenderASCII(l *Layout) string {
	return render.ASCII(l.Placement, l.Routes)
}
