// Package repro is a from-scratch reproduction of "Performance-Driven
// Simultaneous Place and Route for Row-Based FPGAs" (Nag & Rutenbar, DAC
// 1994): a complete layout system for ACTEL-style antifuse row-based FPGAs
// in which placement, global routing and detailed routing evolve inside one
// simulated-annealing optimization under a routability + worst-case-delay
// cost, plus the traditional sequential flow (TimberWolf-style placement →
// one-shot global routing → segmented channel routing) the paper compares
// against.
//
// Quick start:
//
//	nl, _ := repro.GenerateBenchmark("s1")
//	a, _ := repro.ArchFor(nl, 38)
//	lay, _ := repro.Simultaneous(a, nl, repro.SimConfig{Seed: 1})
//	fmt.Printf("routed=%v worst-case delay=%.1f ns\n",
//		lay.FullyRouted, lay.WCD/1000)
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured results of every table and figure.
package repro

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/droute"
	"repro/internal/exper"
	"repro/internal/fabric"
	"repro/internal/layio"
	"repro/internal/layout"
	"repro/internal/netgen"
	"repro/internal/netlist"
	"repro/internal/partition"
	"repro/internal/refine"
	"repro/internal/seq"
	"repro/internal/techmap"
	"repro/internal/timing"
	"repro/internal/wirepred"
)

// Re-exported building blocks. The aliases expose the full documented API of
// the underlying packages through the public module surface.
type (
	// Arch is a compiled row-based FPGA architecture.
	Arch = arch.Arch
	// ArchParams configures an architecture before compilation.
	ArchParams = arch.Params
	// Netlist is a technology-mapped design.
	Netlist = netlist.Netlist
	// Placement is a legal assignment of cells to module slots.
	Placement = layout.Placement
	// NetRoute is the segment-level disposition of one net.
	NetRoute = fabric.NetRoute
	// SimConfig tunes the simultaneous place-and-route optimizer.
	SimConfig = core.Config
	// SimResult is the simultaneous optimizer's run report.
	SimResult = core.Result
	// SeqConfig tunes the sequential baseline flow.
	SeqConfig = seq.Config
	// DynamicsSample is one temperature of the annealing dynamics trace.
	DynamicsSample = core.DynamicsSample
	// BenchmarkParams controls synthetic benchmark generation.
	BenchmarkParams = netgen.Params
)

// NewArch compiles an architecture from parameters.
func NewArch(p ArchParams) (*Arch, error) { return arch.New(p) }

// DefaultArch returns a default-parameterized architecture of the given
// geometry (mixed segmentation, era-plausible RC constants).
func DefaultArch(rows, cols, tracks int) (*Arch, error) {
	return arch.New(arch.Default(rows, cols, tracks))
}

// ArchFor sizes a default architecture to hold the netlist at roughly 55%
// utilization with the given channel capacity.
func ArchFor(nl *Netlist, tracks int) (*Arch, error) { return exper.ArchFor(nl, tracks) }

// LoadNetlist reads a netlist file; the format is chosen by extension
// (".net" native format, ".blif" BLIF subset, ".xnf" XNF subset).
func LoadNetlist(path string) (*Netlist, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	switch strings.ToLower(filepath.Ext(path)) {
	case ".net":
		return netlist.ParseNet(f)
	case ".blif":
		return netlist.ParseBlif(f, netlist.DefaultBlifOptions())
	case ".xnf":
		return netlist.ParseXnf(f, netlist.DefaultXnfOptions())
	default:
		return nil, fmt.Errorf("repro: unknown netlist extension %q (want .net, .blif or .xnf)", filepath.Ext(path))
	}
}

// SaveNetlist writes a netlist in the native .net format.
func SaveNetlist(w io.Writer, nl *Netlist) error { return netlist.WriteNet(w, nl) }

// GenerateBenchmark builds one of the named synthetic MCNC stand-ins
// (s1, cse, ex1, bw, s1a, big529, tiny).
func GenerateBenchmark(name string) (*Netlist, error) { return exper.Design(name) }

// GenerateNetlist builds a synthetic netlist from explicit parameters.
func GenerateNetlist(p BenchmarkParams) (*Netlist, error) { return netgen.Generate(p) }

// Benchmarks lists the available benchmark names.
func Benchmarks() []string { return netgen.Profiles() }

// TechMapStats reports a technology-mapping run.
type TechMapStats = techmap.Stats

// TechMap legalizes a generic logic netlist to K-input FPGA modules (the
// technology-mapping stage of the paper's Figure-1 flow): combinational
// cells with more than k inputs are decomposed into balanced trees, and
// single-fanout cells are absorbed into their fanout when the merged support
// still fits (classic covering). Layouts consume the result.
func TechMap(nl *Netlist, k int) (*Netlist, TechMapStats, error) {
	return techmap.Map(nl, techmap.Options{K: k})
}

// PartitionResult reports a multi-chip partitioning.
type PartitionResult struct {
	Assign    []int      // per-cell partition id
	CutNets   int        // nets crossing chips
	PartSizes []int      // cells per chip
	Chips     []*Netlist // independently valid per-chip netlists
}

// PartitionNetlist splits a design that is too large for one FPGA across
// several chips (paper §2.2): Fiduccia-Mattheyses min-cut bipartitioning
// with recursive bisection, then per-chip netlist extraction where cut
// signals become I/O pads. parts must be a power of two.
func PartitionNetlist(nl *Netlist, parts int, seed int64) (*PartitionResult, error) {
	assign, stats, err := partition.Partition(nl, partition.Config{Parts: parts, Seed: seed})
	if err != nil {
		return nil, err
	}
	chips, err := partition.Split(nl, assign, parts)
	if err != nil {
		return nil, err
	}
	return &PartitionResult{
		Assign:    assign,
		CutNets:   stats.CutNets,
		PartSizes: stats.PartSizes,
		Chips:     chips,
	}, nil
}

// Layout is a finished physical design: every cell placed, every net's
// segment assignment, and its timing.
type Layout struct {
	Arch        *Arch
	Netlist     *Netlist
	Placement   *Placement
	Routes      []NetRoute
	FullyRouted bool
	Unrouted    int     // nets lacking a complete detailed route
	WCD         float64 // worst-case path delay, picoseconds

	// Sim holds the simultaneous optimizer's run report (nil for layouts
	// produced by the sequential flow).
	Sim *SimResult
}

// Simultaneous runs the paper's simultaneous place-and-route optimization.
// With cfg.Chains > 1 the annealing runs as a parallel portfolio of chains
// (see core.Config) and the returned layout is the champion chain's state;
// the default is the serial engine.
func Simultaneous(a *Arch, nl *Netlist, cfg SimConfig) (*Layout, error) {
	o, err := core.New(a, nl, cfg)
	if err != nil {
		return nil, err
	}
	o, res := o.RunParallel()
	return &Layout{
		Arch:        a,
		Netlist:     nl,
		Placement:   o.P,
		Routes:      o.Rts,
		FullyRouted: res.FullyRouted,
		Unrouted:    res.D,
		WCD:         res.WCD,
		Sim:         &res,
	}, nil
}

// Sequential runs the traditional place-then-route baseline flow.
func Sequential(a *Arch, nl *Netlist, cfg SeqConfig) (*Layout, error) {
	res, err := seq.Run(a, nl, cfg)
	if err != nil {
		return nil, err
	}
	return &Layout{
		Arch:        a,
		Netlist:     nl,
		Placement:   res.P,
		Routes:      res.Routes,
		FullyRouted: res.FullyRouted,
		Unrouted:    res.UnroutedNets,
		WCD:         res.WCD,
	}, nil
}

// Fmax returns the maximum clock frequency the layout supports in MHz
// (1/WCD), the figure of merit behind the paper's "maximum achievable clock
// speed" framing.
func (l *Layout) Fmax() float64 {
	if l.WCD <= 0 {
		return 0
	}
	return 1e6 / l.WCD // ps -> MHz
}

// VerifyTiming re-analyzes the layout with the independent post-layout
// delay model (the paper's RICE stand-in) and reports the agreement with the
// layout's in-loop WCD. The layout must be fully routed.
func (l *Layout) VerifyTiming() (wcd, agreement float64, err error) {
	if !l.FullyRouted {
		return 0, 0, fmt.Errorf("repro: layout is not fully routed")
	}
	res, err := timing.Verify(l.Placement, l.Routes, l.WCD)
	if err != nil {
		return 0, 0, err
	}
	return res.WCD, res.Agreement, nil
}

// RefineTiming applies a slack-driven rerouting post-pass (after Frankle's
// iterative slack allocation, the paper's reference [13]): nets whose timing
// criticality is at least critThreshold (use ~0.5) are re-embedded with the
// antifuse-count term amplified, trading segment wastage for delay exactly
// where slack demands it. The layout's routes and WCD are updated in place;
// the pass never makes a net slower. Returns how many nets improved.
func (l *Layout) RefineTiming(critThreshold float64) (int, error) {
	if !l.FullyRouted {
		return 0, fmt.Errorf("repro: layout is not fully routed")
	}
	f := fabric.New(l.Arch)
	for id := range l.Routes {
		f.InstallRoute(int32(id), &l.Routes[id])
	}
	an, err := l.analyzer()
	if err != nil {
		return 0, err
	}
	improved, err := refine.TimingRefine(f, l.Placement, l.Routes, an, droute.DefaultCost(), critThreshold)
	if err != nil {
		return improved, err
	}
	l.WCD = an.WCD()
	return improved, nil
}

// WirabilityPrediction is the placement-level routability estimate of
// internal/wirepred (after the paper's reference [22]).
type WirabilityPrediction = wirepred.Prediction

// PredictWirability estimates, from the placement alone (no routing
// information), how likely the layout is to route completely — the kind of
// stochastic prediction §2.2 describes, with the Figure-2 blindness that
// motivates simultaneous place and route.
func PredictWirability(l *Layout) WirabilityPrediction {
	return wirepred.Predict(l.Placement)
}

// TimingPath is one reported critical path.
type TimingPath struct {
	CellNames []string
	Arrival   float64 // ps at the terminating sink pin
}

// CriticalPaths analyzes the layout and returns up to k paths, worst first,
// one per distinct timing endpoint.
func (l *Layout) CriticalPaths(k int) ([]TimingPath, error) {
	an, err := l.analyzer()
	if err != nil {
		return nil, err
	}
	paths := an.TopPaths(k)
	out := make([]TimingPath, len(paths))
	for i, p := range paths {
		tp := TimingPath{Arrival: p.Arrival}
		for _, c := range p.Cells {
			tp.CellNames = append(tp.CellNames, l.Netlist.Cells[c].Name)
		}
		out[i] = tp
	}
	return out, nil
}

// NetCriticalities returns, per net, how timing-critical the net is in this
// layout: 1 on the critical path, toward 0 for timing-irrelevant nets.
func (l *Layout) NetCriticalities() ([]float64, error) {
	an, err := l.analyzer()
	if err != nil {
		return nil, err
	}
	return an.NetCriticality(an.WCD()), nil
}

// analyzer builds a timing view of the layout's current routes.
func (l *Layout) analyzer() (*timing.Analyzer, error) {
	an, err := timing.NewAnalyzer(l.Netlist)
	if err != nil {
		return nil, err
	}
	an.Begin()
	for id := range l.Routes {
		if len(l.Netlist.Nets[id].Sinks) == 0 {
			continue
		}
		var d []float64
		if l.Routes[id].DetailDone() {
			d, err = timing.NetDelays(l.Placement, int32(id), &l.Routes[id], 1.0)
			if err != nil {
				an.Revert()
				return nil, err
			}
		} else {
			d = timing.EstimateDelays(l.Placement, int32(id))
		}
		an.SetNetDelays(int32(id), d)
	}
	an.Propagate()
	an.Commit()
	return an, nil
}

// Save serializes the layout (placement, pinmaps, every net's segment
// assignment) in a canonical text format reloadable by LoadLayout.
func (l *Layout) Save(w io.Writer) error {
	return layio.Write(w, l.Placement, l.Routes)
}

// LoadLayout reads a layout saved by Save, validating it against the
// architecture and netlist (geometry, placement legality, resource
// exclusivity), and re-deriving routedness and timing.
func LoadLayout(a *Arch, nl *Netlist, r io.Reader) (*Layout, error) {
	p, routes, err := layio.Read(r, a, nl)
	if err != nil {
		return nil, err
	}
	l := &Layout{Arch: a, Netlist: nl, Placement: p, Routes: routes}
	for id := range routes {
		if !routes[id].DetailDone() {
			l.Unrouted++
		}
	}
	l.FullyRouted = l.Unrouted == 0
	an, err := l.analyzer()
	if err != nil {
		return nil, err
	}
	l.WCD = an.WCD()
	return l, nil
}

// WriteSummary prints a human-readable report of the layout.
func (l *Layout) WriteSummary(w io.Writer) error {
	st := l.Netlist.ComputeStats()
	if _, err := fmt.Fprintf(w, "design %s: %d cells (%d comb, %d seq, %d+%d pads), %d nets\n",
		l.Netlist.Name, st.Cells, st.CombCells, st.SeqCells, st.Inputs, st.Outputs, st.Nets); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "array  %d rows x %d cols, %d tracks/channel, %d vtracks/column\n",
		l.Arch.Rows, l.Arch.Cols, l.Arch.Tracks, l.Arch.VTracks); err != nil {
		return err
	}
	if l.FullyRouted {
		if _, err := fmt.Fprintf(w, "routing 100%% complete\n"); err != nil {
			return err
		}
	} else {
		if _, err := fmt.Fprintf(w, "routing INCOMPLETE: %d nets unrouted\n", l.Unrouted); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "worst-case delay %.2f ns\n", l.WCD/1000); err != nil {
		return err
	}
	af, segs := 0, 0
	for i := range l.Routes {
		af += l.Routes[i].AntifuseCount()
		for _, c := range l.Routes[i].Chans {
			if c.Routed() {
				segs += c.SegHi - c.SegLo + 1
			}
		}
	}
	_, err := fmt.Fprintf(w, "resources %d horizontal segments, %d programmed antifuses\n", segs, af)
	return err
}
