package repro_test

import (
	"fmt"
	"log"

	"repro"
)

// Example demonstrates the complete simultaneous place-and-route flow on a
// small synthetic benchmark.
func Example() {
	nl, err := repro.GenerateBenchmark("tiny")
	if err != nil {
		log.Fatal(err)
	}
	a, err := repro.ArchFor(nl, 24)
	if err != nil {
		log.Fatal(err)
	}
	lay, err := repro.Simultaneous(a, nl, repro.SimConfig{Seed: 1, MovesPerCell: 6, MaxTemps: 60})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cells=%d routed=%v\n", nl.NumCells(), lay.FullyRouted)
	// Output: cells=30 routed=true
}

// ExamplePartitionNetlist splits a design across two FPGAs.
func ExamplePartitionNetlist() {
	nl, err := repro.GenerateBenchmark("tiny")
	if err != nil {
		log.Fatal(err)
	}
	pr, err := repro.PartitionNetlist(nl, 2, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("chips=%d\n", len(pr.Chips))
	// Output: chips=2
}

// ExampleTechMap legalizes a wide gate to 4-input modules.
func ExampleTechMap() {
	nl, err := repro.GenerateNetlist(repro.BenchmarkParams{
		Name: "x", Inputs: 3, Outputs: 2, Seq: 1, Comb: 10, Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	mapped, st, err := repro.TechMap(nl, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("legal=%v mapped=%v\n", mapped.NumCells() > 0, st.CellsOut > 0)
	// Output: legal=true mapped=true
}
