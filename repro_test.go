package repro

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestGenerateBenchmarkNames(t *testing.T) {
	for _, name := range Benchmarks() {
		nl, err := GenerateBenchmark(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := nl.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := GenerateBenchmark("nope"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestLoadSaveNetlist(t *testing.T) {
	nl, err := GenerateBenchmark("tiny")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "tiny.net")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveNetlist(f, nl); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, err := LoadNetlist(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumCells() != nl.NumCells() || got.NumNets() != nl.NumNets() {
		t.Error("round trip changed design shape")
	}
	if _, err := LoadNetlist(filepath.Join(dir, "x.xyz")); err == nil {
		t.Error("unknown extension accepted")
	}
}

func TestLoadBlif(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "d.blif")
	blif := ".model d\n.inputs a b\n.outputs f\n.names a b f\n11 1\n.end\n"
	if err := os.WriteFile(path, []byte(blif), 0o644); err != nil {
		t.Fatal(err)
	}
	nl, err := LoadNetlist(path)
	if err != nil {
		t.Fatal(err)
	}
	if nl.Name != "d" {
		t.Errorf("model name %q", nl.Name)
	}
}

func TestSimultaneousFacade(t *testing.T) {
	nl, err := GenerateBenchmark("tiny")
	if err != nil {
		t.Fatal(err)
	}
	a, err := ArchFor(nl, 20)
	if err != nil {
		t.Fatal(err)
	}
	lay, err := Simultaneous(a, nl, SimConfig{Seed: 1, MovesPerCell: 6, MaxTemps: 50})
	if err != nil {
		t.Fatal(err)
	}
	if !lay.FullyRouted {
		t.Fatalf("tiny not routed: %d unrouted", lay.Unrouted)
	}
	if lay.Sim == nil || len(lay.Sim.Dynamics) == 0 {
		t.Error("missing sim run report")
	}
	wcd, agreement, err := lay.VerifyTiming()
	if err != nil {
		t.Fatal(err)
	}
	if wcd <= 0 || agreement < 0.8 || agreement > 1.05 {
		t.Errorf("verify: wcd=%v agreement=%v", wcd, agreement)
	}
	var buf bytes.Buffer
	if err := lay.WriteSummary(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"design tiny", "100% complete", "worst-case delay"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestSequentialFacade(t *testing.T) {
	nl, err := GenerateBenchmark("tiny")
	if err != nil {
		t.Fatal(err)
	}
	a, err := ArchFor(nl, 20)
	if err != nil {
		t.Fatal(err)
	}
	cfg := SeqConfig{Seed: 1}
	cfg.Place.MovesPerCell = 5
	cfg.Place.MaxTemps = 40
	lay, err := Sequential(a, nl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if lay.Sim != nil {
		t.Error("sequential layout should not carry a sim report")
	}
	if lay.WCD <= 0 {
		t.Error("no WCD")
	}
	if !lay.FullyRouted {
		t.Skipf("tiny at 20 tracks unrouted for this seed")
	}
	if _, _, err := lay.VerifyTiming(); err != nil {
		t.Error(err)
	}
}

func TestVerifyTimingRejectsPartial(t *testing.T) {
	nl, err := GenerateBenchmark("tiny")
	if err != nil {
		t.Fatal(err)
	}
	a, err := DefaultArch(4, 10, 1) // starved
	if err != nil {
		t.Fatal(err)
	}
	cfg := SeqConfig{Seed: 1}
	cfg.Place.MovesPerCell = 4
	cfg.Place.MaxTemps = 30
	lay, err := Sequential(a, nl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if lay.FullyRouted {
		t.Skip("unexpectedly routed")
	}
	if _, _, err := lay.VerifyTiming(); err == nil {
		t.Error("VerifyTiming on partial layout should fail")
	}
}

func TestLayoutSaveLoad(t *testing.T) {
	nl, err := GenerateBenchmark("tiny")
	if err != nil {
		t.Fatal(err)
	}
	a, err := ArchFor(nl, 20)
	if err != nil {
		t.Fatal(err)
	}
	lay, err := Simultaneous(a, nl, SimConfig{Seed: 1, MovesPerCell: 5, MaxTemps: 40})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := lay.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadLayout(a, nl, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.FullyRouted != lay.FullyRouted || got.Unrouted != lay.Unrouted {
		t.Error("routedness drifted through save/load")
	}
	if got.WCD != lay.WCD {
		t.Errorf("WCD drifted: %v vs %v", got.WCD, lay.WCD)
	}
}

func TestCriticalPathsFacade(t *testing.T) {
	nl, err := GenerateBenchmark("tiny")
	if err != nil {
		t.Fatal(err)
	}
	a, err := ArchFor(nl, 20)
	if err != nil {
		t.Fatal(err)
	}
	lay, err := Simultaneous(a, nl, SimConfig{Seed: 1, MovesPerCell: 5, MaxTemps: 40})
	if err != nil {
		t.Fatal(err)
	}
	paths, err := lay.CriticalPaths(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no paths")
	}
	if paths[0].Arrival != lay.WCD {
		t.Errorf("worst path %v != layout WCD %v", paths[0].Arrival, lay.WCD)
	}
	if len(paths[0].CellNames) < 2 {
		t.Error("path too short")
	}
	crit, err := lay.NetCriticalities()
	if err != nil {
		t.Fatal(err)
	}
	max := 0.0
	for _, c := range crit {
		if c > max {
			max = c
		}
	}
	if max < 0.999 {
		t.Errorf("no fully critical net (max %v)", max)
	}
}

func TestRefineTimingFacade(t *testing.T) {
	nl, err := GenerateBenchmark("tiny")
	if err != nil {
		t.Fatal(err)
	}
	a, err := ArchFor(nl, 20)
	if err != nil {
		t.Fatal(err)
	}
	// Sequential layouts (timing-blind) leave the most on the table.
	cfg := SeqConfig{Seed: 2}
	cfg.Place.MovesPerCell = 5
	cfg.Place.MaxTemps = 40
	lay, err := Sequential(a, nl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !lay.FullyRouted {
		t.Skip("not routed at this seed")
	}
	before := lay.WCD
	improved, err := lay.RefineTiming(0.4)
	if err != nil {
		t.Fatal(err)
	}
	if lay.WCD > before+1e-9 {
		t.Errorf("refine worsened WCD: %v -> %v", before, lay.WCD)
	}
	t.Logf("refine improved %d nets, WCD %.1f -> %.1f", improved, before, lay.WCD)
	// Layout must still be loadable/consistent.
	var buf bytes.Buffer
	if err := lay.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadLayout(a, nl, &buf); err != nil {
		t.Fatalf("refined layout fails validation: %v", err)
	}
}

func TestPredictWirabilityFacade(t *testing.T) {
	nl, err := GenerateBenchmark("tiny")
	if err != nil {
		t.Fatal(err)
	}
	a, err := ArchFor(nl, 24)
	if err != nil {
		t.Fatal(err)
	}
	lay, err := Simultaneous(a, nl, SimConfig{Seed: 1, MovesPerCell: 5, MaxTemps: 40})
	if err != nil {
		t.Fatal(err)
	}
	pr := PredictWirability(lay)
	if !pr.Routable || pr.Score < 0.5 {
		t.Errorf("routed layout predicted unroutable: score %v", pr.Score)
	}
}
