package repro

import (
	"strings"
	"testing"
)

func TestRenderASCII(t *testing.T) {
	nl, err := GenerateBenchmark("tiny")
	if err != nil {
		t.Fatal(err)
	}
	a, err := ArchFor(nl, 16)
	if err != nil {
		t.Fatal(err)
	}
	lay, err := Simultaneous(a, nl, SimConfig{Seed: 1, MovesPerCell: 5, MaxTemps: 40})
	if err != nil {
		t.Fatal(err)
	}
	out := RenderASCII(lay)
	lines := strings.Split(strings.TrimSuffix(out, "\n"), "\n")
	// header + Rows row-lines + Rows+1 channel-lines
	want := 1 + a.Rows + a.Channels()
	if len(lines) != want {
		t.Fatalf("%d lines, want %d:\n%s", len(lines), want, out)
	}
	// All cell glyphs accounted for: count i/o/c/s across row lines.
	counts := map[byte]int{}
	for _, ln := range lines {
		if !strings.HasPrefix(ln, "row") {
			continue
		}
		body := ln[strings.Index(ln, "|")+1 : strings.LastIndex(ln, "|")]
		if len(body) != a.Cols {
			t.Fatalf("row line body %d chars, want %d", len(body), a.Cols)
		}
		for i := 0; i < len(body); i++ {
			counts[body[i]]++
		}
	}
	st := nl.ComputeStats()
	if counts['i'] != st.Inputs || counts['o'] != st.Outputs ||
		counts['c'] != st.CombCells || counts['s'] != st.SeqCells {
		t.Errorf("glyph counts %v do not match stats %+v", counts, st)
	}
	if lay.FullyRouted && !strings.Contains(out, "peak") {
		t.Error("channel occupancy lines missing")
	}
}
