package repro

import (
	"testing"

	"repro/internal/core"
	"repro/internal/exper"
	"repro/internal/seq"
)

// Ablation benchmarks quantify the design choices DESIGN.md calls out: the
// pinmap component of the state, the missing-channel gradient inside the D
// term, and the range-limited move extension. Each runs the simultaneous
// flow on the cse benchmark and reports worst-case delay and unrouted nets,
// so variants can be compared from one `go test -bench=Ablation` run.

func runAblation(b *testing.B, mutate func(*core.Config)) {
	b.Helper()
	nl, err := exper.Design("cse")
	if err != nil {
		b.Fatal(err)
	}
	a, err := exper.ArchFor(nl, exper.DefaultTracks)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		cfg := core.Config{Seed: 1, MovesPerCell: 6, MaxTemps: 60}
		mutate(&cfg)
		o, err := core.New(a, nl, cfg)
		if err != nil {
			b.Fatal(err)
		}
		res := o.Run()
		b.ReportMetric(res.WCD/1000, "wcd-ns")
		b.ReportMetric(float64(res.D), "unrouted")
	}
}

// BenchmarkAblationBaseline is the reference configuration.
func BenchmarkAblationBaseline(b *testing.B) {
	runAblation(b, func(c *core.Config) {})
}

// BenchmarkAblationNoPinmaps removes pinmap reassignment from the move set.
func BenchmarkAblationNoPinmaps(b *testing.B) {
	runAblation(b, func(c *core.Config) { c.DisablePinmapMoves = true })
}

// BenchmarkAblationNoDCGradient reverts the D term to the paper's bare net
// count.
func BenchmarkAblationNoDCGradient(b *testing.B) {
	runAblation(b, func(c *core.Config) { c.DCFraction = -1 })
}

// BenchmarkAblationRangeLimit enables adaptive move-range windows.
func BenchmarkAblationRangeLimit(b *testing.B) {
	runAblation(b, func(c *core.Config) { c.RangeLimit = true })
}

// BenchmarkAblationWirabilityOnly drops the timing term (the Table-2
// configuration), isolating how much the timing pressure costs in runtime.
func BenchmarkAblationWirabilityOnly(b *testing.B) {
	runAblation(b, func(c *core.Config) { c.DisableTiming = true })
}

// BenchmarkAblationTimingDrivenSeq runs the stronger sequential baseline
// (two-pass criticality-weighted placement) for comparison against both the
// plain sequential flow and the simultaneous optimizer.
func BenchmarkAblationTimingDrivenSeq(b *testing.B) {
	nl, err := exper.Design("cse")
	if err != nil {
		b.Fatal(err)
	}
	a, err := exper.ArchFor(nl, exper.DefaultTracks)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		cfg := seq.Config{Seed: 1, TimingDriven: true}
		cfg.Place.MovesPerCell = 6
		cfg.Place.MaxTemps = 60
		res, err := seq.Run(a, nl, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.WCD/1000, "wcd-ns")
		b.ReportMetric(float64(res.UnroutedNets), "unrouted")
	}
}
